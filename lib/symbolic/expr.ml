type t =
  | Rat of Q.t
  | Var of Sym.t
  | Add of t list
  | Mul of t list
  | Pow of t * t
  | App of fn * t list

and fn = Exp | Log | Max | Less | Where

(* How many terms an integer power of a sum may expand into before we
   give up and keep the power as an opaque atom (sound, less complete). *)
let expand_term_limit = 4096

let fn_rank = function Exp -> 0 | Log -> 1 | Max -> 2 | Less -> 3 | Where -> 4
let rank = function
  | Rat _ -> 0
  | Var _ -> 1
  | Pow _ -> 2
  | App _ -> 3
  | Mul _ -> 4
  | Add _ -> 5

let rec compare a b =
  match (a, b) with
  | Rat x, Rat y -> Q.compare x y
  | Var x, Var y -> Sym.compare x y
  | Pow (b1, e1), Pow (b2, e2) ->
      let c = compare b1 b2 in
      if c <> 0 then c else compare e1 e2
  | App (f, xs), App (g, ys) ->
      let c = Stdlib.compare (fn_rank f) (fn_rank g) in
      if c <> 0 then c else compare_list xs ys
  | Mul xs, Mul ys | Add xs, Add ys -> compare_list xs ys
  | _ -> Stdlib.compare (rank a) (rank b)

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs ys

let equal a b = compare a b = 0
let hash (t : t) = Hashtbl.hash t
let rat q = Rat q
let int n = Rat (Q.of_int n)
let zero = rat Q.zero
let one = rat Q.one
let var s = Var s
let sym name = Var (Sym.scalar name)
let is_zero = function Rat q -> Q.is_zero q | _ -> false
let is_one = function Rat q -> Q.is_one q | _ -> false
let to_const = function Rat q -> Some q | _ -> None

(* [split_coeff t] = (q, rest) with t = q * rest and rest coefficient-free. *)
let split_coeff = function
  | Rat q -> (q, one)
  | Mul (Rat q :: fs) -> (
      match fs with [ f ] -> (q, f) | fs -> (q, Mul fs))
  | t -> (Q.one, t)

let terms = function Add ts -> ts | t -> [ t ]
let factors = function Mul fs -> fs | t -> [ t ]
let as_base_exp = function Pow (b, e) -> (b, e) | f -> (f, one)

(* Rebuild a term from a coefficient and a coefficient-free rest. *)
let mk_term q rest =
  if Q.is_zero q then zero
  else if Q.is_one q then rest
  else
    match rest with
    | Rat r -> Rat (Q.mul q r)
    | Mul fs -> Mul (Rat q :: fs)
    | t -> Mul [ Rat q; t ]

(* Conservative syntactic positivity: [true] means the expression is
   positive for every assignment where it is defined (reals; a positive
   base to any real power stays positive). *)
let rec surely_pos = function
  | Rat q -> Q.sign q > 0
  | App (Exp, _) -> true
  | App (Max, xs) -> xs <> [] && List.for_all surely_pos xs
  | Pow (b, _) -> surely_pos b
  | Mul fs -> List.for_all surely_pos fs
  | Add ts -> ts <> [] && List.for_all surely_pos ts
  | Var _ | App ((Log | Less | Where), _) -> false

let rec add es =
  let rec flatten acc = function
    | [] -> acc
    | Add ts :: rest -> flatten (List.rev_append ts acc) rest
    | e :: rest -> flatten (e :: acc) rest
  in
  let ts = flatten [] es in
  (* Collect like terms: group by coefficient-free rest. *)
  let pairs = List.map split_coeff ts in
  let sorted = List.sort (fun (_, r1) (_, r2) -> compare r1 r2) pairs in
  let rec combine = function
    | (q1, r1) :: (q2, r2) :: rest when equal r1 r2 ->
        combine ((Q.add q1 q2, r1) :: rest)
    | p :: rest -> p :: combine rest
    | [] -> []
  in
  let combined =
    List.filter (fun (q, _) -> not (Q.is_zero q)) (combine sorted)
  in
  match List.map (fun (q, r) -> mk_term q r) combined with
  | [] -> zero
  | [ t ] -> t
  | ts -> Add ts

and mul es =
  let rec flatten acc = function
    | [] -> acc
    | Mul fs :: rest -> flatten (List.rev_append fs acc) rest
    | e :: rest -> flatten (e :: acc) rest
  in
  let fs = flatten [] es in
  if List.exists is_zero fs then zero
  else
    let coeff, fs =
      List.fold_left
        (fun (c, acc) f ->
          match f with Rat q -> (Q.mul c q, acc) | f -> (c, f :: acc))
        (Q.one, []) fs
    in
    (* Merge equal bases by adding exponents (before distributing, so
       that e.g. (A+B) * (A+B)^(-1/2) collapses to sqrt(A+B)). *)
    let base_exps = List.map as_base_exp fs in
    let sorted = List.sort (fun (b1, _) (b2, _) -> compare b1 b2) base_exps in
    let rec merge = function
      | (b1, e1) :: (b2, e2) :: rest when equal b1 b2 ->
          merge ((b1, add [ e1; e2 ]) :: rest)
      | p :: rest -> p :: merge rest
      | [] -> []
    in
    let rebuilt = List.map (fun (b, e) -> pow b e) (merge sorted) in
    if
      List.exists (function Rat _ | Mul _ -> true | _ -> false) rebuilt
    then
      (* A factor collapsed to a constant or product: re-flatten. *)
      mul (rat coeff :: rebuilt)
    else
      let adds, others =
        List.partition (function Add _ -> true | _ -> false) rebuilt
      in
      match adds with
      | Add ts :: more_adds ->
          (* Distribute over a remaining bare sum factor (expansion). *)
          let tail = more_adds @ others in
          add (List.map (fun t -> mul ((rat coeff :: t :: tail) : t list)) ts)
      | _ :: _ -> assert false
      | [] -> (
          let factors' = List.sort compare others in
          let factors' =
            if Q.is_one coeff then factors' else rat coeff :: factors'
          in
          match factors' with [] -> one | [ f ] -> f | fs -> Mul fs)

and pow b e =
  match (b, e) with
  | _, Rat q when Q.is_zero q -> one
  | _, Rat q when Q.is_one q -> b
  | Rat qb, _ when Q.is_one qb -> one
  | Rat qb, Rat qe when Q.is_zero qb ->
      (* 0^q for q <= 0 is kept as an opaque atom (evaluating to an
         infinity), keeping the constructors total. *)
      if Q.sign qe > 0 then zero else Pow (b, e)
  | Rat qb, Rat qe -> (
      match Q.to_int qe with
      | Some n -> rat (Q.pow_int qb n)
      | None -> (
          match rat_root qb qe with Some q -> rat q | None -> Pow (b, e)))
  | Mul fs, _ -> mul (List.map (fun f -> pow f e) fs)
  | Pow (b', e'), _ -> pow b' (mul [ e'; e ])
  | Add ts, _ -> (
      (* (c * r)^e = c^e * r^e when c, the common surely-positive factor
         of the sum's terms, exists.  This identifies max-shifted
         softmax denominators with their naive forms. *)
      match factor_pos_common ts with
      | Some (common, residual) -> mul [ pow common e; pow residual e ]
      | None -> (
          match e with
          | Rat q when Q.is_integer q && Q.sign q > 0 -> (
              match Q.to_int q with
              | Some n when pow_fits (List.length ts) n -> expand_pow_add ts n
              | _ -> Pow (b, e))
          | _ -> Pow (b, e)))
  | _ -> Pow (b, e)

(* Expand (t1 + ... + tk)^n by repeated term-by-term distribution.  The
   operands passed to [mul] are individual terms (never bare sums), so
   this cannot re-trigger the base-merging path that would rebuild the
   power and loop. *)
and expand_pow_add ts n =
  let step acc =
    add
      (List.concat_map
         (fun acc_term -> List.map (fun t -> mul [ acc_term; t ]) ts)
         (terms acc))
  in
  let rec go acc k = if k = 0 then acc else go (step acc) (k - 1) in
  go one n

(* Does |ts|^n stay under the expansion limit? *)
and pow_fits nterms n =
  let rec go acc i = if i = 0 then true
    else if acc > expand_term_limit then false
    else go (acc * nterms) (i - 1)
  in
  go 1 n

(* Greatest common surely-positive factor of the terms of a sum:
   [Some (common, residual)] with [add ts = mul [common; residual]] and
   [common <> 1].  Only bases that are syntactically positive
   ([surely_pos]) and carry rational exponents everywhere they appear
   participate; a base absent from a term counts as exponent 0 there, so
   a base whose minimum exponent is negative factors out as a common
   denominator (clearing it from every term).  Together with the hooks
   in [pow] and [log] this is what lets the normal form identify e.g. a
   max-shifted softmax with its naive form:
     exp(x-m) / (exp(x-m) + exp(y-m))  -->  exp(x) / (exp(x) + exp(y)) *)
and factor_pos_common ts =
  match ts with
  | [] | [ _ ] -> None
  | _ ->
      let factor_exps term =
        let _, rest = split_coeff term in
        List.map as_base_exp (factors rest)
      in
      let per_term = List.map factor_exps ts in
      (* rational exponent of [b] in a term's factor list; absent -> 0,
         symbolic exponent -> None (base cannot participate) *)
      let exp_of b fs =
        match List.find_opt (fun (b', _) -> equal b b') fs with
        | None -> Some Q.zero
        | Some (_, Rat q) -> Some q
        | Some (_, _) -> None
      in
      let candidates =
        List.concat_map (List.map fst) per_term
        |> List.sort_uniq compare
        |> List.filter (fun b ->
               (match b with Rat _ -> false | _ -> true) && surely_pos b)
      in
      let min_exp b =
        List.fold_left
          (fun acc fs ->
            match (acc, exp_of b fs) with
            | Some m, Some q -> Some (if Q.compare q m < 0 then q else m)
            | _ -> None)
          (exp_of b (List.hd per_term))
          (List.tl per_term)
      in
      let pulled =
        List.filter_map
          (fun b ->
            match min_exp b with
            | Some m when Q.sign m <> 0 -> Some (b, m)
            | _ -> None)
          candidates
      in
      if pulled = [] then None
      else
        let common = mul (List.map (fun (b, m) -> pow b (rat m)) pulled) in
        let inv = List.map (fun (b, m) -> pow b (rat (Q.neg m))) pulled in
        let residual = add (List.map (fun t -> mul (t :: inv)) ts) in
        Some (common, residual)

(* Exact rational root: qb^qe for fractional qe, when num and den of qb
   have exact integer roots. *)
and rat_root qb qe =
  let iroot x r =
    if x < 0 then None
    else if x <= 1 then Some x (* 0^r = 0, 1^r = 1 for any r *)
    else if r >= 63 then None (* any root >= 2 overflows g^r past int *)
    else
      let guess = int_of_float (Float.round (Float.pow (float_of_int x) (1. /. float_of_int r))) in
      let candidates = [ guess - 1; guess; guess + 1 ] in
      List.find_opt
        (fun g ->
          (* x >= 2 forces g >= 2, so the power loop runs at most r < 63
             steps and bails as soon as it passes x — without this bound
             a denominator like 10^10 (from a float constant such as
             1e-10) made the verification loop for that many steps. *)
          g >= 2
          &&
          let rec p acc i =
            if i = 0 then acc
            else if acc > x / g then x + 1 (* acc*g > x; g^r only grows *)
            else p (acc * g) (i - 1)
          in
          p 1 r = x)
        candidates
  in
  if Q.sign qb < 0 then None
  else
    let p = Q.num qe and r = Q.den qe in
    match (iroot (Q.num qb) r, iroot (Q.den qb) r) with
    | Some rn, Some rd -> Some (Q.pow_int (Q.make rn rd) p)
    | _ -> None

let sub a b = add [ a; mul [ rat Q.minus_one; b ] ]
let neg a = mul [ rat Q.minus_one; a ]
let div a b = mul [ a; pow b (rat Q.minus_one) ]
let sqrt a = pow a (rat Q.half)

let rec exp e =
  match e with
  | Rat q when Q.is_zero q -> one
  | App (Log, [ x ]) -> x
  | Add ts -> mul (List.map exp ts)
  | Mul (Rat q :: fs) when not (Q.is_one q) ->
      pow (exp (mul fs)) (rat q)
  | _ -> App (Exp, [ e ])

let rec log e =
  match e with
  | Rat q when Q.is_one q -> zero
  | App (Exp, [ x ]) -> x
  | Mul fs -> add (List.map log fs)
  | Pow (b, ex) -> mul [ ex; log b ]
  | Add ts -> (
      (* log(c * r) = log c + log r for the common surely-positive
         factor c of the sum; identifies stable logsumexp with its
         naive form (the log pulls the exp(-m) shift back out). *)
      match factor_pos_common ts with
      | Some (common, residual) -> add [ log common; log residual ]
      | None -> App (Log, [ e ]))
  | _ -> App (Log, [ e ])

let rec max2 a b =
  let args = function App (Max, xs) -> xs | x -> [ x ] in
  let xs = List.sort_uniq compare (args a @ args b) in
  match xs with
  | [ x ] -> x
  | [ Rat p; Rat q ] -> rat (if Q.compare p q >= 0 then p else q)
  | xs -> (
      (* max(c + u, c + v) = c + max(u, v): additive terms common to
         every argument shift out of the max (max-shift invariance).
         Term lists are kept sorted so common terms are a sorted-list
         intersection and removal is a sorted-list difference. *)
      let term_lists = List.map (fun x -> List.sort compare (terms x)) xs in
      let inter2 ts us =
        let rec go ts us acc =
          match (ts, us) with
          | [], _ | _, [] -> List.rev acc
          | t :: ts', u :: us' ->
              let c = compare t u in
              if c = 0 then go ts' us' (t :: acc)
              else if c < 0 then go ts' us acc
              else go ts us' acc
        in
        go ts us []
      in
      let common =
        match term_lists with
        | t0 :: rest -> List.fold_left inter2 t0 rest
        | [] -> []
      in
      match common with
      | [] -> App (Max, xs)
      | _ ->
          let rec diff ts cs =
            match (ts, cs) with
            | ts, [] -> ts
            | [], _ -> []
            | t :: ts', c :: cs' ->
                let k = compare t c in
                if k = 0 then diff ts' cs'
                else if k < 0 then t :: diff ts' cs
                else diff ts cs'
          in
          let residuals =
            List.map (fun ts -> add (diff ts common)) term_lists
          in
          let shifted =
            match residuals with
            | r :: rest -> List.fold_left max2 r rest
            | [] -> assert false
          in
          add (common @ [ shifted ]))

let less a b =
  match (a, b) with
  | Rat p, Rat q -> if Q.compare p q < 0 then one else zero
  | _ -> if equal a b then zero else App (Less, [ a; b ])

let where c a b =
  (* Nested selections on the same condition collapse to the branch the
     condition selects. *)
  let a = match a with App (Where, [ c'; x; _ ]) when equal c c' -> x | _ -> a in
  let b = match b with App (Where, [ c'; _; y ]) when equal c c' -> y | _ -> b in
  match c with
  | Rat q -> if Q.is_zero q then b else a
  | App (Less, [ x; y ]) when equal x b && equal y a ->
      (* where(x < y, y, x) = max(x, y) *)
      max2 x y
  | _ -> if equal a b then a else App (Where, [ c; a; b ])

let rec vars t =
  match t with
  | Rat _ -> Sym.Set.empty
  | Var s -> Sym.Set.singleton s
  | Add xs | Mul xs | App (_, xs) ->
      List.fold_left (fun acc x -> Sym.Set.union acc (vars x)) Sym.Set.empty xs
  | Pow (b, e) -> Sym.Set.union (vars b) (vars e)

let rec var_bases t tbl =
  match t with
  | Rat _ -> ()
  | Var s -> Hashtbl.replace tbl (Sym.base s) ()
  | Add xs | Mul xs | App (_, xs) -> List.iter (fun x -> var_bases x tbl) xs
  | Pow (b, e) ->
      var_bases b tbl;
      var_bases e tbl

let base_names t =
  let tbl = Hashtbl.create 8 in
  var_bases t tbl;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort String.compare

let rec size t =
  match t with
  | Rat _ | Var _ -> 1
  | Add xs | Mul xs | App (_, xs) ->
      List.fold_left (fun acc x -> acc + size x) 1 xs
  | Pow (b, e) -> 1 + size b + size e

(* Map from negative-power bases to their most negative exponent. *)
let neg_pow_map t =
  let tbl = Hashtbl.create 8 in
  let note b q =
    let key = b in
    match Hashtbl.find_opt tbl key with
    | Some q' when Q.compare q' q <= 0 -> ()
    | _ -> Hashtbl.replace tbl key q
  in
  let rec go t =
    match t with
    | Rat _ | Var _ -> ()
    | Add xs | Mul xs | App (_, xs) -> List.iter go xs
    | Pow (b, e) ->
        (match e with
        | Rat q when Q.sign q < 0 -> note b q
        | _ -> ());
        go b;
        go e
  in
  go t;
  tbl

(* Multivariate polynomial long division: repeatedly eliminate the
   dividend's leading term against the divisor's leading term.  The
   structural term order is not a strict admissible monomial order, so a
   step cap guards termination; failure just means "not exactly
   divisible as far as we can tell", which is sound for the solver. *)
let rec poly_div_exact a b =
  (* The leading term is the one with the largest coefficient-free
     monomial (comparing whole terms would let numeric coefficient heads
     scramble the order); eliminating against it reduces the dividend
     instead of inflating its degree. *)
  let leading ts =
    match ts with
    | [] -> invalid_arg "poly_div_exact"
    | t0 :: rest ->
        List.fold_left
          (fun best t ->
            let _, rb = split_coeff best and _, rt = split_coeff t in
            if compare rt rb > 0 then t else best)
          t0 rest
  in
  let b_terms = terms b in
  match b_terms with
  | [] | [ _ ] -> None
  | _ ->
      let b_lead = leading b_terms in
      let coeff_ok t =
        let q, _ = split_coeff t in
        abs (Q.num q) < 1_000_000_000 && Q.den q < 1_000_000_000
      in
      let steps = ref 0 in
      let rec go remainder quotient =
        incr steps;
        if is_zero remainder then Some (add quotient)
        else if !steps > 200 then None
        else
          let r_lead = leading (terms remainder) in
          match simple_div_exact r_lead b_lead with
          | None -> None
          | Some q ->
              if not (List.for_all coeff_ok (terms q)) then None
              else
                let remainder' = sub remainder (mul [ q; b ]) in
                (* progress check: the leading term must actually cancel
                   or a non-admissible order could loop *)
                if equal remainder' remainder then None
                else go remainder' (q :: quotient)
      in
      go a []

and simple_div_exact a b =
  if is_zero b then None
  else
    let q = div a b in
    let before = neg_pow_map a and after = neg_pow_map q in
    let ok =
      Hashtbl.fold
        (fun base qexp acc ->
          acc
          &&
          match Hashtbl.find_opt before base with
          | Some q0 -> Q.compare qexp q0 >= 0
          | None -> false)
        after true
    in
    if ok then Some q else None

let div_exact_unguarded a b =
  match simple_div_exact a b with
  | Some q -> Some q
  | None -> (
      match b with
      | Add _ -> (
          match poly_div_exact a b with
          | Some q ->
              (* long division is exact by construction, but re-verify
                 through the normal form out of caution *)
              if equal (mul [ q; b ]) a then Some q else None
          | None -> None)
      | Rat _ | Var _ | Mul _ | Pow _ | App _ -> None)

let div_exact a b =
  (* Coefficient overflow during division just means "cannot decide":
     fail soft. *)
  match div_exact_unguarded a b with
  | exception Q.Overflow -> None
  | r -> r

(* Fractional-power bases (exponent not an integer). *)
let frac_pow_bases t =
  let tbl = Hashtbl.create 8 in
  let rec go t =
    match t with
    | Rat _ | Var _ -> ()
    | Add xs | Mul xs | App (_, xs) -> List.iter go xs
    | Pow (b, e) ->
        (match e with
        | Rat q when not (Q.is_integer q) -> Hashtbl.replace tbl b ()
        | Rat _ -> ()
        | _ -> Hashtbl.replace tbl b ());
        go b;
        go e
  in
  go t;
  tbl

let root_exact e q =
  if Q.is_zero q || (is_zero e && Q.sign q < 0) then None
  else try
    match pow e (rat (Q.inv q)) with
    | exception Invalid_argument _ -> None
    | r ->
    if not (equal (pow r (rat q)) e) then None
    else
      let before = frac_pow_bases e and after = frac_pow_bases r in
      let ok =
        Hashtbl.fold
          (fun base () acc -> acc && Hashtbl.mem before base)
          after true
      in
      if ok then Some r else None
  with Q.Overflow -> None

let linear_coeff e x =
  let exception Nonlinear in
  try
    let coeffs = ref [] and rest = ref [] in
    List.iter
      (fun term ->
        let q, r = split_coeff term in
        let fs = factors r in
        let with_x, without_x =
          List.partition
            (fun f ->
              let b, _ = as_base_exp f in
              match b with Var s -> Sym.equal s x | _ -> false)
            fs
        in
        match with_x with
        | [] ->
            if Sym.Set.mem x (vars term) then raise Nonlinear
            else rest := term :: !rest
        | [ f ] ->
            let _, ex = as_base_exp f in
            if not (is_one ex) then raise Nonlinear;
            let remainder = mk_term q (mul without_x) in
            if Sym.Set.mem x (vars remainder) then raise Nonlinear;
            coeffs := remainder :: !coeffs
        | _ -> raise Nonlinear)
      (terms e);
    Some (add !coeffs, add !rest)
  with Nonlinear | Q.Overflow -> None

let rec eval env t =
  match t with
  | Rat q -> Q.to_float q
  | Var s -> env s
  | Add xs -> List.fold_left (fun acc x -> acc +. eval env x) 0. xs
  | Mul xs -> List.fold_left (fun acc x -> acc *. eval env x) 1. xs
  | Pow (b, e) -> Float.pow (eval env b) (eval env e)
  | App (Exp, [ x ]) -> Float.exp (eval env x)
  | App (Log, [ x ]) -> Float.log (eval env x)
  | App (Max, xs) ->
      List.fold_left (fun acc x -> Float.max acc (eval env x)) neg_infinity xs
  | App (Less, [ a; b ]) -> if eval env a < eval env b then 1. else 0.
  | App (Where, [ c; a; b ]) ->
      if eval env c <> 0. then eval env a else eval env b
  | App ((Exp | Log | Less | Where), _) ->
      invalid_arg "Expr.eval: malformed application"

let rec subst f t =
  match t with
  | Rat _ -> t
  | Var s -> ( match f s with Some e -> e | None -> t)
  | Add xs -> add (List.map (subst f) xs)
  | Mul xs -> mul (List.map (subst f) xs)
  | Pow (b, e) -> pow (subst f b) (subst f e)
  | App (Exp, [ x ]) -> exp (subst f x)
  | App (Log, [ x ]) -> log (subst f x)
  | App (Max, xs) -> (
      match List.map (subst f) xs with
      | [] -> invalid_arg "Expr.subst: empty max"
      | x :: rest -> List.fold_left max2 x rest)
  | App (Less, [ a; b ]) -> less (subst f a) (subst f b)
  | App (Where, [ c; a; b ]) -> where (subst f c) (subst f a) (subst f b)
  | App ((Exp | Log | Less | Where), _) ->
      invalid_arg "Expr.subst: malformed application"

let fn_name = function
  | Exp -> "exp"
  | Log -> "log"
  | Max -> "max"
  | Less -> "less"
  | Where -> "where"

let rec pp ppf t =
  match t with
  | Rat q -> Q.pp ppf q
  | Var s -> Sym.pp ppf s
  | Add ts ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
           pp)
        ts
  | Mul fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "*")
           pp)
        fs
  | Pow (b, e) -> Format.fprintf ppf "%a^%a" pp b pp e
  | App (f, xs) ->
      Format.fprintf ppf "%s(%a)" (fn_name f)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp)
        xs

let to_string t = Format.asprintf "%a" pp t
