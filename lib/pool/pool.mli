(** Process-wide pool of persistent worker domains for fork-join data
    parallelism.

    Worker domains are spawned lazily, at most once per process, and
    parked on condition variables between parallel regions, so
    steady-state fork-join costs one compare-and-set and one signal per
    claimed worker instead of a [Domain.spawn].  This keeps domain
    startup off the critical path of parallel execution — in particular,
    timing a parallel region through the measured cost model observes
    the region, not domain creation.

    Regions never block waiting for workers: a leader claims however
    many idle workers it can (possibly none) and runs the remaining work
    inline.  Nested regions therefore degrade to sequential execution
    instead of deadlocking.  An [at_exit] hook stops and joins all
    spawned workers. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val max_workers : int
(** Upper bound on pool size (and thus on usable lanes beyond the
    caller's own). *)

val parallel_for :
  lanes:int ->
  ?chunk:int ->
  int ->
  (lane:int -> lo:int -> hi:int -> unit) ->
  unit
(** [parallel_for ~lanes n body] partitions the index range [0, n) into
    [chunk]-sized blocks (default [n / (lanes * 4)], minimum 1) handed
    out from a shared atomic cursor, and runs [body ~lane ~lo ~hi] on up
    to [lanes] lanes: the calling domain is lane 0 and up to [lanes - 1]
    claimed pool workers take lanes 1, 2, ….  Lane numbers are always
    [< lanes], so per-lane scratch indexed by [lane] needs exactly
    [lanes] entries, but fewer lanes may actually run if the pool is
    busy.  Returns after every block has executed.  If any application
    of [body] raises, one such exception (first recorded, not
    necessarily smallest index) is re-raised after the region
    completes.  With [lanes <= 1] (or [n <= 1]) the body runs inline as
    one block. *)

val shutdown : unit -> unit
(** Stop and join all spawned workers.  Idempotent; also installed via
    [at_exit].  Subsequent regions run inline. *)
