(* A process-wide pool of persistent worker domains for fork-join data
   parallelism.

   OCaml 5 domains are heavyweight (stack, minor heap, runtime
   registration), so spawning per parallel region — as the original
   [Par] did — puts domain startup on the critical path of every
   parallel map and makes timing parallel code meaningless: the first
   iteration pays the spawn, the rest do not.  The pool spawns each
   worker domain at most once per process and parks it on a condition
   variable between regions, so steady-state fork-join costs one CAS
   and one signal per claimed worker.

   Design points:

   - {e claiming, not queueing}: a region leader claims idle workers
     with a compare-and-set and hands each a closure directly.  If no
     worker is idle the leader simply runs the work inline, which makes
     nested parallel regions deadlock-free by construction: a worker
     that opens an inner region while all its peers are busy degrades
     to sequential execution instead of waiting on itself.
   - {e blocking completion}: the leader waits for its region on a
     condition variable, not a spin loop — essential when domains are
     oversubscribed (more workers than cores), where spinning would
     starve the very workers being waited on.
   - {e dynamic chunking}: work is handed out as [chunk]-sized index
     ranges from a shared atomic cursor, so uneven per-item cost load
     balances across lanes.
   - {e clean shutdown}: an [at_exit] hook stops and joins every
     spawned worker so processes using the pool terminate promptly. *)

type worker = {
  mutable dom : unit Domain.t option;  (* spawned on first claim *)
  state : int Atomic.t;  (* 0 = idle (claimable), 1 = claimed *)
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
}

let default_domains () = Domain.recommended_domain_count ()

(* Upper bound on pool size: enough to oversubscribe a small machine
   (so determinism tests can request more lanes than cores) without
   approaching the runtime's domain limit. *)
let max_workers =
  let cores = Domain.recommended_domain_count () in
  min 16 (max 8 (cores - 1))

let workers =
  lazy
    (Array.init max_workers (fun _ ->
         {
           dom = None;
           state = Atomic.make 0;
           m = Mutex.create ();
           cv = Condition.create ();
           job = None;
           stop = false;
         }))

let rec worker_loop w =
  Mutex.lock w.m;
  while w.job = None && not w.stop do
    Condition.wait w.cv w.m
  done;
  let job = w.job in
  w.job <- None;
  let stop = w.stop in
  Mutex.unlock w.m;
  (match job with
  | Some f -> (
      (try f () with _ -> ());
      (* Release only after the job ran: [state] guards [job]. *)
      Atomic.set w.state 0)
  | None -> ());
  if not stop then worker_loop w

let shutdown () =
  if Lazy.is_val workers then
    Array.iter
      (fun w ->
        match w.dom with
        | None -> ()
        | Some d ->
            Mutex.lock w.m;
            w.stop <- true;
            Condition.signal w.cv;
            Mutex.unlock w.m;
            Domain.join d;
            w.dom <- None)
      (Lazy.force workers)

let () = at_exit shutdown

(* Claim up to [k] idle workers.  Never blocks: busy workers are simply
   skipped and the caller absorbs their share of the work. *)
let claim_up_to k =
  if k <= 0 then []
  else begin
    let ws = Lazy.force workers in
    let acc = ref [] and got = ref 0 in
    let i = ref 0 in
    while !got < k && !i < Array.length ws do
      let w = ws.(!i) in
      if Atomic.compare_and_set w.state 0 1 then begin
        acc := w :: !acc;
        incr got
      end;
      incr i
    done;
    List.rev !acc
  end

let assign w f =
  (match w.dom with
  | Some _ -> ()
  | None -> w.dom <- Some (Domain.spawn (fun () -> worker_loop w)));
  Mutex.lock w.m;
  w.job <- Some f;
  Condition.signal w.cv;
  Mutex.unlock w.m

let parallel_for ~lanes ?(chunk = 0) n body =
  if n <= 0 then ()
  else
    let lanes = max 1 (min lanes n) in
    if lanes = 1 then body ~lane:0 ~lo:0 ~hi:n
    else begin
      let chunk = if chunk > 0 then chunk else max 1 (n / (lanes * 4)) in
      let next = Atomic.make 0 in
      let m = Mutex.create () and cv = Condition.create () in
      let pending = ref 0 in
      let failed = ref None in
      let work lane () =
        (try
           let continue = ref true in
           while !continue do
             let lo = Atomic.fetch_and_add next chunk in
             if lo >= n then continue := false
             else body ~lane ~lo ~hi:(min n (lo + chunk))
           done
         with e ->
           Mutex.lock m;
           if !failed = None then failed := Some e;
           Mutex.unlock m);
        Mutex.lock m;
        decr pending;
        if !pending = 0 then Condition.signal cv;
        Mutex.unlock m
      in
      let claimed = claim_up_to (lanes - 1) in
      pending := List.length claimed + 1 (* + the leader lane *);
      List.iteri (fun i w -> assign w (work (i + 1))) claimed;
      work 0 ();
      Mutex.lock m;
      while !pending > 0 do
        Condition.wait cv m
      done;
      Mutex.unlock m;
      match !failed with Some e -> raise e | None -> ()
    end
