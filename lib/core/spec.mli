(** Specification tensors and the simplification metric.

    A specification is a symbolic tensor [Φ] (the result of symbolically
    executing a program).  The synthesis search manipulates specs:
    computing their complexity (Section V-A of the paper), hashing them
    for memoization and visited-set checks, and collapsing broadcastable
    uniformity (a residual tensor whose elements are all [4] is better
    synthesized as the scalar constant [4]). *)

type t = Dsl.Sexec.Stensor.t

val shape : t -> Tensor.Shape.t
val equal : t -> t -> bool

val key : t -> string
(** Canonical rendering usable as a hash key; equal specs have equal
    keys.  Cached per spec (per domain), so repeated probes on the same
    spec are O(1); specs must not be mutated after their first [key]. *)

val key_stats : unit -> int * int * float
(** [(builds, cache_hits, build_seconds)] — process-wide totals since
    start.  For per-run attribution (what the telemetry layer reports)
    use an ambient {!key_counters} cell instead: concurrent runs each
    read their own cell, not each other's work. *)

(** {2 Per-run key-build attribution} *)

type key_counters
(** An attribution cell: atomic, shareable across the domains of one
    search. *)

val fresh_counters : unit -> key_counters

val counters_stats : key_counters -> int * int * float
(** [(builds, cache_hits, build_seconds)] recorded into this cell. *)

val with_counters : key_counters -> (unit -> 'a) -> 'a
(** Run [f] with [c] installed as the calling domain's ambient cell
    (restored afterwards): every {!key} build or cache hit inside is
    credited to [c] in addition to the process-wide totals.  The cell is
    domain-local — code that fans work out to other domains re-installs
    it in each worker (the search engine and stub enumerator do). *)

val ambient : unit -> key_counters option
(** The calling domain's current cell, for propagating into spawned
    workers. *)

val complexity : t -> float
(** [|var(Φ)| * density(Φ)] — mean per-element distinct-symbol count
    times the fraction of nonzero elements (Section V-A). *)

val collapse : t -> t
(** Shrink axes along which all slices are identical to size 1 and drop
    leading unit axes.  The result broadcasts back to the original
    shape, so it is interchangeable in elementwise positions. *)

val is_uniform : t -> Symbolic.Expr.t option
(** [Some e] when every element equals [e]. *)

val to_const : t -> Symbolic.Q.t option
(** [Some q] when every element is the rational constant [q]. *)

val scalar : Symbolic.Expr.t -> t

val pp : Format.formatter -> t -> unit
