(** Offline rule mining ([stenso mine]).

    Batch-superoptimizes the bounded stub space of an input environment:
    {!Stub.enumerate} already proves, by construction, that every
    semantic duplicate it deduplicates away is equivalent to the
    library's cheapest representative of the same symbolic value.  Each
    strictly-worse duplicate therefore yields a rewrite (duplicate ⇒
    representative), generalized via {!Rules.generalize}, and the
    library itself yields the {e optima table}: the cheapest known
    program per enumerated spec.  Both are persisted per
    (environment, cost model, depth) in the {!Rules_db}, where
    {!Superopt.optimize}'s tier 2 replays them instead of searching. *)

type env_stats = {
  label : string;
  stubs : int;  (** library size after deduplication *)
  attempts : int;  (** candidate programs enumerated *)
  dups : int;  (** strictly-worse semantic duplicates observed *)
  rules : int;  (** rules persisted after filtering and deduplication *)
  optima : int;  (** optima-table entries persisted *)
  truncated : bool;
      (** the enumeration hit its stub cap or deadline; no optima were
          recorded (see {!Rules_db.t}) *)
  elapsed : float;
}

val mine_env :
  ?tel:Obs.Telemetry.t ->
  ?jobs:int ->
  ?max_stubs:int ->
  depth:int ->
  model:Cost.Model.t ->
  Dsl.Types.env ->
  Rules_db.t * env_stats
(** Mine one environment (with {!Rules_db.standard_consts} as the
    constant terminals) without touching any store.  Rules are kept only
    when they strictly decrease cost, bind at least one metavariable,
    and have a right-hand side whose inputs all occur on the left.
    [max_stubs] overrides the pinned enumeration budget (tests and
    benchmarks); a cap that bites marks the entry truncated, which
    suppresses its optima table. *)

val mine :
  ?tel:Obs.Telemetry.t ->
  ?jobs:int ->
  ?max_stubs:int ->
  ?on_env:(env_stats -> unit) ->
  depth:int ->
  model:Cost.Model.t ->
  store:Store.t ->
  (string * Dsl.Types.env) list ->
  env_stats list
(** Mine every distinct environment of the given (label, env) list —
    distinct by {!Rules_db.key}, so shared environments mine once — and
    persist each entry into the store.  [on_env] observes each
    environment as it completes. *)
