(** The symbolic-algebra solver behind [SOLVE] (Section V-A).

    Given the current specification [Φ] and a sketch — a grammar
    operation whose operands are holes or concrete stubs — the solver
    determines the {e hole specification}: the symbolic value each hole
    must take for the sketch's output to equal [Φ].  Each operation has
    an inverse semantics:

    - elementwise [add]/[sub]/[div] invert by the opposite operation;
    - [mul] inverts by exact symbolic division ({!Symbolic.Expr.div_exact});
    - [power] inverts by exact root extraction or exponent matching;
    - [dot]/[tensordot] invert by linear-coefficient extraction over the
      concrete operand's symbols, with a term-assignment fallback for
      specifications that are nonlinear in those symbols (e.g. the
      quadratic form [xᵀAx]); every contraction solution is verified by
      symbolic reconstruction;
    - [sum] inverts by partitioning each element's terms in canonical
      order into a new axis;
    - two-hole [add]/[sub]/[mul] sketches split the specification by
      input-variable occurrence or by sign.

    All returned decompositions are exact: recombining the parts under
    the operation yields a tensor symbolically equal to [Φ]. *)

type part = P_hole of Spec.t | P_conc of Stub.t

type decomposition = {
  op : Dsl.Ast.op;
  parts : part list;  (** in operation-argument order *)
}

type config = {
  max_conc_depth : int;
      (** maximum stub depth usable as a concrete sketch operand; the
          paper's depth-2 stub library yields depth-1 concrete parts *)
  max_split_terms : int;  (** cap on term count for sum/add splitting *)
}

val default_config : config

val decompositions :
  ?config:config ->
  ?tel:Obs.Telemetry.t ->
  Stub.library ->
  Spec.t ->
  decomposition list
(** All sketch decompositions of the spec, each with exact hole specs.
    The list is unpruned; the search applies the simplification and
    branch-and-bound filters.  [tel] counts [invert.proposed] (candidates
    the per-operation solvers produced) and [invert.solved] (those whose
    recombination reproduces the spec). *)

val hole_specs : decomposition -> Spec.t list
val conc_cost : decomposition -> float
(** Summed cost of the concrete operands. *)

val reconstruct : decomposition -> Dsl.Ast.t list -> Dsl.Ast.t
(** Rebuild a program from the decomposition with synthesized programs
    substituted for the holes (in {!hole_specs} order). *)

val pp : Format.formatter -> decomposition -> unit
