module Ast = Dsl.Ast
module Types = Dsl.Types

type eclass = int

exception Unsupported of string

(* E-nodes reference children by e-class id; operators reuse the DSL's
   op type (attributes included), with dedicated leaves for inputs and
   constants.  Constants are keyed by their IEEE-754 bit pattern, not
   the float itself: hashconsing and e-matching compare nodes
   structurally, and [nan <> nan] under structural equality would mint
   a fresh e-class for every NaN added and make patterns containing a
   NaN literal unmatchable. *)
type nop = N_input of string | N_const of int64 | N_op of Ast.op
type enode = { nop : nop; children : eclass array }

type class_data = {
  mutable nodes : enode list;
  mutable parents : (enode * eclass) list;
  vt : Types.vt;
}

type saturation_stats = {
  iterations : int;
  applications : int;
  classes : int;
  nodes : int;
  saturated : bool;
}

type t = {
  env : Types.env;
  mutable parent : int array;  (* union-find *)
  mutable count : int;
  classes : (eclass, class_data) Hashtbl.t;
  memo : (enode, eclass) Hashtbl.t;  (* hashcons of canonical e-nodes *)
  mutable worklist : eclass list;  (* classes needing congruence repair *)
  mutable last_stats : saturation_stats;
}

let create env =
  {
    env;
    parent = Array.init 64 Fun.id;
    count = 0;
    classes = Hashtbl.create 256;
    memo = Hashtbl.create 256;
    worklist = [];
    last_stats =
      { iterations = 0; applications = 0; classes = 0; nodes = 0;
        saturated = true };
  }

let rec find g i =
  let p = g.parent.(i) in
  if p = i then i
  else begin
    let root = find g p in
    g.parent.(i) <- root;
    root
  end

let canonicalize g node =
  { node with children = Array.map (find g) node.children }

let class_of g i = Hashtbl.find g.classes (find g i)

let fresh_class g vt =
  let id = g.count in
  g.count <- g.count + 1;
  if id >= Array.length g.parent then begin
    let bigger = Array.init (2 * Array.length g.parent) Fun.id in
    Array.blit g.parent 0 bigger 0 (Array.length g.parent);
    g.parent <- bigger
  end;
  g.parent.(id) <- id;
  Hashtbl.replace g.classes id { nodes = []; parents = []; vt };
  id

let node_vt g node =
  match node.nop with
  | N_input name -> (
      match List.assoc_opt name g.env with
      | Some vt -> vt
      | None -> raise (Types.Type_error ("unbound input " ^ name)))
  | N_const _ -> Types.scalar_f
  | N_op op ->
      Types.infer_op op
        (Array.to_list (Array.map (fun c -> (class_of g c).vt) node.children))

(* Insert a canonical node, returning its e-class. *)
let add_node g node =
  let node = canonicalize g node in
  match Hashtbl.find_opt g.memo node with
  | Some c -> find g c
  | None ->
      let vt = node_vt g node in
      let id = fresh_class g vt in
      Hashtbl.replace g.memo node id;
      (class_of g id).nodes <- [ node ];
      Array.iter
        (fun child ->
          let cd = class_of g child in
          cd.parents <- (node, id) :: cd.parents)
        node.children;
      id

let rec add g (t : Ast.t) =
  match t with
  | Input name -> add_node g { nop = N_input name; children = [||] }
  | Const f ->
      add_node g { nop = N_const (Int64.bits_of_float f); children = [||] }
  | App (op, args) ->
      let children = Array.of_list (List.map (add g) args) in
      add_node g { nop = N_op op; children }
  | For_stack _ -> raise (Unsupported "comprehensions in an e-graph")

let equivalent g a b = find g a = find g b

(* Union two classes and queue congruence repair. *)
let union g a b =
  let ra = find g a and rb = find g b in
  if ra = rb then false
  else begin
    (* merge smaller into larger *)
    let da = Hashtbl.find g.classes ra and db = Hashtbl.find g.classes rb in
    let keep, absorb, dk, dab =
      if List.length da.parents >= List.length db.parents then (ra, rb, da, db)
      else (rb, ra, db, da)
    in
    g.parent.(absorb) <- keep;
    dk.nodes <- dab.nodes @ dk.nodes;
    dk.parents <- dab.parents @ dk.parents;
    Hashtbl.remove g.classes absorb;
    g.worklist <- keep :: g.worklist;
    true
  end

(* Congruence closure: re-canonicalize parents of merged classes; equal
   canonical nodes force their classes equal. *)
let rebuild g =
  while g.worklist <> [] do
    let todo = List.sort_uniq compare (List.map (find g) g.worklist) in
    g.worklist <- [];
    List.iter
      (fun cls ->
        match Hashtbl.find_opt g.classes cls with
        | None -> ()
        | Some data ->
            let parents = data.parents in
            data.parents <- [];
            let fresh = Hashtbl.create 16 in
            List.iter
              (fun (pnode, pcls) ->
                let canon = canonicalize g pnode in
                Hashtbl.remove g.memo pnode;
                (match Hashtbl.find_opt fresh canon with
                | Some other -> ignore (union g pcls other)
                | None -> ());
                Hashtbl.replace fresh canon (find g pcls))
              parents;
            Hashtbl.iter
              (fun canon pcls ->
                Hashtbl.replace g.memo canon pcls;
                (class_of g cls).parents <-
                  (canon, pcls) :: (class_of g cls).parents)
              fresh)
      todo
  done

(* ------------------------------------------------------------------ *)
(* E-matching                                                          *)
(* ------------------------------------------------------------------ *)

(* Match a rule pattern against an e-class, producing bindings from
   metavariables to e-classes. *)
let ematch g (rule : Rules.t) cls =
  let is_metavar name =
    List.exists (fun (_, mv) -> mv = name) rule.Rules.metavars
  in
  let rec go (pat : Ast.t) cls (subst : (string * eclass) list) =
    let cls = find g cls in
    match pat with
    | Input mv when is_metavar mv -> (
        match List.assoc_opt mv subst with
        | Some bound -> if find g bound = cls then [ subst ] else []
        | None -> [ (mv, cls) :: subst ])
    | Input name ->
        if
          List.exists
            (fun n -> n.nop = N_input name)
            (class_of g cls).nodes
        then [ subst ]
        else []
    | Const f ->
        let bits = Int64.bits_of_float f in
        if
          List.exists (fun n -> n.nop = N_const bits) (class_of g cls).nodes
        then [ subst ]
        else []
    | App (op, args) ->
        List.concat_map
          (fun node ->
            match node.nop with
            | N_op op' when op' = op
                            && Array.length node.children
                               = List.length args ->
                List.fold_left2
                  (fun substs arg child ->
                    List.concat_map (go arg child) substs)
                  [ subst ] args (Array.to_list node.children)
            | N_op _ | N_input _ | N_const _ -> [])
          (class_of g cls).nodes
    | For_stack _ -> []
  in
  go rule.Rules.lhs cls []

(* Instantiate the rule's right-hand side under a binding. *)
let rec instantiate g (pat : Ast.t) subst =
  match pat with
  | Input name -> (
      match List.assoc_opt name subst with
      | Some cls -> cls
      | None -> add g (Input name))
  | Const f -> add g (Const f)
  | App (op, args) ->
      let children =
        Array.of_list (List.map (fun a -> instantiate g a subst) args)
      in
      add_node g { nop = N_op op; children }
  | For_stack _ -> raise (Unsupported "comprehension in rule rhs")

let total_nodes g =
  Hashtbl.fold
    (fun _ (d : class_data) acc -> acc + List.length d.nodes)
    g.classes 0

let saturate ?(iters = 8) ?(node_limit = 10_000) ~rules g =
  let applications = ref 0 in
  let iterations = ref 0 in
  let saturated = ref false in
  (try
     for _ = 1 to iters do
       incr iterations;
       (* snapshot the classes before this round *)
       let classes = Hashtbl.fold (fun c _ acc -> c :: acc) g.classes [] in
       let matches =
         List.concat_map
           (fun rule ->
             List.concat_map
               (fun cls ->
                 if Hashtbl.mem g.classes cls then
                   List.map (fun subst -> (rule, cls, subst)) (ematch g rule cls)
                 else [])
               classes)
           rules
       in
       let changed = ref false in
       List.iter
         (fun ((rule : Rules.t), cls, subst) ->
           if total_nodes g < node_limit then begin
             match instantiate g rule.rhs subst with
             | rhs_cls ->
                 if union g cls rhs_cls then begin
                   incr applications;
                   changed := true
                 end
             | exception
                 (Types.Type_error _ | Unsupported _ | Invalid_argument _)
               ->
                 ()
           end)
         matches;
       rebuild g;
       if not !changed then begin
         saturated := true;
         raise Exit
       end;
       if total_nodes g >= node_limit then raise Exit
     done
   with Exit -> ());
  let stats =
    {
      iterations = !iterations;
      applications = !applications;
      classes = Hashtbl.length g.classes;
      nodes = total_nodes g;
      saturated = !saturated;
    }
  in
  g.last_stats <- stats;
  stats

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let extract g ~model cls =
  (* Bottom-up cost relaxation to a fixpoint, then reconstruction. *)
  let best : (eclass, float * enode) Hashtbl.t = Hashtbl.create 64 in
  let node_cost node =
    match node.nop with
    | N_input _ | N_const _ -> Some 0.
    | N_op op ->
        let child_costs =
          Array.map
            (fun c ->
              match Hashtbl.find_opt best (find g c) with
              | Some (cost, _) -> cost
              | None -> infinity)
            node.children
        in
        if Array.exists (fun c -> c = infinity) child_costs then None
        else
          let arg_ts =
            Array.to_list
              (Array.map (fun c -> (class_of g c).vt) node.children)
          in
          (match model.Cost.Model.op_cost op arg_ts with
          | c -> Some (c +. Array.fold_left ( +. ) 0. child_costs)
          | exception Types.Type_error _ -> None)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun id (data : class_data) ->
        List.iter
          (fun node ->
            match node_cost node with
            | None -> ()
            | Some cost -> (
                match Hashtbl.find_opt best id with
                | Some (old, _) when old <= cost -> ()
                | _ ->
                    Hashtbl.replace best id (cost, node);
                    changed := true))
          data.nodes)
      g.classes
  done;
  let rec build id =
    match Hashtbl.find_opt best (find g id) with
    | None -> raise (Unsupported "extraction from an unrealizable class")
    | Some (_, node) -> (
        match node.nop with
        | N_input name -> Ast.Input name
        | N_const bits -> Ast.Const (Int64.float_of_bits bits)
        | N_op op ->
            Ast.App (op, Array.to_list (Array.map build node.children)))
  in
  build cls

let stats g =
  {
    g.last_stats with
    classes = Hashtbl.length g.classes;
    nodes = total_nodes g;
  }
