module Json = Obs.Telemetry.Json
module Tel = Obs.Telemetry

let schema = "stenso.serve/1"

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let base_fields ~id ~ok =
  [
    ("schema", Json.Str schema);
    ("version", Json.Str Version.current);
    ("id", id);
    ("ok", Json.Bool ok);
  ]

let error_json ?(id = Json.Null) msg =
  Json.Obj (base_fields ~id ~ok:false @ [ ("error", Json.Str msg) ])

let busy_line = Json.to_string (error_json "busy")

let outcome_json ~id ~env (o : Superopt.outcome) =
  let s = o.search.stats in
  Json.Obj
    (base_fields ~id ~ok:true
    @ [
        ("cache_hit", Json.Bool o.from_cache);
        ("tier", Json.Int o.tier);
        ("improved", Json.Bool o.improved);
        ("verified", Json.Bool o.verified);
        ("cost_before", Json.Float o.original_cost);
        ("cost_after", Json.Float o.optimized_cost);
        ("optimized", Json.Str (Dsl.Parser.unparse env o.optimized));
        ( "search",
          Json.Obj
            [
              ("nodes", Json.Int s.nodes);
              ("elapsed", Json.Float s.elapsed);
              ("timed_out", Json.Bool s.timed_out);
              ("library_size", Json.Int s.library_size);
            ] );
      ])

(* Per-request configuration overrides on top of the daemon's base. *)
let config_of_json ~base j =
  let ( let* ) = Result.bind in
  let field name conv apply acc =
    let* cfg = acc in
    match Json.member name j with
    | None -> Ok cfg
    | Some v -> (
        match conv v with
        | Some x -> Ok (apply x cfg)
        | None -> Error (Printf.sprintf "mistyped config field %S" name))
  in
  Ok base
  |> field "cost_estimator" Json.to_string_opt (fun s cfg ->
         match Config.estimator_of_string s with
         | Ok e -> Config.with_estimator e cfg
         | Error _ -> cfg)
  |> field "timeout" Json.to_float_opt Config.with_timeout
  |> field "node_budget" Json.to_int_opt Config.with_node_budget
  |> field "max_depth" Json.to_int_opt Config.with_max_depth
  |> field "extended_ops" Json.to_bool_opt Config.with_extended_ops
  |> field "use_bnb" Json.to_bool_opt Config.with_bnb
  |> field "use_simplification" Json.to_bool_opt Config.with_simplification
  |> field "rules_depth" Json.to_int_opt Config.with_rules_depth

type request = { id : Json.t; source : string; config : Config.t }

let parse_request ~base doc =
  let ( let* ) = Result.bind in
  let id = Option.value ~default:Json.Null (Json.member "id" doc) in
  let* source =
    match Option.bind (Json.member "program" doc) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (id, "missing or mistyped \"program\" field")
  in
  let* config =
    match Json.member "config" doc with
    | None -> Ok base
    | Some (Json.Obj _ as cfg) ->
        Result.map_error (fun e -> (id, e)) (config_of_json ~base cfg)
    | Some _ -> Error (id, "\"config\" must be an object")
  in
  Ok { id; source; config }

(* ------------------------------------------------------------------ *)
(* Handler                                                             *)
(* ------------------------------------------------------------------ *)

type handler = {
  tel : Tel.t;
  store : Store.t option;
  base : Config.t;
  stub_cache : Stub.Cache.cache;
  (* One model per estimator, shared across requests: the measured
     model's profiling table (and its internal lock) amortize over the
     daemon's lifetime instead of re-profiling per request. *)
  models : (string, Cost.Model.t) Hashtbl.t;
  models_lock : Mutex.t;
}

let handler ?(tel = Tel.null) ?store ~base () =
  {
    tel;
    store;
    (* The worker pool is the daemon's parallelism; per-request domain
       fan-out on top of it would oversubscribe the machine. *)
    base = Config.with_jobs 1 base;
    stub_cache = Stub.Cache.create ();
    models = Hashtbl.create 4;
    models_lock = Mutex.create ();
  }

let model_for h config =
  let name = Config.estimator_name (Config.estimator config) in
  Mutex.protect h.models_lock (fun () ->
      match Hashtbl.find_opt h.models name with
      | Some m -> m
      | None ->
          let m = Config.model ~tel:h.tel config in
          Hashtbl.add h.models name m;
          m)

let handle_doc h doc =
  match parse_request ~base:h.base doc with
  | Error (id, msg) -> error_json ~id msg
  | Ok { id; source; config } -> (
      match
        let env, prog = Dsl.Parser.program source in
        ignore (Dsl.Types.infer env prog);
        let model = model_for h config in
        let outcome =
          Superopt.optimize ~tel:h.tel ~config ?store:h.store
            ~stub_cache:h.stub_cache ~model ~env prog
        in
        outcome_json ~id ~env outcome
      with
      | resp -> resp
      | exception Dsl.Parser.Parse_error msg ->
          error_json ~id ("parse error: " ^ msg)
      | exception Dsl.Types.Type_error msg ->
          error_json ~id ("type error: " ^ msg)
      | exception e ->
          (* The daemon must survive any request: report, don't die. *)
          error_json ~id ("internal error: " ^ Printexc.to_string e))

let handle_line h line =
  Tel.incr h.tel "serve.requests";
  let resp =
    match Json.of_string (String.trim line) with
    | Error msg -> error_json ("invalid JSON: " ^ msg)
    | Ok doc -> handle_doc h doc
  in
  Json.to_string resp

(* ------------------------------------------------------------------ *)
(* Daemon                                                              *)
(* ------------------------------------------------------------------ *)

type queue = {
  lock : Mutex.t;
  cond : Condition.t;
  conns : Unix.file_descr Queue.t;
  capacity : int;
  stop : bool Atomic.t;
}

let respond_and_close fd line =
  let oc = Unix.out_channel_of_descr fd in
  (try
     output_string oc (line ^ "\n");
     flush oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_connection h fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       let line = input_line ic in
       if String.trim line <> "" then begin
         output_string oc (handle_line h line);
         output_char oc '\n';
         flush oc
       end;
       loop ()
     in
     loop ()
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  (* Closing either channel closes the shared descriptor. *)
  close_out_noerr oc;
  close_in_noerr ic

let worker_loop h q () =
  let rec next () =
    Mutex.lock q.lock;
    while Queue.is_empty q.conns && not (Atomic.get q.stop) do
      Condition.wait q.cond q.lock
    done;
    (* Graceful shutdown: drain what was accepted before stopping. *)
    let job =
      if Queue.is_empty q.conns then None else Some (Queue.pop q.conns)
    in
    Mutex.unlock q.lock;
    match job with
    | Some fd ->
        serve_connection h fd;
        next ()
    | None -> ()
  in
  next ()

let serve ?(tel = Tel.null) ?store ?(workers = 2) ?(queue_capacity = 64)
    ~base ~socket () =
  let h = handler ~tel ?store ~base () in
  let q =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      conns = Queue.create ();
      capacity = max 1 queue_capacity;
      stop = Atomic.make false;
    }
  in
  (* A client that disconnects mid-response must not kill the daemon. *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let request_stop _ = Atomic.set q.stop true in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  (try if Sys.file_exists socket then Sys.remove socket
   with Sys_error _ -> ());
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen with Unix.Unix_error _ -> ());
      (try Sys.remove socket with Sys_error _ -> ());
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigpipe prev_pipe)
    (fun () ->
      Unix.bind listen (Unix.ADDR_UNIX socket);
      Unix.listen listen 64;
      let pool = Array.init (max 1 workers) (fun _ -> Domain.spawn (worker_loop h q)) in
      Tel.event tel "serve.start"
        [
          ("socket", Tel.Str socket);
          ("workers", Tel.Int (max 1 workers));
          ("queue_capacity", Tel.Int q.capacity);
        ];
      (* Accept loop: poll with a short timeout so SIGINT/SIGTERM are
         honoured promptly whether or not the signal interrupts the
         syscall. *)
      while not (Atomic.get q.stop) do
        match Unix.select [ listen ] [] [] 0.25 with
        | [], _, _ -> ()
        | _ -> (
            match Unix.accept listen with
            | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
                ()
            | fd, _ ->
                let accepted =
                  Mutex.protect q.lock (fun () ->
                      if Queue.length q.conns >= q.capacity then false
                      else begin
                        Queue.push fd q.conns;
                        Condition.signal q.cond;
                        true
                      end)
                in
                if not accepted then begin
                  (* Explicit backpressure: shed instead of queueing
                     unboundedly. *)
                  Tel.incr tel "serve.shed";
                  respond_and_close fd busy_line
                end)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      (* Graceful shutdown: wake the pool, drain, flush the store. *)
      Mutex.protect q.lock (fun () -> Condition.broadcast q.cond);
      Array.iter Domain.join pool;
      Option.iter Store.flush store;
      Tel.event tel "serve.stop" [])

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

(* Connect with retry: a daemon that is still binding its socket (or
   briefly saturated) makes [connect] fail with ENOENT / ECONNREFUSED /
   EAGAIN; back off geometrically and retry until [deadline].  Other
   errors (permissions, not a socket) fail immediately. *)
let connect_with_retry ~deadline fd addr =
  let rec go delay =
    match Unix.connect fd addr with
    | () -> Ok ()
    | exception
        Unix.Unix_error
          ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN) as e, _, _)
      ->
        let now = Unix.gettimeofday () in
        if now >= deadline then Error e
        else begin
          Unix.sleepf (Float.min delay (deadline -. now));
          go (Float.min (delay *. 2.) 1.)
        end
    | exception Unix.Unix_error (e, _, _) -> Error e
  in
  go 0.05

let request ?(timeout = 30.) ~socket line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let deadline = Unix.gettimeofday () +. Float.max 0. timeout in
  match connect_with_retry ~deadline fd (Unix.ADDR_UNIX socket) with
  | Error e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket
           (Unix.error_message e))
  | Ok () -> (
      (* Bound each read/write so a hung daemon cannot block the client
         forever; the remaining budget after connecting caps both. *)
      let io_budget = Float.max 0.05 (deadline -. Unix.gettimeofday ()) in
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO io_budget;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO io_budget
       with Unix.Unix_error _ -> ());
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      let finish r =
        close_out_noerr oc;
        close_in_noerr ic;
        r
      in
      match
        output_string oc (line ^ "\n");
        flush oc;
        input_line ic
      with
      | resp -> finish (Ok resp)
      | exception End_of_file ->
          finish (Error "connection closed without a response")
      | exception Sys_error _ ->
          finish (Error "transport error while talking to the daemon")
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          finish
            (Error
               (Printf.sprintf "no response from the daemon within %gs"
                  timeout))
      | exception Unix.Unix_error _ ->
          finish (Error "transport error while talking to the daemon"))
