module Json = Obs.Telemetry.Json
module Tel = Obs.Telemetry

let schema = "stenso.serve/1"

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let base_fields ~id ~ok =
  [
    ("schema", Json.Str schema);
    ("version", Json.Str Version.current);
    ("id", id);
    ("ok", Json.Bool ok);
  ]

let error_json ?(id = Json.Null) msg =
  Json.Obj (base_fields ~id ~ok:false @ [ ("error", Json.Str msg) ])

let busy_line = Json.to_string (error_json "busy")
let too_long_line = Json.to_string (error_json "request line too long")

(* A shed response, from any replica: ok:false with the exact "busy"
   error.  Clients treat it as backpressure (retry with jitter, exit
   code of its own), never as an IO failure. *)
let is_busy_line line =
  match Json.of_string (String.trim line) with
  | Error _ -> false
  | Ok doc -> (
      match
        ( Option.bind (Json.member "ok" doc) Json.to_bool_opt,
          Option.bind (Json.member "error" doc) Json.to_string_opt )
      with
      | Some false, Some "busy" -> true
      | _ -> false)

let outcome_json ~id ~env ~coalesced (o : Superopt.outcome) =
  let s = o.search.stats in
  Json.Obj
    (base_fields ~id ~ok:true
    @ [
        ("cache_hit", Json.Bool o.from_cache);
        ("tier", Json.Int o.tier);
        ("coalesced", Json.Bool coalesced);
        ("refined", Json.Bool o.refined);
        ("improved", Json.Bool o.improved);
        ("verified", Json.Bool o.verified);
        ("cost_before", Json.Float o.original_cost);
        ("cost_after", Json.Float o.optimized_cost);
        ("optimized", Json.Str (Dsl.Parser.unparse env o.optimized));
        ( "search",
          Json.Obj
            [
              ("nodes", Json.Int s.nodes);
              ("elapsed", Json.Float s.elapsed);
              ("timed_out", Json.Bool s.timed_out);
              ("library_size", Json.Int s.library_size);
            ] );
      ])

(* Per-request configuration overrides on top of the daemon's base. *)
let config_of_json ~base j =
  let ( let* ) = Result.bind in
  let field name conv apply acc =
    let* cfg = acc in
    match Json.member name j with
    | None -> Ok cfg
    | Some v -> (
        match conv v with
        | Some x -> Ok (apply x cfg)
        | None -> Error (Printf.sprintf "mistyped config field %S" name))
  in
  Ok base
  |> field "cost_estimator" Json.to_string_opt (fun s cfg ->
         match Config.estimator_of_string s with
         | Ok e -> Config.with_estimator e cfg
         | Error _ -> cfg)
  |> field "timeout" Json.to_float_opt Config.with_timeout
  |> field "node_budget" Json.to_int_opt Config.with_node_budget
  |> field "max_depth" Json.to_int_opt Config.with_max_depth
  |> field "extended_ops" Json.to_bool_opt Config.with_extended_ops
  |> field "use_bnb" Json.to_bool_opt Config.with_bnb
  |> field "use_simplification" Json.to_bool_opt Config.with_simplification
  |> field "rules_depth" Json.to_int_opt Config.with_rules_depth

type request = { id : Json.t; source : string; config : Config.t }

let parse_request ~base doc =
  let ( let* ) = Result.bind in
  let id = Option.value ~default:Json.Null (Json.member "id" doc) in
  let* source =
    match Option.bind (Json.member "program" doc) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (id, "missing or mistyped \"program\" field")
  in
  let* config =
    match Json.member "config" doc with
    | None -> Ok base
    | Some (Json.Obj _ as cfg) ->
        Result.map_error (fun e -> (id, e)) (config_of_json ~base cfg)
    | Some _ -> Error (id, "\"config\" must be an object")
  in
  Ok { id; source; config }

(* ------------------------------------------------------------------ *)
(* Handler                                                             *)
(* ------------------------------------------------------------------ *)

type handler = {
  tel : Tel.t;
  store : Store.t option;
  base : Config.t;
  stub_cache : Stub.Cache.cache;
  (* One model per estimator, shared across requests: the measured
     model's profiling table (and its internal lock) amortize over the
     daemon's lifetime instead of re-profiling per request. *)
  models : (string, Cost.Model.t) Hashtbl.t;
  models_lock : Mutex.t;
  (* Identical in-flight requests (same store key) coalesce onto one
     synthesis; waiters all receive the leader's outcome. *)
  flight : Superopt.outcome Tnet.Single_flight.t;
  (* Store keys with a background refinement queued or running, so one
     hot spec enqueues one refinement, not one per request. *)
  refining : (string, unit) Hashtbl.t;
  refine_lock : Mutex.t;
}

let handler ?(tel = Tel.null) ?store ~base () =
  {
    tel;
    store;
    (* The worker pool is the daemon's parallelism; per-request domain
       fan-out on top of it would oversubscribe the machine. *)
    base = Config.with_jobs 1 base;
    stub_cache = Stub.Cache.create ();
    models = Hashtbl.create 4;
    models_lock = Mutex.create ();
    flight = Tnet.Single_flight.create ();
    refining = Hashtbl.create 16;
    refine_lock = Mutex.create ();
  }

let coalesced_total h = Tnet.Single_flight.coalesced h.flight

let model_for h config =
  let name = Config.estimator_name (Config.estimator config) in
  Mutex.protect h.models_lock (fun () ->
      match Hashtbl.find_opt h.models name with
      | Some m -> m
      | None ->
          let m = Config.model ~tel:h.tel config in
          Hashtbl.add h.models name m;
          m)

(* Queue a tier-3 refinement for an unrefined answer on the caller's
   background executor.  At most one refinement per store key is ever
   outstanding; a full background queue just drops the attempt (a later
   request for the same spec will retry). *)
let maybe_refine h ~background ~key ~config ~model ~env ~spec prog =
  match (h.store, background) with
  | Some store, Some submit ->
      let claimed =
        Mutex.protect h.refine_lock (fun () ->
            if Hashtbl.mem h.refining key then false
            else begin
              Hashtbl.add h.refining key ();
              true
            end)
      in
      if claimed then begin
        let release () =
          Mutex.protect h.refine_lock (fun () ->
              Hashtbl.remove h.refining key)
        in
        let job () =
          Fun.protect ~finally:release (fun () ->
              ignore
                (Superopt.refine ~tel:h.tel ~config ~store
                   ~stub_cache:h.stub_cache ~model ~spec ~env prog))
        in
        if submit job then Tel.incr h.tel "serve.refine_enqueued"
        else begin
          release ();
          Tel.incr h.tel "serve.refine_shed"
        end
      end
  | _ -> ()

let handle_doc ?background h doc =
  match parse_request ~base:h.base doc with
  | Error (id, msg) -> error_json ~id msg
  | Ok { id; source; config } -> (
      match
        let env, prog = Dsl.Parser.program source in
        ignore (Dsl.Types.infer env prog);
        let model = model_for h config in
        match h.store with
        | None ->
            let outcome =
              Superopt.optimize ~tel:h.tel ~config
                ~stub_cache:h.stub_cache ~model ~env prog
            in
            outcome_json ~id ~env ~coalesced:false outcome
        | Some store ->
            let spec = Dsl.Sexec.exec_env env prog in
            let key = Superopt.store_key ~config ~model ~env ~spec prog in
            let outcome, coalesced =
              Tnet.Single_flight.run h.flight key (fun () ->
                  Superopt.optimize ~tel:h.tel ~config ~store
                    ~stub_cache:h.stub_cache ~model ~spec ~env prog)
            in
            if coalesced then Tel.incr h.tel "serve.coalesced";
            if not outcome.refined then
              maybe_refine h ~background ~key ~config ~model ~env ~spec
                prog;
            outcome_json ~id ~env ~coalesced outcome
      with
      | resp -> resp
      | exception Dsl.Parser.Parse_error msg ->
          error_json ~id ("parse error: " ^ msg)
      | exception Dsl.Types.Type_error msg ->
          error_json ~id ("type error: " ^ msg)
      | exception e ->
          (* The daemon must survive any request: report, don't die. *)
          error_json ~id ("internal error: " ^ Printexc.to_string e))

let handle_line ?background h line =
  Tel.incr h.tel "serve.requests";
  let resp =
    match Json.of_string (String.trim line) with
    | Error msg -> error_json ("invalid JSON: " ^ msg)
    | Ok doc -> handle_doc ?background h doc
  in
  Json.to_string resp

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

type reply =
  | Reply of string  (** a protocol response line (possibly [ok:false]) *)
  | Busy  (** every endpoint shed the request, retries exhausted *)
  | Transport of string  (** no endpoint produced a response *)

(* Connect with retry: a daemon that is still binding its socket (or
   briefly saturated) makes [connect] fail with ENOENT / ECONNREFUSED /
   EAGAIN; back off geometrically and retry until [deadline].  Other
   errors (permissions, not a socket) fail immediately. *)
let connect_with_retry ~deadline ep =
  let rec go delay =
    match Tnet.Endpoint.connect ep with
    | Ok fd -> Ok fd
    | Error
        (Unix.Unix_error
           ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN), _, _) as e) ->
        let now = Unix.gettimeofday () in
        if now >= deadline then Error e
        else begin
          Unix.sleepf (Float.min delay (deadline -. now));
          go (Float.min (delay *. 2.) 1.)
        end
    | Error e -> Error e
  in
  go 0.05

let exn_message = function
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | Not_found -> "host not found"
  | e -> Printexc.to_string e

(* One exchange against one endpoint. *)
let try_endpoint ~deadline ep line =
  match connect_with_retry ~deadline ep with
  | Error e ->
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (Tnet.Endpoint.to_string ep)
           (exn_message e))
  | Ok fd ->
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let buf = Buffer.create 256 in
          Tnet.Lineio.exchange ~deadline ~buf fd line)

(* Send one request to a replica set: endpoints are tried round-robin
   (starting from a caller-chosen offset so independent clients spread
   load), transport failures fail over to the next replica, and busy
   responses are retried with jittered exponential backoff — a shed
   request is backpressure, not an error, until [busy_retries] rounds
   have all been shed. *)
let request ?(timeout = 30.) ?(busy_retries = 3) ?(rng = Random.State.make_self_init ())
    ?(offset = 0) ~endpoints line =
  match endpoints with
  | [] -> Transport "no endpoints"
  | _ -> (
      let eps = Array.of_list endpoints in
      let n = Array.length eps in
      let deadline = Unix.gettimeofday () +. Float.max 0.05 timeout in
      let round start =
        (* One sweep across the replicas: the first protocol response
           wins; remember whether everything that answered said busy. *)
        let rec go i last_err =
          if i >= n then `No_reply last_err
          else
            let ep = eps.((start + i) mod n) in
            (* Within a sweep each endpoint gets a slice of the budget,
               so one dead replica cannot eat the whole deadline. *)
            let slice =
              Unix.gettimeofday ()
              +. Float.max 0.05
                   ((deadline -. Unix.gettimeofday ())
                   /. float_of_int (n - i))
            in
            let slice = Float.min slice deadline in
            match try_endpoint ~deadline:slice ep line with
            | Ok resp when is_busy_line resp -> `Busy
            | Ok resp -> `Reply resp
            | Error e -> go (i + 1) (Some e)
        in
        go 0 None
      in
      let rec attempt k delay =
        match round (offset + k) with
        | `Reply resp -> Reply resp
        | `No_reply err ->
            if Unix.gettimeofday () < deadline && k < busy_retries then begin
              Unix.sleepf (Float.min delay (deadline -. Unix.gettimeofday ()));
              attempt (k + 1) (Float.min (delay *. 2.) 2.)
            end
            else
              Transport
                (Option.value ~default:"no endpoint reachable" err)
        | `Busy ->
            if k >= busy_retries || Unix.gettimeofday () >= deadline then
              Busy
            else begin
              (* Full jitter: uniformly random in [0, cap] so shed
                 clients do not re-arrive in lockstep. *)
              let cap = Float.min delay (deadline -. Unix.gettimeofday ()) in
              if cap > 0. then Unix.sleepf (Random.State.float rng cap);
              attempt (k + 1) (Float.min (delay *. 2.) 2.)
            end
      in
      attempt 0 0.1)
