(* Stenso.Net: the serving stack.

   [Tnet] supplies the transport-level pieces — endpoints, deadline
   line IO, the multiplexing server, single-flight coalescing, the load
   generator — re-exported here so users address them as [Stenso.Net.*]
   (the same re-export pattern as {!Exec} over [Texec] and {!Telemetry}
   over [Obs]).  On top of them, [serve] assembles the stenso daemon: a
   {!Serve.handler} behind a {!Server} on any mix of Unix-socket and
   TCP listeners, with spare worker capacity running background tier-3
   refinement. *)

include Tnet
module Tel = Obs.Telemetry

(* Run the daemon until SIGINT/SIGTERM.  [listeners] may mix Unix
   sockets and TCP endpoints; TCP port 0 binds an ephemeral port, and
   [on_bound] receives the resolved addresses before serving starts (so
   callers can print the real port for clients to use).  [background]
   turns the refinement executor off entirely — every other aspect of
   serving is unchanged.  Shutdown is graceful: listeners close first,
   queued and in-flight requests finish, pending background jobs are
   discarded, the store is flushed, socket files are removed. *)
let serve ?(tel = Tel.null) ?store ?(workers = 2) ?(queue_capacity = 64)
    ?(max_conns = 1024) ?(max_line = 1 lsl 20) ?(read_deadline = 30.)
    ?(write_deadline = 30.) ?(background = true) ?on_bound ~base ~listeners
    () =
  let h = Serve.handler ~tel ?store ~base () in
  let config =
    {
      Server.default_config with
      listeners;
      workers = max 1 workers;
      queue_capacity = max 1 queue_capacity;
      max_conns = max 1 max_conns;
      max_line;
      read_deadline;
      write_deadline;
    }
  in
  let server =
    Server.create ~tel ~config ~busy_line:Serve.busy_line
      ~too_long_line:Serve.too_long_line (fun (ctx : Server.ctx) line ->
        Serve.handle_line
          ?background:(if background then Some ctx.background else None)
          h line)
  in
  Option.iter (fun f -> f (Server.addresses server)) on_bound;
  (* A client that disconnects mid-response must not kill the daemon. *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  (* [Server.stop] is async-signal-safe: an atomic flag plus a pipe
     write, no locks. *)
  let request_stop _ = Server.stop server in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigpipe prev_pipe)
    (fun () ->
      Server.run server;
      Option.iter Store.flush store)
