module St = Dsl.Sexec.Stensor
module Expr = Symbolic.Expr
module Shape = Tensor.Shape

type t = St.t

let shape = St.shape
let equal = St.equal

let build_key t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Shape.to_string (St.shape t));
  Array.iter
    (fun e ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (Expr.to_string e))
    (St.to_array t);
  Buffer.contents buf

(* [key] is O(numel * |expr|) to build and the search probes it on every
   memo lookup, visited-set check and library lookup, so the result is
   cached per spec.  The cache is keyed on the physical identity of the
   spec's element buffer: specs are never mutated once they leave the
   solver (holes are filled element by element {e during} construction,
   before any [key] call), so a buffer's rendering is stable.  Each
   domain keeps its own ephemeron table — no synchronization on the hot
   path, and entries die with their specs. *)

(* Key-build accounting.  One process-wide cell keeps the historical
   totals, and an {e ambient} per-run cell (installed by [with_counters]
   in every domain working on a given search) gives each telemetry sink
   its own attribution — two concurrent traced runs no longer count each
   other's key builds. *)
type key_counters = {
  builds : int Atomic.t;
  cache_hits : int Atomic.t;
  build_ns : int Atomic.t;
}

let fresh_counters () =
  { builds = Atomic.make 0; cache_hits = Atomic.make 0; build_ns = Atomic.make 0 }

let global_counters = fresh_counters ()

let counters_stats c =
  ( Atomic.get c.builds,
    Atomic.get c.cache_hits,
    float_of_int (Atomic.get c.build_ns) *. 1e-9 )

let key_stats () = counters_stats global_counters

let ambient_counters : key_counters option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let ambient () = Domain.DLS.get ambient_counters

let with_counters c f =
  let prev = Domain.DLS.get ambient_counters in
  Domain.DLS.set ambient_counters (Some c);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set ambient_counters prev)
    f

let note_hit () =
  Atomic.incr global_counters.cache_hits;
  match Domain.DLS.get ambient_counters with
  | Some c -> Atomic.incr c.cache_hits
  | None -> ()

let note_build ns =
  Atomic.incr global_counters.builds;
  ignore (Atomic.fetch_and_add global_counters.build_ns ns);
  match Domain.DLS.get ambient_counters with
  | Some c ->
      Atomic.incr c.builds;
      ignore (Atomic.fetch_and_add c.build_ns ns)
  | None -> ()

module Keytbl = Ephemeron.K1.Make (struct
  type t = Expr.t array

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let key_cache : string Keytbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Keytbl.create 1024)

let key t =
  let data = St.unsafe_data t in
  (* The empty array may be physically shared between distinct specs
     (whose keys still differ by shape); never cache it. *)
  if Array.length data = 0 then build_key t
  else
    let tbl = Domain.DLS.get key_cache in
    match Keytbl.find_opt tbl data with
    | Some k ->
        note_hit ();
        k
    | None ->
        let t0 = Unix.gettimeofday () in
        let k = build_key t in
        note_build (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
        Keytbl.add tbl data k;
        k

let complexity = Dsl.Sexec.complexity

let axis_uniform t axis =
  (* Are all slices along [axis] identical? *)
  let s = St.shape t in
  let n = s.(axis) in
  n > 1
  &&
  let ok = ref true in
  Shape.iter_indices s (fun idx ->
      if !ok && idx.(axis) > 0 then begin
        let first = Array.copy idx in
        first.(axis) <- 0;
        if not (Expr.equal (St.get t idx) (St.get t first)) then ok := false
      end);
  !ok

let shrink_axis t axis =
  let s = St.shape t in
  let s' = Array.copy s in
  s'.(axis) <- 1;
  St.init s' (fun idx -> St.get t idx)

let collapse t =
  let t = ref t in
  let changed = ref true in
  while !changed do
    changed := false;
    let s = St.shape !t in
    for axis = 0 to Shape.rank s - 1 do
      if axis_uniform !t axis then begin
        t := shrink_axis !t axis;
        changed := true
      end
    done
  done;
  (* Drop leading unit axes (broadcast-neutral). *)
  let s = St.shape !t in
  let lead = ref 0 in
  while !lead < Shape.rank s && s.(!lead) = 1 do
    incr lead
  done;
  if !lead = 0 then !t
  else
    St.reshape !t (Array.sub s !lead (Shape.rank s - !lead))

let is_uniform t =
  if St.numel t = 0 then None
  else
    let arr = St.to_array t in
    let first = arr.(0) in
    if Array.for_all (Expr.equal first) arr then Some first else None

let to_const t =
  match is_uniform t with Some e -> Expr.to_const e | None -> None

let scalar e = St.scalar e
let pp = St.pp
