module Ast = Dsl.Ast
module Types = Dsl.Types
module St = Dsl.Sexec.Stensor
module Shape = Tensor.Shape
module Expr = Symbolic.Expr
module Q = Symbolic.Q
module Sym = Symbolic.Sym

type part = P_hole of Spec.t | P_conc of Stub.t
type decomposition = { op : Ast.op; parts : part list }
type config = { max_conc_depth : int; max_split_terms : int }

let default_config = { max_conc_depth = 1; max_split_terms = 64 }

let hole_specs d =
  List.filter_map (function P_hole s -> Some s | P_conc _ -> None) d.parts

let conc_cost d =
  List.fold_left
    (fun acc p ->
      match p with P_conc s -> acc +. s.Stub.cost | P_hole _ -> acc)
    0. d.parts

let reconstruct d progs =
  let progs = ref progs in
  let args =
    List.map
      (fun p ->
        match p with
        | P_conc s -> s.Stub.prog
        | P_hole _ -> (
            match !progs with
            | p :: rest ->
                progs := rest;
                p
            | [] -> invalid_arg "Invert.reconstruct: not enough programs"))
      d.parts
  in
  Ast.App (d.op, args)

let pp ppf d =
  let part ppf = function
    | P_hole s -> Format.fprintf ppf "??%a" Shape.pp (Spec.shape s)
    | P_conc s -> Ast.pp ppf s.Stub.prog
  in
  Format.fprintf ppf "%s(%a)" (Ast.op_name d.op)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       part)
    d.parts

(* ------------------------------------------------------------------ *)
(* Elementwise helpers                                                 *)
(* ------------------------------------------------------------------ *)

exception No_solution

(* Elementwise combination under broadcasting where the combiner may
   fail; [None] when any element fails. *)
let map2_opt f a b =
  match
    St.map2
      (fun x y -> match f x y with Some v -> v | None -> raise No_solution)
      a b
  with
  | t -> Some t
  | exception (No_solution | Q.Overflow) -> None

let spec_vars spec =
  Array.fold_left
    (fun acc e -> Sym.Set.union acc (Expr.vars e))
    Sym.Set.empty (St.to_array spec)

(* Does [c]'s shape broadcast to exactly the spec shape? *)
let fits_within c_shape spec_shape =
  match Shape.broadcast c_shape spec_shape with
  | Some s -> Shape.equal s spec_shape
  | None -> false

(* ------------------------------------------------------------------ *)
(* One-hole elementwise sketches                                       *)
(* ------------------------------------------------------------------ *)

let elementwise_candidates (conc : Stub.t) spec =
  let c = conc.Stub.sem in
  let mk op parts = { op; parts } in
  let hole_first op h = mk op [ P_hole h; P_conc conc ] in
  let hole_second op h = mk op [ P_conc conc; P_hole h ] in
  let out = ref [] in
  let push d = out := d :: !out in
  (* add(??, c) — also covers add(c, ??) by commutativity. *)
  push (hole_first Ast.Add (St.sub spec c));
  (* sub(??, c) and sub(c, ??). *)
  push (hole_first Ast.Sub (St.add spec c));
  push (hole_second Ast.Sub (St.sub c spec));
  (* mul(??, c): exact division. *)
  (match map2_opt Expr.div_exact spec c with
  | Some h -> push (hole_first Ast.Mul h)
  | None -> ());
  (* div(??, c). *)
  push (hole_first Ast.Div (St.mul spec c));
  (* div(c, ??): c / spec must be exact. *)
  (match map2_opt Expr.div_exact c spec with
  | Some h -> push (hole_second Ast.Div h)
  | None -> ());
  (* power(??, q) for a scalar rational exponent. *)
  (match Spec.to_const c with
  | Some q when not (Q.is_zero q) && St.numel c = 1 -> (
      match
        map2_opt (fun e _ -> Expr.root_exact e q) spec c
      with
      | Some h -> push (hole_first Ast.Pow_op h)
      | None -> ())
  | _ -> ());
  (* power(c, ??): consistent exponent extraction. *)
  (let exponent_of ce fe =
     if Expr.equal ce fe then Some Q.one
     else
       match (ce, fe) with
       | _, Expr.Pow (b, Expr.Rat n) when Expr.equal b ce -> Some n
       | Expr.Pow (b1, Expr.Rat m), Expr.Pow (b2, Expr.Rat n)
         when Expr.equal b1 b2 && not (Q.is_zero m) ->
           Some (Q.div n m)
       | _ -> None
   in
   let exps =
     try
       Some
         (St.map2
            (fun ce fe ->
              match exponent_of ce fe with
              | Some q -> Expr.rat q
              | None -> raise No_solution)
            c spec)
     with No_solution | Invalid_argument _ | Q.Overflow -> None
   in
   match exps with
   | Some e -> (
       match Spec.is_uniform e with
       | Some expq when not (Expr.is_one expq) ->
           push (hole_second Ast.Pow_op (Spec.scalar expq))
       | _ -> ())
   | None -> ());
  (* maximum(??, c): strip c from a max application. *)
  (let strip ce fe =
     match fe with
     | Expr.App (Expr.Max, xs) when List.exists (Expr.equal ce) xs -> (
         match List.filter (fun x -> not (Expr.equal ce x)) xs with
         | [] -> Some ce
         | [ x ] -> Some x
         | x :: rest -> Some (List.fold_left Expr.max2 x rest))
     | _ when Expr.equal ce fe -> Some ce
     | _ -> None
   in
   match map2_opt strip c spec with
   | Some h -> push (hole_first Ast.Maximum h)
   | None -> ());
  !out

(* ------------------------------------------------------------------ *)
(* Unary sketches                                                      *)
(* ------------------------------------------------------------------ *)

let unary_candidates spec =
  let out = ref [] in
  let push op h = out := { op; parts = [ P_hole h ] } :: !out in
  (* Squaring expands sums, after which the normal form cannot always
     recognize the square root again; only offer the sketch when the
     round trip is structurally exact. *)
  let squared = St.map (fun e -> Expr.pow e (Expr.int 2)) spec in
  if St.equal (St.sqrt squared) spec then push Ast.Sqrt squared;
  push Ast.Exp (St.log spec);
  push Ast.Log (St.exp spec);
  if Shape.rank (St.shape spec) >= 2 then
    push (Ast.Transpose None) (St.transpose spec);
  !out

(* ------------------------------------------------------------------ *)
(* Sum splitting                                                       *)
(* ------------------------------------------------------------------ *)

(* Uniform term count across all elements, or None. *)
let uniform_term_count spec =
  let arr = St.to_array spec in
  if Array.length arr = 0 then None
  else
    let count e = List.length (Expr.terms e) in
    let t = count arr.(0) in
    if t >= 2 && Array.for_all (fun e -> count e = t) arr then Some t
    else None

let sum_axis_candidates cfg spec =
  match uniform_term_count spec with
  | Some t when t <= cfg.max_split_terms ->
      let s = St.shape spec in
      List.init
        (Shape.rank s + 1)
        (fun axis ->
          let hole_shape = Shape.insert_axis s axis t in
          let hole =
            St.init hole_shape (fun idx ->
                let j = idx.(axis) in
                let src = Shape.remove_axis idx axis in
                List.nth (Expr.terms (St.get spec src)) j)
          in
          (* Resulting axis in the original rank: summing [hole] over
             [axis] restores the spec. *)
          { op = Ast.sum_op (Some axis); parts = [ P_hole hole ] })
  | _ -> []

let divisor_pairs t =
  let rec go d acc =
    if d > t then acc
    else if t mod d = 0 then go (d + 1) ((d, t / d) :: acc)
    else go (d + 1) acc
  in
  go 2 []

let sum_all_candidates cfg spec =
  if Shape.rank (St.shape spec) <> 0 then []
  else
    match uniform_term_count spec with
    | Some t when t <= cfg.max_split_terms ->
        let terms = Expr.terms (St.get spec [||]) in
        let arr = Array.of_list terms in
        let flat =
          { op = Ast.sum_op None; parts = [ P_hole (St.of_array [| t |] arr) ] }
        in
        let matrices =
          List.filter_map
            (fun (r, c) ->
              if r = t then None
              else Some { op = Ast.sum_op None;
                          parts = [ P_hole (St.of_array [| r; c |] arr) ] })
            (divisor_pairs t)
        in
        flat :: matrices
    | _ -> []

(* ------------------------------------------------------------------ *)
(* Contractions: dot and tensordot                                     *)
(* ------------------------------------------------------------------ *)

(* The concrete operand of a contraction inversion must consist of
   distinct symbols so coefficients are well-defined. *)
let symbolic_elements c =
  let arr = St.to_array c in
  let ok =
    Array.for_all (function Expr.Var _ -> true | _ -> false) arr
  in
  if not ok then None
  else
    let syms =
      Array.map (function Expr.Var s -> s | _ -> assert false) arr
    in
    let distinct =
      Array.length syms
      = Sym.Set.cardinal (Array.fold_right Sym.Set.add syms Sym.Set.empty)
    in
    if distinct then Some syms else None

(* Solve [phi = sum_j H_j * c_j] for the vector (H_j) by successive
   linear-coefficient extraction; every coefficient must be free of the
   contraction symbols and the remainder must vanish. *)
let linear_solve_element phi (csyms : Sym.t array) =
  let cset = Array.fold_right Sym.Set.add csyms Sym.Set.empty in
  let rest = ref phi in
  let coeffs =
    Array.map
      (fun s ->
        match Expr.linear_coeff !rest s with
        | None -> raise No_solution
        | Some (c, r) ->
            if not (Sym.Set.is_empty (Sym.Set.inter (Expr.vars c) cset)) then
              raise No_solution;
            rest := r;
            c)
      csyms
  in
  if Expr.is_zero !rest then coeffs else raise No_solution

(* Fallback for specs nonlinear in the contraction symbols (e.g. the
   quadratic form x^T A x): assign each term of phi to one contraction
   index by exact division.  Ambiguous terms prefer the index whose
   quotient contains a symbol with matching leading index — the
   heuristic that recovers H = A@x from x_i * A_ij * x_j.  The caller
   verifies the assignment by reconstruction. *)
let assign_solve_element phi (csyms : Sym.t array) =
  let n = Array.length csyms in
  let buckets = Array.make n [] in
  List.iter
    (fun term ->
      let candidates =
        List.filter_map
          (fun j ->
            match Expr.div_exact term (Expr.var csyms.(j)) with
            | Some q -> Some (j, q)
            | None -> None)
          (List.init n Fun.id)
      in
      let chosen =
        match candidates with
        | [] -> raise No_solution
        | [ c ] -> Some c
        | cands -> (
            let aligned =
              List.filter
                (fun (j, q) ->
                  Sym.Set.exists
                    (fun s ->
                      Array.length s.Sym.indices > 0 && s.Sym.indices.(0) = j)
                    (Expr.vars q))
                cands
            in
            match aligned with a :: _ -> Some a | [] -> Some (List.hd cands))
      in
      match chosen with
      | Some (j, q) -> buckets.(j) <- q :: buckets.(j)
      | None -> raise No_solution)
    (Expr.terms phi);
  Array.map (fun ts -> Expr.add ts) buckets

(* dot(??, c): out = H[:-1] ++ (c minus its contraction axis). *)
let dot_hole_left spec (conc : Stub.t) =
  let c = conc.Stub.sem in
  let cs = St.shape c in
  let rc = Shape.rank cs in
  if rc = 0 then []
  else
    match symbolic_elements c with
    | None -> []
    | Some _ ->
        let s = St.shape spec in
        let rs = Shape.rank s in
        let c_rest = rc - 1 in
        if rs < c_rest then []
        else
          let lead = Array.sub s 0 (rs - c_rest) in
          let trail = Array.sub s (rs - c_rest) c_rest in
          let contraction_axis = if rc = 1 then 0 else rc - 2 in
          let expected_trail = Shape.remove_axis cs contraction_axis in
          if not (Shape.equal trail expected_trail) then []
          else
            let k = cs.(contraction_axis) in
            let hole_shape = Array.append lead [| k |] in
            let solve_strategy strategy =
              try
                let hole = St.create hole_shape Expr.zero in
                let seen = Hashtbl.create 16 in
                Shape.iter_indices s (fun idx ->
                    let lead_idx = Array.sub idx 0 (Array.length lead) in
                    let trail_idx = Array.sub idx (Array.length lead) c_rest in
                    let csyms =
                      Array.init k (fun j ->
                          let cidx =
                            Shape.insert_axis trail_idx contraction_axis j
                          in
                          match St.get c cidx with
                          | Expr.Var v -> v
                          | _ -> raise No_solution)
                    in
                    let coeffs = strategy (St.get spec idx) csyms in
                    Array.iteri
                      (fun j coeff ->
                        let hidx = Array.append lead_idx [| j |] in
                        match Hashtbl.find_opt seen hidx with
                        | Some prev ->
                            if not (Expr.equal prev coeff) then
                              raise No_solution
                        | None ->
                            Hashtbl.replace seen (Array.copy hidx) coeff;
                            St.set hole hidx coeff)
                      coeffs);
                (* Verify by reconstruction. *)
                if St.equal (St.dot hole c) spec then
                  Some { op = Ast.Dot; parts = [ P_hole hole; P_conc conc ] }
                else None
              with No_solution | Invalid_argument _ | Q.Overflow -> None
            in
            List.filter_map solve_strategy
              [ linear_solve_element; assign_solve_element ]

(* dot(c, ??): out = c[:-1] ++ (H minus its contraction axis); we try
   hole ranks 1 and 2. *)
let dot_hole_right spec (conc : Stub.t) =
  let c = conc.Stub.sem in
  let cs = St.shape c in
  let rc = Shape.rank cs in
  if rc = 0 then []
  else
    match symbolic_elements c with
    | None -> []
    | Some _ ->
        let s = St.shape spec in
        let rs = Shape.rank s in
        let c_lead = rc - 1 in
        if rs < c_lead then []
        else if not (Shape.equal (Array.sub s 0 c_lead) (Array.sub cs 0 c_lead))
        then []
        else
          let k = cs.(rc - 1) in
          let hole_shapes =
            if rs = c_lead then [ [| k |] ]
            else if rs = c_lead + 1 then [ [| k; s.(rs - 1) |] ]
            else []
          in
          List.filter_map
            (fun hole_shape ->
              try
                let hole = St.create hole_shape Expr.zero in
                let seen = Hashtbl.create 16 in
                Shape.iter_indices s (fun idx ->
                    let lead_idx = Array.sub idx 0 c_lead in
                    let csyms =
                      Array.init k (fun j ->
                          match St.get c (Array.append lead_idx [| j |]) with
                          | Expr.Var v -> v
                          | _ -> raise No_solution)
                    in
                    let coeffs =
                      try linear_solve_element (St.get spec idx) csyms
                      with No_solution ->
                        assign_solve_element (St.get spec idx) csyms
                    in
                    Array.iteri
                      (fun j coeff ->
                        let hidx =
                          if Array.length hole_shape = 1 then [| j |]
                          else [| j; idx.(rs - 1) |]
                        in
                        match Hashtbl.find_opt seen hidx with
                        | Some prev ->
                            if not (Expr.equal prev coeff) then
                              raise No_solution
                        | None ->
                            Hashtbl.replace seen (Array.copy hidx) coeff;
                            St.set hole hidx coeff)
                      coeffs);
                if St.equal (St.dot c hole) spec then
                  Some { op = Ast.Dot; parts = [ P_conc conc; P_hole hole ] }
                else None
              with No_solution | Invalid_argument _ | Q.Overflow -> None)
            hole_shapes

(* tensordot(c, ??, ([0],[0])): out = c[1:] ++ H[1:]. *)
let tensordot_hole_right spec (conc : Stub.t) =
  let c = conc.Stub.sem in
  let cs = St.shape c in
  let rc = Shape.rank cs in
  if rc = 0 then []
  else
    match symbolic_elements c with
    | None -> []
    | Some _ ->
        let s = St.shape spec in
        let rs = Shape.rank s in
        let c_rest = rc - 1 in
        if rs < c_rest then []
        else if
          not
            (Shape.equal (Array.sub s 0 c_rest)
               (Array.sub cs 1 c_rest))
        then []
        else
          let k = cs.(0) in
          let hole_shape = Array.append [| k |] (Array.sub s c_rest (rs - c_rest)) in
          try
            let hole = St.create hole_shape Expr.zero in
            let seen = Hashtbl.create 16 in
            Shape.iter_indices s (fun idx ->
                let lead_idx = Array.sub idx 0 c_rest in
                let tail_idx = Array.sub idx c_rest (rs - c_rest) in
                let csyms =
                  Array.init k (fun j ->
                      match St.get c (Array.append [| j |] lead_idx) with
                      | Expr.Var v -> v
                      | _ -> raise No_solution)
                in
                let coeffs =
                  try linear_solve_element (St.get spec idx) csyms
                  with No_solution ->
                    assign_solve_element (St.get spec idx) csyms
                in
                Array.iteri
                  (fun j coeff ->
                    let hidx = Array.append [| j |] tail_idx in
                    match Hashtbl.find_opt seen hidx with
                    | Some prev ->
                        if not (Expr.equal prev coeff) then raise No_solution
                    | None ->
                        Hashtbl.replace seen (Array.copy hidx) coeff;
                        St.set hole hidx coeff)
                  coeffs);
            if St.equal (St.tensordot c hole ~axes_a:[ 0 ] ~axes_b:[ 0 ]) spec
            then
              [
                {
                  op = Ast.Tensordot ([ 0 ], [ 0 ]);
                  parts = [ P_conc conc; P_hole hole ];
                };
              ]
            else []
          with No_solution | Invalid_argument _ | Q.Overflow -> []

(* tensordot(??, c, ([0],[0])): out = H[1:] ++ c[1:]. *)
let tensordot_hole_left spec (conc : Stub.t) =
  let c = conc.Stub.sem in
  let cs = St.shape c in
  let rc = Shape.rank cs in
  if rc = 0 then []
  else
    match symbolic_elements c with
    | None -> []
    | Some _ ->
        let s = St.shape spec in
        let rs = Shape.rank s in
        let c_rest = rc - 1 in
        if rs < c_rest then []
        else if
          not
            (Shape.equal
               (Array.sub s (rs - c_rest) c_rest)
               (Array.sub cs 1 c_rest))
        then []
        else
          let k = cs.(0) in
          let lead = Array.sub s 0 (rs - c_rest) in
          let hole_shape = Array.append [| k |] lead in
          try
            let hole = St.create hole_shape Expr.zero in
            let seen = Hashtbl.create 16 in
            Shape.iter_indices s (fun idx ->
                let lead_idx = Array.sub idx 0 (Array.length lead) in
                let tail_idx =
                  Array.sub idx (Array.length lead) c_rest
                in
                let csyms =
                  Array.init k (fun j ->
                      match St.get c (Array.append [| j |] tail_idx) with
                      | Expr.Var v -> v
                      | _ -> raise No_solution)
                in
                let coeffs =
                  try linear_solve_element (St.get spec idx) csyms
                  with No_solution ->
                    assign_solve_element (St.get spec idx) csyms
                in
                Array.iteri
                  (fun j coeff ->
                    let hidx = Array.append [| j |] lead_idx in
                    match Hashtbl.find_opt seen hidx with
                    | Some prev ->
                        if not (Expr.equal prev coeff) then raise No_solution
                    | None ->
                        Hashtbl.replace seen (Array.copy hidx) coeff;
                        St.set hole hidx coeff)
                  coeffs);
            if
              St.equal
                (St.tensordot hole c ~axes_a:[ 0 ] ~axes_b:[ 0 ])
                spec
            then
              [
                {
                  op = Ast.Tensordot ([ 0 ], [ 0 ]);
                  parts = [ P_hole hole; P_conc conc ];
                };
              ]
            else []
          with No_solution | Invalid_argument _ | Q.Overflow -> []

(* ------------------------------------------------------------------ *)
(* Two-hole splits                                                     *)
(* ------------------------------------------------------------------ *)

let nonzero_somewhere t =
  Array.exists (fun e -> not (Expr.is_zero e)) (St.to_array t)

(* Split every element's terms by a predicate on terms. *)
let term_split spec pred =
  let left = St.map (fun e -> Expr.add (List.filter pred (Expr.terms e))) spec in
  let right =
    St.map
      (fun e -> Expr.add (List.filter (fun t -> not (pred t)) (Expr.terms e)))
      spec
  in
  (left, right)

let add_split_candidates cfg spec =
  match uniform_term_count spec with
  | None -> []
  | Some t when t > cfg.max_split_terms -> []
  | Some _ ->
      let bases =
        List.sort_uniq String.compare
          (Array.to_list (St.to_array spec)
          |> List.concat_map (fun e -> Expr.base_names e))
      in
      let by_var =
        List.filter_map
          (fun v ->
            let pred term = List.mem v (Expr.base_names term) in
            let l, r = term_split spec pred in
            if nonzero_somewhere l && nonzero_somewhere r then
              Some { op = Ast.Add; parts = [ P_hole l; P_hole r ] }
            else None)
          bases
      in
      let by_sign =
        let pred term =
          let q, _ = Expr.split_coeff term in
          Q.sign q >= 0
        in
        let l, r = term_split spec pred in
        if nonzero_somewhere l && nonzero_somewhere r then
          [ { op = Ast.Sub; parts = [ P_hole l; P_hole (St.neg r) ] } ]
        else []
      in
      by_var @ by_sign

let mul_split_candidates spec =
  let bases =
    List.sort_uniq String.compare
      (Array.to_list (St.to_array spec)
      |> List.concat_map (fun e -> Expr.base_names e))
  in
  List.filter_map
    (fun v ->
      let split_elem e =
        let fs = Expr.factors e in
        let l, r =
          List.partition (fun f -> List.mem v (Expr.base_names f)) fs
        in
        (Expr.mul l, Expr.mul r)
      in
      let left = St.map (fun e -> fst (split_elem e)) spec in
      let right = St.map (fun e -> snd (split_elem e)) spec in
      let trivial t =
        Array.for_all Expr.is_one (St.to_array t)
        || Array.exists Expr.is_zero (St.to_array t)
      in
      if trivial left || trivial right then None
      else Some { op = Ast.Mul; parts = [ P_hole left; P_hole right ] })
    bases

(* ------------------------------------------------------------------ *)
(* Masking (Section V-A's density-driven cases)                        *)
(* ------------------------------------------------------------------ *)

(* When the spec is partially zero, a masking operation applied to a
   dense library value may reproduce it exactly: this hole-less
   completion is how [triu(A) + triu(B)] becomes [triu(A + B)] — the
   search cannot conjure the masked-away elements, but the library
   can. *)
let masked_candidates lib spec svars =
  ignore svars;
  let s = St.shape spec in
  if Shape.rank s <> 2 then []
  else
    let has_zero = Array.exists Expr.is_zero (St.to_array spec) in
    if not has_zero then []
    else
      (* The completion is allowed to mention element symbols the mask
         discards (that is its purpose), but only from inputs the spec
         actually draws on. *)
      let spec_names =
        List.concat_map Expr.base_names (Array.to_list (St.to_array spec))
        |> List.sort_uniq String.compare
      in
      let names_ok sem =
        List.for_all
          (fun n -> List.mem n spec_names)
          (List.concat_map Expr.base_names (Array.to_list (St.to_array sem)))
      in
      List.concat_map
        (fun (c : Stub.t) ->
          if
            c.vt.dtype = Types.Float
            && Shape.equal (St.shape c.sem) s
            && names_ok c.sem
          then
            List.filter_map
              (fun op ->
                match Dsl.Sexec.apply_op op [ c.sem ] with
                | masked when St.equal masked spec ->
                    Some { op; parts = [ P_conc c ] }
                | _ -> None
                | exception (Invalid_argument _ | Dsl.Sexec.Eval_error _) ->
                    None)
              [ Ast.Triu; Ast.Tril ]
          else [])
        (Stub.stubs lib)

(* where(c, ??, ??) against a boolean mask from the library: each hole
   keeps the elements its branch selects (zero elsewhere), which lowers
   both branches' density — the mechanism the paper's complexity metric
   supports masking with. *)
let where_candidates lib spec svars =
  let s = St.shape spec in
  List.filter_map
    (fun (c : Stub.t) ->
      if
        c.vt.dtype = Types.Bool
        && fits_within (St.shape c.sem) s
        && Sym.Set.subset (spec_vars c.sem) svars
      then
        let taken = St.where c.sem spec (St.create s Expr.zero) in
        let other = St.where c.sem (St.create s Expr.zero) spec in
        if nonzero_somewhere taken && nonzero_somewhere other then
          Some
            { op = Ast.Where; parts = [ P_conc c; P_hole taken; P_hole other ] }
        else None
      else None)
    (Stub.stubs lib)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(* A decomposition is only usable if recombining its parts reproduces
   the spec *structurally* — mathematically-exact candidates that the
   normal form cannot re-cancel (e.g. dividing by a sum expands into a
   rational function) would send the recursion after sub-programs whose
   assembly later fails verification. *)
let recombines spec d =
  (* Additive residuals, term partitions and contraction solutions are
     exact by construction (sums re-merge canonically; the contraction
     solvers verify internally), so only the remaining operation kinds
     pay for re-execution here. *)
  let exact_by_construction =
    match d.op with
    | Ast.Add | Ast.Sub | Ast.Sum _ | Ast.Dot | Ast.Tensordot _ -> true
    | Ast.Mul | Ast.Div | Ast.Pow_op | Ast.Maximum | Ast.Sqrt | Ast.Exp
    | Ast.Log | Ast.Transpose _ | Ast.Max _ | Ast.Stack _ | Ast.Where
    | Ast.Less | Ast.Triu | Ast.Tril | Ast.Diag | Ast.Trace | Ast.Reshape _
    | Ast.Full _ ->
        false
  in
  exact_by_construction
  ||
  let args =
    List.map
      (function P_hole h -> h | P_conc (s : Stub.t) -> s.sem)
      d.parts
  in
  match Dsl.Sexec.apply_op d.op args with
  | result -> St.equal result spec
  | exception (Invalid_argument _ | Dsl.Sexec.Eval_error _ | Q.Overflow) ->
      false

let decompositions ?(config = default_config) ?(tel = Obs.Telemetry.null) lib
    spec =
  let svars = spec_vars spec in
  let spec_shape = St.shape spec in
  let concs =
    List.filter
      (fun (s : Stub.t) ->
        s.depth <= config.max_conc_depth
        && s.vt.dtype = Types.Float
        && (not (St.equal s.sem spec))
        && nonzero_somewhere s.sem
        && Sym.Set.subset (spec_vars s.sem) svars)
      (Stub.stubs lib)
  in
  let elementwise =
    List.concat_map
      (fun (c : Stub.t) ->
        if fits_within (St.shape c.sem) spec_shape then
          elementwise_candidates c spec
        else [])
      concs
  in
  let contractions =
    List.concat_map
      (fun (c : Stub.t) ->
        if Shape.rank (St.shape c.sem) >= 1 then
          dot_hole_left spec c @ dot_hole_right spec c
          @ tensordot_hole_right spec c @ tensordot_hole_left spec c
        else [])
      concs
  in
  let proposed =
    unary_candidates spec
    @ sum_axis_candidates config spec
    @ sum_all_candidates config spec
    @ add_split_candidates config spec
    @ mul_split_candidates spec
    @ masked_candidates lib spec svars
    @ where_candidates lib spec svars
    @ elementwise @ contractions
  in
  let solved = List.filter (recombines spec) proposed in
  if Obs.Telemetry.enabled tel then begin
    Obs.Telemetry.add tel "invert.proposed" (List.length proposed);
    Obs.Telemetry.add tel "invert.solved" (List.length solved)
  end;
  solved
