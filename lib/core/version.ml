(* The build identity stamped into everything this tree emits: the CLI's
   [--version], suite reports ([stenso.suite-report/1] gained a
   [version] field), persistent-store entries ([stenso.store/1]) and
   serve responses ([stenso.serve/1]).  Bump on releases; archived
   BENCH_*.json trajectory points and cache entries then record which
   build produced them. *)
let current = "0.3.0"
