(** Builder-style configuration for the whole superoptimizer.

    [Config.t] wraps the nested {!Search.config} / {!Stub.config} /
    {!Invert.config} records (which remain the implementation and stay
    available through {!search_config} / {!of_search}) together with the
    cost-estimator choice, so call sites read as a pipeline:

    {[
      let config =
        Config.default
        |> Config.with_timeout 60.
        |> Config.with_jobs 8
        |> Config.with_estimator `Flops
      in
      Superopt.optimize ~config ~env prog
    ]} *)

type estimator = [ `Flops | `Roofline | `Measured ]

type t = {
  search : Search.config;
      (** the legacy nested records — the implementation *)
  estimator : estimator;
  cost_cache : string option;
      (** persists the measured estimator's profiling table *)
  engine : Texec.Engine.kind;
      (** what executes programs concretely: the measured estimator's
          timing runs and {!Superopt.validate_concrete}'s candidate
          evaluations (default [`Vm]) *)
  exec : Texec.Engine.Options.t;
      (** planner/VM knobs for every compiled execution reached through
          this configuration — the measured estimator's timing runs and
          concrete validation (default [Exec.Options.default]) *)
  rules_depth : int option;
      (** enables the tiered fast path of {!Superopt.optimize}: consult
          the mined rule database for this depth (rule fixpoint +
          e-graph saturation) before entering the full search.  [None]
          (the default) preserves the classic two-step store-then-search
          behaviour. *)
}

val default : t
(** {!Search.default_config} with the [`Measured] estimator. *)

(** {2 Builders} — each takes the configuration last, for [|>]. *)

val with_timeout : float -> t -> t
val with_jobs : int -> t -> t
(** Sets both the search's root-level fan-out and the stub enumeration
    pool. *)

val with_estimator : estimator -> t -> t

val with_rules_depth : int -> t -> t
(** Enable the tiered fast path against the depth-[d] mined rule
    database ({!Rules_db}); [d <= 0] disables it again. *)

val with_cost_cache : string -> t -> t
val with_engine : Texec.Engine.kind -> t -> t
val with_exec_options : Texec.Engine.Options.t -> t -> t
val with_bnb : bool -> t -> t
val with_simplification : bool -> t -> t
val with_extended_ops : bool -> t -> t
val with_max_depth : int -> t -> t
val with_node_budget : int -> t -> t
val with_memoize : bool -> t -> t
val with_stub_depth : int -> t -> t
val with_max_stubs : int -> t -> t
val with_search : Search.config -> t -> t
(** Replace the nested records wholesale (escape hatch). *)

(** {2 Accessors} *)

val search_config : t -> Search.config
val rules_depth : t -> int option
val jobs : t -> int
val timeout : t -> float
val estimator : t -> estimator
val engine : t -> Texec.Engine.kind
val exec_options : t -> Texec.Engine.Options.t

val model : ?tel:Obs.Telemetry.t -> t -> Cost.Model.t
(** Instantiate the configured cost estimator.  A fresh model each call:
    the measured estimator starts with an empty profiling table (seeded
    from [cost_cache] when set), so hoist the result when optimizing
    many programs.  [tel] feeds the measured estimator's profiling-cache
    counters ([cost.cache_hits] / [cost.cache_misses]) and wall-time
    accumulator ([cost.profile_seconds]). *)

val of_search : Search.config -> t
(** Adopt a legacy record, keeping the default estimator. *)

val fingerprint : t -> string
(** Canonical rendering of every field that determines a synthesis
    result: estimator id, pruning switches, budgets, depths, the
    nested stub/invert parameters, and the cost-relevant exec options
    (fusion, reduction fusion, tile).  [jobs] and the exec [domains]
    count are excluded (results are independent of them by
    construction), as is the [cost_cache] path.
    Together with the spec key, a {!Stub.fingerprint} and the cost-model
    id, this keys the persistent outcome store. *)

val estimator_of_string : string -> (estimator, string) result
(** ["flops"], ["roofline"], or ["measured"]. *)

val estimator_name : estimator -> string

val engine_of_string : string -> (Texec.Engine.kind, string) result
(** ["interp"] or ["vm"]. *)

val engine_name : Texec.Engine.kind -> string
