(** Top-down synthesis via recursive sketch simplification with
    branch-and-bound pruning — Algorithm 2 of the paper.

    The search decomposes the specification with sketches from
    {!Invert}, recursing on each hole specification.  Two admissible
    filters keep it tractable:

    - {e simplification pruning} ([use_simplification]): only
      decompositions whose average hole complexity is below the current
      spec's complexity are explored (structural operations such as
      [transpose] may tie, guarded by a visited set on the path);
    - {e branch and bound} ([use_bnb]): a path whose accumulated cost
      reaches the best complete program's cost is abandoned.

    Both can be disabled independently to reproduce the paper's
    simplification-only configuration (Fig. 5).

    With [jobs > 1] the root level runs on a fixed pool of domains: the
    viable top-level decompositions are distributed round-robin, the
    branch-and-bound bound is shared atomically (a complete program
    found by one worker prunes the others), and per-worker results merge
    deterministically by minimal (cost, program size, decomposition
    index) — reproducing the sequential tie-breaking, so parallel and
    sequential runs return the same program and cost.

    The search is {e anytime}: when the node budget or timeout expires,
    the best complete program found so far is returned with
    [stats.timed_out] set, in both the sequential and parallel engines.

    Statistics are kept in atomic counters shared by all workers and
    surfaced twice: as the flat {!stats} record on every result, and —
    when a {!Telemetry} sink is passed — as named telemetry counters,
    phase spans ([phase.stub_enum], [phase.search]), a prune breakdown
    by cause, and the branch-and-bound bound trajectory over time
    (gauge [search.bound]). *)

type config = {
  stub_config : Stub.config;
  invert_config : Invert.config;
  use_bnb : bool;
  use_simplification : bool;
  node_budget : int;
      (** maximum DFS nodes before giving up — one global budget shared
          by all workers, independent of [jobs] *)
  timeout : float;  (** wall-clock seconds before giving up *)
  max_depth : int;  (** recursion depth cap *)
  memoize : bool;  (** cache synthesized sub-programs per spec *)
  jobs : int;
      (** domains for the root-level decomposition fan-out; [1] is the
          fully sequential engine *)
}

val default_config : config

type stats = {
  nodes : int;  (** DFS invocations *)
  decomps : int;  (** decompositions examined *)
  pruned_simp : int;  (** decompositions cut by the simplification objective *)
  pruned_bnb : int;
      (** branches cut by branch-and-bound (all causes; the telemetry
          counters [search.pruned.bnb_local] / [bnb_global] / [bnb_hole]
          give the breakdown) *)
  memo_hits : int;  (** sub-spec memo table hits *)
  memo_misses : int;  (** sub-spec memo table misses *)
  elapsed : float;
  timed_out : bool;
  library_size : int;
}

type result = {
  program : Dsl.Ast.t option;
      (** best synthesized program, [None] if nothing was found within
          budget *)
  cost : float;  (** its estimated cost (meaningful when program set) *)
  stats : stats;
}

val run :
  ?tel:Obs.Telemetry.t ->
  ?config:config ->
  ?library:Stub.library ->
  model:Cost.Model.t ->
  env:Dsl.Types.env ->
  spec:Spec.t ->
  initial_bound:float ->
  consts:float list ->
  unit ->
  result
(** Synthesize a program equivalent to [spec] with estimated cost below
    [initial_bound].  [consts] seeds the grammar's constant terminals
    (the constants of the original program).  [library], when given,
    must be an enumeration for the same [env]/[consts]/model (e.g. from
    {!Stub.Cache}); the enumeration phase is then skipped — the suite
    driver and serve daemon share one library per input environment this
    way.  [tel] (default {!Telemetry.null}, which costs nothing)
    receives phase spans, the prune/memo counter breakdown, and the
    bound trajectory; its [spec.key_*] counters are attributed to this
    run alone even when other searches run concurrently. *)
