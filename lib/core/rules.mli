(** Generalizing discovered optimizations into rewrite rules
    (Section VII-D).

    A concrete (original, optimized) pair over named inputs becomes a
    rule by abstracting the inputs into pattern metavariables in order
    of first occurrence on the left-hand side, e.g.

    {v diag(dot(X, Y))  ==>  sum(multiply(X, transpose(Y)), axis=1) v}

    Such rules are exactly what the paper proposes feeding back into
    rule-based compilers and e-graph optimizers. *)

type t = {
  lhs : Dsl.Ast.t;
  rhs : Dsl.Ast.t;
  metavars : (string * string) list;  (** original input -> metavariable *)
}

val generalize : Dsl.Ast.t -> Dsl.Ast.t -> t
(** [generalize original optimized] abstracts shared inputs.  Inputs of
    the optimized side that do not occur in the original keep their
    names (they cannot, by construction of the synthesizer). *)

val closed : t -> bool
(** Every input (metavariable or concrete) of the right-hand side also
    occurs on the left — the soundness condition for applying the rule
    anywhere: an open rule would conjure inputs out of thin air.
    Reachable in mined rules through semantically dead inputs (the
    cheapest implementation of [multiply(B, 0)]'s value need not
    mention [B]). *)

val specialize : t -> (string * Dsl.Ast.t) list -> Dsl.Ast.t * Dsl.Ast.t
(** Instantiate the metavariables; unbound metavariables are left as
    inputs. *)

val matches : t -> Dsl.Ast.t -> (string * Dsl.Ast.t) list option
(** Syntactic pattern match of the rule's left-hand side against a
    program: metavariables bind arbitrary subterms (consistently). *)

val apply_once : t -> Dsl.Ast.t -> Dsl.Ast.t option
(** Rewrite the outermost matching position, if any. *)

val apply_fixpoint :
  ?max_steps:int ->
  ?cost:(Dsl.Ast.t -> float) ->
  ?applied:int ref ->
  t list ->
  Dsl.Ast.t ->
  Dsl.Ast.t
(** Apply a mined rule set repeatedly (first applicable rule, outermost
    position) until no rule fires, a program repeats (inverse rule
    pairs cycle — the walk stops on the first revisit), or [max_steps]
    (default 32) is reached — a miniature rule-based optimizer built
    from STENSO discoveries, the integration path Section VII-D
    proposes.  Returns the cheapest program seen under [cost] (default:
    AST size), which is the input itself when no rewrite improves on
    it.  [applied], when given, accumulates the number of rewrite steps
    taken. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
