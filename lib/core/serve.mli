(** The [stenso serve] protocol ([stenso.serve/1]): request handling and
    the client side.  The daemon itself — listeners, worker pool,
    background refinement executor — lives in {!Net} (built on
    {!Tnet.Server}); this module is the socket-free core it serves.

    The protocol is NDJSON — one JSON object per line in each
    direction, many requests per connection (keep-alive):

    {v
    → {"id": 1, "program": "input A : f32[3,3]\n...", "config": {"cost_estimator": "flops"}}
    ← {"schema":"stenso.serve/1","version":"...","id":1,"ok":true,
       "cache_hit":false,"tier":2,"coalesced":false,"refined":false,
       "improved":true,"verified":true,
       "cost_before":123.0,"cost_after":27.0,
       "optimized":"input A : f32[3,3]\n...","search":{...}}
    v}

    [id] is echoed verbatim (any JSON value; [null] when absent).
    [config] is optional; recognized fields — [cost_estimator] (string),
    [timeout] (seconds), [node_budget], [max_depth], [rules_depth]
    (ints), [extended_ops], [use_bnb], [use_simplification] (bools) —
    override the daemon's base configuration per request.  [tier] says
    which serving tier answered (see {!Superopt.optimize}); [coalesced]
    that this request piggybacked on an identical in-flight one;
    [refined] that the answer is final (tier-3-confirmed) — an
    unrefined answer may be silently upgraded in the store by background
    refinement, so a later identical request returns the better program
    without any client action.  A malformed line, an unparseable program
    or any synthesis failure yields [{"ok":false,"error":...}] on that
    request only; the daemon never dies on request content. *)

module Json = Obs.Telemetry.Json

val schema : string
(** ["stenso.serve/1"]. *)

(** {2 Request handling} — socket-free core, reused by tests. *)

type handler

val handler :
  ?tel:Obs.Telemetry.t ->
  ?store:Store.t ->
  base:Config.t ->
  unit ->
  handler
(** A request handler sharing one stub-library cache, one cost model per
    estimator, and one single-flight table across all requests it
    serves.  [base] supplies the defaults requests may override; its
    [jobs] is forced to 1 — the daemon's parallelism is its worker pool,
    not per-request domains. *)

val handle_line :
  ?background:((unit -> unit) -> bool) -> handler -> string -> string
(** Process one NDJSON request line into one response line (no trailing
    newline).  Never raises: every failure is an [ok:false] response.

    With a [store], identical in-flight requests (same
    {!Superopt.store_key}) coalesce onto one synthesis — waiters get the
    leader's outcome with [coalesced:true] and bump the [serve.coalesced]
    counter.  [background], when given, receives deferred tier-3
    refinement jobs for unrefined answers (at most one outstanding per
    store key; [serve.refine_enqueued] / [serve.refine_shed] counters);
    it returns [false] to reject the job (queue full).  Omitting it —
    as tests exercising only the request path do — disables background
    refinement. *)

val coalesced_total : handler -> int
(** Requests served by piggybacking on another in-flight request since
    the handler was created. *)

val busy_line : string
(** The load-shedding response. *)

val too_long_line : string
(** The response sent before closing a connection whose request line
    exceeded the daemon's line cap. *)

val is_busy_line : string -> bool
(** Recognize {!busy_line} (from any build: matched on the [ok]/[error]
    fields, not byte equality). *)

(** {2 Client side} *)

type reply =
  | Reply of string  (** a protocol response line (possibly [ok:false]) *)
  | Busy  (** every endpoint shed the request, retries exhausted *)
  | Transport of string  (** no endpoint produced a response *)

val request :
  ?timeout:float ->
  ?busy_retries:int ->
  ?rng:Random.State.t ->
  ?offset:int ->
  endpoints:Tnet.Endpoint.t list ->
  string ->
  reply
(** Send one request line to a replica set and read one response line.
    Endpoints are tried round-robin from [offset] (so independent
    clients spread load); an endpoint that is not accepting yet is
    retried with geometric backoff within its slice of the [timeout]
    budget (seconds, default 30), and transport failures fail over to
    the next replica.  A busy (shed) response is backpressure, not an
    error: the request is retried up to [busy_retries] (default 3) more
    times with full-jitter exponential backoff, and only then reported
    as {!Busy} so callers can map it to a distinct exit code.
    {!Transport} means no replica produced any response. *)
