(** The [stenso serve] daemon and its NDJSON protocol
    ([stenso.serve/1]).

    A long-lived process owns the persistent synthesis store, a shared
    stub-library cache and a shared cost-model pool, and serves
    superoptimization requests over a Unix-domain socket.  The protocol
    is NDJSON — one JSON object per line in each direction:

    {v
    → {"id": 1, "program": "input A : f32[3,3]\n...", "config": {"cost_estimator": "flops"}}
    ← {"schema":"stenso.serve/1","version":"...","id":1,"ok":true,
       "cache_hit":false,"improved":true,"verified":true,
       "cost_before":123.0,"cost_after":27.0,
       "optimized":"input A : f32[3,3]\n...","search":{...}}
    v}

    [id] is echoed verbatim (any JSON value; [null] when absent).
    [config] is optional; recognized fields — [cost_estimator] (string),
    [timeout] (seconds), [node_budget], [max_depth] (ints),
    [extended_ops], [use_bnb], [use_simplification] (bools) — override
    the daemon's base configuration per request.  A malformed line, an
    unparseable program or any synthesis failure yields
    [{"ok":false,"error":...}] on that request only; the daemon never
    dies on request content.  When all worker slots are busy and the
    connection queue is full, new connections are shed immediately with
    [{"ok":false,"error":"busy"}] instead of queueing unboundedly. *)

module Json = Obs.Telemetry.Json

val schema : string
(** ["stenso.serve/1"]. *)

(** {2 Request handling} — socket-free core, reused by tests. *)

type handler

val handler :
  ?tel:Obs.Telemetry.t ->
  ?store:Store.t ->
  base:Config.t ->
  unit ->
  handler
(** A request handler sharing one stub-library cache and one cost model
    per estimator across all requests it serves.  [base] supplies the
    defaults requests may override; its [jobs] is forced to 1 — the
    daemon's parallelism is its worker pool, not per-request domains. *)

val handle_line : handler -> string -> string
(** Process one NDJSON request line into one response line (no trailing
    newline).  Never raises: every failure is an [ok:false] response. *)

val busy_line : string
(** The load-shedding response. *)

(** {2 The daemon} *)

val serve :
  ?tel:Obs.Telemetry.t ->
  ?store:Store.t ->
  ?workers:int ->
  ?queue_capacity:int ->
  base:Config.t ->
  socket:string ->
  unit ->
  unit
(** Bind [socket] (replacing a stale file), then serve until SIGINT or
    SIGTERM: a bounded pool of [workers] domains (default 2) drains a
    connection queue of capacity [queue_capacity] (default 64); beyond
    that, connections receive {!busy_line} and are closed.  Shutdown is
    graceful — queued connections finish, the store is flushed, the
    socket file is removed. *)

(** {2 Client side} *)

val request : ?timeout:float -> socket:string -> string -> (string, string) result
(** Send one request line to a running daemon and read one response
    line.  [timeout] (seconds, default 30) bounds the whole exchange: a
    daemon whose socket is not accepting yet is retried with geometric
    backoff (50ms doubling, capped at 1s) until the deadline, and the
    remaining budget bounds the socket reads and writes, so a hung
    daemon yields an [Error] instead of blocking forever.  [Error]
    describes a transport failure (daemon not running, connection
    closed, deadline exceeded); protocol-level failures come back as
    [Ok] lines with [ok:false]. *)
