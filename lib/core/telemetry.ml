(* Re-export so users write [Stenso.Telemetry] alongside [Stenso.Search]
   and friends; the implementation lives in lib/obs (dependency-free, so
   lib/cost can also use it). *)
include Obs.Telemetry
