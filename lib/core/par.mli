(** Ordered parallel maps for the parallel synthesis engine.

    Built on the process-wide persistent domain pool ({!Pool}): each
    call claims up to [jobs - 1] idle pool workers (the calling domain
    participates as a lane) and completes all work before returning, so
    parallelism never leaks past the call and no call pays domain
    startup.  Nested calls degrade to sequential execution instead of
    deadlocking or over-spawning.  Work is distributed dynamically
    through a shared atomic cursor; results are always returned in
    input order, so callers observe deterministic output regardless of
    scheduling. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_array : jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~jobs f xs] is [Array.map f xs] evaluated by
    [min jobs (length xs)] domains pulling [chunk]-sized blocks (default
    1) from a shared cursor.  With [jobs <= 1] it runs in the calling
    domain.  If applications raise, the exception of the
    smallest-indexed failing element is re-raised after every domain has
    joined. *)

val map : jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** List counterpart of {!map_array}. *)
