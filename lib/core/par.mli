(** Fixed-size domain pools for the parallel synthesis engine.

    OCaml 5 domains are expensive enough that each helper spawns at most
    [jobs - 1] domains per call (the calling domain participates as a
    worker) and joins them all before returning, so parallelism never
    leaks past the call.  Work is distributed dynamically through a
    shared atomic cursor; results are always returned in input order, so
    callers observe deterministic output regardless of scheduling. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_array : jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~jobs f xs] is [Array.map f xs] evaluated by
    [min jobs (length xs)] domains pulling [chunk]-sized blocks (default
    1) from a shared cursor.  With [jobs <= 1] it runs in the calling
    domain.  If applications raise, the exception of the
    smallest-indexed failing element is re-raised after every domain has
    joined. *)

val map : jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** List counterpart of {!map_array}. *)
