module Ast = Dsl.Ast

type env_stats = {
  label : string;
  stubs : int;
  attempts : int;
  dups : int;
  rules : int;
  optima : int;
  truncated : bool;
  elapsed : float;
}

(* The rendered rule must survive the store's text round-trip, or tier 2
   would silently lose it on reload. *)
let reparses (r : Rules.t) =
  let ok t =
    match Dsl.Parser.expression (Ast.to_string t) with
    | t' -> Ast.equal t t'
    | exception _ -> false
  in
  ok r.lhs && ok r.rhs

let mine_env ?(tel = Obs.Telemetry.null) ?(jobs = 1) ?max_stubs ~depth ~model
    env =
  let t0 = Unix.gettimeofday () in
  let config = Rules_db.mine_config ~jobs ~depth () in
  (* Test/benchmark escape hatch.  The database key deliberately does
     not capture the override: a cap small enough to matter truncates
     the library, and a truncated entry never publishes optima. *)
  let config =
    match max_stubs with
    | None -> config
    | Some n -> { config with Stub.max_stubs = n }
  in
  (* Collect every strictly-worse duplicate; key by rendering so a
     program displaced and re-attempted is recorded once. *)
  let displaced : (string, Stub.t) Hashtbl.t = Hashtbl.create 256 in
  let on_dup (s : Stub.t) =
    Hashtbl.replace displaced (Ast.to_string s.prog) s
  in
  let lib =
    Stub.enumerate ~config ~tel ~on_dup ~model
      ~consts:Rules_db.standard_consts env
  in
  let rules =
    Hashtbl.fold
      (fun _ (worse : Stub.t) acc ->
        match Stub.lookup_exact lib worse.sem with
        | Some best when best.cost < worse.cost ->
            let rule = Rules.generalize worse.prog best.prog in
            if
              rule.Rules.metavars <> []
              && (not (Ast.equal rule.Rules.lhs rule.Rules.rhs))
              && Rules.closed rule && reparses rule
            then
              { Rules_db.rule; gain = worse.cost -. best.cost } :: acc
            else acc
        | Some _ | None -> acc)
      displaced []
  in
  let truncated = Stub.truncated lib in
  (* An optima table is a "cheapest program for this spec" claim over
     the full bounded stub space.  A truncated enumeration never saw
     that space, so recording its per-spec champions would let tier 2
     certify answers against optima that deeper stubs may beat.  The
     rules are kept — each one pairs two programs verified equivalent
     within the library, truncated or not. *)
  let optima =
    if truncated then []
    else
      List.map
        (fun (s : Stub.t) ->
          (Rules_db.spec_digest s.sem, (s.cost, Ast.to_string s.prog)))
        (Stub.stubs lib)
  in
  let entry =
    Rules_db.entry ~truncated ~model_id:model.Cost.Model.name ~depth ~rules
      ~optima ()
  in
  let stats =
    {
      label = "";
      stubs = Stub.size lib;
      attempts = Stub.attempts lib;
      dups = Hashtbl.length displaced;
      rules = List.length entry.Rules_db.rules;
      optima = Hashtbl.length entry.Rules_db.optima;
      truncated;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  (entry, stats)

let mine ?(tel = Obs.Telemetry.null) ?(jobs = 1) ?max_stubs ?on_env ~depth
    ~model ~store envs =
  let model_id = model.Cost.Model.name in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.filter_map
    (fun (label, env) ->
      let key = Rules_db.key ~env ~model_id ~depth in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        let entry, stats = mine_env ~tel ~jobs ?max_stubs ~depth ~model env in
        Rules_db.record store ~key entry;
        let stats = { stats with label } in
        Obs.Telemetry.event tel "mine.env"
          [
            ("label", Obs.Telemetry.Str label);
            ("stubs", Obs.Telemetry.Int stats.stubs);
            ("rules", Obs.Telemetry.Int stats.rules);
            ("optima", Obs.Telemetry.Int stats.optima);
            ("truncated", Obs.Telemetry.Bool stats.truncated);
            ("elapsed", Obs.Telemetry.Float stats.elapsed);
          ];
        (match on_env with Some f -> f stats | None -> ());
        Some stats
      end)
    envs
