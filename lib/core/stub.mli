(** Bottom-up enumeration of program stubs (Section IV-B).

    A {e stub} is a small, hole-free program from the grammar, paired
    with its symbolic semantics and estimated cost.  Stubs are the base
    material of the synthesis search: the recursion's base case matches
    the remaining specification against the stub library, and sketches
    are formed by pairing grammar operations with stub operands.

    Enumeration is type-directed (ill-shaped candidates are discarded,
    as in the paper) and semantically deduplicated: among stubs with
    identical symbolic values only the cheapest survives, so e.g.
    [transpose(transpose(A))] is subsumed by [A]. *)

type t = {
  prog : Dsl.Ast.t;
  vt : Dsl.Types.vt;
  sem : Spec.t;
  cost : float;
  depth : int;
}

type config = {
  depth : int;  (** bottom-up iterations; the paper fixes 2 *)
  max_stubs : int;  (** enumeration budget *)
  extended_ops : bool;  (** include triu/tril/less/where *)
  full_binary : bool;
      (** combine arbitrary stub pairs at every depth (full bottom-up
          enumeration, used by the TASO-style baseline); the default
          requires one atom operand beyond depth 1, a redundancy cut
          that the recursive sketch search compensates for *)
  deadline : float option;
      (** absolute wall-clock instant (as [Unix.gettimeofday]) after
          which enumeration stops and reports truncation *)
  jobs : int;
      (** domains used to evaluate candidate stubs (type check, symbolic
          execution, costing).  Registration — deduplication, the
          [max_stubs] cap, the deadline — stays sequential and ordered,
          so the resulting library is byte-identical to a [jobs = 1]
          run. *)
}

val default_config : config

type library

val enumerate :
  ?config:config ->
  ?tel:Obs.Telemetry.t ->
  ?on_dup:(t -> unit) ->
  model:Cost.Model.t ->
  consts:float list ->
  Dsl.Types.env ->
  library
(** Build the stub library for a set of inputs plus the constants that
    occur in the original program (the grammar's [FCons] terminals).
    [tel] receives one [stub.depth] event per bottom-up iteration
    (candidates examined, stubs kept, elapsed seconds) and a final
    [stub.library] summary.

    [on_dup] observes semantic duplicates that deduplication would
    silently discard: it is called with every enumerated stub that is
    strictly more expensive than the library's (final) representative
    of the same symbolic value — the raw material of rule mining, where
    each (duplicate, representative) pair is a rewrite proven
    equivalent by construction.  Equal-cost duplicates are not
    reported. *)

val fingerprint : config -> consts:float list -> Dsl.Types.env -> string
(** Canonical identity of an enumeration: the config fields that shape
    the library ([depth], [max_stubs], [extended_ops], [full_binary]),
    the constant terminals, and the input environment.  [jobs] and
    [deadline] are excluded — the former never changes the library, the
    latter only truncates it.  Two calls with equal fingerprints (and
    the same cost model) produce interchangeable libraries; this keys
    both {!Cache} and the persistent outcome store. *)

(** Share one enumerated library per [(config, consts, env, model)]
    fingerprint across many synthesis runs — the suite driver and the
    serve daemon hit the same input environments over and over, and
    enumeration is a per-environment fixed cost. *)
module Cache : sig
  type cache

  val create : unit -> cache

  val enumerate :
    cache ->
    ?config:config ->
    ?tel:Obs.Telemetry.t ->
    model:Cost.Model.t ->
    consts:float list ->
    Dsl.Types.env ->
    library * bool
  (** The library for this fingerprint, built on first request and
      shared afterwards; the flag is [true] when it was served from the
      cache.  Concurrent requests for a fingerprint under construction
      block until it is ready instead of re-enumerating. *)
end

val stubs : library -> t list
val atoms : library -> t list
val size : library -> int

val attempts : library -> int
(** Candidate programs examined during enumeration, before semantic
    deduplication. *)

val env : library -> Dsl.Types.env
val truncated : library -> bool
(** Did enumeration stop early — at [max_stubs] or the deadline?  A
    truncated library is sound but incomplete: "no cheaper program
    exists" conclusions must not be drawn from it, and {!Cache} never
    shares one across requests. *)

val lookup_exact : library -> Spec.t -> t option
(** Cheapest stub whose symbolic value (and shape) equals the spec. *)

val lookup_broadcast : library -> Spec.t -> t option
(** A stub matching the {e collapsed} spec — a value that broadcasts to
    the spec (safe in elementwise positions).  Exact-shape matches are
    deliberately not consulted; callers combine this with
    {!lookup_exact} and pick the cheaper. *)

val const_stub : library -> Symbolic.Q.t -> t option
(** A [Const] leaf for a uniform-constant spec (the solver may conjure
    constants not present in the library, e.g. the 4 in
    [AB + 3AB -> 4AB]). *)

(** Concrete value tables: every stub's outputs on a fixed list of
    sampled input draws — the TF-Coder-style behavioral signatures the
    lifting front-end prunes candidates against before any symbolic
    work ([Stenso.Lift]). *)
module Values : sig
  type table

  val inputs_fingerprint : (string * Tensor.Ftensor.t) list list -> string
  (** Canonical identity of an input draw: name, shape, and the
      IEEE-754 bit pattern of every element of every sample (hashed).
      Two different draws — even from the same distribution — never
      share a fingerprint, so value tables and any store entries keyed
      through them cannot collide across distributions. *)

  val fingerprint :
    library_fp:string -> (string * Tensor.Ftensor.t) list list -> string
  (** Cache identity of a table: the stub-library fingerprint
      ({!fingerprint} of the enumeration, including the cost-model id
      if the caller keys by it) combined with {!inputs_fingerprint}. *)

  val build :
    library_fp:string ->
    library ->
    (string * Tensor.Ftensor.t) list list ->
    table

  val get :
    ?tel:Obs.Telemetry.t ->
    library_fp:string ->
    library ->
    (string * Tensor.Ftensor.t) list list ->
    table
  (** Like {!build}, but shares one table per {!fingerprint} across
      lifts (never for truncated libraries, mirroring {!Cache}).  A
      shared hit increments the [stub.values_cache_hits] counter. *)

  val outputs : table -> t -> Tensor.Ftensor.t list option
  (** The stub's output on each sample, in sample order. *)

  val to_list : table -> (t * Tensor.Ftensor.t list) list
  (** All stubs with their outputs, in library (cost) order. *)

  val fingerprint_of : table -> string
  val samples : table -> (string * Tensor.Ftensor.t) list list
end
