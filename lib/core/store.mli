(** The persistent synthesis store ([stenso.store/1]).

    Superoptimization outcomes are correct by construction and fully
    determined by (specification, configuration, cost model), which
    makes them ideal cache entries: a spec solved once never re-enters
    the search.  This module layers the outcome record — optimized and
    original program text (rendered by {!Dsl.Parser.unparse}, so cached
    and fresh runs are byte-identical), costs, search statistics, and
    the build {!Version} — over the generic content-addressed store
    ({!Pstore}: [~/.cache/stenso] by default, in-memory LRU front,
    atomic write-rename persistence, corruption-tolerant loads, and
    [store.*] telemetry counters).

    Keys compose the canonical spec rendering ({!Spec.key}), the stub
    enumeration fingerprint ({!Stub.fingerprint} — environment, consts,
    grammar switches), the configuration fingerprint
    ({!Config.fingerprint}) and the cost-model id; see {!outcome_key}.
    {!Superopt.optimize} consults the store before searching and records
    after; the suite driver and the serve daemon share the same path. *)

include module type of struct
  include Pstore
end

val schema : string
(** ["stenso.store/1"]. *)

val outcome_key :
  spec_key:string ->
  stub_fp:string ->
  config_fp:string ->
  model_id:string ->
  string
(** The full store key for one synthesis request.  Two requests with
    equal keys are guaranteed the same deterministic answer (for the
    [measured] estimator: the same answer up to profiling noise, which
    the cache deliberately freezes). *)

type outcome_entry = {
  version : string;  (** build that produced the entry *)
  original : string;  (** full program source, {!Dsl.Parser.unparse} *)
  optimized : string;
  improved : bool;
  original_cost : float;
  optimized_cost : float;
  stats : Search.stats;  (** statistics of the search that ran *)
  refined : bool;
      (** finalized by a full tier-3 search — either served by one, or
          upgraded by background refinement; entries written by older
          builds decode as unrefined *)
}

val find_outcome : t -> key:string -> outcome_entry option
(** Decode the stored outcome for this key.  An entry whose envelope is
    readable but whose payload no longer decodes is invalidated (deleted
    and counted corrupt) and reported as a miss. *)

val record_outcome : t -> key:string -> outcome_entry -> unit
