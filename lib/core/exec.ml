(* Re-export of the compiled execution engine as [Stenso.Exec]; the
   implementation lives in lib/exec (see Texec.Engine). *)
include Texec.Engine
