(** The STENSO superoptimizer — Algorithm 1 of the paper.

    [superoptimize] symbolically executes the input program to obtain
    the target specification, estimates the input's cost as the initial
    branch-and-bound bound, enumerates the stub/sketch library, runs the
    synthesis search, and returns the cheaper of (best synthesized
    program, original program).  Every improved result is re-verified by
    symbolic equivalence before being returned, so outputs are correct
    by construction. *)

type outcome = {
  original : Dsl.Ast.t;
  optimized : Dsl.Ast.t;  (** equals [original] when nothing better was found *)
  improved : bool;
  original_cost : float;
  optimized_cost : float;
  search : Search.result;
  verified : bool;
      (** symbolic equivalence of [optimized] and [original]; always
          true for [improved] outcomes (enforced), trivially true
          otherwise *)
  from_cache : bool;
      (** served from the persistent store without entering the search
          (only possible through {!optimize} with a store) *)
  tier : int;
      (** which tier answered: 1 = outcome-store lookup, 2 = mined
          rules / e-graph saturation against the rule database, 3 =
          full branch-and-bound search (always 3 for bare
          {!superoptimize}) *)
  refined : bool;
      (** the answer is final: a full tier-3 search produced it (or an
          earlier one upgraded the store entry it was served from).
          Unrefined answers (tier 2, or tier 1 over a tier-2-written
          entry) are candidates for background {!refine}ment. *)
}

val consts_of : Dsl.Ast.t -> float list
(** The constant terminals of a program (the grammar's [FCons]), plus
    the always-available unit constant. *)

val superoptimize :
  ?tel:Obs.Telemetry.t ->
  ?config:Search.config ->
  ?stub_cache:Stub.Cache.cache ->
  ?spec:Spec.t ->
  ?bound:float ->
  model:Cost.Model.t ->
  env:Dsl.Types.env ->
  Dsl.Ast.t ->
  outcome
(** [tel] (default {!Telemetry.null}) receives the full synthesis trace:
    phase spans ([phase.symbolic_exec], [phase.stub_enum],
    [phase.search]), search counters and the bound trajectory.
    [stub_cache] shares one enumerated stub library per input
    environment across calls (see {!Stub.Cache}); [spec], when the
    caller has already symbolically executed the program, skips the
    redundant execution.  [bound], when below the original program's
    cost, tightens the initial branch-and-bound bound (used by tiered
    serving to prune against an already-verified tier-2 candidate);
    the search then only returns programs cheaper than it. *)

val store_key :
  config:Config.t ->
  model:Cost.Model.t ->
  env:Dsl.Types.env ->
  spec:Spec.t ->
  Dsl.Ast.t ->
  string
(** The full store key for one request ({!Store.outcome_key} over the
    spec key, stub fingerprint, config fingerprint and model id) —
    exactly the key {!optimize} consults, exposed so serving layers can
    deduplicate identical in-flight requests on it. *)

val optimize :
  ?tel:Obs.Telemetry.t ->
  ?config:Config.t ->
  ?store:Store.t ->
  ?stub_cache:Stub.Cache.cache ->
  ?model:Cost.Model.t ->
  ?spec:Spec.t ->
  env:Dsl.Types.env ->
  Dsl.Ast.t ->
  outcome
(** {!superoptimize} driven by the builder-style {!Config} surface.
    When [model] is omitted it is instantiated from the configuration
    ({!Config.model}), wired to the same [tel] — pass one explicitly to
    share a measured model's profiling table across many calls.

    With [store], serving is {e tiered}:

    {ol
    {- {b Tier 1 — outcome store.}  The request key (spec +
       fingerprints + model id, {!Store.outcome_key}) is looked up
       first — a hit reconstitutes the outcome (with
       [outcome.from_cache] set, [store.hits] bumped, and [store.serve]
       / [tier.serve] events in the trace) without entering {!Search}.
       A stale or undecodable entry is invalidated.}
    {- {b Tier 2 — mined rules} (only when the configuration sets
       {!Config.with_rules_depth} and the store holds a {!Rules_db}
       entry for this environment).  Candidates come from
       {!Rules.apply_fixpoint} over the mined rules, e-graph equality
       saturation with cheapest extraction ({!Egraph}), and the
       database's optima table for this very spec.  The cheapest
       candidate that passes full re-verification
       ({!robust_equivalent} + {!validate_concrete}) is served — and
       recorded to the outcome store — iff it is {e certified}: it
       strictly improves the request and reaches the database's
       recorded optimum for this spec (or costs nothing at all, which
       no search can undercut).  Tier 2 never trusts the database for
       correctness, only for guidance, and never certifies a
       "keep the original" verdict — that can only come from the full
       search.}
    {- {b Tier 3 — full search.}  Anything uncertified falls through to
       {!superoptimize}, with a verified tier-2 candidate tightening
       the initial branch-and-bound bound (and serving as the answer if
       the search cannot beat it).  Verified results are fed back into
       the rule database ({!Rules_db.record_feedback}: the generalized
       rewrite when improved, plus the spec optimum) and recorded to
       the outcome store.}}

    Per-tier telemetry: [tier.hit], [tier1.hits]/[tier2.hits]/
    [tier3.hits], [tier.rules_applied], [tier.saturation_ms], and one
    [tier.serve] event per answer.

    [spec], when the caller already symbolically executed the program
    (for example to compute the {!store_key}), skips the redundant
    execution. *)

val refine :
  ?tel:Obs.Telemetry.t ->
  ?config:Config.t ->
  store:Store.t ->
  ?stub_cache:Stub.Cache.cache ->
  ?model:Cost.Model.t ->
  ?spec:Spec.t ->
  env:Dsl.Types.env ->
  Dsl.Ast.t ->
  outcome
(** Run the full tier-3 search for this request unconditionally and
    finalize its store entry with the result — [refined:true] even when
    the search only confirms what was stored, so the same spec is never
    re-refined.  Verified results also feed the rule database
    ({!Rules_db.record_feedback}), closing the loop for future tier-2
    answers.  This is the serving layer's background-refinement hook: a
    tier-2 answer goes out immediately and this call upgrades the entry
    on spare capacity ([tier.refined] counter, [tier.refine] event). *)

val robust_equivalent :
  env:Dsl.Types.env -> Dsl.Ast.t -> Dsl.Ast.t -> bool
(** Symbolic equivalence at the given shapes {e and} at shapes with
    every non-unit dimension bumped by one (when both programs still
    type-check there) — guards against rewrites that only hold at a
    size coincidence of the synthesis shapes. *)

val validate_concrete :
  ?trials:int ->
  ?max_draws:int ->
  ?engine:Texec.Engine.kind ->
  ?exec_options:Texec.Engine.Options.t ->
  env:Dsl.Types.env ->
  Dsl.Ast.t ->
  Dsl.Ast.t ->
  bool
(** Differential testing on random concrete inputs — a secondary check
    used by the test-suite alongside symbolic verification.  The
    reference program (first argument) always runs on the tree-walking
    interpreter; the candidate runs on [engine] (default [`Vm], compiled
    once under [exec_options] — default [Exec.Options.default] — and
    reused across trials), so VM-backed validation doubles as a
    differential test of the compiled path.  Draws whose original output
    is non-finite fall outside the engine's positive-value domain and
    are redrawn rather than counted, until [trials] in-domain
    comparisons have actually run or [max_draws] (default 512, never
    below [trials]) draws are exhausted. *)
