(** The STENSO superoptimizer — Algorithm 1 of the paper.

    [superoptimize] symbolically executes the input program to obtain
    the target specification, estimates the input's cost as the initial
    branch-and-bound bound, enumerates the stub/sketch library, runs the
    synthesis search, and returns the cheaper of (best synthesized
    program, original program).  Every improved result is re-verified by
    symbolic equivalence before being returned, so outputs are correct
    by construction. *)

type outcome = {
  original : Dsl.Ast.t;
  optimized : Dsl.Ast.t;  (** equals [original] when nothing better was found *)
  improved : bool;
  original_cost : float;
  optimized_cost : float;
  search : Search.result;
  verified : bool;
      (** symbolic equivalence of [optimized] and [original]; always
          true for [improved] outcomes (enforced), trivially true
          otherwise *)
  from_cache : bool;
      (** served from the persistent store without entering the search
          (only possible through {!optimize} with a store) *)
}

val consts_of : Dsl.Ast.t -> float list
(** The constant terminals of a program (the grammar's [FCons]), plus
    the always-available unit constant. *)

val superoptimize :
  ?tel:Obs.Telemetry.t ->
  ?config:Search.config ->
  ?stub_cache:Stub.Cache.cache ->
  ?spec:Spec.t ->
  model:Cost.Model.t ->
  env:Dsl.Types.env ->
  Dsl.Ast.t ->
  outcome
(** [tel] (default {!Telemetry.null}) receives the full synthesis trace:
    phase spans ([phase.symbolic_exec], [phase.stub_enum],
    [phase.search]), search counters and the bound trajectory.
    [stub_cache] shares one enumerated stub library per input
    environment across calls (see {!Stub.Cache}); [spec], when the
    caller has already symbolically executed the program, skips the
    redundant execution. *)

val optimize :
  ?tel:Obs.Telemetry.t ->
  ?config:Config.t ->
  ?store:Store.t ->
  ?stub_cache:Stub.Cache.cache ->
  ?model:Cost.Model.t ->
  env:Dsl.Types.env ->
  Dsl.Ast.t ->
  outcome
(** {!superoptimize} driven by the builder-style {!Config} surface.
    When [model] is omitted it is instantiated from the configuration
    ({!Config.model}), wired to the same [tel] — pass one explicitly to
    share a measured model's profiling table across many calls.

    With [store], serving is cache-first: the request key (spec +
    fingerprints + model id, {!Store.outcome_key}) is looked up before
    the search — a hit reconstitutes the outcome (with
    [outcome.from_cache] set, [store.hits] bumped, and a [store.serve]
    event in the trace) without entering {!Search}, and every verified
    fresh outcome is recorded after the search.  A stale or undecodable
    entry is invalidated and the search runs normally. *)

val robust_equivalent :
  env:Dsl.Types.env -> Dsl.Ast.t -> Dsl.Ast.t -> bool
(** Symbolic equivalence at the given shapes {e and} at shapes with
    every non-unit dimension bumped by one (when both programs still
    type-check there) — guards against rewrites that only hold at a
    size coincidence of the synthesis shapes. *)

val validate_concrete :
  ?trials:int ->
  ?max_draws:int ->
  ?engine:Texec.Engine.kind ->
  ?exec_options:Texec.Engine.Options.t ->
  env:Dsl.Types.env ->
  Dsl.Ast.t ->
  Dsl.Ast.t ->
  bool
(** Differential testing on random concrete inputs — a secondary check
    used by the test-suite alongside symbolic verification.  The
    reference program (first argument) always runs on the tree-walking
    interpreter; the candidate runs on [engine] (default [`Vm], compiled
    once under [exec_options] — default [Exec.Options.default] — and
    reused across trials), so VM-backed validation doubles as a
    differential test of the compiled path.  Draws whose original output
    is non-finite fall outside the engine's positive-value domain and
    are redrawn rather than counted, until [trials] in-domain
    comparisons have actually run or [max_draws] (default 512, never
    below [trials]) draws are exhausted. *)
