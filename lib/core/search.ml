module Ast = Dsl.Ast
module Types = Dsl.Types
module St = Dsl.Sexec.Stensor
module Shape = Tensor.Shape
module Expr = Symbolic.Expr
module Tel = Obs.Telemetry

type config = {
  stub_config : Stub.config;
  invert_config : Invert.config;
  use_bnb : bool;
  use_simplification : bool;
  node_budget : int;
  timeout : float;
  max_depth : int;
  memoize : bool;
  jobs : int;
}

let default_config =
  {
    stub_config = Stub.default_config;
    invert_config = Invert.default_config;
    use_bnb = true;
    use_simplification = true;
    node_budget = 200_000;
    timeout = 600.;
    max_depth = 12;
    memoize = true;
    jobs = 1;
  }

type stats = {
  nodes : int;
  decomps : int;
  pruned_simp : int;
  pruned_bnb : int;
  memo_hits : int;
  memo_misses : int;
  elapsed : float;
  timed_out : bool;
  library_size : int;
}

type result = { program : Dsl.Ast.t option; cost : float; stats : stats }

exception Out_of_budget

module Sset = Set.Make (String)

(* The search statistics live in atomic counters shared by every domain
   working on the search (the telemetry layer reads the same counters),
   so sequential and parallel runs account identically — in particular
   [nodes] is one global total, which is what [check_budget] compares
   against the node budget. *)
type counters = {
  nodes : Tel.Counter.t;
  decomps : Tel.Counter.t;
  pruned_simp : Tel.Counter.t;
  pruned_bnb_local : Tel.Counter.t;
  pruned_bnb_global : Tel.Counter.t;
  pruned_bnb_hole : Tel.Counter.t;
  memo_hits : Tel.Counter.t;
  memo_misses : Tel.Counter.t;
}

let make_counters tel =
  {
    nodes = Tel.counter tel "search.nodes";
    decomps = Tel.counter tel "search.decomps";
    pruned_simp = Tel.counter tel "search.pruned.simp";
    pruned_bnb_local = Tel.counter tel "search.pruned.bnb_local";
    pruned_bnb_global = Tel.counter tel "search.pruned.bnb_global";
    pruned_bnb_hole = Tel.counter tel "search.pruned.bnb_hole";
    memo_hits = Tel.counter tel "search.memo_hits";
    memo_misses = Tel.counter tel "search.memo_misses";
  }

type state = {
  cfg : config;
  model : Cost.Model.t;
  lib : Stub.library;
  started : float;
  tel : Tel.t;
  c : counters;
  keyc : Spec.key_counters;
      (* per-run spec-key attribution; installed as the ambient cell in
         every worker domain of this search *)
  (* The branch-and-bound bound is shared by every domain working on the
     search, so a complete program found by one worker prunes all the
     others.  It only ever decreases (see [relax]). *)
  cost_min : float Atomic.t;
  memo : (string, Dsl.Ast.t * float) Hashtbl.t;
  (* Specs that failed to synthesize, keyed with the smallest
     accumulated cost at which they failed: the global bound only ever
     tightens, so failing at cost c implies failing at any cost >= c.
     Only recorded when no candidate was suppressed by the path's
     visited set (such failures are path-dependent). *)
  memo_fail : (string, float) Hashtbl.t;
}

(* Monotone atomic minimum: safe for concurrent publishers because a
   failed CAS means someone else lowered the bound, which we then
   re-read. *)
let rec relax a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then relax a v

(* A complete top-level program tightens the global bound; the bound
   trajectory over time is the telemetry signal the paper's B&B-vs-
   simplification-only comparison is about. *)
let publish_bound st cost =
  relax st.cost_min cost;
  if Tel.enabled st.tel then
    Tel.gauge st.tel "search.bound" (Atomic.get st.cost_min)

let check_budget st =
  if
    Tel.Counter.get st.c.nodes > st.cfg.node_budget
    || Unix.gettimeofday () -. st.started > st.cfg.timeout
  then raise Out_of_budget

(* Cheapest base-case match for a spec: a library stub (exact shape; or,
   in hole position, one that broadcasts to it), a conjured constant, or
   a [full] of a conjured constant at top level. *)
let match_spec st ~top spec =
  let candidates = ref [] in
  let consider prog cost = candidates := (prog, cost) :: !candidates in
  (match Stub.lookup_exact st.lib spec with
  | Some s -> consider s.Stub.prog s.Stub.cost
  | None -> ());
  (if not top then
     match Stub.lookup_broadcast st.lib spec with
     | Some s -> consider s.Stub.prog s.Stub.cost
     | None -> ());
  (match Spec.to_const spec with
  | Some q ->
      let c = Ast.Const (Symbolic.Q.to_float q) in
      let shape = Spec.shape spec in
      if (not top) || Shape.rank shape = 0 then consider c 0.
      else
        consider
          (Ast.App (Ast.Full shape, [ c ]))
          (st.model.Cost.Model.op_cost (Ast.Full shape) [ Types.scalar_f ])
  | None -> ());
  match List.sort (fun (_, c1) (_, c2) -> compare c1 c2) !candidates with
  | (prog, cost) :: _ -> Some (prog, cost)
  | [] -> None

let structural_tie_op = function
  | Ast.Transpose _ -> true
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow_op | Ast.Maximum
  | Ast.Sqrt | Ast.Exp | Ast.Log | Ast.Dot | Ast.Tensordot _ | Ast.Sum _
  | Ast.Max _ | Ast.Stack _ | Ast.Where | Ast.Less | Ast.Triu | Ast.Tril
  | Ast.Diag | Ast.Trace | Ast.Reshape _ | Ast.Full _ ->
      false

(* A hole whose spec is uniform along some axes will be realized by a
   broadcastable (collapsed) operand — e.g. a residual tensor of all 4s
   becomes the scalar constant 4 — so the operation is costed at the
   collapsed shape. *)
let vt_of_spec spec : Types.vt =
  Types.float_t (Spec.shape (Spec.collapse spec))

let decomp_op_cost st (d : Invert.decomposition) =
  let arg_ts =
    List.map
      (function
        | Invert.P_hole h -> vt_of_spec h
        | Invert.P_conc s -> s.Stub.vt)
      d.parts
  in
  match st.model.Cost.Model.op_cost d.op arg_ts with
  | c -> Some c
  | exception Types.Type_error _ -> None

(* The decompositions worth recursing into — those that simplify (or
   structurally tie on unvisited specs) — annotated with their immediate
   cost and sorted cheapest-first.  Shared by the sequential recursion
   and the parallel root. *)
let viable_decomps st ~visited spec =
  let spec_cx = Spec.complexity spec in
  let ds =
    Invert.decompositions ~config:st.cfg.invert_config ~tel:st.tel st.lib
      spec
  in
  Tel.Counter.add st.c.decomps (List.length ds);
  let visited_blocked = ref false in
  let viable =
    List.filter_map
      (fun (d : Invert.decomposition) ->
        let holes = Invert.hole_specs d in
        let hole_keys = List.map Spec.key holes in
        if List.exists (fun k -> Sset.mem k visited) hole_keys then begin
          visited_blocked := true;
          None
        end
        else
          let simplifies =
            if not st.cfg.use_simplification then true
            else
              let cxs = List.map Spec.complexity holes in
              let avg =
                List.fold_left ( +. ) 0. cxs
                /. float_of_int (max 1 (List.length cxs))
              in
              avg < spec_cx
              || (avg = spec_cx && structural_tie_op d.op)
          in
          if not simplifies then begin
            Tel.Counter.incr st.c.pruned_simp;
            None
          end
          else
            match decomp_op_cost st d with
            | None -> None
            | Some opc -> Some (d, holes, opc +. Invert.conc_cost d))
      ds
  in
  ( List.sort (fun (_, _, c1) (_, _, c2) -> compare c1 c2) viable,
    !visited_blocked )

(* Algorithm 2. *)
let rec dfs st ~level ~visited ~cost_in spec : (Dsl.Ast.t * float) option =
  Tel.Counter.incr st.c.nodes;
  check_budget st;
  let top = level = 0 in
  (* Base case: direct template match (Algorithm 2 lines 2-8).  A match
     ends the branch only when it is free (an input, constant, or other
     zero-cost leaf) — those cannot be beaten.  An expensive matching
     stub (the library also contains e.g. the original program itself)
     instead seeds the bound while decomposition continues, otherwise
     the search could never improve on a library entry. *)
  match match_spec st ~top spec with
  | Some (prog, cost) when (not top) && cost = 0. -> Some (prog, cost)
  | matched ->
      if level >= st.cfg.max_depth then matched
      else
        let key = Spec.key spec in
        let memo_hit =
          if st.cfg.memoize then begin
            let hit = Hashtbl.find_opt st.memo key in
            (match hit with
            | Some _ -> Tel.Counter.incr st.c.memo_hits
            | None -> Tel.Counter.incr st.c.memo_misses);
            hit
          end
          else None
        in
        (match memo_hit with
        | Some (prog, cost) ->
            if
              (not st.cfg.use_bnb)
              || cost_in +. cost <= Atomic.get st.cost_min
            then Some (prog, cost)
            else None
        | None
          when (not top)
               && matched = None
               &&
               match Hashtbl.find_opt st.memo_fail key with
               | Some c -> cost_in >= c
               | None -> false ->
            None
        | None ->
            let visited = Sset.add key visited in
            let viable, visited_blocked = viable_decomps st ~visited spec in
            let best = ref None in
            let best_cost = ref infinity in
            let best_idx = ref (-1) in
            (match matched with
            | Some (prog, cost) ->
                best := Some prog;
                best_cost := cost;
                (* Only a top-level match is a complete program; deeper
                   in the tree, [cost_in] excludes sibling holes that
                   are still unsynthesized, so tightening the global
                   bound here would over-prune. *)
                if top && st.cfg.use_bnb then publish_bound st cost
            | None -> ());
            List.iteri
              (fun idx dhi ->
                explore st ~top ~level ~visited ~cost_in spec ~best
                  ~best_cost ~best_idx idx dhi)
              viable;
            (match !best with
            | Some prog ->
                if st.cfg.memoize then
                  Hashtbl.replace st.memo key (prog, !best_cost);
                Some (prog, !best_cost)
            | None ->
                if st.cfg.memoize && not visited_blocked then
                  (match Hashtbl.find_opt st.memo_fail key with
                  | Some c when c <= cost_in -> ()
                  | _ -> Hashtbl.replace st.memo_fail key cost_in);
                None))

(* Synthesize the holes of one decomposition, updating the running best
   (and, at top level, the global bound).  [best_idx] records which
   decomposition produced the running best — the deterministic
   tie-breaker when parallel workers merge their results. *)
and explore st ~top ~level ~visited ~cost_in spec ~best ~best_cost ~best_idx
    idx ((d : Invert.decomposition), holes, immediate) =
  let cost_total = ref (cost_in +. immediate) in
  (* Local bound: holes cost at least zero, so a sketch whose own
     operations already exceed this node's best candidate (often the
     direct match) cannot win.  Equal-cost sketches are NOT pruned —
     here or against the global bound below — because ties are decided
     by the (program size, decomposition index) rule, and that rule is
     only deterministic if every tying candidate is actually explored.
     This is what makes the parallel root fan-out return byte-identical
     results to the sequential engine: bound-publication timing can only
     cut strictly-losing branches, never a potential winner. *)
  if immediate > !best_cost then
    Tel.Counter.incr st.c.pruned_bnb_local
  else if st.cfg.use_bnb && !cost_total > Atomic.get st.cost_min then
    Tel.Counter.incr st.c.pruned_bnb_global
  else begin
    let progs = ref [] in
    let ok = ref true in
    List.iter
      (fun hole ->
        if !ok then
          if st.cfg.use_bnb && !cost_total > Atomic.get st.cost_min then begin
            Tel.Counter.incr st.c.pruned_bnb_hole;
            ok := false
          end
          else
            match
              dfs st ~level:(level + 1) ~visited ~cost_in:!cost_total hole
            with
            | None -> ok := false
            | Some (p, c) ->
                progs := p :: !progs;
                cost_total := !cost_total +. c)
      holes;
    if !ok then begin
      let local = !cost_total -. cost_in in
      let prog = Invert.reconstruct d (List.rev !progs) in
      (* A hole may have been filled by a broadcastable (collapsed)
         program; that is only legitimate where the assembled sketch
         still produces the spec's value — ill-typed combinations and
         shape mismatches are rejected here.  Non-top results may
         broadcast to the spec (their elementwise consumers restore the
         full extent). *)
      let shape_ok =
        match Types.check (Stub.env st.lib) prog with
        | Error _ -> false
        | Ok vt ->
            let sshape = Spec.shape spec in
            Shape.equal vt.shape sshape
            || (not top)
               &&
               (match Shape.broadcast vt.shape sshape with
               | Some s -> Shape.equal s sshape
               | None -> false)
      in
      if not shape_ok then ok := false;
      if !ok then begin
      (* Ties (common under the integral FLOPs model, e.g. a zero-cost
         transpose pair) break toward the syntactically smaller
         program. *)
      let better =
        local < !best_cost
        || local = !best_cost
           &&
           match !best with
           | Some b -> Ast.size prog < Ast.size b
           | None -> true
      in
      if better then begin
        best_cost := local;
        best := Some prog;
        best_idx := idx
      end;
      if top && st.cfg.use_bnb then publish_bound st !cost_total
      end
    end
  end

(* The root of Algorithm 2 with the viable top-level decompositions
   distributed round-robin over a fixed pool of domains; [jobs = 1] is
   the sequential engine (same code path, no domains spawned).  Workers
   share the branch-and-bound bound and the statistics counters — so the
   node budget is one global budget regardless of [jobs] — but keep
   private memo tables; results merge by minimal
   (cost, program size, decomposition index), which reproduces the
   sequential iteration's "first minimal (cost, size) wins" rule, with
   the direct match carrying index -1.

   A worker that runs out of budget keeps the best complete program it
   has found so far (anytime behaviour): the budget exception is caught
   per worker, not propagated through the root, so an expired budget
   degrades the answer instead of discarding it. *)
let search_root ~jobs st spec =
  Tel.Counter.incr st.c.nodes;
  check_budget st;
  let matched = match_spec st ~top:true spec in
  if st.cfg.max_depth <= 0 then (matched, false)
  else begin
    let key = Spec.key spec in
    let visited = Sset.add key Sset.empty in
    let viable, _blocked = viable_decomps st ~visited spec in
    (match matched with
    | Some (_, cost) when st.cfg.use_bnb -> publish_bound st cost
    | _ -> ());
    let viable = Array.of_list viable in
    let n = Array.length viable in
    let jobs = max 1 (min jobs n) in
    let worker w =
      Spec.with_counters st.keyc @@ fun () ->
      let stw =
        {
          st with
          memo = Hashtbl.create 256;
          memo_fail = Hashtbl.create 256;
        }
      in
      let best = ref None and best_cost = ref infinity in
      let best_idx = ref (-1) in
      (match matched with
      | Some (prog, cost) ->
          best := Some prog;
          best_cost := cost
      | None -> ());
      let timed_out = ref false in
      (try
         let i = ref w in
         while !i < n do
           explore stw ~top:true ~level:0 ~visited ~cost_in:0. spec ~best
             ~best_cost ~best_idx !i viable.(!i);
           i := !i + jobs
         done
       with Out_of_budget -> timed_out := true);
      (!best, !best_cost, !best_idx, !timed_out)
    in
    let outs = Par.map_array ~jobs worker (Array.init jobs (fun w -> w)) in
    let best =
      ref
        (match matched with
        | Some (p, c) -> Some (p, c, Ast.size p, -1)
        | None -> None)
    in
    let timed_out = ref false in
    Array.iter
      (fun (b, bc, bi, t_o) ->
        if t_o then timed_out := true;
        match b with
        | Some p when bi >= 0 ->
            let size = Ast.size p in
            let replace =
              match !best with
              | None -> true
              | Some (_, c0, s0, i0) -> (bc, size, bi) < (c0, s0, i0)
            in
            if replace then best := Some (p, bc, size, bi)
        | Some _ | None -> ())
      outs;
    ( (match !best with Some (p, c, _, _) -> Some (p, c) | None -> None),
      !timed_out )
  end

let run ?(tel = Tel.null) ?(config = default_config) ?library ~model ~env
    ~spec ~initial_bound ~consts () =
  let started = Unix.gettimeofday () in
  let keyc = Spec.fresh_counters () in
  Spec.with_counters keyc @@ fun () ->
  let lib =
    match library with
    | Some lib ->
        (* Pre-enumerated (shared) library: no enumeration phase. *)
        if Tel.enabled tel then
          Tel.event tel "stub.shared"
            [ ("library_size", Tel.Int (Stub.size lib)) ];
        lib
    | None ->
        let stub_config =
          {
            config.stub_config with
            Stub.deadline = Some (started +. config.timeout);
          }
        in
        Tel.span tel "phase.stub_enum" (fun () ->
            Stub.enumerate ~config:stub_config ~tel ~model ~consts env)
  in
  let st =
    {
      cfg = config;
      model;
      lib;
      started;
      tel;
      c = make_counters tel;
      keyc;
      cost_min = Atomic.make initial_bound;
      memo = Hashtbl.create 256;
      memo_fail = Hashtbl.create 256;
    }
  in
  let outcome, timed_out =
    Tel.span tel "phase.search" (fun () ->
        match search_root ~jobs:(max 1 config.jobs) st spec with
        | r -> r
        | exception Out_of_budget ->
            (* The budget expired before the root finished setting up
               (first node or root decomposition listing). *)
            (None, true))
  in
  let elapsed = Unix.gettimeofday () -. started in
  let pruned_bnb =
    Tel.Counter.get st.c.pruned_bnb_local
    + Tel.Counter.get st.c.pruned_bnb_global
    + Tel.Counter.get st.c.pruned_bnb_hole
  in
  let stats =
    {
      nodes = Tel.Counter.get st.c.nodes;
      decomps = Tel.Counter.get st.c.decomps;
      pruned_simp = Tel.Counter.get st.c.pruned_simp;
      pruned_bnb;
      memo_hits = Tel.Counter.get st.c.memo_hits;
      memo_misses = Tel.Counter.get st.c.memo_misses;
      elapsed;
      timed_out;
      library_size = Stub.size lib;
    }
  in
  if Tel.enabled tel then begin
    (* Per-run attribution: this run's own cell, not the process-wide
       totals — concurrent traced runs no longer double-count. *)
    let key_builds, key_hits, key_secs = Spec.counters_stats keyc in
    Tel.add tel "spec.key_builds" key_builds;
    Tel.add tel "spec.key_cache_hits" key_hits;
    Tel.Acc.add (Tel.acc tel "spec.key_build_seconds") key_secs;
    Tel.event tel "search.summary"
      [
        ("nodes", Tel.Int stats.nodes);
        ("decomps", Tel.Int stats.decomps);
        ("pruned_simp", Tel.Int stats.pruned_simp);
        ("pruned_bnb", Tel.Int pruned_bnb);
        ("memo_hits", Tel.Int stats.memo_hits);
        ("memo_misses", Tel.Int stats.memo_misses);
        ("library_size", Tel.Int stats.library_size);
        ("elapsed", Tel.Float elapsed);
        ( "node_rate",
          Tel.Float
            (if elapsed > 0. then float_of_int stats.nodes /. elapsed else 0.)
        );
        ("timed_out", Tel.Bool timed_out);
      ]
  end;
  match outcome with
  | Some (program, cost) -> { program = Some program; cost; stats }
  | None -> { program = None; cost = infinity; stats }
