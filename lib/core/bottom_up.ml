type result = {
  program : Dsl.Ast.t option;
  cost : float;
  enumerated : int;
  distinct : int;
  elapsed : float;
  gave_up : bool;
  depth_reached : int;
}

let run ?(max_depth = 3) ?(max_programs = 300_000) ?(timeout = 600.) ~model
    ~env prog =
  let started = Unix.gettimeofday () in
  let spec = Dsl.Sexec.exec_env env prog in
  let original_cost = Cost.Model.program_cost model env prog in
  let consts = Superopt.consts_of prog in
  let best = ref None in
  let best_cost = ref original_cost in
  let enumerated = ref 0 in
  let distinct = ref 0 in
  let gave_up = ref false in
  let depth_reached = ref 0 in
  (try
     for depth = 1 to max_depth do
       if Unix.gettimeofday () -. started > timeout then raise Exit;
       let config =
         {
           Stub.depth;
           max_stubs = max_programs;
           extended_ops = false;
           full_binary = true;
           deadline = Some (started +. timeout);
           jobs = 1;
         }
       in
       let lib = Stub.enumerate ~config ~model ~consts env in
       depth_reached := depth;
       enumerated := Stub.attempts lib;
       distinct := Stub.size lib;
       (* even a truncated enumeration may already contain a better
          equivalent program *)
       (match Stub.lookup_exact lib spec with
       | Some s when s.Stub.cost < !best_cost ->
           best := Some s.Stub.prog;
           best_cost := s.Stub.cost
       | _ -> ());
       if Stub.truncated lib || Unix.gettimeofday () -. started > timeout
       then begin
         gave_up := true;
         raise Exit
       end
     done
   with Exit -> ());
  {
    program = !best;
    cost = !best_cost;
    enumerated = !enumerated;
    distinct = !distinct;
    elapsed = Unix.gettimeofday () -. started;
    gave_up = !gave_up;
    depth_reached = !depth_reached;
  }
