(* Ordered parallel maps for the synthesis engine, built on the
   process-wide persistent domain pool ({!Pool}).

   The semantics are unchanged from the original per-call-spawn
   implementation: results come back in input order, work is handed out
   as [chunk]-sized blocks from a shared cursor, and if applications
   raise, every element is still attempted and the exception of the
   smallest-indexed failing element is re-raised at the end.  What
   changed is the execution substrate — lanes are claimed from the pool
   instead of spawned, so a [map] inside a [map] (for example the
   search fan-out calling into the parallel VM) degrades gracefully
   instead of over-spawning domains, and no call pays domain startup. *)

let default_jobs () = Pool.default_domains ()

type 'b slot = Pending | Done of 'b | Failed of exn

let map_array ~jobs ?(chunk = 1) f xs =
  let n = Array.length xs in
  let jobs = min jobs n in
  if jobs <= 1 then Array.map f xs
  else begin
    let out = Array.make n Pending in
    Pool.parallel_for ~lanes:jobs ~chunk:(max 1 chunk) n
      (fun ~lane:_ ~lo ~hi ->
        for i = lo to hi - 1 do
          out.(i) <-
            (match f xs.(i) with y -> Done y | exception e -> Failed e)
        done);
    Array.map
      (function Done y -> y | Failed e -> raise e | Pending -> assert false)
      out
  end

let map ~jobs ?chunk f xs =
  Array.to_list (map_array ~jobs ?chunk f (Array.of_list xs))
