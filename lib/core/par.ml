let default_jobs () = Domain.recommended_domain_count ()

type 'b slot = Pending | Done of 'b | Failed of exn

let map_array ~jobs ?(chunk = 1) f xs =
  let n = Array.length xs in
  let jobs = min jobs n in
  if jobs <= 1 then Array.map f xs
  else begin
    let out = Array.make n Pending in
    let next = Atomic.make 0 in
    let chunk = max 1 chunk in
    let work () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            out.(i) <- (match f xs.(i) with
              | y -> Done y
              | exception e -> Failed e)
          done;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn work) in
    work ();
    List.iter Domain.join domains;
    Array.map
      (function Done y -> y | Failed e -> raise e | Pending -> assert false)
      out
  end

let map ~jobs ?chunk f xs =
  Array.to_list (map_array ~jobs ?chunk f (Array.of_list xs))
