module Json = Obs.Telemetry.Json
module Ast = Dsl.Ast

let schema = "stenso.rules/1"

(* Fixed and key-relevant: the serving tier recomputes a request's
   database key from its environment alone, so the miner and the server
   must agree on the constant terminals by construction, not by
   configuration. *)
let standard_consts = [ 0.; 1.; 2.; 3.; 4.; 5. ]

let mine_config ?(jobs = 1) ~depth () =
  { Stub.default_config with Stub.depth; jobs }

let key ~env ~model_id ~depth =
  Printf.sprintf "stenso.rules|model=%s|%s" model_id
    (Stub.fingerprint (mine_config ~depth ()) ~consts:standard_consts env)

type rule = { rule : Rules.t; gain : float }

type t = {
  version : string;
  model_id : string;
  depth : int;
  truncated : bool;
      (* the mining enumeration hit its stub cap or deadline: the rule
         set is still sound (each rule was verified within the library),
         but "no better program exists" conclusions must not be drawn *)
  rules : rule list;
  optima : (string, float * string) Hashtbl.t;
}

let max_rules = 1024

let spec_digest spec = Store.digest (Spec.key spec)

let rule_id (r : Rules.t) = Ast.to_string r.lhs ^ " ==> " ^ Ast.to_string r.rhs

(* Dedupe by rendered lhs/rhs keeping the best gain, rank by gain. *)
let dedupe_rules rules =
  let best : (string, rule) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      let id = rule_id r.rule in
      match Hashtbl.find_opt best id with
      | Some prev when prev.gain >= r.gain -> ()
      | Some _ -> Hashtbl.replace best id r
      | None ->
          Hashtbl.add best id r;
          order := id :: !order)
    rules;
  let all = List.rev_map (fun id -> Hashtbl.find best id) !order in
  let sorted =
    List.stable_sort (fun a b -> compare b.gain a.gain) all
  in
  List.filteri (fun i _ -> i < max_rules) sorted

let entry ?(truncated = false) ~model_id ~depth ~rules ~optima () =
  let table = Hashtbl.create (List.length optima) in
  List.iter
    (fun (digest, ((cost, _) as binding)) ->
      match Hashtbl.find_opt table digest with
      | Some (prev, _) when prev <= cost -> ()
      | _ -> Hashtbl.replace table digest binding)
    optima;
  {
    version = Version.current;
    model_id;
    depth;
    truncated;
    rules = dedupe_rules rules;
    optima = table;
  }

let lookup_optimum t digest =
  match Hashtbl.find_opt t.optima digest with
  | None -> None
  | Some (cost, text) -> (
      match Dsl.Parser.expression text with
      | prog -> Some (cost, prog)
      | exception _ -> None)

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let rule_json r =
  Json.Obj
    [
      ("lhs", Json.Str (Ast.to_string r.rule.Rules.lhs));
      ("rhs", Json.Str (Ast.to_string r.rule.Rules.rhs));
      ( "metavars",
        Json.List
          (List.map
             (fun (orig, mv) -> Json.List [ Json.Str orig; Json.Str mv ])
             r.rule.Rules.metavars) );
      ("gain", Json.Float r.gain);
    ]

let to_json t =
  let optima =
    Hashtbl.fold
      (fun digest (cost, text) acc ->
        Json.List [ Json.Str digest; Json.Float cost; Json.Str text ] :: acc)
      t.optima []
  in
  (* Deterministic rendering: hash order is arbitrary. *)
  let optima =
    List.sort
      (fun a b ->
        match (a, b) with
        | Json.List (Json.Str x :: _), Json.List (Json.Str y :: _) ->
            compare x y
        | _ -> 0)
      optima
  in
  Json.Obj
    [
      ("version", Json.Str t.version);
      ("model", Json.Str t.model_id);
      ("depth", Json.Int t.depth);
      ("truncated", Json.Bool t.truncated);
      ("rules", Json.List (List.map rule_json t.rules));
      ("optima", Json.List optima);
    ]

let rule_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_string_opt in
  match (str "lhs", str "rhs") with
  | Some lhs_text, Some rhs_text -> (
      match
        (Dsl.Parser.expression lhs_text, Dsl.Parser.expression rhs_text)
      with
      | lhs, rhs ->
          let metavars =
            match Option.bind (Json.member "metavars" j) Json.to_list_opt with
            | None -> []
            | Some pairs ->
                List.filter_map
                  (function
                    | Json.List [ Json.Str orig; Json.Str mv ] ->
                        Some (orig, mv)
                    | _ -> None)
                  pairs
          in
          let gain =
            Option.value ~default:0.
              (Option.bind (Json.member "gain" j) Json.to_float_opt)
          in
          Some { rule = { Rules.lhs; rhs; metavars }; gain }
      | exception _ -> None)
  | _ -> None

let of_json j =
  let ( let* ) = Option.bind in
  let* version = Option.bind (Json.member "version" j) Json.to_string_opt in
  let* model_id = Option.bind (Json.member "model" j) Json.to_string_opt in
  let* depth = Option.bind (Json.member "depth" j) Json.to_int_opt in
  let* rule_docs = Option.bind (Json.member "rules" j) Json.to_list_opt in
  let* optima_docs = Option.bind (Json.member "optima" j) Json.to_list_opt in
  (* Entries written before the flag existed default to [false]: their
     optima predate truncation tracking and are grandfathered in. *)
  let truncated =
    Option.value ~default:false
      (Option.bind (Json.member "truncated" j) Json.to_bool_opt)
  in
  (* Individually malformed lines degrade the entry, not the load. *)
  let rules = List.filter_map rule_of_json rule_docs in
  let optima = Hashtbl.create (List.length optima_docs) in
  List.iter
    (function
      | Json.List [ Json.Str digest; cost; Json.Str text ] -> (
          match Json.to_float_opt cost with
          | Some c -> Hashtbl.replace optima digest (c, text)
          | None -> ())
      | _ -> ())
    optima_docs;
  Some { version; model_id; depth; truncated; rules; optima }

(* ------------------------------------------------------------------ *)
(* Store plumbing                                                      *)
(* ------------------------------------------------------------------ *)

(* Decoded-entry cache.  Parsing a few hundred rules plus a few
   thousand optima lines per request would dominate tier-2 latency, so
   decode once per resident payload: the cached decode is valid exactly
   while [Store.find] keeps returning the *same* payload object (the
   store's LRU front preserves physical identity); a reload from disk —
   new object — re-decodes, which also makes external modification and
   corruption visible to long-lived handles. *)
let cache : (string, Json.t * t) Hashtbl.t = Hashtbl.create 8
let cache_lock = Mutex.create ()

let cache_key store key = Store.dir store ^ "\x00" ^ key

let find store ~key =
  match Store.find store ~schema key with
  | None -> None
  | Some payload -> (
      let ck = cache_key store key in
      match
        Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache ck)
      with
      | Some (resident, t) when resident == payload -> Some t
      | _ -> (
          match of_json payload with
          | Some t ->
              Mutex.protect cache_lock (fun () ->
                  Hashtbl.replace cache ck (payload, t));
              Some t
          | None ->
              Store.invalidate store key;
              None))

let record store ~key t =
  let payload = to_json t in
  Store.add store ~schema key payload;
  Mutex.protect cache_lock (fun () ->
      Hashtbl.replace cache (cache_key store key) (payload, t))

(* Serializes feedback read-modify-writes within this process; across
   processes the last writer wins, which is acceptable for a cache whose
   entries are independently correct. *)
let feedback_lock = Mutex.create ()

let record_feedback store ~key ~model_id ~depth ?rule ~spec_digest ~cost ~prog
    () =
  Mutex.protect feedback_lock (fun () ->
      let current =
        match find store ~key with
        | Some t when t.model_id = model_id && t.depth = depth -> Some t
        | Some _ | None -> None
      in
      let rules, optima_tbl =
        match current with
        | Some t -> (t.rules, Hashtbl.copy t.optima)
        | None -> ([], Hashtbl.create 4)
      in
      (* Feedback optima come from verified searches, not from the
         mining enumeration; they do not clear the truncation mark. *)
      let truncated =
        match current with Some t -> t.truncated | None -> false
      in
      let rules =
        match rule with
        | None -> rules
        | Some (r, gain) ->
            let fresh = { rule = r; gain } in
            if List.exists (fun e -> rule_id e.rule = rule_id r) rules then
              rules
            else dedupe_rules (fresh :: rules)
      in
      (match Hashtbl.find_opt optima_tbl spec_digest with
      | Some (prev, _) when prev <= cost -> ()
      | _ -> Hashtbl.replace optima_tbl spec_digest (cost, prog));
      record store ~key
        {
          version = Version.current;
          model_id;
          depth;
          truncated;
          rules;
          optima = optima_tbl;
        })
