(** Lifting front-end: synthesize a tensor-DSL program equivalent to a
    scalar loop-nest kernel, then superoptimize it.

    The loop language (AST, parser with positioned diagnostics, and a
    reference interpreter generic over the element domain) lives in
    [lib/lift] and is re-exported here as {!Loop_ast}, {!Loop_parser},
    {!Loop_interp} — the same layering as [Exec] over [Texec].

    Lifting is sketch-guided search in the style of Guided Tensor
    Lifting, made tractable by TF-Coder-style value pruning
    (PAPERS.md): the kernel runs on sampled inputs to produce a
    behavioral signature; shape/rank analysis of the loop nest proposes
    sketches (a bare library hole, reduce-of-reshape pooling patterns,
    binary-operator skeletons); holes are filled from the {!Stub}
    library enumerated over the kernel's input environment; candidates
    whose concrete outputs mismatch the signature are pruned before any
    symbolic work.  A surviving candidate is accepted only when {e
    certified}: the kernel's symbolic specification (the loop
    interpreter run over {!Symbolic.Expr} scalars) equals the
    candidate's, and a differential check against the execution engine
    agrees on fresh draws.

    Telemetry: [lift.sketches] and [lift.pruned_by_value] counters, a
    [lift.verify_ms] accumulator, and [lift.done] / [lift.failed]
    events per kernel. *)

module Loop_ast = Tlift.Loop_ast
module Loop_parser = Tlift.Loop_parser
module Loop_interp = Tlift.Loop_interp

type stats = {
  sketches : int;  (** sketch templates proposed by loop analysis *)
  pruned_by_value : int;  (** candidates rejected by the value check *)
  certified : int;  (** value matches submitted to certification *)
  library_size : int;
  lift_s : float;  (** end-to-end lifting wall time *)
  verify_s : float;  (** time inside symbolic + differential checks *)
}

type lifted = {
  kernel : Loop_ast.kernel;
  env : Dsl.Types.env;  (** the [in] parameters as DSL inputs *)
  prog : Dsl.Ast.t;  (** the certified lifted program *)
  stats : stats;
}

type error =
  | Unsupported of string
      (** Semantic error from the reference interpreter: the kernel is
          outside the liftable fragment. *)
  | Not_lifted of stats
      (** The sketch space was exhausted without a certified lift (a
          [lift.failed] event records the counters). *)

val error_message : error -> string

val default_stub_config : Stub.config
(** {!Stub.default_config} with [full_binary] on: lifted programs are
    matched whole against the library rather than recursively
    decomposed, so the atom-operand redundancy cut does not apply. *)

val symbolic_spec : Loop_ast.kernel -> Dsl.Types.env -> Spec.t
(** The kernel's exact symbolic specification: the loop interpreter run
    over {!Symbolic.Expr} scalars on symbolic inputs (loop bounds are
    constants, so every iteration executes concretely).  Raises
    {!Loop_interp.Eval_error} on semantic errors. *)

val lift :
  ?tel:Obs.Telemetry.t ->
  ?config:Config.t ->
  ?stub_cache:Stub.Cache.cache ->
  ?samples:int ->
  ?seed:int ->
  Loop_ast.kernel ->
  (lifted, error) result
(** Lift one kernel.  [samples] (default 3) input draws from the suite
    generator's distribution form the value signature; [seed] makes
    the draw deterministic.  [stub_cache] shares enumerated libraries
    across lifts of kernels with equal input environments; the value
    tables derived from them are keyed by library {e and} sampled-input
    fingerprint ({!Stub.Values}), so different draws never collide. *)

val optimize :
  ?tel:Obs.Telemetry.t ->
  ?config:Config.t ->
  ?store:Store.t ->
  ?stub_cache:Stub.Cache.cache ->
  ?samples:int ->
  ?seed:int ->
  Loop_ast.kernel ->
  (lifted * Superopt.outcome, error) result
(** {!lift}, then hand the certified program to {!Superopt.optimize}
    (store-first, tiered) — the result is both lifted and
    superoptimized. *)
