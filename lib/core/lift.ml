(* Stenso.Lift: sketch-guided lifting of scalar loop-nest kernels into
   the tensor DSL, per Guided Tensor Lifting / TF-Coder (PAPERS.md).

   The loop language itself (AST, parser, reference interpreter) lives
   in lib/lift as the dependency-free library [Tlift], re-exported here
   — the same layering as [Exec] over [Texec] and [Net] over [Tnet] —
   because the lifting engine needs [Stub]/[Superopt], which live above
   [Tlift] in the build graph.

   Pipeline:
   1. run the kernel on sampled input draws (the suite generator's
      distribution) — its behavioral signature;
   2. enumerate the stub library for the kernel's input environment
      (full bottom-up binary combination: lifted programs are found
      whole, not recursively decomposed, so the redundancy cut the
      sketch search relies on does not apply);
   3. shape/rank analysis of the loop nest proposes sketches — a bare
      library hole, reduce-of-reshape patterns for pooling loops,
      binary-operator skeletons for the operators the body uses;
   4. fill holes with library stubs, pruning every candidate whose
      concrete outputs mismatch the signature (TF-Coder value check —
      cheap, vectorized, before any symbolic work);
   5. certify survivors: the kernel's symbolic spec (the loop
      interpreter run over [Symbolic.Expr] scalars) must equal the
      candidate's, and a VM differential must agree on fresh draws.

   Certified lifts are handed to [Superopt.optimize] by {!optimize},
   so the result is both lifted and superoptimized. *)

module Loop_ast = Tlift.Loop_ast
module Loop_parser = Tlift.Loop_parser
module Loop_interp = Tlift.Loop_interp
module Ast = Dsl.Ast
module Types = Dsl.Types
module Interp = Dsl.Interp
module Sexec = Dsl.Sexec
module Ftensor = Tensor.Ftensor
module Tel = Obs.Telemetry

type stats = {
  sketches : int;  (** sketch templates proposed by loop analysis *)
  pruned_by_value : int;  (** candidates rejected by the value check *)
  certified : int;  (** value matches submitted to certification *)
  library_size : int;
  lift_s : float;  (** end-to-end lifting wall time *)
  verify_s : float;  (** time inside symbolic + differential checks *)
}

type lifted = {
  kernel : Loop_ast.kernel;
  env : Types.env;
  prog : Ast.t;
  stats : stats;
}

type error =
  | Unsupported of string
      (** The kernel is outside the liftable fragment (semantic error
          from the reference interpreter). *)
  | Not_lifted of stats
      (** The sketch space was exhausted without a certified lift. *)

let error_message = function
  | Unsupported msg -> Printf.sprintf "kernel not liftable: %s" msg
  | Not_lifted stats ->
      Printf.sprintf
        "no DSL program found (%d sketches, %d candidates value-pruned, %d \
         certification attempts)"
        stats.sketches stats.pruned_by_value stats.certified

(* ------------------------------------------------------------------ *)
(* Symbolic instantiation of the loop interpreter                     *)
(* ------------------------------------------------------------------ *)

module Expr_domain = struct
  module Expr = Symbolic.Expr

  type t = Expr.t

  (* Mirrors Sexec's constant embedding so kernel and candidate specs
     agree on literals that are not exact rationals. *)
  let of_float f =
    match Symbolic.Q.of_float f with
    | Some q -> Expr.rat q
    | None ->
        Expr.rat
          (Symbolic.Q.make (int_of_float (Float.round (f *. 1e9)))
             1_000_000_000)

  let add a b = Expr.add [ a; b ]
  let sub = Expr.sub
  let mul a b = Expr.mul [ a; b ]
  let div = Expr.div
  let neg = Expr.neg
  let sqrt = Expr.sqrt
  let exp = Expr.exp
  let log = Expr.log
  let fmax = Expr.max2
end

module Sym_interp = Loop_interp.Make (Expr_domain)

let symbolic_spec (k : Loop_ast.kernel) (env : Types.env) : Spec.t =
  let inputs =
    List.map
      (fun (name, t) -> (name, Sexec.Stensor.to_array t))
      (Sexec.sym_env env)
  in
  let out = Sym_interp.run k inputs in
  let dims = Array.of_list (Loop_ast.out_param k).dims in
  Sexec.Stensor.of_array dims out

(* ------------------------------------------------------------------ *)
(* Loop-nest analysis and sketch proposal                             *)
(* ------------------------------------------------------------------ *)

type reduce_kind = Rsum | Rmax

type sketch =
  | Hole  (** a single library stub *)
  | Binary of Ast.op  (** op(H1, H2), both holes library stubs *)
  | Reduce_reshape of reduce_kind * int array
      (** reduce(axis=last)(reshape(H, dims)) — pooling-style loops *)

let sketch_name = function
  | Hole -> "hole"
  | Binary op -> Printf.sprintf "binary:%s" (Ast.op_name op)
  | Reduce_reshape (k, dims) ->
      Printf.sprintf "%s-reshape:%s"
        (match k with Rsum -> "sum" | Rmax -> "max")
        (String.concat "x" (Array.to_list (Array.map string_of_int dims)))

type analysis = {
  ops : (Loop_ast.binop, unit) Hashtbl.t;
  mutable uses_fmax : bool;
  mutable acc_add : bool;  (** [x = x + e] / [+=] accumulation *)
  mutable acc_max : bool;  (** [x = fmaxf(x, e)] accumulation *)
  mutable nests : (int * int) list;  (** (outer, inner) loop extents *)
}

let analyze (k : Loop_ast.kernel) =
  let a =
    {
      ops = Hashtbl.create 4;
      uses_fmax = false;
      acc_add = false;
      acc_max = false;
      nests = [];
    }
  in
  let rec reads_base base : Loop_ast.expr -> bool = function
    | Num _ -> false
    | Var v -> v = base
    | Load (b, idx) -> b = base || List.exists (reads_base base) idx
    | Neg e -> reads_base base e
    | Binop (_, x, y) -> reads_base base x || reads_base base y
    | Intrinsic (_, args) -> List.exists (reads_base base) args
  in
  let rec expr : Loop_ast.expr -> unit = function
    | Num _ | Var _ -> ()
    | Load (_, idx) -> List.iter expr idx
    | Neg e -> expr e
    | Binop (op, x, y) ->
        Hashtbl.replace a.ops op ();
        expr x;
        expr y
    | Intrinsic (f, args) ->
        if f = Loop_ast.Fmax then a.uses_fmax <- true;
        List.iter expr args
  in
  let rec stmt : Loop_ast.stmt -> unit = function
    | Decl { init; _ } -> expr init
    | Assign (lhs, e) ->
        List.iter expr lhs.indices;
        expr e;
        if reads_base lhs.base e then
          (match e with
          | Binop (Loop_ast.Add, _, _) -> a.acc_add <- true
          | Intrinsic (Loop_ast.Fmax, _) -> a.acc_max <- true
          | _ -> ())
    | For { lo; hi; body; _ } ->
        let extent = hi - lo in
        List.iter
          (function
            | Loop_ast.For { lo = lo'; hi = hi'; _ } ->
                a.nests <- (extent, hi' - lo') :: a.nests
            | _ -> ())
          body;
        List.iter stmt body
  in
  List.iter stmt k.body;
  a

let propose (k : Loop_ast.kernel) (a : analysis) : sketch list =
  let out_dims = (Loop_ast.out_param k).dims in
  (* Pooling-style loops: an output loop of extent [n] around a
     reduction loop of extent [c] suggests reducing the trailing axis
     of an [n x c] view of a flat input. *)
  let reshapes =
    List.concat_map
      (fun (n, c) ->
        if out_dims = [ n ] && c > 1 then
          (if a.acc_max then [ Reduce_reshape (Rmax, [| n; c |]) ] else [])
          @ (if a.acc_add then [ Reduce_reshape (Rsum, [| n; c |]) ] else [])
        else [])
      a.nests
  in
  (* Binary skeletons for the scalar operators the body actually uses:
     the lifted form of [y[i] = e1[i] / e2] is [Div] over two library
     values, and likewise for the others.  [Div] leads — normalization
     and softmax-style kernels are the common case — and commutative
     wrappers over [Add]/[Mul] come last (a bare [Hole] usually beats
     them). *)
  let binaries =
    List.filter_map
      (fun (lop, op) ->
        if Hashtbl.mem a.ops lop then Some (Binary op) else None)
      [
        (Loop_ast.Div, Ast.Div);
        (Loop_ast.Sub, Ast.Sub);
        (Loop_ast.Add, Ast.Add);
        (Loop_ast.Mul, Ast.Mul);
      ]
  in
  let maxes =
    if a.uses_fmax && not a.acc_max then [ Binary Maximum ] else []
  in
  let rec dedup seen = function
    | [] -> []
    | s :: rest ->
        if List.mem s seen then dedup seen rest
        else s :: dedup (s :: seen) rest
  in
  dedup [] ((Hole :: reshapes) @ binaries @ maxes)

(* ------------------------------------------------------------------ *)
(* Candidate generation with value pruning                            *)
(* ------------------------------------------------------------------ *)

let broadcast_dim a b =
  if a = b then Some a
  else if a = 1 then Some b
  else if b = 1 then Some a
  else None

(* NumPy broadcast of two shapes, [None] when incompatible. *)
let broadcast_shapes (a : int array) (b : int array) =
  let ra = Array.length a and rb = Array.length b in
  let r = max ra rb in
  let out = Array.make r 1 in
  let ok = ref true in
  for i = 0 to r - 1 do
    let da = if i < r - ra then 1 else a.(i - (r - ra)) in
    let db = if i < r - rb then 1 else b.(i - (r - rb)) in
    match broadcast_dim da db with
    | Some d -> out.(i) <- d
    | None -> ok := false
  done;
  if !ok then Some out else None

(* [Ftensor.allclose] scales its tolerance by the second argument, so
   the (finite) expected signature must be the scaling side: a
   candidate with infinite outputs would otherwise inflate the
   tolerance to infinity and "match" anything. *)
let close_outputs ~expected outs =
  List.for_all2
    (fun (e : Ftensor.t) (o : Ftensor.t) ->
      Tensor.Shape.equal (Ftensor.shape e) (Ftensor.shape o)
      && Ftensor.allclose o e)
    expected outs

(* A sketch filling is either a full candidate (program plus its
   outputs on every sample) or a cheap rejection: binary sketches probe
   one output element per pair before materializing whole tensors, so
   the quadratic pair scan costs a float op, not three allocations. *)
type filling = Probe_pruned | Cand of Ast.t * Ftensor.t list

(* All fillings of one sketch, cheapest stubs first. *)
let fill (sketch : sketch) ~(out_shape : int array)
    ~(stubs : (Stub.t * Ftensor.t list) list)
    ~(expected : Ftensor.t list) : filling Seq.t =
  let float_stub (s : Stub.t) = s.vt.Types.dtype = Types.Float in
  match sketch with
  | Hole ->
      List.to_seq stubs
      |> Seq.filter_map (fun ((s : Stub.t), outs) ->
             if
               float_stub s
               && Tensor.Shape.equal s.vt.Types.shape out_shape
             then Some (Cand (s.prog, outs))
             else None)
  | Reduce_reshape (kind, dims) ->
      let numel = Array.fold_left ( * ) 1 dims in
      let op =
        match kind with
        | Rsum -> Ast.sum_op (Some (Array.length dims - 1))
        | Rmax -> Ast.max_op (Some (Array.length dims - 1))
      in
      List.to_seq stubs
      |> Seq.filter_map (fun ((s : Stub.t), outs) ->
             if
               float_stub s
               && Array.fold_left ( * ) 1 s.vt.Types.shape = numel
             then
               match
                 List.map
                   (fun o -> Interp.apply_op op [ Ftensor.reshape o dims ])
                   outs
               with
               | outs' ->
                   Some
                     (Cand
                        ( Ast.App (op, [ App (Reshape dims, [ s.prog ]) ]),
                          outs' ))
               | exception _ -> None
             else None)
  | Binary op ->
      (* Only pairs whose shapes broadcast to the output shape can
         match; Dot pairs are shape-checked by evaluation instead. *)
      let compatible (a : Stub.t) (b : Stub.t) =
        match op with
        | Ast.Dot -> true
        | _ -> (
            match broadcast_shapes a.vt.Types.shape b.vt.Types.shape with
            | Some s -> Tensor.Shape.equal s out_shape
            | None -> false)
      in
      let scalar_op =
        match op with
        | Ast.Add -> Some ( +. )
        | Ast.Sub -> Some ( -. )
        | Ast.Mul -> Some ( *. )
        | Ast.Div -> Some ( /. )
        | Ast.Maximum -> Some Float.max
        | _ -> None
      in
      (* Element [0,...,0] of a broadcast elementwise result is the op
         applied to each operand's element [0,...,0]. *)
      let first (t : Ftensor.t) =
        Ftensor.get t (Array.make (Array.length (Ftensor.shape t)) 0)
      in
      let expected0 = first (List.hd expected) in
      let probed =
        List.filter_map
          (fun ((s : Stub.t), outs) ->
            if float_stub s then Some (s, outs, first (List.hd outs))
            else None)
          stubs
      in
      let probe_close c =
        Float.abs (c -. expected0) <= 1e-9 +. (1e-6 *. Float.abs expected0)
      in
      List.to_seq probed
      |> Seq.concat_map (fun ((s1 : Stub.t), o1, p1) ->
             List.to_seq probed
             |> Seq.filter_map (fun ((s2 : Stub.t), o2, p2) ->
                    if not (compatible s1 s2) then None
                    else
                      match scalar_op with
                      | Some f when not (probe_close (f p1 p2)) ->
                          Some Probe_pruned
                      | _ -> (
                          match
                            List.map2
                              (fun a b -> Interp.apply_op op [ a; b ])
                              o1 o2
                          with
                          | outs ->
                              Some
                                (Cand
                                   (Ast.App (op, [ s1.prog; s2.prog ]), outs))
                          | exception _ -> None)))

(* ------------------------------------------------------------------ *)
(* Certification                                                      *)
(* ------------------------------------------------------------------ *)

(* Differential check of the loop kernel against the candidate run by
   the configured engine (the VM by default), on fresh draws — the same
   skip-and-redraw domain handling as [Superopt.validate_concrete]. *)
let differential ?(trials = 8) ?(max_draws = 256) ~engine ~exec_options ~env
    kernel cand =
  let st = Random.State.make [| 0x11f7ed |] in
  let eval_cand =
    match engine with
    | `Interp -> fun inputs -> Interp.eval_alist inputs cand
    | `Vm ->
        let compiled =
          Texec.Engine.compile ~options:exec_options ~env cand
        in
        fun inputs ->
          Texec.Engine.run compiled (fun n -> List.assoc n inputs)
  in
  let close x y = Float.abs (x -. y) <= 1e-9 +. (1e-6 *. Float.abs y) in
  let max_draws = max trials max_draws in
  let ok = ref true in
  let effective = ref 0 in
  let draws = ref 0 in
  while !ok && !effective < trials && !draws < max_draws do
    incr draws;
    let inputs = Interp.random_inputs st env in
    let expected = Loop_interp.run_tensors kernel inputs in
    if Ftensor.fold (fun acc x -> acc && Float.is_finite x) true expected
    then begin
      incr effective;
      if not (Ftensor.for_all2 close expected (eval_cand inputs)) then
        ok := false
    end
  done;
  !ok && !effective > 0

(* ------------------------------------------------------------------ *)
(* The lift                                                           *)
(* ------------------------------------------------------------------ *)

let default_stub_config =
  {
    Stub.default_config with
    (* Lifted programs are matched whole against the library, not
       recursively decomposed, so the atom-operand redundancy cut of
       the sketch search would lose programs like dot(A-B, A-B);
       enumerate the full binary square instead.  The environments are
       kernel-sized, so the square stays small. *)
    full_binary = true;
  }

let lift ?(tel = Tel.null) ?(config = Config.default)
    ?(stub_cache : Stub.Cache.cache option) ?(samples = 3) ?(seed = 0x11f7)
    (kernel : Loop_ast.kernel) : (lifted, error) result =
  let t0 = Unix.gettimeofday () in
  let env = Loop_ast.dsl_env kernel in
  let out_shape = Array.of_list (Loop_ast.out_param kernel).dims in
  let st = Random.State.make [| seed |] in
  let draws = List.init samples (fun _ -> Interp.random_inputs st env) in
  match
    let expected = List.map (Loop_interp.run_tensors kernel) draws in
    let spec = symbolic_spec kernel env in
    (expected, spec)
  with
  | exception Loop_interp.Eval_error msg ->
      Tel.event tel "lift.failed"
        [ ("kernel", Str kernel.kname); ("reason", Str msg) ];
      Error (Unsupported msg)
  | expected, spec ->
      let model = Config.model ~tel config in
      let consts = Loop_ast.literals kernel in
      let sconfig = default_stub_config in
      let lib, _cached =
        match stub_cache with
        | Some cache ->
            Stub.Cache.enumerate cache ~config:sconfig ~tel ~model ~consts
              env
        | None ->
            (Stub.enumerate ~config:sconfig ~tel ~model ~consts env, false)
      in
      (* The value table's cache key fingerprints the sampled inputs
         (bit-exact) alongside the library, so lifts against different
         draws or distributions can never collide. *)
      let library_fp =
        Printf.sprintf "%s;model=%s"
          (Stub.fingerprint sconfig ~consts env)
          model.Cost.Model.name
      in
      let values = Stub.Values.get ~tel ~library_fp lib draws in
      let stubs = Stub.Values.to_list values in
      let analysis = analyze kernel in
      let sketches = propose kernel analysis in
      let engine = Config.engine config in
      let exec_options = Config.exec_options config in
      let pruned = ref 0 in
      let certified = ref 0 in
      let verify_s = ref 0. in
      let stats () =
        {
          sketches = List.length sketches;
          pruned_by_value = !pruned;
          certified = !certified;
          library_size = Stub.size lib;
          lift_s = Unix.gettimeofday () -. t0;
          verify_s = !verify_s;
        }
      in
      let certify cand =
        incr certified;
        let t = Unix.gettimeofday () in
        let ok =
          (match Sexec.exec_env env cand with
          | cand_spec -> Spec.equal spec cand_spec
          | exception _ -> false)
          && differential ~engine ~exec_options ~env kernel cand
        in
        verify_s := !verify_s +. Unix.gettimeofday () -. t;
        ok
      in
      let result =
        List.find_map
          (fun sketch ->
            let found =
              Seq.find_map
                (function
                  | Probe_pruned ->
                      incr pruned;
                      None
                  | Cand (cand, outs) ->
                      if not (close_outputs ~expected outs) then begin
                        incr pruned;
                        None
                      end
                      else if certify cand then Some cand
                      else None)
                (fill sketch ~out_shape ~stubs ~expected)
            in
            (match found with
            | Some _ ->
                Tel.event tel "lift.sketch"
                  [
                    ("kernel", Str kernel.kname);
                    ("sketch", Str (sketch_name sketch));
                  ]
            | None -> ());
            found)
          sketches
      in
      let s = stats () in
      Tel.add tel "lift.sketches" s.sketches;
      Tel.add tel "lift.pruned_by_value" s.pruned_by_value;
      Tel.Acc.add (Tel.acc tel "lift.verify_ms") (s.verify_s *. 1000.);
      (match result with
      | Some prog ->
          Tel.event tel "lift.done"
            [
              ("kernel", Str kernel.kname);
              ("program", Str (Format.asprintf "%a" Ast.pp prog));
              ("sketches", Int s.sketches);
              ("pruned_by_value", Int s.pruned_by_value);
              ("library", Int s.library_size);
              ("lift_ms", Float (s.lift_s *. 1000.));
              ("verify_ms", Float (s.verify_s *. 1000.));
            ]
      | None ->
          Tel.event tel "lift.failed"
            [
              ("kernel", Str kernel.kname);
              ("reason", Str "sketch space exhausted");
              ("sketches", Int s.sketches);
              ("pruned_by_value", Int s.pruned_by_value);
            ]);
      (match result with
      | Some prog -> Ok { kernel; env; prog; stats = s }
      | None -> Error (Not_lifted s))

let optimize ?(tel = Tel.null) ?(config = Config.default) ?store ?stub_cache
    ?samples ?seed kernel =
  match lift ~tel ~config ?stub_cache ?samples ?seed kernel with
  | Error e -> Error e
  | Ok lifted ->
      let outcome =
        Superopt.optimize ~tel ~config ?store ?stub_cache ~env:lifted.env
          lifted.prog
      in
      Ok (lifted, outcome)
