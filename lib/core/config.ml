type estimator = [ `Flops | `Roofline | `Measured ]

type t = {
  search : Search.config;
  estimator : estimator;
  cost_cache : string option;
  engine : Texec.Engine.kind;
  exec : Texec.Engine.Options.t;
  rules_depth : int option;
}

let default =
  {
    search = Search.default_config;
    estimator = `Measured;
    cost_cache = None;
    engine = `Vm;
    exec = Texec.Engine.Options.default;
    rules_depth = None;
  }

let with_search search t = { t with search }
let with_timeout timeout t = { t with search = { t.search with timeout } }

let with_jobs jobs t =
  {
    t with
    search =
      {
        t.search with
        jobs;
        stub_config = { t.search.stub_config with Stub.jobs };
      };
  }

let with_estimator estimator t = { t with estimator }

let with_rules_depth d t =
  { t with rules_depth = (if d > 0 then Some d else None) }
let with_cost_cache file t = { t with cost_cache = Some file }
let with_engine engine t = { t with engine }
let with_exec_options exec t = { t with exec }
let with_bnb use_bnb t = { t with search = { t.search with use_bnb } }

let with_simplification use_simplification t =
  { t with search = { t.search with use_simplification } }

let with_extended_ops extended_ops t =
  {
    t with
    search =
      {
        t.search with
        stub_config = { t.search.stub_config with Stub.extended_ops };
      };
  }

let with_max_depth max_depth t =
  { t with search = { t.search with max_depth } }

let with_node_budget node_budget t =
  { t with search = { t.search with node_budget } }

let with_memoize memoize t = { t with search = { t.search with memoize } }

let with_stub_depth depth t =
  {
    t with
    search =
      { t.search with stub_config = { t.search.stub_config with Stub.depth } };
  }

let with_max_stubs max_stubs t =
  {
    t with
    search =
      {
        t.search with
        stub_config = { t.search.stub_config with Stub.max_stubs };
      };
  }

let search_config t = t.search
let rules_depth t = t.rules_depth
let jobs t = t.search.Search.jobs
let timeout t = t.search.Search.timeout
let estimator t = t.estimator
let engine t = t.engine
let exec_options t = t.exec
let engine_name = Texec.Engine.kind_name

let engine_of_string s =
  match Texec.Engine.kind_of_string s with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "unknown execution engine %S" s)

let model ?tel t =
  match t.estimator with
  | `Flops -> Cost.Model.flops
  | `Roofline -> Cost.Model.roofline ()
  | `Measured ->
      Cost.Model.measured ?tel ~engine:t.engine ~exec_options:t.exec
        ?cache_file:t.cost_cache ()

let of_search search = { default with search }

let estimator_of_string = function
  | "flops" -> Ok `Flops
  | "roofline" -> Ok `Roofline
  | "measured" -> Ok `Measured
  | other -> Error (Printf.sprintf "unknown cost estimator %S" other)

let estimator_name = function
  | `Flops -> "flops"
  | `Roofline -> "roofline"
  | `Measured -> "measured"

(* Everything that determines the search's *result*, canonically
   rendered.  [jobs] is excluded (the engine is deterministic in it) and
   so is [cost_cache] (a warm profiling table changes measured values,
   but the measured estimator is already declared non-reproducible by
   its [est=measured] tag).  [timeout] and [node_budget] stay in: an
   expired budget changes the anytime answer, so outcomes are cached per
   budget.  Of the exec options, fusion/reduction-fusion/tile stay in
   (they change the kernels the measured estimator times, hence costs,
   hence outcomes) while [domains] is excluded like [jobs]: VM results
   are bitwise-independent of it by construction, and its default is
   machine-derived. *)
let fingerprint t =
  let s = t.search in
  let stub = s.Search.stub_config in
  let inv = s.Search.invert_config in
  let module O = Texec.Engine.Options in
  Printf.sprintf
    "cfg:est=%s;eng=%s;exec[fus=%b,red=%b,tile=%d];bnb=%b;simp=%b;budget=%d;timeout=%.17g;depth=%d;memo=%b;stub[d=%d,max=%d,ext=%b,full=%b];inv[conc=%d,split=%d]"
    (estimator_name t.estimator)
    (engine_name t.engine)
    (O.fusion t.exec) (O.reduction_fusion t.exec) (O.tile t.exec)
    s.Search.use_bnb s.Search.use_simplification s.Search.node_budget
    s.Search.timeout s.Search.max_depth s.Search.memoize stub.Stub.depth
    stub.Stub.max_stubs stub.Stub.extended_ops stub.Stub.full_binary
    inv.Invert.max_conc_depth inv.Invert.max_split_terms
  (* Appended only when tiering is on, so every fingerprint (and hence
     every outcome-store key) produced before the tiered optimizer
     existed is byte-identical to an untiered run's today. *)
  ^ match t.rules_depth with
    | None -> ""
    | Some d -> Printf.sprintf ";rules=%d" d
