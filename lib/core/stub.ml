module Ast = Dsl.Ast
module Types = Dsl.Types
module Sexec = Dsl.Sexec
module Shape = Tensor.Shape

type t = {
  prog : Ast.t;
  vt : Types.vt;
  sem : Spec.t;
  cost : float;
  depth : int;
}

type config = {
  depth : int;
  max_stubs : int;
  extended_ops : bool;
  full_binary : bool;
  deadline : float option;
  jobs : int;
}

let default_config =
  {
    depth = 2;
    max_stubs = 20_000;
    extended_ops = false;
    full_binary = false;
    deadline = None;
    jobs = 1;
  }

exception Stop_enumeration

type library = {
  all : t list;
  atom_list : t list;
  by_sem : (string, t) Hashtbl.t;
  lib_env : Types.env;
  hit_cap : bool;
  attempts : int;  (* candidate programs examined before deduplication *)
}

let stubs l = l.all
let attempts l = l.attempts
let atoms l = l.atom_list
let size l = List.length l.all
let env l = l.lib_env
let truncated l = l.hit_cap

(* Candidate operations for a given argument count, specialized by the
   ranks available.  Attribute-carrying ops are expanded per rank. *)
let unary_ops ~extended rank =
  let axes = List.init rank (fun i -> Some i) in
  let sums = List.map (fun a -> Ast.sum_op a) (None :: axes) in
  let maxes = List.map (fun a -> Ast.max_op a) (None :: axes) in
  (* keepdims variants keep the reduced axis as size 1 so the result
     broadcasts back over its source — the shape softmax/layernorm-style
     kernels need.  Only per-axis variants: a keepdims full reduction is
     just a reshape of the scalar and never appears in the workloads. *)
  let keep_sums = List.map (fun a -> Ast.sum_op ~keepdims:true a) axes in
  let keep_maxes = List.map (fun a -> Ast.max_op ~keepdims:true a) axes in
  let base = [ Ast.Sqrt; Ast.Exp; Ast.Log ] in
  let structural =
    (if rank >= 2 then [ Ast.Transpose None; Ast.Diag; Ast.Trace ] else [])
    @ (if rank >= 1 then sums @ maxes else [])
    @ if rank >= 2 then keep_sums @ keep_maxes else []
  in
  let masks = if extended && rank = 2 then [ Ast.Triu; Ast.Tril ] else [] in
  base @ structural @ masks

let binary_ops ~extended =
  [
    Ast.Add;
    Ast.Sub;
    Ast.Mul;
    Ast.Div;
    Ast.Pow_op;
    Ast.Maximum;
    Ast.Dot;
    Ast.Tensordot ([ 0 ], [ 0 ]);
  ]
  @ if extended then [ Ast.Less ] else []

let enumerate ?(config = default_config) ?(tel = Obs.Telemetry.null) ?on_dup
    ~model ~consts (env : Types.env) =
  let enum_t0 = Unix.gettimeofday () in
  let sym_inputs = Sexec.sym_env env in
  let sym_lookup name =
    match List.assoc_opt name sym_inputs with
    | Some v -> v
    | None -> raise (Sexec.Eval_error ("unbound input " ^ name))
  in
  let by_sem : (string, t) Hashtbl.t = Hashtbl.create 4096 in
  let count = ref 0 in
  let attempts = ref 0 in
  let hit_cap = ref false in
  let levels : t list array = Array.make (config.depth + 1) [] in
  let dup stub =
    match on_dup with Some f -> f stub | None -> ()
  in
  let register stub =
    let key = Spec.key stub.sem in
    match Hashtbl.find_opt by_sem key with
    | Some existing when existing.cost <= stub.cost ->
        (* A strictly worse implementation of a known value is exactly
           what rule mining wants to see (worse ⇒ representative is a
           rewrite proven by construction); equal-cost duplicates carry
           no improvement and are not reported. *)
        if existing.cost < stub.cost then dup stub;
        false
    | Some existing ->
        (* Cheaper implementation of a known value: replace the
           representative but do not re-expand it.  The displaced
           program is the [dup]: it is now strictly worse than the
           library's representative of its semantics. *)
        Hashtbl.replace by_sem key stub;
        dup existing;
        false
    | None ->
        if !count >= config.max_stubs then begin
          hit_cap := true;
          false
        end
        else begin
          Hashtbl.replace by_sem key stub;
          incr count;
          true
        end
  in
  (* Depth 0: inputs and program constants. *)
  let atom_list =
    List.filter_map
      (fun (name, vt) ->
        let stub =
          {
            prog = Ast.Input name;
            vt;
            sem = sym_lookup name;
            cost = 0.;
            depth = 0;
          }
        in
        if register stub then Some stub else None)
      env
    @ List.filter_map
        (fun c ->
          let stub =
            {
              prog = Ast.Const c;
              vt = Types.scalar_f;
              sem = Sexec.exec (fun _ -> assert false) (Ast.Const c);
              cost = 0.;
              depth = 0;
            }
          in
          if register stub then Some stub else None)
        (List.sort_uniq compare consts)
  in
  levels.(0) <- atom_list;
  (* The per-depth work is split into three phases so the expensive one
     can run on a domain pool without perturbing results: (1) the
     candidate applications are listed in the exact order the sequential
     enumeration would attempt them; (2) each candidate is evaluated —
     type check, symbolic execution, costing — independently (this is
     the embarrassingly parallel part); (3) evaluations are folded
     through [register] sequentially in list order, so deduplication,
     the [max_stubs] cap and the deadline cut off at the same attempt
     regardless of [jobs].  The library is byte-identical either way. *)
  let tasks_of_depth d lower newest =
    let acc = ref [] in
    let push op args = acc := (op, args) :: !acc in
    (* Unary ops applied to the newest level (lower levels were already
       expanded at previous depths). *)
    List.iter
      (fun (a : t) ->
        if a.vt.dtype = Types.Float then
          List.iter
            (fun op -> push op [ a ])
            (unary_ops ~extended:config.extended_ops
               (Shape.rank a.vt.shape)))
      newest;
    (* Binary ops: at least one operand from the newest level. *)
    let binaries = binary_ops ~extended:config.extended_ops in
    let consider a b =
      List.iter
        (fun op ->
          (* Restrict power exponents to scalars: the grammar's
             [power] is used with scalar exponents and tensor-tensor
             powers explode the atom vocabulary without ever being
             cheaper. *)
          let skip =
            op = Ast.Pow_op && Shape.rank (b : t).vt.shape > 0
          in
          if not skip then push op [ a; b ])
        binaries
    in
    (* Beyond depth 1, non-atom x non-atom products are redundant with
       what the recursive search reconstructs through sketches; unless
       [full_binary] is set (the TASO-style baseline), one operand must
       be an atom. *)
    let pairs_ok (a : t) (b : t) =
      d = 1 || config.full_binary || a.depth = 0 || b.depth = 0
    in
    let consider a b = if pairs_ok a b then consider a b in
    List.iter
      (fun a ->
        List.iter (fun b -> consider a b) lower;
        List.iter (fun b -> consider a b) newest)
      newest;
    List.iter (fun a -> List.iter (fun b -> consider a b) newest) lower;
    List.rev !acc
  in
  let eval d (op, (args : t list)) =
    match Types.check env (Ast.App (op, List.map (fun s -> s.prog) args)) with
    | Error _ -> None
    | Ok vt -> (
        match Sexec.apply_op op (List.map (fun s -> s.sem) args) with
        | exception
            ( Sexec.Eval_error _ | Invalid_argument _
            | Symbolic.Q.Overflow (* e.g. pow towers of constants *) ) ->
            None
        | sem ->
            let arg_ts = List.map (fun s -> s.vt) args in
            let cost =
              List.fold_left (fun a s -> a +. s.cost) 0. args
              +. model.Cost.Model.op_cost op arg_ts
            in
            Some
              { prog = Ast.App (op, List.map (fun s -> s.prog) args);
                vt; sem; cost; depth = d })
  in
  let guard () =
    incr attempts;
    if !count >= config.max_stubs then begin
      hit_cap := true;
      raise Stop_enumeration
    end;
    (* Checked on every attempt: a single candidate evaluation can take
       milliseconds (symbolic towers of rational exponents), so any
       batching here turns the deadline into a suggestion.  The clock
       read is vDSO-cheap next to even the fastest evaluation. *)
    match config.deadline with
    | Some d when Unix.gettimeofday () > d ->
        hit_cap := true;
        raise Stop_enumeration
    | _ -> ()
  in
  (try
  for d = 1 to config.depth do
    let depth_t0 = Unix.gettimeofday () in
    let attempts_before = !attempts in
    let lower = List.concat (Array.to_list (Array.sub levels 0 d)) in
    let newest = levels.(d - 1) in
    let tasks = tasks_of_depth d lower newest in
    let produced = ref [] in
    let accept = function
      | None -> ()
      | Some stub -> if register stub then produced := stub :: !produced
    in
    let finished =
      try
        if config.jobs > 1 then
          (* Worker domains inherit the caller's ambient key-stats cell
             so spec-key builds stay attributed to this run. *)
          let amb = Spec.ambient () in
          let eval_in_worker cand =
            match amb with
            | Some cell -> Spec.with_counters cell (fun () -> eval d cand)
            | None -> eval d cand
          in
          Array.iter
            (fun cand -> guard (); accept cand)
            (Par.map_array ~jobs:config.jobs ~chunk:32 eval_in_worker
               (Array.of_list tasks))
        else
          (* Single-domain path: evaluate lazily so work past the cap or
             deadline is never attempted. *)
          List.iter (fun task -> guard (); accept (eval d task)) tasks;
        true
      with Stop_enumeration -> false
    in
    levels.(d) <- !produced;
    if Obs.Telemetry.enabled tel then
      Obs.Telemetry.event tel "stub.depth"
        [
          ("depth", Obs.Telemetry.Int d);
          ("candidates", Obs.Telemetry.Int (!attempts - attempts_before));
          ("kept", Obs.Telemetry.Int (List.length !produced));
          ("elapsed", Obs.Telemetry.Float (Unix.gettimeofday () -. depth_t0));
        ];
    if not finished then raise Stop_enumeration
  done
  with Stop_enumeration -> ());
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) by_sem [] in
  let all = List.sort (fun a b -> compare (a.cost, a.depth) (b.cost, b.depth)) all in
  if Obs.Telemetry.enabled tel then
    Obs.Telemetry.event tel "stub.library"
      [
        ("size", Obs.Telemetry.Int !count);
        ("attempts", Obs.Telemetry.Int !attempts);
        ("truncated", Obs.Telemetry.Bool !hit_cap);
        ("elapsed", Obs.Telemetry.Float (Unix.gettimeofday () -. enum_t0));
      ];
  { all; atom_list; by_sem; lib_env = env; hit_cap = !hit_cap;
    attempts = !attempts }

(* Canonical identity of an enumeration: everything the resulting
   library depends on.  [deadline] and [jobs] are deliberately excluded
   — [jobs] never changes the library (registration is sequential) and
   [deadline] only truncates it; a truncated library is never published
   to the cache (see {!Cache}), so the key does not need to capture it. *)
let fingerprint (config : config) ~consts (env : Types.env) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "stub:d=%d,max=%d,ext=%b,full=%b" config.depth
       config.max_stubs config.extended_ops config.full_binary);
  Buffer.add_string buf ";consts=";
  (* Constants are keyed by IEEE-754 bit pattern (like the e-graph's
     hashconsing): polymorphic compare on floats mis-sorts NaN, and
     printf rounding must not be what decides cache identity. *)
  List.iter
    (fun bits -> Buffer.add_string buf (Printf.sprintf "%Lx," bits))
    (List.sort_uniq Int64.compare (List.map Int64.bits_of_float consts));
  Buffer.add_string buf ";env=";
  List.iter
    (fun ((name, vt) : string * Types.vt) ->
      Buffer.add_string buf
        (Format.asprintf "%s:%a|" name Types.pp_vt vt))
    env;
  Buffer.contents buf

(* Share one enumerated library per (config, consts, env, model)
   fingerprint: the suite driver and the serve daemon optimize many
   programs over recurring input environments, and enumeration is a
   fixed cost per environment, not per program.  A slot under
   construction is awaited, not rebuilt, so concurrent requests for the
   same environment enumerate exactly once. *)
module Cache = struct
  type slot = Building | Ready of library

  type cache = {
    lock : Mutex.t;
    cond : Condition.t;
    slots : (string, slot) Hashtbl.t;
  }

  let create () =
    { lock = Mutex.create (); cond = Condition.create (); slots = Hashtbl.create 16 }

  let enumerate cache ?(config = default_config) ?tel ~model ~consts env =
    let key =
      fingerprint config ~consts env ^ ";model=" ^ model.Cost.Model.name
    in
    let rec obtain () =
      match Hashtbl.find_opt cache.slots key with
      | Some (Ready lib) -> `Hit lib
      | Some Building ->
          Condition.wait cache.cond cache.lock;
          obtain ()
      | None ->
          Hashtbl.replace cache.slots key Building;
          `Build
    in
    match Mutex.protect cache.lock obtain with
    | `Hit lib -> (lib, true)
    | `Build ->
        let finish slot =
          Mutex.protect cache.lock (fun () ->
              (match slot with
              | Some lib -> Hashtbl.replace cache.slots key (Ready lib)
              | None -> Hashtbl.remove cache.slots key);
              Condition.broadcast cache.cond)
        in
        (match enumerate ?tel ~config ~model ~consts env with
        | lib ->
            (* A library truncated by the deadline or the stub cap is
               complete only for the run that built it: publishing it
               would serve callers with fresh deadlines a partial answer
               forever.  They re-enumerate instead. *)
            finish (if lib.hit_cap then None else Some lib);
            (lib, false)
        | exception e ->
            finish None;
            raise e)
end

let lookup_exact lib spec = Hashtbl.find_opt lib.by_sem (Spec.key spec)

let lookup_broadcast lib spec =
  (* Only the collapsed lookup: exact matches are the caller's business
     (it compares both by cost; returning the exact match here would let
     an expensive same-shape stub shadow a zero-cost broadcastable
     atom). *)
  let collapsed = Spec.collapse spec in
  if Shape.equal (Spec.shape collapsed) (Spec.shape spec) then None
  else Hashtbl.find_opt lib.by_sem (Spec.key collapsed)

let const_stub lib q =
  let prog = Ast.Const (Symbolic.Q.to_float q) in
  let sem = Spec.scalar (Symbolic.Expr.rat q) in
  let fresh = { prog; vt = Types.scalar_f; sem; cost = 0.; depth = 0 } in
  (* A library stub may share the semantics (e.g. sum(A/A) is the
     constant 4 on a 2x2 input) but a literal is never more expensive. *)
  match lookup_exact lib sem with
  | Some s when s.cost < fresh.cost -> Some s
  | Some _ | None -> Some fresh

(* ------------------------------------------------------------------ *)
(* Concrete value tables (TF-Coder-style signatures)                  *)
(* ------------------------------------------------------------------ *)

module Values = struct
  type table = {
    tbl : (string, Tensor.Ftensor.t list) Hashtbl.t;
        (* Spec.key of the stub -> one output tensor per sample *)
    ordered : (t * Tensor.Ftensor.t list) list;
    fp : string;
    samples : (string * Tensor.Ftensor.t) list list;
  }

  (* Sampled inputs are identified by the IEEE-754 bit pattern of every
     element (plus name and shape), like the enumeration fingerprint's
     constants: printf rounding or NaN comparison must never make two
     different input draws share a cache entry. *)
  let inputs_fingerprint (samples : (string * Tensor.Ftensor.t) list list) =
    let buf = Buffer.create 256 in
    List.iter
      (fun sample ->
        Buffer.add_char buf '(';
        List.iter
          (fun (name, t) ->
            Buffer.add_string buf name;
            Buffer.add_char buf ':';
            Array.iter
              (fun d -> Buffer.add_string buf (Printf.sprintf "%dx" d))
              (Tensor.Ftensor.shape t);
            Buffer.add_char buf '=';
            Array.iter
              (fun v ->
                Buffer.add_string buf
                  (Printf.sprintf "%Lx," (Int64.bits_of_float v)))
              (Tensor.Ftensor.to_array t))
          sample;
        Buffer.add_char buf ')')
      samples;
    (* The raw rendering is long (every element of every sample); the
       table key only needs to distinguish draws, so hash it down. *)
    Digest.to_hex (Digest.string (Buffer.contents buf))

  let fingerprint ~library_fp samples =
    Printf.sprintf "values:%s;inputs=%s" library_fp
      (inputs_fingerprint samples)

  let fingerprint_of t = t.fp
  let samples t = t.samples

  let build ~library_fp (lib : library) samples =
    let tbl = Hashtbl.create (List.length lib.all) in
    let ordered =
      List.filter_map
        (fun stub ->
          (* Ill-behaved evaluations (a stub is well-typed but its
             value may still overflow or hit 0/0 on a given draw) keep
             their non-finite floats: they simply never match a finite
             target signature. *)
          match
            List.map
              (fun inputs -> Dsl.Interp.eval_alist inputs stub.prog)
              samples
          with
          | outs ->
              Hashtbl.replace tbl (Spec.key stub.sem) outs;
              Some (stub, outs)
          | exception _ -> None)
        lib.all
    in
    { tbl; ordered; fp = fingerprint ~library_fp samples; samples }

  let outputs t (stub : t) = Hashtbl.find_opt t.tbl (Spec.key stub.sem)
  let to_list t = t.ordered

  (* One table per (library, input draw) fingerprint, shared across
     lifts the same way [Cache] shares enumerated libraries.  Truncated
     libraries are never cached (their contents are not determined by
     their fingerprint), mirroring [Cache.enumerate]. *)
  let cache : (string, table) Hashtbl.t = Hashtbl.create 8
  let cache_mutex = Mutex.create ()

  let get ?(tel = Obs.Telemetry.null) ~library_fp (lib : library) samples =
    let fp = fingerprint ~library_fp samples in
    let cached =
      Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache fp)
    in
    match cached with
    | Some t ->
        Obs.Telemetry.incr tel "stub.values_cache_hits";
        t
    | None ->
        let t = build ~library_fp lib samples in
        if not lib.hit_cap then
          Mutex.protect cache_mutex (fun () ->
              if not (Hashtbl.mem cache fp) then Hashtbl.replace cache fp t);
        t
end
