include Pstore

let schema = "stenso.store/1"

let outcome_key ~spec_key ~stub_fp ~config_fp ~model_id =
  String.concat "\x00" [ model_id; config_fp; stub_fp; spec_key ]

type outcome_entry = {
  version : string;
  original : string;
  optimized : string;
  improved : bool;
  original_cost : float;
  optimized_cost : float;
  stats : Search.stats;
  refined : bool;
      (* finalized by a full tier-3 search: background refinement will
         not touch this entry again *)
}

let stats_json (s : Search.stats) =
  Json.Obj
    [
      ("nodes", Json.Int s.nodes);
      ("decomps", Json.Int s.decomps);
      ("pruned_simp", Json.Int s.pruned_simp);
      ("pruned_bnb", Json.Int s.pruned_bnb);
      ("memo_hits", Json.Int s.memo_hits);
      ("memo_misses", Json.Int s.memo_misses);
      ("elapsed", Json.Float s.elapsed);
      ("timed_out", Json.Bool s.timed_out);
      ("library_size", Json.Int s.library_size);
    ]

let entry_json (e : outcome_entry) =
  Json.Obj
    [
      ("version", Json.Str e.version);
      ("original", Json.Str e.original);
      ("optimized", Json.Str e.optimized);
      ("improved", Json.Bool e.improved);
      ("original_cost", Json.Float e.original_cost);
      ("optimized_cost", Json.Float e.optimized_cost);
      ("search", stats_json e.stats);
      ("refined", Json.Bool e.refined);
    ]

let ( let* ) = Option.bind

let stats_of_json j : Search.stats option =
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  let* nodes = int "nodes" in
  let* decomps = int "decomps" in
  let* pruned_simp = int "pruned_simp" in
  let* pruned_bnb = int "pruned_bnb" in
  let* memo_hits = int "memo_hits" in
  let* memo_misses = int "memo_misses" in
  let* elapsed = Option.bind (Json.member "elapsed" j) Json.to_float_opt in
  let* timed_out = Option.bind (Json.member "timed_out" j) Json.to_bool_opt in
  let* library_size = int "library_size" in
  Some
    {
      Search.nodes;
      decomps;
      pruned_simp;
      pruned_bnb;
      memo_hits;
      memo_misses;
      elapsed;
      timed_out;
      library_size;
    }

let entry_of_json j : outcome_entry option =
  let str name = Option.bind (Json.member name j) Json.to_string_opt in
  let* version = str "version" in
  let* original = str "original" in
  let* optimized = str "optimized" in
  let* improved = Option.bind (Json.member "improved" j) Json.to_bool_opt in
  let* original_cost =
    Option.bind (Json.member "original_cost" j) Json.to_float_opt
  in
  let* optimized_cost =
    Option.bind (Json.member "optimized_cost" j) Json.to_float_opt
  in
  let* stats = Option.bind (Json.member "search" j) stats_of_json in
  (* Tolerant decode: entries written before refinement existed are
     simply not-yet-refined, not corrupt. *)
  let refined =
    Option.value ~default:false
      (Option.bind (Json.member "refined" j) Json.to_bool_opt)
  in
  Some
    {
      version;
      original;
      optimized;
      improved;
      original_cost;
      optimized_cost;
      stats;
      refined;
    }

let find_outcome t ~key =
  match find t ~schema key with
  | None -> None
  | Some payload -> (
      match entry_of_json payload with
      | Some e -> Some e
      | None ->
          (* Envelope intact but payload unreadable (e.g. written by an
             incompatible build that kept the schema id): corrupt. *)
          invalidate t key;
          None)

let record_outcome t ~key e = add t ~schema key (entry_json e)
