(** The mined rewrite-rule database ([stenso.rules/1]).

    [stenso mine] batch-superoptimizes the bounded stub space offline:
    every semantic duplicate the enumeration deduplicates away is a
    rewrite proven equivalent by construction (duplicate ⇒ cheapest
    representative), generalized into a {!Rules.t} and recorded here,
    together with an {e optima table} mapping each enumerated symbolic
    value (by spec-key digest) to the cheapest known program computing
    it.  {!Superopt.optimize}'s tier 2 replays these rules (fixpoint +
    e-graph saturation) and consults the optima table instead of
    entering the branch-and-bound search; improvements that tier 3 does
    discover are fed back through {!record_feedback}, so the database
    grows with traffic — the paper's §VII-D integration path, in the
    TENSAT/Prism mostly-lookup direction.

    Entries live in the same {!Store} directory as synthesis outcomes,
    under their own schema tag, keyed by the mining stub fingerprint
    (environment, depth, the standard constant set) plus the cost-model
    id — see {!key}. *)

module Json = Obs.Telemetry.Json

val schema : string
(** ["stenso.rules/1"]. *)

val standard_consts : float list
(** The constant terminals every mining run enumerates with.  Fixed —
    and part of the database key via the stub fingerprint — so a serving
    process can recompute the key of a request's environment without
    knowing what constants the miner saw. *)

val mine_config : ?jobs:int -> depth:int -> unit -> Stub.config
(** The enumeration configuration mining uses for a given rule depth.
    Everything except [depth] (and [jobs], which never changes the
    library) is pinned to the defaults, so the database key derived from
    its fingerprint is stable across processes. *)

val key : env:Dsl.Types.env -> model_id:string -> depth:int -> string
(** Database key for one (environment, cost model, mining depth). *)

type rule = {
  rule : Rules.t;
  gain : float;
      (** cost improvement of rhs over lhs at the mined shapes, under
          the database's cost model — the ranking criterion *)
}

type t = {
  version : string;  (** build that mined the entry *)
  model_id : string;
  depth : int;
  truncated : bool;
      (** the mining enumeration hit its stub cap or deadline.  Rules
          stay sound (each was verified within the enumerated library),
          but the miner refuses to record optima from a truncated
          library — a "cheapest known" claim over a partial space is
          not one — so this flag on a decoded entry means its optima
          came solely from tier-3 feedback (or predate the flag). *)
  rules : rule list;  (** sorted by decreasing gain *)
  optima : (string, float * string) Hashtbl.t;
      (** spec-key digest ↦ (cost, program text) of the cheapest known
          implementation of that symbolic value *)
}

val max_rules : int
(** Per-entry rule cap (lowest-gain rules are dropped beyond it). *)

val spec_digest : Spec.t -> string
(** Digest of the canonical spec rendering — the optima-table key. *)

val entry :
  ?truncated:bool ->
  model_id:string ->
  depth:int ->
  rules:rule list ->
  optima:(string * (float * string)) list ->
  unit ->
  t
(** Assemble a fresh entry: rules are deduplicated (by rendered
    lhs/rhs), sorted by decreasing gain and capped at {!max_rules};
    optima keep the cheapest binding per digest.  [truncated] (default
    [false]) stamps the entry as mined from a capped enumeration. *)

val lookup_optimum : t -> string -> (float * Dsl.Ast.t) option
(** The recorded cheapest implementation of a spec digest, parsed.
    [None] when the digest is unknown or the stored text no longer
    parses. *)

val find : Store.t -> key:string -> t option
(** Decode the database entry under this key.  Decoded entries are
    cached per (store directory, key) and revalidated against the
    store's resident payload, so repeated lookups do not re-parse; an
    entry whose envelope is readable but whose payload no longer
    decodes is invalidated (deleted, counted corrupt) and reported as
    a miss.  Individually malformed rules or optima lines are dropped
    rather than failing the entry. *)

val record : Store.t -> key:string -> t -> unit
(** Persist an entry (write-through), replacing any previous one. *)

val record_feedback :
  Store.t ->
  key:string ->
  model_id:string ->
  depth:int ->
  ?rule:Rules.t * float ->
  spec_digest:string ->
  cost:float ->
  prog:string ->
  unit ->
  unit
(** Fold one tier-3 discovery into the database: add the generalized
    rule (if any, skipped when an equal lhs/rhs pair is already
    present) and the (digest, cost, program) optimum (kept only if
    cheaper than the recorded one).  Creates the entry when the
    environment was never mined — the organic-growth path. *)

val to_json : t -> Json.t
val of_json : Json.t -> t option
