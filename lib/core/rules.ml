module Ast = Dsl.Ast

type t = {
  lhs : Ast.t;
  rhs : Ast.t;
  metavars : (string * string) list;
}

let metavar_names = [ "X"; "Y"; "Z"; "W"; "V"; "U"; "T"; "S" ]

let generalize original optimized =
  let inputs = Ast.inputs original in
  (* Metavariable names must be fresh with respect to *every* input name
     on either side: an input literally named [X] must not collide with
     metavar [X], or the abstraction conflates distinct inputs. *)
  let taken = ref (Ast.inputs optimized @ inputs) in
  let fresh () =
    let rec first = function
      | name :: rest ->
          if List.mem name !taken then first rest else name
      | [] ->
          let rec numbered i =
            let name = Printf.sprintf "X%d" i in
            if List.mem name !taken then numbered (i + 1) else name
          in
          numbered 0
    in
    let name = first metavar_names in
    taken := name :: !taken;
    name
  in
  let metavars = List.map (fun name -> (name, fresh ())) inputs in
  (* Simultaneous substitution: a replacement is never itself
     re-substituted, so even adversarial input names cannot capture. *)
  let abstract prog =
    Ast.subst_inputs
      (List.map (fun (name, mv) -> (name, Ast.Input mv)) metavars)
      prog
  in
  { lhs = abstract original; rhs = abstract optimized; metavars }

let specialize rule bindings =
  (* Simultaneous: a binding [X ↦ Input "Y"] must not be rewritten again
     by the binding for metavar [Y]. *)
  let instantiate prog = Ast.subst_inputs bindings prog in
  (instantiate rule.lhs, instantiate rule.rhs)

let closed rule =
  let lhs_inputs = Ast.inputs rule.lhs in
  List.for_all (fun n -> List.mem n lhs_inputs) (Ast.inputs rule.rhs)

let matches rule prog =
  let exception Mismatch in
  let bindings : (string, Ast.t) Hashtbl.t = Hashtbl.create 8 in
  let is_metavar name = List.exists (fun (_, mv) -> mv = name) rule.metavars in
  let rec go (pat : Ast.t) (t : Ast.t) =
    match (pat, t) with
    | Input mv, _ when is_metavar mv -> (
        match Hashtbl.find_opt bindings mv with
        | Some bound -> if not (Ast.equal bound t) then raise Mismatch
        | None -> Hashtbl.replace bindings mv t)
    | Input a, Input b -> if a <> b then raise Mismatch
    | Const a, Const b -> if a <> b then raise Mismatch
    | App (op1, args1), App (op2, args2) ->
        if op1 <> op2 || List.length args1 <> List.length args2 then
          raise Mismatch;
        List.iter2 go args1 args2
    | For_stack f1, For_stack f2 ->
        (* comprehension variables must coincide for a syntactic match *)
        if f1.var <> f2.var || f1.iter <> f2.iter then raise Mismatch;
        go f1.body f2.body
    | (Input _ | Const _ | App _ | For_stack _), _ -> raise Mismatch
  in
  match go rule.lhs prog with
  | () -> Some (Hashtbl.fold (fun k v acc -> (k, v) :: acc) bindings [])
  | exception Mismatch -> None

let rec apply_once rule prog =
  match matches rule prog with
  | Some bindings -> Some (snd (specialize rule bindings))
  | None ->
      let rewritten = ref false in
      let prog' =
        Ast.map_children
          (fun child ->
            if !rewritten then child
            else
              match apply_once rule child with
              | Some c ->
                  rewritten := true;
                  c
              | None -> child)
          prog
      in
      if !rewritten then Some prog' else None

let apply_fixpoint ?(max_steps = 32) ?cost ?applied rules prog =
  let cost =
    match cost with
    | Some f -> f
    | None -> fun p -> float_of_int (Ast.size p)
  in
  let step prog =
    List.fold_left
      (fun acc rule ->
        match acc with
        | Some _ -> acc
        | None -> apply_once rule prog)
      None rules
  in
  (* Inverse rule pairs (a+b ⇒ b+a and back) cycle forever: track every
     program visited and stop on the first revisit, returning the
     cheapest program seen rather than whatever intermediate the step
     budget happened to land on. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let best = ref prog in
  let best_cost = ref (cost prog) in
  let rec go n prog =
    let key = Ast.to_string prog in
    if n > 0 && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      match step prog with
      | None -> ()
      | Some p ->
          (match applied with Some r -> incr r | None -> ());
          let c = cost p in
          if c < !best_cost then begin
            best := p;
            best_cost := c
          end;
          go (n - 1) p
    end
  in
  go max_steps prog;
  !best

let pp ppf rule = Format.fprintf ppf "%a  ==>  %a" Ast.pp rule.lhs Ast.pp rule.rhs
let to_string rule = Format.asprintf "%a" pp rule
