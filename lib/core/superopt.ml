module Ast = Dsl.Ast
module Types = Dsl.Types

type outcome = {
  original : Ast.t;
  optimized : Ast.t;
  improved : bool;
  original_cost : float;
  optimized_cost : float;
  search : Search.result;
  verified : bool;
  from_cache : bool;
}

let consts_of prog =
  let rec go acc (t : Ast.t) =
    match t with
    | Const f -> f :: acc
    | Input _ -> acc
    | App (_, args) -> List.fold_left go acc args
    | For_stack { body; _ } -> go acc body
  in
  List.sort_uniq compare (1.0 :: go [] prog)

(* Second verification environment: every non-unit dimension bumped by
   one.  Symbolic execution fixes concrete sizes, so an equivalence that
   silently depended on a size coincidence (e.g. a term count happening
   to match a dimension) passes at the synthesis shapes but fails
   here. *)
let perturbed_env (env : Types.env) : Types.env =
  List.map
    (fun (name, (vt : Types.vt)) ->
      ( name,
        {
          vt with
          Types.shape =
            Array.map (fun d -> if d > 1 then d + 1 else d) vt.shape;
        } ))
    env

let rec has_shape_attrs (t : Ast.t) =
  match t with
  | App ((Full _ | Reshape _), _) -> true
  | Input _ | Const _ -> false
  | App (_, args) -> List.exists has_shape_attrs args
  | For_stack { body; _ } -> has_shape_attrs body

let robust_equivalent ~env a b =
  Dsl.Sexec.equivalent env a b
  &&
  let env' = perturbed_env env in
  (* Programs that bake shapes into attributes ([full]/[reshape]) are
     legitimately shape-specific, and anything that no longer
     type-checks at the perturbed sizes cannot be compared there; the
     primary check stands alone in those cases. *)
  has_shape_attrs a || has_shape_attrs b
  || (not (Types.well_typed env' a && Types.well_typed env' b))
  || Dsl.Sexec.equivalent env' a b

let superoptimize ?(tel = Obs.Telemetry.null) ?(config = Search.default_config)
    ?stub_cache ?spec ~model ~env prog =
  let original_cost = Cost.Model.program_cost model env prog in
  let spec =
    match spec with
    | Some s -> s
    | None ->
        Obs.Telemetry.span tel "phase.symbolic_exec" (fun () ->
            Dsl.Sexec.exec_env env prog)
  in
  let consts = consts_of prog in
  let library =
    match stub_cache with
    | None -> None
    | Some cache ->
        let lib, shared =
          Obs.Telemetry.span tel "phase.stub_enum" (fun () ->
              Stub.Cache.enumerate cache ~config:config.Search.stub_config
                ~tel ~model ~consts env)
        in
        if shared && Obs.Telemetry.enabled tel then
          Obs.Telemetry.incr tel "stub.cache_hits";
        Some lib
  in
  let search =
    Search.run ~tel ~config ?library ~model ~env ~spec
      ~initial_bound:original_cost ~consts ()
  in
  (* Re-estimate the synthesized program as a whole: search-time cost
     accumulation prices holes at collapsed shapes, which is the right
     search heuristic but can drift from the assembled program. *)
  let final_cost prog = Cost.Model.program_cost model env prog in
  let search =
    match search.program with
    | Some candidate -> { search with cost = final_cost candidate }
    | None -> search
  in
  match search.program with
  | Some candidate when search.cost < original_cost ->
      (* Correctness by construction, re-checked end-to-end — at the
         synthesis shapes and at perturbed shapes. *)
      let verified = robust_equivalent ~env prog candidate in
      if verified then
        {
          original = prog;
          optimized = candidate;
          improved = true;
          original_cost;
          optimized_cost = search.cost;
          search;
          verified;
          from_cache = false;
        }
      else begin
        (* The candidate failed re-verification (for example a rewrite
           that only held at a shape coincidence of the synthesis
           sizes): fall back to the original program rather than emit
           wrong code.  The returned program is the original, so the
           outcome is trivially verified. *)
        Logs.warn (fun m ->
            m "stenso: rejected unverifiable candidate %a" Ast.pp candidate);
        {
          original = prog;
          optimized = prog;
          improved = false;
          original_cost;
          optimized_cost = original_cost;
          search;
          verified = true;
          from_cache = false;
        }
      end
  | _ ->
      {
        original = prog;
        optimized = prog;
        improved = false;
        original_cost;
        optimized_cost = original_cost;
        search;
        verified = true;
        from_cache = false;
      }

(* The full store key for one request: what will be synthesized (the
   spec), from what material (stub fingerprint: env, consts, grammar),
   under which search parameters (config fingerprint) and which cost
   notion (model id). *)
let store_key ~config ~model ~env ~spec prog =
  let search = Config.search_config config in
  Store.outcome_key ~spec_key:(Spec.key spec)
    ~stub_fp:
      (Stub.fingerprint search.Search.stub_config ~consts:(consts_of prog) env)
    ~config_fp:(Config.fingerprint config)
    ~model_id:model.Cost.Model.name

(* Reconstitute an outcome from a store entry.  The entry's program text
   must still parse, type-check and match this request's environment —
   anything else means the entry is stale or corrupt and is invalidated
   so the search runs instead. *)
let outcome_of_entry ~env prog (e : Store.outcome_entry) : outcome option =
  match Dsl.Parser.program e.optimized with
  | exception _ -> None
  | entry_env, optimized ->
      if entry_env <> env then None
      else if not (Dsl.Types.well_typed env optimized) then None
      else
        Some
          {
            original = prog;
            optimized;
            improved = e.improved;
            original_cost = e.original_cost;
            optimized_cost = e.optimized_cost;
            search =
              {
                Search.program = (if e.improved then Some optimized else None);
                cost = e.optimized_cost;
                stats = e.stats;
              };
            verified = true;
            from_cache = true;
          }

let optimize ?(tel = Obs.Telemetry.null) ?(config = Config.default) ?store
    ?stub_cache ?model ~env prog =
  let model =
    match model with Some m -> m | None -> Config.model ~tel config
  in
  let search_config = Config.search_config config in
  match store with
  | None -> superoptimize ~tel ~config:search_config ?stub_cache ~model ~env prog
  | Some store -> (
      let spec =
        Obs.Telemetry.span tel "phase.symbolic_exec" (fun () ->
            Dsl.Sexec.exec_env env prog)
      in
      let key = store_key ~config ~model ~env ~spec prog in
      let cached =
        match Store.find_outcome store ~key with
        | None -> None
        | Some entry -> (
            match outcome_of_entry ~env prog entry with
            | Some o -> Some o
            | None ->
                Store.invalidate store key;
                None)
      in
      match cached with
      | Some outcome ->
          (* Check-before-search: served without entering [Search]. *)
          Obs.Telemetry.incr tel "store.hits";
          Obs.Telemetry.event tel "store.serve"
            [
              ("key", Obs.Telemetry.Str (Store.digest key));
              ("improved", Obs.Telemetry.Bool outcome.improved);
            ];
          outcome
      | None ->
          Obs.Telemetry.incr tel "store.misses";
          let outcome =
            superoptimize ~tel ~config:search_config ?stub_cache ~spec ~model
              ~env prog
          in
          (* Record-after-search.  Unverified candidates never reach the
             outcome (superoptimize falls back to the original), so
             every recorded entry is correct by construction. *)
          if outcome.verified then
            Store.record_outcome store ~key
              {
                Store.version = Version.current;
                original = Dsl.Parser.unparse env outcome.original;
                optimized = Dsl.Parser.unparse env outcome.optimized;
                improved = outcome.improved;
                original_cost = outcome.original_cost;
                optimized_cost = outcome.optimized_cost;
                stats = outcome.search.stats;
              };
          outcome)

let validate_concrete ?(trials = 16) ?(max_draws = 512)
    ?(engine : Texec.Engine.kind = `Vm)
    ?(exec_options = Texec.Engine.Options.default) ~env a b =
  let st = Random.State.make [| 0xbeef |] in
  (* The reference side [a] always goes through the tree-walking
     interpreter; the candidate side [b] goes through the selected
     engine, so VM-backed validation doubles as a differential test of
     the compiled path.  Compile once, reuse across trials. *)
  let eval_b =
    match engine with
    | `Interp -> fun inputs -> Dsl.Interp.eval_alist inputs b
    | `Vm ->
        let compiled = Texec.Engine.compile ~options:exec_options ~env b in
        fun inputs ->
          Texec.Engine.run compiled (fun n -> List.assoc n inputs)
  in
  (* Rewrites hold on the engine's positive-value domain (see
     {!Symbolic.Expr}); a trial whose original already produces
     non-finite values (sqrt/log of a negative intermediate) is outside
     that domain and carries no evidence either way, so it is skipped —
     and redrawn: skipped draws must not count toward [trials], or a
     program that is almost never in domain would pass with zero
     effective checks. *)
  let close x y = Float.abs (x -. y) <= 1e-9 +. (1e-6 *. Float.abs y) in
  let max_draws = max trials max_draws in
  let ok = ref true in
  let effective = ref 0 in
  let draws = ref 0 in
  while !ok && !effective < trials && !draws < max_draws do
    incr draws;
    let inputs = Dsl.Interp.random_inputs st env in
    let ra = Dsl.Interp.eval_alist inputs a in
    let in_domain =
      Tensor.Ftensor.fold (fun acc x -> acc && Float.is_finite x) true ra
    in
    if in_domain then begin
      incr effective;
      let rb = eval_b inputs in
      if not (Tensor.Ftensor.for_all2 close ra rb) then ok := false
    end
  done;
  !ok
