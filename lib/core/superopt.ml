module Ast = Dsl.Ast
module Types = Dsl.Types

type outcome = {
  original : Ast.t;
  optimized : Ast.t;
  improved : bool;
  original_cost : float;
  optimized_cost : float;
  search : Search.result;
  verified : bool;
  from_cache : bool;
  tier : int;
  refined : bool;
}

let consts_of prog =
  let rec go acc (t : Ast.t) =
    match t with
    | Const f -> f :: acc
    | Input _ -> acc
    | App (_, args) -> List.fold_left go acc args
    | For_stack { body; _ } -> go acc body
  in
  List.sort_uniq compare (1.0 :: go [] prog)

(* Second verification environment: every non-unit dimension bumped by
   one.  Symbolic execution fixes concrete sizes, so an equivalence that
   silently depended on a size coincidence (e.g. a term count happening
   to match a dimension) passes at the synthesis shapes but fails
   here. *)
let perturbed_env (env : Types.env) : Types.env =
  List.map
    (fun (name, (vt : Types.vt)) ->
      ( name,
        {
          vt with
          Types.shape =
            Array.map (fun d -> if d > 1 then d + 1 else d) vt.shape;
        } ))
    env

let rec has_shape_attrs (t : Ast.t) =
  match t with
  | App ((Full _ | Reshape _), _) -> true
  | Input _ | Const _ -> false
  | App (_, args) -> List.exists has_shape_attrs args
  | For_stack { body; _ } -> has_shape_attrs body

let robust_equivalent ~env a b =
  Dsl.Sexec.equivalent env a b
  &&
  let env' = perturbed_env env in
  (* Programs that bake shapes into attributes ([full]/[reshape]) are
     legitimately shape-specific, and anything that no longer
     type-checks at the perturbed sizes cannot be compared there; the
     primary check stands alone in those cases. *)
  has_shape_attrs a || has_shape_attrs b
  || (not (Types.well_typed env' a && Types.well_typed env' b))
  || Dsl.Sexec.equivalent env' a b

let superoptimize ?(tel = Obs.Telemetry.null) ?(config = Search.default_config)
    ?stub_cache ?spec ?bound ~model ~env prog =
  let original_cost = Cost.Model.program_cost model env prog in
  let initial_bound =
    match bound with Some b -> Float.min b original_cost | None -> original_cost
  in
  let spec =
    match spec with
    | Some s -> s
    | None ->
        Obs.Telemetry.span tel "phase.symbolic_exec" (fun () ->
            Dsl.Sexec.exec_env env prog)
  in
  let consts = consts_of prog in
  let library =
    match stub_cache with
    | None -> None
    | Some cache ->
        (* Mirror the deadline Search.run sets on its own enumeration
           (search.ml): without it the cached path enumerates unbounded
           and the search timeout only starts counting afterwards.  The
           deadline is not part of the cache key, and a truncated
           library is never published, so sharing is unaffected. *)
        let stub_config =
          {
            config.Search.stub_config with
            Stub.deadline =
              Some (Unix.gettimeofday () +. config.Search.timeout);
          }
        in
        let lib, shared =
          Obs.Telemetry.span tel "phase.stub_enum" (fun () ->
              Stub.Cache.enumerate cache ~config:stub_config ~tel ~model
                ~consts env)
        in
        if shared && Obs.Telemetry.enabled tel then
          Obs.Telemetry.incr tel "stub.cache_hits";
        Some lib
  in
  let search =
    Search.run ~tel ~config ?library ~model ~env ~spec ~initial_bound
      ~consts ()
  in
  (* Re-estimate the synthesized program as a whole: search-time cost
     accumulation prices holes at collapsed shapes, which is the right
     search heuristic but can drift from the assembled program. *)
  let final_cost prog = Cost.Model.program_cost model env prog in
  let search =
    match search.program with
    | Some candidate -> { search with cost = final_cost candidate }
    | None -> search
  in
  match search.program with
  | Some candidate when search.cost < original_cost ->
      (* Correctness by construction, re-checked end-to-end — at the
         synthesis shapes and at perturbed shapes. *)
      let verified = robust_equivalent ~env prog candidate in
      if verified then
        {
          original = prog;
          optimized = candidate;
          improved = true;
          original_cost;
          optimized_cost = search.cost;
          search;
          verified;
          from_cache = false;
          tier = 3;
          refined = true;
        }
      else begin
        (* The candidate failed re-verification (for example a rewrite
           that only held at a shape coincidence of the synthesis
           sizes): fall back to the original program rather than emit
           wrong code.  The returned program is the original, so the
           outcome is trivially verified. *)
        Logs.warn (fun m ->
            m "stenso: rejected unverifiable candidate %a" Ast.pp candidate);
        {
          original = prog;
          optimized = prog;
          improved = false;
          original_cost;
          optimized_cost = original_cost;
          search;
          verified = true;
          from_cache = false;
          tier = 3;
          refined = true;
        }
      end
  | _ ->
      {
        original = prog;
        optimized = prog;
        improved = false;
        original_cost;
        optimized_cost = original_cost;
        search;
        verified = true;
        from_cache = false;
        tier = 3;
        refined = true;
      }

(* The full store key for one request: what will be synthesized (the
   spec), from what material (stub fingerprint: env, consts, grammar),
   under which search parameters (config fingerprint) and which cost
   notion (model id). *)
let store_key ~config ~model ~env ~spec prog =
  let search = Config.search_config config in
  Store.outcome_key ~spec_key:(Spec.key spec)
    ~stub_fp:
      (Stub.fingerprint search.Search.stub_config ~consts:(consts_of prog) env)
    ~config_fp:(Config.fingerprint config)
    ~model_id:model.Cost.Model.name

(* Reconstitute an outcome from a store entry.  The entry's program text
   must still parse, type-check and match this request's environment —
   anything else means the entry is stale or corrupt and is invalidated
   so the search runs instead. *)
let outcome_of_entry ~env prog (e : Store.outcome_entry) : outcome option =
  match Dsl.Parser.program e.optimized with
  | exception _ -> None
  | entry_env, optimized ->
      if entry_env <> env then None
      else if not (Dsl.Types.well_typed env optimized) then None
      else
        Some
          {
            original = prog;
            optimized;
            improved = e.improved;
            original_cost = e.original_cost;
            optimized_cost = e.optimized_cost;
            search =
              {
                Search.program = (if e.improved then Some optimized else None);
                cost = e.optimized_cost;
                stats = e.stats;
              };
            verified = true;
            from_cache = true;
            tier = 1;
            refined = e.refined;
          }

let validate_concrete ?(trials = 16) ?(max_draws = 512)
    ?(engine : Texec.Engine.kind = `Vm)
    ?(exec_options = Texec.Engine.Options.default) ~env a b =
  let st = Random.State.make [| 0xbeef |] in
  (* The reference side [a] always goes through the tree-walking
     interpreter; the candidate side [b] goes through the selected
     engine, so VM-backed validation doubles as a differential test of
     the compiled path.  Compile once, reuse across trials. *)
  let eval_b =
    match engine with
    | `Interp -> fun inputs -> Dsl.Interp.eval_alist inputs b
    | `Vm ->
        let compiled = Texec.Engine.compile ~options:exec_options ~env b in
        fun inputs ->
          Texec.Engine.run compiled (fun n -> List.assoc n inputs)
  in
  (* Rewrites hold on the engine's positive-value domain (see
     {!Symbolic.Expr}); a trial whose original already produces
     non-finite values (sqrt/log of a negative intermediate) is outside
     that domain and carries no evidence either way, so it is skipped —
     and redrawn: skipped draws must not count toward [trials], or a
     program that is almost never in domain would pass with zero
     effective checks. *)
  let close x y = Float.abs (x -. y) <= 1e-9 +. (1e-6 *. Float.abs y) in
  let max_draws = max trials max_draws in
  let ok = ref true in
  let effective = ref 0 in
  let draws = ref 0 in
  while !ok && !effective < trials && !draws < max_draws do
    incr draws;
    let inputs = Dsl.Interp.random_inputs st env in
    let ra = Dsl.Interp.eval_alist inputs a in
    let in_domain =
      Tensor.Ftensor.fold (fun acc x -> acc && Float.is_finite x) true ra
    in
    if in_domain then begin
      incr effective;
      let rb = eval_b inputs in
      if not (Tensor.Ftensor.for_all2 close ra rb) then ok := false
    end
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Tier 2: mined rules, e-graph saturation, optima lookup              *)
(* ------------------------------------------------------------------ *)

type tier2 = {
  t2_prog : Ast.t;
  t2_cost : float;
  t2_certified : bool;
      (* the candidate provably reaches the database's recorded optimum
         for this spec (or costs nothing at all), so the search cannot
         improve on what the database already knows *)
  t2_applied : int;  (* rewrite steps taken (fixpoint + saturation) *)
  t2_db_truncated : bool;  (* the serving database was mined truncated *)
  t2_elapsed : float;
}

let empty_stats elapsed =
  {
    Search.nodes = 0;
    decomps = 0;
    pruned_simp = 0;
    pruned_bnb = 0;
    memo_hits = 0;
    memo_misses = 0;
    elapsed;
    timed_out = false;
    library_size = 0;
  }

(* Serve a request from the mined rule database, if it can be done
   soundly.  Three candidate sources, cheapest verified one wins:

   - {!Rules.apply_fixpoint} over the mined rules (greedy rewriting);
   - e-graph equality saturation with the same rules plus cheapest
     extraction ({!Egraph});
   - the optima table: the cheapest known implementation of this
     request's symbolic value, mined offline or fed back from earlier
     tier-3 searches.

   Every candidate is re-verified from scratch (symbolic equivalence at
   two shape settings + concrete differential validation) before it can
   be served — tier 2 trusts the database for *guidance*, never for
   correctness.  The answer is [certified] only when it reaches the
   recorded optimum for this very spec: mined optima are exact for the
   bounded stub space, so a certified answer is the best the database
   can prove; anything short of that falls through to the full search
   (with the candidate's cost as a tightened initial bound). *)
let tier2_attempt ~tel ~config ~model ~env ~spec ~depth ~store prog =
  match
    Rules_db.find store
      ~key:(Rules_db.key ~env ~model_id:model.Cost.Model.name ~depth)
  with
  | None -> None
  | Some db ->
      let t0 = Unix.gettimeofday () in
      let cost p =
        if Types.well_typed env p then
          match Cost.Model.program_cost model env p with
          | c -> c
          | exception _ -> infinity
        else infinity
      in
      let applied = ref 0 in
      let rules = List.map (fun r -> r.Rules_db.rule) db.Rules_db.rules in
      let fixpoint = Rules.apply_fixpoint ~max_steps:64 ~cost ~applied rules prog in
      let saturated =
        match
          let g = Egraph.create env in
          let cls = Egraph.add g prog in
          let ts = Unix.gettimeofday () in
          let st = Egraph.saturate ~rules g in
          Obs.Telemetry.Acc.add
            (Obs.Telemetry.acc tel "tier.saturation_ms")
            ((Unix.gettimeofday () -. ts) *. 1000.);
          applied := !applied + st.Egraph.applications;
          Egraph.extract g ~model cls
        with
        | p -> Some p
        | exception Egraph.Unsupported _ -> None
      in
      let optimum = Rules_db.lookup_optimum db (Rules_db.spec_digest spec) in
      let candidates =
        List.filter_map Fun.id
          [ Option.map snd optimum; saturated; Some fixpoint ]
      in
      let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let candidates =
        List.filter
          (fun c ->
            let k = Ast.to_string c in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              cost c < infinity
            end)
          candidates
      in
      let candidates =
        List.stable_sort (fun a b -> Float.compare (cost a) (cost b)) candidates
      in
      let verified c =
        Ast.equal c prog
        ||
        match
          robust_equivalent ~env prog c
          && validate_concrete ~engine:(Config.engine config)
               ~exec_options:(Config.exec_options config) ~env prog c
        with
        | ok -> ok
        | exception _ -> false
      in
      let result =
        match List.find_opt verified candidates with
        | None -> None
        | Some best ->
            let best_cost = cost best in
            let eps = 1e-9 *. (1. +. Float.abs best_cost) in
            (* Certification demands a strict improvement that reaches
               the recorded optimum (or a free program, which nothing
               can undercut).  A candidate that merely *matches* the
               database's best is not served: the optimum is exact only
               for the mined space, and the search explores deeper — a
               "nothing better exists" verdict must come from tier 3,
               never from a bounded table. *)
            let certified =
              best_cost <= 0.
              || (best_cost < cost prog
                 &&
                 match optimum with
                 | Some (opt_cost, _) -> best_cost <= opt_cost +. eps
                 | None -> false)
            in
            Some
              {
                t2_prog = best;
                t2_cost = best_cost;
                t2_certified = certified;
                t2_applied = !applied;
                t2_db_truncated = db.Rules_db.truncated;
                t2_elapsed = Unix.gettimeofday () -. t0;
              }
      in
      if Obs.Telemetry.enabled tel then
        Obs.Telemetry.add tel "tier.rules_applied" !applied;
      result

(* Fold a verified search result back into the rule database: the
   generalized rewrite (when the search improved the program and the
   rule is sound to apply anywhere) and the spec's optimum.  This is
   how the database outgrows its mining depth with traffic. *)
let tier3_feedback ~model ~env ~spec ~depth ~store (outcome : outcome) =
  let rule =
    if not outcome.improved then None
    else
      let r = Rules.generalize outcome.original outcome.optimized in
      if
        r.Rules.metavars <> []
        && (not (Ast.equal r.Rules.lhs r.Rules.rhs))
        && Rules.closed r
      then Some (r, outcome.original_cost -. outcome.optimized_cost)
      else None
  in
  let model_id = model.Cost.Model.name in
  Rules_db.record_feedback store
    ~key:(Rules_db.key ~env ~model_id ~depth)
    ~model_id ~depth ?rule
    ~spec_digest:(Rules_db.spec_digest spec)
    ~cost:outcome.optimized_cost
    ~prog:(Ast.to_string outcome.optimized)
    ()

let optimize ?(tel = Obs.Telemetry.null) ?(config = Config.default) ?store
    ?stub_cache ?model ?spec ~env prog =
  let model =
    match model with Some m -> m | None -> Config.model ~tel config
  in
  let search_config = Config.search_config config in
  match store with
  | None ->
      superoptimize ~tel ~config:search_config ?stub_cache ?spec ~model ~env
        prog
  | Some store -> (
      let spec =
        match spec with
        | Some s -> s
        | None ->
            Obs.Telemetry.span tel "phase.symbolic_exec" (fun () ->
                Dsl.Sexec.exec_env env prog)
      in
      let key = store_key ~config ~model ~env ~spec prog in
      let serve_event ?(db_truncated = false) tier =
        Obs.Telemetry.incr tel "tier.hit";
        Obs.Telemetry.incr tel (Printf.sprintf "tier%d.hits" tier);
        Obs.Telemetry.event tel "tier.serve"
          [
            ("tier", Obs.Telemetry.Int tier);
            ("key", Obs.Telemetry.Str (Store.digest key));
            ("db_truncated", Obs.Telemetry.Bool db_truncated);
          ]
      in
      let record (outcome : outcome) =
        (* Record-after-answer.  Unverified candidates never reach the
           outcome (both tiers fall back to the original program), so
           every recorded entry is correct by construction. *)
        if outcome.verified then
          Store.record_outcome store ~key
            {
              Store.version = Version.current;
              original = Dsl.Parser.unparse env outcome.original;
              optimized = Dsl.Parser.unparse env outcome.optimized;
              improved = outcome.improved;
              original_cost = outcome.original_cost;
              optimized_cost = outcome.optimized_cost;
              stats = outcome.search.stats;
              refined = outcome.refined;
            }
      in
      let cached =
        match Store.find_outcome store ~key with
        | None -> None
        | Some entry -> (
            match outcome_of_entry ~env prog entry with
            | Some o -> Some o
            | None ->
                Store.invalidate store key;
                None)
      in
      match cached with
      | Some outcome ->
          (* Tier 1, check-before-search: served without entering
             [Search]. *)
          Obs.Telemetry.incr tel "store.hits";
          Obs.Telemetry.event tel "store.serve"
            [
              ("key", Obs.Telemetry.Str (Store.digest key));
              ("improved", Obs.Telemetry.Bool outcome.improved);
            ];
          serve_event 1;
          outcome
      | None -> (
          Obs.Telemetry.incr tel "store.misses";
          let original_cost = Cost.Model.program_cost model env prog in
          let t2 =
            match Config.rules_depth config with
            | None -> None
            | Some depth ->
                tier2_attempt ~tel ~config ~model ~env ~spec ~depth ~store
                  prog
          in
          match t2 with
          | Some t2 when t2.t2_certified && t2.t2_cost <= original_cost ->
              (* Tier 2: the mined database answered, provably as well
                 as the search could against its recorded optimum, and
                 the answer re-verified — serve it without searching. *)
              let improved = t2.t2_cost < original_cost in
              let outcome =
                {
                  original = prog;
                  optimized = (if improved then t2.t2_prog else prog);
                  improved;
                  original_cost;
                  optimized_cost =
                    (if improved then t2.t2_cost else original_cost);
                  search =
                    {
                      Search.program =
                        (if improved then Some t2.t2_prog else None);
                      cost = (if improved then t2.t2_cost else original_cost);
                      stats = empty_stats t2.t2_elapsed;
                    };
                  verified = true;
                  from_cache = false;
                  tier = 2;
                  (* A certified tier-2 answer is optimal within the
                     mined space, but the full search explores deeper:
                     background refinement may still upgrade it. *)
                  refined = false;
                }
              in
              serve_event ~db_truncated:t2.t2_db_truncated 2;
              record outcome;
              outcome
          | _ ->
              (* Tier 3: full branch-and-bound, with the tier-2
                 candidate (when one verified) tightening the initial
                 bound, and the result fed back into the database. *)
              let bound = Option.map (fun t -> t.t2_cost) t2 in
              let outcome =
                superoptimize ~tel ~config:search_config ?stub_cache ~spec
                  ?bound ~model ~env prog
              in
              let outcome =
                match t2 with
                | Some t2
                  when t2.t2_cost < outcome.optimized_cost
                       && t2.t2_cost < original_cost ->
                    (* The search could not beat the tier-2 candidate
                       (it pruned against its cost); the candidate is
                       already verified, so it is the answer. *)
                    {
                      outcome with
                      optimized = t2.t2_prog;
                      improved = true;
                      optimized_cost = t2.t2_cost;
                      search =
                        {
                          outcome.search with
                          program = Some t2.t2_prog;
                          cost = t2.t2_cost;
                        };
                    }
                | _ -> outcome
              in
              serve_event
                ?db_truncated:(Option.map (fun t -> t.t2_db_truncated) t2)
                3;
              (match Config.rules_depth config with
              | Some depth when outcome.verified ->
                  tier3_feedback ~model ~env ~spec ~depth ~store outcome
              | _ -> ());
              record outcome;
              outcome))

(* Background refinement: run the full tier-3 search for a request that
   was answered by a faster tier, and finalize the store entry with the
   result.  The entry is marked [refined] even when the search only
   confirms the stored answer — "the full search has spoken" is exactly
   the bit that stops the service from re-refining the same spec on
   every future hit.  The upgraded answer also feeds the rule database,
   so future tier-2 answers for this spec serve the true optimum. *)
let refine ?(tel = Obs.Telemetry.null) ?(config = Config.default) ~store
    ?stub_cache ?model ?spec ~env prog =
  let model =
    match model with Some m -> m | None -> Config.model ~tel config
  in
  let spec =
    match spec with
    | Some s -> s
    | None ->
        Obs.Telemetry.span tel "phase.symbolic_exec" (fun () ->
            Dsl.Sexec.exec_env env prog)
  in
  let key = store_key ~config ~model ~env ~spec prog in
  let outcome =
    superoptimize ~tel ~config:(Config.search_config config) ?stub_cache
      ~spec ~model ~env prog
  in
  if outcome.verified then begin
    (match Config.rules_depth config with
    | Some depth -> tier3_feedback ~model ~env ~spec ~depth ~store outcome
    | None -> ());
    Store.record_outcome store ~key
      {
        Store.version = Version.current;
        original = Dsl.Parser.unparse env outcome.original;
        optimized = Dsl.Parser.unparse env outcome.optimized;
        improved = outcome.improved;
        original_cost = outcome.original_cost;
        optimized_cost = outcome.optimized_cost;
        stats = outcome.search.stats;
        refined = true;
      };
    Obs.Telemetry.incr tel "tier.refined";
    Obs.Telemetry.event tel "tier.refine"
      [
        ("key", Obs.Telemetry.Str (Store.digest key));
        ("improved", Obs.Telemetry.Bool outcome.improved);
        ("cost_after", Obs.Telemetry.Float outcome.optimized_cost);
      ]
  end;
  outcome
