type bench_result = {
  bench : Benchmarks.t;
  outcome : Stenso.Superopt.outcome;
  elapsed : float;
}

type t = { results : bench_result list; elapsed : float }

let run ?(config = Stenso.Config.default) ?model ?(jobs = 1) ?on_result
    benches =
  let model =
    match model with Some m -> m | None -> Stenso.Config.model config
  in
  (* Benchmarks are the unit of parallelism here: each search runs
     single-domain so [jobs] bounds total concurrency, and each honours
     its own timeout, isolating slow benchmarks to their worker. *)
  let search =
    let s = Stenso.Config.search_config config in
    {
      s with
      Stenso.Search.jobs = 1;
      stub_config = { s.stub_config with Stenso.Stub.jobs = 1 };
    }
  in
  let emit =
    match on_result with
    | None -> fun _ -> ()
    | Some f ->
        let lock = Mutex.create () in
        fun r -> Mutex.protect lock (fun () -> f r)
  in
  let started = Unix.gettimeofday () in
  let one (b : Benchmarks.t) =
    let t0 = Unix.gettimeofday () in
    let outcome =
      Stenso.Superopt.superoptimize ~config:search ~model ~env:b.env b.program
    in
    let r = { bench = b; outcome; elapsed = Unix.gettimeofday () -. t0 } in
    emit r;
    r
  in
  let results = Stenso.Par.map ~jobs one benches in
  { results; elapsed = Unix.gettimeofday () -. started }
