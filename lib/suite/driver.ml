type bench_result = {
  bench : Benchmarks.t;
  outcome : Stenso.Superopt.outcome;
  elapsed : float;
  tel : Stenso.Telemetry.t;
}

type t = { results : bench_result list; elapsed : float }

let run ?(config = Stenso.Config.default) ?model ?store ?(jobs = 1)
    ?(trace = false) ?on_result benches =
  let model =
    match model with Some m -> m | None -> Stenso.Config.model config
  in
  (* Benchmarks are the unit of parallelism here: each search runs
     single-domain so [jobs] bounds total concurrency, and each honours
     its own timeout, isolating slow benchmarks to their worker. *)
  let run_config = Stenso.Config.with_jobs 1 config in
  (* Benchmarks sharing an input environment (and stub grammar) share
     one enumerated library instead of re-enumerating per benchmark. *)
  let stub_cache = Stenso.Stub.Cache.create () in
  let emit =
    match on_result with
    | None -> fun _ -> ()
    | Some f ->
        let lock = Mutex.create () in
        fun r -> Mutex.protect lock (fun () -> f r)
  in
  let started = Unix.gettimeofday () in
  let one (b : Benchmarks.t) =
    let t0 = Unix.gettimeofday () in
    let tel =
      if trace then Stenso.Telemetry.create () else Stenso.Telemetry.null
    in
    let outcome =
      Stenso.Superopt.optimize ~tel ~config:run_config ?store ~stub_cache
        ~model ~env:b.env b.program
    in
    let r =
      { bench = b; outcome; elapsed = Unix.gettimeofday () -. t0; tel }
    in
    emit r;
    r
  in
  let results = Stenso.Par.map ~jobs one benches in
  { results; elapsed = Unix.gettimeofday () -. started }

(* ------------------------------------------------------------------ *)
(* Suite report                                                        *)
(* ------------------------------------------------------------------ *)

module Json = Stenso.Telemetry.Json

let schema_version = "stenso.suite-report/1"

let bench_json (r : bench_result) : Json.t =
  let o = r.outcome in
  let s = o.search.stats in
  let speedup =
    if o.optimized_cost > 0. then o.original_cost /. o.optimized_cost else 1.
  in
  let ast_str a = Format.asprintf "%a" Dsl.Ast.pp a in
  let search_stats =
    Json.Obj
      [
        ("nodes", Json.Int s.nodes);
        ("decomps", Json.Int s.decomps);
        ("pruned_simp", Json.Int s.pruned_simp);
        ("pruned_bnb", Json.Int s.pruned_bnb);
        ("memo_hits", Json.Int s.memo_hits);
        ("memo_misses", Json.Int s.memo_misses);
        ("elapsed", Json.Float s.elapsed);
        ("timed_out", Json.Bool s.timed_out);
        ("library_size", Json.Int s.library_size);
      ]
  in
  let trajectory =
    Json.List
      (List.map
         (fun (ts, v) -> Json.List [ Json.Float ts; Json.Float v ])
         (Stenso.Telemetry.series r.tel "search.bound"))
  in
  Json.Obj
    [
      ("name", Json.Str r.bench.name);
      ( "source",
        Json.Str
          (match r.bench.source with
          | `Github -> "github"
          | `Synthetic -> "synthetic") );
      ("klass", Json.Str (Benchmarks.klass_name r.bench.klass));
      ("tier", Json.Int o.tier);
      ("improved", Json.Bool o.improved);
      ("verified", Json.Bool o.verified);
      ("cost_before", Json.Float o.original_cost);
      ("cost_after", Json.Float o.optimized_cost);
      ("speedup", Json.Float speedup);
      ("synthesis_time", Json.Float r.elapsed);
      ("original", Json.Str (ast_str o.original));
      ("optimized", Json.Str (ast_str o.optimized));
      ("search", search_stats);
      ("bound_trajectory", trajectory);
    ]

let report ?(config = Stenso.Config.default) t : Json.t =
  let improved =
    List.length (List.filter (fun r -> r.outcome.Stenso.Superopt.improved)
                   t.results)
  in
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("version", Json.Str Stenso.Version.current);
      ( "estimator",
        Json.Str (Stenso.Config.estimator_name (Stenso.Config.estimator config))
      );
      ("jobs", Json.Int (Stenso.Config.jobs config));
      ("timeout", Json.Float (Stenso.Config.timeout config));
      ("elapsed", Json.Float t.elapsed);
      ("n_benchmarks", Json.Int (List.length t.results));
      ("n_improved", Json.Int improved);
      ("benchmarks", Json.List (List.map bench_json t.results));
    ]

(* Structural validation used by the CLI's [report] subcommand and the
   CI harness: the fields above must exist with the kinds above — the
   [BENCH_*.json] trajectory depends on the schema staying stable. *)
let validate_report (j : Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need name extract j =
    match Option.bind (Json.member name j) extract with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let* schema = need "schema" Json.to_string_opt j in
  let* () =
    if String.equal schema schema_version then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  (* [version] arrived after the schema froze: absent in archived
     reports, so optional — but a string when present. *)
  let* () =
    match Json.member "version" j with
    | None -> Ok ()
    | Some v ->
        if Option.is_some (Json.to_string_opt v) then Ok ()
        else Error "mistyped field \"version\""
  in
  let* _ = need "estimator" Json.to_string_opt j in
  let* _ = need "jobs" Json.to_int_opt j in
  let* _ = need "timeout" Json.to_float_opt j in
  let* _ = need "elapsed" Json.to_float_opt j in
  let* n = need "n_benchmarks" Json.to_int_opt j in
  let* benches = need "benchmarks" Json.to_list_opt j in
  let* () =
    if List.length benches = n then Ok ()
    else Error "n_benchmarks disagrees with the benchmarks array"
  in
  let check_bench i b =
    let* _ = need "name" Json.to_string_opt b in
    let* _ = need "source" Json.to_string_opt b in
    let* _ = need "klass" Json.to_string_opt b in
    (* [tier] arrived with tiered serving: absent in older archived
       reports, so optional — but an integer when present. *)
    let* () =
      match Json.member "tier" b with
      | None -> Ok ()
      | Some v ->
          if Option.is_some (Json.to_int_opt v) then Ok ()
          else Error "mistyped field \"tier\""
    in
    let* _ = need "improved" Json.to_bool_opt b in
    let* _ = need "verified" Json.to_bool_opt b in
    let* _ = need "cost_before" Json.to_float_opt b in
    let* _ = need "cost_after" Json.to_float_opt b in
    let* _ = need "speedup" Json.to_float_opt b in
    let* _ = need "synthesis_time" Json.to_float_opt b in
    let* _ = need "original" Json.to_string_opt b in
    let* _ = need "optimized" Json.to_string_opt b in
    let* search = need "search" Option.some b in
    let* _ = need "nodes" Json.to_int_opt search in
    let* _ = need "decomps" Json.to_int_opt search in
    let* _ = need "pruned_simp" Json.to_int_opt search in
    let* _ = need "pruned_bnb" Json.to_int_opt search in
    let* _ = need "memo_hits" Json.to_int_opt search in
    let* _ = need "memo_misses" Json.to_int_opt search in
    let* _ = need "elapsed" Json.to_float_opt search in
    let* _ = need "timed_out" Json.to_bool_opt search in
    let* _ = need "library_size" Json.to_int_opt search in
    let* traj = need "bound_trajectory" Json.to_list_opt b in
    List.fold_left
      (fun acc point ->
        let* () = acc in
        match point with
        | Json.List [ ts; v ]
          when Option.is_some (Json.to_float_opt ts)
               && Option.is_some (Json.to_float_opt v) ->
            Ok ()
        | _ ->
            Error
              (Printf.sprintf "benchmark %d: malformed bound_trajectory" i))
      (Ok ()) traj
  in
  let* () =
    List.fold_left
      (fun acc (i, b) ->
        let* () = acc in
        Result.map_error
          (fun e -> Printf.sprintf "benchmark %d: %s" i e)
          (check_bench i b))
      (Ok ())
      (List.mapi (fun i b -> (i, b)) benches)
  in
  Ok ()

let exec_bench_schema_version = "stenso.exec-bench/1"

(* Validation for the interp-vs-VM microbenchmark archive
   ([BENCH_exec_vm.json], written by [bench vm --report]).  Beyond the
   structural check, [min_speedup] turns this into a performance gate:
   every benchmark must beat the interpreter by at least that factor,
   and benchmarks flagged [expects_fused_reduction] must actually have
   fused ops — a fusion regression in the planner would otherwise hide
   behind still-passing numbers. *)
let validate_exec_bench ?min_speedup (j : Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need name extract j =
    match Option.bind (Json.member name j) extract with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let* schema = need "schema" Json.to_string_opt j in
  let* () =
    if String.equal schema exec_bench_schema_version then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* _ = need "version" Json.to_string_opt j in
  let* _ = need "options" Json.to_string_opt j in
  let* _ = need "geomean_speedup" Json.to_float_opt j in
  let* n = need "n_benchmarks" Json.to_int_opt j in
  let* results = need "results" Json.to_list_opt j in
  let* () =
    if List.length results = n then Ok ()
    else Error "n_benchmarks disagrees with the results array"
  in
  let check_result b =
    let* name = need "name" Json.to_string_opt b in
    let err fmt = Printf.ksprintf (fun e -> Error e) fmt in
    let* _ = need "interp_seconds" Json.to_float_opt b in
    let* _ = need "vm_seconds" Json.to_float_opt b in
    let* speedup = need "speedup" Json.to_float_opt b in
    let* _ = need "steps" Json.to_int_opt b in
    let* ops_fused = need "ops_fused" Json.to_int_opt b in
    let* _ = need "parallel_strips" Json.to_int_opt b in
    let* _ = need "buffers_reused" Json.to_int_opt b in
    let* _ = need "arena_bytes" Json.to_int_opt b in
    let* expects_fused = need "expects_fused_reduction" Json.to_bool_opt b in
    let* () =
      match min_speedup with
      | Some m when speedup < m ->
          err "%s: speedup %.2fx below the %.2fx floor" name speedup m
      | _ -> Ok ()
    in
    if expects_fused && ops_fused = 0 then
      err "%s: reduction-rooted benchmark has ops_fused = 0" name
    else Ok ()
  in
  List.fold_left
    (fun acc b ->
      let* () = acc in
      check_result b)
    (Ok ()) results

(* ------------------------------------------------------------------ *)
(* Tiered-serving report                                               *)
(* ------------------------------------------------------------------ *)

let tiers_schema_version = "stenso.tiers/1"

let tier_counts (t : t) =
  List.fold_left
    (fun (t1, t2, t3) r ->
      match r.outcome.Stenso.Superopt.tier with
      | 1 -> (t1 + 1, t2, t3)
      | 2 -> (t1, t2 + 1, t3)
      | _ -> (t1, t2, t3 + 1))
    (0, 0, 0) t.results

let pass_json (t : t) =
  let t1, t2, t3 = tier_counts t in
  let n = List.length t.results in
  let frac =
    if n = 0 then 0. else float_of_int (t1 + t2) /. float_of_int n
  in
  Json.Obj
    [
      ("tier1", Json.Int t1);
      ("tier2", Json.Int t2);
      ("tier3", Json.Int t3);
      ("tier12_fraction", Json.Float frac);
      ("elapsed", Json.Float t.elapsed);
    ]

(* The tiered-serving comparison document: one [baseline] run (plain
   full search, no store), one [cold] tiered run (pre-mined rule
   database, empty outcome store) and one [warm] tiered run (repeat of
   the same requests against the now-populated store).  All three runs
   must cover the same benchmarks in the same order. *)
let tiers_report ?(config = Stenso.Config.default) ~baseline ~cold ~warm () :
    Json.t =
  let speedup_over tiered =
    if tiered.elapsed > 0. then baseline.elapsed /. tiered.elapsed else 1.
  in
  let mismatches =
    List.fold_left2
      (fun acc (b : bench_result) (c : bench_result) ->
        let bc = b.outcome.Stenso.Superopt.optimized_cost in
        let cc = c.outcome.Stenso.Superopt.optimized_cost in
        if Float.abs (bc -. cc) > 1e-9 *. (1. +. Float.abs bc) then acc + 1
        else acc)
      0 baseline.results cold.results
  in
  let row (b : bench_result) (c : bench_result) (w : bench_result) =
    let o = c.outcome in
    Json.Obj
      [
        ("name", Json.Str c.bench.name);
        ("tier_cold", Json.Int o.tier);
        ("tier_warm", Json.Int w.outcome.Stenso.Superopt.tier);
        ("improved", Json.Bool o.improved);
        ("verified", Json.Bool o.verified);
        ("cost_before", Json.Float o.original_cost);
        ("cost_after", Json.Float o.optimized_cost);
        ( "baseline_cost_after",
          Json.Float b.outcome.Stenso.Superopt.optimized_cost );
        ("latency_baseline", Json.Float b.elapsed);
        ("latency_cold", Json.Float c.elapsed);
        ("latency_warm", Json.Float w.elapsed);
      ]
  in
  let rows =
    List.map2 (fun (b, c) w -> row b c w)
      (List.combine baseline.results cold.results)
      warm.results
  in
  Json.Obj
    [
      ("schema", Json.Str tiers_schema_version);
      ("version", Json.Str Stenso.Version.current);
      ( "estimator",
        Json.Str (Stenso.Config.estimator_name (Stenso.Config.estimator config))
      );
      ( "rules_depth",
        Json.Int (Option.value ~default:0 (Stenso.Config.rules_depth config))
      );
      ("n_benchmarks", Json.Int (List.length cold.results));
      ("baseline_elapsed", Json.Float baseline.elapsed);
      ("cold", pass_json cold);
      ("warm", pass_json warm);
      ("cold_speedup", Json.Float (speedup_over cold));
      ("warm_speedup", Json.Float (speedup_over warm));
      ("n_cost_mismatches", Json.Int mismatches);
      ("benchmarks", Json.List rows);
    ]

let validate_tiers_report (j : Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need name extract j =
    match Option.bind (Json.member name j) extract with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let* schema = need "schema" Json.to_string_opt j in
  let* () =
    if String.equal schema tiers_schema_version then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* _ = need "version" Json.to_string_opt j in
  let* _ = need "estimator" Json.to_string_opt j in
  let* _ = need "rules_depth" Json.to_int_opt j in
  let* _ = need "baseline_elapsed" Json.to_float_opt j in
  let* _ = need "cold_speedup" Json.to_float_opt j in
  let* _ = need "warm_speedup" Json.to_float_opt j in
  let* _ = need "n_cost_mismatches" Json.to_int_opt j in
  let check_pass name =
    let* p = need name Option.some j in
    let* _ = need "tier1" Json.to_int_opt p in
    let* _ = need "tier2" Json.to_int_opt p in
    let* _ = need "tier3" Json.to_int_opt p in
    let* _ = need "tier12_fraction" Json.to_float_opt p in
    let* _ = need "elapsed" Json.to_float_opt p in
    Ok ()
  in
  let* () = check_pass "cold" in
  let* () = check_pass "warm" in
  let* n = need "n_benchmarks" Json.to_int_opt j in
  let* benches = need "benchmarks" Json.to_list_opt j in
  let* () =
    if List.length benches = n then Ok ()
    else Error "n_benchmarks disagrees with the benchmarks array"
  in
  List.fold_left
    (fun acc b ->
      let* () = acc in
      let* _ = need "name" Json.to_string_opt b in
      let* _ = need "tier_cold" Json.to_int_opt b in
      let* _ = need "tier_warm" Json.to_int_opt b in
      let* _ = need "improved" Json.to_bool_opt b in
      let* _ = need "verified" Json.to_bool_opt b in
      let* _ = need "cost_before" Json.to_float_opt b in
      let* _ = need "cost_after" Json.to_float_opt b in
      let* _ = need "baseline_cost_after" Json.to_float_opt b in
      let* _ = need "latency_baseline" Json.to_float_opt b in
      let* _ = need "latency_cold" Json.to_float_opt b in
      let* _ = need "latency_warm" Json.to_float_opt b in
      Ok ())
    (Ok ()) benches

(* ------------------------------------------------------------------ *)
(* ML-suite report                                                     *)
(* ------------------------------------------------------------------ *)

let mlsuite_schema_version = "stenso.mlsuite/1"

let mlsuite_report ~exec ~tiers () =
  Json.Obj
    [
      ("schema", Json.Str mlsuite_schema_version);
      ("version", Json.Str Stenso.Version.current);
      ("exec", exec);
      ("tiers", tiers);
    ]

(* The document is a composition, so validation is too: the embedded
   exec point carries the per-kernel VM speedups (where [min_speedup]
   gates), the embedded tiers point the serving comparison. *)
let validate_mlsuite ?min_speedup (j : Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need name j =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* schema = need "schema" j in
  let* () =
    match Json.to_string_opt schema with
    | Some s when String.equal s mlsuite_schema_version -> Ok ()
    | Some s -> Error (Printf.sprintf "unknown schema %S" s)
    | None -> Error "mistyped field \"schema\""
  in
  let* () =
    match Option.bind (Json.member "version" j) Json.to_string_opt with
    | Some _ -> Ok ()
    | None -> Error "missing or mistyped field \"version\""
  in
  let* exec = need "exec" j in
  let* () =
    Result.map_error
      (fun e -> "exec: " ^ e)
      (validate_exec_bench ?min_speedup exec)
  in
  let* tiers = need "tiers" j in
  Result.map_error (fun e -> "tiers: " ^ e) (validate_tiers_report tiers)

(* ------------------------------------------------------------------ *)
(* Serve-load report                                                   *)
(* ------------------------------------------------------------------ *)

let serve_load_schema_version = "stenso.serve-load/1"

(* The load generator is protocol-agnostic; this is where its integer
   response classes are defined for the serve protocol.  Successful
   responses encode (tier, coalesced, refined) in one small integer so
   the stats machinery needs no protocol knowledge; the two failure
   classes sit above every success class. *)
let class_busy = 100
let class_protocol_error = 101

let classify_serve_response line =
  match Json.of_string (String.trim line) with
  | Error _ -> class_protocol_error
  | Ok doc -> (
      let bool name =
        Option.value ~default:false
          (Option.bind (Json.member name doc) Json.to_bool_opt)
      in
      match bool "ok" with
      | false -> (
          match
            Option.bind (Json.member "error" doc) Json.to_string_opt
          with
          | Some "busy" -> class_busy
          | _ -> class_protocol_error)
      | true ->
          let tier =
            Option.value ~default:0
              (Option.bind (Json.member "tier" doc) Json.to_int_opt)
          in
          if tier < 1 || tier > 3 then class_protocol_error
          else
            tier
            + (if bool "coalesced" then 10 else 0)
            + if bool "refined" then 20 else 0)

let class_is_ok c = c < class_busy
let class_tier c = c mod 10
let class_coalesced c = class_is_ok c && c / 10 land 1 = 1
let class_refined c = class_is_ok c && c >= 20

(* Nearest-rank percentiles over one latency population. *)
let latency_json lats =
  Array.sort compare lats;
  let n = Array.length lats in
  let pct p = Stenso.Net.Loadgen.percentile lats p in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. lats /. float_of_int n
  in
  Json.Obj
    [
      ("n", Json.Int n);
      ("mean", Json.Float mean);
      ("p50", Json.Float (pct 50.));
      ("p95", Json.Float (pct 95.));
      ("p99", Json.Float (pct 99.));
    ]

let serve_load_report ?(config = Stenso.Config.default) ~endpoints
    ~concurrency ~duration ~benchmarks (stats : Stenso.Net.Loadgen.stats) =
  let samples = stats.samples in
  let count pred =
    Array.fold_left (fun acc (_, c) -> if pred c then acc + 1 else acc) 0
      samples
  in
  let lats_of pred =
    Array.of_seq
      (Seq.filter_map
         (fun (l, c) -> if pred c then Some l else None)
         (Array.to_seq samples))
  in
  let n_ok = count class_is_ok in
  let throughput =
    if stats.elapsed > 0. then float_of_int n_ok /. stats.elapsed else 0.
  in
  let tier_json t =
    let lats = lats_of (fun c -> class_is_ok c && class_tier c = t) in
    match latency_json lats with
    | Json.Obj fields -> Json.Obj (("tier", Json.Int t) :: fields)
    | j -> j
  in
  Json.Obj
    [
      ("schema", Json.Str serve_load_schema_version);
      ("version", Json.Str Stenso.Version.current);
      ( "estimator",
        Json.Str
          (Stenso.Config.estimator_name (Stenso.Config.estimator config)) );
      ("endpoints", Json.List (List.map (fun e -> Json.Str e) endpoints));
      ("concurrency", Json.Int concurrency);
      ("duration", Json.Float duration);
      ("elapsed", Json.Float stats.elapsed);
      ( "benchmarks",
        Json.List (List.map (fun b -> Json.Str b) benchmarks) );
      ("n_requests", Json.Int (Array.length samples));
      ("n_ok", Json.Int n_ok);
      ("throughput_rps", Json.Float throughput);
      ("n_transport_errors", Json.Int stats.n_transport_errors);
      ("n_protocol_errors", Json.Int (count (( = ) class_protocol_error)));
      ("n_busy", Json.Int (count (( = ) class_busy)));
      ("n_coalesced", Json.Int (count class_coalesced));
      ("n_refined", Json.Int (count class_refined));
      ("latency", latency_json (lats_of class_is_ok));
      ("tiers", Json.List (List.map tier_json [ 1; 2; 3 ]));
    ]

let validate_serve_load (j : Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need name extract j =
    match Option.bind (Json.member name j) extract with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let* schema = need "schema" Json.to_string_opt j in
  let* () =
    if String.equal schema serve_load_schema_version then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* _ = need "version" Json.to_string_opt j in
  let* _ = need "estimator" Json.to_string_opt j in
  let* endpoints = need "endpoints" Json.to_list_opt j in
  let* () =
    if
      endpoints <> []
      && List.for_all
           (fun e -> Option.is_some (Json.to_string_opt e))
           endpoints
    then Ok ()
    else Error "endpoints must be a non-empty list of strings"
  in
  let* _ = need "concurrency" Json.to_int_opt j in
  let* _ = need "duration" Json.to_float_opt j in
  let* _ = need "elapsed" Json.to_float_opt j in
  let* benchmarks = need "benchmarks" Json.to_list_opt j in
  let* () =
    if List.for_all (fun b -> Option.is_some (Json.to_string_opt b)) benchmarks
    then Ok ()
    else Error "benchmarks must be a list of strings"
  in
  let* n_requests = need "n_requests" Json.to_int_opt j in
  let* n_ok = need "n_ok" Json.to_int_opt j in
  let* _ = need "throughput_rps" Json.to_float_opt j in
  let* _ = need "n_transport_errors" Json.to_int_opt j in
  let* n_proto = need "n_protocol_errors" Json.to_int_opt j in
  let* n_busy = need "n_busy" Json.to_int_opt j in
  let* n_coalesced = need "n_coalesced" Json.to_int_opt j in
  let* n_refined = need "n_refined" Json.to_int_opt j in
  let* () =
    if n_requests = n_ok + n_busy + n_proto then Ok ()
    else Error "n_requests disagrees with n_ok + n_busy + n_protocol_errors"
  in
  let* () =
    if n_coalesced <= n_ok && n_refined <= n_ok then Ok ()
    else Error "coalesced/refined counts exceed n_ok"
  in
  (* One latency block: counts plus monotone percentiles — a report
     whose p50 exceeds its p95 (or p95 its p99) is internally
     inconsistent however it was produced. *)
  let check_latency ctx l =
    let* n = need "n" Json.to_int_opt l in
    let* _ = need "mean" Json.to_float_opt l in
    let* p50 = need "p50" Json.to_float_opt l in
    let* p95 = need "p95" Json.to_float_opt l in
    let* p99 = need "p99" Json.to_float_opt l in
    if n < 0 then Error (ctx ^ ": negative sample count")
    else if not (p50 <= p95 && p95 <= p99) then
      Error
        (Printf.sprintf "%s: percentiles not monotone (p50 %g, p95 %g, p99 %g)"
           ctx p50 p95 p99)
    else Ok ()
  in
  let* latency = need "latency" Option.some j in
  let* () = check_latency "latency" latency in
  let* tiers = need "tiers" Json.to_list_opt j in
  let* tier_total =
    List.fold_left
      (fun acc t ->
        let* total = acc in
        let* tier = need "tier" Json.to_int_opt t in
        let* () = check_latency (Printf.sprintf "tier %d" tier) t in
        let* n = need "n" Json.to_int_opt t in
        Ok (total + n))
      (Ok 0) tiers
  in
  if tier_total = n_ok then Ok ()
  else Error "per-tier sample counts disagree with n_ok"

(* ------------------------------------------------------------------ *)
(* Lift report                                                         *)
(* ------------------------------------------------------------------ *)

let lift_schema_version = "stenso.lift/1"

type lift_entry = {
  lift_name : string;
  lifted : bool;
  lifted_program : string;
  optimized_program : string;
  lift_improved : bool;
  sketches : int;
  pruned_by_value : int;
  certified : int;
  library_size : int;
  lift_s : float;
  lift_verify_s : float;
  lift_speedup : float option;
}

let lift_entry_json (e : lift_entry) =
  Json.Obj
    ([
       ("name", Json.Str e.lift_name);
       ("lifted", Json.Bool e.lifted);
       ("program", Json.Str e.lifted_program);
       ("optimized", Json.Str e.optimized_program);
       ("improved", Json.Bool e.lift_improved);
       ("sketches", Json.Int e.sketches);
       ("pruned_by_value", Json.Int e.pruned_by_value);
       ("certified", Json.Int e.certified);
       ("library", Json.Int e.library_size);
       ("lift_ms", Json.Float (1000. *. e.lift_s));
       ("verify_ms", Json.Float (1000. *. e.lift_verify_s));
     ]
    @
    match e.lift_speedup with
    | None -> []
    | Some s -> [ ("speedup", Json.Float s) ])

let lift_report ?(config = Stenso.Config.default) ~elapsed entries : Json.t =
  let n = List.length entries in
  let n_lifted = List.length (List.filter (fun e -> e.lifted) entries) in
  let rate =
    if n = 0 then 0. else float_of_int n_lifted /. float_of_int n
  in
  Json.Obj
    [
      ("schema", Json.Str lift_schema_version);
      ("version", Json.Str Stenso.Version.current);
      ( "estimator",
        Json.Str
          (Stenso.Config.estimator_name (Stenso.Config.estimator config)) );
      ("elapsed", Json.Float elapsed);
      ("n_kernels", Json.Int n);
      ("n_lifted", Json.Int n_lifted);
      ("success_rate", Json.Float rate);
      ("kernels", Json.List (List.map lift_entry_json entries));
    ]

let validate_lift_report ?min_success (j : Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need name extract j =
    match Option.bind (Json.member name j) extract with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let* schema = need "schema" Json.to_string_opt j in
  let* () =
    if String.equal schema lift_schema_version then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* _ = need "version" Json.to_string_opt j in
  let* _ = need "estimator" Json.to_string_opt j in
  let* _ = need "elapsed" Json.to_float_opt j in
  let* n = need "n_kernels" Json.to_int_opt j in
  let* n_lifted = need "n_lifted" Json.to_int_opt j in
  let* rate = need "success_rate" Json.to_float_opt j in
  let* kernels = need "kernels" Json.to_list_opt j in
  let* () =
    if List.length kernels = n then Ok ()
    else Error "n_kernels disagrees with the kernels array"
  in
  let* counted =
    List.fold_left
      (fun acc k ->
        let* lifted_so_far = acc in
        let* name = need "name" Json.to_string_opt k in
        let* lifted = need "lifted" Json.to_bool_opt k in
        let* program = need "program" Json.to_string_opt k in
        let* _ = need "optimized" Json.to_string_opt k in
        let* _ = need "improved" Json.to_bool_opt k in
        let* _ = need "sketches" Json.to_int_opt k in
        let* _ = need "pruned_by_value" Json.to_int_opt k in
        let* certified = need "certified" Json.to_int_opt k in
        let* _ = need "library" Json.to_int_opt k in
        let* _ = need "lift_ms" Json.to_float_opt k in
        let* _ = need "verify_ms" Json.to_float_opt k in
        let* () =
          (* A lifted entry must carry the certified program; a failed
             one must not pretend to. *)
          if lifted && (String.equal program "" || certified < 1) then
            Error
              (Printf.sprintf
                 "kernel %S claims a lift without a certified program" name)
          else if (not lifted) && not (String.equal program "") then
            Error (Printf.sprintf "kernel %S failed but carries a program" name)
          else Ok ()
        in
        Ok (lifted_so_far + if lifted then 1 else 0))
      (Ok 0) kernels
  in
  let* () =
    if counted = n_lifted then Ok ()
    else Error "n_lifted disagrees with the kernels array"
  in
  let* () =
    let expect = if n = 0 then 0. else float_of_int n_lifted /. float_of_int n in
    if Float.abs (rate -. expect) <= 1e-9 then Ok ()
    else Error "success_rate disagrees with n_lifted / n_kernels"
  in
  match min_success with
  | Some floor when rate < floor ->
      Error
        (Printf.sprintf "success_rate %.3f below required minimum %.3f" rate
           floor)
  | _ -> Ok ()
