(** Bundled scalar loop-nest kernels for the lifting front-end: the
    [lifted] benchmark tier's ground-truth sources.  Each kernel's
    [name] matches a {!Benchmarks.lifted} entry whose [program] /
    [expected_opt] record the DSL forms the lift is expected to reach
    (used as test oracles, and at [perf_env] shapes for the bench's
    end-to-end speedup measurement). *)

type t = {
  name : string;  (** matches the {!Benchmarks.lifted} entry *)
  description : string;
  source : string;  (** small-shape kernel, used for lifting *)
  perf_source : string;  (** large-shape variant, used for speedups *)
}

val all : t list
(** The eight bundled kernels: dot, saxpy, row-sum, matmul, normalize,
    max-pool, softmax, MSE. *)

val find_opt : string -> t option

val negative : string
(** A prefix-sum kernel with a loop-carried dependency — inexpressible
    in the DSL, so lifting must fail cleanly.  Test fixture. *)
