(** Suite-scale superoptimization: run many benchmarks concurrently on a
    bounded pool of domains.

    Each benchmark is synthesized by a single-domain search (so [jobs]
    bounds the process's total concurrency) that honours the configured
    per-benchmark timeout internally — a timing-out benchmark only
    occupies its own worker and cannot stall the rest of the run.
    Results come back in benchmark order and, for a deterministic
    estimator such as [`Flops], are byte-identical for any [jobs]. *)

type bench_result = {
  bench : Benchmarks.t;
  outcome : Stenso.Superopt.outcome;
  elapsed : float;  (** wall-clock seconds for this benchmark *)
}

type t = {
  results : bench_result list;  (** in input benchmark order *)
  elapsed : float;  (** wall clock for the whole run *)
}

val run :
  ?config:Stenso.Config.t ->
  ?model:Cost.Model.t ->
  ?jobs:int ->
  ?on_result:(bench_result -> unit) ->
  Benchmarks.t list ->
  t
(** [run benches] superoptimizes every benchmark at its synthesis
    shapes.  [jobs] (default 1) sizes the benchmark pool; the search
    config's own [jobs] field is overridden to 1 inside the pool.
    [model] defaults to [Config.model config] built once and shared —
    the measured estimator's profiling table is domain-safe.
    [on_result] is invoked as each benchmark finishes (serialized by a
    mutex; ordering follows completion, not input order). *)
