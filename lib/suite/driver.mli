(** Suite-scale superoptimization: run many benchmarks concurrently on a
    bounded pool of domains.

    Each benchmark is synthesized by a single-domain search (so [jobs]
    bounds the process's total concurrency) that honours the configured
    per-benchmark timeout internally — a timing-out benchmark only
    occupies its own worker and cannot stall the rest of the run.
    Results come back in benchmark order and, for a deterministic
    estimator such as [`Flops], are byte-identical for any [jobs].

    With [trace] each benchmark records into its own telemetry sink, and
    {!report} renders the whole run as a schema-stable JSON document
    ([stenso.suite-report/1]) — the format the repository's
    [BENCH_*.json] performance trajectory is archived in. *)

type bench_result = {
  bench : Benchmarks.t;
  outcome : Stenso.Superopt.outcome;
  elapsed : float;  (** wall-clock seconds for this benchmark *)
  tel : Stenso.Telemetry.t;
      (** this benchmark's telemetry sink; {!Stenso.Telemetry.null}
          unless the run was traced *)
}

type t = {
  results : bench_result list;  (** in input benchmark order *)
  elapsed : float;  (** wall clock for the whole run *)
}

val run :
  ?config:Stenso.Config.t ->
  ?model:Cost.Model.t ->
  ?store:Stenso.Store.t ->
  ?jobs:int ->
  ?trace:bool ->
  ?on_result:(bench_result -> unit) ->
  Benchmarks.t list ->
  t
(** [run benches] superoptimizes every benchmark at its synthesis
    shapes.  [jobs] (default 1) sizes the benchmark pool; the search
    config's own [jobs] field is overridden to 1 inside the pool.
    [model] defaults to [Config.model config] built once and shared —
    the measured estimator's profiling table is domain-safe.  [store]
    serves benchmarks cache-first from the persistent synthesis store
    and records fresh outcomes into it ({!Stenso.Superopt.optimize}).
    Benchmarks sharing an input environment share one enumerated stub
    library per run regardless.  [trace] (default false) gives each
    benchmark a fresh recording sink (search counters, phase spans,
    bound trajectory) on its result.  [on_result] is invoked as each
    benchmark finishes (serialized by a mutex; ordering follows
    completion, not input order). *)

val schema_version : string
(** ["stenso.suite-report/1"]. *)

val report : ?config:Stenso.Config.t -> t -> Stenso.Telemetry.Json.t
(** Render a run as the suite-report document: run metadata (schema,
    estimator, jobs, timeout, wall clock) and one record per benchmark —
    name, source, class, costs before/after, speedup, synthesis time,
    both programs, the search statistics, and the branch-and-bound bound
    trajectory ([(seconds, bound)] pairs; empty when the run was not
    traced).  [config] supplies the metadata and should be the one the
    run used. *)

val validate_report : Stenso.Telemetry.Json.t -> (unit, string) result
(** Check that a JSON document structurally conforms to
    [stenso.suite-report/1]: every schema field present with the right
    kind.  Used by [stenso report] and the CI harness to keep archived
    [BENCH_*.json] files comparable over time. *)

val exec_bench_schema_version : string
(** ["stenso.exec-bench/1"], the interp-vs-VM microbenchmark archive
    written by [bench vm --report]. *)

val validate_exec_bench :
  ?min_speedup:float -> Stenso.Telemetry.Json.t -> (unit, string) result
(** Check that a JSON document conforms to [stenso.exec-bench/1].  With
    [min_speedup] this is also a performance gate: any benchmark whose
    VM speedup over the interpreter falls below the floor fails, as does
    any [expects_fused_reduction] benchmark with [ops_fused] = 0 (a
    planner fusion regression).  Used by [stenso report --min-speedup]
    and the CI exec-bench smoke check on [BENCH_exec_vm.json]. *)

val tiers_schema_version : string
(** ["stenso.tiers/1"], the tiered-serving comparison archive written
    by [stenso suite --tiers-report]. *)

val tiers_report :
  ?config:Stenso.Config.t -> baseline:t -> cold:t -> warm:t -> unit ->
  Stenso.Telemetry.Json.t
(** Render a tiered-serving comparison over three runs of the {e same}
    benchmarks: [baseline] (full search, no store), [cold] (tiered
    against a pre-mined rule database with an empty outcome store) and
    [warm] (the same requests again, now also hitting the outcome
    store).  Reports per-pass tier counts, the fraction of requests
    answered without entering the search ([tier12_fraction]),
    end-to-end speedups over the baseline, and — honesty check — the
    number of benchmarks whose cold-pass final cost differs from the
    baseline's ([n_cost_mismatches]). *)

val validate_tiers_report : Stenso.Telemetry.Json.t -> (unit, string) result
(** Structural conformance check for [stenso.tiers/1], used by
    [stenso report] and the CI harness on [BENCH_tiers.json]. *)

val mlsuite_schema_version : string
(** ["stenso.mlsuite/1"], the ML-kernel workload archive written by
    [bench mlsuite --report] ([BENCH_mlsuite.json]): one exec point
    (interp-vs-VM per kernel, [stenso.exec-bench/1]) and one tiers
    point ([stenso.tiers/1]) over the {!Benchmarks.ml} tier. *)

val mlsuite_report :
  exec:Stenso.Telemetry.Json.t ->
  tiers:Stenso.Telemetry.Json.t ->
  unit ->
  Stenso.Telemetry.Json.t
(** Compose the two archived points into one [stenso.mlsuite/1]
    document.  The components must already conform to their own
    schemas; {!validate_mlsuite} checks both. *)

val validate_mlsuite :
  ?min_speedup:float -> Stenso.Telemetry.Json.t -> (unit, string) result
(** Conformance check for [stenso.mlsuite/1], delegating to
    {!validate_exec_bench} (with [min_speedup] as the per-kernel VM
    speedup floor) and {!validate_tiers_report} on the embedded
    documents.  Used by [stenso report] and the CI ML-suite smoke on
    [BENCH_mlsuite.json]. *)

val serve_load_schema_version : string
(** ["stenso.serve-load/1"], the serving-throughput archive written by
    [stenso loadgen --report] ([BENCH_serve_load.json]). *)

val classify_serve_response : string -> int
(** Map one [stenso.serve/1] response line to the load generator's
    integer response class: successful responses encode
    [tier + 10·coalesced + 20·refined] (tiers 1–3), a shed response is
    its own class, and anything unparseable — or [ok:false] for any
    other reason — counts as a protocol error.  Pass as the [classify]
    callback of {!Stenso.Net.Loadgen.run}. *)

val serve_load_report :
  ?config:Stenso.Config.t ->
  endpoints:string list ->
  concurrency:int ->
  duration:float ->
  benchmarks:string list ->
  Stenso.Net.Loadgen.stats ->
  Stenso.Telemetry.Json.t
(** Render one load-generation run as the serve-load document: run
    parameters (endpoints, concurrency, requested duration, programs
    replayed), totals (requests, ok / busy / protocol-error / transport
    splits, coalesced and refined counts, ok-throughput in requests per
    second) and nearest-rank latency percentiles — overall and split by
    serving tier. *)

val validate_serve_load : Stenso.Telemetry.Json.t -> (unit, string) result
(** Conformance check for [stenso.serve-load/1]: structure, count
    consistency ([n_requests] = ok + busy + protocol errors; per-tier
    sample counts summing to [n_ok]) and percentile monotonicity
    (p50 ≤ p95 ≤ p99, overall and per tier).  Used by [stenso report]
    and the CI loadgen smoke on [BENCH_serve_load.json]. *)

val lift_schema_version : string
(** ["stenso.lift/1"] — the lifting report written by
    [bench lift --report] / [stenso lift --report]
    ([BENCH_lift.json]). *)

type lift_entry = {
  lift_name : string;  (** kernel name ({!Lifted} / CLI file stem) *)
  lifted : bool;
  lifted_program : string;  (** certified DSL program; [""] on failure *)
  optimized_program : string;  (** after {!Stenso.Superopt.optimize} *)
  lift_improved : bool;  (** superoptimizer found a cheaper form *)
  sketches : int;
  pruned_by_value : int;
  certified : int;  (** candidates submitted to certification *)
  library_size : int;
  lift_s : float;
  lift_verify_s : float;
  lift_speedup : float option;
      (** large-shape scalar-loop-interpreter time over VM time for the
          lifted-and-optimized program; absent when not measured *)
}

val lift_report :
  ?config:Stenso.Config.t ->
  elapsed:float ->
  lift_entry list ->
  Stenso.Telemetry.Json.t
(** Render lifting results as the [stenso.lift/1] document: run
    metadata, [n_kernels] / [n_lifted] / [success_rate], and one
    record per kernel (sketch, pruning and certification counters,
    lift and verify times, optional end-to-end speedup). *)

val validate_lift_report :
  ?min_success:float ->
  Stenso.Telemetry.Json.t ->
  (unit, string) result
(** Conformance check for [stenso.lift/1]: structure, count
    consistency ([n_lifted] and [success_rate] agreeing with the
    kernels array, lifted entries carrying a certified program and
    failed ones none), and optionally a [success_rate] floor.  Used by
    [stenso report] and the CI lifting smoke on [BENCH_lift.json]. *)
