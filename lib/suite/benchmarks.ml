type klass =
  | Algebraic_simplification
  | Identity_replacement
  | Redundancy_elimination
  | Strength_reduction
  | Vectorization

let klass_name = function
  | Algebraic_simplification -> "Algebraic Simplification"
  | Identity_replacement -> "Identity Replacement"
  | Redundancy_elimination -> "Redundancy Elimination"
  | Strength_reduction -> "Strength Reduction"
  | Vectorization -> "Vectorization"

let all_klasses =
  [
    Algebraic_simplification;
    Identity_replacement;
    Redundancy_elimination;
    Strength_reduction;
    Vectorization;
  ]

type t = {
  name : string;
  source : [ `Github | `Synthetic ];
  domain : string;
  pattern : string;
  klass : klass;
  env : Dsl.Types.env;
  perf_env : Dsl.Types.env;
  program : Dsl.Ast.t;
  expected_opt : Dsl.Ast.t;
  perf_program : Dsl.Ast.t;
  perf_expected_opt : Dsl.Ast.t;
}

(* [mk name klass ~domain ~pattern ~small ~big ~orig ~opt] builds a
   benchmark from surface syntax.  [small] and [big] are input
   declaration blocks (same names, different shapes). *)
let mk ?orig_big ?opt_big name source klass ~domain ~pattern ~small ~big ~orig ~opt =
  let parse_env decls =
    let env, _ = Dsl.Parser.program (decls ^ "\nreturn 0") in
    env
  in
  let env = parse_env small in
  let perf_env = parse_env big in
  let program = Dsl.Parser.expression orig in
  let expected_opt = Dsl.Parser.expression opt in
  let perf_program =
    match orig_big with
    | None -> program
    | Some src -> Dsl.Parser.expression src
  in
  let perf_expected_opt =
    match opt_big with
    | None -> expected_opt
    | Some src -> Dsl.Parser.expression src
  in
  (* Validate all programs against their environments at build time so a
     malformed table entry fails fast. *)
  ignore (Dsl.Types.infer env program);
  ignore (Dsl.Types.infer env expected_opt);
  ignore (Dsl.Types.infer perf_env perf_program);
  ignore (Dsl.Types.infer perf_env perf_expected_opt);
  {
    name;
    source;
    domain;
    pattern;
    klass;
    env;
    perf_env;
    program;
    expected_opt;
    perf_program;
    perf_expected_opt;
  }

let gh = `Github
let sy = `Synthetic

let github =
  [
    mk "diag_dot" gh Identity_replacement ~domain:"Astrophysics"
      ~pattern:"Calculates Gaussian variance reduction."
      ~small:"input A : f32[3,4]\ninput B : f32[4,3]"
      ~big:"input A : f32[160,192]\ninput B : f32[192,160]"
      ~orig:"np.diag(np.dot(A, B))"
      ~opt:"np.sum(np.multiply(A, B.T), axis=1)";
    mk "elem_square" gh Strength_reduction ~domain:"AI/ML"
      ~pattern:"Calculates differences for L2 norm."
      ~small:"input A : f32[3,3]" ~big:"input A : f32[768,768]"
      ~orig:"np.power(A, 2)" ~opt:"np.multiply(A, A)";
    mk "log_exp_1" gh Algebraic_simplification ~domain:"AI/ML"
      ~pattern:"Adds two Gaussian probability densities."
      ~small:"input A : f32[3,3]\ninput B : f32[3,3]"
      ~big:"input A : f32[768,768]\ninput B : f32[768,768]"
      ~orig:"np.exp(np.log(A + B))" ~opt:"np.add(A, B)";
    mk "log_exp_2" gh Identity_replacement ~domain:"Statistical Computing"
      ~pattern:"Builds up a constraint Gaussian."
      ~small:"input A : f32[3,3]\ninput B : f32[3,3]"
      ~big:"input A : f32[768,768]\ninput B : f32[768,768]"
      ~orig:"np.exp(np.log(A) - np.log(B))" ~opt:"np.divide(A, B)";
    mk "mat_vec_prod" gh Strength_reduction ~domain:"Optimization Algorithms"
      ~pattern:"Computes total profit for items."
      ~small:"input A : f32[3,4]\ninput x : f32[4]"
      ~big:"input A : f32[640,512]\ninput x : f32[512]"
      ~orig:"np.sum(A * x, axis=1)" ~opt:"np.dot(A, x)";
    mk "dot_trans" gh Redundancy_elimination ~domain:"Biomechanics"
      ~pattern:"Calculates rotation matrix for alignment."
      ~small:"input A : f32[3,4]\ninput x : f32[5,3]"
      ~big:"input A : f32[256,384]\ninput x : f32[320,256]"
      ~orig:"np.dot(A.T, x.T)" ~opt:"np.transpose(np.dot(x, A))";
    mk "scalar_sum" gh Identity_replacement ~domain:"Environmental Science"
      ~pattern:"Calculates a weighted statistical moment."
      ~small:"input A : f32[4,3]\ninput x : f32[3]"
      ~big:"input A : f32[640,512]\ninput x : f32[512]"
      ~orig:"np.sum(A * x, axis=0)" ~opt:"np.multiply(np.sum(A, axis=0), x)";
    mk "vec_lerp" gh Vectorization ~domain:"Computer Graphics"
      ~pattern:"Creates a color gradient from distance."
      ~small:"input x : f32[3]\ninput y : f32[3]\ninput A : f32[4,1]"
      ~big:"input x : f32[2048]\ninput y : f32[2048]\ninput A : f32[144,1]"
      ~orig:"np.stack([x*a + (1 - a)*y for a in A])"
      ~opt:"A*x + (1 - A)*y";
    mk "euclidian_dist" gh Strength_reduction ~domain:"Scientific Computing"
      ~pattern:"Calculates Euclidean distance of matrix."
      ~small:"input A : f32[3,4]" ~big:"input A : f32[768,512]"
      ~orig:"np.sum(np.power(A, 2), axis=-1)"
      ~opt:"np.sum(np.multiply(A, A), axis=-1)";
    mk "common_factor" gh Algebraic_simplification ~domain:"Augmented Reality"
      ~pattern:"Combines vectors for smoothing."
      ~small:"input A : f32[3,3]\ninput B : f32[3,3]\ninput C : f32[3,3]"
      ~big:
        "input A : f32[640,640]\ninput B : f32[640,640]\ninput C : f32[640,640]"
      ~orig:"A * B + C * B" ~opt:"np.multiply(np.add(A, C), B)";
    mk "inner_prod" gh Strength_reduction ~domain:"Physics"
      ~pattern:"Calculates weighted average ion charge."
      ~small:"input a : f32[4]\ninput b : f32[4]"
      ~big:"input a : f32[262144]\ninput b : f32[262144]"
      ~orig:"np.sum(np.multiply(a, b))" ~opt:"np.dot(a, b)";
    mk "scale_dot" gh Identity_replacement ~domain:"Benchmarking"
      ~pattern:"Computes matrix product with scaling."
      ~small:"input a : f32[]\ninput A : f32[3,4]\ninput B : f32[4,3]"
      ~big:"input a : f32[]\ninput A : f32[256,320]\ninput B : f32[320,256]"
      ~orig:"np.dot(a * A, B)" ~opt:"np.multiply(a, np.dot(A, B))";
    mk "reshape_dot" gh Redundancy_elimination ~domain:"Benchmarking"
      ~orig_big:
        "np.reshape(np.dot(np.reshape(A, (48, 48, 1, 64)), B), (48, 48, 64))"
      ~pattern:"Kernel of a scientific simulation."
      ~small:"input A : f32[2,2,3]\ninput B : f32[3,3]"
      ~big:"input A : f32[48,48,64]\ninput B : f32[64,64]"
      ~orig:"np.reshape(np.dot(np.reshape(A, (2, 2, 1, 3)), B), (2, 2, 3))"
      ~opt:"np.dot(A, B)";
    mk "dot_trans_2" gh Redundancy_elimination ~domain:"Physics Simulation"
      ~pattern:"Double transpose of a matrix."
      ~small:"input A : f32[3,4]" ~big:"input A : f32[768,768]"
      ~orig:"np.transpose(np.transpose(A))" ~opt:"A";
    mk "power_neg" gh Strength_reduction ~domain:"AI/ML"
      ~pattern:"Element-wise inverse of a matrix."
      ~small:"input A : f32[3,3]" ~big:"input A : f32[768,768]"
      ~orig:"np.power(A, -1)" ~opt:"np.divide(1, A)";
    mk "sum_sum" gh Redundancy_elimination ~domain:"AI/ML"
      ~pattern:"Sums a matrix over two axes."
      ~small:"input A : f32[3,4]" ~big:"input A : f32[768,768]"
      ~orig:"np.sum(np.sum(A, axis=0), axis=0)" ~opt:"np.sum(A)";
    mk "sum_stack" gh Identity_replacement ~domain:"Computational Biology"
      ~pattern:"Stacks and sums multiple matrices."
      ~small:"input A : f32[3,3]\ninput B : f32[3,3]\ninput C : f32[3,3]"
      ~big:
        "input A : f32[512,512]\ninput B : f32[512,512]\ninput C : f32[512,512]"
      ~orig:"np.sum(np.stack([A, B, C]), axis=0)"
      ~opt:"np.add(np.add(A, B), C)";
    mk "sum_diag_dot" gh Identity_replacement ~domain:"Audio Processing"
      ~pattern:"Calculates trace of a dot product."
      ~small:"input A : f32[3,4]\ninput B : f32[4,3]"
      ~big:"input A : f32[160,192]\ninput B : f32[192,160]"
      ~orig:"np.sum(np.diag(np.dot(A, B)))"
      ~opt:"np.sum(np.multiply(A, B.T))";
    mk "max_stack" gh Identity_replacement ~domain:"Computational Biology"
      ~pattern:"Stacks and finds element-wise max."
      ~small:"input A : f32[3,3]\ninput B : f32[3,3]"
      ~big:"input A : f32[640,640]\ninput B : f32[640,640]"
      ~orig:"np.max(np.stack([A, B]), axis=0)" ~opt:"np.maximum(A, B)";
    mk "trace_dot" gh Identity_replacement ~domain:"Computer Graphics"
      ~pattern:"Calculates trace of a matrix product."
      ~small:"input A : f32[3,4]\ninput B : f32[3,4]"
      ~big:"input A : f32[160,192]\ninput B : f32[160,192]"
      ~orig:"np.trace(A @ B.T)" ~opt:"np.sum(np.multiply(A, B))";
    mk "reorder_dot" gh Redundancy_elimination ~domain:"Network Simulation"
      ~pattern:"Computes the quadratic form x^T A x."
      ~small:"input x : f32[4,1]\ninput A : f32[4,4]"
      ~big:"input x : f32[640,1]\ninput A : f32[640,640]"
      ~orig:"x.T @ A @ x"
      ~opt:"np.tensordot(x, np.dot(A, x), ([0], [0]))";
  ]

let synth ?orig_big name klass ~small ~big ~orig ~opt =
  mk ?orig_big name sy klass ~domain:"-" ~pattern:"Synthetic expression."
    ~small ~big ~orig ~opt

let mat2 = "input A : f32[3,3]\ninput B : f32[3,3]"
let mat2_big = "input A : f32[640,640]\ninput B : f32[640,640]"
let mat1 = "input A : f32[3,3]"
let mat1_big = "input A : f32[768,768]"

let synthetic =
  [
    synth "synth_1" Algebraic_simplification ~small:mat2 ~big:mat2_big
      ~orig:"(A * B) + 3 * (A * B)" ~opt:"np.multiply(4, np.multiply(A, B))";
    synth "synth_2" Algebraic_simplification ~small:mat2 ~big:mat2_big
      ~orig:"A + B - A - A + B * B - B"
      ~opt:"np.subtract(np.multiply(B, B), A)";
    synth "synth_3" Algebraic_simplification ~small:mat2 ~big:mat2_big
      ~orig:"(A + B) / np.sqrt(A + B)" ~opt:"np.sqrt(np.add(A, B))";
    synth "synth_4" Algebraic_simplification ~small:mat2 ~big:mat2_big
      ~orig:"A + A + B - A - A - B * B"
      ~opt:"np.subtract(B, np.multiply(B, B))";
    synth "synth_5" Algebraic_simplification
      ~small:"input a : f32[]\ninput B : f32[3,3]"
      ~big:"input a : f32[]\ninput B : f32[768,768]"
      ~orig:"np.power(np.sqrt(a), 4) + 2 * B"
      ~opt:"np.add(np.multiply(a, a), np.multiply(2, B))";
    synth "synth_6" Algebraic_simplification ~small:mat1 ~big:mat1_big
      ~orig:"np.power(np.sqrt(A) + np.sqrt(A), 2)" ~opt:"np.multiply(4, A)";
    synth "synth_7" Strength_reduction ~small:mat1 ~big:mat1_big
      ~orig:"np.power(A, 6) / np.power(A, 4)" ~opt:"np.multiply(A, A)";
    synth "synth_8" Algebraic_simplification ~small:mat2 ~big:mat2_big
      ~orig:"A * B + A * B" ~opt:"np.multiply(2, np.multiply(A, B))";
    synth "synth_9" Identity_replacement
      ~small:"input A : f32[3,4]\ninput x : f32[4]"
      ~big:"input A : f32[640,512]\ninput x : f32[512]"
      ~orig:"np.sum(np.sum(A * x, axis=0))"
      ~opt:"np.dot(np.sum(A, axis=0), x)";
    synth "synth_10" Vectorization ~small:"input A : f32[4,3]"
      ~big:"input A : f32[96,2048]"
      ~orig:"np.stack([x * 2 for x in A], axis=0)" ~opt:"np.multiply(2, A)";
    synth "synth_11" Strength_reduction ~small:mat1 ~big:mat1_big
      ~orig:"A * A * A * A * A" ~opt:"np.power(A, 5)";
    synth "synth_12" Strength_reduction ~small:mat1 ~big:mat1_big
      ~orig:"A + A + A + A + A" ~opt:"np.multiply(5, A)";
  ]

let masking =
  [
    mk "where_max" gh Identity_replacement ~domain:"Signal Processing"
      ~pattern:"Selects the larger of two envelopes."
      ~small:"input A : f32[3,3]\ninput B : f32[3,3]"
      ~big:"input A : f32[640,640]\ninput B : f32[640,640]"
      ~orig:"np.where(np.less(A, B), B, A)" ~opt:"np.maximum(A, B)";
    mk "triu_add" gh Redundancy_elimination ~domain:"Numerical Linear Algebra"
      ~pattern:"Accumulates two upper-triangular factors."
      ~small:"input A : f32[3,3]\ninput B : f32[3,3]"
      ~big:"input A : f32[640,640]\ninput B : f32[640,640]"
      ~orig:"np.triu(A) + np.triu(B)" ~opt:"np.triu(np.add(A, B))";
    mk "triu_idem" gh Redundancy_elimination ~domain:"Numerical Linear Algebra"
      ~pattern:"Re-masks an already triangular matrix."
      ~small:"input A : f32[3,3]" ~big:"input A : f32[768,768]"
      ~orig:"np.triu(np.triu(A))" ~opt:"np.triu(A)";
    mk "masked_square" gh Strength_reduction ~domain:"Statistics"
      ~pattern:"Squares the upper triangle of a covariance."
      ~small:"input A : f32[3,3]" ~big:"input A : f32[768,768]"
      ~orig:"np.triu(np.power(A, 2))" ~opt:"np.triu(np.multiply(A, A))";
    mk "where_same" gh Redundancy_elimination ~domain:"Data Cleaning"
      ~pattern:"Branches to identical values."
      ~small:"input A : f32[3,3]\ninput B : f32[3,3]\ninput C : f32[3,3]"
      ~big:
        "input A : f32[640,640]\ninput B : f32[640,640]\ninput C : f32[640,640]"
      ~orig:"np.where(np.less(A, B), C, C)" ~opt:"C";
    mk "log_mask" gh Algebraic_simplification ~domain:"Statistics"
      ~pattern:"Round-trips a masked density."
      ~small:"input A : f32[3,3]" ~big:"input A : f32[768,768]"
      ~orig:"np.tril(np.exp(np.log(A)))" ~opt:"np.tril(A)";
  ]

let ml =
  [
    mk "softmax_vec" gh Redundancy_elimination ~domain:"AI/ML"
      ~pattern:"Numerically-stable softmax over a logit vector."
      ~small:"input x : f32[4]" ~big:"input x : f32[262144]"
      ~orig:"np.exp(x - np.max(x)) / np.sum(np.exp(x - np.max(x)))"
      ~opt:"np.exp(x) / np.sum(np.exp(x))";
    mk "softmax_stable" gh Redundancy_elimination ~domain:"AI/ML"
      ~pattern:"Row-wise stable softmax of a logit matrix."
      ~small:"input A : f32[2,3]" ~big:"input A : f32[512,512]"
      ~orig:
        "np.exp(A - np.max(A, axis=1, keepdims=True)) / np.sum(np.exp(A - \
         np.max(A, axis=1, keepdims=True)), axis=1, keepdims=True)"
      ~opt:"np.exp(A) / np.sum(np.exp(A), axis=1, keepdims=True)";
    mk "logsumexp" gh Algebraic_simplification ~domain:"AI/ML"
      ~pattern:"Max-shifted log-sum-exp of a score vector."
      ~small:"input x : f32[4]" ~big:"input x : f32[262144]"
      ~orig:"np.max(x) + np.log(np.sum(np.exp(x - np.max(x))))"
      ~opt:"np.log(np.sum(np.exp(x)))";
    mk "layernorm" gh Algebraic_simplification ~domain:"AI/ML"
      ~pattern:"Two-pass layer normalization over the feature axis."
      ~small:"input X : f32[32]" ~big:"input X : f32[65536]"
      ~orig:
        "(np.reshape(X, (4, 8)) - np.sum(np.reshape(X, (4, 8)), axis=1, \
         keepdims=True) / 8.0) / np.sqrt(np.sum((np.reshape(X, (4, 8)) - \
         np.sum(np.reshape(X, (4, 8)), axis=1, keepdims=True) / 8.0) * \
         (np.reshape(X, (4, 8)) - np.sum(np.reshape(X, (4, 8)), axis=1, \
         keepdims=True) / 8.0), axis=1, keepdims=True) / 8.0 + 0.00001)"
      ~opt:
        "(np.reshape(X, (4, 8)) - np.sum(np.reshape(X, (4, 8)), axis=1, \
         keepdims=True) / 8.0) / np.sqrt(np.sum(np.reshape(X, (4, 8)) * \
         np.reshape(X, (4, 8)), axis=1, keepdims=True) / 8.0 - \
         (np.sum(np.reshape(X, (4, 8)), axis=1, keepdims=True) / 8.0) * \
         (np.sum(np.reshape(X, (4, 8)), axis=1, keepdims=True) / 8.0) + \
         0.00001)"
      ~orig_big:
        "(np.reshape(X, (512, 128)) - np.sum(np.reshape(X, (512, 128)), \
         axis=1, keepdims=True) / 128.0) / np.sqrt(np.sum((np.reshape(X, \
         (512, 128)) - np.sum(np.reshape(X, (512, 128)), axis=1, \
         keepdims=True) / 128.0) * (np.reshape(X, (512, 128)) - \
         np.sum(np.reshape(X, (512, 128)), axis=1, keepdims=True) / 128.0), \
         axis=1, keepdims=True) / 128.0 + 0.00001)"
      ~opt_big:
        "(np.reshape(X, (512, 128)) - np.sum(np.reshape(X, (512, 128)), \
         axis=1, keepdims=True) / 128.0) / np.sqrt(np.sum(np.reshape(X, \
         (512, 128)) * np.reshape(X, (512, 128)), axis=1, keepdims=True) / \
         128.0 - (np.sum(np.reshape(X, (512, 128)), axis=1, keepdims=True) / \
         128.0) * (np.sum(np.reshape(X, (512, 128)), axis=1, keepdims=True) \
         / 128.0) + 0.00001)";
    mk "rmsnorm" gh Strength_reduction ~domain:"AI/ML"
      ~pattern:"Root-mean-square normalization of a hidden state."
      ~small:"input x : f32[8]" ~big:"input x : f32[262144]"
      ~orig:"x / np.power(np.sum(np.power(x, 2)) / 8.0 + 0.00001, 0.5)"
      ~opt:"x / np.sqrt(np.sum(x * x) / 8.0 + 0.00001)"
      ~orig_big:
        "x / np.power(np.sum(np.power(x, 2)) / 262144.0 + 0.00001, 0.5)"
      ~opt_big:"x / np.sqrt(np.sum(x * x) / 262144.0 + 0.00001)";
    mk "attn_scores" gh Redundancy_elimination ~domain:"AI/ML"
      ~pattern:"Stable softmax of scaled attention scores."
      ~small:"input Q : f32[2,4]\ninput K : f32[3,4]"
      ~big:"input Q : f32[128,64]\ninput K : f32[128,64]"
      ~orig:
        "np.exp(Q @ K.T / 8.0 - np.max(Q @ K.T / 8.0, axis=1, \
         keepdims=True)) / np.sum(np.exp(Q @ K.T / 8.0 - np.max(Q @ K.T / \
         8.0, axis=1, keepdims=True)), axis=1, keepdims=True)"
      ~opt:
        "np.exp(Q @ K.T / 8.0) / np.sum(np.exp(Q @ K.T / 8.0), axis=1, \
         keepdims=True)";
    mk "attn_mix" gh Algebraic_simplification ~domain:"AI/ML"
      ~pattern:"Normalizes attention weights before mixing values."
      ~small:"input W : f32[2,3]\ninput V : f32[3,2]"
      ~big:"input W : f32[512,512]\ninput V : f32[512,64]"
      ~orig:"np.dot(W / np.sum(W, axis=1, keepdims=True), V)"
      ~opt:"np.dot(W, V) / np.sum(W, axis=1, keepdims=True)";
    mk "gelu_tanh" gh Strength_reduction ~domain:"AI/ML"
      ~pattern:"Tanh-approximated GELU activation."
      ~small:"input x : f32[4]" ~big:"input x : f32[262144]"
      ~orig:
        "x * np.exp(2.0 * (0.7979 * (x + 0.0447 * np.power(x, 3)))) \
         / (1.0 + np.exp(2.0 * (0.7979 * (x + 0.0447 * np.power(x, \
         3)))))"
      ~opt:
        "x / (1.0 + np.exp(-2.0 * (0.7979 * (x + 0.0447 * \
         np.power(x, 3)))))";
    mk "maxpool1d" gh Algebraic_simplification ~domain:"AI/ML"
      ~pattern:"Shift-invariant sliding-window max pooling."
      ~small:"input x : f32[8]" ~big:"input x : f32[524288]"
      ~orig:"np.max(np.reshape(x, (4, 2)) - 1.0, axis=1) + 1.0"
      ~opt:"np.max(np.reshape(x, (4, 2)), axis=1)"
      ~orig_big:"np.max(np.reshape(x, (262144, 2)) - 1.0, axis=1) + 1.0"
      ~opt_big:"np.max(np.reshape(x, (262144, 2)), axis=1)";
  ]

(* The lifting tier: DSL-side ground truth for the bundled scalar
   loop kernels in [Lifted].  [program] is the form the lifting
   front-end is expected to synthesize (the test oracle for
   round-trips), [expected_opt] the superoptimized form; [perf_env] /
   [perf_expected_opt] give the large-shape program whose VM time is
   compared against the scalar loop interpreter in BENCH_lift. *)
let lifted =
  [
    mk "lift_dot" gh Vectorization ~domain:"Lifted"
      ~pattern:"Inner product accumulated over one loop."
      ~small:"input A : f32[8]\ninput B : f32[8]"
      ~big:"input A : f32[65536]\ninput B : f32[65536]"
      ~orig:"np.sum(A * B)" ~opt:"np.dot(A, B)";
    mk "lift_saxpy" gh Vectorization ~domain:"Lifted"
      ~pattern:"Scaled vector addition a*x + y."
      ~small:"input a : f32[]\ninput x : f32[8]\ninput y : f32[8]"
      ~big:"input a : f32[]\ninput x : f32[65536]\ninput y : f32[65536]"
      ~orig:"a * x + y" ~opt:"a * x + y";
    mk "lift_rowsum" gh Vectorization ~domain:"Lifted"
      ~pattern:"Row-wise sum of a matrix."
      ~small:"input A : f32[4,8]" ~big:"input A : f32[512,512]"
      ~orig:"np.sum(A, axis=1)" ~opt:"np.sum(A, axis=1)";
    mk "lift_matmul" gh Vectorization ~domain:"Lifted"
      ~pattern:"Textbook triple-loop matrix multiply."
      ~small:"input A : f32[3,4]\ninput B : f32[4,5]"
      ~big:"input A : f32[48,64]\ninput B : f32[64,56]"
      ~orig:"np.dot(A, B)" ~opt:"np.dot(A, B)";
    mk "lift_normalize" gh Vectorization ~domain:"Lifted"
      ~pattern:"Divide a vector by its own sum."
      ~small:"input x : f32[8]" ~big:"input x : f32[65536]"
      ~orig:"x / np.sum(x)" ~opt:"x / np.sum(x)";
    mk "lift_maxpool" gh Vectorization ~domain:"Lifted"
      ~pattern:"Window-2 sliding max pooling."
      ~small:"input x : f32[8]" ~big:"input x : f32[524288]"
      ~orig:"np.max(np.reshape(x, (4, 2)), axis=1)"
      ~opt:"np.max(np.reshape(x, (4, 2)), axis=1)"
      ~orig_big:"np.max(np.reshape(x, (262144, 2)), axis=1)"
      ~opt_big:"np.max(np.reshape(x, (262144, 2)), axis=1)";
    mk "lift_softmax" gh Vectorization ~domain:"Lifted"
      ~pattern:"Two-pass softmax over a vector."
      ~small:"input x : f32[8]" ~big:"input x : f32[65536]"
      ~orig:"np.exp(x) / np.sum(np.exp(x))"
      ~opt:"np.exp(x) / np.sum(np.exp(x))";
    mk "lift_mse" gh Vectorization ~domain:"Lifted"
      ~pattern:"Mean squared error between two vectors."
      ~small:"input A : f32[8]\ninput B : f32[8]"
      ~big:"input A : f32[65536]\ninput B : f32[65536]"
      ~orig:"np.sum((A - B) * (A - B)) / 8.0"
      ~opt:"np.dot(A - B, A - B) / 8.0"
      ~orig_big:"np.sum((A - B) * (A - B)) / 65536.0"
      ~opt_big:"np.dot(A - B, A - B) / 65536.0";
  ]

let all = github @ synthetic

let find name =
  List.find (fun b -> b.name = name) (all @ masking @ ml @ lifted)

let find_opt name =
  List.find_opt (fun b -> b.name = name) (all @ masking @ ml @ lifted)
