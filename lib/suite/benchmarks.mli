(** The paper's benchmark suite (Tables I and II): 21 programs sourced
    from public GitHub repositories and 12 synthetic expressions.

    Every benchmark carries two typing environments: [env] uses small
    shapes for synthesis (symbolic execution stays compact, as in the
    paper where the spec is built at the input's ranks), and [perf_env]
    uses representative large shapes for performance measurement.  The
    [klass] labels reproduce the paper's manual classification into five
    transformation classes (Fig. 6), and [expected_opt] records the
    published (or directly implied) optimized form, used as a test
    oracle and as the reference implementation in speedup benches. *)

type klass =
  | Algebraic_simplification
  | Identity_replacement
  | Redundancy_elimination
  | Strength_reduction
  | Vectorization

val klass_name : klass -> string
val all_klasses : klass list

type t = {
  name : string;
  source : [ `Github | `Synthetic ];
  domain : string;  (** application domain (Table I); "-" for synthetic *)
  pattern : string;  (** computational-pattern description *)
  klass : klass;
  env : Dsl.Types.env;  (** small shapes for synthesis *)
  perf_env : Dsl.Types.env;  (** large shapes for performance runs *)
  program : Dsl.Ast.t;  (** the original implementation *)
  expected_opt : Dsl.Ast.t;  (** reference optimized implementation *)
  perf_program : Dsl.Ast.t;
      (** the original at performance shapes (differs from [program]
          only when shape attributes are embedded, e.g. [reshape]) *)
  perf_expected_opt : Dsl.Ast.t;  (** reference optimized, perf shapes *)
}

val github : t list
val synthetic : t list

val masking : t list
(** Extension suite beyond the paper's tables: benchmarks exercising the
    grammar's masking operations ([where]/[less]/[triu]/[tril]), whose
    optimization relies on the density component of the simplification
    metric.  Not included in {!all} (the paper's 33). *)

val ml : t list
(** Extension suite of ML-kernel workloads: softmax (vector and
    row-wise stable forms), log-sum-exp, layer/RMS normalization,
    attention score and mixing pieces, tanh-approximated GELU, and
    sliding-window max pooling.  These exercise the exp/log/max
    identities (max-shift invariance, [log(exp x) = x], positive
    common-factor extraction) and keepdims-style broadcasting of
    reduced tensors.  Not included in {!all} (the paper's 33). *)

val lifted : t list
(** DSL-side ground truth for the {!Lifted} scalar loop kernels: each
    entry's [program] is the form the lifting front-end is expected to
    synthesize (round-trip test oracle) and [perf_expected_opt] the
    large-shape program whose VM time BENCH_lift compares against the
    scalar loop interpreter.  Not included in {!all}. *)

val all : t list
(** The paper's 33 benchmarks (Tables I and II). *)

val find : string -> t
(** Raises [Not_found]. *)

val find_opt : string -> t option
