(* Bundled scalar loop-nest kernels for the lifting front-end
   ([Stenso.Lift]).  Each kernel exists at two shapes, mirroring the
   [Benchmarks] convention: [source] uses small dims so lifting
   (symbolic execution of every stub) stays compact, [perf_source]
   uses representative large dims for the end-to-end speedup measure
   (scalar loop interpreter vs the VM running the lifted-and-optimized
   DSL program).  Names match the [Benchmarks.lifted] tier entries. *)

type t = {
  name : string;
  description : string;
  source : string;
  perf_source : string;
}

let mk name description source perf_source =
  { name; description; source; perf_source }

let dot n =
  Printf.sprintf
    {|kernel dot(in float A[%d], in float B[%d], out float y) {
  y = 0.0;
  for (int i = 0; i < %d; i++) {
    y += A[i] * B[i];
  }
}
|}
    n n n

let saxpy n =
  Printf.sprintf
    {|kernel saxpy(in float a, in float x[%d], in float y[%d], out float z[%d]) {
  for (int i = 0; i < %d; i++) {
    z[i] = a * x[i] + y[i];
  }
}
|}
    n n n n

let rowsum r c =
  Printf.sprintf
    {|kernel rowsum(in float A[%d][%d], out float y[%d]) {
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j < %d; j++) {
      y[i] += A[i][j];
    }
  }
}
|}
    r c r r c

let matmul m k n =
  Printf.sprintf
    {|kernel matmul(in float A[%d][%d], in float B[%d][%d], out float C[%d][%d]) {
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j < %d; j++) {
      for (int k = 0; k < %d; k++) {
        C[i][j] += A[i][k] * B[k][j];
      }
    }
  }
}
|}
    m k k n m n m n k

let normalize n =
  Printf.sprintf
    {|kernel normalize(in float x[%d], out float y[%d]) {
  float s = 0.0;
  for (int i = 0; i < %d; i++) {
    s += x[i];
  }
  for (int i = 0; i < %d; i++) {
    y[i] = x[i] / s;
  }
}
|}
    n n n n

let maxpool n =
  Printf.sprintf
    {|kernel maxpool(in float x[%d], out float y[%d]) {
  for (int i = 0; i < %d; i++) {
    float m = x[2*i];
    for (int j = 0; j < 2; j++) {
      m = fmaxf(m, x[2*i + j]);
    }
    y[i] = m;
  }
}
|}
    (2 * n) n n

let softmax n =
  Printf.sprintf
    {|kernel softmax(in float x[%d], out float y[%d]) {
  float s = 0.0;
  for (int i = 0; i < %d; i++) {
    s += expf(x[i]);
  }
  for (int i = 0; i < %d; i++) {
    y[i] = expf(x[i]) / s;
  }
}
|}
    n n n n

let mse n =
  Printf.sprintf
    {|kernel mse(in float A[%d], in float B[%d], out float e) {
  e = 0.0;
  for (int i = 0; i < %d; i++) {
    float d = A[i] - B[i];
    e += d * d;
  }
  e = e / %d.0;
}
|}
    n n n n

let all =
  [
    mk "lift_dot" "Inner product accumulated over one loop." (dot 8)
      (dot 65536);
    mk "lift_saxpy" "Scaled vector addition a*x + y." (saxpy 8) (saxpy 65536);
    mk "lift_rowsum" "Row-wise sum of a matrix." (rowsum 4 8) (rowsum 512 512);
    mk "lift_matmul" "Textbook triple-loop matrix multiply." (matmul 3 4 5)
      (matmul 48 64 56);
    mk "lift_normalize" "Divide a vector by its own sum." (normalize 8)
      (normalize 65536);
    mk "lift_maxpool" "Window-2 sliding max pooling." (maxpool 4)
      (maxpool 262144);
    mk "lift_softmax" "Two-pass softmax over a vector." (softmax 8)
      (softmax 65536);
    mk "lift_mse" "Mean squared error between two vectors." (mse 8) (mse 65536);
  ]

let find_opt name = List.find_opt (fun k -> k.name = name) all

(* A loop-carried dependency: [y[i]] reads [y[i-1]], so no
   single-assignment tensor expression over the grammar's operators
   computes it.  Used by the negative lifting tests — the front-end
   must fail cleanly ([lift.failed]) rather than certify a wrong
   program. *)
let negative =
  {|kernel prefix_sum(in float x[8], out float y[8]) {
  y[0] = x[0];
  for (int i = 1; i < 8; i++) {
    y[i] = y[i-1] + x[i];
  }
}
|}
