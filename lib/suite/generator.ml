module Ast = Dsl.Ast
module Types = Dsl.Types

type config = {
  num_inputs : int;
  dims : int list;
  max_rank : int;
  size : int;
  allow_contractions : bool;
  allow_transcendentals : bool;
  seed : int;
}

let default =
  {
    num_inputs = 3;
    dims = [ 2; 3 ];
    max_rank = 2;
    size = 5;
    allow_contractions = true;
    allow_transcendentals = true;
    seed = 0;
  }

let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let random_env cfg st : Types.env =
  List.init cfg.num_inputs (fun i ->
      let rank = Random.State.int st (cfg.max_rank + 1) in
      let shape = Array.init rank (fun _ -> pick st cfg.dims) in
      (Printf.sprintf "I%d" i, Types.float_t shape))

(* Grow a pool of typed subexpressions by applying random operations;
   ill-typed combinations are simply re-rolled. *)
let generate cfg =
  let st = Random.State.make [| 0x9e2; cfg.seed |] in
  let env = random_env cfg st in
  let pool = ref (List.map (fun (n, _) -> Ast.Input n) env) in
  let consts = [ Ast.Const 1.; Ast.Const 2. ] in
  let unary =
    [ (fun a -> Ast.App (Ast.sum_op (Some 0), [ a ]));
      (fun a -> Ast.App (Ast.sum_op None, [ a ]));
      (* keepdims variants keep rank, so their results re-enter the
         pool broadcastable against the reduced input — the fuzz then
         composes them into the gather-indexed broadcast paths *)
      (fun a -> Ast.App (Ast.sum_op ~keepdims:true (Some 0), [ a ]));
      (fun a -> Ast.App (Ast.max_op ~keepdims:true (Some 0), [ a ]));
      (fun a -> Ast.App (Ast.max_op None, [ a ]));
      (fun a -> Ast.App (Transpose None, [ a ])) ]
    @
    if cfg.allow_transcendentals then
      [ (fun a -> Ast.App (Sqrt, [ a ]));
        (fun a -> Ast.App (Exp, [ Ast.App (Log, [ a ]) ])) ]
    else []
  in
  let binary =
    [ (fun a b -> Ast.App (Add, [ a; b ]));
      (fun a b -> Ast.App (Sub, [ a; b ]));
      (fun a b -> Ast.App (Mul, [ a; b ]));
      (fun a b -> Ast.App (Div, [ a; b ])) ]
    @
    if cfg.allow_contractions then
      [ (fun a b -> Ast.App (Dot, [ a; b ])) ]
    else []
  in
  let well_typed t = Types.well_typed env t in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < cfg.size && !attempts < cfg.size * 200 do
    incr attempts;
    let candidate =
      if Random.State.int st 3 = 0 && unary <> [] then
        (pick st unary) (pick st !pool)
      else
        let a = pick st !pool in
        let b =
          if Random.State.int st 4 = 0 then pick st consts else pick st !pool
        in
        let f = pick st binary in
        if Random.State.bool st then f a b else f b a
    in
    if well_typed candidate then begin
      pool := candidate :: !pool;
      incr added
    end
  done;
  (* Prefer the largest program in the pool as the benchmark body. *)
  let best =
    List.fold_left
      (fun acc t -> if Ast.size t > Ast.size acc then t else acc)
      (List.hd !pool) !pool
  in
  (env, best)

let generate_many cfg n =
  List.init n (fun i -> generate { cfg with seed = cfg.seed + i })
