module Json = Obs.Telemetry.Json
module Tel = Obs.Telemetry

let default_dir () =
  match Sys.getenv_opt "STENSO_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "stenso"
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some h when h <> "" ->
              Filename.concat (Filename.concat h ".cache") "stenso"
          | _ -> Filename.concat (Sys.getcwd ()) ".stenso-cache"))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_atomic path contents =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp =
    Filename.temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let digest key = Digest.to_hex (Digest.string key)

type mem_entry = {
  key : string;
  schema : string;
  payload : Json.t;
  mutable tick : int;
}

type t = {
  root : string;
  mem_capacity : int;
  lock : Mutex.t;
  mem : (string, mem_entry) Hashtbl.t; (* digest -> entry *)
  mutable clock : int;
  mutable persist : bool; (* cleared after the first write failure *)
  (* counters: both plain (for [stats]) and telemetry-registered *)
  c_mem_hits : Tel.Counter.t;
  c_disk_hits : Tel.Counter.t;
  c_misses : Tel.Counter.t;
  c_evictions : Tel.Counter.t;
  c_corrupt : Tel.Counter.t;
  c_writes : Tel.Counter.t;
}

let open_store ?(tel = Tel.null) ?(mem_capacity = 256) ~dir () =
  {
    root = dir;
    mem_capacity = max 1 mem_capacity;
    lock = Mutex.create ();
    mem = Hashtbl.create 64;
    clock = 0;
    persist = true;
    c_mem_hits = Tel.counter tel "store.mem_hits";
    c_disk_hits = Tel.counter tel "store.disk_hits";
    c_misses = Tel.counter tel "store.misses";
    c_evictions = Tel.counter tel "store.evictions";
    c_corrupt = Tel.counter tel "store.corrupt";
    c_writes = Tel.counter tel "store.writes";
  }

let dir t = t.root

(* Two-level fan-out, git-object style, to keep directories small. *)
let entry_path t key =
  let d = digest key in
  Filename.concat
    (Filename.concat (Filename.concat t.root "objects") (String.sub d 0 2))
    (d ^ ".json")

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

(* Caller holds the lock. *)
let insert_mem t dg entry =
  (if not (Hashtbl.mem t.mem dg) && Hashtbl.length t.mem >= t.mem_capacity
   then
     (* Evict the least recently used resident entry (linear scan; the
        front is small by construction). *)
     let victim =
       Hashtbl.fold
         (fun d e acc ->
           match acc with
           | Some (_, tick) when tick <= e.tick -> acc
           | _ -> Some (d, e.tick))
         t.mem None
     in
     match victim with
     | Some (d, _) ->
         Hashtbl.remove t.mem d;
         Tel.Counter.incr t.c_evictions
     | None -> ());
  Hashtbl.replace t.mem dg entry;
  touch t entry

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception End_of_file -> None)

let remove_file path = try Sys.remove path with Sys_error _ -> ()

(* Decode one disk entry; [Error] means the file is corrupt (truncated,
   unparseable, mislabeled, or a digest collision) and must be evicted. *)
let decode_entry ~schema ~key contents =
  match Json.of_string (String.trim contents) with
  | Error msg -> Error msg
  | Ok doc -> (
      let str name = Option.bind (Json.member name doc) Json.to_string_opt in
      match (str "schema", str "key", Json.member "payload" doc) with
      | Some s, _, _ when not (String.equal s schema) ->
          Error (Printf.sprintf "schema %S, expected %S" s schema)
      | _, Some k, _ when not (String.equal k key) ->
          Error "key mismatch (digest collision)"
      | Some _, Some _, Some payload -> Ok payload
      | _ -> Error "missing schema/key/payload field")

let find t ~schema key =
  Mutex.protect t.lock (fun () ->
      let dg = digest key in
      match Hashtbl.find_opt t.mem dg with
      | Some e when String.equal e.key key && String.equal e.schema schema ->
          Tel.Counter.incr t.c_mem_hits;
          touch t e;
          Some e.payload
      | Some _ | None -> (
          let path = entry_path t key in
          match read_file path with
          | None ->
              Tel.Counter.incr t.c_misses;
              None
          | Some contents -> (
              match decode_entry ~schema ~key contents with
              | Ok payload ->
                  Tel.Counter.incr t.c_disk_hits;
                  insert_mem t dg { key; schema; payload; tick = 0 };
                  Some payload
              | Error _ ->
                  Tel.Counter.incr t.c_corrupt;
                  remove_file path;
                  None)))

let encode_entry ~schema ~key payload =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str schema);
         ("key", Json.Str key);
         ("payload", payload);
       ])
  ^ "\n"

let add t ~schema key payload =
  Mutex.protect t.lock (fun () ->
      let dg = digest key in
      insert_mem t dg { key; schema; payload; tick = 0 };
      if t.persist then begin
        match write_atomic (entry_path t key) (encode_entry ~schema ~key payload) with
        | () -> Tel.Counter.incr t.c_writes
        | exception (Sys_error _ | Unix.Unix_error _) ->
            (* Unwritable cache directory: degrade to memory-only rather
               than failing synthesis. *)
            t.persist <- false
      end)

let invalidate t key =
  Mutex.protect t.lock (fun () ->
      Hashtbl.remove t.mem (digest key);
      Tel.Counter.incr t.c_corrupt;
      remove_file (entry_path t key))

let flush t =
  (* Writes are write-through; nothing is buffered in the handle. *)
  ignore t

let lru_keys t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) t.mem []
      |> List.sort (fun a b -> compare b.tick a.tick)
      |> List.map (fun e -> e.key))

type counts = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  corrupt : int;
  writes : int;
}

let stats t =
  {
    mem_hits = Tel.Counter.get t.c_mem_hits;
    disk_hits = Tel.Counter.get t.c_disk_hits;
    misses = Tel.Counter.get t.c_misses;
    evictions = Tel.Counter.get t.c_evictions;
    corrupt = Tel.Counter.get t.c_corrupt;
    writes = Tel.Counter.get t.c_writes;
  }
