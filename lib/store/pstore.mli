(** Persistent content-addressed key/value store.

    The generic layer under [Stenso.Store]: a directory of JSON entry
    files addressed by the digest of their (arbitrary string) key, with
    an in-memory LRU front, atomic write-rename persistence, and
    corruption-tolerant loading — a truncated, unparseable, mislabeled
    or colliding entry is evicted from disk and reported as a miss,
    never an error.

    Entries are schema-tagged: every [add] stamps the entry with the
    caller's schema identifier and every [find] checks it, so a store
    directory can be shared by several record kinds (and survive format
    evolution) without cross-talk.  Hit/miss/evict/corruption counters
    feed the {!Obs.Telemetry} sink given at {!open_store} and are also
    readable directly via {!stats}.

    All operations are safe under concurrent use from multiple domains
    of one process (a mutex serializes the handle) and from multiple
    processes (writes go through {!write_atomic}, so a reader sees
    either the old complete entry or the new complete entry). *)

module Json = Obs.Telemetry.Json

val default_dir : unit -> string
(** [$STENSO_CACHE_DIR], else [$XDG_CACHE_HOME/stenso], else
    [$HOME/.cache/stenso], else [./.stenso-cache]. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] writes [contents] to a fresh temporary
    file in [path]'s directory (created if missing) and renames it over
    [path].  Concurrent writers each land a complete file; readers never
    observe a partial one.  Raises [Sys_error] when the directory cannot
    be created or written. *)

val digest : string -> string
(** Hex digest used to address entries (the content address of the
    key). *)

type t

val open_store :
  ?tel:Obs.Telemetry.t -> ?mem_capacity:int -> dir:string -> unit -> t
(** A handle on the store rooted at [dir].  Nothing is created on disk
    until the first {!add}.  [mem_capacity] (default 256) bounds the
    in-memory LRU front; entries evicted from memory remain on disk.
    [tel] receives the [store.*] counters. *)

val dir : t -> string

val entry_path : t -> string -> string
(** Where the entry for this key lives (or would live) on disk. *)

val find : t -> schema:string -> string -> Json.t option
(** The payload stored under this key, from the LRU front if resident,
    else from disk.  A disk entry that fails to parse, whose recorded
    schema differs from [schema], or whose recorded key differs from the
    probe (a digest collision) is deleted and counted as corrupt;
    [find] then returns [None]. *)

val add : t -> schema:string -> string -> Json.t -> unit
(** Persist a payload under a key (write-through: the entry is durable
    when [add] returns) and make it resident in the LRU front.  An I/O
    failure (e.g. unwritable directory) disables persistence for the
    handle but keeps the in-memory entry — the store degrades to a
    per-process cache rather than failing the caller. *)

val invalidate : t -> string -> unit
(** Drop an entry from memory and disk, counting it as corrupt.  Used by
    higher layers whose decoding of the payload failed even though the
    envelope parsed. *)

val flush : t -> unit
(** Ensure everything recorded through this handle is durable.  Writes
    are write-through, so this is only a barrier for the daemon's
    shutdown path; it never raises. *)

val lru_keys : t -> string list
(** Keys resident in the memory front, most recently used first (for
    tests and introspection). *)

type counts = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;  (** memory-front evictions, not disk deletions *)
  corrupt : int;
  writes : int;
}

val stats : t -> counts
