(* AST for the scalar loop-nest kernel language (see loop_parser.ml for
   the surface syntax).  The language is deliberately tiny: C-like
   [for] loops with constant bounds over float scalars and dense float
   arrays, affine index expressions, and the float intrinsics the DSL
   can express.  Everything a kernel can compute is a function from its
   [`In] parameters to its single [`Out] parameter, which is what the
   lifting engine rediscovers as a tensor-DSL program. *)

type binop = Add | Sub | Mul | Div
type intrinsic = Sqrt | Exp | Log | Fmax

type expr =
  | Num of float
  | Var of string  (** scalar parameter, local, or loop index *)
  | Load of string * expr list  (** [A[i][j]]; indices are int-valued *)
  | Neg of expr
  | Binop of binop * expr * expr
  | Intrinsic of intrinsic * expr list

type lhs = { base : string; indices : expr list }

type stmt =
  | Decl of { name : string; init : expr }  (** [float x = e;] *)
  | Assign of lhs * expr
      (** [x = e;] or [A[i] = e;]; [+=] desugars to this in the parser *)
  | For of { var : string; lo : int; hi : int; body : stmt list }
      (** [for (int i = lo; i < hi; i++) { ... }] *)

type io = In | Out

type param = { pname : string; dims : int list; io : io }
(** [dims = []] is a scalar parameter. *)

type kernel = { kname : string; params : param list; body : stmt list }

let binop_name = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let intrinsic_name = function
  | Sqrt -> "sqrtf"
  | Exp -> "expf"
  | Log -> "logf"
  | Fmax -> "fmaxf"

let intrinsic_arity = function Sqrt | Exp | Log -> 1 | Fmax -> 2

let in_params k = List.filter (fun p -> p.io = In) k.params

let out_param k =
  match List.filter (fun p -> p.io = Out) k.params with
  | [ p ] -> p
  | _ -> invalid_arg "Loop_ast.out_param: kernel must have exactly one out"

(* The typing environment the lifted DSL program runs in: every [`In]
   parameter becomes a float input of the same shape (scalars have the
   empty shape). *)
let dsl_env k : Dsl.Types.env =
  List.map
    (fun p -> (p.pname, Dsl.Types.float_t (Array.of_list p.dims)))
    (in_params k)

(* Float literals appearing anywhere in the kernel body — the constant
   terminals handed to stub enumeration, mirroring how the synthesizer
   collects [FCons] from a DSL program. *)
let literals k =
  let acc = ref [] in
  let add f = if not (List.mem f !acc) then acc := f :: !acc in
  let rec expr = function
    | Num f -> add f
    | Var _ -> ()
    | Load (_, idx) -> List.iter expr idx
    | Neg e -> expr e
    | Binop (_, a, b) ->
        expr a;
        expr b
    | Intrinsic (_, args) -> List.iter expr args
  in
  let rec stmt = function
    | Decl { init; _ } -> expr init
    | Assign (lhs, e) ->
        List.iter expr lhs.indices;
        expr e
    | For { body; _ } -> List.iter stmt body
  in
  List.iter stmt k.body;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Printing (round-trips through the parser)                          *)
(* ------------------------------------------------------------------ *)

let rec pp_expr fmt = function
  | Num f -> Format.fprintf fmt "%g" f
  | Var v -> Format.pp_print_string fmt v
  | Load (a, idx) ->
      Format.pp_print_string fmt a;
      List.iter (fun i -> Format.fprintf fmt "[%a]" pp_expr i) idx
  | Neg e -> Format.fprintf fmt "(-%a)" pp_expr e
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Intrinsic (f, args) ->
      Format.fprintf fmt "%s(%a)" (intrinsic_name f)
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        args

let pp_lhs fmt { base; indices } =
  Format.pp_print_string fmt base;
  List.iter (fun i -> Format.fprintf fmt "[%a]" pp_expr i) indices

let rec pp_stmt indent fmt = function
  | Decl { name; init } ->
      Format.fprintf fmt "%sfloat %s = %a;@." indent name pp_expr init
  | Assign (lhs, e) ->
      Format.fprintf fmt "%s%a = %a;@." indent pp_lhs lhs pp_expr e
  | For { var; lo; hi; body } ->
      Format.fprintf fmt "%sfor (int %s = %d; %s < %d; %s++) {@." indent var
        lo var hi var;
      List.iter (pp_stmt (indent ^ "  ") fmt) body;
      Format.fprintf fmt "%s}@." indent

let pp_param fmt p =
  Format.fprintf fmt "%s float %s%s"
    (match p.io with In -> "in" | Out -> "out")
    p.pname
    (String.concat "" (List.map (Printf.sprintf "[%d]") p.dims))

let pp fmt k =
  Format.fprintf fmt "kernel %s(%a) {@." k.kname
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_param)
    k.params;
  List.iter (pp_stmt "  " fmt) k.body;
  Format.fprintf fmt "}@."

let to_string k = Format.asprintf "%a" pp k
