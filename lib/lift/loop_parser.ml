exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | NUMBER of float
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LT
  | EQUALS
  | PLUSEQ
  | PLUSPLUS
  | EOF

let pp_token = function
  | IDENT s -> Printf.sprintf "'%s'" s
  | NUMBER f -> Printf.sprintf "'%g'" f
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | LT -> "'<'"
  | EQUALS -> "'='"
  | PLUSEQ -> "'+='"
  | PLUSPLUS -> "'++'"
  | EOF -> "end of input"

(* Every token carries the 1-based line/column where it starts, so any
   parse error can point at the offending token. *)
type ptok = { tok : token; line : int; col : int }

let fail_at line col fmt =
  Format.kasprintf
    (fun s ->
      raise (Parse_error (Printf.sprintf "line %d, column %d: %s" line col s)))
    fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let advance () =
    if !i < n && src.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  let emit t ~line ~col = toks := { tok = t; line; col } :: !toks in
  while !i < n do
    let c = src.[!i] in
    let tline = !line and tcol = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      emit (IDENT (String.sub src start (!i - start))) ~line:tline ~col:tcol
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1])
    then begin
      let start = !i in
      while
        !i < n
        && (is_digit src.[!i]
           || src.[!i] = '.'
           || src.[!i] = 'e'
           || src.[!i] = 'E'
           || ((src.[!i] = '+' || src.[!i] = '-')
              && !i > start
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        advance ()
      done;
      (* A trailing [f] suffix (C float literals) is accepted. *)
      let text = String.sub src start (!i - start) in
      if !i < n && src.[!i] = 'f' then advance ();
      match float_of_string_opt text with
      | Some f -> emit (NUMBER f) ~line:tline ~col:tcol
      | None -> fail_at tline tcol "bad numeric literal %S" text
    end
    else begin
      advance ();
      let two c' t1 t0 =
        if !i < n && src.[!i] = c' then begin
          advance ();
          t1
        end
        else t0
      in
      let t =
        match c with
        | '(' -> LPAREN
        | ')' -> RPAREN
        | '{' -> LBRACE
        | '}' -> RBRACE
        | '[' -> LBRACKET
        | ']' -> RBRACKET
        | ',' -> COMMA
        | ';' -> SEMI
        | '+' -> (
            match two '=' PLUSEQ PLUS with
            | PLUS -> two '+' PLUSPLUS PLUS
            | t -> t)
        | '-' -> MINUS
        | '*' -> STAR
        | '/' -> SLASH
        | '<' -> LT
        | '=' -> EQUALS
        | c -> fail_at tline tcol "unexpected character %C" c
      in
      emit t ~line:tline ~col:tcol
    end
  done;
  emit EOF ~line:!line ~col:!col;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token stream                                                       *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : ptok list }

let peek s =
  match s.toks with
  | t :: _ -> t
  | [] -> { tok = EOF; line = 0; col = 0 }

let next s =
  let t = peek s in
  (match s.toks with _ :: rest -> s.toks <- rest | [] -> ());
  t

let fail_tok (t : ptok) fmt = fail_at t.line t.col fmt

let expect s tok =
  let t = next s in
  if t.tok <> tok then
    fail_tok t "expected %s but found %s" (pp_token tok) (pp_token t.tok)

let ident s what =
  match next s with
  | { tok = IDENT name; _ } -> name
  | t -> fail_tok t "expected %s, found %s" what (pp_token t.tok)

let int_lit s what =
  match next s with
  | { tok = NUMBER f; _ } when Float.is_integer f -> int_of_float f
  | t -> fail_tok t "expected %s, found %s" what (pp_token t.tok)

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

open Loop_ast

let intrinsic_of_name = function
  | "sqrtf" | "sqrt" -> Some Sqrt
  | "expf" | "exp" -> Some Exp
  | "logf" | "log" -> Some Log
  | "fmaxf" | "fmax" -> Some Fmax
  | _ -> None

let rec parse_expr s = parse_additive s

and parse_additive s =
  let lhs = ref (parse_multiplicative s) in
  let continue_ = ref true in
  while !continue_ do
    match (peek s).tok with
    | PLUS ->
        ignore (next s);
        lhs := Binop (Add, !lhs, parse_multiplicative s)
    | MINUS ->
        ignore (next s);
        lhs := Binop (Sub, !lhs, parse_multiplicative s)
    | _ -> continue_ := false
  done;
  !lhs

and parse_multiplicative s =
  let lhs = ref (parse_unary s) in
  let continue_ = ref true in
  while !continue_ do
    match (peek s).tok with
    | STAR ->
        ignore (next s);
        lhs := Binop (Mul, !lhs, parse_unary s)
    | SLASH ->
        ignore (next s);
        lhs := Binop (Div, !lhs, parse_unary s)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary s =
  match (peek s).tok with
  | MINUS -> (
      ignore (next s);
      match parse_unary s with Num f -> Num (-.f) | e -> Neg e)
  | _ -> parse_atom s

and parse_atom s =
  let t = next s in
  match t.tok with
  | NUMBER f -> Num f
  | LPAREN ->
      let e = parse_expr s in
      expect s RPAREN;
      e
  | IDENT name -> (
      match (peek s).tok with
      | LPAREN -> (
          match intrinsic_of_name name with
          | None ->
              fail_tok t "unknown function '%s' (expected %s)" name
                "sqrtf, expf, logf or fmaxf"
          | Some f ->
              ignore (next s);
              let rec args acc =
                let e = parse_expr s in
                match next s with
                | { tok = COMMA; _ } -> args (e :: acc)
                | { tok = RPAREN; _ } -> List.rev (e :: acc)
                | t ->
                    fail_tok t "expected ',' or ')' in %s call, found %s"
                      (intrinsic_name f) (pp_token t.tok)
              in
              let args = args [] in
              if List.length args <> intrinsic_arity f then
                fail_tok t "%s takes %d argument%s" (intrinsic_name f)
                  (intrinsic_arity f)
                  (if intrinsic_arity f = 1 then "" else "s");
              Intrinsic (f, args))
      | LBRACKET -> Load (name, parse_indices s)
      | _ -> Var name)
  | tok -> fail_tok t "unexpected token %s in expression" (pp_token tok)

and parse_indices s =
  let rec go acc =
    match (peek s).tok with
    | LBRACKET ->
        ignore (next s);
        let e = parse_expr s in
        expect s RBRACKET;
        go (e :: acc)
    | _ -> List.rev acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let parse_lhs s =
  let base = ident s "an assignment target" in
  { base; indices = parse_indices s }

let rec parse_stmt s =
  let t = peek s in
  match t.tok with
  | IDENT "float" ->
      ignore (next s);
      let name = ident s "a local variable name" in
      expect s EQUALS;
      let init = parse_expr s in
      expect s SEMI;
      Decl { name; init }
  | IDENT "for" ->
      ignore (next s);
      expect s LPAREN;
      (match next s with
      | { tok = IDENT "int"; _ } -> ()
      | t -> fail_tok t "expected 'int', found %s" (pp_token t.tok));
      let var = ident s "a loop variable" in
      expect s EQUALS;
      let lo = int_lit s "a constant lower bound" in
      expect s SEMI;
      let v2 = ident s "the loop variable" in
      if v2 <> var then
        fail_tok t "loop condition tests '%s' but the loop variable is '%s'"
          v2 var;
      expect s LT;
      let hi = int_lit s "a constant upper bound" in
      expect s SEMI;
      let v3 = ident s "the loop variable" in
      if v3 <> var then
        fail_tok t "loop increment updates '%s' but the loop variable is '%s'"
          v3 var;
      (match next s with
      | { tok = PLUSPLUS; _ } -> ()
      | { tok = PLUSEQ; _ } ->
          let one = int_lit s "the literal 1" in
          if one <> 1 then fail_tok t "only unit-stride loops are supported"
      | { tok = EQUALS; _ } -> (
          let v4 = ident s "the loop variable" in
          expect s PLUS;
          let one = int_lit s "the literal 1" in
          if v4 <> var || one <> 1 then
            fail_tok t "only unit-stride loops are supported")
      | t ->
          fail_tok t "expected '++', '+= 1' or '= %s + 1', found %s" var
            (pp_token t.tok));
      expect s RPAREN;
      let body = parse_block s in
      For { var; lo; hi; body }
  | IDENT _ ->
      let lhs = parse_lhs s in
      let stmt =
        match next s with
        | { tok = EQUALS; _ } -> Assign (lhs, parse_expr s)
        | { tok = PLUSEQ; _ } ->
            let cur = Load (lhs.base, lhs.indices) in
            let cur = if lhs.indices = [] then Var lhs.base else cur in
            Assign (lhs, Binop (Add, cur, parse_expr s))
        | t ->
            fail_tok t "expected '=' or '+=' after %s, found %s" lhs.base
              (pp_token t.tok)
      in
      expect s SEMI;
      stmt
  | tok -> fail_tok t "expected a statement, found %s" (pp_token tok)

and parse_block s =
  expect s LBRACE;
  let rec go acc =
    match (peek s).tok with
    | RBRACE ->
        ignore (next s);
        List.rev acc
    | _ -> go (parse_stmt s :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Kernel                                                             *)
(* ------------------------------------------------------------------ *)

let parse_param s =
  let t = peek s in
  let io =
    match next s with
    | { tok = IDENT "in"; _ } -> In
    | { tok = IDENT "out"; _ } -> Out
    | t -> fail_tok t "expected 'in' or 'out', found %s" (pp_token t.tok)
  in
  (match next s with
  | { tok = IDENT "float"; _ } -> ()
  | t -> fail_tok t "expected 'float', found %s" (pp_token t.tok));
  let pname = ident s "a parameter name" in
  let rec dims acc =
    match (peek s).tok with
    | LBRACKET ->
        ignore (next s);
        let d = int_lit s "a constant dimension" in
        if d <= 0 then fail_tok t "dimension of %s must be positive" pname;
        expect s RBRACKET;
        dims (d :: acc)
    | _ -> List.rev acc
  in
  { pname; dims = dims []; io }

let kernel src =
  let s = { toks = tokenize src } in
  let t0 = peek s in
  (match next s with
  | { tok = IDENT "kernel"; _ } -> ()
  | t -> fail_tok t "expected 'kernel', found %s" (pp_token t.tok));
  let kname = ident s "a kernel name" in
  expect s LPAREN;
  let rec params acc =
    let p = parse_param s in
    match next s with
    | { tok = COMMA; _ } -> params (p :: acc)
    | { tok = RPAREN; _ } -> List.rev (p :: acc)
    | t ->
        fail_tok t "expected ',' or ')' in parameter list, found %s"
          (pp_token t.tok)
  in
  let params = params [] in
  let body = parse_block s in
  (match (peek s).tok with
  | EOF -> ()
  | tok -> fail_tok (peek s) "trailing input after kernel: %s" (pp_token tok));
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.pname then
        fail_tok t0 "duplicate parameter '%s'" p.pname;
      Hashtbl.add seen p.pname ())
    params;
  (match List.filter (fun p -> p.io = Out) params with
  | [ _ ] -> ()
  | [] -> fail_tok t0 "kernel %s has no 'out' parameter" kname
  | _ -> fail_tok t0 "kernel %s must have exactly one 'out' parameter" kname);
  { kname; params; body }
