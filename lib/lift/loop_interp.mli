(** Reference interpreter for the loop-nest kernel language, generic
    over the element domain.

    The same interpreter runs twice in the lifting pipeline: over
    floats to sample the kernel's behavioral signature (and as the
    slow-path baseline the lifted program is benchmarked against), and
    over {!Symbolic.Expr} scalars to extract the kernel's exact
    symbolic specification for certification.  Loop bounds are
    constants, so the symbolic instantiation simply executes every
    iteration. *)

exception Eval_error of string
(** Raised on semantic errors: unbound or shadowed variables, index
    out of bounds or non-affine, assignment to an [in] parameter,
    rank/arity mismatches. *)

module type DOMAIN = sig
  type t

  val of_float : float -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val sqrt : t -> t
  val exp : t -> t
  val log : t -> t
  val fmax : t -> t -> t
end

module Make (D : DOMAIN) : sig
  val run : Loop_ast.kernel -> (string * D.t array) list -> D.t array
  (** [run k inputs] executes the kernel on flat row-major input
      buffers (a scalar is a one-element array) and returns the flat
      row-major contents of the [out] parameter, zero-initialized
      before the body runs.  Inputs are copied, never mutated. *)
end

val run_floats : Loop_ast.kernel -> (string * float array) list -> float array

val run_tensors :
  Loop_ast.kernel -> (string * Tensor.Ftensor.t) list -> Tensor.Ftensor.t
(** Tensor-typed wrapper over {!run_floats}: inputs as float tensors
    matching {!Loop_ast.dsl_env}, result shaped like the [out]
    parameter. *)
