(** Parser for the scalar loop-nest kernel language.

    Surface syntax, by example:
    {v
    // inner product of two 8-vectors
    kernel dot(in float A[8], in float B[8], out float y) {
      y = 0.0;
      for (int i = 0; i < 8; i++) {
        y += A[i] * B[i];
      }
    }
    v}

    Parameters are [in] or [out] (exactly one [out]); arrays declare
    constant dimensions ([A[3][4]]); statements are scalar locals
    ([float acc = 0.0;]), assignments [=]/[+=] to scalars or array
    elements, and unit-stride [for] loops with constant bounds;
    expressions use [+ - * /], unary minus, parentheses, float
    literals, and the intrinsics [sqrtf]/[expf]/[logf]/[fmaxf] (the
    suffix-free spellings are accepted too).  Comments run [//] or [#]
    to end of line.

    All parse errors carry the 1-based line and column of the offending
    token, e.g. ["line 3, column 7: expected ';' but found '+'"]. *)

exception Parse_error of string

val kernel : string -> Loop_ast.kernel
(** Parse one kernel definition.  Raises {!Parse_error} with a
    positioned message on malformed input. *)
