exception Eval_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

module type DOMAIN = sig
  type t

  val of_float : float -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val sqrt : t -> t
  val exp : t -> t
  val log : t -> t
  val fmax : t -> t -> t
end

module Make (D : DOMAIN) = struct
  open Loop_ast

  (* Mutable interpreter state: scalars are single cells, arrays flat
     row-major buffers.  Loop indices live in a separate integer
     environment — loop bounds are constants, so even the symbolic
     instantiation executes every iteration concretely. *)
  type value = Scalar of D.t ref | Arr of { dims : int list; data : D.t array }

  let numel dims = List.fold_left ( * ) 1 dims

  (* Index expressions are integer arithmetic over loop variables. *)
  let rec eval_index loops = function
    | Num f when Float.is_integer f -> int_of_float f
    | Num f -> fail "array index %g is not an integer" f
    | Var v -> (
        match List.assoc_opt v loops with
        | Some i -> i
        | None -> fail "index variable '%s' is not a loop variable" v)
    | Neg e -> -eval_index loops e
    | Binop (Add, a, b) -> eval_index loops a + eval_index loops b
    | Binop (Sub, a, b) -> eval_index loops a - eval_index loops b
    | Binop (Mul, a, b) -> eval_index loops a * eval_index loops b
    | Binop (Div, _, _) -> fail "division is not allowed in array indices"
    | Load _ | Intrinsic _ -> fail "array index must be an affine expression"

  let offset name dims idx =
    if List.length idx <> List.length dims then
      fail "'%s' has %d dimension%s but is indexed with %d subscript%s" name
        (List.length dims)
        (if List.length dims = 1 then "" else "s")
        (List.length idx)
        (if List.length idx = 1 then "" else "s");
    List.fold_left2
      (fun acc d i ->
        if i < 0 || i >= d then
          fail "index %d out of bounds for dimension %d of '%s'" i d name;
        (acc * d) + i)
      0 dims idx

  let run (k : kernel) (inputs : (string * D.t array) list) : D.t array =
    let vars : (string, value) Hashtbl.t = Hashtbl.create 16 in
    let writable : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun p ->
        let data =
          match p.io with
          | In -> (
              match List.assoc_opt p.pname inputs with
              | Some a ->
                  if Array.length a <> numel p.dims then
                    fail "input '%s' has %d elements, expected %d" p.pname
                      (Array.length a) (numel p.dims)
                  else Array.copy a
              | None -> fail "missing input '%s'" p.pname)
          | Out ->
              Hashtbl.replace writable p.pname ();
              Array.make (numel p.dims) (D.of_float 0.)
        in
        let v =
          if p.dims = [] then Scalar (ref data.(0))
          else Arr { dims = p.dims; data }
        in
        Hashtbl.replace vars p.pname v)
      k.params;
    let rec eval loops = function
      | Num f -> D.of_float f
      | Var v -> (
          match List.assoc_opt v loops with
          | Some i -> D.of_float (float_of_int i)
          | None -> (
              match Hashtbl.find_opt vars v with
              | Some (Scalar r) -> !r
              | Some (Arr _) -> fail "'%s' is an array, not a scalar" v
              | None -> fail "unbound variable '%s'" v))
      | Load (name, idx) -> (
          match Hashtbl.find_opt vars name with
          | Some (Arr { dims; data }) ->
              data.(offset name dims (List.map (eval_index loops) idx))
          | Some (Scalar _) -> fail "'%s' is a scalar, not an array" name
          | None -> fail "unbound array '%s'" name)
      | Neg e -> D.neg (eval loops e)
      | Binop (op, a, b) ->
          let f =
            match op with
            | Add -> D.add
            | Sub -> D.sub
            | Mul -> D.mul
            | Div -> D.div
          in
          f (eval loops a) (eval loops b)
      | Intrinsic (f, args) -> (
          match (f, List.map (eval loops) args) with
          | Sqrt, [ a ] -> D.sqrt a
          | Exp, [ a ] -> D.exp a
          | Log, [ a ] -> D.log a
          | Fmax, [ a; b ] -> D.fmax a b
          | f, _ -> fail "%s: wrong arity" (intrinsic_name f))
    in
    let assign loops { base; indices } v =
      match Hashtbl.find_opt vars base with
      | Some _ when not (Hashtbl.mem writable base) ->
          fail "'%s' is an input and cannot be assigned" base
      | Some (Scalar r) ->
          if indices <> [] then fail "'%s' is a scalar, not an array" base;
          r := v
      | Some (Arr { dims; data }) ->
          if indices = [] then
            fail "'%s' is an array and needs subscripts" base
          else
            data.(offset base dims (List.map (eval_index loops) indices)) <- v
      | None -> fail "unbound variable '%s'" base
    in
    (* Locals are block-scoped: a [float m = ...] inside a loop body is
       a fresh binding every iteration, removed when the block ends. *)
    let rec stmt loops = function
      | Loop_ast.Decl { name; init } ->
          if Hashtbl.mem vars name || List.mem_assoc name loops then
            fail "redeclaration of '%s'" name;
          let v = eval loops init in
          Hashtbl.replace vars name (Scalar (ref v));
          Hashtbl.replace writable name ()
      | Assign (lhs, e) -> assign loops lhs (eval loops e)
      | For { var; lo; hi; body } ->
          if Hashtbl.mem vars var then
            fail "loop variable '%s' shadows a declaration" var;
          for i = lo to hi - 1 do
            block ((var, i) :: loops) body
          done
    and block loops stmts =
      List.iter (stmt loops) stmts;
      List.iter
        (function
          | Loop_ast.Decl { name; _ } ->
              Hashtbl.remove vars name;
              Hashtbl.remove writable name
          | _ -> ())
        stmts
    in
    List.iter (stmt []) k.body;
    let out = out_param k in
    match Hashtbl.find vars out.pname with
    | Scalar r -> [| !r |]
    | Arr { data; _ } -> data
end

(* ------------------------------------------------------------------ *)
(* Concrete instantiation                                             *)
(* ------------------------------------------------------------------ *)

module Float_domain = struct
  type t = float

  let of_float f = f
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg = ( ~-. )
  let sqrt = Float.sqrt
  let exp = Float.exp
  let log = Float.log
  let fmax = Float.max
end

module F = Make (Float_domain)

let run_floats = F.run

let run_tensors (k : Loop_ast.kernel)
    (inputs : (string * Tensor.Ftensor.t) list) : Tensor.Ftensor.t =
  let flat =
    List.map (fun (n, t) -> (n, Tensor.Ftensor.to_array t)) inputs
  in
  let out = run_floats k flat in
  let dims = Array.of_list (Loop_ast.out_param k).dims in
  Tensor.Ftensor.of_array dims out
