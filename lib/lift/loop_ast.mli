(** AST of the scalar loop-nest kernel language.

    A kernel is a C-like function over float scalars and dense float
    arrays: constant-bound [for] loops, assignments with integer index
    expressions, the arithmetic operators [+ - * /], and the intrinsics
    [sqrtf]/[expf]/[logf]/[fmaxf].  Exactly one parameter is marked
    [out]; the lifting engine treats the kernel as a pure function from
    its [in] parameters to that output and synthesizes an equivalent
    tensor-DSL program (see [Stenso.Lift]). *)

type binop = Add | Sub | Mul | Div
type intrinsic = Sqrt | Exp | Log | Fmax

type expr =
  | Num of float
  | Var of string  (** scalar parameter, local, or loop index *)
  | Load of string * expr list  (** [A[i][j]]; indices are int-valued *)
  | Neg of expr
  | Binop of binop * expr * expr
  | Intrinsic of intrinsic * expr list

type lhs = { base : string; indices : expr list }

type stmt =
  | Decl of { name : string; init : expr }  (** [float x = e;] *)
  | Assign of lhs * expr
  | For of { var : string; lo : int; hi : int; body : stmt list }

type io = In | Out

type param = { pname : string; dims : int list; io : io }
(** [dims = []] is a scalar parameter. *)

type kernel = { kname : string; params : param list; body : stmt list }

val binop_name : binop -> string
val intrinsic_name : intrinsic -> string
val intrinsic_arity : intrinsic -> int

val in_params : kernel -> param list

val out_param : kernel -> param
(** The unique [out] parameter (the parser guarantees exactly one). *)

val dsl_env : kernel -> Dsl.Types.env
(** The DSL typing environment of the [in] parameters, in declaration
    order: arrays become float tensors, scalars rank-0 tensors. *)

val literals : kernel -> float list
(** Distinct float literals of the body, in first-occurrence order —
    the constant terminals for stub enumeration. *)

val pp : Format.formatter -> kernel -> unit
val to_string : kernel -> string
(** Renders back to the surface syntax ([Loop_parser.kernel] inverts
    it). *)
