(** Cost estimation for DSL programs (paper Sections V-B and VI-C).

    Two estimators guide the branch-and-bound search:

    - {!flops}: the theoretical FLOP count in the style of JAX's cost
      analysis — every elementwise operation costs one FLOP per output
      element regardless of which operation it is.
    - {!measured}: an empirical model built by timing each operation on
      random inputs of representative shapes, memoized in a lookup
      table.  Unlike the FLOPs model it distinguishes FLOP-equivalent
      programs (e.g. [power(A,2)] vs [A*A]) and charges data movement
      for layout operations such as [transpose], enabling the more
      effective pruning the paper reports.

    Costs are abstract nonnegative units; only comparisons matter. *)

type t = {
  name : string;
  op_cost : Dsl.Ast.op -> Dsl.Types.vt list -> float;
      (** Cost of one application; raises [Dsl.Types.Type_error] when the
          operation does not apply to the argument types. *)
  iter_scale : int;
      (** How much data-dependent loop trip counts grow at the
          representative shapes the op costs correspond to: 1 for the
          FLOPs model, the shape-scaling factor for the measured model.
          Without it a Python-level comprehension would be charged its
          synthesis-time trip count against representative-size
          broadcast alternatives. *)
}

val flops : t

val roofline :
  ?flops_per_sec:float ->
  ?mem_bw:float ->
  ?dispatch:float ->
  ?loop_scale:int ->
  unit ->
  t
(** Deterministic analytic estimator: per-op dispatch overhead plus a
    roofline of weighted arithmetic (transcendentals and [power] cost
    many machine ops per element) against memory traffic.  Sits between
    {!flops} (blind to op kind and data movement) and {!measured}
    (accurate but profiling-noise-dependent); useful when reproducible
    search outcomes matter more than platform fidelity. *)

val measured :
  ?tel:Obs.Telemetry.t ->
  ?engine:Texec.Engine.kind ->
  ?exec_options:Texec.Engine.Options.t ->
  ?scale:int ->
  ?min_time:float ->
  ?overhead:float ->
  ?cache_file:string ->
  unit ->
  t
(** Profiling-based model.  [engine] selects what executes the timed
    operations: the compiled VM (default [`Vm], model name ["measured"])
    compiles each single-op program once per fingerprint — under
    [exec_options] (default [Options.default]), whose fingerprint is
    part of the VM table keys since the knobs change kernel timings —
    and times only its run loop, so the table reflects steady-state
    kernel time (pool worker domains are spawned by a warm-up run
    before the first timing window, never inside one);
    [`Interp] (model name ["measured-interp"]) times the tree-walking
    interpreter.  Each measurement is the median of three timing windows
    (each window takes the minimum of doubling batches until [min_time]
    wall-clock, default 1e-3), and the sample standard deviation across
    windows is recorded per fingerprint in the cache and in the
    [cost.profile] telemetry event.  [scale] multiplies every tensor
    dimension (and shape attribute) before timing so that small
    synthesis-time shapes are measured at representative sizes (default
    12).  [overhead] (default 0.5 microseconds) is added per operation,
    modelling the eager framework's per-op dispatch cost — this is what
    makes replacing a Python-level loop by one broadcast operation
    profitable, as in the paper's Vectorization class.  Measurements are
    memoized per (engine, exec options, operation, shapes) in an
    internal table,
    mirroring the paper's one-time offline profiling phase; with
    [cache_file] the table persists across processes
    ("key<TAB>seconds<TAB>stddev" lines; older two-column files still
    load), amortizing the profiling cost as Section VII-E describes.
    [tel] counts table hits and misses ([cost.cache_hits] /
    [cost.cache_misses]) and accumulates profiling wall time
    ([cost.profile_seconds]). *)

val flop_count : Dsl.Ast.op -> Dsl.Types.vt list -> float
(** The raw FLOP count used by {!flops}. *)

val bytes_moved : Dsl.Ast.op -> Dsl.Types.vt list -> float
(** Memory traffic in bytes (reads + writes, 8-byte elements) — used by
    the roofline timing model of the framework simulators. *)

val flop_count_out : out:float -> Dsl.Ast.op -> Dsl.Types.vt list -> float
(** {!flop_count} with the output element count supplied explicitly, for
    argument lists that do not type-check as given (the measured model's
    fallback proxy at scaled shapes). *)

val bytes_moved_out : out:float -> Dsl.Ast.op -> Dsl.Types.vt list -> float

val program_cost : t -> Dsl.Types.env -> Dsl.Ast.t -> float
(** Total cost of a program: the sum over all operation nodes, with
    comprehension bodies charged once per iteration. *)
