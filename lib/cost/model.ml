module Shape = Tensor.Shape

type t = {
  name : string;
  op_cost : Dsl.Ast.op -> Dsl.Types.vt list -> float;
  iter_scale : int;
      (* scaling factor for data-dependent iteration counts (loop trip
         counts grow with the representative shapes the op costs are
         measured at) *)
}

let numel_out op args = float_of_int (Shape.numel (Dsl.Types.infer_op op args).shape)

let contracted_size (op : Dsl.Ast.op) (args : Dsl.Types.vt list) =
  match (op, args) with
  | Dsl.Ast.Dot, [ a; b ] ->
      let ra = Shape.rank a.shape and rb = Shape.rank b.shape in
      if ra = 0 || rb = 0 then 1 else if rb = 1 then b.shape.(0)
      else b.shape.(rb - 2)
  | Dsl.Ast.Tensordot (axes_a, _), [ a; _ ] ->
      List.fold_left
        (fun acc ax -> acc * a.shape.(Shape.normalize_axis a.shape ax))
        1 axes_a
  | _ -> 1

(* The [_out] variants take the output element count explicitly, for
   callers whose arguments do not type-check as given (the measured
   model's fallback proxy costs scaled shapes whose scaled attributes no
   longer infer). *)
let flop_count_out ~out (op : Dsl.Ast.op) (args : Dsl.Types.vt list) =
  let in_numel =
    List.fold_left (fun acc (a : Dsl.Types.vt) -> acc + Shape.numel a.shape) 0 args
  in
  match op with
  | Add | Sub | Mul | Div | Pow_op | Maximum | Less | Where | Sqrt | Exp | Log
    ->
      out
  | Dot | Tensordot _ ->
      (* multiply + add per contracted element *)
      2. *. out *. float_of_int (contracted_size op args)
  | Sum _ | Max _ | Trace -> float_of_int in_numel
  | Triu | Tril -> out (* one select per element, as XLA counts *)
  | Transpose _ | Reshape _ | Stack _ | Diag | Full _ -> 0.

let flop_count op args = flop_count_out ~out:(numel_out op args) op args

let bytes_moved_out ~out (op : Dsl.Ast.op) (args : Dsl.Types.vt list) =
  ignore op;
  let in_numel =
    List.fold_left (fun acc (a : Dsl.Types.vt) -> acc + Shape.numel a.shape) 0 args
  in
  8. *. (float_of_int in_numel +. out)

let bytes_moved op args = bytes_moved_out ~out:(numel_out op args) op args

let flops = { name = "flops"; op_cost = flop_count; iter_scale = 1 }

(* ------------------------------------------------------------------ *)
(* Analytic roofline model                                             *)
(* ------------------------------------------------------------------ *)

(* Per-element arithmetic weight: transcendental and power operations
   cost many machine operations each — the distinction the plain FLOPs
   model misses (power(A,2) vs A*A). *)
let op_weight (op : Dsl.Ast.op) =
  match op with
  | Pow_op -> 40.
  | Exp | Log -> 32.
  | Sqrt -> 8.
  | Add | Sub | Mul | Div | Maximum | Where | Less | Dot | Tensordot _
  | Transpose _ | Sum _ | Max _ | Stack _ | Triu | Tril | Diag | Trace
  | Reshape _ | Full _ ->
      1.

let roofline ?(flops_per_sec = 4.0e10) ?(mem_bw = 6.0e10)
    ?(dispatch = 5e-7) ?(loop_scale = 12) () =
  let op_cost op args =
    let weighted = op_weight op *. flop_count op args in
    let bytes =
      match op with
      | Dsl.Ast.Reshape _ -> 0. (* view *)
      | _ -> bytes_moved op args
    in
    dispatch +. Float.max (weighted /. flops_per_sec) (bytes /. mem_bw)
  in
  { name = "roofline"; op_cost; iter_scale = loop_scale }

(* ------------------------------------------------------------------ *)
(* Measured model                                                     *)
(* ------------------------------------------------------------------ *)

let scale_dim scale d = if d <= 1 then d else d * scale

let scale_vt scale (vt : Dsl.Types.vt) : Dsl.Types.vt =
  { vt with shape = Array.map (scale_dim scale) vt.shape }

(* Shape-carrying attributes must scale with their operands or the
   operation no longer applies (e.g. [reshape]). *)
let scale_op scale (op : Dsl.Ast.op) : Dsl.Ast.op =
  match op with
  | Reshape s -> Reshape (Array.map (scale_dim scale) s)
  | Full s -> Full (Array.map (scale_dim scale) s)
  | Add | Sub | Mul | Div | Pow_op | Maximum | Sqrt | Exp | Log | Dot
  | Tensordot _ | Transpose _ | Sum _ | Max _ | Stack _ | Where | Less
  | Triu | Tril | Diag | Trace ->
      op

let op_fingerprint (op : Dsl.Ast.op) (args : Dsl.Types.vt list) =
  Format.asprintf "%s%a|%a" (Dsl.Ast.op_name op)
    (fun ppf (op : Dsl.Ast.op) ->
      match op with
      | Tensordot (a, b) ->
          Format.fprintf ppf "[%s;%s]"
            (String.concat "," (List.map string_of_int a))
            (String.concat "," (List.map string_of_int b))
      | Transpose (Some p) ->
          Format.fprintf ppf "[%s]"
            (String.concat ","
               (Array.to_list (Array.map string_of_int p)))
      | Transpose None -> Format.fprintf ppf "[rev]"
      | Sum { axis; keepdims } | Max { axis; keepdims } ->
          Format.fprintf ppf "[%s%s]"
            (match axis with None -> "all" | Some a -> string_of_int a)
            (if keepdims then ";k" else "")
      | Stack ax -> Format.fprintf ppf "[%d]" ax
      | Reshape s | Full s ->
          Format.fprintf ppf "[%s]"
            (String.concat ","
               (Array.to_list (Array.map string_of_int s)))
      | Add | Sub | Mul | Div | Pow_op | Maximum | Sqrt | Exp | Log | Dot
      | Where | Less | Triu | Tril | Diag | Trace ->
          ())
    op
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Dsl.Types.pp_vt)
    args

(* Work proxy used to extrapolate timings measured at a reduced scale
   and to sanity-cap what we are willing to execute. *)
let work_units op args =
  flop_count op args +. (bytes_moved op args /. 8.)

(* One timing window: warm, then take the minimum of per-batch means —
   the minimum is the standard robust statistic against scheduling
   noise.  A measurement is the median of three windows (robust against
   a whole window landing on a descheduled slice), and the sample
   standard deviation across the windows is kept alongside as the
   per-fingerprint noise estimate. *)
let time_windows ~min_time runner =
  runner ();
  let window () =
    let best = ref infinity in
    let total = ref 0. and reps = ref 1 in
    while !total < min_time do
      let batch = !reps in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to batch do
        runner ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let mean = dt /. float_of_int batch in
      if mean < !best then best := mean;
      total := !total +. dt;
      reps := !reps * 2
    done;
    !best
  in
  let w = Array.init 3 (fun _ -> window ()) in
  Array.sort Float.compare w;
  let mean = (w.(0) +. w.(1) +. w.(2)) /. 3. in
  let var =
    (Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. w)
    /. 2.
  in
  (w.(1), sqrt var)

let time_op ~min_time ~(engine : Texec.Engine.kind) ~exec_options op
    (args : Dsl.Types.vt list) =
  let st = Random.State.make [| 0x5e50; Hashtbl.hash (op_fingerprint op args) |] in
  let tensors =
    List.map
      (fun (vt : Dsl.Types.vt) ->
        match vt.dtype with
        | Dsl.Types.Float -> Tensor.Ftensor.randomize st vt.shape
        | Dsl.Types.Bool ->
            Tensor.Ftensor.init vt.shape (fun _ ->
                if Random.State.bool st then 1. else 0.))
      args
  in
  let runner =
    match engine with
    | `Interp -> fun () -> ignore (Dsl.Interp.apply_op op tensors)
    | `Vm ->
        (* Compile the single-op program once per fingerprint; only the
           run loop is timed, so the table measures steady-state kernel
           time rather than planning overhead.  Pool worker domains are
           likewise spawned lazily by the warm-up run [time_windows]
           performs before its first window, so parallel kernels are
           timed in steady state — Domain spawn is never inside a
           window. *)
        let name i = "x" ^ string_of_int i in
        let env = List.mapi (fun i vt -> (name i, vt)) args in
        let prog =
          Dsl.Ast.App (op, List.mapi (fun i _ -> Dsl.Ast.Input (name i)) args)
        in
        let compiled = Texec.Engine.compile ~options:exec_options ~env prog in
        let bound = List.map2 (fun (n, _) t -> (n, t)) env tensors in
        let lookup n = List.assoc n bound in
        fun () -> ignore (Texec.Engine.run compiled lookup)
  in
  time_windows ~min_time runner

(* Profile at the largest scale (halving from [scale]) whose predicted
   work stays affordable, then extrapolate linearly in work units.  Big
   contractions are compute-bound, so linear extrapolation preserves
   their ranking while keeping the offline profiling phase fast. *)
let profile_budget = 3_000_000.

let profile_extrapolated ~min_time ~scale ~engine ~exec_options op args =
  let rec usable s =
    if s <= 1 then 1
    else
      let args' = List.map (scale_vt s) args in
      let op' = scale_op s op in
      if work_units op' args' <= profile_budget then s else usable (s / 2)
  in
  let s = usable scale in
  let args_s = List.map (scale_vt s) args in
  let op_s = scale_op s op in
  let t, sd = time_op ~min_time ~engine ~exec_options op_s args_s in
  if s = scale then (t, sd)
  else
    let full =
      work_units (scale_op scale op) (List.map (scale_vt scale) args)
    in
    let f = full /. work_units op_s args_s in
    (t *. f, sd *. f)

(* Persistent lookup-table support: the paper amortizes the one-time
   profiling phase by caching it (Section VII-E); entries are
   "fingerprint<TAB>seconds<TAB>stddev" lines, keyed per engine
   ("vm:..." / "interp:...").  Older two-column files load with a zero
   noise estimate. *)
let load_cache table file =
  match open_in file with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            while true do
              let line = input_line ic in
              match String.split_on_char '\t' line with
              | key :: secs :: rest -> (
                  match float_of_string_opt secs with
                  | Some v ->
                      let sd =
                        match rest with
                        | sd :: _ ->
                            Option.value ~default:0. (float_of_string_opt sd)
                        | [] -> 0.
                      in
                      Hashtbl.replace table key (v, sd)
                  | None -> ())
              | _ -> ()
            done
          with End_of_file -> ())

(* The whole table is rewritten through the store's atomic
   write-rename path: a concurrent reader never observes a torn file,
   and two processes profiling against the same cache file converge on
   the union of their tables (each write reload-merges the file first,
   and timings for a given fingerprint agree up to noise). *)
let save_cache file table =
  let merged = Hashtbl.copy table in
  load_cache merged file;
  Hashtbl.iter (Hashtbl.replace merged) table;
  let lines =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, (v, sd)) -> Printf.sprintf "%s\t%.17g\t%.17g\n" k v sd)
  in
  match Pstore.write_atomic file (String.concat "" lines) with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) -> ()

let measured ?(tel = Obs.Telemetry.null) ?(engine : Texec.Engine.kind = `Vm)
    ?(exec_options = Texec.Engine.Options.default) ?(scale = 12)
    ?(min_time = 1e-3) ?(overhead = 5e-7) ?cache_file () =
  let table : (string, float * float) Hashtbl.t = Hashtbl.create 256 in
  (* The profiling table is shared by every domain of the parallel
     synthesis engine; the lock also serializes the timing runs
     themselves, so concurrent profiling cannot contend for the CPU and
     skew each other's measurements, and each fingerprint is measured
     exactly once. *)
  let lock = Mutex.create () in
  Option.iter (load_cache table) cache_file;
  let cache_hits = Obs.Telemetry.counter tel "cost.cache_hits" in
  let cache_misses = Obs.Telemetry.counter tel "cost.cache_misses" in
  let profile_secs = Obs.Telemetry.acc tel "cost.profile_seconds" in
  let op_cost op args =
    (* Type-check at the original shapes, profile at representative
       (scaled) shapes.  [overhead] models the eager framework's per-op
       dispatch cost, which the sub-microsecond synthesis shapes would
       otherwise hide. *)
    ignore (Dsl.Types.infer_op op args);
    let args' = List.map (scale_vt scale) args in
    let op' = scale_op scale op in
    (* VM timings depend on the planner/VM knobs, so their table keys
       carry the options fingerprint; the interpreter's do not. *)
    let key =
      (match engine with
      | `Interp -> "interp"
      | `Vm ->
          "vm[" ^ Texec.Engine.Options.fingerprint exec_options ^ "]")
      ^ ":"
      ^ op_fingerprint op' args'
    in
    let measured_time, _stddev =
      Mutex.protect lock (fun () ->
          match Hashtbl.find_opt table key with
          | Some c ->
              Obs.Telemetry.Counter.incr cache_hits;
              c
          | None ->
              Obs.Telemetry.Counter.incr cache_misses;
              let t0 = Unix.gettimeofday () in
              let c, sd =
                match
                  profile_extrapolated ~min_time ~scale ~engine ~exec_options
                    op args
                with
                | r -> r
                | exception (Dsl.Types.Type_error _ | Invalid_argument _) ->
                    (* Scaling broke an attribute constraint; fall back
                       to a FLOPs+traffic proxy at the same scaled
                       shapes the table key describes (the scaled
                       attributes no longer infer, so the output size
                       is scaled separately from the unscaled
                       inference). *)
                    let out' =
                      float_of_int
                        (Shape.numel
                           (scale_vt scale (Dsl.Types.infer_op op args)).shape)
                    in
                    ( (flop_count_out ~out:out' op' args' *. 1e-9)
                      +. (bytes_moved_out ~out:out' op' args' *. 1e-10),
                      0. )
              in
              Obs.Telemetry.Acc.add profile_secs
                (Unix.gettimeofday () -. t0);
              if Obs.Telemetry.enabled tel then
                Obs.Telemetry.event tel "cost.profile"
                  [
                    ("key", Obs.Telemetry.Str key);
                    ("seconds", Obs.Telemetry.Float c);
                    ("stddev", Obs.Telemetry.Float sd);
                  ];
              Hashtbl.replace table key (c, sd);
              Option.iter (fun f -> save_cache f table) cache_file;
              (c, sd))
    in
    measured_time +. overhead
  in
  let name =
    match engine with `Vm -> "measured" | `Interp -> "measured-interp"
  in
  { name; op_cost; iter_scale = scale }

let program_cost model (env : Dsl.Types.env) (prog : Dsl.Ast.t) =
  let rec go env (t : Dsl.Ast.t) : Dsl.Types.vt * float =
    match t with
    | Input name -> (
        match List.assoc_opt name env with
        | Some vt -> (vt, 0.)
        | None -> raise (Dsl.Types.Type_error ("unbound input " ^ name)))
    | Const _ -> (Dsl.Types.scalar_f, 0.)
    | App (op, args) ->
        let arg_results = List.map (go env) args in
        let arg_ts = List.map fst arg_results in
        let arg_cost = List.fold_left (fun acc (_, c) -> acc +. c) 0. arg_results in
        (Dsl.Types.infer_op op arg_ts, arg_cost +. model.op_cost op arg_ts)
    | For_stack { var; iter; body } -> (
        match List.assoc_opt iter env with
        | None -> raise (Dsl.Types.Type_error ("unbound input " ^ iter))
        | Some it ->
            let n = it.shape.(0) in
            let slice : Dsl.Types.vt =
              { it with shape = Shape.remove_axis it.shape 0 }
            in
            let body_t, body_cost = go ((var, slice) :: env) body in
            let out : Dsl.Types.vt =
              { body_t with shape = Shape.insert_axis body_t.shape 0 n }
            in
            (* Each iteration re-evaluates the body; the stack itself is
               charged as one stack op over the slices. *)
            let stack_cost =
              model.op_cost (Dsl.Ast.Stack 0) (List.init n (fun _ -> body_t))
            in
            let trips = n * if n > 1 then model.iter_scale else 1 in
            (out, (float_of_int trips *. body_cost) +. stack_cost))
  in
  snd (go env prog)
