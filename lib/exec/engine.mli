(** Compiled execution of DSL programs (exported as [Stenso.Exec]).

    The lowering pipeline turns a {!Dsl.Ast.t} into an SSA tensor IR
    ({!Ir}), plans it ({!Plan}) — fusing elementwise chains into single
    loop nests, folding constant subtrees, aliasing [reshape]/slice
    views, and preallocating an arena of flat unboxed [float array]
    buffers with liveness-driven reuse — and executes it on a
    register-based bytecode VM ({!Vm}) whose inner loops are specialized
    for the hot operations (binary arithmetic, fused elementwise bodies
    run as a vectorized strip machine, reductions, [dot]/[tensordot] as
    row-major matrix multiplies, [transpose], [where]).

    Two engines share one interface: [`Interp] is the tree-walking
    reference interpreter; [`Vm] is the compiled path.  The VM is the
    default engine of the measured cost model and of concrete
    validation; the differential fuzz suite ties the two together. *)

type kind = [ `Interp | `Vm ]

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

type compiled
(** A planned program with its preallocated arena.  Mutable: concurrent
    {!run}s of one compiled program race — serialize them. *)

type stats = {
  ir_nodes : int;  (** IR nodes after CSE, unrolling and folding *)
  steps : int;  (** VM steps emitted *)
  ops_fused : int;  (** operation nodes absorbed into fused loops *)
  consts_folded : int;  (** operation nodes evaluated at compile time *)
  buffers_reused : int;  (** arena slots serving more than one value *)
  arena_slots : int;
  arena_bytes : int;  (** total = peak: the arena is preallocated *)
}

val compile : ?tel:Obs.Telemetry.t -> env:Dsl.Types.env -> Dsl.Ast.t -> compiled
(** Lower, plan and materialize the arena.  [tel] records the
    [exec.compiles] / [exec.ops_fused] / [exec.buffers_reused] /
    [exec.consts_folded] counters, the [exec.arena_bytes] gauge and one
    [exec.compile] event per compilation.  Raises {!Dsl.Types.Type_error}
    on ill-typed programs (including zero-trip comprehensions, which
    cannot be unrolled). *)

val run : compiled -> (string -> Tensor.Ftensor.t) -> Tensor.Ftensor.t
(** Execute.  Steady-state allocation-free: input slots are rebound to
    the caller's arrays (zero-copy), steps run in place over the arena,
    only the final read-out allocates.  Raises [Invalid_argument] when
    an input's element count disagrees with the compilation
    environment. *)

val stats : compiled -> stats
val result_shape : compiled -> Tensor.Shape.t

val eval :
  ?tel:Obs.Telemetry.t ->
  kind ->
  env:Dsl.Types.env ->
  (string -> Tensor.Ftensor.t) ->
  Dsl.Ast.t ->
  Tensor.Ftensor.t
(** One-shot evaluation through the selected engine.  [`Interp] ignores
    [env] and [tel]. *)

(** Compiled-program cache keyed structurally on (environment, program).
    The map is domain-safe; individual compiled programs are not. *)
module Cache : sig
  type t

  val create : unit -> t

  val find_or_compile :
    t -> ?tel:Obs.Telemetry.t -> env:Dsl.Types.env -> Dsl.Ast.t -> compiled

  val size : t -> int
end
