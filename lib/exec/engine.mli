(** Compiled execution of DSL programs (exported as [Stenso.Exec]).

    The lowering pipeline turns a {!Dsl.Ast.t} into an SSA tensor IR,
    plans it — fusing elementwise chains into single loop nests and
    elementwise producers into their reduction consumers, folding
    constant subtrees, aliasing [reshape]/slice views, and
    preallocating an arena of flat unboxed [float array] buffers with
    liveness-driven reuse — and executes it on a bytecode VM whose
    inner loops are specialized for the hot operations: binary
    arithmetic, fused bodies run as a vectorized strip machine,
    reductions with dedicated scalar/row/column kernels,
    [dot]/[tensordot] as cache-blocked row-major matrix multiplies,
    tiled rank-2 [transpose], [where].  Steps over enough data fan out
    across a process-wide domain pool; lane partitioning is chosen so
    results are bitwise identical for every {!Options.domains} value.

    Every planner and VM knob travels through one {!Options} record —
    there are no loose optional arguments on {!compile} or {!eval}.

    Two engines share one interface: [`Interp] is the tree-walking
    reference interpreter; [`Vm] is the compiled path.  The VM is the
    default engine of the measured cost model and of concrete
    validation; the differential fuzz suite ties the two together. *)

(** Planner and VM knobs: fusion, reduction fusion, tile size, domain
    lanes, telemetry sink.  Built with [Options.default |> Options.with_*]
    in the same style as [Stenso.Config]. *)
module Options : sig
  include module type of Opts with type t = Opts.t
end

type kind = [ `Interp | `Vm ]

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

type compiled
(** A planned program with its preallocated arena and scratch.
    Mutable: concurrent {!run}s of one compiled program race — even
    though a single run may itself fan out over many domains — so
    callers sharing one across domains must serialize runs on it. *)

type stats = {
  ir_nodes : int;  (** IR nodes after CSE, unrolling and folding *)
  steps : int;  (** VM steps emitted *)
  ops_fused : int;
      (** operation nodes absorbed into fused loops, including
          elementwise producers inlined into reduction loops *)
  consts_folded : int;  (** operation nodes evaluated at compile time *)
  buffers_reused : int;  (** arena slots serving more than one value *)
  arena_slots : int;
  arena_bytes : int;  (** total = peak: the arena is preallocated *)
  parallel_strips : int;  (** steps planned for more than one lane *)
}

val compile :
  ?options:Options.t -> env:Dsl.Types.env -> Dsl.Ast.t -> compiled
(** Lower, plan and materialize the arena under [options]
    (default {!Options.default}).  [Options.telemetry] records the
    [exec.compiles] / [exec.ops_fused] / [exec.buffers_reused] /
    [exec.consts_folded] / [exec.parallel_strips] counters, the
    [exec.arena_bytes] gauge and one [exec.compile] event per
    compilation.  Raises {!Dsl.Types.Type_error} on ill-typed programs
    (including zero-trip comprehensions, which cannot be unrolled). *)

val run : compiled -> (string -> Tensor.Ftensor.t) -> Tensor.Ftensor.t
(** Execute.  Steady-state allocation-free: input slots are rebound to
    the caller's arrays (zero-copy), steps run in place over the arena
    and per-lane scratch, only the final read-out allocates.  Raises
    [Invalid_argument] when an input's element count disagrees with the
    compilation environment. *)

val stats : compiled -> stats
val result_shape : compiled -> Tensor.Shape.t

val options : compiled -> Options.t
(** The options the program was planned under. *)

val eval :
  ?options:Options.t ->
  kind ->
  env:Dsl.Types.env ->
  (string -> Tensor.Ftensor.t) ->
  Dsl.Ast.t ->
  Tensor.Ftensor.t
(** One-shot evaluation through the selected engine.  [`Interp] ignores
    [env] and [options]. *)

(** Compiled-program cache keyed structurally on (environment, program,
    options fingerprint).  The map is domain-safe; individual compiled
    programs are not. *)
module Cache : sig
  type t

  val create : unit -> t

  val find_or_compile :
    t -> ?options:Options.t -> env:Dsl.Types.env -> Dsl.Ast.t -> compiled

  val size : t -> int
end
