(** Execution options for the compiled engine (exported as
    [Stenso.Exec.Options]).

    One immutable record carries every planner and VM knob, built in
    the same [default |> with_*] style as [Stenso.Config].  It is the
    single way these knobs are configured — {!Engine.compile} and
    {!Engine.eval} take an options value, never loose optional
    arguments. *)

type t = {
  fusion : bool;  (** fuse elementwise chains into strip loops *)
  reduction_fusion : bool;
      (** inline elementwise producers into their [sum]/[max] consumer
          so [sum (f x)] runs single-pass; implies [fusion] *)
  tile : int;  (** cache-block edge for matmul/transpose kernels *)
  domains : int;
      (** parallel lanes for long strips and tiled kernels; [1] runs
          everything in the calling domain.  Results are bitwise
          independent of this value. *)
  tel : Obs.Telemetry.t;  (** sink for [exec.*] compile telemetry *)
}

val default : t
(** Fusion and reduction fusion on, [tile = 64], [domains] =
    [min 8 (Domain.recommended_domain_count ())], null telemetry. *)

val with_fusion : bool -> t -> t
(** Disabling fusion also disables reduction fusion. *)

val with_reduction_fusion : bool -> t -> t
(** Raises [Invalid_argument] when enabling while [fusion] is off. *)

val with_tile : int -> t -> t
(** Raises [Invalid_argument] below 4. *)

val with_domains : int -> t -> t
(** Clamped to the pool's capacity; raises [Invalid_argument] below
    1. *)

val with_telemetry : Obs.Telemetry.t -> t -> t

val fusion : t -> bool
val reduction_fusion : t -> bool
val tile : t -> int
val domains : t -> int
val telemetry : t -> Obs.Telemetry.t

val fingerprint : t -> string
(** Stable rendering of every knob that affects planning or execution
    (the telemetry sink is excluded).  Used to key compiled-program and
    measured-cost caches. *)
