(* SSA-style tensor IR: the lowering target for [Dsl.Ast.t].

   A program is an array of nodes in topological order (every operand id
   is smaller than its user's id), each annotated with its inferred
   value type.  Lowering performs three normalizations the planner and
   VM rely on:

   - {e value numbering}: structurally identical subcomputations (same
     operation over the same node ids) collapse to one node, so a
     program like [(A + B) * (A + B)] evaluates the sum once;
   - {e comprehension unrolling}: [For_stack] bodies are instantiated
     per iteration against an axis-0 slice of the source — trip counts
     are static given the input environment, and an axis-0 slice of a
     row-major tensor is a contiguous view ({!Slice0}), so unrolled
     loops cost no data movement;
   - {e constant folding}: any operation whose operands are all
     constants is evaluated at compile time through the reference
     interpreter, turning [Full]/[Const] subtrees into materialized
     {!Const} tensors. *)

module Ast = Dsl.Ast
module Types = Dsl.Types
module Shape = Tensor.Shape
module F = Tensor.Ftensor

type expr =
  | Input of string
  | Const of F.t  (* literal or folded constant *)
  | Slice0 of int * int  (* axis-0 slice [node].(i): a contiguous view *)
  | Op of Ast.op * int array

type node = { expr : expr; vt : Types.vt }

type t = {
  nodes : node array;  (* topological; operands precede users *)
  result : int;
  env : Types.env;  (* the input environment lowered against *)
  folded : int;  (* operation nodes eliminated by constant folding *)
}

let node t id = t.nodes.(id)
let numel t id = Shape.numel t.nodes.(id).vt.shape

let is_elementwise (op : Ast.op) =
  match op with
  | Add | Sub | Mul | Div | Pow_op | Maximum | Sqrt | Exp | Log | Less | Where
    ->
      true
  | Dot | Tensordot _ | Transpose _ | Sum _ | Max _ | Stack _ | Triu | Tril
  | Diag | Trace | Reshape _ | Full _ ->
      false

(* Uses per node (multiplicity counts: [A + A] uses [A] twice), with the
   result charged one extra use so it is never considered dead. *)
let use_counts t =
  let uses = Array.make (Array.length t.nodes) 0 in
  Array.iter
    (fun n ->
      match n.expr with
      | Input _ | Const _ -> ()
      | Slice0 (src, _) -> uses.(src) <- uses.(src) + 1
      | Op (_, args) -> Array.iter (fun a -> uses.(a) <- uses.(a) + 1) args)
    t.nodes;
  uses.(t.result) <- uses.(t.result) + 1;
  uses

let of_ast ~(env : Types.env) (ast : Ast.t) : t =
  let nodes : node list ref = ref [] (* reversed *) in
  let count = ref 0 in
  let interned : (expr, int) Hashtbl.t = Hashtbl.create 64 in
  let by_id : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let folded = ref 0 in
  let push expr vt =
    match Hashtbl.find_opt interned expr with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        let n = { expr; vt } in
        nodes := n :: !nodes;
        Hashtbl.add interned expr id;
        Hashtbl.add by_id id n;
        id
  in
  let vt_of id = (Hashtbl.find by_id id).vt in
  let const_of id =
    match (Hashtbl.find by_id id).expr with Const c -> Some c | _ -> None
  in
  let push_op op args vt =
    let consts = List.map const_of args in
    if List.for_all Option.is_some consts then
      match Dsl.Interp.apply_op op (List.map Option.get consts) with
      | c ->
          incr folded;
          push (Const c) vt
      | exception _ -> push (Op (op, Array.of_list args)) vt
    else push (Op (op, Array.of_list args)) vt
  in
  (* [bindings] maps comprehension variables to already-lowered nodes;
     inner entries shadow outer ones and the input environment. *)
  let rec go bindings (ast : Ast.t) : int =
    match ast with
    | Ast.Input name -> (
        match List.assoc_opt name bindings with
        | Some id -> id
        | None -> (
            match List.assoc_opt name env with
            | Some vt -> push (Input name) vt
            | None -> raise (Types.Type_error ("unbound input " ^ name))))
    | Ast.Const f -> push (Const (F.scalar f)) Types.scalar_f
    | Ast.App (op, args) ->
        let ids = List.map (go bindings) args in
        let vt = Types.infer_op op (List.map vt_of ids) in
        push_op op ids vt
    | Ast.For_stack { var; iter; body } ->
        let src = go bindings (Ast.Input iter) in
        let src_vt = vt_of src in
        if Shape.rank src_vt.shape = 0 then
          raise (Types.Type_error ("cannot iterate over rank-0 input " ^ iter));
        let trips = src_vt.shape.(0) in
        if trips = 0 then
          raise (Types.Type_error "cannot unroll a zero-trip comprehension");
        let slice_vt =
          { src_vt with Types.shape = Shape.remove_axis src_vt.shape 0 }
        in
        let elems =
          List.init trips (fun i ->
              let sid = push (Slice0 (src, i)) slice_vt in
              go ((var, sid) :: bindings) body)
        in
        let vt = Types.infer_op (Ast.Stack 0) (List.map vt_of elems) in
        push_op (Ast.Stack 0) elems vt
  in
  let result = go [] ast in
  {
    nodes = Array.of_list (List.rev !nodes);
    result;
    env;
    folded = !folded;
  }

let pp_expr ppf = function
  | Input name -> Format.fprintf ppf "input %s" name
  | Const c ->
      if F.numel c = 1 then Format.fprintf ppf "const %g" (F.to_scalar c)
      else Format.fprintf ppf "const %a" Shape.pp (F.shape c)
  | Slice0 (src, i) -> Format.fprintf ppf "slice0 %%%d [%d]" src i
  | Op (op, args) ->
      Format.fprintf ppf "%s(%s)" (Ast.op_name op)
        (String.concat ", "
           (Array.to_list (Array.map (Printf.sprintf "%%%d") args)))

let pp ppf t =
  Array.iteri
    (fun i n ->
      Format.fprintf ppf "%%%d : %a = %a@\n" i Types.pp_vt n.vt pp_expr n.expr)
    t.nodes;
  Format.fprintf ppf "return %%%d@\n" t.result
