(* Execution options: every planner and VM knob, in one immutable
   record built with [default |> with_*] — the same builder style as
   [Stenso.Config].  This record is the only way the knobs are set;
   neither the planner nor the VM takes ad-hoc optional arguments. *)

type t = {
  fusion : bool;
  reduction_fusion : bool;
  tile : int;
  domains : int;
  tel : Obs.Telemetry.t;
}

let default =
  {
    fusion = true;
    reduction_fusion = true;
    tile = 64;
    domains = min 8 (Pool.default_domains ());
    tel = Obs.Telemetry.null;
  }

let with_fusion fusion t =
  (* Reduction fusion inlines producers into reduction loops; with the
     elementwise fuser off it is off too. *)
  if fusion then { t with fusion } else { t with fusion; reduction_fusion = false }

let with_reduction_fusion reduction_fusion t =
  if reduction_fusion && not t.fusion then
    invalid_arg "Exec.Options: reduction fusion requires fusion";
  { t with reduction_fusion }

let with_tile tile t =
  if tile < 4 then invalid_arg "Exec.Options: tile must be >= 4";
  { t with tile }

let with_domains domains t =
  if domains < 1 then invalid_arg "Exec.Options: domains must be >= 1";
  { t with domains = min domains (Pool.max_workers + 1) }

let with_telemetry tel t = { t with tel }

let fusion t = t.fusion
let reduction_fusion t = t.reduction_fusion
let tile t = t.tile
let domains t = t.domains
let telemetry t = t.tel

(* Excludes the telemetry sink: two options values that plan and
   execute identically fingerprint identically. *)
let fingerprint t =
  Printf.sprintf "fus=%b;red=%b;tile=%d;dom=%d" t.fusion t.reduction_fusion
    t.tile t.domains
