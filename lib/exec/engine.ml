(* Engine facade: the switchable execution backends, the options
   record every knob travels through, compiled-program caching, and the
   telemetry wiring for fusion/arena/parallelism statistics. *)

module Ast = Dsl.Ast
module Types = Dsl.Types
module Tel = Obs.Telemetry
module Options = Opts

type kind = [ `Interp | `Vm ]

let kind_name = function `Interp -> "interp" | `Vm -> "vm"

let kind_of_string = function
  | "interp" -> Some `Interp
  | "vm" -> Some `Vm
  | _ -> None

let all_kinds : kind list = [ `Interp; `Vm ]

type compiled = Plan.t
type stats = Plan.stats = {
  ir_nodes : int;
  steps : int;
  ops_fused : int;
  consts_folded : int;
  buffers_reused : int;
  arena_slots : int;
  arena_bytes : int;
  parallel_strips : int;
}

let stats (p : compiled) = p.Plan.stats
let result_shape (p : compiled) = p.Plan.result_shape
let options (p : compiled) = p.Plan.opts

let compile ?(options = Options.default) ~(env : Types.env) (prog : Ast.t) :
    compiled =
  let p = Plan.compile ~opts:options (Ir.of_ast ~env prog) in
  let tel = Options.telemetry options in
  if Tel.enabled tel then begin
    let s = p.Plan.stats in
    Tel.incr tel "exec.compiles";
    Tel.add tel "exec.ops_fused" s.ops_fused;
    Tel.add tel "exec.buffers_reused" s.buffers_reused;
    Tel.add tel "exec.consts_folded" s.consts_folded;
    Tel.add tel "exec.parallel_strips" s.parallel_strips;
    Tel.gauge tel "exec.arena_bytes" (float_of_int s.arena_bytes);
    Tel.event tel "exec.compile"
      [
        ("ir_nodes", Tel.Int s.ir_nodes);
        ("steps", Tel.Int s.steps);
        ("ops_fused", Tel.Int s.ops_fused);
        ("consts_folded", Tel.Int s.consts_folded);
        ("buffers_reused", Tel.Int s.buffers_reused);
        ("arena_slots", Tel.Int s.arena_slots);
        ("arena_bytes", Tel.Int s.arena_bytes);
        ("parallel_strips", Tel.Int s.parallel_strips);
        ("options", Tel.Str (Options.fingerprint options));
      ]
  end;
  p

let run = Vm.run

let eval ?options (kind : kind) ~(env : Types.env) lookup (prog : Ast.t) =
  match kind with
  | `Interp -> Dsl.Interp.eval lookup prog
  | `Vm -> Vm.run (compile ?options ~env prog) lookup

(* Compiled-program cache, keyed structurally on (environment, program,
   options fingerprint) — the same program planned under different
   options is a different compiled artifact.  The map is safe to share
   across domains; each *compiled program* is not (its arena is mutable,
   even though one run may fan out over many domains internally) —
   callers sharing one across domains must serialize runs on it. *)
module Cache = struct
  type key = Types.env * Ast.t * string
  type nonrec t = {
    tbl : (key, compiled) Hashtbl.t;
    lock : Mutex.t;
  }

  let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

  let find_or_compile t ?(options = Options.default) ~env prog =
    let key = (env, prog, Options.fingerprint options) in
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some c -> c
        | None ->
            let c = compile ~options ~env prog in
            Hashtbl.add t.tbl key c;
            c)

  let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)
end
