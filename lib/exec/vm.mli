(** The bytecode VM: executes a planned program over its preallocated
    arena, allocation-free in steady state.

    Steps whose {!Plan.step_lanes} exceeds 1 fan out over the
    process-wide domain pool; partitioning is chosen so results are
    bitwise identical for every lane count (disjoint writes for
    elementwise/tiled/copy steps, per-output ascending chains for axis
    reductions, fixed-size ascending-combined blocks for full
    reductions).  Accumulation orders otherwise match the reference
    interpreter, except full [sum] reductions, which use interleaved
    accumulator chains whose grouping differs by ordinary rounding
    noise.

    A compiled program's arena and per-lane scratch are mutable:
    concurrent runs of one program race — callers sharing one across
    domains must serialize runs on it.

    Private to [texec]: the library exports only {!Engine}. *)

val run : Plan.t -> (string -> Tensor.Ftensor.t) -> Tensor.Ftensor.t
(** Rebind input slots to the caller's arrays (zero-copy), execute the
    step sequence, and read out the result tensor (the only steady-state
    allocation).  Raises [Invalid_argument] when an input's element
    count disagrees with the compilation environment. *)
