(* Planning: from IR to an executable program over a preallocated arena.

   The planner makes every decision that would otherwise cost time or
   allocation at run time:

   - {e fusion}: maximal chains of elementwise operations collapse into
     one loop nest evaluating a postfix scalar program ({!sop}) per
     output element, so intermediates of a chain like
     [sqrt(A*A + B*B) / C] never materialize.  A producer is inlined
     exactly when it is elementwise, has a single consumer, and that
     consumer is either an elementwise operation of the same output
     shape or — with {!Opts.reduction_fusion} — a [Sum]/[Max]
     reduction, whose loop then evaluates the producer body on the fly
     ({!Reduce_fused}) so [sum (f x)] runs as a single pass with no
     materialized intermediate.  Never across [Dot]/[Tensordot] or any
     layout operation, whose inputs must exist as whole buffers;
   - {e superinstructions}: a peephole pass rewrites the postfix body so
     a binary opcode whose second operand is a literal ({!BinC}) or a
     leaf load ({!BinL}) reads it directly instead of first
     materializing a scratch strip, roughly halving strip traffic on
     typical chains;
   - {e aliasing}: [reshape], identity [transpose] and the axis-0 slices
     of unrolled comprehensions are zero-cost views (slot + offset) of
     their operand's buffer;
   - {e buffer planning}: every materialized value gets a slot in a
     preallocated arena of flat float buffers (the same unboxed
     [float array] storage the tensor substrate uses, so inputs bind
     zero-copy), with liveness-driven reuse (exact-size free list), so
     steady-state evaluation performs no allocation;
   - {e index maps}: broadcasting, transposition and the permutations
     that reduce [dot]/[tensordot] to a row-major matrix multiply are
     precomputed as gather maps (output linear index to source linear
     index); rank-2 transposes skip the map entirely and run as a tiled
     kernel ({!Transpose2});
   - {e parallelism}: each step is assigned a static lane count
     ({!step_lanes}) from {!Opts.domains} and its work size; per-lane
     scratch (strip stacks, reduction partials) is preallocated here so
     parallel execution stays allocation-free.  Lane partitioning is
     chosen so results are bitwise identical for every domain count:
     elementwise and tiled steps write disjoint ranges, axis reductions
     split only across independent outputs, and full reductions
     accumulate into fixed-size blocks whose count is independent of
     the lane count, combined in ascending order.

   A compiled program's arena and scratch are mutable state: concurrent
   [run]s of the same program race even though one run may use many
   domains internally.  Callers that share compiled programs across
   domains must serialize runs (the measured cost model's profiling
   lock already does). *)

module Ast = Dsl.Ast
module Types = Dsl.Types
module Shape = Tensor.Shape
module F = Tensor.Ftensor

type buf = float array
(* Same storage as [Ftensor]: input slots are rebound to the caller's
   arrays on each run (zero-copy), so a slot an input occupies is never
   recycled for a step output. *)

(* Postfix scalar bytecode for fused loop bodies, executed by the VM as
   a {e vectorized} stack machine: each opcode processes one strip
   (up to {!strip_len} elements) in a tight monomorphic float loop, so
   dispatch is amortized over the strip and intermediates stay in a few
   L1-resident scratch strips instead of materializing whole tensors.
   Boolean tensors are 0./1. floats, so [SLess] and [Where3] need no
   separate representation. *)
type sbin = SAdd | SSub | SMul | SDiv | SPow | SMax | SLess

type sop =
  | Load of int  (* push the current element of leaf operand i *)
  | Lit of float
  | Bin2 of sbin  (* pop y, pop x, push (x OP y) *)
  | BinC of sbin * float  (* top := top OP literal, in place *)
  | BinL of sbin * int  (* top := top OP leaf i, read directly *)
  | Sqrt1
  | Exp1
  | Log1
  | Where3

(* How a leaf operand is indexed relative to the loop's output index. *)
type access =
  | Dense  (* same shape as the output: the output's linear index *)
  | Cell  (* one-element operand: always element 0 *)
  | Gather of int array  (* precomputed output index -> source index *)

type operand = { src : int; ofs : int; acc : access }

type bin_kind = BAdd | BSub | BMul | BDiv

type step =
  | Bin of { kind : bin_kind; out : int; a : operand; b : operand; n : int }
    (* specialized binary arithmetic over dense/scalar operands, the
       hottest case: one pass, no scratch strips *)
  | Ew of {
      out : int;
      n : int;
      code : sop array;
      leaves : operand array;
      strips : float array array array;
        (* scratch: lane -> stack level -> strip *)
    }
  | Reduce of {
      kind : [ `Sum | `Max ];
      out : int;
      src : int;
      sofs : int;
      outer : int;
      mid : int;
      inner : int;
      partials : float array;
        (* full (scalar) reductions only: fixed-size-block partial
           accumulators — the block count depends on the problem size,
           never on the lane count, so parallel and sequential runs
           combine identically *)
    }  (* source viewed as outer x mid x inner; [mid] is reduced *)
  | Reduce_fused of {
      kind : [ `Sum | `Max ];
      out : int;
      outer : int;
      mid : int;
      inner : int;
      code : sop array;  (* producer body, evaluated per source strip *)
      leaves : operand array;  (* indexed in the *source* space *)
      strips : float array array array;  (* lane -> level -> strip *)
      partials : float array;  (* as in {!Reduce} *)
    }
  | Matmul of {
      out : int;
      a : int;
      aofs : int;
      b : int;
      bofs : int;
      m : int;
      k : int;
      n : int;
    }  (* out[m,n] = a[m,k] . b[k,n], all row-major *)
  | Transpose2 of {
      out : int;
      src : int;
      sofs : int;
      rows : int;
      cols : int;
    }  (* out[c,r] = src[r,c]: rank-2 transpose as a tiled kernel *)
  | Copy of { out : int; src : operand; n : int }
  | Stack_part of {
      out : int;
      oofs : int;
      src : int;
      sofs : int;
      outer : int;
      inner : int;
      stride : int;
    }  (* one stacked operand: outer blocks of [inner], strided out *)
  | Mask of {
      kind : [ `Upper | `Lower ];
      out : int;
      src : int;
      sofs : int;
      rows : int;
      cols : int;
    }
  | Trace_of of { out : int; src : int; sofs : int; rows : int; cols : int }
  | Fill of { out : int; src : int; sofs : int; n : int }

type stats = {
  ir_nodes : int;
  steps : int;
  ops_fused : int;  (* operation nodes absorbed into a fused loop *)
  consts_folded : int;
  buffers_reused : int;  (* arena slots serving more than one value *)
  arena_slots : int;
  arena_bytes : int;  (* the arena is fully preallocated: peak = total *)
  parallel_strips : int;  (* steps planned for more than one lane *)
}

type t = {
  steps : step array;
  slots : buf array;
  inputs : (string * int * int) list;  (* name, slot, element count *)
  result_slot : int;
  result_ofs : int;
  result_shape : Shape.t;
  env : Types.env;
  opts : Opts.t;
  stats : stats;
}

(* Strip length of the vectorized stack machine: 4 KB per scratch strip
   keeps a typical fused body (2-4 stack levels) L1-resident while
   amortizing opcode dispatch over 512 elements. *)
let strip_len = 512

(* Work below this many elements stays sequential: lane handoff costs a
   CAS + signal + wake, which only pays off above L2-ish sizes. *)
let par_threshold = 32768

(* Full (scalar) reductions accumulate this many source elements per
   partial block.  The block count is a function of the problem size
   only, so any lane count — including 1 — produces bitwise-identical
   results. *)
let red_block = 16384

let blocks_of total = if total <= red_block then 1 else (total + red_block - 1) / red_block

let lanes_for ~domains work =
  if domains <= 1 then 1 else max 1 (min domains (work / par_threshold))

(* Lanes a step runs on (1 = sequential).  Shared by the planner (to
   size per-lane scratch and count [parallel_strips]) and the VM (to
   partition ranges): both must agree, and the per-lane scratch of
   [Ew]/[Reduce_fused] is authoritative for them. *)
let step_lanes (opts : Opts.t) (s : step) =
  let domains = opts.Opts.domains in
  match s with
  | Bin b -> lanes_for ~domains b.n
  | Ew e -> Array.length e.strips
  | Reduce r ->
      if r.outer = 1 && r.inner = 1 then
        min (lanes_for ~domains r.mid) (Array.length r.partials)
      else if r.inner = 1 then
        min (lanes_for ~domains (r.outer * r.mid)) r.outer
      else if r.outer = 1 then
        min (lanes_for ~domains (r.mid * r.inner)) r.inner
      else min (lanes_for ~domains (r.outer * r.mid * r.inner)) r.outer
  | Reduce_fused rf -> Array.length rf.strips
  | Matmul mm -> min (lanes_for ~domains (mm.m * mm.k * mm.n)) mm.m
  | Transpose2 tp -> min (lanes_for ~domains (tp.rows * tp.cols)) tp.rows
  | Copy c -> lanes_for ~domains c.n
  | Stack_part _ | Mask _ | Trace_of _ | Fill _ -> 1

(* ------------------------------------------------------------------ *)
(* Postfix bodies                                                      *)
(* ------------------------------------------------------------------ *)

let sop_of_op (op : Ast.op) =
  match op with
  | Ast.Add -> Bin2 SAdd
  | Ast.Sub -> Bin2 SSub
  | Ast.Mul -> Bin2 SMul
  | Ast.Div -> Bin2 SDiv
  | Ast.Pow_op -> Bin2 SPow
  | Ast.Maximum -> Bin2 SMax
  | Ast.Less -> Bin2 SLess
  | Ast.Sqrt -> Sqrt1
  | Ast.Exp -> Exp1
  | Ast.Log -> Log1
  | Ast.Where -> Where3
  | _ -> invalid_arg "sop_of_op: not elementwise"

let sop_delta = function
  | Load _ | Lit _ -> 1
  | Bin2 _ -> -1
  | BinC _ | BinL _ | Sqrt1 | Exp1 | Log1 -> 0
  | Where3 -> -2

(* Fold […; Lit c; Bin2 k] into […; BinC (k, c)] and
   […; Load l; Bin2 k] into […; BinL (k, l)] — valid whenever the
   popped second operand is the literal/load just pushed and an x
   remains beneath it (depth >= 2). *)
let peephole code =
  let out = ref [] and depth = ref 0 in
  let emit c =
    out := c :: !out;
    depth := !depth + sop_delta c
  in
  Array.iter
    (fun c ->
      match (c, !out) with
      | Bin2 k, Lit v :: rest when !depth >= 2 ->
          out := rest;
          depth := !depth - 1;
          emit (BinC (k, v))
      | Bin2 k, Load l :: rest when !depth >= 2 ->
          out := rest;
          depth := !depth - 1;
          emit (BinL (k, l))
      | _ -> emit c)
    code;
  Array.of_list (List.rev !out)

let body_depth code =
  let d = ref 0 and m = ref 1 in
  Array.iter
    (fun c ->
      d := !d + sop_delta c;
      if !d > !m then m := !d)
    code;
  !m

let lane_strips ~lanes ~depth ~len =
  Array.init lanes (fun _ ->
      Array.init depth (fun _ -> Array.make (min len strip_len) 0.))

(* ------------------------------------------------------------------ *)
(* Index-map construction                                              *)
(* ------------------------------------------------------------------ *)

let broadcast_map src_shape out_shape =
  let map = Array.make (Shape.numel out_shape) 0 in
  let li = ref 0 in
  Shape.iter_indices out_shape (fun oi ->
      map.(!li) <- Shape.broadcast_offset src_shape oi;
      incr li);
  map

(* out = transpose(src, perm): out[oi] = src[si] with si.(perm.(d)) =
   oi.(d), i.e. src linear index = sum oi.(d) * strides(src).(perm.(d)). *)
let transpose_map src_shape perm =
  let out_shape = Shape.transpose src_shape perm in
  let st = Shape.strides src_shape in
  let map = Array.make (Shape.numel out_shape) 0 in
  let li = ref 0 in
  Shape.iter_indices out_shape (fun oi ->
      let s = ref 0 in
      Array.iteri (fun d od -> s := !s + (od * st.(perm.(d)))) oi;
      map.(!li) <- !s;
      incr li);
  map

let identity_perm perm =
  let ok = ref true in
  Array.iteri (fun i p -> if p <> i then ok := false) perm;
  !ok

let effective_perm rank = function
  | None -> Shape.reverse_perm rank
  | Some p -> p

(* ------------------------------------------------------------------ *)
(* Contraction lowering                                                *)
(* ------------------------------------------------------------------ *)

(* [dot]/[tensordot] reduce to one row-major matrix multiply, with the
   operands permuted so the contracted axes are trailing (left operand)
   and leading (right operand).  The output needs no permutation: kept
   axes appear left-to-right in exactly the order NumPy specifies. *)
type contraction = {
  a_perm : int array option;  (* gather a into (m, k) layout first *)
  b_perm : int array option;  (* gather b into (k, n) layout first *)
  m : int;
  k : int;
  n : int;
}

let contraction_of op (sa : Shape.t) (sb : Shape.t) : contraction =
  let ra = Shape.rank sa and rb = Shape.rank sb in
  let nontrivial perm = if identity_perm perm then None else Some perm in
  match op with
  | Ast.Dot ->
      (* a's contracted axis is already last; b contracts axis rb-2
         (rb > 1) or axis 0 (vector), which must be brought first. *)
      let k = sa.(ra - 1) in
      let m = Shape.numel sa / k in
      let n = Shape.numel sb / k in
      let b_perm =
        if rb <= 2 then None
        else
          nontrivial
            (Array.init rb (fun i ->
                 if i = 0 then rb - 2
                 else if i <= rb - 2 then i - 1
                 else rb - 1))
      in
      { a_perm = None; b_perm; m; k; n }
  | Ast.Tensordot (axes_a, axes_b) ->
      let axes_a = List.map (Shape.normalize_axis sa) axes_a in
      let axes_b = List.map (Shape.normalize_axis sb) axes_b in
      let keep shape axes =
        List.filter
          (fun i -> not (List.mem i axes))
          (List.init (Shape.rank shape) Fun.id)
      in
      let keep_a = keep sa axes_a and keep_b = keep sb axes_b in
      let k = List.fold_left (fun acc ax -> acc * sa.(ax)) 1 axes_a in
      let m = List.fold_left (fun acc ax -> acc * sa.(ax)) 1 keep_a in
      let n = List.fold_left (fun acc ax -> acc * sb.(ax)) 1 keep_b in
      {
        a_perm = nontrivial (Array.of_list (keep_a @ axes_a));
        b_perm = nontrivial (Array.of_list (axes_b @ keep_b));
        m;
        k;
        n;
      }
  | _ -> invalid_arg "contraction_of: not a contraction"

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type kind = Dead | KInput | KConst of F.t | KAlias | KInlined | KStep

let compile ~(opts : Opts.t) (ir : Ir.t) : t =
  let nodes = ir.Ir.nodes in
  let n_nodes = Array.length nodes in
  let uses = Ir.use_counts ir in
  let shape id = nodes.(id).Ir.vt.Types.shape in
  let numel id = Shape.numel (shape id) in

  (* Sole consumer of single-use nodes (for fusion decisions). *)
  let consumer = Array.make n_nodes (-1) in
  Array.iteri
    (fun u (nd : Ir.node) ->
      let reg a = if uses.(a) = 1 then consumer.(a) <- u in
      match nd.expr with
      | Ir.Op (_, args) -> Array.iter reg args
      | Ir.Slice0 (s, _) -> reg s
      | Ir.Input _ | Ir.Const _ -> ())
    nodes;

  (* Classify nodes.  Aliases record their base and element offset. *)
  let kind = Array.make n_nodes KStep in
  let alias_base = Array.make n_nodes (-1) in
  let alias_delta = Array.make n_nodes 0 in
  let inlineable id (op : Ast.op) =
    opts.Opts.fusion && Ir.is_elementwise op && uses.(id) = 1
    && consumer.(id) >= 0
    &&
    let c = consumer.(id) in
    match nodes.(c).Ir.expr with
    | Ir.Op (cop, _) when Ir.is_elementwise cop ->
        Shape.equal (shape id) (shape c)
    | Ir.Op ((Ast.Sum _ | Ast.Max _), _) -> opts.Opts.reduction_fusion
    | _ -> false
  in
  for id = 0 to n_nodes - 1 do
    let nd = nodes.(id) in
    if uses.(id) = 0 && id <> ir.Ir.result then kind.(id) <- Dead
    else
      match nd.Ir.expr with
      | Ir.Input _ -> kind.(id) <- KInput
      | Ir.Const c -> kind.(id) <- KConst c
      | Ir.Slice0 (src, i) ->
          kind.(id) <- KAlias;
          alias_base.(id) <- src;
          alias_delta.(id) <- i * numel id
      | Ir.Op (Ast.Reshape _, args) ->
          kind.(id) <- KAlias;
          alias_base.(id) <- args.(0)
      | Ir.Op (Ast.Transpose p, args)
        when identity_perm (effective_perm (Shape.rank (shape args.(0))) p) ->
          kind.(id) <- KAlias;
          alias_base.(id) <- args.(0)
      | Ir.Op (op, _) when inlineable id op -> kind.(id) <- KInlined
      | Ir.Op _ -> kind.(id) <- KStep
  done;

  (* The loop an inlined node's reads actually happen in: its chain's
     fusion root (possibly a reduction step). *)
  let group_root = Array.make n_nodes (-1) in
  for id = n_nodes - 1 downto 0 do
    group_root.(id) <-
      (match kind.(id) with
      | KInlined -> group_root.(consumer.(id))
      | _ -> id)
  done;

  (* Storage roots: follow alias chains to the owning node. *)
  let sroot = Array.make n_nodes (-1) in
  let sdelta = Array.make n_nodes 0 in
  for id = 0 to n_nodes - 1 do
    match kind.(id) with
    | KInput | KConst _ | KStep -> sroot.(id) <- id
    | KAlias ->
        let b = alias_base.(id) in
        sroot.(id) <- sroot.(b);
        sdelta.(id) <- sdelta.(b) + alias_delta.(id)
    | Dead | KInlined -> ()
  done;

  (* Liveness over storage roots, in step (= node) order.  An argument
     of an inlined node is read inside the fusion root's loop, so it
     must survive until then. *)
  let last_use = Array.make n_nodes (-1) in
  Array.iteri
    (fun id (nd : Ir.node) ->
      match (kind.(id), nd.Ir.expr) with
      | (KStep | KInlined), Ir.Op (_, args) ->
          let pos = group_root.(id) in
          Array.iter
            (fun a ->
              let r = sroot.(a) in
              if r >= 0 then last_use.(r) <- max last_use.(r) pos)
            args
      | _ -> ())
    nodes;
  let result_root = sroot.(ir.Ir.result) in
  last_use.(result_root) <- max_int;

  (* Arena slot assignment: linear scan with an exact-size free list.
     Input and constant slots are written before the step sequence runs
     (at run start and at compile time respectively), so they can never
     recycle a slot some step writes — they are always fresh.  Constants
     additionally persist across runs and are pinned forever. *)
  let slot_sizes = ref [] in
  let n_slots = ref 0 in
  let free : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let reused = ref 0 in
  let fresh size =
    let s = !n_slots in
    incr n_slots;
    slot_sizes := size :: !slot_sizes;
    s
  in
  let alloc ~reusable size =
    if not reusable then fresh size
    else
      match Hashtbl.find_opt free size with
      | Some ({ contents = s :: rest } as cell) ->
          cell := rest;
          incr reused;
          s
      | _ -> fresh size
  in
  let release size slot =
    match Hashtbl.find_opt free size with
    | Some cell -> cell := slot :: !cell
    | None -> Hashtbl.add free size (ref [ slot ])
  in
  let slot_of = Array.make n_nodes (-1) in
  let ofs_of = Array.make n_nodes 0 in
  let temp_slots = Array.make n_nodes [||] in
  for id = 0 to n_nodes - 1 do
    match kind.(id) with
    | Dead | KInlined -> ()
    | KInput | KConst _ -> slot_of.(id) <- alloc ~reusable:false (numel id)
    | KAlias ->
        let r = sroot.(id) in
        slot_of.(id) <- slot_of.(r);
        ofs_of.(id) <- sdelta.(id)
    | KStep ->
        slot_of.(id) <- alloc ~reusable:true (numel id);
        (match nodes.(id).Ir.expr with
        | Ir.Op (((Ast.Dot | Ast.Tensordot _) as op), args) ->
            let c = contraction_of op (shape args.(0)) (shape args.(1)) in
            let temps =
              List.filter_map Fun.id
                [
                  Option.map (fun _ -> numel args.(0)) c.a_perm;
                  Option.map (fun _ -> numel args.(1)) c.b_perm;
                ]
            in
            let slots =
              List.map (fun size -> (size, alloc ~reusable:true size)) temps
            in
            temp_slots.(id) <- Array.of_list (List.map snd slots);
            List.iter (fun (size, s) -> release size s) slots
        | _ -> ());
        (* Operands whose last read was this step free their slots for
           everything downstream; the output was allocated first, so a
           step never writes into a buffer it is still reading.
           Constants persist across runs and input slots are rebound to
           the caller's arrays (which no step may overwrite), so both
           stay pinned. *)
        for r = 0 to n_nodes - 1 do
          if
            last_use.(r) = id && slot_of.(r) >= 0
            && (match kind.(r) with KConst _ | KInput -> false | _ -> true)
          then release (numel r) slot_of.(r)
        done
  done;
  let sizes = Array.of_list (List.rev !slot_sizes) in

  (* Step emission. *)
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  let ops_fused = ref 0 in
  let storage id = (slot_of.(id), ofs_of.(id)) in
  let operand_for ~out_shape a =
    let s, o = storage a in
    if Shape.equal (shape a) out_shape then { src = s; ofs = o; acc = Dense }
    else if numel a = 1 then { src = s; ofs = o; acc = Cell }
    else { src = s; ofs = o; acc = Gather (broadcast_map (shape a) out_shape) }
  in
  (* Build the postfix body whose per-element value is node [root]'s,
     expanding KInlined producers.  With [as_value] the root itself is
     walked (reduction sources — the root must then be inlineable);
     otherwise the root's own operation is applied over its walked
     arguments (elementwise step roots).  Returns the peepholed code,
     the leaf operands (indexed in [out_shape]'s linear space) and the
     number of operation nodes the body evaluates. *)
  let build_body ~out_shape ~root ~as_value =
    let code = ref [] in
    let leaves = ref [] in
    let n_leaves = ref 0 in
    let leaf_ix : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let n_ops = ref 0 in
    let push c = code := c :: !code in
    let rec walk nid =
      match (kind.(nid), nodes.(nid).Ir.expr) with
      | KInlined, Ir.Op (op, args) -> apply op args
      | KConst c, _ when F.numel c = 1 -> push (Lit (F.to_scalar c))
      | _ -> (
          match Hashtbl.find_opt leaf_ix nid with
          | Some i -> push (Load i)
          | None ->
              let i = !n_leaves in
              incr n_leaves;
              Hashtbl.add leaf_ix nid i;
              leaves := operand_for ~out_shape nid :: !leaves;
              push (Load i))
    and apply op args =
      Array.iter walk args;
      incr n_ops;
      push (sop_of_op op)
    in
    (if as_value then walk root
     else
       match nodes.(root).Ir.expr with
       | Ir.Op (op, args) -> apply op args
       | _ -> assert false);
    let code = peephole (Array.of_list (List.rev !code)) in
    (code, Array.of_list (List.rev !leaves), !n_ops)
  in
  let emit_elementwise id =
    let out_shape = shape id in
    let code, leaves, n_ops = build_body ~out_shape ~root:id ~as_value:false in
    ops_fused := !ops_fused + n_ops - 1;
    let n = Shape.numel out_shape in
    let out = slot_of.(id) in
    let dense_or_cell (o : operand) =
      match o.acc with Dense | Cell -> true | Gather _ -> false
    in
    match code with
    | [| Load a; BinL (((SAdd | SSub | SMul | SDiv) as k), b) |]
      when dense_or_cell leaves.(a)
           && dense_or_cell leaves.(b)
           && (leaves.(a).acc = Dense || leaves.(b).acc = Dense) ->
        let kind =
          match k with SAdd -> BAdd | SSub -> BSub | SMul -> BMul | _ -> BDiv
        in
        emit (Bin { kind; out; a = leaves.(a); b = leaves.(b); n })
    | _ ->
        let lanes = lanes_for ~domains:opts.Opts.domains n in
        let strips = lane_strips ~lanes ~depth:(body_depth code) ~len:n in
        emit (Ew { out; n; code; leaves; strips })
  in
  let emit_permute ~out src perm =
    let ss = shape src in
    let s, o = storage src in
    if Array.length perm = 2 && perm.(0) = 1 && perm.(1) = 0 then
      emit (Transpose2 { out; src = s; sofs = o; rows = ss.(0); cols = ss.(1) })
    else
      emit
        (Copy
           {
             out;
             src = { src = s; ofs = o; acc = Gather (transpose_map ss perm) };
             n = numel src;
           })
  in
  let emit_contraction id op args =
    let a = args.(0) and b = args.(1) in
    let c = contraction_of op (shape a) (shape b) in
    let temps = ref (Array.to_list temp_slots.(id)) in
    let take () =
      match !temps with
      | t :: rest ->
          temps := rest;
          t
      | [] -> assert false
    in
    let materialize src = function
      | None -> storage src
      | Some perm ->
          let t = take () in
          emit_permute ~out:t src perm;
          (t, 0)
    in
    let sa, aofs = materialize a c.a_perm in
    let sb, bofs = materialize b c.b_perm in
    emit
      (Matmul
         {
           out = slot_of.(id);
           a = sa;
           aofs;
           b = sb;
           bofs;
           m = c.m;
           k = c.k;
           n = c.n;
         })
  in
  for id = 0 to n_nodes - 1 do
    if kind.(id) = KStep then
      match nodes.(id).Ir.expr with
      | Ir.Op (op, _) when Ir.is_elementwise op -> emit_elementwise id
      | Ir.Op (((Ast.Dot | Ast.Tensordot _) as op), args) ->
          emit_contraction id op args
      | Ir.Op ((Ast.Sum { axis; _ } | Ast.Max { axis; _ }) as op, args) ->
          (* keepdims only re-tags the output shape (the reduced layout is
             identical either way), so the loop structure ignores it. *)
          let a = args.(0) in
          let s = shape a in
          let outer, mid, inner =
            match axis with
            | None -> (1, Shape.numel s, 1)
            | Some ax ->
                let ax = Shape.normalize_axis s ax in
                let outer = ref 1 and inner = ref 1 in
                Array.iteri
                  (fun i d ->
                    if i < ax then outer := !outer * d
                    else if i > ax then inner := !inner * d)
                  s;
                (!outer, s.(ax), !inner)
          in
          let rkind = match op with Ast.Max _ -> `Max | _ -> `Sum in
          let total = outer * mid * inner in
          let scalar = outer = 1 && inner = 1 in
          let partials =
            if scalar then Array.make (blocks_of total) 0. else [||]
          in
          if kind.(a) = KInlined then begin
            (* The producer body is evaluated strip by strip over the
               *source* index space and drained straight into the
               accumulators: sum (f x) in one pass. *)
            let code, leaves, n_ops =
              build_body ~out_shape:(shape a) ~root:a ~as_value:true
            in
            ops_fused := !ops_fused + n_ops;
            let lanes =
              let domains = opts.Opts.domains in
              if scalar then
                min (lanes_for ~domains total) (Array.length partials)
              else if outer = 1 then 1 (* axis-0: strided drain, keep serial *)
              else min (lanes_for ~domains total) outer
            in
            let strips =
              lane_strips ~lanes ~depth:(body_depth code) ~len:total
            in
            emit
              (Reduce_fused
                 {
                   kind = rkind;
                   out = slot_of.(id);
                   outer;
                   mid;
                   inner;
                   code;
                   leaves;
                   strips;
                   partials;
                 })
          end
          else
            let sa, sofs = storage a in
            emit
              (Reduce
                 {
                   kind = rkind;
                   out = slot_of.(id);
                   src = sa;
                   sofs;
                   outer;
                   mid;
                   inner;
                   partials;
                 })
      | Ir.Op (Ast.Transpose p, args) ->
          let a = args.(0) in
          let perm = effective_perm (Shape.rank (shape a)) p in
          emit_permute ~out:slot_of.(id) a perm
      | Ir.Op (Ast.Stack axis, args) ->
          let parts = Array.length args in
          let es = shape args.(0) in
          let r = Shape.rank es in
          let axis = if axis < 0 then axis + r + 1 else axis in
          let outer = ref 1 and inner = ref 1 in
          Array.iteri
            (fun i d ->
              if i < axis then outer := !outer * d else inner := !inner * d)
            es;
          Array.iteri
            (fun j a ->
              let s, o = storage a in
              emit
                (Stack_part
                   {
                     out = slot_of.(id);
                     oofs = j * !inner;
                     src = s;
                     sofs = o;
                     outer = !outer;
                     inner = !inner;
                     stride = parts * !inner;
                   }))
            args
      | Ir.Op (((Ast.Triu | Ast.Tril) as op), args) ->
          let s = shape args.(0) in
          let sa, sofs = storage args.(0) in
          emit
            (Mask
               {
                 kind = (if op = Ast.Triu then `Upper else `Lower);
                 out = slot_of.(id);
                 src = sa;
                 sofs;
                 rows = s.(0);
                 cols = s.(1);
               })
      | Ir.Op (Ast.Diag, args) ->
          let s = shape args.(0) in
          let rows = s.(0) and cols = s.(1) in
          let sa, sofs = storage args.(0) in
          let map = Array.init (min rows cols) (fun i -> i * (cols + 1)) in
          emit
            (Copy
               {
                 out = slot_of.(id);
                 src = { src = sa; ofs = sofs; acc = Gather map };
                 n = min rows cols;
               })
      | Ir.Op (Ast.Trace, args) ->
          let s = shape args.(0) in
          let sa, sofs = storage args.(0) in
          emit
            (Trace_of
               { out = slot_of.(id); src = sa; sofs; rows = s.(0); cols = s.(1) })
      | Ir.Op (Ast.Full _, args) ->
          let sa, sofs = storage args.(0) in
          emit (Fill { out = slot_of.(id); src = sa; sofs; n = numel id })
      | Ir.Op (Ast.Reshape _, _) ->
          assert false (* aliases, classified above *)
      | Ir.Op _ -> assert false (* elementwise, matched by the guard *)
      | Ir.Input _ | Ir.Const _ | Ir.Slice0 _ -> assert false
  done;

  (* Materialize the arena.  Input slots hold empty placeholders — each
     run rebinds them to the caller's arrays, so they cost nothing here
     and are excluded from the arena accounting.  Constants are written
     once, now. *)
  let input_slot = Array.make (Array.length sizes) false in
  for id = 0 to n_nodes - 1 do
    if kind.(id) = KInput then input_slot.(slot_of.(id)) <- true
  done;
  let slots =
    Array.mapi
      (fun s size -> if input_slot.(s) then [||] else Array.make size 0.)
      sizes
  in
  for id = 0 to n_nodes - 1 do
    match kind.(id) with
    | KConst c ->
        Array.blit (F.unsafe_data c) 0 slots.(slot_of.(id)) 0 (numel id)
    | _ -> ()
  done;
  let inputs =
    List.filter_map Fun.id
      (List.init n_nodes (fun id ->
           match (kind.(id), nodes.(id).Ir.expr) with
           | KInput, Ir.Input name -> Some (name, slot_of.(id), numel id)
           | _ -> None))
  in
  let steps = Array.of_list (List.rev !steps) in
  let arena_bytes = ref 0 in
  Array.iteri
    (fun s size ->
      if not input_slot.(s) then arena_bytes := !arena_bytes + (8 * size))
    sizes;
  let arena_bytes = !arena_bytes in
  let parallel_strips =
    Array.fold_left
      (fun acc s -> if step_lanes opts s > 1 then acc + 1 else acc)
      0 steps
  in
  {
    steps;
    slots;
    inputs;
    result_slot = slot_of.(ir.Ir.result);
    result_ofs = ofs_of.(ir.Ir.result);
    result_shape = shape ir.Ir.result;
    env = ir.Ir.env;
    opts;
    stats =
      {
        ir_nodes = n_nodes;
        steps = Array.length steps;
        ops_fused = !ops_fused;
        consts_folded = ir.Ir.folded;
        buffers_reused = !reused;
        arena_slots = Array.length sizes;
        arena_bytes;
        parallel_strips;
      };
  }
