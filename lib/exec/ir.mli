(** SSA-style tensor IR: the lowering target for {!Dsl.Ast.t}.

    A program is an array of nodes in topological order (every operand
    id is smaller than its user's id), each annotated with its inferred
    value type.  {!of_ast} performs value numbering (structurally
    identical subcomputations collapse to one node), comprehension
    unrolling ([For_stack] bodies instantiate per iteration against
    contiguous axis-0 slices) and constant folding (operations over
    all-constant operands evaluate at compile time).

    Private to [texec]: the library exports only {!Engine}. *)

type expr =
  | Input of string
  | Const of Tensor.Ftensor.t  (** literal or folded constant *)
  | Slice0 of int * int  (** axis-0 slice [node].(i): a contiguous view *)
  | Op of Dsl.Ast.op * int array

type node = { expr : expr; vt : Dsl.Types.vt }

type t = {
  nodes : node array;  (** topological; operands precede users *)
  result : int;
  env : Dsl.Types.env;  (** the input environment lowered against *)
  folded : int;  (** operation nodes eliminated by constant folding *)
}

val node : t -> int -> node
val numel : t -> int -> int

val is_elementwise : Dsl.Ast.op -> bool
(** True for the scalar-per-element operations a fused loop body can
    host (arithmetic, [sqrt]/[exp]/[log], [less], [where]). *)

val use_counts : t -> int array
(** Uses per node, counting multiplicity ([A + A] uses [A] twice); the
    result is charged one extra use so it is never considered dead. *)

val of_ast : env:Dsl.Types.env -> Dsl.Ast.t -> t
(** Raises {!Dsl.Types.Type_error} on ill-typed programs, unbound
    inputs, and zero-trip comprehensions. *)

val pp : Format.formatter -> t -> unit
