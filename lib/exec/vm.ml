(* The bytecode VM: executes a planned program over its preallocated
   arena.  Steady state allocates nothing beyond the result tensor —
   input slots are rebound to the caller's arrays (zero-copy; no step
   writes an input slot), the step sequence runs over flat unboxed
   float buffers, and the final read-out is one flat copy.

   Large steps run on multiple pool lanes ({!Plan.step_lanes}); the
   partitioning is chosen so results are bitwise identical for every
   lane count: elementwise, tiled and copy steps write disjoint index
   ranges, axis reductions split only across independent outputs (each
   accumulated in ascending reduction order), and full reductions
   accumulate fixed-size blocks — a function of the problem size, not
   the lane count — combined in ascending block order by the leader.

   Accumulation orders otherwise match the reference interpreter
   (ascending reduction index; the tiled matmul walks k-blocks and k
   within each block in ascending order, so every c[i,j] sees exactly
   the ascending-k order of the naive i-k-j multiply), so VM results
   coincide with [Dsl.Interp.eval] up to the usual float tolerance
   rather than drift from reassociation.  The one deliberate exception:
   full [sum] reductions use block-partial accumulation with 4
   interleaved accumulators per block, whose grouping differs from the
   interpreter's single left-to-right chain by ordinary rounding
   noise. *)

module Shape = Tensor.Shape
module F = Tensor.Ftensor

(* Partition [0, total) into at most [lanes] contiguous chunks.  With
   one lane the body runs inline — the sequential path is literally the
   parallel path on one lane, which is what makes lane-count
   independence checkable. *)
let split lanes total body =
  if lanes <= 1 then (body ~lane:0 ~lo:0 ~hi:total : unit)
  else
    let chunk = (total + lanes - 1) / lanes in
    Pool.parallel_for ~lanes ~chunk total body

(* Value-for-value equivalent of [Stdlib.Float.max] (NaN propagation
   and the -0/+0 ordering included), but with the ordered comparisons
   first so the hot path is two branches with no [sign_bit] calls.
   [Float.max]'s implementation goes through C externals per element,
   which dominates max-reduction loops. *)
let[@inline] fmax (x : float) (y : float) =
  if y > x then y
  else if x > y then x
  else if x <> x then x (* NaN *)
  else if y <> y then y
  else if x = 0. && 1. /. x = Float.neg_infinity then y (* max(-0, y) *)
  else x

(* ------------------------------------------------------------------ *)
(* Strip machine                                                       *)
(* ------------------------------------------------------------------ *)

(* x.(i) <- x.(i) OP y.(i) *)
let strip_bin2 k (x : float array) (y : float array) len =
  match (k : Plan.sbin) with
  | Plan.SAdd ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i +. Array.unsafe_get y i)
      done
  | Plan.SSub ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i -. Array.unsafe_get y i)
      done
  | Plan.SMul ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i *. Array.unsafe_get y i)
      done
  | Plan.SDiv ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i /. Array.unsafe_get y i)
      done
  | Plan.SPow ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Float.pow (Array.unsafe_get x i) (Array.unsafe_get y i))
      done
  | Plan.SMax ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (fmax (Array.unsafe_get x i) (Array.unsafe_get y i))
      done
  | Plan.SLess ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (if Array.unsafe_get x i < Array.unsafe_get y i then 1. else 0.)
      done

(* x.(i) <- x.(i) OP v *)
let strip_bin_const k (x : float array) v len =
  match (k : Plan.sbin) with
  | Plan.SAdd ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i +. v)
      done
  | Plan.SSub ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i -. v)
      done
  | Plan.SMul ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i *. v)
      done
  | Plan.SDiv ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i /. v)
      done
  | Plan.SPow ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (Float.pow (Array.unsafe_get x i) v)
      done
  | Plan.SMax ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (fmax (Array.unsafe_get x i) v)
      done
  | Plan.SLess ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i (if Array.unsafe_get x i < v then 1. else 0.)
      done

(* x.(i) <- x.(i) OP s.(sb + i): the dense direct-read superinstruction *)
let strip_bin_arr k (x : float array) (s : float array) sb len =
  match (k : Plan.sbin) with
  | Plan.SAdd ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Array.unsafe_get x i +. Array.unsafe_get s (sb + i))
      done
  | Plan.SSub ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Array.unsafe_get x i -. Array.unsafe_get s (sb + i))
      done
  | Plan.SMul ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Array.unsafe_get x i *. Array.unsafe_get s (sb + i))
      done
  | Plan.SDiv ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Array.unsafe_get x i /. Array.unsafe_get s (sb + i))
      done
  | Plan.SPow ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Float.pow (Array.unsafe_get x i) (Array.unsafe_get s (sb + i)))
      done
  | Plan.SMax ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (fmax (Array.unsafe_get x i) (Array.unsafe_get s (sb + i)))
      done
  | Plan.SLess ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (if Array.unsafe_get x i < Array.unsafe_get s (sb + i) then 1.
           else 0.)
      done

(* x.(i) <- x.(i) OP s.(ofs + map.(b + i)) *)
let strip_bin_gather k (x : float array) (s : float array) ofs (map : int array)
    b len =
  match (k : Plan.sbin) with
  | Plan.SAdd ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Array.unsafe_get x i
          +. Array.unsafe_get s (ofs + Array.unsafe_get map (b + i)))
      done
  | Plan.SSub ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Array.unsafe_get x i
          -. Array.unsafe_get s (ofs + Array.unsafe_get map (b + i)))
      done
  | Plan.SMul ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Array.unsafe_get x i
          *. Array.unsafe_get s (ofs + Array.unsafe_get map (b + i)))
      done
  | Plan.SDiv ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Array.unsafe_get x i
          /. Array.unsafe_get s (ofs + Array.unsafe_get map (b + i)))
      done
  | Plan.SPow ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (Float.pow (Array.unsafe_get x i)
             (Array.unsafe_get s (ofs + Array.unsafe_get map (b + i))))
      done
  | Plan.SMax ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (fmax (Array.unsafe_get x i)
             (Array.unsafe_get s (ofs + Array.unsafe_get map (b + i))))
      done
  | Plan.SLess ->
      for i = 0 to len - 1 do
        Array.unsafe_set x i
          (if
             Array.unsafe_get x i
             < Array.unsafe_get s (ofs + Array.unsafe_get map (b + i))
           then 1.
           else 0.)
      done

(* d.(i) <- s.(sb + i) OP v — a [Load] fused with its following
   [BinC], saving one full pass over the strip *)
let load_bin_const k (d : float array) (s : float array) sb v len =
  match (k : Plan.sbin) with
  | Plan.SAdd ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i (Array.unsafe_get s (sb + i) +. v)
      done
  | Plan.SSub ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i (Array.unsafe_get s (sb + i) -. v)
      done
  | Plan.SMul ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i (Array.unsafe_get s (sb + i) *. v)
      done
  | Plan.SDiv ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i (Array.unsafe_get s (sb + i) /. v)
      done
  | Plan.SPow ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i (Float.pow (Array.unsafe_get s (sb + i)) v)
      done
  | Plan.SMax ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i (fmax (Array.unsafe_get s (sb + i)) v)
      done
  | Plan.SLess ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i
          (if Array.unsafe_get s (sb + i) < v then 1. else 0.)
      done

(* d.(i) <- s.(sb + i) OP t.(tb + i) — a [Load] fused with its
   following dense [BinL] *)
let load_bin_arr k (d : float array) (s : float array) sb (t : float array) tb
    len =
  match (k : Plan.sbin) with
  | Plan.SAdd ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i
          (Array.unsafe_get s (sb + i) +. Array.unsafe_get t (tb + i))
      done
  | Plan.SSub ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i
          (Array.unsafe_get s (sb + i) -. Array.unsafe_get t (tb + i))
      done
  | Plan.SMul ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i
          (Array.unsafe_get s (sb + i) *. Array.unsafe_get t (tb + i))
      done
  | Plan.SDiv ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i
          (Array.unsafe_get s (sb + i) /. Array.unsafe_get t (tb + i))
      done
  | Plan.SPow ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i
          (Float.pow
             (Array.unsafe_get s (sb + i))
             (Array.unsafe_get t (tb + i)))
      done
  | Plan.SMax ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i
          (fmax
             (Array.unsafe_get s (sb + i))
             (Array.unsafe_get t (tb + i)))
      done
  | Plan.SLess ->
      for i = 0 to len - 1 do
        Array.unsafe_set d i
          (if Array.unsafe_get s (sb + i) < Array.unsafe_get t (tb + i) then
             1.
           else 0.)
      done

(* Evaluate [code] over the source index range [lo, hi) strip by strip
   on one lane's scratch stack [strips], calling [consume strip len]
   for each completed strip (covering [b, b + len) of the range, in
   ascending order).  A dense [Load] immediately followed by [BinC] or
   a dense/cell [BinL] executes as one fused pass — elementwise the
   same operations, so the fusion is invisible in the bits. *)
let run_body (slots : Plan.buf array) (code : Plan.sop array)
    (leaves : Plan.operand array) (strips : float array array) lo hi consume =
  let ncode = Array.length code in
  let cap = Array.length (Array.unsafe_get strips 0) in
  let base = ref lo in
  while !base < hi do
    let b = !base in
    let len = min (hi - b) cap in
    let sp = ref 0 in
    let pc = ref 0 in
    while !pc < ncode do
      (match Array.unsafe_get code !pc with
      | Plan.Load l ->
          let lf = Array.unsafe_get leaves l in
          let s = slots.(lf.Plan.src) and ofs = lf.Plan.ofs in
          let d = Array.unsafe_get strips !sp in
          (match lf.Plan.acc with
          | Plan.Dense -> (
              let fused =
                if !pc + 1 >= ncode then false
                else
                  match Array.unsafe_get code (!pc + 1) with
                  | Plan.BinC (k, v) ->
                      load_bin_const k d s (ofs + b) v len;
                      true
                  | Plan.BinL (k, l2) -> (
                      let lf2 = Array.unsafe_get leaves l2 in
                      let t = slots.(lf2.Plan.src) and tofs = lf2.Plan.ofs in
                      match lf2.Plan.acc with
                      | Plan.Dense ->
                          load_bin_arr k d s (ofs + b) t (tofs + b) len;
                          true
                      | Plan.Cell ->
                          load_bin_const k d s (ofs + b)
                            (Array.unsafe_get t tofs)
                            len;
                          true
                      | Plan.Gather _ -> false)
                  | _ -> false
              in
              if fused then incr pc
              else Array.blit s (ofs + b) d 0 len)
          | Plan.Cell -> Array.fill d 0 len (Array.unsafe_get s ofs)
          | Plan.Gather map ->
              for i = 0 to len - 1 do
                Array.unsafe_set d i
                  (Array.unsafe_get s (ofs + Array.unsafe_get map (b + i)))
              done);
          incr sp
      | Plan.Lit v ->
          Array.fill (Array.unsafe_get strips !sp) 0 len v;
          incr sp
      | Plan.Bin2 k ->
          strip_bin2 k
            (Array.unsafe_get strips (!sp - 2))
            (Array.unsafe_get strips (!sp - 1))
            len;
          decr sp
      | Plan.BinC (k, v) ->
          strip_bin_const k (Array.unsafe_get strips (!sp - 1)) v len
      | Plan.BinL (k, l) -> (
          let lf = Array.unsafe_get leaves l in
          let s = slots.(lf.Plan.src) and ofs = lf.Plan.ofs in
          let x = Array.unsafe_get strips (!sp - 1) in
          match lf.Plan.acc with
          | Plan.Dense -> strip_bin_arr k x s (ofs + b) len
          | Plan.Cell -> strip_bin_const k x (Array.unsafe_get s ofs) len
          | Plan.Gather map -> strip_bin_gather k x s ofs map b len)
      | Plan.Sqrt1 ->
          let d = Array.unsafe_get strips (!sp - 1) in
          for i = 0 to len - 1 do
            Array.unsafe_set d i (Float.sqrt (Array.unsafe_get d i))
          done
      | Plan.Exp1 ->
          let d = Array.unsafe_get strips (!sp - 1) in
          for i = 0 to len - 1 do
            Array.unsafe_set d i (Float.exp (Array.unsafe_get d i))
          done
      | Plan.Log1 ->
          let d = Array.unsafe_get strips (!sp - 1) in
          for i = 0 to len - 1 do
            Array.unsafe_set d i (Float.log (Array.unsafe_get d i))
          done
      | Plan.Where3 ->
          let c = Array.unsafe_get strips (!sp - 3)
          and x = Array.unsafe_get strips (!sp - 2)
          and y = Array.unsafe_get strips (!sp - 1) in
          for i = 0 to len - 1 do
            Array.unsafe_set c i
              (if Array.unsafe_get c i <> 0. then Array.unsafe_get x i
               else Array.unsafe_get y i)
          done;
          sp := !sp - 2);
      incr pc
    done;
    consume (Array.unsafe_get strips 0) len;
    base := b + len
  done

(* ------------------------------------------------------------------ *)
(* Reduction helpers                                                   *)
(* ------------------------------------------------------------------ *)

(* Ascending-order sum of s.[lo, hi) with 4 interleaved accumulator
   chains: the grouping is a function of the range only, so every lane
   count (and the sequential path) computes the same bits. *)
let sum_range (s : float array) lo hi =
  let n = hi - lo in
  if n < 16 then begin
    let acc = ref 0. in
    for i = lo to hi - 1 do
      acc := !acc +. Array.unsafe_get s i
    done;
    !acc
  end
  else begin
    let q = lo + (n / 4 * 4) in
    let a0 = ref 0. and a1 = ref 0. and a2 = ref 0. and a3 = ref 0. in
    let i = ref lo in
    while !i < q do
      let j = !i in
      a0 := !a0 +. Array.unsafe_get s j;
      a1 := !a1 +. Array.unsafe_get s (j + 1);
      a2 := !a2 +. Array.unsafe_get s (j + 2);
      a3 := !a3 +. Array.unsafe_get s (j + 3);
      i := j + 4
    done;
    let acc = ref (!a0 +. !a1 +. (!a2 +. !a3)) in
    for j = q to hi - 1 do
      acc := !acc +. Array.unsafe_get s j
    done;
    !acc
  end

let max_range (s : float array) lo hi =
  let acc = ref Float.neg_infinity in
  for i = lo to hi - 1 do
    acc := fmax !acc (Array.unsafe_get s i)
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Step execution                                                      *)
(* ------------------------------------------------------------------ *)

let exec_step (opts : Opts.t) (slots : Plan.buf array) (step : Plan.step) =
  let lanes = Plan.step_lanes opts step in
  match step with
  | Plan.Bin { kind; out; a; b; n } ->
      let o = slots.(out) in
      let ab = slots.(a.Plan.src) and bb = slots.(b.Plan.src) in
      let ao = a.Plan.ofs and bo = b.Plan.ofs in
      split lanes n (fun ~lane:_ ~lo ~hi ->
          match (a.Plan.acc, b.Plan.acc) with
          | Plan.Dense, Plan.Dense -> (
              match kind with
              | Plan.BAdd ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i
                      (Array.unsafe_get ab (ao + i)
                      +. Array.unsafe_get bb (bo + i))
                  done
              | Plan.BSub ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i
                      (Array.unsafe_get ab (ao + i)
                      -. Array.unsafe_get bb (bo + i))
                  done
              | Plan.BMul ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i
                      (Array.unsafe_get ab (ao + i)
                      *. Array.unsafe_get bb (bo + i))
                  done
              | Plan.BDiv ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i
                      (Array.unsafe_get ab (ao + i)
                      /. Array.unsafe_get bb (bo + i))
                  done)
          | Plan.Dense, Plan.Cell -> (
              let bv = Array.unsafe_get bb bo in
              match kind with
              | Plan.BAdd ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i (Array.unsafe_get ab (ao + i) +. bv)
                  done
              | Plan.BSub ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i (Array.unsafe_get ab (ao + i) -. bv)
                  done
              | Plan.BMul ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i (Array.unsafe_get ab (ao + i) *. bv)
                  done
              | Plan.BDiv ->
                  (* dividing a whole tensor by one broadcast scalar:
                     one division up front, multiplies in the loop —
                     within 1 ulp of dividing elementwise, and an
                     identical plan at every lane count, so results
                     stay bitwise domain-independent *)
                  let inv = 1. /. bv in
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i (Array.unsafe_get ab (ao + i) *. inv)
                  done)
          | Plan.Cell, Plan.Dense -> (
              let av = Array.unsafe_get ab ao in
              match kind with
              | Plan.BAdd ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i (av +. Array.unsafe_get bb (bo + i))
                  done
              | Plan.BSub ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i (av -. Array.unsafe_get bb (bo + i))
                  done
              | Plan.BMul ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i (av *. Array.unsafe_get bb (bo + i))
                  done
              | Plan.BDiv ->
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i (av /. Array.unsafe_get bb (bo + i))
                  done)
          | _ -> assert false (* the planner emits Bin only for these *))
  | Plan.Ew { out; n; code; leaves; strips } ->
      let o = slots.(out) in
      split lanes n (fun ~lane ~lo ~hi ->
          let pos = ref lo in
          run_body slots code leaves (Array.unsafe_get strips lane) lo hi
            (fun d len ->
              Array.blit d 0 o !pos len;
              pos := !pos + len))
  | Plan.Reduce { kind; out; src; sofs; outer; mid; inner; partials } -> (
      let o = slots.(out) and s = slots.(src) in
      if outer = 1 && inner = 1 then begin
        (* full reduction: fixed-size blocks, combined in ascending
           order by the leader *)
        let nb = Array.length partials in
        (match kind with
        | `Sum ->
            split lanes nb (fun ~lane:_ ~lo ~hi ->
                for blk = lo to hi - 1 do
                  let b0 = sofs + (blk * Plan.red_block) in
                  let b1 = sofs + min mid ((blk + 1) * Plan.red_block) in
                  Array.unsafe_set partials blk (sum_range s b0 b1)
                done)
        | `Max ->
            split lanes nb (fun ~lane:_ ~lo ~hi ->
                for blk = lo to hi - 1 do
                  let b0 = sofs + (blk * Plan.red_block) in
                  let b1 = sofs + min mid ((blk + 1) * Plan.red_block) in
                  Array.unsafe_set partials blk (max_range s b0 b1)
                done));
        let acc = ref (Array.unsafe_get partials 0) in
        (match kind with
        | `Sum ->
            for blk = 1 to nb - 1 do
              acc := !acc +. Array.unsafe_get partials blk
            done
        | `Max ->
            for blk = 1 to nb - 1 do
              acc := fmax !acc (Array.unsafe_get partials blk)
            done);
        Array.unsafe_set o 0 !acc
      end
      else if inner = 1 then
        (* one independent ascending chain per output row *)
        match kind with
        | `Sum ->
            split lanes outer (fun ~lane:_ ~lo ~hi ->
                for ob = lo to hi - 1 do
                  let sb = sofs + (ob * mid) in
                  let acc = ref 0. in
                  for i = sb to sb + mid - 1 do
                    acc := !acc +. Array.unsafe_get s i
                  done;
                  Array.unsafe_set o ob !acc
                done)
        | `Max ->
            split lanes outer (fun ~lane:_ ~lo ~hi ->
                for ob = lo to hi - 1 do
                  let sb = sofs + (ob * mid) in
                  Array.unsafe_set o ob (max_range s sb (sb + mid))
                done)
      else if outer = 1 then
        (* axis 0: split across output columns; each column accumulates
           in ascending m order *)
        match kind with
        | `Sum ->
            split lanes inner (fun ~lane:_ ~lo ~hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set o i 0.
                done;
                for m = 0 to mid - 1 do
                  let smb = sofs + (m * inner) in
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i
                      (Array.unsafe_get o i +. Array.unsafe_get s (smb + i))
                  done
                done)
        | `Max ->
            split lanes inner (fun ~lane:_ ~lo ~hi ->
                for i = lo to hi - 1 do
                  Array.unsafe_set o i Float.neg_infinity
                done;
                for m = 0 to mid - 1 do
                  let smb = sofs + (m * inner) in
                  for i = lo to hi - 1 do
                    Array.unsafe_set o i
                      (fmax (Array.unsafe_get o i)
                         (Array.unsafe_get s (smb + i)))
                  done
                done)
      else
        (* general middle-axis reduction: split across outer blocks *)
        match kind with
        | `Sum ->
            split lanes outer (fun ~lane:_ ~lo ~hi ->
                for ob = lo to hi - 1 do
                  let obase = ob * inner
                  and sbase = sofs + (ob * mid * inner) in
                  for i = 0 to inner - 1 do
                    Array.unsafe_set o (obase + i) 0.
                  done;
                  for m = 0 to mid - 1 do
                    let smb = sbase + (m * inner) in
                    for i = 0 to inner - 1 do
                      Array.unsafe_set o (obase + i)
                        (Array.unsafe_get o (obase + i)
                        +. Array.unsafe_get s (smb + i))
                    done
                  done
                done)
        | `Max ->
            split lanes outer (fun ~lane:_ ~lo ~hi ->
                for ob = lo to hi - 1 do
                  let obase = ob * inner
                  and sbase = sofs + (ob * mid * inner) in
                  for i = 0 to inner - 1 do
                    Array.unsafe_set o (obase + i) Float.neg_infinity
                  done;
                  for m = 0 to mid - 1 do
                    let smb = sbase + (m * inner) in
                    for i = 0 to inner - 1 do
                      Array.unsafe_set o (obase + i)
                        (fmax
                           (Array.unsafe_get o (obase + i))
                           (Array.unsafe_get s (smb + i)))
                    done
                  done
                done))
  | Plan.Reduce_fused
      { kind; out; outer; mid; inner; code; leaves; strips; partials } -> (
      let o = slots.(out) in
      let total = outer * mid * inner in
      if outer = 1 && inner = 1 then begin
        (* single pass: evaluate the producer body per strip and fold
           each fixed-size block into its partial *)
        let nb = Array.length partials in
        (match kind with
        | `Sum ->
            split lanes nb (fun ~lane ~lo ~hi ->
                let st = Array.unsafe_get strips lane in
                for blk = lo to hi - 1 do
                  let b0 = blk * Plan.red_block in
                  let b1 = min total ((blk + 1) * Plan.red_block) in
                  let acc = ref 0. in
                  run_body slots code leaves st b0 b1 (fun d len ->
                      acc := !acc +. sum_range d 0 len);
                  Array.unsafe_set partials blk !acc
                done)
        | `Max ->
            split lanes nb (fun ~lane ~lo ~hi ->
                let st = Array.unsafe_get strips lane in
                for blk = lo to hi - 1 do
                  let b0 = blk * Plan.red_block in
                  let b1 = min total ((blk + 1) * Plan.red_block) in
                  let acc = ref Float.neg_infinity in
                  run_body slots code leaves st b0 b1 (fun d len ->
                      acc := fmax !acc (max_range d 0 len));
                  Array.unsafe_set partials blk !acc
                done));
        let acc = ref (Array.unsafe_get partials 0) in
        (match kind with
        | `Sum ->
            for blk = 1 to nb - 1 do
              acc := !acc +. Array.unsafe_get partials blk
            done
        | `Max ->
            for blk = 1 to nb - 1 do
              acc := fmax !acc (Array.unsafe_get partials blk)
            done);
        Array.unsafe_set o 0 !acc
      end
      else if inner = 1 then
        (* rows: drain the body in row-bounded runs, carrying the
           (row, count, acc) cursor across strips.  Each output still
           accumulates element-by-element in ascending order (sum), or
           through [fmax], which is associative, so run boundaries
           — which shift with the lane count — cannot show up in the
           bits. *)
        match kind with
        | `Sum ->
            split lanes outer (fun ~lane ~lo ~hi ->
                let st = Array.unsafe_get strips lane in
                let ob = ref lo and m = ref 0 and acc = ref 0. in
                run_body slots code leaves st (lo * mid) (hi * mid)
                  (fun d len ->
                    let i = ref 0 in
                    while !i < len do
                      let run = min (mid - !m) (len - !i) in
                      let a = ref !acc in
                      for j = !i to !i + run - 1 do
                        a := !a +. Array.unsafe_get d j
                      done;
                      i := !i + run;
                      m := !m + run;
                      if !m = mid then begin
                        Array.unsafe_set o !ob !a;
                        acc := 0.;
                        m := 0;
                        incr ob
                      end
                      else acc := !a
                    done))
        | `Max ->
            split lanes outer (fun ~lane ~lo ~hi ->
                let st = Array.unsafe_get strips lane in
                let ob = ref lo
                and m = ref 0
                and acc = ref Float.neg_infinity in
                run_body slots code leaves st (lo * mid) (hi * mid)
                  (fun d len ->
                    let i = ref 0 in
                    while !i < len do
                      let run = min (mid - !m) (len - !i) in
                      let a = fmax !acc (max_range d !i (!i + run)) in
                      i := !i + run;
                      m := !m + run;
                      if !m = mid then begin
                        Array.unsafe_set o !ob a;
                        acc := Float.neg_infinity;
                        m := 0;
                        incr ob
                      end
                      else acc := a
                    done))
      else if outer = 1 then begin
        (* axis 0: the output column cycles with the strip; serial (the
           planner allocates one lane) *)
        (match kind with
        | `Sum ->
            for i = 0 to inner - 1 do
              Array.unsafe_set o i 0.
            done
        | `Max ->
            for i = 0 to inner - 1 do
              Array.unsafe_set o i Float.neg_infinity
            done);
        let st = Array.unsafe_get strips 0 in
        let col = ref 0 in
        (* column-bounded runs: each column accumulates in ascending m
           order whatever the run boundaries *)
        match kind with
        | `Sum ->
            run_body slots code leaves st 0 total (fun d len ->
                let i = ref 0 in
                while !i < len do
                  let run = min (inner - !col) (len - !i) in
                  let c0 = !col and i0 = !i in
                  for j = 0 to run - 1 do
                    let oi = c0 + j in
                    Array.unsafe_set o oi
                      (Array.unsafe_get o oi +. Array.unsafe_get d (i0 + j))
                  done;
                  i := i0 + run;
                  col := c0 + run;
                  if !col = inner then col := 0
                done)
        | `Max ->
            run_body slots code leaves st 0 total (fun d len ->
                let i = ref 0 in
                while !i < len do
                  let run = min (inner - !col) (len - !i) in
                  let c0 = !col and i0 = !i in
                  for j = 0 to run - 1 do
                    let oi = c0 + j in
                    Array.unsafe_set o oi
                      (fmax (Array.unsafe_get o oi)
                         (Array.unsafe_get d (i0 + j)))
                  done;
                  i := i0 + run;
                  col := c0 + run;
                  if !col = inner then col := 0
                done)
      end
      else
        (* general: split across outer blocks, 3-counter drain *)
        let drain ~combine ~init =
          split lanes outer (fun ~lane ~lo ~hi ->
              let st = Array.unsafe_get strips lane in
              for oi = lo * inner to (hi * inner) - 1 do
                Array.unsafe_set o oi init
              done;
              let obase = ref (lo * inner) and m = ref 0 and col = ref 0 in
              run_body slots code leaves st
                (lo * mid * inner)
                (hi * mid * inner)
                (fun d len ->
                  (* column-bounded runs, as in the axis-0 case *)
                  let i = ref 0 in
                  while !i < len do
                    let run = min (inner - !col) (len - !i) in
                    let ob = !obase and c0 = !col and i0 = !i in
                    for j = 0 to run - 1 do
                      let oi = ob + c0 + j in
                      Array.unsafe_set o oi
                        (combine (Array.unsafe_get o oi)
                           (Array.unsafe_get d (i0 + j)))
                    done;
                    i := i0 + run;
                    col := c0 + run;
                    if !col = inner then begin
                      col := 0;
                      incr m;
                      if !m = mid then begin
                        m := 0;
                        obase := !obase + inner
                      end
                    end
                  done))
        in
        match kind with
        | `Sum -> drain ~combine:( +. ) ~init:0.
        | `Max -> drain ~combine:fmax ~init:Float.neg_infinity)
  | Plan.Matmul { out; a; aofs; b; bofs; m; k; n } ->
      (* cache-blocked i-k-j with the k loop unrolled by 4: k-blocks
         ascend and within a block each c[i,j] is updated as
         (((c + a0*b0) + a1*b1) + a2*b2) + a3*b3 — exactly the
         ascending-k order of the naive multiply, so tiling and
         unrolling change locality and loop overhead, not bits.  The
         unroll amortizes the c[i,j] load/store over four
         multiply-adds.  Lanes take disjoint row ranges. *)
      let c = slots.(out) and ab = slots.(a) and bb = slots.(b) in
      let tile = opts.Opts.tile in
      split lanes m (fun ~lane:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            let cb = i * n in
            for j = 0 to n - 1 do
              Array.unsafe_set c (cb + j) 0.
            done
          done;
          let jj = ref 0 in
          while !jj < n do
            let jhi = min n (!jj + tile) in
            let kk = ref 0 in
            while !kk < k do
              let khi = min k (!kk + tile) in
              let i = ref lo in
              while !i + 1 < hi do
                (* two rows share the four B rows: B traffic per flop
                   halves; each row keeps its own ascending-k chain *)
                let arow = aofs + (!i * k)
                and arow' = aofs + ((!i + 1) * k)
                and cb = !i * n
                and cb' = (!i + 1) * n in
                let l = ref !kk in
                while !l + 3 < khi do
                  let l0 = !l in
                  let a0 = Array.unsafe_get ab (arow + l0)
                  and a1 = Array.unsafe_get ab (arow + l0 + 1)
                  and a2 = Array.unsafe_get ab (arow + l0 + 2)
                  and a3 = Array.unsafe_get ab (arow + l0 + 3)
                  and a0' = Array.unsafe_get ab (arow' + l0)
                  and a1' = Array.unsafe_get ab (arow' + l0 + 1)
                  and a2' = Array.unsafe_get ab (arow' + l0 + 2)
                  and a3' = Array.unsafe_get ab (arow' + l0 + 3) in
                  let b0 = bofs + (l0 * n)
                  and b1 = bofs + ((l0 + 1) * n)
                  and b2 = bofs + ((l0 + 2) * n)
                  and b3 = bofs + ((l0 + 3) * n) in
                  for j = !jj to jhi - 1 do
                    let v0 = Array.unsafe_get bb (b0 + j)
                    and v1 = Array.unsafe_get bb (b1 + j)
                    and v2 = Array.unsafe_get bb (b2 + j)
                    and v3 = Array.unsafe_get bb (b3 + j) in
                    Array.unsafe_set c (cb + j)
                      (((Array.unsafe_get c (cb + j) +. (a0 *. v0))
                        +. (a1 *. v1) +. (a2 *. v2))
                      +. (a3 *. v3));
                    Array.unsafe_set c (cb' + j)
                      (((Array.unsafe_get c (cb' + j) +. (a0' *. v0))
                        +. (a1' *. v1) +. (a2' *. v2))
                      +. (a3' *. v3))
                  done;
                  l := l0 + 4
                done;
                while !l < khi do
                  let av = Array.unsafe_get ab (arow + !l)
                  and av' = Array.unsafe_get ab (arow' + !l) in
                  let brow = bofs + (!l * n) in
                  for j = !jj to jhi - 1 do
                    let bv = Array.unsafe_get bb (brow + j) in
                    Array.unsafe_set c (cb + j)
                      (Array.unsafe_get c (cb + j) +. (av *. bv));
                    Array.unsafe_set c (cb' + j)
                      (Array.unsafe_get c (cb' + j) +. (av' *. bv))
                  done;
                  incr l
                done;
                i := !i + 2
              done;
              if !i < hi then begin
                let arow = aofs + (!i * k) and cb = !i * n in
                let l = ref !kk in
                while !l + 3 < khi do
                  let l0 = !l in
                  let a0 = Array.unsafe_get ab (arow + l0)
                  and a1 = Array.unsafe_get ab (arow + l0 + 1)
                  and a2 = Array.unsafe_get ab (arow + l0 + 2)
                  and a3 = Array.unsafe_get ab (arow + l0 + 3) in
                  let b0 = bofs + (l0 * n)
                  and b1 = bofs + ((l0 + 1) * n)
                  and b2 = bofs + ((l0 + 2) * n)
                  and b3 = bofs + ((l0 + 3) * n) in
                  for j = !jj to jhi - 1 do
                    Array.unsafe_set c (cb + j)
                      (((Array.unsafe_get c (cb + j)
                        +. (a0 *. Array.unsafe_get bb (b0 + j)))
                        +. (a1 *. Array.unsafe_get bb (b1 + j))
                        +. (a2 *. Array.unsafe_get bb (b2 + j)))
                      +. (a3 *. Array.unsafe_get bb (b3 + j)))
                  done;
                  l := l0 + 4
                done;
                while !l < khi do
                  let av = Array.unsafe_get ab (arow + !l) in
                  let brow = bofs + (!l * n) in
                  for j = !jj to jhi - 1 do
                    Array.unsafe_set c (cb + j)
                      (Array.unsafe_get c (cb + j)
                      +. (av *. Array.unsafe_get bb (brow + j)))
                  done;
                  incr l
                done
              end;
              kk := khi
            done;
            jj := jhi
          done)
  | Plan.Transpose2 { out; src; sofs; rows; cols } ->
      let o = slots.(out) and s = slots.(src) in
      let tile = opts.Opts.tile in
      split lanes rows (fun ~lane:_ ~lo ~hi ->
          let ii = ref lo in
          while !ii < hi do
            let ih = min hi (!ii + tile) in
            let jj = ref 0 in
            while !jj < cols do
              let jh = min cols (!jj + tile) in
              (* within a tile, write each output row contiguously and
                 take the stride on the loads: strided write-allocate
                 stores thrash badly when [cols] is a power of two *)
              for j = !jj to jh - 1 do
                let ob = (j * rows) + !ii in
                let si = ref (sofs + (!ii * cols) + j) in
                for i = 0 to ih - !ii - 1 do
                  Array.unsafe_set o (ob + i) (Array.unsafe_get s !si);
                  si := !si + cols
                done
              done;
              jj := jh
            done;
            ii := ih
          done)
  | Plan.Copy { out; src; n } -> (
      let o = slots.(out) and s = slots.(src.Plan.src) in
      let ofs = src.Plan.ofs in
      match src.Plan.acc with
      | Plan.Dense ->
          split lanes n (fun ~lane:_ ~lo ~hi ->
              Array.blit s (ofs + lo) o lo (hi - lo))
      | Plan.Cell ->
          let v = Array.unsafe_get s ofs in
          Array.fill o 0 n v
      | Plan.Gather map ->
          split lanes n (fun ~lane:_ ~lo ~hi ->
              for i = lo to hi - 1 do
                Array.unsafe_set o i
                  (Array.unsafe_get s (ofs + Array.unsafe_get map i))
              done))
  | Plan.Stack_part { out; oofs; src; sofs; outer; inner; stride } ->
      let o = slots.(out) and s = slots.(src) in
      for ob = 0 to outer - 1 do
        Array.blit s (sofs + (ob * inner)) o (oofs + (ob * stride)) inner
      done
  | Plan.Mask { kind; out; src; sofs; rows; cols } ->
      let o = slots.(out) and s = slots.(src) in
      let keep =
        match kind with
        | `Upper -> fun i j -> j >= i
        | `Lower -> fun i j -> j <= i
      in
      for i = 0 to rows - 1 do
        let rb = i * cols in
        for j = 0 to cols - 1 do
          Array.unsafe_set o (rb + j)
            (if keep i j then Array.unsafe_get s (sofs + rb + j) else 0.)
        done
      done
  | Plan.Trace_of { out; src; sofs; rows; cols } ->
      let s = slots.(src) in
      let acc = ref 0. in
      for i = 0 to min rows cols - 1 do
        acc := !acc +. Array.unsafe_get s (sofs + (i * (cols + 1)))
      done;
      Array.unsafe_set slots.(out) 0 !acc
  | Plan.Fill { out; src; sofs; n } ->
      let o = slots.(out) in
      Array.fill o 0 n (Array.unsafe_get slots.(src) sofs)

let run (p : Plan.t) (lookup : string -> F.t) : F.t =
  List.iter
    (fun (name, slot, count) ->
      let t = lookup name in
      let data = F.unsafe_data t in
      if Array.length data <> count then
        invalid_arg
          (Printf.sprintf "exec: input %s has %d elements, expected %d" name
             (Array.length data) count);
      p.Plan.slots.(slot) <- data)
    p.Plan.inputs;
  let steps = p.Plan.steps in
  let opts = p.Plan.opts in
  for i = 0 to Array.length steps - 1 do
    exec_step opts p.Plan.slots (Array.unsafe_get steps i)
  done;
  let n = Shape.numel p.Plan.result_shape in
  let rb = p.Plan.slots.(p.Plan.result_slot) in
  F.unsafe_of_data p.Plan.result_shape (Array.sub rb p.Plan.result_ofs n)
