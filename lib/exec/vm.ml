(* The bytecode VM: executes a planned program over its preallocated
   arena.  Steady state allocates nothing beyond the result tensor —
   input slots are rebound to the caller's arrays (zero-copy; no step
   writes an input slot), the step sequence runs over flat unboxed
   float buffers, and the final read-out is one flat copy.

   Accumulation orders match the reference interpreter (ascending
   reduction index, i-k-j matrix multiply), so VM results coincide with
   [Dsl.Interp.eval] up to the usual float tolerance rather than drift
   from reassociation. *)

module Shape = Tensor.Shape
module F = Tensor.Ftensor

let exec_step (slots : Plan.buf array) (step : Plan.step) =
  match step with
  | Plan.Bin { kind; out; a; b; n } -> (
      let o = slots.(out) in
      let ab = slots.(a.Plan.src) and bb = slots.(b.Plan.src) in
      let ao = a.Plan.ofs and bo = b.Plan.ofs in
      match kind with
      | Plan.BAdd ->
          for i = 0 to n - 1 do
            Array.unsafe_set o i
              (Array.unsafe_get ab (ao + i) +. Array.unsafe_get bb (bo + i))
          done
      | Plan.BSub ->
          for i = 0 to n - 1 do
            Array.unsafe_set o i
              (Array.unsafe_get ab (ao + i) -. Array.unsafe_get bb (bo + i))
          done
      | Plan.BMul ->
          for i = 0 to n - 1 do
            Array.unsafe_set o i
              (Array.unsafe_get ab (ao + i) *. Array.unsafe_get bb (bo + i))
          done
      | Plan.BDiv ->
          for i = 0 to n - 1 do
            Array.unsafe_set o i
              (Array.unsafe_get ab (ao + i) /. Array.unsafe_get bb (bo + i))
          done)
  | Plan.Ew { out; n; code; leaves; strips } ->
      (* Vectorized stack machine: every opcode runs a tight float loop
         over one strip, so dispatch amortizes and the intermediate
         strips stay in L1 instead of materializing whole tensors. *)
      let o = slots.(out) in
      let ncode = Array.length code in
      let base = ref 0 in
      while !base < n do
        let b = !base in
        let len = min (n - b) (Array.length (Array.unsafe_get strips 0)) in
        let sp = ref 0 in
        for pc = 0 to ncode - 1 do
          (match Array.unsafe_get code pc with
          | Plan.Load l ->
              let lf = Array.unsafe_get leaves l in
              let s = slots.(lf.Plan.src) and ofs = lf.Plan.ofs in
              let d = Array.unsafe_get strips !sp in
              (match lf.Plan.acc with
              | Plan.Dense -> Array.blit s (ofs + b) d 0 len
              | Plan.Cell -> Array.fill d 0 len (Array.unsafe_get s ofs)
              | Plan.Gather map ->
                  for i = 0 to len - 1 do
                    Array.unsafe_set d i
                      (Array.unsafe_get s
                         (ofs + Array.unsafe_get map (b + i)))
                  done);
              incr sp
          | Plan.Lit v ->
              Array.fill (Array.unsafe_get strips !sp) 0 len v;
              incr sp
          | Plan.Sqrt1 ->
              let d = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set d i (Float.sqrt (Array.unsafe_get d i))
              done
          | Plan.Exp1 ->
              let d = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set d i (Float.exp (Array.unsafe_get d i))
              done
          | Plan.Log1 ->
              let d = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set d i (Float.log (Array.unsafe_get d i))
              done
          | Plan.Add2 ->
              let x = Array.unsafe_get strips (!sp - 2)
              and y = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set x i
                  (Array.unsafe_get x i +. Array.unsafe_get y i)
              done;
              decr sp
          | Plan.Sub2 ->
              let x = Array.unsafe_get strips (!sp - 2)
              and y = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set x i
                  (Array.unsafe_get x i -. Array.unsafe_get y i)
              done;
              decr sp
          | Plan.Mul2 ->
              let x = Array.unsafe_get strips (!sp - 2)
              and y = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set x i
                  (Array.unsafe_get x i *. Array.unsafe_get y i)
              done;
              decr sp
          | Plan.Div2 ->
              let x = Array.unsafe_get strips (!sp - 2)
              and y = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set x i
                  (Array.unsafe_get x i /. Array.unsafe_get y i)
              done;
              decr sp
          | Plan.Pow2 ->
              let x = Array.unsafe_get strips (!sp - 2)
              and y = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set x i
                  (Float.pow (Array.unsafe_get x i) (Array.unsafe_get y i))
              done;
              decr sp
          | Plan.Max2 ->
              let x = Array.unsafe_get strips (!sp - 2)
              and y = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set x i
                  (Float.max (Array.unsafe_get x i) (Array.unsafe_get y i))
              done;
              decr sp
          | Plan.Less2 ->
              let x = Array.unsafe_get strips (!sp - 2)
              and y = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set x i
                  (if Array.unsafe_get x i < Array.unsafe_get y i then 1.
                   else 0.)
              done;
              decr sp
          | Plan.Where3 ->
              let c = Array.unsafe_get strips (!sp - 3)
              and x = Array.unsafe_get strips (!sp - 2)
              and y = Array.unsafe_get strips (!sp - 1) in
              for i = 0 to len - 1 do
                Array.unsafe_set c i
                  (if Array.unsafe_get c i <> 0. then Array.unsafe_get x i
                   else Array.unsafe_get y i)
              done;
              sp := !sp - 2);
          ()
        done;
        Array.blit (Array.unsafe_get strips 0) 0 o b len;
        base := b + len
      done
  | Plan.Reduce { kind; out; src; sofs; outer; mid; inner } -> (
      let o = slots.(out) and s = slots.(src) in
      match kind with
      | `Sum ->
          for ob = 0 to outer - 1 do
            let obase = ob * inner and sbase = sofs + (ob * mid * inner) in
            for i = 0 to inner - 1 do
              Array.unsafe_set o (obase + i) 0.
            done;
            for m = 0 to mid - 1 do
              let smb = sbase + (m * inner) in
              for i = 0 to inner - 1 do
                Array.unsafe_set o (obase + i)
                  (Array.unsafe_get o (obase + i)
                  +. Array.unsafe_get s (smb + i))
              done
            done
          done
      | `Max ->
          for ob = 0 to outer - 1 do
            let obase = ob * inner and sbase = sofs + (ob * mid * inner) in
            for i = 0 to inner - 1 do
              Array.unsafe_set o (obase + i) Float.neg_infinity
            done;
            for m = 0 to mid - 1 do
              let smb = sbase + (m * inner) in
              for i = 0 to inner - 1 do
                Array.unsafe_set o (obase + i)
                  (Float.max
                     (Array.unsafe_get o (obase + i))
                     (Array.unsafe_get s (smb + i)))
              done
            done
          done)
  | Plan.Matmul { out; a; aofs; b; bofs; m; k; n } ->
      let c = slots.(out) and ab = slots.(a) and bb = slots.(b) in
      for i = 0 to m - 1 do
        let cb = i * n in
        for j = 0 to n - 1 do
          Array.unsafe_set c (cb + j) 0.
        done;
        let arow = aofs + (i * k) in
        for l = 0 to k - 1 do
          let av = Array.unsafe_get ab (arow + l) in
          let brow = bofs + (l * n) in
          for j = 0 to n - 1 do
            Array.unsafe_set c (cb + j)
              (Array.unsafe_get c (cb + j)
              +. (av *. Array.unsafe_get bb (brow + j)))
          done
        done
      done
  | Plan.Copy { out; src; n } -> (
      let o = slots.(out) and s = slots.(src.Plan.src) in
      let ofs = src.Plan.ofs in
      match src.Plan.acc with
      | Plan.Dense -> Array.blit s ofs o 0 n
      | Plan.Cell ->
          let v = Array.unsafe_get s ofs in
          Array.fill o 0 n v
      | Plan.Gather map ->
          for i = 0 to n - 1 do
            Array.unsafe_set o i
              (Array.unsafe_get s (ofs + Array.unsafe_get map i))
          done)
  | Plan.Stack_part { out; oofs; src; sofs; outer; inner; stride } ->
      let o = slots.(out) and s = slots.(src) in
      for ob = 0 to outer - 1 do
        Array.blit s (sofs + (ob * inner)) o (oofs + (ob * stride)) inner
      done
  | Plan.Mask { kind; out; src; sofs; rows; cols } ->
      let o = slots.(out) and s = slots.(src) in
      let keep =
        match kind with
        | `Upper -> fun i j -> j >= i
        | `Lower -> fun i j -> j <= i
      in
      for i = 0 to rows - 1 do
        let rb = i * cols in
        for j = 0 to cols - 1 do
          Array.unsafe_set o (rb + j)
            (if keep i j then Array.unsafe_get s (sofs + rb + j) else 0.)
        done
      done
  | Plan.Trace_of { out; src; sofs; rows; cols } ->
      let s = slots.(src) in
      let acc = ref 0. in
      for i = 0 to min rows cols - 1 do
        acc := !acc +. Array.unsafe_get s (sofs + (i * (cols + 1)))
      done;
      Array.unsafe_set slots.(out) 0 !acc
  | Plan.Fill { out; src; sofs; n } ->
      let o = slots.(out) in
      Array.fill o 0 n (Array.unsafe_get slots.(src) sofs)

let run (p : Plan.t) (lookup : string -> F.t) : F.t =
  List.iter
    (fun (name, slot, count) ->
      let t = lookup name in
      let data = F.unsafe_data t in
      if Array.length data <> count then
        invalid_arg
          (Printf.sprintf "exec: input %s has %d elements, expected %d" name
             (Array.length data) count);
      p.Plan.slots.(slot) <- data)
    p.Plan.inputs;
  let steps = p.Plan.steps in
  for i = 0 to Array.length steps - 1 do
    exec_step p.Plan.slots (Array.unsafe_get steps i)
  done;
  let n = Shape.numel p.Plan.result_shape in
  let rb = p.Plan.slots.(p.Plan.result_slot) in
  F.unsafe_of_data p.Plan.result_shape (Array.sub rb p.Plan.result_ofs n)
