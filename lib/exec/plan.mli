(** Planning: from {!Ir} to an executable program over a preallocated
    arena.

    The planner makes every decision that would otherwise cost time or
    allocation at run time: elementwise fusion into postfix strip
    bodies (including inlining producers into their [sum]/[max]
    consumer when {!Opts.reduction_fusion} is on), a superinstruction
    peephole ({!BinC}/{!BinL}), view aliasing, liveness-driven arena
    slot reuse, precomputed gather maps, and a static lane count per
    step ({!step_lanes}) with per-lane scratch preallocated so parallel
    execution stays allocation-free.  Lane partitioning is chosen so
    results are bitwise identical for every domain count.

    Private to [texec]: the library exports only {!Engine}.  The
    constructors below are the whole contract between the planner and
    the VM. *)

type buf = float array
(** Same storage as [Ftensor]: input slots are rebound to the caller's
    arrays on each run. *)

(** Postfix scalar bytecode for fused loop bodies, executed by the VM
    as a vectorized strip machine. *)
type sbin = SAdd | SSub | SMul | SDiv | SPow | SMax | SLess

type sop =
  | Load of int  (** push the current element of leaf operand i *)
  | Lit of float
  | Bin2 of sbin  (** pop y, pop x, push (x OP y) *)
  | BinC of sbin * float  (** top := top OP literal, in place *)
  | BinL of sbin * int  (** top := top OP leaf i, read directly *)
  | Sqrt1
  | Exp1
  | Log1
  | Where3

(** How a leaf operand is indexed relative to the loop's output index. *)
type access =
  | Dense  (** same shape as the output: the output's linear index *)
  | Cell  (** one-element operand: always element 0 *)
  | Gather of int array  (** precomputed output index -> source index *)

type operand = { src : int; ofs : int; acc : access }
type bin_kind = BAdd | BSub | BMul | BDiv

type step =
  | Bin of { kind : bin_kind; out : int; a : operand; b : operand; n : int }
      (** specialized binary arithmetic over dense/scalar operands: at
          least one operand is [Dense], neither is [Gather] *)
  | Ew of {
      out : int;
      n : int;
      code : sop array;
      leaves : operand array;
      strips : float array array array;
          (** scratch: lane -> stack level -> strip *)
    }
  | Reduce of {
      kind : [ `Sum | `Max ];
      out : int;
      src : int;
      sofs : int;
      outer : int;
      mid : int;
      inner : int;
      partials : float array;
          (** full (scalar) reductions only: fixed-size-block partial
              accumulators, block count independent of the lane count *)
    }  (** source viewed as outer x mid x inner; [mid] is reduced *)
  | Reduce_fused of {
      kind : [ `Sum | `Max ];
      out : int;
      outer : int;
      mid : int;
      inner : int;
      code : sop array;  (** producer body, evaluated per source strip *)
      leaves : operand array;  (** indexed in the {e source} space *)
      strips : float array array array;  (** lane -> level -> strip *)
      partials : float array;  (** as in {!Reduce} *)
    }
  | Matmul of {
      out : int;
      a : int;
      aofs : int;
      b : int;
      bofs : int;
      m : int;
      k : int;
      n : int;
    }  (** out[m,n] = a[m,k] . b[k,n], all row-major *)
  | Transpose2 of {
      out : int;
      src : int;
      sofs : int;
      rows : int;
      cols : int;
    }  (** out[c,r] = src[r,c]: rank-2 transpose as a tiled kernel *)
  | Copy of { out : int; src : operand; n : int }
  | Stack_part of {
      out : int;
      oofs : int;
      src : int;
      sofs : int;
      outer : int;
      inner : int;
      stride : int;
    }  (** one stacked operand: outer blocks of [inner], strided out *)
  | Mask of {
      kind : [ `Upper | `Lower ];
      out : int;
      src : int;
      sofs : int;
      rows : int;
      cols : int;
    }
  | Trace_of of { out : int; src : int; sofs : int; rows : int; cols : int }
  | Fill of { out : int; src : int; sofs : int; n : int }

type stats = {
  ir_nodes : int;
  steps : int;
  ops_fused : int;  (** operation nodes absorbed into fused loops *)
  consts_folded : int;
  buffers_reused : int;
  arena_slots : int;
  arena_bytes : int;
  parallel_strips : int;  (** steps planned for more than one lane *)
}

type t = {
  steps : step array;
  slots : buf array;
  inputs : (string * int * int) list;  (** name, slot, element count *)
  result_slot : int;
  result_ofs : int;
  result_shape : Tensor.Shape.t;
  env : Dsl.Types.env;
  opts : Opts.t;
  stats : stats;
}

val red_block : int
(** Source elements per partial block of a full reduction: a function
    of the problem size only, so every lane count combines the same
    blocks in the same ascending order. *)

val step_lanes : Opts.t -> step -> int
(** Lanes a step runs on (1 = sequential).  The planner sizes per-lane
    scratch with it and the VM partitions ranges with it; for
    [Ew]/[Reduce_fused] the preallocated scratch is authoritative. *)

val compile : opts:Opts.t -> Ir.t -> t
