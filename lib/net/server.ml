(* A multiplexing line-protocol server over TCP and Unix-domain
   listeners.

   One dispatcher (the caller of [run]) owns every connection: it
   accepts, reads request lines into per-connection buffers, enforces
   the line-length cap and the partial-line (slow-loris) deadline, and
   hands complete lines to a bounded Domain worker pool.  Workers
   compute the response through the caller's handler and write it back
   under a write deadline; a self-pipe notification returns the
   connection to the dispatcher, which resumes reading it — so every
   connection is keep-alive (many requests per connection) and each
   connection's requests are processed in order, while requests from
   different connections proceed concurrently.

   Workers also drain a second, low-priority queue of background jobs
   (submitted by the handler through its context): a background job is
   only picked up when no request is waiting, and at most
   [workers - 1] run at once, so background work soaks up spare
   capacity without starving the request path.  On [stop] the server
   drains gracefully: listeners close first, queued and in-flight
   requests finish and flush, pending background jobs are discarded.

   Connections are owned by exactly one side at a time — the
   dispatcher while reading, one worker while a request is in flight —
   so no file descriptor is ever read, written or closed from two
   places concurrently. *)

module Tel = Obs.Telemetry

type config = {
  listeners : Endpoint.t list;
  workers : int;  (** request-serving domains (min 1) *)
  queue_capacity : int;
      (** pending request lines beyond which requests are answered with
          the busy line instead of queueing unboundedly *)
  background_capacity : int;  (** pending background jobs cap *)
  max_conns : int;
      (** open connections beyond which new ones are shed at accept *)
  max_line : int;  (** request line byte cap *)
  read_deadline : float;
      (** seconds a partial request line may sit without progress
          before the connection is closed (the slow-loris guard) *)
  write_deadline : float;  (** seconds a response write may take *)
  tick : float;  (** dispatcher poll period, also the sweep period *)
}

let default_config =
  {
    listeners = [];
    workers = 2;
    queue_capacity = 64;
    background_capacity = 512;
    max_conns = 1024;
    max_line = 1 lsl 20;
    read_deadline = 30.;
    write_deadline = 30.;
    tick = 0.25;
  }

type ctx = {
  peer : string;  (** printable peer address, for logs and telemetry *)
  background : (unit -> unit) -> bool;
      (** submit a low-priority job to the worker pool; [false] when the
          background queue is full or the server is stopping *)
}

type conn = {
  fd : Unix.file_descr;
  peer : string;
  buf : Buffer.t;  (* bytes read but not yet split into lines *)
  mutable pending : string list;  (* complete lines awaiting dispatch *)
  mutable busy : bool;  (* a worker owns this connection *)
  mutable last_activity : float;
}

type t = {
  cfg : config;
  tel : Tel.t;
  handler : ctx -> string -> string;
  busy_line : string;
  too_long_line : string;
  listen_fds : (Unix.file_descr * Endpoint.t) list;
  bound : Endpoint.t list;
  stop_flag : bool Atomic.t;
  (* worker side *)
  qlock : Mutex.t;
  qcond : Condition.t;
  requests : (conn * string) Queue.t;
  background : (unit -> unit) Queue.t;
  mutable bg_active : int;
  (* dispatcher notifications: worker -> dispatcher *)
  dlock : Mutex.t;
  completed : (conn * bool) Queue.t;  (* (conn, keep_open) *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let bind_listener ep =
  match ep with
  | Endpoint.Unix_sock path ->
      (try if Sys.file_exists path then Sys.remove path
       with Sys_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      (fd, ep)
  | Endpoint.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Endpoint.resolve host, port));
      Unix.listen fd 128;
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Endpoint.Tcp (host, bound_port))

(* Binding happens at [create] so the resolved addresses (in particular
   an ephemeral TCP port requested as 0) are known before [run]. *)
let create ?(tel = Tel.null) ~config ~busy_line ~too_long_line handler =
  if config.listeners = [] then invalid_arg "Server.create: no listeners";
  let listen_fds = List.map bind_listener config.listeners in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    cfg = { config with workers = max 1 config.workers };
    tel;
    handler;
    busy_line;
    too_long_line;
    listen_fds;
    bound = List.map snd listen_fds;
    stop_flag = Atomic.make false;
    qlock = Mutex.create ();
    qcond = Condition.create ();
    requests = Queue.create ();
    background = Queue.create ();
    bg_active = 0;
    dlock = Mutex.create ();
    completed = Queue.create ();
    wake_r;
    wake_w;
  }

let addresses t = t.bound

let wake t =
  match Unix.write_substring t.wake_w "x" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()  (* pipe full: a wake is pending *)

(* Async-signal-safe (an atomic store and a pipe write, no locks):
   callers may invoke it from a SIGINT/SIGTERM handler.  Workers parked
   on the queue condition are woken by the drain sequence in [run], not
   here — the dispatcher notices the flag within one [tick] anyway. *)
let stop t =
  Atomic.set t.stop_flag true;
  wake t

let submit_background t job =
  Mutex.protect t.qlock (fun () ->
      if
        Atomic.get t.stop_flag
        || Queue.length t.background >= t.cfg.background_capacity
      then false
      else begin
        Queue.push job t.background;
        Condition.signal t.qcond;
        true
      end)

let background_pending t =
  Mutex.protect t.qlock (fun () -> Queue.length t.background + t.bg_active)

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let notify_done t conn ~keep =
  Mutex.protect t.dlock (fun () -> Queue.push (conn, keep) t.completed);
  wake t

let serve_request t conn line =
  let ctx = { peer = conn.peer; background = submit_background t } in
  let resp =
    try t.handler ctx line
    with e ->
      (* The handler contract is to never raise; if it does anyway the
         connection survives with an opaque error line. *)
      Printf.sprintf "{\"ok\":false,\"error\":\"internal error: %s\"}"
        (String.escaped (Printexc.to_string e))
  in
  let deadline = Unix.gettimeofday () +. t.cfg.write_deadline in
  match Lineio.write_line ~deadline conn.fd resp with
  | Ok () -> notify_done t conn ~keep:true
  | Error _ ->
      Tel.incr t.tel "net.write_errors";
      notify_done t conn ~keep:false

type job = Request of conn * string | Background of (unit -> unit) | Exit

let worker_loop t () =
  let bg_cap = max 1 (t.cfg.workers - 1) in
  let rec take () =
    if not (Queue.is_empty t.requests) then
      let conn, line = Queue.pop t.requests in
      Request (conn, line)
    else if Atomic.get t.stop_flag then Exit
    else if (not (Queue.is_empty t.background)) && t.bg_active < bg_cap
    then begin
      t.bg_active <- t.bg_active + 1;
      Background (Queue.pop t.background)
    end
    else begin
      Condition.wait t.qcond t.qlock;
      take ()
    end
  in
  let rec loop () =
    Mutex.lock t.qlock;
    let job = take () in
    Mutex.unlock t.qlock;
    match job with
    | Exit -> ()
    | Request (conn, line) ->
        serve_request t conn line;
        loop ()
    | Background job ->
        (try job () with _ -> Tel.incr t.tel "net.background_errors");
        Mutex.protect t.qlock (fun () ->
            t.bg_active <- t.bg_active - 1;
            Condition.signal t.qcond);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)
(* ------------------------------------------------------------------ *)

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | exception Unix.Unix_error _ -> "?"

(* Best-effort control responses written from the dispatcher (busy,
   line-too-long): bounded well below the workers' write deadline so a
   stuck client cannot stall the accept loop. *)
let control_write t fd line =
  let deadline = Unix.gettimeofday () +. Float.min 1.0 t.cfg.write_deadline in
  ignore (Lineio.write_line ~deadline fd line)

let run t =
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    close_fd c.fd;
    Tel.incr t.tel "net.closed"
  in
  (* Dispatch the next pending line of an idle connection into the
     request queue, shedding with the busy line when it is full. *)
  let rec dispatch_next c =
    match c.pending with
    | [] -> ()
    | line :: rest ->
        c.pending <- rest;
        let accepted =
          Mutex.protect t.qlock (fun () ->
              if Queue.length t.requests >= t.cfg.queue_capacity then false
              else begin
                Queue.push (c, line) t.requests;
                Condition.signal t.qcond;
                true
              end)
        in
        if accepted then c.busy <- true
        else begin
          Tel.incr t.tel "net.shed_requests";
          control_write t c.fd t.busy_line;
          (* Keep draining: a pipelined client must get one response
             (here: a busy) per request, not a stalled connection. *)
          dispatch_next c
        end
  in
  let drain_completed () =
    let batch =
      Mutex.protect t.dlock (fun () ->
          let xs = List.of_seq (Queue.to_seq t.completed) in
          Queue.clear t.completed;
          xs)
    in
    List.iter
      (fun (c, keep) ->
        c.busy <- false;
        c.last_activity <- Unix.gettimeofday ();
        if keep && Hashtbl.mem conns c.fd then dispatch_next c
        else if Hashtbl.mem conns c.fd then close_conn c)
      batch
  in
  let drain_wake_pipe () =
    let b = Bytes.create 64 in
    let rec go () =
      match Unix.read t.wake_r b 0 64 with
      | n when n > 0 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  let accept_one lfd =
    match Unix.accept lfd with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
    | fd, _ ->
        if Hashtbl.length conns >= t.cfg.max_conns then begin
          Tel.incr t.tel "net.shed_conns";
          control_write t fd t.busy_line;
          close_fd fd
        end
        else begin
          Unix.set_nonblock fd;
          (match Unix.getpeername fd with
          | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
          | _ | (exception Unix.Unix_error _) -> ());
          Tel.incr t.tel "net.accepted";
          Hashtbl.replace conns fd
            {
              fd;
              peer = peer_name fd;
              buf = Buffer.create 256;
              pending = [];
              busy = false;
              last_activity = Unix.gettimeofday ();
            }
        end
  in
  let read_conn c =
    let chunk = Bytes.create 4096 in
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
        (* EOF.  A complete pending line still gets served (the client
           may have half-closed after its last request); a dangling
           partial line cannot complete, so the connection ends. *)
        if c.pending = [] then close_conn c
        else begin
          Buffer.clear c.buf;
          dispatch_next c
        end
    | n ->
        c.last_activity <- Unix.gettimeofday ();
        Buffer.add_subbytes c.buf chunk 0 n;
        (* The cap applies to complete lines as well as to a growing
           partial one — a huge request that happens to arrive whole in
           one segment must not bypass it. *)
        let over_cap = ref false in
        let rec split () =
          match Lineio.take_line c.buf with
          | Some line when String.length line > t.cfg.max_line ->
              over_cap := true
          | Some line ->
              if String.trim line <> "" then
                c.pending <- c.pending @ [ line ];
              split ()
          | None -> ()
        in
        split ();
        if !over_cap || Buffer.length c.buf > t.cfg.max_line then begin
          Tel.incr t.tel "net.line_too_long";
          control_write t c.fd t.too_long_line;
          close_conn c
        end
        else if not c.busy then dispatch_next c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let sweep () =
    let now = Unix.gettimeofday () in
    let victims =
      Hashtbl.fold
        (fun _ c acc ->
          if
            (not c.busy)
            && Buffer.length c.buf > 0
            && now -. c.last_activity > t.cfg.read_deadline
          then c :: acc
          else acc)
        conns []
    in
    List.iter
      (fun c ->
        Tel.incr t.tel "net.read_timeouts";
        close_conn c)
      victims
  in
  let pool =
    Array.init t.cfg.workers (fun _ -> Domain.spawn (worker_loop t))
  in
  Tel.event t.tel "net.start"
    [
      ( "listeners",
        Tel.Str (String.concat "," (List.map Endpoint.to_string t.bound)) );
      ("workers", Tel.Int t.cfg.workers);
      ("queue_capacity", Tel.Int t.cfg.queue_capacity);
      ("max_conns", Tel.Int t.cfg.max_conns);
    ];
  while not (Atomic.get t.stop_flag) do
    let idle =
      Hashtbl.fold (fun fd c acc -> if c.busy then acc else fd :: acc)
        conns []
    in
    let watch = (t.wake_r :: List.map fst t.listen_fds) @ idle in
    (match Unix.select watch [] [] t.cfg.tick with
    | ready, _, _ ->
        if List.mem t.wake_r ready then drain_wake_pipe ();
        drain_completed ();
        List.iter
          (fun (lfd, _) -> if List.mem lfd ready then accept_one lfd)
          t.listen_fds;
        List.iter
          (fun fd ->
            if fd <> t.wake_r && not (List.mem_assoc fd t.listen_fds) then
              match Hashtbl.find_opt conns fd with
              | Some c when not c.busy -> read_conn c
              | _ -> ())
          ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    sweep ()
  done;
  (* Graceful drain: stop accepting, finish queued and in-flight
     requests (bounded by the write deadline per response plus a hard
     grace period), discard background work, then join the pool. *)
  List.iter
    (fun (fd, ep) ->
      close_fd fd;
      match ep with
      | Endpoint.Unix_sock path -> (
          try Sys.remove path with Sys_error _ -> ())
      | Endpoint.Tcp _ -> ())
    t.listen_fds;
  Mutex.protect t.qlock (fun () -> Queue.clear t.background);
  let grace = Unix.gettimeofday () +. Float.max 5. t.cfg.write_deadline in
  let in_flight () =
    Mutex.protect t.qlock (fun () -> not (Queue.is_empty t.requests))
    || Hashtbl.fold (fun _ c acc -> acc || c.busy) conns false
  in
  while in_flight () && Unix.gettimeofday () < grace do
    (match Unix.select [ t.wake_r ] [] [] 0.05 with
    | [ _ ], _, _ -> drain_wake_pipe ()
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    drain_completed ()
  done;
  Mutex.protect t.qlock (fun () -> Condition.broadcast t.qcond);
  Array.iter Domain.join pool;
  drain_completed ();
  Hashtbl.iter (fun _ c -> close_fd c.fd) conns;
  Hashtbl.reset conns;
  close_fd t.wake_r;
  close_fd t.wake_w;
  Tel.event t.tel "net.stop" []
