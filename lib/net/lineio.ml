(* Deadline-bounded line IO on raw file descriptors.

   Works for blocking and non-blocking descriptors alike: every read
   waits for readability with [select] first (so a deadline can be
   honoured even on a blocking socket), and writes that hit
   EAGAIN/EWOULDBLOCK wait for writability the same way.  This is the
   reader/writer both sides of the protocol share — the server's
   workers write responses through it, the clients (request, loadgen)
   read and write whole exchanges through it. *)

type read_result =
  | Line of string
  | Eof
  | Timeout
  | Too_long
  | Io_error of string

let ( let* ) = Result.bind

let rec wait_fd ~deadline kind fd =
  let now = Unix.gettimeofday () in
  if now >= deadline then Ok false
  else
    let span = Float.min 0.25 (deadline -. now) in
    let r, w = match kind with `Read -> ([ fd ], []) | `Write -> ([], [ fd ]) in
    match Unix.select r w [] span with
    | [], [], _ -> wait_fd ~deadline kind fd
    | _ -> Ok true
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        wait_fd ~deadline kind fd
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let write_all ~deadline fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        -> (
          match wait_fd ~deadline `Write fd with
          | Ok true -> go off
          | Ok false -> Error "write deadline exceeded"
          | Error e -> Error e)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let write_line ~deadline fd line = write_all ~deadline fd (line ^ "\n")

(* Split the first complete line out of [buf], leaving the remainder.
   A '\r' before the newline is dropped so telnet-style clients work. *)
let take_line buf =
  let s = Buffer.contents buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let stop = if i > 0 && s.[i - 1] = '\r' then i - 1 else i in
      let line = String.sub s 0 stop in
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
      Some line

(* Read one newline-terminated line, buffering leftovers in [buf]
   across calls (a pipelined peer may deliver several lines in one
   segment).  [max_len] caps the bytes a single line may occupy. *)
let read_line ?(max_len = 1 lsl 20) ~deadline ~buf fd =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match take_line buf with
    | Some line -> Line line
    | None when Buffer.length buf > max_len -> Too_long
    | None -> (
        match wait_fd ~deadline `Read fd with
        | Ok false -> Timeout
        | Error e -> Io_error e
        | Ok true -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> Eof
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                go ()
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error (e, _, _) ->
                Io_error (Unix.error_message e)))
  in
  go ()

(* One request/response exchange on an established connection. *)
let exchange ?max_len ~deadline ~buf fd line =
  let* () = write_line ~deadline fd line in
  match read_line ?max_len ~deadline ~buf fd with
  | Line l -> Ok l
  | Eof -> Error "connection closed without a response"
  | Timeout -> Error "response deadline exceeded"
  | Too_long -> Error "response line too long"
  | Io_error e -> Error e
