(* Closed-loop load generation against line-protocol endpoints.

   A pool of [concurrency] client threads (systhreads — blocking socket
   IO releases the OCaml runtime lock, so hundreds of concurrent
   connections work on a single core) each holds one keep-alive
   connection and replays request lines back-to-back: send, wait for
   the response, record latency, repeat.  Endpoints are assigned
   round-robin across the pool; a thread whose connection dies
   reconnects to the next endpoint in its rotation, so a multi-replica
   deployment is exercised with failover.

   A warmup phase first plays each distinct request once (under a
   longer deadline — cold requests may run a full synthesis), then an
   optional settle pause lets the service finish background work, then
   the measured phase runs for [duration] seconds.  Responses are
   turned into small integer classes by the caller's [classify] so the
   stats stay decoupled from any particular protocol. *)

type cfg = {
  endpoints : Endpoint.t list;
  concurrency : int;
  duration : float;  (* measured-phase seconds *)
  timeout : float;  (* per-exchange deadline in the measured phase *)
  warmup_lines : string list;  (* played once each before measuring *)
  warmup_timeout : float;
  settle : float;  (* pause between warmup and measurement *)
  lines : string array;  (* replayed round-robin by every thread *)
}

type stats = {
  samples : (float * int) array;  (* (latency seconds, class) *)
  n_transport_errors : int;
  elapsed : float;  (* measured-phase wall clock *)
}

(* A client connection that reconnects across endpoint rotation.  [next]
   cycles so consecutive failures try different replicas. *)
type client = {
  eps : Endpoint.t array;
  mutable next : int;
  mutable fd : Unix.file_descr option;
  buf : Buffer.t;
}

let client_of ~endpoints ~index =
  let eps = Array.of_list endpoints in
  { eps; next = index mod Array.length eps; fd = None; buf = Buffer.create 256 }

let disconnect c =
  (match c.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  c.fd <- None;
  Buffer.clear c.buf

(* Try each endpoint once, starting from the rotation cursor. *)
let connect c =
  match c.fd with
  | Some fd -> Some fd
  | None ->
      let n = Array.length c.eps in
      let rec go attempts =
        if attempts >= n then None
        else
          let ep = c.eps.(c.next) in
          c.next <- (c.next + 1) mod n;
          match Endpoint.connect ep with
          | Ok fd ->
              c.fd <- Some fd;
              Some fd
          | Error _ -> go (attempts + 1)
      in
      go 0

(* One request/response over the client, reconnecting (with one failover
   sweep) when the connection is gone.  [None] = transport failure. *)
let exchange c ~deadline line =
  let attempt fd =
    match Lineio.exchange ~deadline ~buf:c.buf fd line with
    | Ok resp -> Some resp
    | Error _ ->
        disconnect c;
        None
  in
  match connect c with
  | None -> None
  | Some fd -> (
      match attempt fd with
      | Some resp -> Some resp
      | None -> (
          (* One reconnect: the server may have closed a kept-alive
             connection between our requests. *)
          match connect c with None -> None | Some fd -> attempt fd))

let run ~classify cfg =
  if cfg.endpoints = [] then invalid_arg "Loadgen.run: no endpoints";
  if Array.length cfg.lines = 0 then invalid_arg "Loadgen.run: no lines";
  (* Warmup: each distinct line once, spread over a small thread pool. *)
  let warmup = Array.of_list cfg.warmup_lines in
  if Array.length warmup > 0 then begin
    let nw = min cfg.concurrency (Array.length warmup) in
    let pos = Atomic.make 0 in
    let warm_worker i () =
      let c = client_of ~endpoints:cfg.endpoints ~index:i in
      let rec go () =
        let k = Atomic.fetch_and_add pos 1 in
        if k < Array.length warmup then begin
          let deadline = Unix.gettimeofday () +. cfg.warmup_timeout in
          ignore (exchange c ~deadline warmup.(k));
          go ()
        end
      in
      go ();
      disconnect c
    in
    let ts = List.init nw (fun i -> Thread.create (warm_worker i) ()) in
    List.iter Thread.join ts
  end;
  if cfg.settle > 0. then Thread.delay cfg.settle;
  (* Measured phase. *)
  let stop_at = Unix.gettimeofday () +. cfg.duration in
  let merge_lock = Mutex.create () in
  let all_samples = ref [] in
  let transport_errors = ref 0 in
  let worker i () =
    let c = client_of ~endpoints:cfg.endpoints ~index:i in
    let samples = ref [] in
    let errors = ref 0 in
    let k = ref i in
    while Unix.gettimeofday () < stop_at do
      let line = cfg.lines.(!k mod Array.length cfg.lines) in
      incr k;
      let t0 = Unix.gettimeofday () in
      let deadline = t0 +. cfg.timeout in
      (match exchange c ~deadline line with
      | Some resp ->
          samples := (Unix.gettimeofday () -. t0, classify resp) :: !samples
      | None ->
          incr errors;
          (* Back off briefly so a dead server does not spin the CPU. *)
          Thread.delay 0.01)
    done;
    disconnect c;
    Mutex.protect merge_lock (fun () ->
        all_samples := List.rev_append !samples !all_samples;
        transport_errors := !transport_errors + !errors)
  in
  let t0 = Unix.gettimeofday () in
  let ts = List.init cfg.concurrency (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join ts;
  let elapsed = Unix.gettimeofday () -. t0 in
  {
    samples = Array.of_list !all_samples;
    n_transport_errors = !transport_errors;
    elapsed;
  }

(* Percentile over pre-sorted latencies (nearest-rank). *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let latency_summary samples =
  let lats = Array.map fst samples in
  Array.sort compare lats;
  let n = Array.length lats in
  let mean =
    if n = 0 then 0.
    else Array.fold_left ( +. ) 0. lats /. float_of_int n
  in
  ( mean,
    percentile lats 50.,
    percentile lats 95.,
    percentile lats 99. )
