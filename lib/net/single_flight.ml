(* Single-flight request coalescing: concurrent computations for the
   same key collapse onto one execution.  The first caller for a key
   becomes the leader and runs the thunk; callers arriving while it is
   in flight block until the leader finishes and receive the same
   result (or the same exception).  Results are not cached — once the
   leader publishes, the key leaves the table, so this composes with
   (rather than replaces) a persistent store in front of the search. *)

type 'a state = Running | Done of 'a | Failed of exn

type 'a cell = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable state : 'a state;
}

type 'a t = {
  lock : Mutex.t;
  cells : (string, 'a cell) Hashtbl.t;
  coalesced : Obs.Telemetry.Counter.t;  (* total waiters served *)
}

let create () =
  {
    lock = Mutex.create ();
    cells = Hashtbl.create 64;
    coalesced = Obs.Telemetry.Counter.make ();
  }

let coalesced t = Obs.Telemetry.Counter.get t.coalesced

(* [run t key f] returns [(result, was_coalesced)].  Exceptions from
   the leader's [f] propagate to the leader and every waiter. *)
let run t key f =
  let role =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.cells key with
        | Some cell -> `Wait cell
        | None ->
            let cell =
              {
                mutex = Mutex.create ();
                cond = Condition.create ();
                state = Running;
              }
            in
            Hashtbl.add t.cells key cell;
            `Lead cell)
  in
  match role with
  | `Lead cell -> (
      let outcome = try Done (f ()) with e -> Failed e in
      (* Unpublish before waking waiters: a request arriving after this
         point must start a fresh flight, not observe a stale cell. *)
      Mutex.protect t.lock (fun () -> Hashtbl.remove t.cells key);
      Mutex.protect cell.mutex (fun () ->
          cell.state <- outcome;
          Condition.broadcast cell.cond);
      match outcome with
      | Done v -> (v, false)
      | Failed e -> raise e
      | Running -> assert false)
  | `Wait cell -> (
      Obs.Telemetry.Counter.incr t.coalesced;
      let running cell =
        match cell.state with Running -> true | Done _ | Failed _ -> false
      in
      let result =
        Mutex.protect cell.mutex (fun () ->
            while running cell do
              Condition.wait cell.cond cell.mutex
            done;
            cell.state)
      in
      match result with
      | Done v -> (v, true)
      | Failed e -> raise e
      | Running -> assert false)
