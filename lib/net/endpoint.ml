(* A serving endpoint: a Unix-domain socket path or a TCP host:port.
   The textual form is what `--endpoints` and `--tcp` accept; TCP
   endpoints with port 0 bind an ephemeral port (the bound address is
   reported back with the real port, which tests and CI rely on). *)

type t = Unix_sock of string | Tcp of string * int

let to_string = function
  | Unix_sock path -> "unix://" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp://%s:%d" host port

(* Accepted forms: "HOST:PORT", "tcp://HOST:PORT", "unix://PATH", or a
   bare filesystem path (anything with a '/' and no parsable port). *)
let parse s =
  let strip prefix s =
    if String.length s >= String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
    then Some (String.sub s (String.length prefix)
                 (String.length s - String.length prefix))
    else None
  in
  match strip "unix://" s with
  | Some path when path <> "" -> Ok (Unix_sock path)
  | Some _ -> Error "empty unix socket path"
  | None -> (
      let s = Option.value ~default:s (strip "tcp://" s) in
      match String.rindex_opt s ':' with
      | Some i
        when i > 0
             && (not (String.contains s '/'))
             && int_of_string_opt
                  (String.sub s (i + 1) (String.length s - i - 1))
                |> Option.is_some ->
          let port = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
          if port < 0 || port > 65535 then
            Error (Printf.sprintf "port out of range in %S" s)
          else Ok (Tcp (String.sub s 0 i, port))
      | _ ->
          if s = "" then Error "empty endpoint"
          else if String.contains s '/' || not (String.contains s ':') then
            Ok (Unix_sock s)
          else Error (Printf.sprintf "cannot parse endpoint %S" s))

let parse_list s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' s)
  in
  if parts = [] then Error "empty endpoint list"
  else
    List.fold_left
      (fun acc p ->
        Result.bind acc (fun eps ->
            Result.map (fun e -> e :: eps) (parse p)))
      (Ok []) parts
    |> Result.map List.rev

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> raise Not_found
      | h -> h.Unix.h_addr_list.(0))

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve host, port)

(* One blocking connect attempt; retry/backoff policy belongs to the
   caller (see Serve's client), which knows its deadline. *)
let connect t =
  let domain =
    match t with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (sockaddr t);
    (match t with
    | Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
    | Unix_sock _ -> ())
  with
  | () -> Ok fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e
