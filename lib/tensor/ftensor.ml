include Nd.Make (Elt.Float)

(* ------------------------------------------------------------------ *)
(* Float fast paths                                                    *)
(*                                                                     *)
(* The generic functor pays a closure call and an index computation    *)
(* per element, which is fine for symbolic execution on tiny tensors   *)
(* but dominates when the measured cost model and the benches execute  *)
(* at representative sizes.  The shadowed operations below work        *)
(* directly on the flat [float array] storage (unboxed in OCaml) and   *)
(* fall back to the generic versions for shapes they do not handle.    *)
(* ------------------------------------------------------------------ *)

let generic_map2_add = add
let generic_map2_sub = sub
let generic_map2_mul = mul
let generic_map2_div = div
let generic_map2_pow = pow
let generic_map2_max = maximum
let generic_dot = dot
let generic_sum = sum
let generic_transpose = transpose

let same_shape a b = Shape.equal (shape a) (shape b)

let fast2 generic f a b =
  if same_shape a b then begin
    let da = unsafe_data a and db = unsafe_data b in
    let n = Array.length da in
    let out = Array.make n 0. in
    for i = 0 to n - 1 do
      out.(i) <- f (Array.unsafe_get da i) (Array.unsafe_get db i)
    done;
    unsafe_of_data (shape a) out
  end
  else if rank a = 0 then begin
    let x = (unsafe_data a).(0) in
    let db = unsafe_data b in
    let n = Array.length db in
    let out = Array.make n 0. in
    for i = 0 to n - 1 do
      out.(i) <- f x (Array.unsafe_get db i)
    done;
    unsafe_of_data (shape b) out
  end
  else if rank b = 0 then begin
    let y = (unsafe_data b).(0) in
    let da = unsafe_data a in
    let n = Array.length da in
    let out = Array.make n 0. in
    for i = 0 to n - 1 do
      out.(i) <- f (Array.unsafe_get da i) y
    done;
    unsafe_of_data (shape a) out
  end
  else
    let sa = shape a and sb = shape b in
    let ra = Shape.rank sa and rb = Shape.rank sb in
    if rb = 1 && ra >= 1 && sa.(ra - 1) = sb.(0) then begin
      (* (..., n) op (n): apply the vector to each contiguous row *)
      let da = unsafe_data a and db = unsafe_data b in
      let n = sb.(0) in
      let m = Array.length da / n in
      let out = Array.make (m * n) 0. in
      for i = 0 to m - 1 do
        let base = i * n in
        for j = 0 to n - 1 do
          Array.unsafe_set out (base + j)
            (f (Array.unsafe_get da (base + j)) (Array.unsafe_get db j))
        done
      done;
      unsafe_of_data sa out
    end
    else if ra = 1 && rb >= 1 && sb.(rb - 1) = sa.(0) then begin
      let da = unsafe_data a and db = unsafe_data b in
      let n = sa.(0) in
      let m = Array.length db / n in
      let out = Array.make (m * n) 0. in
      for i = 0 to m - 1 do
        let base = i * n in
        for j = 0 to n - 1 do
          Array.unsafe_set out (base + j)
            (f (Array.unsafe_get da j) (Array.unsafe_get db (base + j)))
        done
      done;
      unsafe_of_data sb out
    end
    else if ra = 2 && sa.(1) = 1 && rb = 1 then begin
      (* (m,1) op (n): outer combination *)
      let da = unsafe_data a and db = unsafe_data b in
      let m = sa.(0) and n = sb.(0) in
      let out = Array.make (m * n) 0. in
      for i = 0 to m - 1 do
        let x = Array.unsafe_get da i in
        let base = i * n in
        for j = 0 to n - 1 do
          Array.unsafe_set out (base + j) (f x (Array.unsafe_get db j))
        done
      done;
      unsafe_of_data [| m; n |] out
    end
    else if rb = 2 && sb.(1) = 1 && ra = 1 then begin
      let da = unsafe_data a and db = unsafe_data b in
      let m = sb.(0) and n = sa.(0) in
      let out = Array.make (m * n) 0. in
      for i = 0 to m - 1 do
        let y = Array.unsafe_get db i in
        let base = i * n in
        for j = 0 to n - 1 do
          Array.unsafe_set out (base + j) (f (Array.unsafe_get da j) y)
        done
      done;
      unsafe_of_data [| m; n |] out
    end
    else generic a b

let add = fast2 generic_map2_add ( +. )
let sub = fast2 generic_map2_sub ( -. )
let mul = fast2 generic_map2_mul ( *. )
let div = fast2 generic_map2_div ( /. )
let pow = fast2 generic_map2_pow Float.pow
let maximum = fast2 generic_map2_max Float.max

let map1 f t =
  let d = unsafe_data t in
  let n = Array.length d in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    out.(i) <- f (Array.unsafe_get d i)
  done;
  unsafe_of_data (shape t) out

let sqrt = map1 Float.sqrt
let exp = map1 Float.exp
let log = map1 Float.log
let neg = map1 Float.neg

let dot a b =
  let sa = shape a and sb = shape b in
  let ra = Shape.rank sa and rb = Shape.rank sb in
  if ra >= 1 && rb = 1 then begin
    (* (..., k) . (k) -> (...) *)
    let k = sa.(ra - 1) in
    if sb.(0) <> k then generic_dot a b
    else begin
      let da = unsafe_data a and db = unsafe_data b in
      let m = Array.length da / k in
      let out = Array.make m 0. in
      for i = 0 to m - 1 do
        let base = i * k in
        let acc = ref 0. in
        for j = 0 to k - 1 do
          acc :=
            !acc +. (Array.unsafe_get da (base + j) *. Array.unsafe_get db j)
        done;
        out.(i) <- !acc
      done;
      unsafe_of_data (Array.sub sa 0 (ra - 1)) out
    end
  end
  else if ra >= 1 && rb = 2 then begin
    (* (..., k) . (k, n) -> (..., n) *)
    let k = sa.(ra - 1) and n = sb.(1) in
    if sb.(0) <> k then generic_dot a b
    else begin
      let da = unsafe_data a and db = unsafe_data b in
      let m = Array.length da / k in
      let out = Array.make (m * n) 0. in
      for i = 0 to m - 1 do
        let abase = i * k and obase = i * n in
        for l = 0 to k - 1 do
          let av = Array.unsafe_get da (abase + l) in
          let bbase = l * n in
          for j = 0 to n - 1 do
            Array.unsafe_set out (obase + j)
              (Array.unsafe_get out (obase + j)
              +. (av *. Array.unsafe_get db (bbase + j)))
          done
        done
      done;
      let out_shape = Array.append (Array.sub sa 0 (ra - 1)) [| n |] in
      unsafe_of_data out_shape out
    end
  end
  else generic_dot a b

let fast_sum ?axis t =
  match axis with
  | None ->
      let d = unsafe_data t in
      let acc = ref 0. in
      for i = 0 to Array.length d - 1 do
        acc := !acc +. Array.unsafe_get d i
      done;
      scalar !acc
  | Some ax ->
      let s = shape t in
      let ax' = Shape.normalize_axis s ax in
      if ax' = Shape.rank s - 1 then begin
        (* contiguous inner reduction *)
        let k = s.(ax') in
        let d = unsafe_data t in
        let m = Array.length d / k in
        let out = Array.make m 0. in
        for i = 0 to m - 1 do
          let base = i * k in
          let acc = ref 0. in
          for j = 0 to k - 1 do
            acc := !acc +. Array.unsafe_get d (base + j)
          done;
          out.(i) <- !acc
        done;
        unsafe_of_data (Shape.remove_axis s ax') out
      end
      else if Shape.rank s = 2 && ax' = 0 then begin
        (* column reduction of a matrix *)
        let m = s.(0) and n = s.(1) in
        let d = unsafe_data t in
        let out = Array.make n 0. in
        for i = 0 to m - 1 do
          let base = i * n in
          for j = 0 to n - 1 do
            Array.unsafe_set out j
              (Array.unsafe_get out j +. Array.unsafe_get d (base + j))
          done
        done;
        unsafe_of_data [| n |] out
      end
      else generic_sum ~axis:ax t

let sum ?axis ?(keepdims = false) t =
  let plain = fast_sum ?axis t in
  if not keepdims then plain
  else
    (* Zero-copy shape re-tag: the reduced data is laid out identically
       whether the axis is dropped or kept as size 1. *)
    let s = shape t in
    let ks =
      match axis with
      | None -> Array.make (Shape.rank s) 1
      | Some ax ->
          let ax = Shape.normalize_axis s ax in
          Array.mapi (fun i d -> if i = ax then 1 else d) s
    in
    unsafe_of_data ks (unsafe_data plain)

let transpose ?perm t =
  let s = shape t in
  match (perm, Shape.rank s) with
  | None, 2 ->
      let m = s.(0) and n = s.(1) in
      let d = unsafe_data t in
      let out = Array.make (m * n) 0. in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          Array.unsafe_set out ((j * m) + i) (Array.unsafe_get d ((i * n) + j))
        done
      done;
      unsafe_of_data [| n; m |] out
  | _ -> generic_transpose ?perm t

(* ------------------------------------------------------------------ *)

let randomize ?(lo = 0.5) ?(hi = 1.5) st shape =
  init shape (fun _ -> lo +. Random.State.float st (hi -. lo))

let allclose ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  for_all2
    (fun x y -> Float.abs (x -. y) <= atol +. (rtol *. Float.abs y))
    a b

let of_float f = scalar f
let fold f init t = Array.fold_left f init (to_array t)
