(** Generic dense n-dimensional tensors over an element domain.

    Implements the operation set of the STENSO grammar (Fig. 3 of the
    paper) plus the extensions its benchmark suite needs: broadcasting
    elementwise arithmetic, NumPy [dot]/[tensordot], axis reductions,
    [stack], [transpose], [reshape], [diag]/[trace], and triangular
    masks.  The same module is instantiated with floats (concrete
    execution) and with symbolic expressions (symbolic execution). *)

module type S = sig
  type elt
  type t

  (** {1 Construction and access} *)

  val create : Shape.t -> elt -> t
  val init : Shape.t -> (int array -> elt) -> t
  val scalar : elt -> t
  val of_array : Shape.t -> elt array -> t
  val shape : t -> Shape.t
  val rank : t -> int
  val numel : t -> int
  val get : t -> int array -> elt
  val set : t -> int array -> elt -> unit
  val to_array : t -> elt array
  (** Row-major copy of the elements. *)

  val to_scalar : t -> elt
  (** The element of a one-element tensor; raises otherwise. *)

  (** {1 Elementwise (broadcasting)} *)

  val map : (elt -> elt) -> t -> t
  val map2 : (elt -> elt -> elt) -> t -> t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val pow : t -> t -> t
  val neg : t -> t
  val sqrt : t -> t
  val exp : t -> t
  val log : t -> t
  val maximum : t -> t -> t
  val less : t -> t -> t
  val where : t -> t -> t -> t

  (** {1 Structure} *)

  val transpose : ?perm:int array -> t -> t
  (** Default permutation reverses all axes (NumPy [.T]). *)

  val reshape : t -> Shape.t -> t
  val stack : t list -> axis:int -> t
  val slice0 : t -> int -> t
  (** [slice0 t i] is the [i]-th sub-tensor along axis 0. *)

  val triu : t -> t
  val tril : t -> t
  val diag : t -> t
  (** Main diagonal of a square matrix. *)

  val full : Shape.t -> elt -> t

  (** {1 Contractions and reductions} *)

  val dot : t -> t -> t
  (** NumPy [dot] semantics for all rank combinations: inner product for
      two vectors, matrix product for matrices, and in general a
      contraction of the last axis of the first operand with the
      second-to-last (or only) axis of the second. *)

  val tensordot : t -> t -> axes_a:int list -> axes_b:int list -> t
  val sum : ?axis:int -> ?keepdims:bool -> t -> t
  (** Reduce one axis, or all axes when [axis] is omitted.  With
      [keepdims] every reduced axis is kept as size 1, so the result
      broadcasts back over the source tensor. *)

  val max_reduce : ?axis:int -> ?keepdims:bool -> t -> t
  val trace : t -> t

  (** {1 Comparison and printing} *)

  val equal : t -> t -> bool
  val for_all2 : (elt -> elt -> bool) -> t -> t -> bool
  val pp : Format.formatter -> t -> unit

  (** {1 Zero-copy escape hatches}

      For performance-critical float specializations (see
      {!Ftensor}); the array is the tensor's live row-major storage. *)

  val unsafe_data : t -> elt array
  val unsafe_of_data : Shape.t -> elt array -> t
end

module Make (E : Elt.S) : S with type elt = E.t
