module type S = sig
  type elt
  type t

  val create : Shape.t -> elt -> t
  val init : Shape.t -> (int array -> elt) -> t
  val scalar : elt -> t
  val of_array : Shape.t -> elt array -> t
  val shape : t -> Shape.t
  val rank : t -> int
  val numel : t -> int
  val get : t -> int array -> elt
  val set : t -> int array -> elt -> unit
  val to_array : t -> elt array
  val to_scalar : t -> elt
  val map : (elt -> elt) -> t -> t
  val map2 : (elt -> elt -> elt) -> t -> t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val pow : t -> t -> t
  val neg : t -> t
  val sqrt : t -> t
  val exp : t -> t
  val log : t -> t
  val maximum : t -> t -> t
  val less : t -> t -> t
  val where : t -> t -> t -> t
  val transpose : ?perm:int array -> t -> t
  val reshape : t -> Shape.t -> t
  val stack : t list -> axis:int -> t
  val slice0 : t -> int -> t
  val triu : t -> t
  val tril : t -> t
  val diag : t -> t
  val full : Shape.t -> elt -> t
  val dot : t -> t -> t
  val tensordot : t -> t -> axes_a:int list -> axes_b:int list -> t
  val sum : ?axis:int -> ?keepdims:bool -> t -> t
  val max_reduce : ?axis:int -> ?keepdims:bool -> t -> t
  val trace : t -> t
  val equal : t -> t -> bool
  val for_all2 : (elt -> elt -> bool) -> t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val unsafe_data : t -> elt array
  val unsafe_of_data : Shape.t -> elt array -> t
end

module Make (E : Elt.S) : S with type elt = E.t = struct
  type elt = E.t
  type t = { shape : Shape.t; data : elt array }

  let create shape v =
    Shape.validate shape;
    { shape; data = Array.make (Shape.numel shape) v }

  let init shape f =
    Shape.validate shape;
    let n = Shape.numel shape in
    if n = 0 then { shape; data = [||] }
    else begin
      let data = Array.make n E.zero in
      let i = ref 0 in
      Shape.iter_indices shape (fun idx ->
          data.(!i) <- f idx;
          incr i);
      { shape; data }
    end

  let scalar v = { shape = Shape.scalar; data = [| v |] }

  let of_array shape data =
    Shape.validate shape;
    if Array.length data <> Shape.numel shape then
      invalid_arg "Nd.of_array: element count does not match shape";
    { shape; data = Array.copy data }

  let shape t = t.shape
  let rank t = Shape.rank t.shape
  let numel t = Array.length t.data
  let get t idx = t.data.(Shape.offset t.shape idx)
  let set t idx v = t.data.(Shape.offset t.shape idx) <- v
  let to_array t = Array.copy t.data

  let to_scalar t =
    if numel t <> 1 then invalid_arg "Nd.to_scalar: not a one-element tensor";
    t.data.(0)

  let map f t = { t with data = Array.map f t.data }

  let map2 f a b =
    let out_shape = Shape.broadcast_exn a.shape b.shape in
    let n = Shape.numel out_shape in
    if n = 0 then { shape = out_shape; data = [||] }
    else begin
      let data = Array.make n E.zero in
      let i = ref 0 in
      Shape.iter_indices out_shape (fun idx ->
          let va = a.data.(Shape.broadcast_offset a.shape idx) in
          let vb = b.data.(Shape.broadcast_offset b.shape idx) in
          data.(!i) <- f va vb;
          incr i);
      { shape = out_shape; data }
    end

  let map3 f a b c =
    let s = Shape.broadcast_exn (Shape.broadcast_exn a.shape b.shape) c.shape in
    let n = Shape.numel s in
    if n = 0 then { shape = s; data = [||] }
    else begin
      let data = Array.make n E.zero in
      let i = ref 0 in
      Shape.iter_indices s (fun idx ->
          let va = a.data.(Shape.broadcast_offset a.shape idx) in
          let vb = b.data.(Shape.broadcast_offset b.shape idx) in
          let vc = c.data.(Shape.broadcast_offset c.shape idx) in
          data.(!i) <- f va vb vc;
          incr i);
      { shape = s; data }
    end

  let add = map2 E.add
  let sub = map2 E.sub
  let mul = map2 E.mul
  let div = map2 E.div
  let pow = map2 E.pow
  let neg = map E.neg
  let sqrt = map E.sqrt
  let exp = map E.exp
  let log = map E.log
  let maximum = map2 E.max
  let less = map2 E.less
  let where c a b = map3 E.where c a b

  let transpose ?perm t =
    let n = rank t in
    let perm = match perm with Some p -> p | None -> Shape.reverse_perm n in
    let out_shape = Shape.transpose t.shape perm in
    init out_shape (fun idx ->
        let src = Array.make n 0 in
        Array.iteri (fun i p -> src.(p) <- idx.(i)) perm;
        get t src)

  let reshape t s =
    Shape.validate s;
    if Shape.numel s <> numel t then
      invalid_arg "Nd.reshape: element count mismatch";
    { shape = s; data = Array.copy t.data }

  let stack ts ~axis =
    match ts with
    | [] -> invalid_arg "Nd.stack: empty list"
    | t0 :: rest ->
        List.iter
          (fun t ->
            if not (Shape.equal t.shape t0.shape) then
              invalid_arg "Nd.stack: inhomogeneous shapes")
          rest;
        let k = List.length ts in
        let axis =
          if axis < 0 then axis + rank t0 + 1 else axis
        in
        if axis < 0 || axis > rank t0 then invalid_arg "Nd.stack: bad axis";
        let arr = Array.of_list ts in
        let out_shape = Shape.insert_axis t0.shape axis k in
        init out_shape (fun idx ->
            let which = idx.(axis) in
            let inner = Shape.remove_axis idx axis in
            get arr.(which) inner)

  let slice0 t i =
    if rank t = 0 then invalid_arg "Nd.slice0: rank-0 tensor";
    if i < 0 || i >= t.shape.(0) then invalid_arg "Nd.slice0: out of bounds";
    let inner_shape = Shape.remove_axis t.shape 0 in
    let m = Shape.numel inner_shape in
    { shape = inner_shape; data = Array.sub t.data (i * m) m }

  let check_matrix name t =
    if rank t <> 2 then
      invalid_arg (Printf.sprintf "Nd.%s: expected a matrix" name)

  let triu t =
    check_matrix "triu" t;
    init t.shape (fun idx -> if idx.(0) <= idx.(1) then get t idx else E.zero)

  let tril t =
    check_matrix "tril" t;
    init t.shape (fun idx -> if idx.(0) >= idx.(1) then get t idx else E.zero)

  let diag t =
    check_matrix "diag" t;
    let n = min t.shape.(0) t.shape.(1) in
    init [| n |] (fun idx -> get t [| idx.(0); idx.(0) |])

  let full shape v = create shape v

  (* General contraction: sum over one axis of [a] against one axis of
     [b]; the output concatenates the remaining axes of [a] then [b]. *)
  let contract1 a axis_a b axis_b =
    let da = a.shape.(axis_a) and db = b.shape.(axis_b) in
    if da <> db then
      invalid_arg
        (Printf.sprintf "Nd: contraction size mismatch (%d vs %d)" da db);
    let sa = Shape.remove_axis a.shape axis_a in
    let sb = Shape.remove_axis b.shape axis_b in
    let out_shape = Array.append sa sb in
    let ra = Array.length sa in
    init out_shape (fun idx ->
        let ia = Array.make (Array.length sa + 1) 0 in
        let ib = Array.make (Array.length sb + 1) 0 in
        for i = 0 to ra - 1 do
          let pos = if i < axis_a then i else i + 1 in
          ia.(pos) <- idx.(i)
        done;
        for i = 0 to Array.length sb - 1 do
          let pos = if i < axis_b then i else i + 1 in
          ib.(pos) <- idx.(ra + i)
        done;
        let acc = ref E.zero in
        for k = 0 to da - 1 do
          ia.(axis_a) <- k;
          ib.(axis_b) <- k;
          acc := E.add !acc (E.mul (get a ia) (get b ib))
        done;
        !acc)

  let dot a b =
    let ra = rank a and rb = rank b in
    if ra = 0 || rb = 0 then mul a b
    else
      let axis_b = if rb = 1 then 0 else rb - 2 in
      contract1 a (ra - 1) b axis_b

  let tensordot a b ~axes_a ~axes_b =
    if List.length axes_a <> List.length axes_b then
      invalid_arg "Nd.tensordot: axes length mismatch";
    if axes_a = [] then invalid_arg "Nd.tensordot: empty axes";
    let axes_a =
      Array.of_list (List.map (Shape.normalize_axis a.shape) axes_a)
    in
    let axes_b =
      Array.of_list (List.map (Shape.normalize_axis b.shape) axes_b)
    in
    let contracted_dims =
      Array.mapi
        (fun i xa ->
          let da = a.shape.(xa) and db = b.shape.(axes_b.(i)) in
          if da <> db then
            invalid_arg "Nd.tensordot: contracted axis size mismatch";
          da)
        axes_a
    in
    let keep name shape axes =
      ignore name;
      List.filter
        (fun i -> not (Array.exists (( = ) i) axes))
        (List.init (Array.length shape) Fun.id)
    in
    let keep_a = keep "a" a.shape axes_a and keep_b = keep "b" b.shape axes_b in
    let out_shape =
      Array.of_list
        (List.map (fun i -> a.shape.(i)) keep_a
        @ List.map (fun i -> b.shape.(i)) keep_b)
    in
    let nk_a = List.length keep_a in
    init out_shape (fun idx ->
        let ia = Array.make (rank a) 0 and ib = Array.make (rank b) 0 in
        List.iteri (fun i ax -> ia.(ax) <- idx.(i)) keep_a;
        List.iteri (fun i ax -> ib.(ax) <- idx.(nk_a + i)) keep_b;
        let acc = ref E.zero in
        Shape.iter_indices contracted_dims (fun kidx ->
            Array.iteri (fun j ax -> ia.(ax) <- kidx.(j)) axes_a;
            Array.iteri (fun j ax -> ib.(ax) <- kidx.(j)) axes_b;
            acc := E.add !acc (E.mul (get a ia) (get b ib)));
        !acc)

  (* Keeping reduced axes as size 1 only re-tags the shape: the reduced
     data is laid out identically whether the axis is dropped or kept. *)
  let keep_shape src_shape axis reduced =
    match axis with
    | None -> { reduced with shape = Array.make (Shape.rank src_shape) 1 }
    | Some ax ->
        { reduced with
          shape = Array.mapi (fun i d -> if i = ax then 1 else d) src_shape
        }

  let sum ?axis ?(keepdims = false) t =
    let axis = Option.map (Shape.normalize_axis t.shape) axis in
    let plain =
    match axis with
    | None ->
        let acc = Array.fold_left E.add E.zero t.data in
        scalar acc
    | Some axis ->
        let out_shape = Shape.remove_axis t.shape axis in
        init out_shape (fun idx ->
            let src = Array.make (rank t) 0 in
            Array.iteri
              (fun i v ->
                let pos = if i < axis then i else i + 1 in
                src.(pos) <- v)
              idx;
            let acc = ref E.zero in
            for k = 0 to t.shape.(axis) - 1 do
              src.(axis) <- k;
              acc := E.add !acc (get t src)
            done;
            !acc)
    in
    if keepdims then keep_shape t.shape axis plain else plain

  let max_reduce ?axis ?(keepdims = false) t =
    if numel t = 0 then invalid_arg "Nd.max_reduce: empty tensor";
    let axis = Option.map (Shape.normalize_axis t.shape) axis in
    let plain =
    match axis with
    | None ->
        let acc = ref t.data.(0) in
        Array.iteri (fun i v -> if i > 0 then acc := E.max !acc v) t.data;
        scalar !acc
    | Some axis ->
        let out_shape = Shape.remove_axis t.shape axis in
        init out_shape (fun idx ->
            let src = Array.make (rank t) 0 in
            Array.iteri
              (fun i v ->
                let pos = if i < axis then i else i + 1 in
                src.(pos) <- v)
              idx;
            src.(axis) <- 0;
            let acc = ref (get t src) in
            for k = 1 to t.shape.(axis) - 1 do
              src.(axis) <- k;
              acc := E.max !acc (get t src)
            done;
            !acc)
    in
    if keepdims then keep_shape t.shape axis plain else plain

  let trace t =
    check_matrix "trace" t;
    sum (diag t)

  let equal a b =
    Shape.equal a.shape b.shape && Array.for_all2 E.equal a.data b.data

  let for_all2 f a b =
    Shape.equal a.shape b.shape && Array.for_all2 f a.data b.data

  let unsafe_data t = t.data

  let unsafe_of_data shape data =
    if Array.length data <> Shape.numel shape then
      invalid_arg "Nd.unsafe_of_data: element count mismatch";
    { shape; data }

  let pp ppf t =
    Format.fprintf ppf "@[<hov 2>tensor%a[@," Shape.pp t.shape;
    Array.iteri
      (fun i v ->
        if i > 0 then Format.fprintf ppf ",@ ";
        E.pp ppf v)
      t.data;
    Format.fprintf ppf "]@]"
end
