open Symbolic

module Expr_elt : Tensor.Elt.S with type t = Expr.t = struct
  type t = Expr.t

  let zero = Expr.zero
  let one = Expr.one

  let of_float f =
    match Q.of_float f with
    | Some q -> Expr.rat q
    | None ->
        (* Non-dyadic constant: approximate with a fixed denominator so
           both sides of any comparison use the same conversion. *)
        Expr.rat (Q.make (int_of_float (Float.round (f *. 1e9))) 1_000_000_000)

  let add a b = Expr.add [ a; b ]
  let sub = Expr.sub
  let mul a b = Expr.mul [ a; b ]
  let div = Expr.div
  let pow = Expr.pow
  let neg = Expr.neg
  let sqrt = Expr.sqrt
  let exp = Expr.exp
  let log = Expr.log
  let max = Expr.max2
  let less = Expr.less
  let where = Expr.where
  let is_zero = Expr.is_zero
  let equal = Expr.equal
  let pp = Expr.pp
end

module Stensor = Tensor.Nd.Make (Expr_elt)

exception Eval_error of string

let input_tensor name shape =
  Stensor.init shape (fun idx -> Expr.var (Sym.make name (Array.copy idx)))

let sym_env (env : Types.env) =
  List.map (fun (name, (vt : Types.vt)) -> (name, input_tensor name vt.shape)) env

let rec exec env (t : Ast.t) : Stensor.t =
  match t with
  | Input name -> env name
  | Const f -> Stensor.scalar (Expr_elt.of_float f)
  | App (op, args) -> apply op (List.map (exec env) args)
  | For_stack { var; iter; body } ->
      let source = env iter in
      let n = (Stensor.shape source).(0) in
      let slices =
        List.init n (fun i ->
            let slice = Stensor.slice0 source i in
            let env' name = if name = var then slice else env name in
            exec env' body)
      in
      Stensor.stack slices ~axis:0

and apply (op : Ast.op) (args : Stensor.t list) : Stensor.t =
  match (op, args) with
  | Add, [ a; b ] -> Stensor.add a b
  | Sub, [ a; b ] -> Stensor.sub a b
  | Mul, [ a; b ] -> Stensor.mul a b
  | Div, [ a; b ] -> Stensor.div a b
  | Pow_op, [ a; b ] -> Stensor.pow a b
  | Maximum, [ a; b ] -> Stensor.maximum a b
  | Sqrt, [ a ] -> Stensor.sqrt a
  | Exp, [ a ] -> Stensor.exp a
  | Log, [ a ] -> Stensor.log a
  | Dot, [ a; b ] -> Stensor.dot a b
  | Tensordot (axes_a, axes_b), [ a; b ] -> Stensor.tensordot a b ~axes_a ~axes_b
  | Transpose perm, [ a ] -> Stensor.transpose ?perm a
  | Sum { axis; keepdims }, [ a ] -> Stensor.sum ?axis ~keepdims a
  | Max { axis; keepdims }, [ a ] -> Stensor.max_reduce ?axis ~keepdims a
  | Stack axis, ts -> Stensor.stack ts ~axis
  | Where, [ c; a; b ] -> Stensor.where c a b
  | Less, [ a; b ] -> Stensor.less a b
  | Triu, [ a ] -> Stensor.triu a
  | Tril, [ a ] -> Stensor.tril a
  | Diag, [ a ] -> Stensor.diag a
  | Trace, [ a ] -> Stensor.trace a
  | Reshape shape, [ a ] -> Stensor.reshape a shape
  | Full shape, [ v ] -> Stensor.full shape (Stensor.to_scalar v)
  | ( ( Add | Sub | Mul | Div | Pow_op | Maximum | Sqrt | Exp | Log | Dot
      | Tensordot _ | Transpose _ | Sum _ | Max _ | Where | Less | Triu
      | Tril | Diag | Trace | Reshape _ | Full _ ),
      _ ) ->
      raise (Eval_error (Ast.op_name op ^ ": wrong number of arguments"))

let apply_op = apply

let exec_env env t =
  let alist = sym_env env in
  exec
    (fun name ->
      match List.assoc_opt name alist with
      | Some v -> v
      | None -> raise (Eval_error ("unbound input " ^ name)))
    t

let equivalent env a b =
  try
    let sa = exec_env env a and sb = exec_env env b in
    Stensor.equal sa sb
  with Eval_error _ | Invalid_argument _ | Symbolic.Q.Overflow -> false

let density t =
  let n = Stensor.numel t in
  if n = 0 then 0.
  else
    let nonzero =
      Array.fold_left
        (fun acc e -> if Expr.is_zero e then acc else acc + 1)
        0 (Stensor.to_array t)
    in
    float_of_int nonzero /. float_of_int n

let complexity t =
  let n = Stensor.numel t in
  if n = 0 then 0.
  else
    let total =
      Array.fold_left
        (fun acc e -> acc + Sym.Set.cardinal (Expr.vars e))
        0 (Stensor.to_array t)
    in
    let mean_vars = float_of_int total /. float_of_int n in
    mean_vars *. density t

let eval_concrete assignment t =
  Tensor.Ftensor.of_array (Stensor.shape t)
    (Array.map (Expr.eval assignment) (Stensor.to_array t))
