module F = Tensor.Ftensor

exception Eval_error of string

let rec eval env (t : Ast.t) : F.t =
  match t with
  | Input name -> env name
  | Const f -> F.scalar f
  | App (op, args) -> apply op (List.map (eval env) args)
  | For_stack { var; iter; body } ->
      let source = env iter in
      let n = (F.shape source).(0) in
      let slices =
        List.init n (fun i ->
            let slice = F.slice0 source i in
            let env' name = if name = var then slice else env name in
            eval env' body)
      in
      F.stack slices ~axis:0

and apply (op : Ast.op) (args : F.t list) : F.t =
  match (op, args) with
  | Add, [ a; b ] -> F.add a b
  | Sub, [ a; b ] -> F.sub a b
  | Mul, [ a; b ] -> F.mul a b
  | Div, [ a; b ] -> F.div a b
  | Pow_op, [ a; b ] -> F.pow a b
  | Maximum, [ a; b ] -> F.maximum a b
  | Sqrt, [ a ] -> F.sqrt a
  | Exp, [ a ] -> F.exp a
  | Log, [ a ] -> F.log a
  | Dot, [ a; b ] -> F.dot a b
  | Tensordot (axes_a, axes_b), [ a; b ] -> F.tensordot a b ~axes_a ~axes_b
  | Transpose perm, [ a ] -> F.transpose ?perm a
  | Sum { axis; keepdims }, [ a ] -> F.sum ?axis ~keepdims a
  | Max { axis; keepdims }, [ a ] -> F.max_reduce ?axis ~keepdims a
  | Stack axis, ts -> F.stack ts ~axis
  | Where, [ c; a; b ] -> F.where c a b
  | Less, [ a; b ] -> F.less a b
  | Triu, [ a ] -> F.triu a
  | Tril, [ a ] -> F.tril a
  | Diag, [ a ] -> F.diag a
  | Trace, [ a ] -> F.trace a
  | Reshape shape, [ a ] -> F.reshape a shape
  | Full shape, [ v ] -> F.full shape (F.to_scalar v)
  | ( ( Add | Sub | Mul | Div | Pow_op | Maximum | Sqrt | Exp | Log | Dot
      | Tensordot _ | Transpose _ | Sum _ | Max _ | Where | Less | Triu
      | Tril | Diag | Trace | Reshape _ | Full _ ),
      _ ) ->
      raise (Eval_error (Ast.op_name op ^ ": wrong number of arguments"))

let apply_op = apply

let eval_alist alist t =
  eval
    (fun name ->
      match List.assoc_opt name alist with
      | Some v -> v
      | None -> raise (Eval_error ("unbound input " ^ name)))
    t

let random_inputs ?(lo = 0.5) ?(hi = 1.5) st (env : Types.env) =
  List.map
    (fun (name, (vt : Types.vt)) ->
      let v =
        match vt.dtype with
        | Types.Float -> F.randomize ~lo ~hi st vt.shape
        | Types.Bool ->
            F.init vt.shape (fun _ ->
                if Random.State.bool st then 1. else 0.)
      in
      (name, v))
    env
