(** Parser for the NumPy-flavoured surface syntax of the DSL.

    A program file declares its inputs and returns one expression:
    {v
    # gaussian variance reduction
    input A : f32[3, 3]
    input B : f32[3, 3]
    return np.diag(np.dot(A, B))
    v}

    Expressions support the operators [+ - * / @ **], unary minus,
    postfix [.T], numeric literals, [np.<fn>(...)] calls with [axis=]
    keywords, shape/axes tuples, and the comprehension form
    [np.stack([e for v in X])].  This mirrors the Python subset the
    paper's artifact accepts as benchmark sources. *)

exception Parse_error of string

val program : string -> Types.env * Ast.t
(** Parse a whole program (input declarations + return). *)

val expression : string -> Ast.t
(** Parse a bare expression (no declarations). *)

val unparse : Types.env -> Ast.t -> string
(** Render a program back to the surface syntax accepted by {!program}
    ([input] declarations in environment order, then [return]); the
    round trip [program (unparse env e)] reproduces [(env, e)].  This is
    the canonical program rendering: the CLI's output files and the
    persistent store's cached entries both use it, so "byte-identical
    program" is well defined across them. *)
