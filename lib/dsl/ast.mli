(** Abstract syntax of the tensor DSL.

    This is the grammar of Fig. 3 in the paper (NumPy operations over
    float and boolean tensors with shape/axis attributes), extended with
    the operations the paper's own benchmark suite uses: [exp], [log],
    [maximum], [stack], [diag], [trace], [reshape], and the
    list-comprehension loop [For_stack] that models
    [np.stack([body for v in xs])]. *)

type reduce = { axis : int option; keepdims : bool }
(** Reduction attributes: [axis = None] reduces all axes; [keepdims]
    keeps every reduced axis as size 1 so the result broadcasts back
    over its source (NumPy's [keepdims=True]). *)

type op =
  | Add
  | Sub
  | Mul
  | Div
  | Pow_op
  | Maximum
  | Sqrt
  | Exp
  | Log
  | Dot
  | Tensordot of int list * int list
  | Transpose of int array option  (** [None] reverses all axes *)
  | Sum of reduce
  | Max of reduce
  | Stack of int  (** axis *)
  | Where
  | Less
  | Triu
  | Tril
  | Diag
  | Trace
  | Reshape of int array
  | Full of int array  (** target shape; the single argument is a scalar *)

type t =
  | Input of string
  | Const of float
  | App of op * t list
  | For_stack of { var : string; iter : string; body : t }
      (** [np.stack([body for var in iter], axis=0)] where [iter] names
          an input tensor iterated along axis 0. *)

val reduce : ?keepdims:bool -> int option -> reduce
(** [reduce axis] with [keepdims] defaulting to [false]. *)

val sum_op : ?keepdims:bool -> int option -> op
val max_op : ?keepdims:bool -> int option -> op

val op_name : op -> string
val op_arity : op -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val size : t -> int
(** Number of AST nodes. *)

val num_ops : t -> int
(** Number of operation nodes (excludes inputs and constants). *)

val inputs : t -> string list
(** Sorted distinct free input names (comprehension variables are
    bound and excluded). *)

val subst_input : string -> t -> t -> t
(** [subst_input name replacement t] replaces [Input name] nodes. *)

val subst_inputs : (string * t) list -> t -> t
(** Simultaneous substitution: every [Input name] bound in the list is
    replaced in one traversal, so replacements are never re-substituted
    — [subst_inputs [("X", Input "Y"); ("Y", Input "Q")]] maps [X] to
    [Y] and [Y] to [Q], where the sequential folds would corrupt [X]'s
    replacement into [Q].  Comprehension variables shadow as in
    {!subst_input}. *)

val children : t -> t list
val map_children : (t -> t) -> t -> t

val pp : Format.formatter -> t -> unit
(** NumPy-flavoured rendering, e.g. [np.dot(np.multiply(A, C), B)]. *)

val to_string : t -> string
