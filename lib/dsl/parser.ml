exception Parse_error of string

(* Every diagnostic carries the 1-based line and column of the
   offending token, so `stenso run`/`lift` can point at the source. *)
let fail_at line col fmt =
  Format.kasprintf
    (fun m ->
      raise (Parse_error (Printf.sprintf "line %d, column %d: %s" line col m)))
    fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | NUMBER of float
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | DOT
  | PLUS
  | MINUS
  | STAR
  | STARSTAR
  | SLASH
  | AT
  | EQUALS
  | NEWLINE
  | EOF

let pp_token = function
  | IDENT s -> s
  | NUMBER f -> string_of_float f
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | COLON -> ":"
  | DOT -> "."
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | STARSTAR -> "**"
  | SLASH -> "/"
  | AT -> "@"
  | EQUALS -> "="
  | NEWLINE -> "<newline>"
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type ptok = { tok : token; tline : int; tcol : int }

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let bol = ref 0 in
  (* Position of the token that starts at the cursor. *)
  let tline = ref 1 and tcol = ref 1 in
  let mark () =
    tline := !line;
    tcol := !i - !bol + 1
  in
  let emit t = toks := { tok = t; tline = !tline; tcol = !tcol } :: !toks in
  while !i < n do
    let c = src.[!i] in
    mark ();
    if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '\n' then begin
      emit NEWLINE;
      incr i;
      incr line;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (IDENT (String.sub src start (!i - start)))
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      while
        !i < n
        && (is_digit src.[!i]
           || src.[!i] = '.'
           || src.[!i] = 'e'
           || src.[!i] = 'E'
           || ((src.[!i] = '+' || src.[!i] = '-')
              && !i > start
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match float_of_string_opt text with
      | Some f -> emit (NUMBER f)
      | None -> fail_at !tline !tcol "bad numeric literal %S" text
    end
    else begin
      incr i;
      match c with
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '[' -> emit LBRACKET
      | ']' -> emit RBRACKET
      | ',' -> emit COMMA
      | ':' -> emit COLON
      | '.' -> emit DOT
      | '+' -> emit PLUS
      | '-' -> emit MINUS
      | '*' ->
          if !i < n && src.[!i] = '*' then begin
            incr i;
            emit STARSTAR
          end
          else emit STAR
      | '/' -> emit SLASH
      | '@' -> emit AT
      | '=' -> emit EQUALS
      | c -> fail_at !tline !tcol "unexpected character %C" c
    end
  done;
  mark ();
  emit EOF;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token stream                                                       *)
(* ------------------------------------------------------------------ *)

(* [line]/[col] track the most recently peeked token, so a failure
   raised right after [peek]/[next] points at it. *)
type stream = { mutable toks : ptok list; mutable line : int; mutable col : int }

let stream src =
  let toks = tokenize src in
  match toks with
  | [] -> { toks; line = 1; col = 1 }
  | t :: _ -> { toks; line = t.tline; col = t.tcol }

let peek s =
  match s.toks with
  | t :: _ ->
      s.line <- t.tline;
      s.col <- t.tcol;
      t.tok
  | [] -> EOF

let advance s = match s.toks with _ :: rest -> s.toks <- rest | [] -> ()

let next s =
  let t = peek s in
  advance s;
  t

let sfail s fmt = fail_at s.line s.col fmt

let expect s tok =
  let t = next s in
  if t <> tok then
    sfail s "expected %s but found %s" (pp_token tok) (pp_token t)

let skip_newlines s =
  while peek s = NEWLINE do
    advance s
  done

(* Inside brackets newlines are insignificant; our surface syntax keeps
   everything on one logical line per declaration, so we just skip them
   in expression position. *)

(* ------------------------------------------------------------------ *)
(* Expression parser                                                  *)
(* ------------------------------------------------------------------ *)

let kwarg_axis s =
  (* Parses [axis = <int>] after the [axis] ident has been consumed. *)
  expect s EQUALS;
  match next s with
  | NUMBER f when Float.is_integer f -> int_of_float f
  | MINUS -> (
      match next s with
      | NUMBER f when Float.is_integer f -> -int_of_float f
      | t -> sfail s "expected integer axis, found %s" (pp_token t))
  | t -> sfail s "expected integer axis, found %s" (pp_token t)

let rec parse_expr s = parse_additive s

and parse_additive s =
  let lhs = ref (parse_multiplicative s) in
  let continue_ = ref true in
  while !continue_ do
    match peek s with
    | PLUS ->
        advance s;
        lhs := Ast.App (Add, [ !lhs; parse_multiplicative s ])
    | MINUS ->
        advance s;
        lhs := Ast.App (Sub, [ !lhs; parse_multiplicative s ])
    | _ -> continue_ := false
  done;
  !lhs

and parse_multiplicative s =
  let lhs = ref (parse_unary s) in
  let continue_ = ref true in
  while !continue_ do
    match peek s with
    | STAR ->
        advance s;
        lhs := Ast.App (Mul, [ !lhs; parse_unary s ])
    | SLASH ->
        advance s;
        lhs := Ast.App (Div, [ !lhs; parse_unary s ])
    | AT ->
        advance s;
        lhs := Ast.App (Dot, [ !lhs; parse_unary s ])
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary s =
  match peek s with
  | MINUS -> (
      advance s;
      (* Negative literals fold at parse time (they are Python-level
         constants, not framework operations). *)
      match parse_unary s with
      | Ast.Const f -> Ast.Const (-.f)
      | e -> Ast.App (Mul, [ Ast.Const (-1.); e ]))
  | _ -> parse_power s

and parse_power s =
  let base = parse_postfix s in
  match peek s with
  | STARSTAR ->
      advance s;
      Ast.App (Pow_op, [ base; parse_unary s ])
  | _ -> base

and parse_postfix s =
  let e = ref (parse_atom s) in
  let continue_ = ref true in
  while !continue_ do
    match peek s with
    | DOT -> (
        advance s;
        match next s with
        | IDENT "T" -> e := Ast.App (Transpose None, [ !e ])
        | t -> sfail s "expected .T, found .%s" (pp_token t))
    | _ -> continue_ := false
  done;
  !e

and parse_atom s =
  match next s with
  | NUMBER f -> Ast.Const f
  | LPAREN ->
      let e = parse_expr s in
      expect s RPAREN;
      e
  | IDENT "np" ->
      expect s DOT;
      let fn = match next s with
        | IDENT name -> name
        | t -> sfail s "expected function name after np., found %s" (pp_token t)
      in
      parse_np_call s fn
  | IDENT name -> Ast.Input name
  | t -> sfail s "unexpected token %s in expression" (pp_token t)

and parse_int s =
  match next s with
  | NUMBER f when Float.is_integer f -> int_of_float f
  | MINUS -> (
      match next s with
      | NUMBER f when Float.is_integer f -> -int_of_float f
      | t -> sfail s "expected integer, found %s" (pp_token t))
  | t -> sfail s "expected integer, found %s" (pp_token t)

and parse_int_seq s close =
  (* Comma-separated integers up to (and consuming) [close]. *)
  if peek s = close then begin
    advance s;
    []
  end
  else
    let rec go acc =
      let n = parse_int s in
      match next s with
      | COMMA -> if peek s = close then (advance s; List.rev (n :: acc)) else go (n :: acc)
      | t when t = close -> List.rev (n :: acc)
      | t -> sfail s "expected , or %s, found %s" (pp_token close) (pp_token t)
    in
    go []

and parse_int_group s =
  (* A tuple or list of integers: (1, 2) or [1, 2], or a bare integer. *)
  match peek s with
  | LPAREN ->
      advance s;
      parse_int_seq s RPAREN
  | LBRACKET ->
      advance s;
      parse_int_seq s RBRACKET
  | _ -> [ parse_int s ]

and parse_expr_list s =
  (* [e1, e2, ...] — the bracket has already been consumed. *)
  let rec go acc =
    let e = parse_expr s in
    match next s with
    | COMMA -> if peek s = RBRACKET then (advance s; List.rev (e :: acc)) else go (e :: acc)
    | RBRACKET -> List.rev (e :: acc)
    | t -> sfail s "expected , or ] in list, found %s" (pp_token t)
  in
  go []

and parse_np_call s fn =
  expect s LPAREN;
  let unary mk =
    let a = parse_expr s in
    expect s RPAREN;
    mk a
  in
  let binary mk =
    let a = parse_expr s in
    expect s COMMA;
    let b = parse_expr s in
    expect s RPAREN;
    mk a b
  in
  match fn with
  | "add" -> binary (fun a b -> Ast.App (Add, [ a; b ]))
  | "subtract" -> binary (fun a b -> Ast.App (Sub, [ a; b ]))
  | "multiply" -> binary (fun a b -> Ast.App (Mul, [ a; b ]))
  | "divide" -> binary (fun a b -> Ast.App (Div, [ a; b ]))
  | "power" -> binary (fun a b -> Ast.App (Pow_op, [ a; b ]))
  | "maximum" -> binary (fun a b -> Ast.App (Maximum, [ a; b ]))
  | "dot" | "matmul" | "inner" -> binary (fun a b -> Ast.App (Dot, [ a; b ]))
  | "less" -> binary (fun a b -> Ast.App (Less, [ a; b ]))
  | "sqrt" -> unary (fun a -> Ast.App (Sqrt, [ a ]))
  | "exp" -> unary (fun a -> Ast.App (Exp, [ a ]))
  | "log" -> unary (fun a -> Ast.App (Log, [ a ]))
  | "triu" -> unary (fun a -> Ast.App (Triu, [ a ]))
  | "tril" -> unary (fun a -> Ast.App (Tril, [ a ]))
  | "diag" | "diagonal" -> unary (fun a -> Ast.App (Diag, [ a ]))
  | "trace" -> unary (fun a -> Ast.App (Trace, [ a ]))
  | "where" ->
      let c = parse_expr s in
      expect s COMMA;
      let a = parse_expr s in
      expect s COMMA;
      let b = parse_expr s in
      expect s RPAREN;
      Ast.App (Where, [ c; a; b ])
  | "sum" | "max" ->
      let a = parse_expr s in
      let axis = ref None and keepdims = ref false in
      let parse_keepdims () =
        expect s EQUALS;
        match next s with
        | IDENT "True" -> keepdims := true
        | IDENT "False" -> keepdims := false
        | t -> sfail s "expected True or False for keepdims, found %s" (pp_token t)
      in
      let rec args () =
        match peek s with
        | COMMA ->
            advance s;
            (match next s with
            | IDENT "axis" -> axis := Some (kwarg_axis s)
            | IDENT "keepdims" -> parse_keepdims ()
            | NUMBER f when Float.is_integer f -> axis := Some (int_of_float f)
            | MINUS -> (
                match next s with
                | NUMBER f when Float.is_integer f ->
                    axis := Some (-int_of_float f)
                | t -> sfail s "bad axis: %s" (pp_token t))
            | t ->
                sfail s "expected axis or keepdims argument, found %s"
                  (pp_token t));
            args ()
        | _ -> ()
      in
      args ();
      expect s RPAREN;
      let r = Ast.reduce ~keepdims:!keepdims !axis in
      if fn = "sum" then Ast.App (Sum r, [ a ]) else Ast.App (Max r, [ a ])
  | "transpose" ->
      let a = parse_expr s in
      let perm =
        match peek s with
        | COMMA ->
            advance s;
            Some (Array.of_list (parse_int_group s))
        | _ -> None
      in
      expect s RPAREN;
      Ast.App (Transpose perm, [ a ])
  | "tensordot" ->
      let a = parse_expr s in
      expect s COMMA;
      let b = parse_expr s in
      expect s COMMA;
      expect s LPAREN;
      let axes_a = parse_int_group s in
      expect s COMMA;
      let axes_b = parse_int_group s in
      expect s RPAREN;
      expect s RPAREN;
      Ast.App (Tensordot (axes_a, axes_b), [ a; b ])
  | "reshape" ->
      let a = parse_expr s in
      expect s COMMA;
      let shape = Array.of_list (parse_int_group s) in
      expect s RPAREN;
      Ast.App (Reshape shape, [ a ])
  | "full" ->
      let shape = Array.of_list (parse_int_group s) in
      expect s COMMA;
      let v = parse_expr s in
      expect s RPAREN;
      Ast.App (Full shape, [ v ])
  | "stack" -> (
      expect s LBRACKET;
      (* Either a comprehension or an explicit list. *)
      let first = parse_expr s in
      match peek s with
      | IDENT "for" ->
          advance s;
          let var = match next s with
            | IDENT v -> v
            | t -> sfail s "expected comprehension variable, found %s" (pp_token t)
          in
          (match next s with
          | IDENT "in" -> ()
          | t -> sfail s "expected 'in', found %s" (pp_token t));
          let iter = match next s with
            | IDENT v -> v
            | t -> sfail s "comprehension source must be an input name, found %s"
                     (pp_token t)
          in
          expect s RBRACKET;
          let axis =
            match peek s with
            | COMMA -> (
                advance s;
                match next s with
                | IDENT "axis" -> kwarg_axis s
                | t -> sfail s "expected axis=, found %s" (pp_token t))
            | _ -> 0
          in
          expect s RPAREN;
          if axis <> 0 then sfail s "comprehension stack only supports axis=0";
          Ast.For_stack { var; iter; body = first }
      | COMMA | RBRACKET ->
          let rest =
            if peek s = RBRACKET then (advance s; [])
            else begin
              advance s;
              parse_expr_list s
            end
          in
          let axis =
            match peek s with
            | COMMA -> (
                advance s;
                match next s with
                | IDENT "axis" -> kwarg_axis s
                | t -> sfail s "expected axis=, found %s" (pp_token t))
            | _ -> 0
          in
          expect s RPAREN;
          Ast.App (Stack axis, first :: rest)
      | t -> sfail s "unexpected %s in stack literal" (pp_token t))
  | fn -> sfail s "unknown numpy function np.%s" fn

(* ------------------------------------------------------------------ *)
(* Declarations                                                       *)
(* ------------------------------------------------------------------ *)

let parse_dtype_shape s =
  let dtype =
    match next s with
    | IDENT ("f" | "f32" | "f64" | "float") -> Types.Float
    | IDENT ("b" | "bool") -> Types.Bool
    | t -> sfail s "expected dtype (f32 or bool), found %s" (pp_token t)
  in
  expect s LBRACKET;
  let dims = parse_int_seq s RBRACKET in
  let shape = Array.of_list dims in
  match dtype with
  | Types.Float -> Types.float_t shape
  | Types.Bool -> Types.bool_t shape

let program src =
  let s = stream src in
  let env = ref [] in
  let result = ref None in
  let rec loop () =
    skip_newlines s;
    match peek s with
    | EOF -> ()
    | IDENT "input" ->
        advance s;
        let name = match next s with
          | IDENT n -> n
          | t -> sfail s "expected input name, found %s" (pp_token t)
        in
        expect s COLON;
        let vt = parse_dtype_shape s in
        if List.mem_assoc name !env then sfail s "duplicate input %s" name;
        env := (name, vt) :: !env;
        loop ()
    | IDENT "return" ->
        advance s;
        let e = parse_expr s in
        (match !result with
        | None -> result := Some e
        | Some _ -> sfail s "multiple return statements");
        loop ()
    | t -> sfail s "expected 'input' or 'return', found %s" (pp_token t)
  in
  loop ();
  match !result with
  | None -> sfail s "missing return statement"
  | Some e -> (List.rev !env, e)

let expression src =
  let s = stream src in
  skip_newlines s;
  let e = parse_expr s in
  skip_newlines s;
  (match peek s with
  | EOF -> ()
  | t -> sfail s "trailing input after expression: %s" (pp_token t));
  e

(* The inverse of [program]: render an environment and expression back
   to the surface syntax, such that [program (unparse env e)] yields the
   same environment and AST.  Shared by the CLI's program output and the
   persistent store's cached-outcome entries, so both always produce the
   byte-identical text for a given program. *)
let unparse (env : Types.env) (prog : Ast.t) =
  let render_vt (vt : Types.vt) =
    Printf.sprintf "%s[%s]"
      (match vt.dtype with Types.Float -> "f32" | Types.Bool -> "bool")
      (String.concat ", " (Array.to_list (Array.map string_of_int vt.shape)))
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, vt) ->
      Buffer.add_string buf
        (Printf.sprintf "input %s : %s\n" name (render_vt vt)))
    env;
  Buffer.add_string buf (Format.asprintf "return %a\n" Ast.pp prog);
  Buffer.contents buf
