module Shape = Tensor.Shape

type dtype = Float | Bool
type vt = { dtype : dtype; shape : Shape.t }

exception Type_error of string

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt
let scalar_f = { dtype = Float; shape = Shape.scalar }
let float_t shape = { dtype = Float; shape }
let bool_t shape = { dtype = Bool; shape }
let equal_vt a b = a.dtype = b.dtype && Shape.equal a.shape b.shape

let pp_vt ppf { dtype; shape } =
  Format.fprintf ppf "%s%a"
    (match dtype with Float -> "f" | Bool -> "b")
    Shape.pp shape

type env = (string * vt) list

let require_float name t =
  if t.dtype <> Float then err "%s: expected float tensor" name

let broadcast2 name a b =
  match Shape.broadcast a.shape b.shape with
  | Some s -> s
  | None ->
      err "%s: shapes %a and %a do not broadcast" name Shape.pp a.shape
        Shape.pp b.shape

let infer_op (op : Ast.op) (args : vt list) : vt =
  let name = Ast.op_name op in
  let nargs = List.length args in
  let arity = Ast.op_arity op in
  if arity >= 0 && nargs <> arity then
    err "%s: expected %d argument(s), got %d" name arity nargs;
  match (op, args) with
  | (Add | Sub | Mul | Div | Pow_op | Maximum), [ a; b ] ->
      require_float name a;
      require_float name b;
      float_t (broadcast2 name a b)
  | Less, [ a; b ] ->
      require_float name a;
      require_float name b;
      bool_t (broadcast2 name a b)
  | Where, [ c; a; b ] ->
      if c.dtype <> Bool then err "where: condition must be boolean";
      require_float name a;
      require_float name b;
      let s = broadcast2 name { a with shape = broadcast2 name a b } c in
      float_t s
  | (Sqrt | Exp | Log), [ a ] ->
      require_float name a;
      a
  | Dot, [ a; b ] ->
      require_float name a;
      require_float name b;
      let ra = Shape.rank a.shape and rb = Shape.rank b.shape in
      if ra = 0 || rb = 0 then err "dot: operands must have rank >= 1"
      else
        let axis_b = if rb = 1 then 0 else rb - 2 in
        if a.shape.(ra - 1) <> b.shape.(axis_b) then
          err "dot: contracted dimensions differ (%a vs %a)" Shape.pp a.shape
            Shape.pp b.shape
        else
          float_t
            (Array.append
               (Shape.remove_axis a.shape (ra - 1))
               (Shape.remove_axis b.shape axis_b))
  | Tensordot (axes_a, axes_b), [ a; b ] ->
      require_float name a;
      require_float name b;
      if List.length axes_a <> List.length axes_b || axes_a = [] then
        err "tensordot: malformed axes";
      let norm shape ax =
        try Shape.normalize_axis shape ax
        with Invalid_argument m -> err "tensordot: %s" m
      in
      let axes_a = List.map (norm a.shape) axes_a in
      let axes_b = List.map (norm b.shape) axes_b in
      let distinct xs = List.length (List.sort_uniq compare xs) = List.length xs in
      if not (distinct axes_a && distinct axes_b) then
        err "tensordot: repeated axis";
      List.iter2
        (fun xa xb ->
          if a.shape.(xa) <> b.shape.(xb) then
            err "tensordot: contracted dimension mismatch")
        axes_a axes_b;
      let keep shape axes =
        List.filter
          (fun i -> not (List.mem i axes))
          (List.init (Shape.rank shape) Fun.id)
        |> List.map (fun i -> shape.(i))
      in
      float_t (Array.of_list (keep a.shape axes_a @ keep b.shape axes_b))
  | Transpose perm, [ a ] -> (
      let r = Shape.rank a.shape in
      match perm with
      | None -> { a with shape = Shape.transpose a.shape (Shape.reverse_perm r) }
      | Some p -> (
          try { a with shape = Shape.transpose a.shape p }
          with Invalid_argument m -> err "transpose: %s" m))
  | (Sum { axis; keepdims } | Max { axis; keepdims }), [ a ] -> (
      require_float name a;
      match axis with
      | None ->
          if keepdims then
            float_t (Array.make (Shape.rank a.shape) 1)
          else float_t Shape.scalar
      | Some ax ->
          let ax =
            try Shape.normalize_axis a.shape ax
            with Invalid_argument m -> err "%s: %s" name m
          in
          if keepdims then
            float_t (Array.mapi (fun i d -> if i = ax then 1 else d) a.shape)
          else float_t (Shape.remove_axis a.shape ax))
  | Stack axis, first :: rest ->
      List.iter
        (fun t ->
          if not (equal_vt t first) then err "stack: inhomogeneous arguments")
        rest;
      let r = Shape.rank first.shape in
      let axis = if axis < 0 then axis + r + 1 else axis in
      if axis < 0 || axis > r then err "stack: bad axis";
      { first with shape = Shape.insert_axis first.shape axis nargs }
  | (Triu | Tril), [ a ] ->
      if Shape.rank a.shape <> 2 then err "%s: expected a matrix" name;
      a
  | Diag, [ a ] ->
      require_float name a;
      if Shape.rank a.shape <> 2 then err "diag: expected a matrix";
      float_t [| min a.shape.(0) a.shape.(1) |]
  | Trace, [ a ] ->
      require_float name a;
      if Shape.rank a.shape <> 2 then err "trace: expected a matrix";
      float_t Shape.scalar
  | Reshape shape, [ a ] ->
      Shape.validate shape;
      if Shape.numel shape <> Shape.numel a.shape then
        err "reshape: element count mismatch (%a to %a)" Shape.pp a.shape
          Shape.pp shape;
      { a with shape }
  | Full shape, [ v ] ->
      Shape.validate shape;
      if Shape.rank v.shape <> 0 then err "full: fill value must be a scalar";
      { v with shape }
  | Stack _, [] -> err "stack: no arguments"
  | ( ( Add | Sub | Mul | Div | Pow_op | Maximum | Sqrt | Exp | Log | Dot
      | Tensordot _ | Transpose _ | Sum _ | Max _ | Where | Less | Triu
      | Tril | Diag | Trace | Reshape _ | Full _ ),
      _ ) ->
      err "%s: wrong number of arguments" name

let rec infer (env : env) (t : Ast.t) : vt =
  match t with
  | Input name -> (
      match List.assoc_opt name env with
      | Some vt -> vt
      | None -> err "unbound input %s" name)
  | Const _ -> scalar_f
  | App (op, args) -> infer_op op (List.map (infer env) args)
  | For_stack { var; iter; body } -> (
      match List.assoc_opt iter env with
      | None -> err "unbound comprehension source %s" iter
      | Some it ->
          if Shape.rank it.shape = 0 then
            err "cannot iterate over rank-0 input %s" iter;
          let slice = { it with shape = Shape.remove_axis it.shape 0 } in
          let body_t = infer ((var, slice) :: env) body in
          { body_t with
            shape = Shape.insert_axis body_t.shape 0 it.shape.(0)
          })

let check env t = try Ok (infer env t) with Type_error m -> Error m
let well_typed env t = match check env t with Ok _ -> true | Error _ -> false
