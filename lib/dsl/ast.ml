type reduce = { axis : int option; keepdims : bool }

type op =
  | Add
  | Sub
  | Mul
  | Div
  | Pow_op
  | Maximum
  | Sqrt
  | Exp
  | Log
  | Dot
  | Tensordot of int list * int list
  | Transpose of int array option
  | Sum of reduce
  | Max of reduce
  | Stack of int
  | Where
  | Less
  | Triu
  | Tril
  | Diag
  | Trace
  | Reshape of int array
  | Full of int array

type t =
  | Input of string
  | Const of float
  | App of op * t list
  | For_stack of { var : string; iter : string; body : t }

let reduce ?(keepdims = false) axis = { axis; keepdims }
let sum_op ?keepdims axis = Sum (reduce ?keepdims axis)
let max_op ?keepdims axis = Max (reduce ?keepdims axis)

let op_name = function
  | Add -> "add"
  | Sub -> "subtract"
  | Mul -> "multiply"
  | Div -> "divide"
  | Pow_op -> "power"
  | Maximum -> "maximum"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Dot -> "dot"
  | Tensordot _ -> "tensordot"
  | Transpose _ -> "transpose"
  | Sum _ -> "sum"
  | Max _ -> "max"
  | Stack _ -> "stack"
  | Where -> "where"
  | Less -> "less"
  | Triu -> "triu"
  | Tril -> "tril"
  | Diag -> "diag"
  | Trace -> "trace"
  | Reshape _ -> "reshape"
  | Full _ -> "full"

let op_arity = function
  | Add | Sub | Mul | Div | Pow_op | Maximum | Dot | Tensordot _ | Less -> 2
  | Sqrt | Exp | Log | Transpose _ | Sum _ | Max _ | Triu | Tril | Diag
  | Trace | Reshape _ | Full _ ->
      1
  | Where -> 3
  | Stack _ -> -1 (* variadic *)

let compare = (Stdlib.compare : t -> t -> int)
let equal a b = compare a b = 0

let children = function
  | Input _ | Const _ -> []
  | App (_, args) -> args
  | For_stack { body; _ } -> [ body ]

let map_children f = function
  | (Input _ | Const _) as t -> t
  | App (op, args) -> App (op, List.map f args)
  | For_stack fs -> For_stack { fs with body = f fs.body }

let rec size t =
  match t with
  | Input _ | Const _ -> 1
  | _ -> List.fold_left (fun acc c -> acc + size c) 1 (children t)

let rec num_ops t =
  match t with
  | Input _ | Const _ -> 0
  | _ -> List.fold_left (fun acc c -> acc + num_ops c) 1 (children t)

module Sset = Set.Make (String)

let inputs t =
  let rec go bound t acc =
    match t with
    | Input name -> if Sset.mem name bound then acc else Sset.add name acc
    | Const _ -> acc
    | App (_, args) -> List.fold_left (fun acc a -> go bound a acc) acc args
    | For_stack { var; iter; body } ->
        let acc = if Sset.mem iter bound then acc else Sset.add iter acc in
        go (Sset.add var bound) body acc
  in
  Sset.elements (go Sset.empty t Sset.empty)

let rec subst_input name replacement t =
  match t with
  | Input n when n = name -> replacement
  | Input _ | Const _ -> t
  | App (op, args) -> App (op, List.map (subst_input name replacement) args)
  | For_stack fs when fs.var = name -> t (* shadowed *)
  | For_stack fs ->
      For_stack { fs with body = subst_input name replacement fs.body }

let subst_inputs bindings t =
  let rec go bindings t =
    match t with
    | Input n -> (
        match List.assoc_opt n bindings with Some r -> r | None -> t)
    | Const _ -> t
    | App (op, args) -> App (op, List.map (go bindings) args)
    | For_stack fs -> (
        match List.filter (fun (n, _) -> n <> fs.var) bindings with
        | [] -> t (* everything shadowed *)
        | live -> For_stack { fs with body = go live fs.body })
  in
  if bindings = [] then t else go bindings t

let pp_int_list ppf xs =
  Format.fprintf ppf "[%s]" (String.concat ", " (List.map string_of_int xs))

let pp_int_array ppf xs = pp_int_list ppf (Array.to_list xs)

let pp_axis ppf = function
  | None -> ()
  | Some a -> Format.fprintf ppf ", axis=%d" a

let pp_reduce ppf { axis; keepdims } =
  pp_axis ppf axis;
  if keepdims then Format.fprintf ppf ", keepdims=True"

let rec pp ppf t =
  match t with
  | Input name -> Format.pp_print_string ppf name
  | Const f ->
      if Float.is_integer f && Float.abs f < 1e9 then
        Format.fprintf ppf "%d" (int_of_float f)
      else Format.fprintf ppf "%g" f
  | App (op, args) -> pp_app ppf op args
  | For_stack { var; iter; body } ->
      Format.fprintf ppf "np.stack([%a for %s in %s])" pp body var iter

and pp_app ppf op args =
  let call name extras =
    Format.fprintf ppf "np.%s(%a%s)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp)
      args extras
  in
  match (op, args) with
  | Sum r, [ _ ] -> call "sum" (Format.asprintf "%a" pp_reduce r)
  | Max r, [ _ ] -> call "max" (Format.asprintf "%a" pp_reduce r)
  | Stack axis, _ ->
      Format.fprintf ppf "np.stack([%a], axis=%d)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp)
        args axis
  | Transpose None, [ x ] -> Format.fprintf ppf "np.transpose(%a)" pp x
  | Transpose (Some perm), [ x ] ->
      Format.fprintf ppf "np.transpose(%a, %a)" pp x pp_int_array perm
  | Tensordot (xa, xb), [ a; b ] ->
      Format.fprintf ppf "np.tensordot(%a, %a, (%a, %a))" pp a pp b
        pp_int_list xa pp_int_list xb
  | Reshape shape, [ x ] ->
      Format.fprintf ppf "np.reshape(%a, %a)" pp x pp_int_array shape
  | Full shape, [ v ] ->
      Format.fprintf ppf "np.full(%a, %a)" pp_int_array shape pp v
  | _, _ -> call (op_name op) ""

let to_string t = Format.asprintf "%a" pp t
