module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let add_float buf f =
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else begin
      (* Shortest representation that round-trips. *)
      let s = Printf.sprintf "%.17g" f in
      let s' = Printf.sprintf "%g" f in
      Buffer.add_string buf (if float_of_string s' = f then s' else s)
    end

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | Str s ->
        Buffer.add_char buf '"';
        add_escaped buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            add_escaped buf k;
            Buffer.add_string buf "\":";
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    emit buf j;
    Buffer.contents buf

  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let lit w v =
      let l = String.length w in
      if !pos + l <= n && String.sub s !pos l = w then begin
        pos := !pos + l;
        v
      end
      else fail "bad literal"
    in
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              if !pos >= n then fail "bad escape";
              (match s.[!pos] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 >= n then fail "bad \\u escape";
                  (match
                     int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4)
                   with
                  | Some code -> add_utf8 buf code
                  | None -> fail "bad \\u escape");
                  pos := !pos + 4
              | _ -> fail "bad escape");
              incr pos;
              go ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
        | _ -> false
      do
        incr pos
      done;
      let str = String.sub s start (!pos - start) in
      match int_of_string_opt str with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt str with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> Str (parse_string ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some _ -> fail "unexpected character"
      | None -> fail "unexpected end of input"
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              members ((k, v) :: acc)
          | Some '}' ->
              incr pos;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    and arr () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              elems (v :: acc)
          | Some ']' ->
              incr pos;
              List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> n then fail "trailing characters";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

  let to_float_opt = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None

  let to_int_opt = function Int i -> Some i | _ -> None
  let to_string_opt = function Str s -> Some s | _ -> None
  let to_bool_opt = function Bool b -> Some b | _ -> None
  let to_list_opt = function List xs -> Some xs | _ -> None
end

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let incr = Atomic.incr
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get = Atomic.get
end

module Acc = struct
  type t = float Atomic.t

  let make () = Atomic.make 0.

  let rec add t v =
    let cur = Atomic.get t in
    if not (Atomic.compare_and_set t cur (cur +. v)) then add t v

  let get = Atomic.get
end

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ts : float;
  kind : string;
  name : string;
  fields : (string * value) list;
}

type t = {
  on : bool;
  t0 : float;
  lock : Mutex.t;
  mutable evs : event list;  (* newest first *)
  cnts : (string, Counter.t) Hashtbl.t;
  accums : (string, Acc.t) Hashtbl.t;
}

let null =
  {
    on = false;
    t0 = 0.;
    lock = Mutex.create ();
    evs = [];
    cnts = Hashtbl.create 1;
    accums = Hashtbl.create 1;
  }

let create () =
  {
    on = true;
    t0 = Unix.gettimeofday ();
    lock = Mutex.create ();
    evs = [];
    cnts = Hashtbl.create 32;
    accums = Hashtbl.create 8;
  }

let enabled t = t.on
let now t = Unix.gettimeofday () -. t.t0

let record t ~ts kind name fields =
  let ev = { ts; kind; name; fields } in
  Mutex.protect t.lock (fun () -> t.evs <- ev :: t.evs)

let event t name fields = if t.on then record t ~ts:(now t) "event" name fields

let gauge t name v =
  if t.on then record t ~ts:(now t) "gauge" name [ ("value", Float v) ]

let span t name f =
  if not t.on then f ()
  else begin
    let start = now t in
    Fun.protect
      ~finally:(fun () ->
        record t ~ts:start "span" name [ ("dur", Float (now t -. start)) ])
      f
  end

let counter t name =
  if not t.on then Counter.make ()
  else
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.cnts name with
        | Some c -> c
        | None ->
            let c = Counter.make () in
            Hashtbl.add t.cnts name c;
            c)

let acc t name =
  if not t.on then Acc.make ()
  else
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.accums name with
        | Some a -> a
        | None ->
            let a = Acc.make () in
            Hashtbl.add t.accums name a;
            a)

let add t name n = if t.on then Counter.add (counter t name) n
let incr t name = if t.on then Counter.incr (counter t name)
let events t = List.rev t.evs

let counters t =
  Hashtbl.fold (fun k c acc -> (k, Counter.get c) :: acc) t.cnts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let accs t =
  Hashtbl.fold (fun k a out -> (k, Acc.get a) :: out) t.accums []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let series t name =
  List.filter_map
    (fun ev ->
      if ev.kind = "gauge" && ev.name = name then
        match List.assoc_opt "value" ev.fields with
        | Some (Float v) -> Some (ev.ts, v)
        | Some (Int v) -> Some (ev.ts, float_of_int v)
        | _ -> None
      else None)
    (events t)

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let event_json ev =
  Json.Obj
    (("ts", Json.Float ev.ts)
    :: ("kind", Json.Str ev.kind)
    :: ("name", Json.Str ev.name)
    :: List.map (fun (k, v) -> (k, json_of_value v)) ev.fields)

let ndjson_lines t =
  List.map (fun ev -> Json.to_string (event_json ev)) (events t)
  @ List.map
      (fun (name, v) ->
        Json.to_string
          (Json.Obj
             [
               ("kind", Json.Str "counter");
               ("name", Json.Str name);
               ("value", Json.Int v);
             ]))
      (counters t)
  @ List.map
      (fun (name, v) ->
        Json.to_string
          (Json.Obj
             [
               ("kind", Json.Str "acc");
               ("name", Json.Str name);
               ("value", Json.Float v);
             ]))
      (accs t)

let ndjson_string t =
  String.concat "" (List.map (fun l -> l ^ "\n") (ndjson_lines t))

let write_ndjson t oc =
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    (ndjson_lines t)
