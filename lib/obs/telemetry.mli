(** Observability for the synthesis engine.

    A {e sink} collects three kinds of signals, all timestamped relative
    to the sink's creation:

    - {e counters} and {e accumulators}: named monotone totals (atomic,
      shared freely across domains) — nodes expanded, prune causes,
      cache hits, seconds spent profiling;
    - {e gauges}: timestamped observations of a changing value — the
      branch-and-bound bound trajectory;
    - {e spans}: wall-clock phase timings — stub enumeration, the
      search proper, profiling.

    The disabled sink {!null} is zero-cost on hot paths: {!enabled} is a
    single field read, {!event}/{!gauge} return without allocating, and
    {!counter}/{!acc} hand back free-standing atomics that still count
    (the search's statistics work with telemetry off) but register
    nothing.  Hot loops should guard field-list construction with
    [if Telemetry.enabled t then ...].

    Everything a sink records exports as NDJSON — one JSON object per
    line, chronological events first, then final counter and accumulator
    values — via {!write_ndjson} / {!ndjson_string}. *)

(** Minimal JSON values: emission (always valid JSON; non-finite floats
    become [null]) and a strict parser for validating reports. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val of_string : string -> (t, string) result

  (** {2 Accessors} — [None] on kind mismatch. *)

  val member : string -> t -> t option

  val to_float_opt : t -> float option
  (** [Int] widens to float. *)

  val to_int_opt : t -> int option
  val to_string_opt : t -> string option
  val to_bool_opt : t -> bool option
  val to_list_opt : t -> t list option
end

(** Atomic integer counter, safe to share across domains. *)
module Counter : sig
  type t

  val make : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

(** Atomic float accumulator (CAS loop), for summed durations. *)
module Acc : sig
  type t

  val make : unit -> t
  val add : t -> float -> unit
  val get : t -> float
end

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ts : float;  (** seconds since the sink was created *)
  kind : string;  (** ["event"], ["gauge"], or ["span"] *)
  name : string;
  fields : (string * value) list;
}

type t

val null : t
(** The disabled sink. *)

val create : unit -> t
(** A fresh recording sink; its clock starts now. *)

val enabled : t -> bool

(** {2 Recording} — all no-ops on {!null}. *)

val event : t -> string -> (string * value) list -> unit
val gauge : t -> string -> float -> unit
(** Recorded as an event of kind ["gauge"] with a ["value"] field. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** Time [f]; record an event of kind ["span"] with a ["dur"] field,
    timestamped at the span's start.  When disabled, just runs [f]. *)

val counter : t -> string -> Counter.t
(** The named counter, created on first use.  On {!null}: a fresh,
    unregistered (but functional) counter. *)

val acc : t -> string -> Acc.t
(** The named accumulator; same contract as {!counter}. *)

val add : t -> string -> int -> unit
(** [add t name n] bumps the named counter; no-op when disabled. *)

val incr : t -> string -> unit

(** {2 Reading back} *)

val events : t -> event list
(** Chronological. *)

val counters : t -> (string * int) list
(** Registered counters with their current values, sorted by name. *)

val accs : t -> (string * float) list

val series : t -> string -> (float * float) list
(** [(ts, value)] pairs of the named gauge, chronological. *)

(** {2 Export} *)

val write_ndjson : t -> out_channel -> unit
val ndjson_string : t -> string
