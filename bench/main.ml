(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Tables I-II, Figures 4-8), plus the Section VII-D rule
   extraction, the DESIGN.md ablations, and real wall-clock Bechamel
   kernels on the tensor substrate.

     dune exec bench/main.exe                 # everything (short budgets)
     dune exec bench/main.exe -- fig5 --full  # one section, paper budgets

   Shapes of the reproduction: absolute numbers come from simulated
   frameworks on analytic platform profiles (see lib/frameworks and
   DESIGN.md); the comparative structure — who wins, by what ballpark
   factor — is the reproduction target. *)

module Ast = Dsl.Ast
module B = Suite.Benchmarks
module Fw = Frameworks.Framework
module Pf = Frameworks.Platform

(* Artifact-parity output: like the paper artifact's `out/` directory,
   `--out DIR` additionally writes fig*.csv data files and the
   synthesized programs. *)
let out_dir : string option ref = ref None

(* `--jobs N`: size of the domain pool the synthesis phase fans the
   benchmarks across (per-benchmark results are identical for any N). *)
let jobs = ref 1

(* `--report FILE`: write the synthesis phase as a stenso.suite-report/1
   JSON document (same schema as `stenso suite --report`), for archiving
   as a BENCH_*.json performance-trajectory point.  The `vm` section
   instead writes a stenso.exec-bench/1 document to the same path. *)
let report_file : string option ref = ref None

(* `--engine NAME`: execution engine behind the measured cost model of
   the synthesis phase (vm | interp). *)
let engine : Stenso.Exec.kind ref = ref `Vm

(* `--exec-domains N` / `--exec-tile N` / `--exec-no-fusion` /
   `--exec-no-reduction-fusion`: planner and VM knobs, applied both to
   the measured cost model's timing runs and to the `vm` section. *)
let exec_opts : Stenso.Exec.Options.t ref = ref Stenso.Exec.Options.default

let emit_file rel contents =
  match !out_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir rel in
      let parent = Filename.dirname path in
      if not (Sys.file_exists parent) then Sys.mkdir parent 0o755;
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc contents)

let emit_csv name header rows =
  emit_file (name ^ ".csv")
    (String.concat "\n" (String.concat "," header :: List.map (String.concat ",") rows)
    ^ "\n")

let section_line = String.make 78 '='
let subline = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" section_line title section_line

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp
        (List.fold_left (fun acc x -> acc +. Stdlib.log x) 0. xs
        /. float_of_int (List.length xs))

let bar width v vmax =
  let n =
    int_of_float (Float.round (float_of_int width *. v /. Float.max vmax 1e-9))
  in
  String.make (max 0 (min width n)) '#'

(* ------------------------------------------------------------------ *)
(* Synthesis results, computed once and shared by all sections         *)
(* ------------------------------------------------------------------ *)

type synthesis = {
  bench : B.t;
  outcome : Stenso.Superopt.outcome;
  opt_perf : Ast.t;  (** optimized program usable at perf shapes *)
}

let model =
  lazy (Cost.Model.measured ~engine:!engine ~exec_options:!exec_opts ())

let synthesize_all () =
  Printf.printf
    "Synthesizing all %d benchmarks (measured cost model, %d jobs)...\n%!"
    (List.length B.all) !jobs;
  let on_result (r : Suite.Driver.bench_result) =
    Printf.printf "  %-16s %5.1fs  %s\n%!" r.bench.name r.elapsed
      (if r.outcome.improved then Ast.to_string r.outcome.optimized
       else "(no cheaper variant)")
  in
  let ({ Suite.Driver.results; _ } as run_result) =
    Suite.Driver.run ~model:(Lazy.force model) ~jobs:!jobs
      ~trace:(Option.is_some !report_file) ~on_result B.all
  in
  (match !report_file with
  | Some path ->
      let doc = Suite.Driver.report run_result in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Stenso.Telemetry.Json.to_string doc);
          output_char oc '\n');
      Printf.printf "  wrote suite report to %s\n%!" path
  | None -> ());
  List.map
    (fun ({ Suite.Driver.bench = b; outcome; _ } : Suite.Driver.bench_result)
       ->
      let opt_perf =
        (* The synthesized program carries no shape attributes for our
           benchmarks, so it normally retypes directly at perf shapes. *)
        if Dsl.Types.well_typed b.perf_env outcome.optimized then
          outcome.optimized
        else b.perf_expected_opt
      in
      let rendered =
        String.concat ""
          (List.map
             (fun (name, (vt : Dsl.Types.vt)) ->
               Printf.sprintf "input %s : %s[%s]\n" name
                 (match vt.dtype with
                 | Dsl.Types.Float -> "f32"
                 | Dsl.Types.Bool -> "bool")
                 (String.concat ", "
                    (Array.to_list (Array.map string_of_int vt.shape))))
             b.env)
        ^ Format.asprintf "return %a\n" Ast.pp outcome.optimized
      in
      emit_file
        (Filename.concat "benchmarks_synthesized" (b.name ^ ".tdsl"))
        rendered;
      { bench = b; outcome; opt_perf })
    results

(* ------------------------------------------------------------------ *)
(* Tables I and II                                                     *)
(* ------------------------------------------------------------------ *)

let tables results =
  header "Table I: GitHub benchmarks";
  Printf.printf "%-16s %-24s %-26s %s\n" "Benchmark" "Domain" "Class"
    "Original implementation";
  Printf.printf "%s\n" subline;
  List.iter
    (fun { bench = b; _ } ->
      if b.source = `Github then
        Printf.printf "%-16s %-24s %-26s %s\n" b.name b.domain
          (B.klass_name b.klass)
          (Ast.to_string b.program))
    results;
  header "Table II: synthetic benchmarks";
  Printf.printf "%-16s %s\n" "Benchmark" "Original implementation";
  Printf.printf "%s\n" subline;
  List.iter
    (fun { bench = b; _ } ->
      if b.source = `Synthetic then
        Printf.printf "%-16s %s\n" b.name (Ast.to_string b.program))
    results;
  header "Synthesized programs";
  List.iter
    (fun { bench = b; outcome; _ } ->
      Printf.printf "%-16s %s\n" b.name
        (if outcome.improved then Ast.to_string outcome.optimized
         else "(kept original)"))
    results

(* ------------------------------------------------------------------ *)
(* Speedups under the framework simulators                             *)
(* ------------------------------------------------------------------ *)

let speedup_of fw pf (r : synthesis) =
  Fw.speedup fw pf r.bench.perf_env ~original:r.bench.perf_program
    ~optimized:r.opt_perf

let fig4 results =
  header
    "Figure 4: geometric-mean speedup of STENSO-optimized programs\n\
     (per framework x platform; paper: NumPy ~3.8x, JAX 1.5-1.9x, \
     PyTorch 1.2-1.6x)";
  Printf.printf "%-10s" "";
  List.iter (fun (p : Pf.t) -> Printf.printf "%16s" p.name) Pf.all;
  print_newline ();
  Printf.printf "%s\n" subline;
  let rows = ref [] in
  List.iter
    (fun (fw : Fw.t) ->
      Printf.printf "%-10s" fw.name;
      List.iter
        (fun (pf : Pf.t) ->
          let g = geomean (List.map (speedup_of fw pf) results) in
          rows := [ fw.name; pf.name; Printf.sprintf "%.4f" g ] :: !rows;
          Printf.printf "%15.2fx" g)
        Pf.all;
      print_newline ())
    Fw.all;
  emit_csv "fig4" [ "framework"; "platform"; "geomean_speedup" ]
    (List.rev !rows)

let fig7 results =
  header
    "Figure 7: geometric-mean speedup per transformation class (AMD platform)\n\
     (paper: Vectorization ~10.7x NumPy; Identity Replacement ~6.1x NumPy)";
  Printf.printf "%-26s" "Class";
  List.iter (fun (fw : Fw.t) -> Printf.printf "%12s" fw.name) Fw.all;
  print_newline ();
  Printf.printf "%s\n" subline;
  List.iter
    (fun klass ->
      let members =
        List.filter (fun r -> r.bench.B.klass = klass) results
      in
      Printf.printf "%-26s" (B.klass_name klass);
      List.iter
        (fun fw ->
          let g =
            geomean (List.map (speedup_of fw Pf.amd_7950x) members)
          in
          Printf.printf "%11.2fx" g)
        Fw.all;
      Printf.printf "   (%d benchmarks)\n" (List.length members))
    B.all_klasses

let fig8 results =
  header "Figure 8: per-benchmark speedups by class (AMD platform)";
  Printf.printf "%-26s %-16s %8s %8s %8s\n" "Class" "Benchmark" "NumPy"
    "JAX" "PyTorch";
  Printf.printf "%s\n" subline;
  let rows = ref [] in
  List.iter
    (fun klass ->
      List.iter
        (fun r ->
          if r.bench.B.klass = klass then begin
            let s fw = speedup_of fw Pf.amd_7950x r in
            rows :=
              [ B.klass_name klass; r.bench.name;
                Printf.sprintf "%.4f" (s Fw.numpy);
                Printf.sprintf "%.4f" (s Fw.jax);
                Printf.sprintf "%.4f" (s Fw.torch_inductor) ]
              :: !rows;
            Printf.printf "%-26s %-16s %7.2fx %7.2fx %7.2fx  %s\n"
              (B.klass_name klass) r.bench.name (s Fw.numpy) (s Fw.jax)
              (s Fw.torch_inductor)
              (bar 20 (Stdlib.log (Float.max 1. (s Fw.numpy)))
                 (Stdlib.log 25.))
          end)
        results)
    B.all_klasses;
  emit_csv "fig8"
    [ "class"; "benchmark"; "numpy"; "jax"; "pytorch" ]
    (List.rev !rows)

let fig6 results =
  header
    "Figure 6: number of benchmarks per transformation class\n\
     (paper: Algebraic Simplification 9, Strength Reduction 8)";
  Printf.printf "%-28s %6s %6s\n" "Class" "paper" "auto";
  Printf.printf "%s\n" subline;
  List.iter
    (fun klass ->
      let labelled =
        List.length (List.filter (fun r -> r.bench.B.klass = klass) results)
      in
      let auto =
        List.length
          (List.filter
             (fun r ->
               r.outcome.improved
               && Stenso.Classify.klass_name
                    (Stenso.Classify.classify ~original:r.bench.program
                       ~optimized:r.outcome.optimized)
                  = B.klass_name klass)
             results)
      in
      Printf.printf "%-28s %6d %6d  %s\n" (B.klass_name klass) labelled auto
        (bar 30 (float_of_int labelled) 9.))
    B.all_klasses;
  Printf.printf
    "('auto' = this repo's structural classifier on improved benchmarks)\n"

(* ------------------------------------------------------------------ *)
(* Figure 5: synthesis times                                           *)
(* ------------------------------------------------------------------ *)

let fig5 ~full () =
  let timeout = if full then 600. else 30. in
  let bu_budget = if full then 600_000 else 40_000 in
  header
    (Printf.sprintf
       "Figure 5: synthesis times (timeout %.0fs%s)\n\
        columns: simplification-only | simplification+B&B | bottom-up \
        baseline (TASO-style)"
       timeout
       (if full then "" else "; pass --full for the paper's 600 s"));
  Printf.printf "%-16s %12s %12s %16s\n" "Benchmark" "simp-only" "simp+bnb"
    "bottom-up";
  Printf.printf "%s\n" subline;
  let fmt_time t timed_out =
    if timed_out then "timeout" else Printf.sprintf "%.2fs" t
  in
  let totals = ref (0., 0., 0) in
  List.iter
    (fun (b : B.t) ->
      let model = Lazy.force model in
      let run use_bnb =
        let config =
          { Stenso.Search.default_config with use_bnb; timeout }
        in
        let spec = Dsl.Sexec.exec_env b.env b.program in
        let bound = Cost.Model.program_cost model b.env b.program in
        Stenso.Search.run ~config ~model ~env:b.env ~spec
          ~initial_bound:bound
          ~consts:(Stenso.Superopt.consts_of b.program)
          ()
      in
      let simp_only = run false in
      let with_bnb = run true in
      let bu =
        Stenso.Bottom_up.run ~max_depth:3 ~max_programs:bu_budget ~timeout
          ~model ~env:b.env b.program
      in
      let st, bt, gave = !totals in
      totals :=
        ( st +. simp_only.stats.elapsed,
          bt +. with_bnb.stats.elapsed,
          gave + if bu.gave_up then 1 else 0 );
      Printf.printf "%-16s %12s %12s %16s\n" b.name
        (fmt_time simp_only.stats.elapsed simp_only.stats.timed_out)
        (fmt_time with_bnb.stats.elapsed with_bnb.stats.timed_out)
        (match (bu.program, bu.gave_up) with
        | Some _, true ->
            Printf.sprintf "partial (%dk)" (bu.enumerated / 1000)
        | Some _, false ->
            Printf.sprintf "%.2fs (%dk)" bu.elapsed (bu.enumerated / 1000)
        | None, _ -> Printf.sprintf "gave up (%dk)" (bu.enumerated / 1000)))
    B.all;
  let st, bt, gave = !totals in
  Printf.printf "%s\n" subline;
  Printf.printf "%-16s %11.1fs %11.1fs %13d/33 gave up\n" "total" st bt gave

(* ------------------------------------------------------------------ *)
(* Section VII-D: rewrite rules                                        *)
(* ------------------------------------------------------------------ *)

let rules results =
  header "Section VII-D: rewrite rules generalized from discoveries";
  List.iter
    (fun { bench = b; outcome; _ } ->
      if outcome.improved then
        let rule = Stenso.Rules.generalize b.program outcome.optimized in
        Printf.printf "%-16s %s\n" b.name (Stenso.Rules.to_string rule))
    results

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5)                                     *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablations: sketch depth, cost model, simplification pruning";
  let sample =
    [ "diag_dot"; "vec_lerp"; "common_factor"; "sum_stack"; "synth_2" ]
  in
  let model = Lazy.force model in
  let run b config =
    let t0 = Unix.gettimeofday () in
    let o = Stenso.Superopt.superoptimize ~config ~model ~env:b.B.env b.B.program in
    (o, Unix.gettimeofday () -. t0)
  in
  Printf.printf "%-16s %-22s %9s %8s %8s\n" "Benchmark" "configuration"
    "improved" "nodes" "time";
  Printf.printf "%s\n" subline;
  List.iter
    (fun name ->
      let b = B.find name in
      let base = Stenso.Search.default_config in
      let variants =
        [
          ("default (d=2, simp+bnb)", base);
          ( "depth d=1",
            { base with stub_config = { base.stub_config with depth = 1 } } );
          ("no simplification prune", { base with use_simplification = false;
                                        timeout = 20. });
          ("flops cost model", base);
        ]
      in
      List.iter
        (fun (label, config) ->
          let o, dt =
            if label = "flops cost model" then
              let t0 = Unix.gettimeofday () in
              let o =
                Stenso.Superopt.superoptimize ~config ~model:Cost.Model.flops
                  ~env:b.env b.program
              in
              (o, Unix.gettimeofday () -. t0)
            else run b config
          in
          Printf.printf "%-16s %-22s %9b %8d %7.2fs\n" b.name label
            o.improved o.search.stats.nodes dt)
        variants;
      Printf.printf "%s\n" subline)
    sample

(* ------------------------------------------------------------------ *)
(* Equality saturation with mined rules (Section VIII comparison)      *)
(* ------------------------------------------------------------------ *)

let egraph results =
  header
    "Equality saturation with STENSO-mined rules (TENSAT-style engine)\n\
     rules are mined from the GitHub half only, then applied everywhere:\n\
     synthetic benchmarks improve only where a mined rule transfers —\n\
     the rule-set limitation the paper argues (Section VIII)";
  (* Mine one rule per improved loop-free GitHub benchmark. *)
  let mined =
    List.filter_map
      (fun { bench = b; outcome; _ } ->
        if outcome.improved && b.source = `Github then
          match Stenso.Rules.generalize b.program outcome.optimized with
          | rule -> Some rule
          | exception _ -> None
        else None)
      results
  in
  Printf.printf "mined %d rules from the GitHub benchmarks\n\n"
    (List.length mined);
  Printf.printf "%-16s %8s %10s %10s %12s %12s\n" "Benchmark" "source"
    "apps" "nodes" "egraph-gain" "stenso-gain";
  Printf.printf "%s\n" subline;
  (* The deterministic roofline estimator prices layout operations too,
     keeping the gains finite for transpose-only programs. *)
  (* Work at performance shapes so data movement and contractions, not
     dispatch overhead, decide extraction. *)
  let model = Cost.Model.roofline () in
  List.iter
    (fun { bench = b; opt_perf; _ } ->
      let src = match b.source with `Github -> "github" | `Synthetic -> "synth" in
      match Stenso.Egraph.create b.perf_env with
      | g -> (
          match Stenso.Egraph.add g b.perf_program with
          | exception Stenso.Egraph.Unsupported _ ->
              Printf.printf "%-16s %8s %10s\n" b.name src "(loops)"
          | cls ->
              let st = Stenso.Egraph.saturate ~rules:mined g in
              let best = Stenso.Egraph.extract g ~model cls in
              let cost p = Cost.Model.program_cost model b.perf_env p in
              let orig_c = cost b.perf_program in
              let fmt g =
                if Float.is_finite g then Printf.sprintf "%.2fx" g
                else ">100x" (* the optimum is a bare input: zero ops *)
              in
              Printf.printf "%-16s %8s %10d %10d %12s %12s\n" b.name src
                st.applications st.nodes
                (fmt (orig_c /. cost best))
                (fmt (orig_c /. cost opt_perf)))
      | exception _ -> ())
    results

(* ------------------------------------------------------------------ *)
(* Extension suite: masking benchmarks                                 *)
(* ------------------------------------------------------------------ *)

let masking () =
  header
    "Extension suite: masking benchmarks (where/less/triu/tril)\n\
     — beyond the paper's tables; exercises the density term of the\n\
     simplification metric";
  let config =
    {
      Stenso.Search.default_config with
      stub_config =
        { Stenso.Search.default_config.stub_config with extended_ops = true };
    }
  in
  Printf.printf "%-16s %-34s %8s\n" "Benchmark" "synthesized" "NumPy";
  Printf.printf "%s\n" subline;
  List.iter
    (fun (b : B.t) ->
      let o =
        Stenso.Superopt.superoptimize ~config ~model:(Lazy.force model)
          ~env:b.env b.program
      in
      let opt_perf =
        if o.improved && Dsl.Types.well_typed b.perf_env o.optimized then
          o.optimized
        else b.perf_expected_opt
      in
      let s =
        Fw.speedup Fw.numpy Pf.amd_7950x b.perf_env
          ~original:b.perf_program ~optimized:opt_perf
      in
      Printf.printf "%-16s %-34s %7.2fx\n" b.name
        (if o.improved then Ast.to_string o.optimized else "(unimproved)")
        s)
    B.masking

(* ------------------------------------------------------------------ *)
(* Scalability: synthesis effort vs expression size (Section VII-E)    *)
(* ------------------------------------------------------------------ *)

let scaling () =
  header
    "Scalability: synthesis effort vs input expression size\n\
     (randomly generated programs; Section VII-E discusses this trade-off)";
  Printf.printf "%-6s %10s %10s %10s %12s\n" "ops" "time" "nodes"
    "library" "improved";
  Printf.printf "%s\n" subline;
  let model = Lazy.force model in
  List.iter
    (fun size ->
      let programs =
        Suite.Generator.generate_many
          { Suite.Generator.default with size; seed = 42 }
          5
      in
      let times = ref 0. and nodes = ref 0 and libs = ref 0 and impr = ref 0 in
      List.iter
        (fun (env, prog) ->
          let t0 = Unix.gettimeofday () in
          let o = Stenso.Superopt.superoptimize ~model ~env prog in
          times := !times +. (Unix.gettimeofday () -. t0);
          nodes := !nodes + o.search.stats.nodes;
          libs := !libs + o.search.stats.library_size;
          if o.improved then incr impr)
        programs;
      let n = List.length programs in
      Printf.printf "%-6d %9.2fs %10d %10d %9d/%d\n" size
        (!times /. float_of_int n)
        (!nodes / n) (!libs / n) !impr n)
    [ 2; 4; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* Execution engines: interpreter vs compiled VM                       *)
(* ------------------------------------------------------------------ *)

(* Minimum of per-batch means with doubling batches — the same robust
   statistic the measured cost model uses. *)
let time_min ~budget f =
  f ();
  let best = ref infinity in
  let total = ref 0. and reps = ref 1 in
  while !total < budget do
    let batch = !reps in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let per = dt /. float_of_int batch in
    if per < !best then best := per;
    total := !total +. dt;
    reps := !reps * 2
  done;
  !best

(* Third field: the program is reduction-rooted with an elementwise
   producer the planner is expected to inline ([ops_fused] > 0) — the CI
   smoke gate checks exactly these entries.  [normalize] and [max_rows]
   reduce a bare input, so there is nothing to fuse. *)
let exec_micro =
  [
    ( "saxpy",
      "input A : f32[256,256]\ninput B : f32[256,256]\n\
       return A * 1.5 + B",
      false );
    ( "lerp",
      "input A : f32[256,256]\ninput B : f32[256,256]\n\
       return A + (B - A) * 0.25",
      false );
    ( "dist",
      "input A : f32[256,256]\ninput B : f32[256,256]\n\
       return np.sqrt(A * A + B * B)",
      false );
    ( "clamp_mask",
      "input A : f32[256,256]\ninput B : f32[256,256]\n\
       return np.where(np.less(A, B), A, B)",
      false );
    ( "poly3",
      "input A : f32[256,256]\n\
       return A * A * A + A * A * 2.0 + A * 0.5 + 1.0",
      false );
    ( "row_scale",
      "input A : f32[256,256]\ninput S : f32[256]\nreturn A * S + A", false );
    ( "sum_prod",
      "input A : f32[256,256]\ninput B : f32[256,256]\n\
       return np.sum(A * B, 0)",
      true );
    ( "sum_all",
      "input A : f32[256,256]\ninput B : f32[256,256]\n\
       return np.sum(A + B)",
      true );
    ( "sum_sq", "input A : f32[256,256]\nreturn np.sum(A * A)", true );
    ( "normalize", "input A : f32[256,256]\nreturn A / np.sum(A)", false );
    ( "max_rows", "input A : f32[256,256]\nreturn np.max(A, 1)", false );
    ( "max_fused",
      "input A : f32[256,256]\ninput B : f32[256,256]\n\
       return np.max(A - B, 1)",
      true );
    ( "matmul",
      "input A : f32[256,256]\ninput B : f32[256,256]\n\
       return np.dot(A, B)",
      false );
    ( "transpose", "input A : f32[512,512]\nreturn A.T", false );
  ]

(* The interp-vs-VM measurement over typed entries, shared by the [vm]
   and [mlsuite] sections.  Prints one table row per entry as it is
   measured; [exec_footer] closes the table and returns the geomean. *)
let exec_table_header () =
  Printf.printf "%-14s %12s %12s %9s  %s\n" "Benchmark" "interp" "vm"
    "speedup" "plan (steps, fused, strips, reused, arena)";
  Printf.printf "%s\n" subline

let exec_measure ~budget ~options entries =
  List.map
    (fun (name, env, prog, expects_fused) ->
      ignore (Dsl.Types.infer env prog);
      let st = Random.State.make [| 0xe4ec |] in
      let inputs = Dsl.Interp.random_inputs st env in
      let lookup n = List.assoc n inputs in
      let compiled = Stenso.Exec.compile ~options ~env prog in
      let ti =
        time_min ~budget (fun () -> ignore (Dsl.Interp.eval_alist inputs prog))
      in
      let tv =
        time_min ~budget (fun () -> ignore (Stenso.Exec.run compiled lookup))
      in
      let s = Stenso.Exec.stats compiled in
      let speedup = ti /. tv in
      Printf.printf
        "%-14s %10.1fus %10.1fus %8.2fx  (%d, %d, %d, %d, %dB)\n" name
        (ti *. 1e6) (tv *. 1e6) speedup s.steps s.ops_fused s.parallel_strips
        s.buffers_reused s.arena_bytes;
      if expects_fused && s.ops_fused = 0 then
        Printf.printf
          "  WARNING: %s is reduction-rooted but nothing was fused\n" name;
      (name, ti, tv, speedup, s, expects_fused))
    entries

let exec_footer rows =
  let g = geomean (List.map (fun (_, _, _, s, _, _) -> s) rows) in
  Printf.printf "%s\n" subline;
  Printf.printf "%-14s %34.2fx geomean\n" "" g;
  g

let exec_csv name rows =
  emit_csv name
    [ "benchmark"; "interp_seconds"; "vm_seconds"; "speedup" ]
    (List.map
       (fun (name, ti, tv, s, _, _) ->
         [ name; Printf.sprintf "%.9g" ti; Printf.sprintf "%.9g" tv;
           Printf.sprintf "%.4f" s ])
       rows)

let exec_doc ~options ~geomean:g rows =
  let module J = Stenso.Telemetry.Json in
  J.Obj
    [
      ("schema", J.Str Suite.Driver.exec_bench_schema_version);
      ("version", J.Str Stenso.Version.current);
      ("options", J.Str (Stenso.Exec.Options.fingerprint options));
      ("n_benchmarks", J.Int (List.length rows));
      ("geomean_speedup", J.Float g);
      ( "results",
        J.List
          (List.map
             (fun (name, ti, tv, s, (st : Stenso.Exec.stats), expects_fused) ->
               J.Obj
                 [
                   ("name", J.Str name);
                   ("interp_seconds", J.Float ti);
                   ("vm_seconds", J.Float tv);
                   ("speedup", J.Float s);
                   ("steps", J.Int st.steps);
                   ("ops_fused", J.Int st.ops_fused);
                   ("parallel_strips", J.Int st.parallel_strips);
                   ("buffers_reused", J.Int st.buffers_reused);
                   ("arena_bytes", J.Int st.arena_bytes);
                   ("expects_fused_reduction", J.Bool expects_fused);
                 ])
             rows) );
    ]

let write_report ~label doc =
  match !report_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Stenso.Telemetry.Json.to_string doc);
          output_char oc '\n');
      Printf.printf "  wrote %s report to %s\n%!" label path

let exec_bench ~full () =
  header
    "Execution engines: tree-walking interpreter vs compiled VM\n\
     elementwise/reduction/contraction microbenchmarks; per-iteration\n\
     wall-clock, minimum of doubling batches";
  let budget = if full then 0.5 else 0.1 in
  let options = !exec_opts in
  Printf.printf "exec options: %s\n\n" (Stenso.Exec.Options.fingerprint options);
  exec_table_header ();
  let entries =
    List.map
      (fun (name, source, expects_fused) ->
        let env, prog = Dsl.Parser.program source in
        (name, env, prog, expects_fused))
      exec_micro
  in
  let rows = exec_measure ~budget ~options entries in
  let g = exec_footer rows in
  exec_csv "exec_vm" rows;
  write_report ~label:"exec-bench" (exec_doc ~options ~geomean:g rows)

(* ------------------------------------------------------------------ *)
(* ML-kernel workload tier: exec point + tiered-serving point          *)
(* ------------------------------------------------------------------ *)

let mlsuite ~full () =
  header
    "ML-kernel workload tier (softmax / layernorm / attention)\n\
     exec point: interp vs VM at performance shapes; tiers point:\n\
     mined depth-2 rules vs full search at synthesis shapes";
  let budget = if full then 0.5 else 0.1 in
  let options = !exec_opts in
  Printf.printf "exec options: %s\n\n" (Stenso.Exec.Options.fingerprint options);
  exec_table_header ();
  let entries =
    List.map
      (fun (b : B.t) ->
        (* attn_mix's elementwise producer feeds a contraction, not a
           reduction loop — the planner has nothing to inline there. *)
        (b.name, b.perf_env, b.perf_program, b.name <> "attn_mix"))
      B.ml
  in
  let rows = exec_measure ~budget ~options entries in
  let g = exec_footer rows in
  exec_csv "mlsuite_exec" rows;
  let exec = exec_doc ~options ~geomean:g rows in
  (* Tiered-serving point: mine the tier's environments at depth 2 into
     a scratch store, then run the same benchmarks three ways —
     baseline (full search, no store), cold (mined rules, empty outcome
     store), warm (the same requests again, now also hitting the
     outcome store). *)
  let config =
    Stenso.Config.default
    |> Stenso.Config.with_estimator `Flops
    |> Stenso.Config.with_timeout (if full then 30. else 10.)
    |> Stenso.Config.with_exec_options options
    |> Stenso.Config.with_rules_depth 2
  in
  let model = Stenso.Config.model config in
  let store_dir = Filename.temp_file "stenso-mlsuite" ".store" in
  Sys.remove store_dir;
  let store =
    Stenso.Store.open_store ~tel:Stenso.Telemetry.null ~dir:store_dir ()
  in
  Printf.printf "\nmining depth-2 rules over %d benchmark environments...\n%!"
    (List.length B.ml);
  let stats =
    Stenso.Mine.mine ~jobs:!jobs ~depth:2 ~model ~store
      (List.map (fun (b : B.t) -> (b.name, b.env)) B.ml)
  in
  List.iter
    (fun (s : Stenso.Mine.env_stats) ->
      Printf.printf "  %-16s %4d rules, %6d optima%s %6.1fs\n%!" s.label
        s.rules s.optima
        (if s.truncated then " (truncated)" else "")
        s.elapsed)
    stats;
  let pass name cfg store =
    Printf.printf "%s pass...\n%!" name;
    Suite.Driver.run ~config:cfg ~model ?store ~jobs:!jobs B.ml
  in
  let baseline =
    pass "baseline (full search)" (Stenso.Config.with_rules_depth 0 config)
      None
  in
  let cold = pass "tiered, cold" config (Some store) in
  let warm = pass "tiered, warm" config (Some store) in
  let tiers = Suite.Driver.tiers_report ~config ~baseline ~cold ~warm () in
  let doc = Suite.Driver.mlsuite_report ~exec ~tiers () in
  (match Suite.Driver.validate_mlsuite ~min_speedup:1.0 doc with
  | Ok () -> Printf.printf "mlsuite report valid (every kernel >= 1.0x)\n"
  | Error msg ->
      Printf.printf "  WARNING: mlsuite report failed validation: %s\n" msg);
  write_report ~label:"mlsuite" doc

(* ------------------------------------------------------------------ *)
(* Lifting front-end: success rate, lift time, end-to-end speedup      *)
(* ------------------------------------------------------------------ *)

let lift_bench ~full () =
  header
    "Lifting front-end: scalar loop nests -> certified DSL -> superoptimized\n\
     success rate and lift/verify time at synthesis shapes; end-to-end\n\
     speedup of the VM on the optimized lift vs the scalar loop\n\
     interpreter at performance shapes";
  let budget = if full then 0.5 else 0.1 in
  let options = !exec_opts in
  let config =
    Stenso.Config.default
    |> Stenso.Config.with_estimator `Flops
    |> Stenso.Config.with_exec_options options
  in
  let stub_cache = Stenso.Stub.Cache.create () in
  Printf.printf "%-16s %-6s %8s %10s %8s %8s %9s\n%s\n" "kernel" "lifted"
    "sketches" "pruned" "library" "lift s" "speedup" subline;
  let t0 = Unix.gettimeofday () in
  let entries =
    List.map
      (fun (k : Suite.Lifted.t) ->
        let kernel = Stenso.Lift.Loop_parser.kernel k.source in
        match Stenso.Lift.optimize ~config ~stub_cache kernel with
        | Error e ->
            Printf.printf "%-16s %-6s %s\n%!" k.name "NO"
              (Stenso.Lift.error_message e);
            let s =
              match e with
              | Stenso.Lift.Not_lifted s -> s
              | Stenso.Lift.Unsupported _ ->
                  {
                    Stenso.Lift.sketches = 0;
                    pruned_by_value = 0;
                    certified = 0;
                    library_size = 0;
                    lift_s = 0.;
                    verify_s = 0.;
                  }
            in
            {
              Suite.Driver.lift_name = k.name;
              lifted = false;
              lifted_program = "";
              optimized_program = "";
              lift_improved = false;
              sketches = s.sketches;
              pruned_by_value = s.pruned_by_value;
              certified = s.certified;
              library_size = s.library_size;
              lift_s = s.lift_s;
              lift_verify_s = s.verify_s;
              lift_speedup = None;
            }
        | Ok (l, outcome) ->
            (* End-to-end point at performance shapes: the scalar loop
               interpreter running the kernel vs the VM running the
               tier's optimized form (the lift's program with the
               shape attributes rescaled), checked against each other
               on the measured inputs before timing. *)
            let b = B.find k.name in
            let perf_kernel = Stenso.Lift.Loop_parser.kernel k.perf_source in
            let st = Random.State.make [| 0x5eed |] in
            let inputs = Dsl.Interp.random_inputs st b.perf_env in
            let lookup n = List.assoc n inputs in
            let expected =
              Stenso.Lift.Loop_interp.run_tensors perf_kernel inputs
            in
            let compiled =
              Stenso.Exec.compile ~options ~env:b.perf_env b.perf_expected_opt
            in
            let got = Stenso.Exec.run compiled lookup in
            if
              not
                (Tensor.Ftensor.shape got = Tensor.Ftensor.shape expected
                && Tensor.Ftensor.allclose ~rtol:1e-6 ~atol:1e-9 got expected)
            then
              Printf.printf
                "  WARNING: %s: VM disagrees with the loop interpreter at \
                 performance shapes\n\
                 %!"
                k.name;
            let loop_s =
              time_min ~budget (fun () ->
                  ignore
                    (Stenso.Lift.Loop_interp.run_tensors perf_kernel inputs))
            in
            let vm_s =
              time_min ~budget (fun () -> ignore (Stenso.Exec.run compiled lookup))
            in
            let speedup = if vm_s > 0. then loop_s /. vm_s else 1. in
            Printf.printf "%-16s %-6s %8d %10d %8d %8.2f %8.1fx\n%!" k.name
              "yes" l.stats.sketches l.stats.pruned_by_value
              l.stats.library_size l.stats.lift_s speedup;
            {
              Suite.Driver.lift_name = k.name;
              lifted = true;
              lifted_program = Ast.to_string l.Stenso.Lift.prog;
              optimized_program =
                Ast.to_string outcome.Stenso.Superopt.optimized;
              lift_improved = outcome.Stenso.Superopt.improved;
              sketches = l.stats.sketches;
              pruned_by_value = l.stats.pruned_by_value;
              certified = l.stats.certified;
              library_size = l.stats.library_size;
              lift_s = l.stats.lift_s;
              lift_verify_s = l.stats.verify_s;
              lift_speedup = Some speedup;
            })
      Suite.Lifted.all
  in
  let n = List.length entries in
  let n_lifted =
    List.length (List.filter (fun e -> e.Suite.Driver.lifted) entries)
  in
  Printf.printf "%s\n%d/%d kernels lifted and certified\n" subline n_lifted n;
  emit_csv "lift"
    [ "name"; "lifted"; "sketches"; "pruned_by_value"; "library"; "lift_s";
      "verify_s"; "speedup" ]
    (List.map
       (fun (e : Suite.Driver.lift_entry) ->
         [
           e.lift_name;
           (if e.lifted then "1" else "0");
           string_of_int e.sketches;
           string_of_int e.pruned_by_value;
           string_of_int e.library_size;
           Printf.sprintf "%.4f" e.lift_s;
           Printf.sprintf "%.4f" e.lift_verify_s;
           (match e.lift_speedup with
           | Some s -> Printf.sprintf "%.2f" s
           | None -> "");
         ])
       entries);
  let doc =
    Suite.Driver.lift_report ~config
      ~elapsed:(Unix.gettimeofday () -. t0)
      entries
  in
  (match Suite.Driver.validate_lift_report ~min_success:(7. /. 8.) doc with
  | Ok () -> Printf.printf "lift report valid (>= 7/8 kernels lifted)\n"
  | Error msg ->
      Printf.printf "  WARNING: lift report failed validation: %s\n" msg);
  write_report ~label:"lift" doc

(* ------------------------------------------------------------------ *)
(* Bechamel: real wall-clock on the tensor substrate                   *)
(* ------------------------------------------------------------------ *)

let bechamel results =
  header
    "Bechamel: wall-clock of original vs optimized kernels on this\n\
     machine's eager interpreter (one grouped Test.make per benchmark)";
  let open Bechamel in
  let open Toolkit in
  let selected =
    [ "diag_dot"; "mat_vec_prod"; "vec_lerp"; "power_neg"; "sum_stack";
      "trace_dot"; "synth_12" ]
  in
  let tests =
    List.filter_map
      (fun name ->
        match List.find_opt (fun r -> r.bench.B.name = name) results with
        | None -> None
        | Some r ->
            let st = Random.State.make [| 0xbeca |] in
            let inputs = Dsl.Interp.random_inputs st r.bench.perf_env in
            let run prog () = ignore (Dsl.Interp.eval_alist inputs prog) in
            Some
              (Test.make_grouped ~name
                 [
                   Test.make ~name:"original"
                     (Staged.stage (run r.bench.perf_program));
                   Test.make ~name:"stenso"
                     (Staged.stage (run r.opt_perf));
                 ]))
      selected
  in
  let test = Test.make_grouped ~name:"stenso" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  let results_tbl = Analyze.all ols Instance.monotonic_clock raw in
  (* Pair "<g>/original" with "<g>/stenso" rows. *)
  let time_of name =
    match Hashtbl.fold
            (fun k v acc -> if k = name then Some v else acc)
            results_tbl None
    with
    | Some est -> (
        match Analyze.OLS.estimates est with
        | Some [ t ] -> Some t
        | Some _ | None -> None)
    | None -> None
  in
  Printf.printf "%-16s %14s %14s %10s\n" "Benchmark" "original" "stenso"
    "speedup";
  Printf.printf "%s\n" subline;
  List.iter
    (fun name ->
      let o = time_of (Printf.sprintf "stenso/%s/original" name) in
      let s = time_of (Printf.sprintf "stenso/%s/stenso" name) in
      match (o, s) with
      | Some o, Some s ->
          Printf.printf "%-16s %12.1fus %12.1fus %9.2fx\n" name (o /. 1e3)
            (s /. 1e3) (o /. s)
      | _ -> Printf.printf "%-16s (no estimate)\n" name)
    selected

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let rec strip_out acc = function
    | "--out" :: dir :: rest ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        out_dir := Some dir;
        strip_out acc rest
    | "--jobs" :: n :: rest ->
        jobs := max 1 (int_of_string n);
        strip_out acc rest
    | "--report" :: path :: rest ->
        report_file := Some path;
        strip_out acc rest
    | "--engine" :: name :: rest ->
        (match Stenso.Exec.kind_of_string name with
        | Some k -> engine := k
        | None -> failwith ("unknown engine " ^ name));
        strip_out acc rest
    | "--exec-domains" :: n :: rest ->
        exec_opts :=
          Stenso.Exec.Options.with_domains (int_of_string n) !exec_opts;
        strip_out acc rest
    | "--exec-tile" :: n :: rest ->
        exec_opts := Stenso.Exec.Options.with_tile (int_of_string n) !exec_opts;
        strip_out acc rest
    | "--exec-no-fusion" :: rest ->
        exec_opts := Stenso.Exec.Options.with_fusion false !exec_opts;
        strip_out acc rest
    | "--exec-no-reduction-fusion" :: rest ->
        exec_opts :=
          Stenso.Exec.Options.with_reduction_fusion false !exec_opts;
        strip_out acc rest
    | a :: rest -> strip_out (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_out [] args in
  let sections = List.filter (fun a -> a <> "--full") args in
  let want s = sections = [] || List.mem s sections in
  let results =
    if
      List.exists want
        [ "tables"; "fig4"; "fig6"; "fig7"; "fig8"; "rules"; "egraph";
          "bechamel" ]
    then Some (synthesize_all ())
    else None
  in
  let need = Option.get in
  if want "tables" then tables (need results);
  if want "fig4" then fig4 (need results);
  if want "fig5" then fig5 ~full ();
  if want "fig6" then fig6 (need results);
  if want "fig7" then fig7 (need results);
  if want "fig8" then fig8 (need results);
  if want "rules" then rules (need results);
  if want "egraph" then egraph (need results);
  if want "ablation" then ablations ();
  if want "vm" then exec_bench ~full ();
  if want "mlsuite" then mlsuite ~full ();
  if want "lift" then lift_bench ~full ();
  if want "masking" then masking ();
  if want "scaling" then scaling ();
  if want "bechamel" then bechamel (need results)
