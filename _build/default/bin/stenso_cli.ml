(* Command-line entry point, mirroring the artifact's `stenso/main.py`:

     stenso --program original.tdsl --synth-out optimized.tdsl \
            --cost-estimator measured

   The program file declares typed inputs and returns one expression;
   see `examples/` and the README for the surface syntax. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let render_program env prog =
  (* Emit the same surface syntax the parser accepts, so outputs can be
     fed back in. *)
  let render_vt (vt : Dsl.Types.vt) =
    Printf.sprintf "%s[%s]"
      (match vt.dtype with Dsl.Types.Float -> "f32" | Dsl.Types.Bool -> "bool")
      (String.concat ", "
         (Array.to_list (Array.map string_of_int vt.shape)))
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, vt) ->
      Buffer.add_string buf
        (Printf.sprintf "input %s : %s\n" name (render_vt vt)))
    env;
  Buffer.add_string buf (Format.asprintf "return %a\n" Dsl.Ast.pp prog);
  Buffer.contents buf

let run program_path synth_out estimator timeout no_bnb no_simplification
    extended_ops cost_cache verbose =
  let source =
    match program_path with
    | Some p -> read_file p
    | None -> failwith "--program is required"
  in
  let env, prog = Dsl.Parser.program source in
  ignore (Dsl.Types.infer env prog);
  let model =
    match estimator with
    | "flops" -> Cost.Model.flops
    | "roofline" -> Cost.Model.roofline ()
    | "measured" -> Cost.Model.measured ?cache_file:cost_cache ()
    | other -> failwith ("unknown cost estimator " ^ other)
  in
  let config =
    {
      Stenso.Search.default_config with
      timeout;
      use_bnb = not no_bnb;
      use_simplification = not no_simplification;
      stub_config =
        {
          Stenso.Search.default_config.stub_config with
          extended_ops;
        };
    }
  in
  let outcome = Stenso.Superopt.superoptimize ~config ~model ~env prog in
  if verbose then begin
    let s = outcome.search.stats in
    Format.printf
      "# search: %d nodes, %d decompositions, %d simp-pruned, %d bnb-pruned,@\n\
       # %.2fs, library of %d stubs%s@\n"
      s.nodes s.decomps s.pruned_simp s.pruned_bnb s.elapsed s.library_size
      (if s.timed_out then " (timed out)" else "")
  end;
  Format.printf "# original  (cost %.6g): %a@\n" outcome.original_cost
    Dsl.Ast.pp outcome.original;
  if outcome.improved then
    Format.printf "# optimized (cost %.6g): %a@\n" outcome.optimized_cost
      Dsl.Ast.pp outcome.optimized
  else Format.printf "# no cheaper equivalent found; keeping the original@\n";
  (match synth_out with
  | Some path ->
      write_file path (render_program env outcome.optimized);
      Format.printf "# written to %s@\n" path
  | None ->
      Format.printf "%s" (render_program env outcome.optimized));
  if outcome.improved && not outcome.verified then exit 2

open Cmdliner

let program_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "program" ] ~docv:"FILE" ~doc:"Source program to superoptimize.")

let synth_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "synth_out"; "synth-out" ] ~docv:"FILE"
        ~doc:"Output file for the synthesized program (stdout if omitted).")

let estimator_arg =
  Arg.(
    value & opt string "measured"
    & info
        [ "cost_estimator"; "cost-estimator" ]
        ~docv:"NAME"
        ~doc:"Cost estimator: $(b,flops), $(b,roofline), or $(b,measured).")

let timeout_arg =
  Arg.(
    value & opt float 600.
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Synthesis time budget.")

let no_bnb_arg =
  Arg.(
    value & flag
    & info [ "no-bnb" ]
        ~doc:"Disable branch-and-bound pruning (simplification only).")

let no_simp_arg =
  Arg.(
    value & flag
    & info [ "no-simplification" ]
        ~doc:"Disable the simplification objective (not recommended).")

let extended_ops_arg =
  Arg.(
    value & flag
    & info [ "extended-ops" ]
        ~doc:
          "Include the masking operations (triu/tril/less/where) in the \
           synthesis grammar.")

let cost_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cost-cache" ] ~docv:"FILE"
        ~doc:
          "Persist the measured cost model's profiling table, amortizing \
           the offline phase across runs.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print search statistics.")

let cmd =
  let doc = "STENSO: tensor-program superoptimization by symbolic synthesis" in
  Cmd.v
    (Cmd.info "stenso" ~doc)
    Term.(
      const run $ program_arg $ synth_out_arg $ estimator_arg $ timeout_arg
      $ no_bnb_arg $ no_simp_arg $ extended_ops_arg $ cost_cache_arg
      $ verbose_arg)

let () = exit (Cmd.eval cmd)
