examples/rule_mining.ml: Cost Dsl Format List Stenso
