examples/astro_pipeline.mli:
