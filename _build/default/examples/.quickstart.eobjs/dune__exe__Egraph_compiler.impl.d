examples/egraph_compiler.ml: Cost Dsl Egraph Format List Rules Stenso Superopt
