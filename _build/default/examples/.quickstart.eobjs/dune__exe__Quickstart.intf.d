examples/quickstart.mli:
