examples/astro_pipeline.ml: Cost Dsl Format Frameworks List Random Stenso Tensor Unix
