examples/quickstart.ml: Cost Dsl Format Stenso
