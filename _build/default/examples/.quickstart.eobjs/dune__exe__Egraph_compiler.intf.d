examples/egraph_compiler.mli:
