(* Framework simulators: rewrite rules and the roofline timing model. *)
open Dsl
module Fw = Frameworks.Framework
module Rw = Frameworks.Rewrite
module Pf = Frameworks.Platform

let ast = Alcotest.testable Ast.pp Ast.equal
let p = Parser.expression

let test_rules () =
  let fix rules src = Rw.rewrite_fixpoint rules (p src) in
  Alcotest.check ast "double transpose" (p "A")
    (fix [ Rw.double_transpose ] "np.transpose(np.transpose(A))");
  Alcotest.check ast "nested double transpose" (p "A + B")
    (fix [ Rw.double_transpose ] "np.transpose(np.transpose(A + B))");
  Alcotest.check ast "exp log" (p "A + B")
    (fix [ Rw.exp_log ] "np.exp(np.log(A + B))");
  Alcotest.check ast "mul one" (p "A") (fix [ Rw.mul_one ] "A * 1");
  Alcotest.check ast "pow two" (p "np.multiply(A, A)")
    (fix [ Rw.pow_two_to_mul ] "np.power(A, 2)");
  Alcotest.check ast "pow neg one" (p "np.divide(1, A)")
    (fix [ Rw.pow_neg_one_to_div ] "np.power(A, -1)");
  Alcotest.check ast "constant folding" (p "np.multiply(6, A)")
    (fix [ Rw.constant_folding ] "np.multiply(np.multiply(2, 3), A)");
  Alcotest.check ast "rules compose to fixpoint" (p "A")
    (fix [ Rw.double_transpose; Rw.mul_one ]
       "np.transpose(np.transpose(A * 1)) * 1");
  (* rules never fire where they should not *)
  Alcotest.check ast "transpose alone untouched" (p "np.transpose(A)")
    (fix Rw.xla_rules "np.transpose(A)")

let env =
  [ ("A", Types.float_t [| 64; 64 |]); ("B", Types.float_t [| 64; 64 |]);
    ("x", Types.float_t [| 64 |]) ]

let time fw src = Fw.estimate_time fw Pf.amd_7950x env (p src)

let test_eager_model () =
  (* more operations cost more *)
  Alcotest.(check bool) "chain costs more" true
    (time Fw.numpy "A + B + A + B" > time Fw.numpy "A + B");
  (* pow costs more than mul per element *)
  Alcotest.(check bool) "pow > mul" true
    (time Fw.numpy "np.power(A, 2)" > time Fw.numpy "np.multiply(A, A)");
  (* dot n^3 dominates elementwise n^2 *)
  Alcotest.(check bool) "dot > add" true
    (time Fw.numpy "np.dot(A, B)" > time Fw.numpy "A + B");
  (* transpose is a view: nearly free until consumed by BLAS *)
  Alcotest.(check bool) "transposed dot pays the copy" true
    (time Fw.numpy "np.dot(A.T, B)" > time Fw.numpy "np.dot(A, B)")

let test_compiled_model () =
  (* fusion: a chain of elementwise ops is one kernel, far cheaper than
     eager's per-op passes *)
  let chain = "np.sqrt(A + B) * A + B" in
  Alcotest.(check bool) "fusion beats eager" true
    (time Fw.jax chain < time Fw.numpy chain);
  (* CSE: repeating a subexpression is free when compiled *)
  let dup = "np.dot(A, B) + np.dot(A, B)" in
  let single = "np.dot(A, B) + np.dot(B, A)" in
  Alcotest.(check bool) "cse collapses duplicates" true
    (time Fw.jax dup < time Fw.jax single);
  (* JAX's own rules erase the double transpose: STENSO gains nothing *)
  let s =
    Fw.speedup Fw.jax Pf.amd_7950x env
      ~original:(p "np.transpose(np.transpose(A))") ~optimized:(p "A")
  in
  Alcotest.(check (float 1e-6)) "jax already optimal on ttA" 1. s

let test_comprehension_overhead () =
  let envl = [ ("A", Types.float_t [| 64; 128 |]) ] in
  let loop = p "np.stack([r * 2 for r in A])" in
  let broadcast = p "np.multiply(2, A)" in
  let t_loop = Fw.estimate_time Fw.numpy Pf.amd_7950x envl loop in
  let t_bc = Fw.estimate_time Fw.numpy Pf.amd_7950x envl broadcast in
  Alcotest.(check bool) "python loop much slower" true (t_loop > 4. *. t_bc)

let test_platforms_differ () =
  List.iter
    (fun (fw : Fw.t) ->
      let times =
        List.map (fun pf -> Fw.estimate_time fw pf env (p "np.dot(A, B)"))
          Pf.all
      in
      Alcotest.(check bool)
        (fw.name ^ " platforms distinct") true
        (List.length (List.sort_uniq compare times) = 3))
    Fw.all

let test_speedup_reference () =
  (* the diag identity: large gain on eager NumPy; finite positive
     everywhere *)
  let env =
    [ ("A", Types.float_t [| 128; 160 |]); ("B", Types.float_t [| 160; 128 |]) ]
  in
  let orig = p "np.diag(np.dot(A, B))" in
  let opt = p "np.sum(np.multiply(A, B.T), axis=1)" in
  List.iter
    (fun fw ->
      List.iter
        (fun pf ->
          let s = Fw.speedup fw pf env ~original:orig ~optimized:opt in
          if not (Float.is_finite s && s > 1.) then
            Alcotest.failf "unexpected speedup %f" s)
        Pf.all)
    Fw.all

let suite =
  [
    Alcotest.test_case "rewrite rules" `Quick test_rules;
    Alcotest.test_case "eager timing model" `Quick test_eager_model;
    Alcotest.test_case "compiled timing model" `Quick test_compiled_model;
    Alcotest.test_case "comprehension overhead" `Quick
      test_comprehension_overhead;
    Alcotest.test_case "platform profiles distinct" `Quick
      test_platforms_differ;
    Alcotest.test_case "diag identity speedups" `Quick test_speedup_reference;
  ]
