(* Concrete interpretation and symbolic execution, including the
   differential property that ties them together: evaluating the
   symbolic tensor under a concrete assignment must agree with direct
   interpretation.  This is the soundness argument for using symbolic
   equality as the synthesis specification. *)
open Dsl
module F = Tensor.Ftensor

let ft = Alcotest.testable F.pp (F.allclose ~rtol:1e-9 ~atol:1e-12)

let test_interp_basics () =
  let env = [ ("A", F.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |]) ] in
  let run src = Interp.eval_alist env (Parser.expression src) in
  Alcotest.check ft "A + A" (F.of_array [| 2; 2 |] [| 2.; 4.; 6.; 8. |])
    (run "A + A");
  Alcotest.check ft "dot" (F.of_array [| 2; 2 |] [| 7.; 10.; 15.; 22. |])
    (run "np.dot(A, A)");
  Alcotest.(check (float 1e-9)) "trace" 5. (F.to_scalar (run "np.trace(A)"));
  Alcotest.check ft "comprehension doubles rows"
    (F.of_array [| 2; 2 |] [| 2.; 4.; 6.; 8. |])
    (run "np.stack([r * 2 for r in A])");
  (match run "Z" with
  | exception Interp.Eval_error _ -> ()
  | _ -> Alcotest.fail "unbound input should raise")

let test_sexec_spec_shape () =
  let env = [ ("A", Types.float_t [| 2; 3 |]) ] in
  let spec = Sexec.exec_env env (Parser.expression "np.sum(A, axis=1)") in
  Alcotest.(check bool) "spec shape" true (Sexec.Stensor.shape spec = [| 2 |]);
  let e = Sexec.Stensor.get spec [| 0 |] in
  Alcotest.(check string) "spec element"
    "(A[0,0] + A[0,1] + A[0,2])"
    (Symbolic.Expr.to_string e)

let test_equivalences () =
  let check_equiv name env_src a b expected =
    let env, _ = Parser.program (env_src ^ "\nreturn 0") in
    let r = Sexec.equivalent env (Parser.expression a) (Parser.expression b) in
    Alcotest.(check bool) name expected r
  in
  check_equiv "dot associativity over scalar mul"
    "input a : f32[]\ninput A : f32[2,3]\ninput B : f32[3,2]"
    "np.dot(a * A, B)" "a * np.dot(A, B)" true;
  check_equiv "distributivity" "input A : f32[2,2]\ninput B : f32[2,2]"
    "np.multiply(np.add(A, B), A)" "A*A + B*A" true;
  check_equiv "dot is not commutative" "input A : f32[2,2]\ninput B : f32[2,2]"
    "np.dot(A, B)" "np.dot(B, A)" false;
  check_equiv "sub not commutative" "input A : f32[2,2]\ninput B : f32[2,2]"
    "A - B" "B - A" false;
  check_equiv "transpose of product"
    "input A : f32[2,3]\ninput B : f32[3,2]"
    "np.transpose(np.dot(A, B))" "np.dot(B.T, A.T)" true;
  check_equiv "shape mismatch is inequivalent" "input A : f32[2,3]"
    "A" "A.T" false

let test_density_complexity () =
  let env = [ ("A", Types.float_t [| 3; 3 |]) ] in
  let spec src = Sexec.exec_env env (Parser.expression src) in
  Alcotest.(check (float 1e-9)) "dense density" 1. (Sexec.density (spec "A"));
  let tri = spec "np.triu(A)" in
  Alcotest.(check (float 1e-9)) "triu density" (6. /. 9.) (Sexec.density tri);
  (* complexity = mean distinct vars per element * density *)
  Alcotest.(check (float 1e-9)) "complexity of A" 1.
    (Sexec.complexity (spec "A"));
  Alcotest.(check (float 1e-9)) "complexity of A*A (same var)" 1.
    (Sexec.complexity (spec "A * A"));
  Alcotest.(check bool) "dot raises complexity" true
    (Sexec.complexity (spec "np.dot(A, A)") > 2.)

(* Differential: random programs, symbolic execution evaluated
   concretely equals direct interpretation. *)
let arb_program =
  let open QCheck2.Gen in
  let leaf = oneofl [ "A"; "B"; "x"; "2"; "0.5" ] in
  let rec expr n =
    if n = 0 then leaf
    else
      let sub = expr (n - 1) in
      oneof
        [
          leaf;
          (* positivity-preserving grammar (see the symbolic engine's
             positive-symbol assumption) *)
          map2 (Printf.sprintf "(%s + %s)") sub sub;
          map2 (Printf.sprintf "(%s * %s)") sub sub;
          map2 (Printf.sprintf "(%s / %s)") sub sub;
          map2 (Printf.sprintf "np.sqrt(np.multiply(%s, %s))") sub sub;
          map (Printf.sprintf "np.sum(%s, axis=0)") sub;
          map (Printf.sprintf "np.exp(np.log(%s))") sub;
          map (Printf.sprintf "np.max(%s, axis=0)") sub;
          map (Printf.sprintf "%s.T") sub;
        ]
  in
  expr 3

let env_t =
  [ ("A", Types.float_t [| 2; 3 |]); ("B", Types.float_t [| 2; 3 |]);
    ("x", Types.float_t [| 3 |]) ]

let prop_sexec_agrees_with_interp =
  QCheck2.Test.make
    ~name:"sexec: symbolic execution agrees with interpretation" ~count:150
    QCheck2.Gen.(pair arb_program (int_range 0 10_000))
    (fun (src, seed) ->
      match Parser.expression src with
      | exception Parser.Parse_error _ -> true
      | prog -> (
          match Types.check env_t prog with
          | Error _ -> true
          | Ok _ ->
              let st = Random.State.make [| seed |] in
              let inputs = Interp.random_inputs st env_t in
              let direct = Interp.eval_alist inputs prog in
              let sym = Sexec.exec_env env_t prog in
              let assign (s : Symbolic.Sym.t) =
                F.get (List.assoc (Symbolic.Sym.base s) inputs) s.indices
              in
              let via_sym = Sexec.eval_concrete assign sym in
              F.allclose ~rtol:1e-6 ~atol:1e-9 direct via_sym))

(* Equivalence is sound: if two random programs are declared equivalent,
   they agree numerically. *)
let prop_equivalence_sound =
  QCheck2.Test.make ~name:"sexec: equivalent implies numerically equal"
    ~count:100
    QCheck2.Gen.(triple arb_program arb_program (int_range 0 10_000))
    (fun (s1, s2, seed) ->
      match (Parser.expression s1, Parser.expression s2) with
      | exception Parser.Parse_error _ -> true
      | p1, p2 -> (
          match (Types.check env_t p1, Types.check env_t p2) with
          | Ok _, Ok _ ->
              if Sexec.equivalent env_t p1 p2 then begin
                let st = Random.State.make [| seed |] in
                let inputs = Interp.random_inputs st env_t in
                F.allclose ~rtol:1e-6 ~atol:1e-9
                  (Interp.eval_alist inputs p1)
                  (Interp.eval_alist inputs p2)
              end
              else true
          | _ -> true))

let test_all_benchmark_equivalences () =
  List.iter
    (fun (b : Suite.Benchmarks.t) ->
      if not (Sexec.equivalent b.env b.program b.expected_opt) then
        Alcotest.failf "%s: original and reference optimized not equivalent"
          b.name;
      (* and concretely, at performance shapes *)
      let st = Random.State.make [| 0xfeed |] in
      let inputs = Interp.random_inputs st b.perf_env in
      let r1 = Interp.eval_alist inputs b.perf_program in
      let r2 = Interp.eval_alist inputs b.perf_expected_opt in
      if not (F.allclose ~rtol:1e-6 ~atol:1e-9 r1 r2) then
        Alcotest.failf "%s: concrete mismatch at perf shapes" b.name)
    Suite.Benchmarks.all

let suite =
  [
    Alcotest.test_case "interpreter basics" `Quick test_interp_basics;
    Alcotest.test_case "symbolic spec construction" `Quick
      test_sexec_spec_shape;
    Alcotest.test_case "equivalence checking" `Quick test_equivalences;
    Alcotest.test_case "density and complexity" `Quick test_density_complexity;
    Alcotest.test_case "all benchmark reference equivalences" `Slow
      test_all_benchmark_equivalences;
    QCheck_alcotest.to_alcotest prop_sexec_agrees_with_interp;
    QCheck_alcotest.to_alcotest prop_equivalence_sound;
  ]
