(* Shape/dtype checking. *)
open Dsl

let vt = Alcotest.testable Types.pp_vt Types.equal_vt
let f = Types.float_t
let env = [ ("A", f [| 3; 4 |]); ("B", f [| 4; 3 |]); ("x", f [| 4 |]);
            ("s", Types.scalar_f); ("m", Types.bool_t [| 3; 4 |]) ]

let infer src = Types.infer env (Parser.expression src)

let expect_type src expected =
  Alcotest.check vt src expected (infer src)

let expect_reject src =
  match infer src with
  | exception Types.Type_error _ -> ()
  | t ->
      Alcotest.failf "%s: expected rejection, got %s" src
        (Format.asprintf "%a" Types.pp_vt t)

let test_elementwise () =
  expect_type "A + A" (f [| 3; 4 |]);
  expect_type "A * x" (f [| 3; 4 |]);
  expect_type "A + s" (f [| 3; 4 |]);
  expect_type "s * s" Types.scalar_f;
  expect_type "np.sqrt(A)" (f [| 3; 4 |]);
  expect_reject "A + B";
  expect_reject "A + m" (* bool in arithmetic *)

let test_contractions () =
  expect_type "np.dot(A, B)" (f [| 3; 3 |]);
  expect_type "np.dot(A, x)" (f [| 3 |]);
  expect_type "np.dot(x, B)" (f [| 3 |]);
  expect_reject "np.dot(A, A)";
  expect_reject "np.dot(s, A)" (* scalar operands rejected, as in NumPy *);
  expect_type "np.tensordot(A, A, ([0], [0]))" (f [| 4; 4 |]);
  expect_type "np.tensordot(A, A, ([0, 1], [0, 1]))" Types.scalar_f;
  expect_reject "np.tensordot(A, A, ([1], [1, 0]))";
  expect_reject "np.tensordot(A, B, ([0], [0]))"

let test_reductions_structure () =
  expect_type "np.sum(A)" Types.scalar_f;
  expect_type "np.sum(A, axis=0)" (f [| 4 |]);
  expect_type "np.sum(A, axis=-1)" (f [| 3 |]);
  expect_reject "np.sum(A, axis=2)";
  expect_type "np.max(A, axis=1)" (f [| 3 |]);
  expect_type "A.T" (f [| 4; 3 |]);
  expect_type "np.transpose(A, (1, 0))" (f [| 4; 3 |]);
  expect_reject "np.transpose(A, (0, 0))";
  expect_type "np.diag(A)" (f [| 3 |]);
  expect_type "np.trace(A)" Types.scalar_f;
  expect_reject "np.diag(x)";
  expect_type "np.triu(A)" (f [| 3; 4 |]);
  expect_reject "np.triu(x)";
  expect_type "np.reshape(A, (2, 6))" (f [| 2; 6 |]);
  expect_reject "np.reshape(A, (5, 5))";
  expect_type "np.full((2, 2), s)" (f [| 2; 2 |]);
  expect_reject "np.full((2, 2), A)"

let test_stack_where () =
  expect_type "np.stack([A, A])" (f [| 2; 3; 4 |]);
  expect_type "np.stack([x, x, x], axis=1)" (f [| 4; 3 |]);
  expect_reject "np.stack([A, x])";
  expect_type "np.where(m, A, A)" (f [| 3; 4 |]);
  expect_reject "np.where(A, A, A)" (* condition must be boolean *);
  expect_type "np.less(A, A)" { Types.dtype = Types.Bool; shape = [| 3; 4 |] };
  expect_reject "np.less(m, m)"

let test_comprehension () =
  let t =
    Types.infer env
      (Parser.expression "np.stack([np.sum(r) for r in A])")
  in
  Alcotest.check vt "comprehension type" (f [| 3 |]) t;
  (match
     Types.check env (Parser.expression "np.stack([r for r in s])")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "iterating a scalar should fail")

let test_unbound () =
  expect_reject "Z + A";
  Alcotest.(check bool) "well_typed false on unbound" false
    (Types.well_typed env (Parser.expression "Z"))

let test_all_benchmarks_type () =
  List.iter
    (fun (b : Suite.Benchmarks.t) ->
      ignore (Types.infer b.env b.program);
      ignore (Types.infer b.env b.expected_opt);
      ignore (Types.infer b.perf_env b.perf_program);
      ignore (Types.infer b.perf_env b.perf_expected_opt);
      (* original and optimized must agree on the output type *)
      let t1 = Types.infer b.env b.program in
      let t2 = Types.infer b.env b.expected_opt in
      if not (Types.equal_vt t1 t2) then
        Alcotest.failf "%s: type mismatch between original and optimized"
          b.name)
    Suite.Benchmarks.all

let suite =
  [
    Alcotest.test_case "elementwise" `Quick test_elementwise;
    Alcotest.test_case "contractions" `Quick test_contractions;
    Alcotest.test_case "reductions and structure" `Quick
      test_reductions_structure;
    Alcotest.test_case "stack and where" `Quick test_stack_where;
    Alcotest.test_case "comprehension" `Quick test_comprehension;
    Alcotest.test_case "unbound inputs" `Quick test_unbound;
    Alcotest.test_case "all benchmarks type-check" `Quick
      test_all_benchmarks_type;
  ]
