(* Shape arithmetic and broadcasting. *)
module Shape = Tensor.Shape

let shape = Alcotest.testable Shape.pp Shape.equal

let test_basics () =
  Alcotest.(check int) "numel scalar" 1 (Shape.numel [||]);
  Alcotest.(check int) "numel 3x4" 12 (Shape.numel [| 3; 4 |]);
  Alcotest.(check int) "numel with zero dim" 0 (Shape.numel [| 3; 0 |]);
  Alcotest.(check int) "rank" 3 (Shape.rank [| 2; 3; 4 |]);
  Alcotest.check_raises "negative dim" (Invalid_argument
    "Shape.validate: negative dimension -1") (fun () ->
      Shape.validate [| 3; -1 |])

let test_strides () =
  Alcotest.(check (array int)) "strides 2x3x4" [| 12; 4; 1 |]
    (Shape.strides [| 2; 3; 4 |]);
  Alcotest.(check (array int)) "strides scalar" [||] (Shape.strides [||])

let test_broadcast () =
  let bc a b = Shape.broadcast a b in
  Alcotest.(check (option shape)) "same" (Some [| 3; 4 |]) (bc [| 3; 4 |] [| 3; 4 |]);
  Alcotest.(check (option shape)) "scalar" (Some [| 3; 4 |]) (bc [||] [| 3; 4 |]);
  Alcotest.(check (option shape)) "vector vs matrix" (Some [| 3; 4 |])
    (bc [| 4 |] [| 3; 4 |]);
  Alcotest.(check (option shape)) "column" (Some [| 4; 3 |])
    (bc [| 4; 1 |] [| 3 |]);
  Alcotest.(check (option shape)) "incompatible" None (bc [| 3 |] [| 4 |]);
  Alcotest.(check (option shape)) "ones stretch both ways" (Some [| 5; 7 |])
    (bc [| 5; 1 |] [| 1; 7 |])

let test_iteration () =
  let order = ref [] in
  Shape.iter_indices [| 2; 2 |] (fun idx -> order := Array.copy idx :: !order);
  Alcotest.(check int) "visits all" 4 (List.length !order);
  Alcotest.(check (list (array int)))
    "row-major order"
    [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]
    (List.rev !order);
  let count = ref 0 in
  Shape.iter_indices [||] (fun _ -> incr count);
  Alcotest.(check int) "scalar visits once" 1 !count;
  let count = ref 0 in
  Shape.iter_indices [| 0; 3 |] (fun _ -> incr count);
  Alcotest.(check int) "empty visits none" 0 !count

let test_offsets () =
  Alcotest.(check int) "offset" 7 (Shape.offset [| 3; 4 |] [| 1; 3 |]);
  Alcotest.check_raises "offset out of bounds"
    (Invalid_argument "Shape.offset: index out of bounds") (fun () ->
      ignore (Shape.offset [| 3; 4 |] [| 1; 4 |]));
  (* broadcast offset pins size-1 axes *)
  Alcotest.(check int) "broadcast offset size-1 axis" 1
    (Shape.broadcast_offset [| 1; 2 |] [| 5; 1 |]);
  (* missing leading axes ignored *)
  Alcotest.(check int) "broadcast offset trailing" 2
    (Shape.broadcast_offset [| 3 |] [| 9; 2 |])

let test_axis_edits () =
  Alcotest.check shape "remove middle" [| 2; 4 |]
    (Shape.remove_axis [| 2; 3; 4 |] 1);
  Alcotest.check shape "insert front" [| 7; 2; 3 |]
    (Shape.insert_axis [| 2; 3 |] 0 7);
  Alcotest.check shape "insert back" [| 2; 3; 7 |]
    (Shape.insert_axis [| 2; 3 |] 2 7);
  Alcotest.(check int) "normalize -1" 1 (Shape.normalize_axis [| 3; 4 |] (-1));
  Alcotest.check_raises "normalize out of range"
    (Invalid_argument "axis 2 out of range for rank 2") (fun () ->
      ignore (Shape.normalize_axis [| 3; 4 |] 2))

let test_perms () =
  Alcotest.check shape "transpose perm" [| 4; 2; 3 |]
    (Shape.transpose [| 2; 3; 4 |] [| 2; 0; 1 |]);
  Alcotest.(check (array int)) "reverse perm" [| 2; 1; 0 |] (Shape.reverse_perm 3);
  Alcotest.(check (array int)) "invert perm" [| 1; 2; 0 |]
    (Shape.invert_perm [| 2; 0; 1 |]);
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Shape.transpose: not a permutation") (fun () ->
      ignore (Shape.transpose [| 2; 3 |] [| 0; 0 |]))

let arb_shape =
  QCheck2.Gen.(map Array.of_list (list_size (int_range 0 4) (int_range 1 5)))

let prop_broadcast_commutes =
  QCheck2.Test.make ~name:"shape: broadcast commutes" ~count:300
    QCheck2.Gen.(pair arb_shape arb_shape)
    (fun (a, b) ->
      match (Shape.broadcast a b, Shape.broadcast b a) with
      | Some x, Some y -> Shape.equal x y
      | None, None -> true
      | _ -> false)

let prop_broadcast_idempotent =
  QCheck2.Test.make ~name:"shape: broadcast with result is identity" ~count:300
    QCheck2.Gen.(pair arb_shape arb_shape)
    (fun (a, b) ->
      match Shape.broadcast a b with
      | None -> true
      | Some r -> (
          match Shape.broadcast a r with
          | Some r' -> Shape.equal r r'
          | None -> false))

let prop_iter_count =
  QCheck2.Test.make ~name:"shape: iter_indices visits numel points" ~count:200
    arb_shape
    (fun s ->
      let n = ref 0 in
      Shape.iter_indices s (fun _ -> incr n);
      !n = Shape.numel s)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "strides" `Quick test_strides;
    Alcotest.test_case "broadcasting" `Quick test_broadcast;
    Alcotest.test_case "index iteration" `Quick test_iteration;
    Alcotest.test_case "offsets" `Quick test_offsets;
    Alcotest.test_case "axis insert/remove" `Quick test_axis_edits;
    Alcotest.test_case "permutations" `Quick test_perms;
    QCheck_alcotest.to_alcotest prop_broadcast_commutes;
    QCheck_alcotest.to_alcotest prop_broadcast_idempotent;
    QCheck_alcotest.to_alcotest prop_iter_count;
  ]
