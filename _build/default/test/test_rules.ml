(* Rule generalization and application (Section VII-D). *)
open Dsl
open Stenso

let ast = Alcotest.testable Ast.pp Ast.equal
let p = Parser.expression

let diag_rule =
  Rules.generalize
    (p "np.diag(np.dot(A, B))")
    (p "np.sum(np.multiply(A, B.T), axis=1)")

let test_generalize () =
  Alcotest.check ast "lhs abstracted"
    (p "np.diag(np.dot(X, Y))")
    diag_rule.lhs;
  Alcotest.check ast "rhs abstracted"
    (p "np.sum(np.multiply(X, Y.T), axis=1)")
    diag_rule.rhs;
  Alcotest.(check (list (pair string string)))
    "metavariable map"
    [ ("A", "X"); ("B", "Y") ]
    diag_rule.metavars

let test_match_and_apply () =
  (* matches with arbitrary subterms bound to the metavariables *)
  let target = p "np.diag(np.dot(P + Q, np.transpose(R)))" in
  (match Rules.matches diag_rule target with
  | Some bindings ->
      Alcotest.(check int) "two bindings" 2 (List.length bindings)
  | None -> Alcotest.fail "rule should match");
  (match Rules.apply_once diag_rule target with
  | Some rewritten ->
      Alcotest.check ast "instantiated rhs"
        (p "np.sum(np.multiply(P + Q, np.transpose(np.transpose(R))), axis=1)")
        rewritten
  | None -> Alcotest.fail "rule should rewrite");
  (* no match -> no rewrite *)
  Alcotest.(check bool) "no false positives" true
    (Rules.apply_once diag_rule (p "np.dot(A, B)") = None)

let test_apply_nested () =
  (* rewriting fires below the root too *)
  let target = p "np.sqrt(np.diag(np.dot(A, B)))" in
  match Rules.apply_once diag_rule target with
  | Some rewritten ->
      Alcotest.check ast "nested rewrite"
        (p "np.sqrt(np.sum(np.multiply(A, B.T), axis=1))")
        rewritten
  | None -> Alcotest.fail "nested position should rewrite"

let test_consistent_binding () =
  (* the same metavariable must bind identical subterms *)
  let rule = Rules.generalize (p "A * B + A * B") (p "2 * (A * B)") in
  Alcotest.(check bool) "consistent occurrence matches" true
    (Rules.matches rule (p "P * Q + P * Q") <> None);
  Alcotest.(check bool) "inconsistent occurrence rejected" true
    (Rules.matches rule (p "P * Q + P * R") = None)

let test_rule_preserves_semantics () =
  (* applying a mined rule to fresh programs preserves equivalence *)
  let env =
    [ ("P", Types.float_t [| 2; 3 |]); ("Q", Types.float_t [| 3; 2 |]) ]
  in
  let target = p "np.diag(np.dot(P, Q))" in
  match Rules.apply_once diag_rule target with
  | Some rewritten ->
      Alcotest.(check bool) "equivalent after rewrite" true
        (Sexec.equivalent env target rewritten)
  | None -> Alcotest.fail "should apply"

let test_apply_fixpoint () =
  let rules =
    [
      Rules.generalize (p "np.exp(np.log(A))") (p "A");
      Rules.generalize (p "A * B + A * B") (p "2 * (A * B)");
    ]
  in
  Alcotest.check ast "both rules fire to fixpoint"
    (p "np.multiply(2, np.multiply(P, Q))")
    (Rules.apply_fixpoint rules
       (p "np.exp(np.log(P * Q + P * Q))"));
  Alcotest.check ast "fixpoint of no match is identity" (p "P + Q")
    (Rules.apply_fixpoint rules (p "P + Q"))

let test_classifier () =
  let check name orig opt expected =
    let k =
      Classify.classify ~original:(p orig) ~optimized:(p opt)
    in
    Alcotest.(check string) name expected (Classify.klass_name k)
  in
  check "loop removal is vectorization" "np.stack([r * 2 for r in A])"
    "np.multiply(2, A)" "Vectorization";
  check "double transpose is redundancy"
    "np.transpose(np.transpose(A))" "A" "Redundancy Elimination";
  check "pow to mul is strength reduction" "np.power(A, 2)"
    "np.multiply(A, A)" "Strength Reduction";
  check "diag dot is identity replacement" "np.diag(np.dot(A, B))"
    "np.sum(np.multiply(A, B.T), axis=1)" "Identity Replacement";
  check "term rewriting is algebraic" "A * B + C * B"
    "np.multiply(np.add(A, C), B)" "Algebraic Simplification"

let suite =
  [
    Alcotest.test_case "generalization" `Quick test_generalize;
    Alcotest.test_case "match and apply" `Quick test_match_and_apply;
    Alcotest.test_case "nested application" `Quick test_apply_nested;
    Alcotest.test_case "consistent bindings" `Quick test_consistent_binding;
    Alcotest.test_case "semantics preserved" `Quick
      test_rule_preserves_semantics;
    Alcotest.test_case "rule set to fixpoint" `Quick test_apply_fixpoint;
    Alcotest.test_case "transformation classifier" `Quick test_classifier;
  ]
