(* Specification utilities: keys, collapse, complexity. *)
open Dsl
module St = Sexec.Stensor
module Expr = Symbolic.Expr
open Stenso

let env = [ ("A", Types.float_t [| 3; 3 |]); ("y", Types.float_t [| 3 |]) ]
let spec_of src = Sexec.exec_env env (Parser.expression src)

let test_key_equality () =
  (* key is canonical: syntactically different but equal programs share it *)
  let k1 = Spec.key (spec_of "A + A") in
  let k2 = Spec.key (spec_of "2 * A") in
  Alcotest.(check string) "A+A and 2A share a key" k1 k2;
  let k3 = Spec.key (spec_of "A * 3") in
  Alcotest.(check bool) "3A differs" true (k2 <> k3);
  (* shape participates in the key *)
  let s1 = St.of_array [| 2 |] [| Expr.one; Expr.one |] in
  let s2 = St.of_array [| 2; 1 |] [| Expr.one; Expr.one |] in
  Alcotest.(check bool) "shape in key" true (Spec.key s1 <> Spec.key s2)

let test_collapse () =
  let y = Sexec.input_tensor "y" [| 3 |] in
  (* broadcast y upward then collapse back down *)
  let up = St.init [| 4; 3 |] (fun idx -> St.get y [| idx.(1) |]) in
  let down = Spec.collapse up in
  Alcotest.(check bool) "collapse recovers the vector" true (St.equal down y);
  (* uniform tensor collapses to a scalar *)
  let fours = St.create [| 3; 3 |] (Expr.int 4) in
  let c = Spec.collapse fours in
  Alcotest.(check int) "uniform collapses to rank 0" 0
    (Tensor.Shape.rank (Spec.shape c));
  (* non-uniform is untouched *)
  let a = spec_of "A" in
  Alcotest.(check bool) "non-uniform unchanged" true
    (St.equal (Spec.collapse a) a);
  (* column uniformity collapses one axis only *)
  let col = St.init [| 3; 2 |] (fun idx -> St.get y [| idx.(0) |]) in
  let c = Spec.collapse col in
  Alcotest.(check bool) "column collapse keeps rank 2" true
    (Spec.shape c = [| 3; 1 |])

let test_uniform_const () =
  Alcotest.(check bool) "is_uniform on const tensor" true
    (Spec.is_uniform (St.create [| 2; 2 |] (Expr.int 7)) <> None);
  (match Spec.to_const (St.create [| 2; 2 |] (Expr.int 7)) with
  | Some q -> Alcotest.(check int) "const value" 7 (Symbolic.Q.num q)
  | None -> Alcotest.fail "expected constant");
  Alcotest.(check bool) "vars are not constant" true
    (Spec.to_const (spec_of "A") = None)

let test_complexity_ordering () =
  (* The simplification metric must order the paper's example:
     A.B.C-products are more complex than A.B-products. *)
  let env3 =
    [ ("A", Types.float_t [| 3 |]); ("B", Types.float_t [| 3 |]);
      ("C", Types.float_t [| 3 |]) ]
  in
  let s src = Sexec.exec_env env3 (Parser.expression src) in
  let c3 = Spec.complexity (s "A * B * C") in
  let c2 = Spec.complexity (s "A * B") in
  let c1 = Spec.complexity (s "A") in
  Alcotest.(check bool) "ABC > AB > A" true (c3 > c2 && c2 > c1);
  (* masking reduces density hence complexity *)
  let envm = [ ("A", Types.float_t [| 3; 3 |]) ] in
  let sm src = Sexec.exec_env envm (Parser.expression src) in
  Alcotest.(check bool) "triu less complex than full" true
    (Spec.complexity (sm "np.triu(np.multiply(A, A))")
     < Spec.complexity (sm "np.multiply(A, A)"))

let suite =
  [
    Alcotest.test_case "canonical keys" `Quick test_key_equality;
    Alcotest.test_case "collapse" `Quick test_collapse;
    Alcotest.test_case "uniform/const detection" `Quick test_uniform_const;
    Alcotest.test_case "complexity ordering" `Quick test_complexity_ordering;
  ]
