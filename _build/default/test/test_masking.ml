(* Masking extension: where/less/triu/tril through the whole pipeline
   (the grammar's [B]-typed productions and the density-driven part of
   the simplification metric). *)
open Dsl
open Stenso

let config =
  {
    Search.default_config with
    stub_config = { Search.default_config.stub_config with extended_ops = true };
  }

let model = Cost.Model.flops

(* masked_square (pow -> mul) is invisible to the FLOPs estimator, so
   end-to-end outcomes use the measured model at small scale *)
let measured = lazy (Cost.Model.measured ~scale:6 ~min_time:5e-4 ())

let outcomes =
  lazy
    (List.map
       (fun (b : Suite.Benchmarks.t) ->
         ( b,
           Superopt.superoptimize ~config ~model:(Lazy.force measured)
             ~env:b.env b.program ))
       Suite.Benchmarks.masking)

let test_where_max_normalizes () =
  (* where(x < y, y, x) = maximum(x, y) holds already at the symbolic
     level, making the rewrite a pure library match *)
  let env = [ ("A", Types.float_t [| 2; 2 |]); ("B", Types.float_t [| 2; 2 |]) ] in
  Alcotest.(check bool) "normalization identifies the max pattern" true
    (Sexec.equivalent env
       (Parser.expression "np.where(np.less(A, B), B, A)")
       (Parser.expression "np.maximum(A, B)"))

let test_all_masking_improve () =
  List.iter
    (fun ((b : Suite.Benchmarks.t), (o : Superopt.outcome)) ->
      if not o.improved then
        Alcotest.failf "%s: masking benchmark did not improve" b.name;
      if not o.verified then Alcotest.failf "%s: not verified" b.name;
      if not (Sexec.equivalent b.env o.optimized b.expected_opt) then
        Alcotest.failf "%s: found %s, expected something equivalent to %s"
          b.name (Ast.to_string o.optimized) (Ast.to_string b.expected_opt))
    (Lazy.force outcomes)

let test_masked_completion () =
  (* the hole-less masked decomposition: triu of a dense library value *)
  let env = [ ("A", Types.float_t [| 3; 3 |]); ("B", Types.float_t [| 3; 3 |]) ] in
  let lib =
    Stub.enumerate ~config:config.stub_config ~model ~consts:[ 1. ] env
  in
  let spec = Sexec.exec_env env (Parser.expression "np.triu(A + B)") in
  let ds = Invert.decompositions lib spec in
  Alcotest.(check bool) "triu completion over add(A,B)" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         d.op = Ast.Triu
         &&
         match d.parts with
         | [ Invert.P_conc c ] ->
             Sexec.equivalent env c.Stub.prog (Parser.expression "A + B")
         | _ -> false)
       ds)

let test_where_split () =
  (* where(mask, ??, ??) decomposition produces density-reduced holes *)
  let env =
    [ ("m", Types.bool_t [| 2; 2 |]); ("A", Types.float_t [| 2; 2 |]);
      ("B", Types.float_t [| 2; 2 |]) ]
  in
  let lib =
    Stub.enumerate ~config:config.stub_config ~model ~consts:[ 1. ] env
  in
  let spec = Sexec.exec_env env (Parser.expression "np.where(m, A, B)") in
  let ds = Invert.decompositions lib spec in
  Alcotest.(check bool) "where split offered" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         d.op = Ast.Where && List.length (Invert.hole_specs d) = 2)
       ds)

let test_extended_library_has_masks () =
  let env = [ ("A", Types.float_t [| 3; 3 |]) ] in
  let lib =
    Stub.enumerate ~config:config.stub_config ~model ~consts:[ 1. ] env
  in
  match
    Stub.lookup_exact lib (Sexec.exec_env env (Parser.expression "np.triu(A)"))
  with
  | Some _ -> ()
  | None -> Alcotest.fail "extended library must contain triangular masks"

let suite =
  [
    Alcotest.test_case "where/less/max normalization" `Quick
      test_where_max_normalizes;
    Alcotest.test_case "all masking benchmarks improve" `Slow
      test_all_masking_improve;
    Alcotest.test_case "masked completion" `Quick test_masked_completion;
    Alcotest.test_case "where split" `Quick test_where_split;
    Alcotest.test_case "extended library" `Quick test_extended_library_has_masks;
  ]
