(* Printing/parsing round-trip: for any generated program, parsing the
   pretty-printed form yields the same AST — the property that makes the
   CLI's --synth_out files reusable as inputs. *)
open Dsl

let prop_roundtrip =
  QCheck2.Test.make ~name:"printer: parse (print p) = p" ~count:200
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, prog =
        Suite.Generator.generate
          { Suite.Generator.default with size = 6; seed }
      in
      let printed = Ast.to_string prog in
      match Parser.expression printed with
      | reparsed -> Ast.equal prog reparsed
      | exception Parser.Parse_error _ -> false)

let test_specific_forms () =
  (* forms whose rendering is easy to get wrong *)
  List.iter
    (fun src ->
      let prog = Parser.expression src in
      let printed = Ast.to_string prog in
      match Parser.expression printed with
      | reparsed ->
          if not (Ast.equal prog reparsed) then
            Alcotest.failf "%s: printed as %S which reparses differently" src
              printed
      | exception Parser.Parse_error m ->
          Alcotest.failf "%s: printed as %S which fails to parse (%s)" src
            printed m)
    [
      "np.full((2, 2), -1.5)";
      "np.transpose(A, (1, 0))";
      "np.tensordot(A, B, ([0], [0]))";
      "np.reshape(A, (6,))";
      "np.stack([A, B], axis=1)";
      "np.stack([v * 2 for v in A])";
      "np.sum(A, axis=-1)";
      "np.where(np.less(A, B), A, B)";
      "np.power(A, -1)";
      "A ** 2 ** 3";
      "(A + B) * (A - B)";
    ]

let test_negative_floats () =
  let prog = Ast.Const (-2.5) in
  let printed = Ast.to_string prog in
  Alcotest.(check bool) "negative float reparses" true
    (Ast.equal prog (Parser.expression printed))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "tricky forms" `Quick test_specific_forms;
    Alcotest.test_case "negative literals" `Quick test_negative_floats;
  ]
