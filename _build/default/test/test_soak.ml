(* Robustness soak: superoptimize randomly generated programs and hold
   the system to its contract on every one — no crashes, verified
   outputs, concrete agreement, and costs that never exceed the
   original. *)
open Dsl
open Stenso
module Gen = Suite.Generator

let model = Cost.Model.flops

let soak ~count cfg =
  List.iteri
    (fun i (env, prog) ->
      let label = Printf.sprintf "program %d (%s)" i (Ast.to_string prog) in
      match Superopt.superoptimize ~model ~env prog with
      | exception e ->
          Alcotest.failf "%s: raised %s" label (Printexc.to_string e)
      | o ->
          if not o.verified then Alcotest.failf "%s: unverified" label;
          if o.optimized_cost > o.original_cost +. 1e-9 then
            Alcotest.failf "%s: cost increased" label;
          if not (Sexec.equivalent env prog o.optimized) then
            Alcotest.failf "%s: inequivalent result %s" label
              (Ast.to_string o.optimized);
          if not (Superopt.validate_concrete ~trials:4 ~env prog o.optimized)
          then Alcotest.failf "%s: concrete mismatch" label)
    (Gen.generate_many cfg count)

let test_small_programs () =
  soak ~count:25 { Gen.default with size = 4; seed = 100 }

let test_contraction_heavy () =
  soak ~count:15
    { Gen.default with size = 6; num_inputs = 2; seed = 200 }

let test_elementwise_only () =
  soak ~count:15
    {
      Gen.default with
      size = 8;
      allow_contractions = false;
      seed = 300;
    }

let test_generator_determinism () =
  let a = Gen.generate { Gen.default with seed = 7 } in
  let b = Gen.generate { Gen.default with seed = 7 } in
  Alcotest.(check bool) "same seed, same program" true
    (Ast.equal (snd a) (snd b));
  let c = Gen.generate { Gen.default with seed = 8 } in
  Alcotest.(check bool) "different seeds diverge somewhere" true
    (not (Ast.equal (snd a) (snd c))
    || not (Ast.equal (snd b) (snd c)))

let test_generator_well_typed () =
  List.iter
    (fun (env, prog) ->
      match Types.check env prog with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "generator emitted ill-typed program: %s" m)
    (Gen.generate_many { Gen.default with size = 7 } 50)

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick
      test_generator_determinism;
    Alcotest.test_case "generator well-typedness" `Quick
      test_generator_well_typed;
    Alcotest.test_case "soak: small programs" `Slow test_small_programs;
    Alcotest.test_case "soak: contraction-heavy" `Slow test_contraction_heavy;
    Alcotest.test_case "soak: elementwise chains" `Slow test_elementwise_only;
  ]
