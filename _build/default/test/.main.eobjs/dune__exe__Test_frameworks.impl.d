test/test_frameworks.ml: Alcotest Ast Dsl Float Frameworks List Parser Types
