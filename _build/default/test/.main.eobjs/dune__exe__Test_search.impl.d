test/test_search.ml: Alcotest Ast Cost Dsl List Parser Search Sexec Stenso Suite Superopt
