test/test_egraph.ml: Alcotest Ast Cost Dsl Egraph Parser Rules Sexec Stenso Types
