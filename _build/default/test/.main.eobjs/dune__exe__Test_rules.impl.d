test/test_rules.ml: Alcotest Ast Classify Dsl List Parser Rules Sexec Stenso Types
