test/test_cost.ml: Alcotest Ast Cost Dsl Parser Stenso Types
