test/test_types.ml: Alcotest Dsl Format List Parser Suite Types
