test/test_q.ml: Alcotest Float Q QCheck2 QCheck_alcotest Symbolic
