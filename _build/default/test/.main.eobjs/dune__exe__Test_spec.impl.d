test/test_spec.ml: Alcotest Array Dsl Parser Sexec Spec Stenso Symbolic Tensor Types
