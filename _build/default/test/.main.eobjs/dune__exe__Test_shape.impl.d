test/test_shape.ml: Alcotest Array List QCheck2 QCheck_alcotest Tensor
