test/test_masking.ml: Alcotest Ast Cost Dsl Invert Lazy List Parser Search Sexec Stenso Stub Suite Superopt Types
