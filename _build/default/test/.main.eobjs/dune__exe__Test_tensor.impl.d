test/test_tensor.ml: Alcotest Array Float Fun List QCheck2 QCheck_alcotest Random Tensor
