test/test_parser.ml: Alcotest Ast Dsl List Parser Suite Types
