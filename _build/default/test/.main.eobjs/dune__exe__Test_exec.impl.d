test/test_exec.ml: Alcotest Dsl Interp List Parser Printf QCheck2 QCheck_alcotest Random Sexec Suite Symbolic Tensor Types
