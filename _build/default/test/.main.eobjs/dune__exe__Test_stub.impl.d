test/test_stub.ml: Alcotest Ast Cost Dsl List Parser Sexec Spec Stdlib Stenso Stub Symbolic Types Unix
