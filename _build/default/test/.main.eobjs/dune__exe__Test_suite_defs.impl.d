test/test_suite_defs.ml: Alcotest Dsl List Suite Tensor
