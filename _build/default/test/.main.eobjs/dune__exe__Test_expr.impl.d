test/test_expr.ml: Alcotest Expr Float Q QCheck2 QCheck_alcotest Sym Symbolic
