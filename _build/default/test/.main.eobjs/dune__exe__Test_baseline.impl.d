test/test_baseline.ml: Alcotest Bottom_up Cost Dsl Parser Sexec Stenso
