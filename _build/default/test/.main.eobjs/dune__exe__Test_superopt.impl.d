test/test_superopt.ml: Alcotest Cost Dsl Lazy List Parser Sexec Stenso Suite Superopt
