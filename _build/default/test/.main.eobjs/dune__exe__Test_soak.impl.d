test/test_soak.ml: Alcotest Ast Cost Dsl List Printexc Printf Sexec Stenso Suite Superopt Types
