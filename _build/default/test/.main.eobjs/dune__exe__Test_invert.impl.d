test/test_invert.ml: Alcotest Ast Cost Dsl Format Invert List Parser QCheck2 QCheck_alcotest Sexec Spec Stenso Stub Suite Symbolic Tensor
