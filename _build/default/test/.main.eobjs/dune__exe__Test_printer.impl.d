test/test_printer.ml: Alcotest Ast Dsl List Parser QCheck2 QCheck_alcotest Suite
