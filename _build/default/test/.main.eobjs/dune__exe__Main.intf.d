test/main.mli:
