(* The TASO-style bottom-up baseline (Fig. 5's third series). *)
open Dsl
open Stenso

let model = Cost.Model.flops

let run ?(max_depth = 2) ?(max_programs = 60_000) env_src prog_src =
  let env, _ = Parser.program (env_src ^ "\nreturn 0") in
  let prog = Parser.expression prog_src in
  (env, prog, Bottom_up.run ~max_depth ~max_programs ~timeout:20. ~model ~env prog)

let test_finds_shallow_optimum () =
  (* log_exp-style rewrites live at depth 1: enumeration finds them *)
  let env, prog, r =
    run "input A : f32[2,2]\ninput B : f32[2,2]" "np.exp(np.log(A + B))"
  in
  match r.program with
  | Some found ->
      Alcotest.(check bool) "equivalent" true (Sexec.equivalent env prog found);
      Alcotest.(check bool) "cheaper" true
        (r.cost < Cost.Model.program_cost model env prog)
  | None -> Alcotest.fail "baseline should find the depth-1 optimum"

let test_respects_budget () =
  (* a tiny budget forces the baseline to give up — the scaling failure
     the paper reports *)
  let _, _, r =
    run ~max_programs:500
      "input A : f32[3,4]\ninput B : f32[4,3]" "np.diag(np.dot(A, B))"
  in
  Alcotest.(check bool) "gave up" true r.gave_up

let test_misses_deep_optimum () =
  (* diag_dot's optimum needs 3 operations; a depth-2 enumeration cannot
     express it *)
  let _, _, r =
    run ~max_depth:2 ~max_programs:2_000_000
      "input A : f32[3,4]\ninput B : f32[4,3]" "np.diag(np.dot(A, B))"
  in
  Alcotest.(check bool) "no improvement at depth 2" true (r.program = None)

let test_enumeration_grows () =
  let _, _, r1 =
    run ~max_depth:1 "input A : f32[2,2]\ninput B : f32[2,2]" "A + B"
  in
  let _, _, r2 =
    run ~max_depth:2 "input A : f32[2,2]\ninput B : f32[2,2]" "A + B"
  in
  Alcotest.(check bool) "deeper enumerates more" true
    (r2.enumerated > 4 * r1.enumerated)

let suite =
  [
    Alcotest.test_case "finds shallow optima" `Quick test_finds_shallow_optimum;
    Alcotest.test_case "gives up on budget" `Quick test_respects_budget;
    Alcotest.test_case "misses deep optima" `Slow test_misses_deep_optimum;
    Alcotest.test_case "exponential growth" `Quick test_enumeration_grows;
  ]
