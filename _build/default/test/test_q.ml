(* Rational arithmetic. *)
open Symbolic

let q = Alcotest.testable Q.pp Q.equal
let mk a b = Q.make a b

let test_normalization () =
  Alcotest.check q "6/4 = 3/2" (mk 3 2) (mk 6 4);
  Alcotest.check q "-6/-4 = 3/2" (mk 3 2) (mk (-6) (-4));
  Alcotest.check q "6/-4 = -3/2" (mk (-3) 2) (mk 6 (-4));
  Alcotest.check q "0/7 = 0" Q.zero (mk 0 7);
  Alcotest.(check int) "den of 0 is 1" 1 (Q.den (mk 0 7))

let test_arith () =
  Alcotest.check q "1/2 + 1/3" (mk 5 6) (Q.add Q.half (mk 1 3));
  Alcotest.check q "1/2 - 1/3" (mk 1 6) (Q.sub Q.half (mk 1 3));
  Alcotest.check q "2/3 * 3/4" Q.half (Q.mul (mk 2 3) (mk 3 4));
  Alcotest.check q "(1/2) / (1/4)" (Q.of_int 2) (Q.div Q.half (mk 1 4));
  Alcotest.check q "neg" (mk (-1) 2) (Q.neg Q.half);
  Alcotest.check q "inv" (mk 3 2) (Q.inv (mk 2 3));
  Alcotest.check q "abs" Q.half (Q.abs (mk (-1) 2))

let test_pow () =
  Alcotest.check q "(2/3)^3" (mk 8 27) (Q.pow_int (mk 2 3) 3);
  Alcotest.check q "(2/3)^-2" (mk 9 4) (Q.pow_int (mk 2 3) (-2));
  Alcotest.check q "x^0 = 1" Q.one (Q.pow_int (mk 7 3) 0);
  Alcotest.check q "0^3 = 0" Q.zero (Q.pow_int Q.zero 3)

let test_predicates () =
  Alcotest.(check bool) "is_integer 4/2" true (Q.is_integer (mk 4 2));
  Alcotest.(check bool) "is_integer 1/2" false (Q.is_integer Q.half);
  Alcotest.(check (option int)) "to_int" (Some 2) (Q.to_int (mk 4 2));
  Alcotest.(check (option int)) "to_int 1/2" None (Q.to_int Q.half);
  Alcotest.(check int) "sign neg" (-1) (Q.sign (mk (-3) 7));
  Alcotest.(check int) "compare 1/3 < 1/2" (-1) (Q.compare (mk 1 3) Q.half)

let test_float_conv () =
  Alcotest.(check (float 0.)) "to_float 3/4" 0.75 (Q.to_float (mk 3 4));
  (match Q.of_float 0.25 with
  | Some v -> Alcotest.check q "of_float 0.25" (mk 1 4) v
  | None -> Alcotest.fail "0.25 should convert");
  (match Q.of_float 3.0 with
  | Some v -> Alcotest.check q "of_float 3" (Q.of_int 3) v
  | None -> Alcotest.fail "3.0 should convert");
  Alcotest.(check (option reject)) "of_float pi" None (Q.of_float Float.pi)

let test_div_zero () =
  Alcotest.check_raises "make x 0" Division_by_zero (fun () ->
      ignore (Q.make 1 0))

let arb_q =
  QCheck2.Gen.(
    map2 (fun n d -> mk n d) (int_range (-1000) 1000) (int_range 1 60))

let prop_roundtrip =
  QCheck2.Test.make ~name:"q: (a+b)-b = a" ~count:500
    QCheck2.Gen.(pair arb_q arb_q)
    (fun (a, b) -> Q.equal a (Q.sub (Q.add a b) b))

let prop_mul_div =
  QCheck2.Test.make ~name:"q: (a*b)/b = a (b<>0)" ~count:500
    QCheck2.Gen.(pair arb_q arb_q)
    (fun (a, b) ->
      QCheck2.assume (not (Q.is_zero b));
      Q.equal a (Q.div (Q.mul a b) b))

let prop_compare_consistent =
  QCheck2.Test.make ~name:"q: compare consistent with float order" ~count:500
    QCheck2.Gen.(pair arb_q arb_q)
    (fun (a, b) ->
      let c = Q.compare a b in
      let fc = Float.compare (Q.to_float a) (Q.to_float b) in
      (c = 0 && fc = 0) || (c < 0 && fc < 0) || (c > 0 && fc > 0))

let suite =
  [
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "powers" `Quick test_pow;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "float conversion" `Quick test_float_conv;
    Alcotest.test_case "division by zero" `Quick test_div_zero;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_mul_div;
    QCheck_alcotest.to_alcotest prop_compare_consistent;
  ]
