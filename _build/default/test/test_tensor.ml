(* Dense tensor operations: hand-computed values plus differential
   properties of the float fast paths against the generic functor. *)
module F = Tensor.Ftensor
module G = Tensor.Nd.Make (Tensor.Elt.Float)
module Shape = Tensor.Shape

let ft =
  Alcotest.testable F.pp (fun a b -> F.allclose ~rtol:1e-12 ~atol:1e-12 a b)

let m23 = F.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |]
let m32 = F.of_array [| 3; 2 |] [| 1.; 2.; 3.; 4.; 5.; 6. |]
let v3 = F.of_array [| 3 |] [| 1.; 2.; 3. |]

let test_construction () =
  Alcotest.(check int) "numel" 6 (F.numel m23);
  Alcotest.(check (float 0.)) "get" 5. (F.get m23 [| 1; 1 |]);
  Alcotest.(check (float 0.)) "scalar" 7. (F.to_scalar (F.scalar 7.));
  Alcotest.check_raises "of_array mismatch"
    (Invalid_argument "Nd.of_array: element count does not match shape")
    (fun () -> ignore (F.of_array [| 2; 2 |] [| 1.; 2. |]));
  let t = F.init [| 2; 2 |] (fun i -> float_of_int ((10 * i.(0)) + i.(1))) in
  Alcotest.(check (float 0.)) "init" 11. (F.get t [| 1; 1 |])

let test_elementwise () =
  Alcotest.check ft "add" (F.of_array [| 3 |] [| 2.; 4.; 6. |]) (F.add v3 v3);
  Alcotest.check ft "sub to zero" (F.full [| 3 |] 0.) (F.sub v3 v3);
  Alcotest.check ft "mul" (F.of_array [| 3 |] [| 1.; 4.; 9. |]) (F.mul v3 v3);
  Alcotest.check ft "div" (F.full [| 3 |] 1.) (F.div v3 v3);
  Alcotest.check ft "pow" (F.of_array [| 3 |] [| 1.; 4.; 9. |])
    (F.pow v3 (F.scalar 2.));
  Alcotest.check ft "sqrt" v3 (F.sqrt (F.mul v3 v3));
  Alcotest.check ft "exp log" v3 (F.exp (F.log v3));
  Alcotest.check ft "maximum"
    (F.of_array [| 3 |] [| 2.; 2.; 3. |])
    (F.maximum v3 (F.scalar 2.));
  Alcotest.check ft "less"
    (F.of_array [| 3 |] [| 1.; 0.; 0. |])
    (F.less v3 (F.scalar 2.));
  Alcotest.check ft "where"
    (F.of_array [| 3 |] [| 9.; 2.; 3. |])
    (F.where (F.less v3 (F.scalar 2.)) (F.scalar 9.) v3)

let test_broadcast_ops () =
  (* (2,3) + (3,) broadcasts along rows *)
  Alcotest.check ft "matrix + vector"
    (F.of_array [| 2; 3 |] [| 2.; 4.; 6.; 5.; 7.; 9. |])
    (F.add m23 v3);
  (* (2,1) * (3,) -> (2,3) *)
  let col = F.of_array [| 2; 1 |] [| 10.; 20. |] in
  Alcotest.check ft "outer via broadcast"
    (F.of_array [| 2; 3 |] [| 10.; 20.; 30.; 20.; 40.; 60. |])
    (F.mul col v3)

let test_dot () =
  Alcotest.(check (float 1e-9)) "vec . vec" 14. (F.to_scalar (F.dot v3 v3));
  Alcotest.check ft "mat . vec"
    (F.of_array [| 2 |] [| 14.; 32. |])
    (F.dot m23 v3);
  Alcotest.check ft "mat . mat"
    (F.of_array [| 2; 2 |] [| 22.; 28.; 49.; 64. |])
    (F.dot m23 m32);
  (* 3D dot 2D: contract last with second-to-last *)
  let a = F.init [| 2; 2; 3 |] (fun i ->
      float_of_int ((6 * i.(0)) + (3 * i.(1)) + i.(2) + 1)) in
  let r = F.dot a m32 in
  Alcotest.check (Alcotest.testable Shape.pp Shape.equal) "3D dot shape"
    [| 2; 2; 2 |] (F.shape r);
  Alcotest.(check (float 1e-9)) "3D dot value" 22. (F.get r [| 0; 0; 0 |]);
  Alcotest.check_raises "dot dim mismatch"
    (Invalid_argument "Nd: contraction size mismatch (3 vs 2)") (fun () ->
      ignore (F.dot m23 m23))

let test_tensordot () =
  let r = F.tensordot m23 m23 ~axes_a:[ 0 ] ~axes_b:[ 0 ] in
  (* (3,3): r[i][j] = sum_k m23[k][i]*m23[k][j] *)
  Alcotest.(check (float 1e-9)) "tensordot [0][0]" 17.
    (F.get r [| 0; 0 |]);
  let full = F.tensordot m23 m23 ~axes_a:[ 0; 1 ] ~axes_b:[ 0; 1 ] in
  Alcotest.(check (float 1e-9)) "full contraction" 91. (F.to_scalar full)

let test_reductions () =
  Alcotest.(check (float 0.)) "sum all" 21. (F.to_scalar (F.sum m23));
  Alcotest.check ft "sum axis 0" (F.of_array [| 3 |] [| 5.; 7.; 9. |])
    (F.sum ~axis:0 m23);
  Alcotest.check ft "sum axis 1" (F.of_array [| 2 |] [| 6.; 15. |])
    (F.sum ~axis:1 m23);
  Alcotest.(check (float 0.)) "max all" 6. (F.to_scalar (F.max_reduce m23));
  Alcotest.check ft "max axis 0" (F.of_array [| 3 |] [| 4.; 5.; 6. |])
    (F.max_reduce ~axis:0 m23);
  Alcotest.(check (float 0.)) "trace" 5.
    (F.to_scalar (F.trace (F.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |])))

let test_structure () =
  Alcotest.check ft "transpose"
    (F.of_array [| 3; 2 |] [| 1.; 4.; 2.; 5.; 3.; 6. |])
    (F.transpose m23);
  Alcotest.check ft "double transpose" m23 (F.transpose (F.transpose m23));
  Alcotest.check ft "transpose perm identity" m23
    (F.transpose ~perm:[| 0; 1 |] m23);
  Alcotest.check ft "reshape" (F.of_array [| 3; 2 |] (F.to_array m23))
    (F.reshape m23 [| 3; 2 |]);
  Alcotest.check ft "diag"
    (F.of_array [| 2 |] [| 1.; 5. |])
    (F.diag m23);
  let sq = F.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  Alcotest.check ft "triu" (F.of_array [| 2; 2 |] [| 1.; 2.; 0.; 4. |])
    (F.triu sq);
  Alcotest.check ft "tril" (F.of_array [| 2; 2 |] [| 1.; 0.; 3.; 4. |])
    (F.tril sq);
  Alcotest.check ft "slice0"
    (F.of_array [| 3 |] [| 4.; 5.; 6. |])
    (F.slice0 m23 1)

let test_stack () =
  let s = F.stack [ v3; F.mul v3 (F.scalar 2.) ] ~axis:0 in
  Alcotest.check ft "stack axis 0"
    (F.of_array [| 2; 3 |] [| 1.; 2.; 3.; 2.; 4.; 6. |])
    s;
  let s1 = F.stack [ v3; v3 ] ~axis:1 in
  Alcotest.check (Alcotest.testable Shape.pp Shape.equal) "stack axis 1 shape"
    [| 3; 2 |] (F.shape s1);
  Alcotest.check_raises "stack empty" (Invalid_argument "Nd.stack: empty list")
    (fun () -> ignore (F.stack [] ~axis:0))

(* differential: fast float paths vs generic functor *)
let arb_shape =
  QCheck2.Gen.(map Array.of_list (list_size (int_range 0 3) (int_range 1 4)))

let tensor_of_gen st shape = F.randomize st shape

let to_g t = G.of_array (F.shape t) (F.to_array t)

let agrees a b =
  Shape.equal (F.shape a) (G.shape b)
  && Array.for_all2
       (fun x y -> Float.abs (x -. y) <= 1e-9 *. (1. +. Float.abs y))
       (F.to_array a) (G.to_array b)

let prop_fast_binops =
  QCheck2.Test.make ~name:"ftensor: fast binops agree with generic" ~count:200
    QCheck2.Gen.(triple arb_shape arb_shape (int_range 0 1000))
    (fun (sa, sb, seed) ->
      match Shape.broadcast sa sb with
      | None -> true
      | Some _ ->
          let st = Random.State.make [| seed |] in
          let a = tensor_of_gen st sa and b = tensor_of_gen st sb in
          agrees (F.add a b) (G.add (to_g a) (to_g b))
          && agrees (F.mul a b) (G.mul (to_g a) (to_g b))
          && agrees (F.sub a b) (G.sub (to_g a) (to_g b))
          && agrees (F.div a b) (G.div (to_g a) (to_g b)))

let prop_fast_dot =
  QCheck2.Test.make ~name:"ftensor: fast dot agrees with generic" ~count:200
    QCheck2.Gen.(
      triple (int_range 1 4) (pair (int_range 1 4) (int_range 1 4))
        (int_range 0 1000))
    (fun (m, (k, n), seed) ->
      let st = Random.State.make [| seed |] in
      let a = tensor_of_gen st [| m; k |] in
      let b = tensor_of_gen st [| k; n |] in
      let v = tensor_of_gen st [| k |] in
      agrees (F.dot a b) (G.dot (to_g a) (to_g b))
      && agrees (F.dot a v) (G.dot (to_g a) (to_g v)))

let prop_fast_reductions =
  QCheck2.Test.make ~name:"ftensor: fast sum/transpose agree with generic"
    ~count:200
    QCheck2.Gen.(pair arb_shape (int_range 0 1000))
    (fun (s, seed) ->
      let st = Random.State.make [| seed |] in
      let a = tensor_of_gen st s in
      agrees (F.sum a) (G.sum (to_g a))
      && List.for_all
           (fun ax -> agrees (F.sum ~axis:ax a) (G.sum ~axis:ax (to_g a)))
           (List.init (Shape.rank s) Fun.id)
      &&
      if Shape.rank s = 2 then agrees (F.transpose a) (G.transpose (to_g a))
      else true)

let prop_dot_linear =
  QCheck2.Test.make ~name:"tensor: dot distributes over add" ~count:200
    QCheck2.Gen.(
      triple (int_range 1 4) (int_range 1 4) (int_range 0 1000))
    (fun (m, k, seed) ->
      let st = Random.State.make [| seed |] in
      let a = tensor_of_gen st [| m; k |] in
      let x = tensor_of_gen st [| k |] in
      let y = tensor_of_gen st [| k |] in
      F.allclose ~rtol:1e-9
        (F.dot a (F.add x y))
        (F.add (F.dot a x) (F.dot a y)))

let suite =
  [
    Alcotest.test_case "construction/access" `Quick test_construction;
    Alcotest.test_case "elementwise" `Quick test_elementwise;
    Alcotest.test_case "broadcasting ops" `Quick test_broadcast_ops;
    Alcotest.test_case "dot" `Quick test_dot;
    Alcotest.test_case "tensordot" `Quick test_tensordot;
    Alcotest.test_case "reductions" `Quick test_reductions;
    Alcotest.test_case "structural ops" `Quick test_structure;
    Alcotest.test_case "stack" `Quick test_stack;
    QCheck_alcotest.to_alcotest prop_fast_binops;
    QCheck_alcotest.to_alcotest prop_fast_dot;
    QCheck_alcotest.to_alcotest prop_fast_reductions;
    QCheck_alcotest.to_alcotest prop_dot_linear;
  ]
