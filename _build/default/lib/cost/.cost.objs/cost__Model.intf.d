lib/cost/model.mli: Dsl
