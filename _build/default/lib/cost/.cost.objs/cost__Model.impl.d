lib/cost/model.ml: Array Dsl Float Format Fun Hashtbl List Option Printf Random String Tensor Unix
