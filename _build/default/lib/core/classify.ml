module Ast = Dsl.Ast

type klass =
  | Algebraic_simplification
  | Identity_replacement
  | Redundancy_elimination
  | Strength_reduction
  | Vectorization

let klass_name = function
  | Algebraic_simplification -> "Algebraic Simplification"
  | Identity_replacement -> "Identity Replacement"
  | Redundancy_elimination -> "Redundancy Elimination"
  | Strength_reduction -> "Strength Reduction"
  | Vectorization -> "Vectorization"

let rec has_loop (t : Ast.t) =
  match t with
  | For_stack _ -> true
  | Input _ | Const _ -> false
  | App (_, args) -> List.exists has_loop args

type shape_kind = Layout | Expensive | Contraction | Reduction | Arith

let op_kind (op : Ast.op) =
  match op with
  | Transpose _ | Reshape _ | Stack _ | Full _ -> Layout
  | Pow_op | Exp | Log | Sqrt -> Expensive
  | Dot | Tensordot _ -> Contraction
  | Sum _ | Max _ | Diag | Trace | Triu | Tril -> Reduction
  | Add | Sub | Mul | Div | Maximum | Where | Less -> Arith

let count_kind kind t =
  let rec go acc (t : Ast.t) =
    match t with
    | Input _ | Const _ -> acc
    | App (op, args) ->
        let acc = if op_kind op = kind then acc + 1 else acc in
        List.fold_left go acc args
    | For_stack { body; _ } -> go acc body
  in
  go 0 t

let classify ~original ~optimized =
  if has_loop original && not (has_loop optimized) then Vectorization
  else
    let d kind = count_kind kind original - count_kind kind optimized in
    let layout_dropped = d Layout in
    let expensive_dropped = d Expensive in
    let contraction_delta = count_kind Contraction optimized
                            - count_kind Contraction original in
    let reduction_dropped = d Reduction in
    if
      expensive_dropped > 0
      && count_kind Contraction original = count_kind Contraction optimized
      && reduction_dropped <= 0
    then Strength_reduction
    else if
      layout_dropped > 0 && expensive_dropped <= 0 && reduction_dropped <= 0
      && contraction_delta >= 0
    then Redundancy_elimination
    else if contraction_delta <> 0 || reduction_dropped > 0 then
      Identity_replacement
    else Algebraic_simplification
