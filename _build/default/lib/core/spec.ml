module St = Dsl.Sexec.Stensor
module Expr = Symbolic.Expr
module Shape = Tensor.Shape

type t = St.t

let shape = St.shape
let equal = St.equal

let key t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Shape.to_string (St.shape t));
  Array.iter
    (fun e ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (Expr.to_string e))
    (St.to_array t);
  Buffer.contents buf

let complexity = Dsl.Sexec.complexity

let axis_uniform t axis =
  (* Are all slices along [axis] identical? *)
  let s = St.shape t in
  let n = s.(axis) in
  n > 1
  &&
  let ok = ref true in
  Shape.iter_indices s (fun idx ->
      if !ok && idx.(axis) > 0 then begin
        let first = Array.copy idx in
        first.(axis) <- 0;
        if not (Expr.equal (St.get t idx) (St.get t first)) then ok := false
      end);
  !ok

let shrink_axis t axis =
  let s = St.shape t in
  let s' = Array.copy s in
  s'.(axis) <- 1;
  St.init s' (fun idx -> St.get t idx)

let collapse t =
  let t = ref t in
  let changed = ref true in
  while !changed do
    changed := false;
    let s = St.shape !t in
    for axis = 0 to Shape.rank s - 1 do
      if axis_uniform !t axis then begin
        t := shrink_axis !t axis;
        changed := true
      end
    done
  done;
  (* Drop leading unit axes (broadcast-neutral). *)
  let s = St.shape !t in
  let lead = ref 0 in
  while !lead < Shape.rank s && s.(!lead) = 1 do
    incr lead
  done;
  if !lead = 0 then !t
  else
    St.reshape !t (Array.sub s !lead (Shape.rank s - !lead))

let is_uniform t =
  if St.numel t = 0 then None
  else
    let arr = St.to_array t in
    let first = arr.(0) in
    if Array.for_all (Expr.equal first) arr then Some first else None

let to_const t =
  match is_uniform t with Some e -> Expr.to_const e | None -> None

let scalar e = St.scalar e
let pp = St.pp
