module Ast = Dsl.Ast
module Types = Dsl.Types
module St = Dsl.Sexec.Stensor
module Shape = Tensor.Shape
module Expr = Symbolic.Expr

type config = {
  stub_config : Stub.config;
  invert_config : Invert.config;
  use_bnb : bool;
  use_simplification : bool;
  node_budget : int;
  timeout : float;
  max_depth : int;
  memoize : bool;
}

let default_config =
  {
    stub_config = Stub.default_config;
    invert_config = Invert.default_config;
    use_bnb = true;
    use_simplification = true;
    node_budget = 200_000;
    timeout = 600.;
    max_depth = 12;
    memoize = true;
  }

type stats = {
  nodes : int;
  decomps : int;
  pruned_simp : int;
  pruned_bnb : int;
  elapsed : float;
  timed_out : bool;
  library_size : int;
}

type result = { program : Dsl.Ast.t option; cost : float; stats : stats }

exception Out_of_budget

module Sset = Set.Make (String)

type state = {
  cfg : config;
  model : Cost.Model.t;
  lib : Stub.library;
  started : float;
  mutable cost_min : float;
  mutable nodes : int;
  mutable decomps : int;
  mutable pruned_simp : int;
  mutable pruned_bnb : int;
  memo : (string, Dsl.Ast.t * float) Hashtbl.t;
  (* Specs that failed to synthesize, keyed with the smallest
     accumulated cost at which they failed: the global bound only ever
     tightens, so failing at cost c implies failing at any cost >= c.
     Only recorded when no candidate was suppressed by the path's
     visited set (such failures are path-dependent). *)
  memo_fail : (string, float) Hashtbl.t;
}

let check_budget st =
  if
    st.nodes > st.cfg.node_budget
    || Unix.gettimeofday () -. st.started > st.cfg.timeout
  then raise Out_of_budget

(* Cheapest base-case match for a spec: a library stub (exact shape; or,
   in hole position, one that broadcasts to it), a conjured constant, or
   a [full] of a conjured constant at top level. *)
let match_spec st ~top spec =
  let candidates = ref [] in
  let consider prog cost = candidates := (prog, cost) :: !candidates in
  (match Stub.lookup_exact st.lib spec with
  | Some s -> consider s.Stub.prog s.Stub.cost
  | None -> ());
  (if not top then
     match Stub.lookup_broadcast st.lib spec with
     | Some s -> consider s.Stub.prog s.Stub.cost
     | None -> ());
  (match Spec.to_const spec with
  | Some q ->
      let c = Ast.Const (Symbolic.Q.to_float q) in
      let shape = Spec.shape spec in
      if (not top) || Shape.rank shape = 0 then consider c 0.
      else
        consider
          (Ast.App (Ast.Full shape, [ c ]))
          (st.model.Cost.Model.op_cost (Ast.Full shape) [ Types.scalar_f ])
  | None -> ());
  match List.sort (fun (_, c1) (_, c2) -> compare c1 c2) !candidates with
  | (prog, cost) :: _ -> Some (prog, cost)
  | [] -> None

let structural_tie_op = function
  | Ast.Transpose _ -> true
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow_op | Ast.Maximum
  | Ast.Sqrt | Ast.Exp | Ast.Log | Ast.Dot | Ast.Tensordot _ | Ast.Sum _
  | Ast.Max _ | Ast.Stack _ | Ast.Where | Ast.Less | Ast.Triu | Ast.Tril
  | Ast.Diag | Ast.Trace | Ast.Reshape _ | Ast.Full _ ->
      false

(* A hole whose spec is uniform along some axes will be realized by a
   broadcastable (collapsed) operand — e.g. a residual tensor of all 4s
   becomes the scalar constant 4 — so the operation is costed at the
   collapsed shape. *)
let vt_of_spec spec : Types.vt =
  Types.float_t (Spec.shape (Spec.collapse spec))

let decomp_op_cost st (d : Invert.decomposition) =
  let arg_ts =
    List.map
      (function
        | Invert.P_hole h -> vt_of_spec h
        | Invert.P_conc s -> s.Stub.vt)
      d.parts
  in
  match st.model.Cost.Model.op_cost d.op arg_ts with
  | c -> Some c
  | exception Types.Type_error _ -> None

(* Algorithm 2. *)
let rec dfs st ~level ~visited ~cost_in spec : (Dsl.Ast.t * float) option =
  st.nodes <- st.nodes + 1;
  check_budget st;
  let top = level = 0 in
  (* Base case: direct template match (Algorithm 2 lines 2-8).  A match
     ends the branch only when it is free (an input, constant, or other
     zero-cost leaf) — those cannot be beaten.  An expensive matching
     stub (the library also contains e.g. the original program itself)
     instead seeds the bound while decomposition continues, otherwise
     the search could never improve on a library entry. *)
  match match_spec st ~top spec with
  | Some (prog, cost) when (not top) && cost = 0. -> Some (prog, cost)
  | matched ->
      if level >= st.cfg.max_depth then matched
      else
        let key = Spec.key spec in
        let memo_hit =
          if st.cfg.memoize then Hashtbl.find_opt st.memo key else None
        in
        (match memo_hit with
        | Some (prog, cost) ->
            if (not st.cfg.use_bnb) || cost_in +. cost < st.cost_min then
              Some (prog, cost)
            else None
        | None
          when (not top)
               && matched = None
               &&
               match Hashtbl.find_opt st.memo_fail key with
               | Some c -> cost_in >= c
               | None -> false ->
            None
        | None ->
            let visited = Sset.add key visited in
            let spec_cx = Spec.complexity spec in
            let ds = Invert.decompositions ~config:st.cfg.invert_config st.lib spec in
            st.decomps <- st.decomps + List.length ds;
            (* Keep decompositions that simplify (or structurally tie on
               unvisited specs), annotated with their immediate cost. *)
            let visited_blocked = ref false in
            let viable =
              List.filter_map
                (fun (d : Invert.decomposition) ->
                  let holes = Invert.hole_specs d in
                  let hole_keys = List.map Spec.key holes in
                  if List.exists (fun k -> Sset.mem k visited) hole_keys then begin
                    visited_blocked := true;
                    None
                  end
                  else
                    let simplifies =
                      if not st.cfg.use_simplification then true
                      else
                        let cxs = List.map Spec.complexity holes in
                        let avg =
                          List.fold_left ( +. ) 0. cxs
                          /. float_of_int (max 1 (List.length cxs))
                        in
                        avg < spec_cx
                        || (avg = spec_cx && structural_tie_op d.op)
                    in
                    if not simplifies then begin
                      st.pruned_simp <- st.pruned_simp + 1;
                      None
                    end
                    else
                      match decomp_op_cost st d with
                      | None -> None
                      | Some opc ->
                          Some (d, holes, opc +. Invert.conc_cost d))
                ds
            in
            let viable =
              List.sort (fun (_, _, c1) (_, _, c2) -> compare c1 c2) viable
            in
            let best = ref None in
            let best_cost = ref infinity in
            (match matched with
            | Some (prog, cost) ->
                best := Some prog;
                best_cost := cost;
                (* Only a top-level match is a complete program; deeper
                   in the tree, [cost_in] excludes sibling holes that
                   are still unsynthesized, so tightening the global
                   bound here would over-prune. *)
                if top && st.cfg.use_bnb && cost < st.cost_min then
                  st.cost_min <- cost
            | None -> ());
            List.iter
              (fun (d, holes, immediate) ->
                let cost_total = ref (cost_in +. immediate) in
                (* Local bound: holes cost at least zero, so a sketch
                   whose own operations already reach this node's best
                   candidate (often the direct match) cannot win. *)
                if immediate >= !best_cost then
                  st.pruned_bnb <- st.pruned_bnb + 1
                else if st.cfg.use_bnb && !cost_total >= st.cost_min then
                  st.pruned_bnb <- st.pruned_bnb + 1
                else begin
                  let progs = ref [] in
                  let ok = ref true in
                  List.iter
                    (fun hole ->
                      if !ok then
                        if st.cfg.use_bnb && !cost_total >= st.cost_min then begin
                          st.pruned_bnb <- st.pruned_bnb + 1;
                          ok := false
                        end
                        else
                          match
                            dfs st ~level:(level + 1) ~visited
                              ~cost_in:!cost_total hole
                          with
                          | None -> ok := false
                          | Some (p, c) ->
                              progs := p :: !progs;
                              cost_total := !cost_total +. c)
                    holes;
                  if !ok then begin
                    let local = !cost_total -. cost_in in
                    let prog = Invert.reconstruct d (List.rev !progs) in
                    (* A hole may have been filled by a broadcastable
                       (collapsed) program; that is only legitimate
                       where the assembled sketch still produces the
                       spec's value — ill-typed combinations and shape
                       mismatches are rejected here.  Non-top results
                       may broadcast to the spec (their elementwise
                       consumers restore the full extent). *)
                    let shape_ok =
                      match Types.check (Stub.env st.lib) prog with
                      | Error _ -> false
                      | Ok vt ->
                          let sshape = Spec.shape spec in
                          Shape.equal vt.shape sshape
                          || (not top)
                             &&
                             (match Shape.broadcast vt.shape sshape with
                             | Some s -> Shape.equal s sshape
                             | None -> false)
                    in
                    if not shape_ok then ok := false;
                    if !ok then begin
                    (* Ties (common under the integral FLOPs model, e.g.
                       a zero-cost transpose pair) break toward the
                       syntactically smaller program. *)
                    let better =
                      local < !best_cost
                      || local = !best_cost
                         &&
                         match !best with
                         | Some b -> Ast.size prog < Ast.size b
                         | None -> true
                    in
                    if better then begin
                      best_cost := local;
                      best := Some prog
                    end;
                    if top && st.cfg.use_bnb && !cost_total < st.cost_min then
                      st.cost_min <- !cost_total
                    end
                  end
                end)
              viable;
            (match !best with
            | Some prog ->
                if st.cfg.memoize then
                  Hashtbl.replace st.memo key (prog, !best_cost);
                Some (prog, !best_cost)
            | None ->
                if st.cfg.memoize && not !visited_blocked then
                  (match Hashtbl.find_opt st.memo_fail key with
                  | Some c when c <= cost_in -> ()
                  | _ -> Hashtbl.replace st.memo_fail key cost_in);
                None))

let run ?(config = default_config) ~model ~env ~spec ~initial_bound ~consts () =
  let started = Unix.gettimeofday () in
  let stub_config =
    {
      config.stub_config with
      Stub.deadline = Some (started +. config.timeout);
    }
  in
  let lib = Stub.enumerate ~config:stub_config ~model ~consts env in
  let st =
    {
      cfg = config;
      model;
      lib;
      started;
      cost_min = initial_bound;
      nodes = 0;
      decomps = 0;
      pruned_simp = 0;
      pruned_bnb = 0;
      memo = Hashtbl.create 256;
      memo_fail = Hashtbl.create 256;
    }
  in
  let outcome, timed_out =
    match dfs st ~level:0 ~visited:Sset.empty ~cost_in:0. spec with
    | r -> (r, false)
    | exception Out_of_budget -> (None, true)
  in
  let stats =
    {
      nodes = st.nodes;
      decomps = st.decomps;
      pruned_simp = st.pruned_simp;
      pruned_bnb = st.pruned_bnb;
      elapsed = Unix.gettimeofday () -. started;
      timed_out;
      library_size = Stub.size lib;
    }
  in
  match outcome with
  | Some (program, cost) -> { program = Some program; cost; stats }
  | None -> { program = None; cost = infinity; stats }
