(** A compact e-graph with equality saturation — the TENSAT-style
    optimizer the paper positions itself against (Section VIII).

    The paper argues (a) e-graph optimizers are fundamentally limited by
    the completeness of their rewrite-rule set, and (b) STENSO is
    complementary: the rules it discovers can be fed to such systems.
    This module makes both claims executable: STENSO-mined {!Rules.t}
    values drive saturation, and extraction picks the cheapest
    representative under a {!Cost.Model.t}.

    The implementation is a standard egg-style e-graph: hash-consed
    e-nodes over e-class ids, union-find with congruence repair after
    each batch of rule applications, and bottom-up cost extraction.
    Comprehensions ([For_stack]) are not representable; [add] raises
    [Unsupported] for them. *)

type t
type eclass = int

exception Unsupported of string

val create : Dsl.Types.env -> t
(** An empty e-graph over programs typed by [env] (used to type
    rule-instantiated nodes and to cost extraction candidates). *)

val add : t -> Dsl.Ast.t -> eclass
(** Insert a program, sharing structure with everything already
    present; returns its e-class. *)

val equivalent : t -> eclass -> eclass -> bool
(** Are two e-classes known equal (after the saturation so far)? *)

type saturation_stats = {
  iterations : int;
  applications : int;  (** successful rule instantiations *)
  classes : int;
  nodes : int;
  saturated : bool;  (** reached a fixpoint before hitting limits *)
}

val saturate :
  ?iters:int -> ?node_limit:int -> rules:Rules.t list -> t -> saturation_stats
(** Apply the rule set to a fixpoint or until the limits (defaults: 8
    iterations, 10_000 e-nodes).  Rules are applied left-to-right only;
    include both directions explicitly for bidirectional identities. *)

val extract : t -> model:Cost.Model.t -> eclass -> Dsl.Ast.t
(** Cheapest program in the e-class under the cost model (summed per-op
    costs, computed bottom-up over the e-graph). *)

val stats : t -> saturation_stats
(** Current size counters (iterations/applications refer to the last
    {!saturate} call). *)
