module Ast = Dsl.Ast

type t = {
  lhs : Ast.t;
  rhs : Ast.t;
  metavars : (string * string) list;
}

let metavar_names = [ "X"; "Y"; "Z"; "W"; "V"; "U"; "T"; "S" ]

let generalize original optimized =
  let inputs = Ast.inputs original in
  let metavars =
    List.mapi
      (fun i name ->
        let mv =
          if i < List.length metavar_names then List.nth metavar_names i
          else Printf.sprintf "X%d" i
        in
        (name, mv))
      inputs
  in
  let abstract prog =
    List.fold_left
      (fun p (name, mv) -> Ast.subst_input name (Ast.Input mv) p)
      prog metavars
  in
  { lhs = abstract original; rhs = abstract optimized; metavars }

let specialize rule bindings =
  let instantiate prog =
    List.fold_left
      (fun p (mv, replacement) -> Ast.subst_input mv replacement p)
      prog bindings
  in
  (instantiate rule.lhs, instantiate rule.rhs)

let matches rule prog =
  let exception Mismatch in
  let bindings : (string, Ast.t) Hashtbl.t = Hashtbl.create 8 in
  let is_metavar name = List.exists (fun (_, mv) -> mv = name) rule.metavars in
  let rec go (pat : Ast.t) (t : Ast.t) =
    match (pat, t) with
    | Input mv, _ when is_metavar mv -> (
        match Hashtbl.find_opt bindings mv with
        | Some bound -> if not (Ast.equal bound t) then raise Mismatch
        | None -> Hashtbl.replace bindings mv t)
    | Input a, Input b -> if a <> b then raise Mismatch
    | Const a, Const b -> if a <> b then raise Mismatch
    | App (op1, args1), App (op2, args2) ->
        if op1 <> op2 || List.length args1 <> List.length args2 then
          raise Mismatch;
        List.iter2 go args1 args2
    | For_stack f1, For_stack f2 ->
        (* comprehension variables must coincide for a syntactic match *)
        if f1.var <> f2.var || f1.iter <> f2.iter then raise Mismatch;
        go f1.body f2.body
    | (Input _ | Const _ | App _ | For_stack _), _ -> raise Mismatch
  in
  match go rule.lhs prog with
  | () -> Some (Hashtbl.fold (fun k v acc -> (k, v) :: acc) bindings [])
  | exception Mismatch -> None

let rec apply_once rule prog =
  match matches rule prog with
  | Some bindings -> Some (snd (specialize rule bindings))
  | None ->
      let rewritten = ref false in
      let prog' =
        Ast.map_children
          (fun child ->
            if !rewritten then child
            else
              match apply_once rule child with
              | Some c ->
                  rewritten := true;
                  c
              | None -> child)
          prog
      in
      if !rewritten then Some prog' else None

let apply_fixpoint ?(max_steps = 32) rules prog =
  let step prog =
    List.fold_left
      (fun acc rule ->
        match acc with
        | Some _ -> acc
        | None -> apply_once rule prog)
      None rules
  in
  let rec go n prog =
    if n = 0 then prog
    else match step prog with Some p -> go (n - 1) p | None -> prog
  in
  go max_steps prog

let pp ppf rule = Format.fprintf ppf "%a  ==>  %a" Ast.pp rule.lhs Ast.pp rule.rhs
let to_string rule = Format.asprintf "%a" pp rule
