lib/core/stub.mli: Cost Dsl Spec Symbolic
