lib/core/bottom_up.ml: Cost Dsl Stub Superopt Unix
