lib/core/spec.mli: Dsl Format Symbolic Tensor
