lib/core/search.ml: Cost Dsl Hashtbl Invert List Set Spec String Stub Symbolic Tensor Unix
