lib/core/search.mli: Cost Dsl Invert Spec Stub
