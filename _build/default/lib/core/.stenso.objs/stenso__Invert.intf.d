lib/core/invert.mli: Dsl Format Spec Stub
