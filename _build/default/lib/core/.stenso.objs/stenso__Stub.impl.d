lib/core/stub.ml: Array Cost Dsl Hashtbl List Spec Symbolic Tensor Unix
