lib/core/egraph.mli: Cost Dsl Rules
