lib/core/egraph.ml: Array Cost Dsl Fun Hashtbl List Rules
