lib/core/classify.mli: Dsl
