lib/core/invert.ml: Array Dsl Format Fun Hashtbl List Spec String Stub Symbolic Tensor
