lib/core/superopt.ml: Array Cost Dsl Float List Logs Random Search Tensor
