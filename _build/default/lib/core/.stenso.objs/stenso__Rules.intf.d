lib/core/rules.mli: Dsl Format
