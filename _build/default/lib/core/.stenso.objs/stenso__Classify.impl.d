lib/core/classify.ml: Dsl List
