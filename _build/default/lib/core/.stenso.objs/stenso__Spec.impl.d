lib/core/spec.ml: Array Buffer Dsl Symbolic Tensor
