lib/core/rules.ml: Dsl Format Hashtbl List Printf
