lib/core/superopt.mli: Cost Dsl Search
