lib/core/bottom_up.mli: Cost Dsl
