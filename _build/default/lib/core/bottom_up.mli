(** TASO-style bottom-up enumeration baseline (Section VII-B, Fig. 5).

    The baseline enumerates complete programs from the grammar by
    iterative deepening — full pairwise combination at every level, no
    sketches, no simplification objective, no branch-and-bound — and
    returns the cheapest enumerated program semantically equal to the
    specification.  It scales exponentially with depth and fails on the
    benchmarks whose optimal variants exceed its enumerable depth or its
    program budget, which is exactly the behaviour the paper contrasts
    STENSO against. *)

type result = {
  program : Dsl.Ast.t option;
  cost : float;
  enumerated : int;  (** candidate programs examined (pre-dedup) *)
  distinct : int;  (** semantically distinct programs retained *)
  elapsed : float;
  gave_up : bool;  (** hit the program budget or the timeout *)
  depth_reached : int;
}

val run :
  ?max_depth:int ->
  ?max_programs:int ->
  ?timeout:float ->
  model:Cost.Model.t ->
  env:Dsl.Types.env ->
  Dsl.Ast.t ->
  result
(** Defaults: depth 3, 300k programs, 600 s. *)
