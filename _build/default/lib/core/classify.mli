(** Heuristic classification of discovered rewrites into the paper's
    five transformation classes (Section VII-C, Fig. 6).

    The paper classifies manually; this module reconstructs the same
    grouping from the (original, optimized) pair's structure: loop
    removal is Vectorization, dropping only layout operations is
    Redundancy Elimination, trading transcendental/power operations for
    arithmetic is Strength Reduction, changing the contraction/reduction
    structure is Identity Replacement, and pure term-level rewriting is
    Algebraic Simplification. *)

type klass =
  | Algebraic_simplification
  | Identity_replacement
  | Redundancy_elimination
  | Strength_reduction
  | Vectorization

val klass_name : klass -> string

val classify : original:Dsl.Ast.t -> optimized:Dsl.Ast.t -> klass
