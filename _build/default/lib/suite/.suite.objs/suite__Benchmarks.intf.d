lib/suite/benchmarks.mli: Dsl
