lib/suite/benchmarks.ml: Dsl List
