lib/suite/generator.ml: Array Dsl List Printf Random
