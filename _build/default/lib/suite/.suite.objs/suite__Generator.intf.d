lib/suite/generator.mli: Dsl
