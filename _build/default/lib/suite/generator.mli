(** Random well-typed DSL program generation.

    Used by the robustness soak tests (synthesize arbitrary programs and
    verify every outcome) and by the scalability study in the bench
    harness (synthesis effort as a function of expression size —
    Section VII-E discusses exactly this trade-off).  Generation is
    seeded and deterministic. *)

type config = {
  num_inputs : int;  (** tensor inputs named [I0], [I1], ... *)
  dims : int list;  (** candidate dimension sizes *)
  max_rank : int;  (** 0-2 *)
  size : int;  (** number of operation applications *)
  allow_contractions : bool;
  allow_transcendentals : bool;  (** sqrt/exp/log *)
  seed : int;
}

val default : config

val generate : config -> Dsl.Types.env * Dsl.Ast.t
(** A program that type-checks under the returned environment and uses
    every input at least once where possible. *)

val generate_many : config -> int -> (Dsl.Types.env * Dsl.Ast.t) list
(** [generate_many cfg n] varies the seed. *)
