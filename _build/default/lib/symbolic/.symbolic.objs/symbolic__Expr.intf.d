lib/symbolic/expr.mli: Format Hashtbl Q Sym
