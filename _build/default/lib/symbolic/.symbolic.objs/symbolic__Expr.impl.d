lib/symbolic/expr.ml: Float Format Hashtbl List Q Stdlib String Sym
