lib/symbolic/sym.ml: Array Format Map Set Stdlib String
