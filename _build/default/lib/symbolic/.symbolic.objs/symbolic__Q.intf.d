lib/symbolic/q.mli: Format
