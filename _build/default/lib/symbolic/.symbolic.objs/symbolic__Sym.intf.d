lib/symbolic/sym.mli: Format Map Set
