lib/symbolic/q.ml: Float Format Stdlib
