type t = { base : string; indices : int array }

let make base indices = { base; indices }
let scalar base = { base; indices = [||] }
let base t = t.base

let compare a b =
  let c = String.compare a.base b.base in
  if c <> 0 then c else Stdlib.compare a.indices b.indices

let equal a b = compare a b = 0

let pp ppf t =
  if Array.length t.indices = 0 then Format.pp_print_string ppf t.base
  else
    Format.fprintf ppf "%s[%s]" t.base
      (String.concat ","
         (Array.to_list (Array.map string_of_int t.indices)))

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
