(** Normalized symbolic expressions — the SymPy substitute.

    Every constructor function returns a canonically normalized value, so
    that algebraic equality of the fragment we care about coincides with
    structural equality ({!equal}).  The normal form is a polynomial over
    {e atoms} (symbols, transcendental applications, and non-expandable
    powers) with rational coefficients:

    - sums are flattened, like terms combined, terms sorted;
    - products are flattened, equal bases merged by adding exponents,
      integer powers of sums expanded (up to a size cap), factors sorted;
    - [pow] applies [(x*y)^e = x^e y^e] and [(x^a)^b = x^(ab)], which is
      sound because {e all symbols are assumed positive} (the paper runs
      SymPy with positive symbols for the same reason);
    - [exp]/[log] are mutual inverses and distribute over sums/products.

    Equality is therefore complete for polynomial/rational expressions
    with syntactically identical denominator atoms, and sound on the
    engine's assumption domain: [equal a b = true] implies the two
    expressions agree whenever every subexpression evaluates to a
    positive real (in particular, on positive inputs combined with
    positivity-preserving operations).  [log] of a value below one
    leaves that domain; rules that are sign-agnostic (such as
    [exp (log x) = x] on positive [x]) remain valid regardless. *)

type t = private
  | Rat of Q.t
  | Var of Sym.t
  | Add of t list  (** >= 2 sorted combined terms *)
  | Mul of t list  (** optional leading rational, >= 2 entries, sorted distinct bases *)
  | Pow of t * t
  | App of fn * t list

and fn = Exp | Log | Max | Less | Where

(** {1 Constructors} *)

val rat : Q.t -> t
val int : int -> t
val zero : t
val one : t
val var : Sym.t -> t
val sym : string -> t
(** [sym name] is a scalar symbol variable. *)

val add : t list -> t
val sub : t -> t -> t
val mul : t list -> t
val neg : t -> t
val div : t -> t -> t
val pow : t -> t -> t
val sqrt : t -> t
val exp : t -> t
val log : t -> t
val max2 : t -> t -> t
val less : t -> t -> t
val where : t -> t -> t -> t

(** {1 Classification and access} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_zero : t -> bool
val is_one : t -> bool
val to_const : t -> Q.t option
(** [to_const e] is [Some q] when [e] is the literal rational [q]. *)

val terms : t -> t list
(** Summands of a sum, or the singleton list. *)

val split_coeff : t -> Q.t * t
(** [split_coeff t] writes a term as [coeff * rest] with [rest] carrying
    no leading rational ([rest] is [one] when [t] is a constant). *)

val factors : t -> t list
(** Factors of a product (including any rational coefficient), or the
    singleton list. *)

val as_base_exp : t -> t * t
(** [as_base_exp f] views a factor as [(base, exponent)]; the exponent of
    a non-power is [one]. *)

val vars : t -> Sym.Set.t
(** All symbols occurring in the expression. *)

val var_bases : t -> (string, unit) Hashtbl.t -> unit
(** Accumulate the distinct input-tensor names occurring in [t]. *)

val base_names : t -> string list
(** Sorted distinct input-tensor names occurring in the expression. *)

val size : t -> int
(** Number of nodes — a syntactic complexity measure. *)

(** {1 Algebraic queries used by the synthesis solver} *)

val div_exact : t -> t -> t option
(** [div_exact a b] is [Some (a/b)] when the quotient introduces no new
    denominator atom (i.e. the division is exact as far as the normal
    form can tell), and [None] otherwise. *)

val linear_coeff : t -> Sym.t -> (t * t) option
(** [linear_coeff e x] decomposes [e = c*x + r] where neither [c] nor [r]
    mentions [x]; [None] when [e] is not linear in [x]. *)

val root_exact : t -> Q.t -> t option
(** [root_exact e q] is [Some r] with [r^q = e] when the [1/q]-th power
    of [e] normalizes without leaving fractional powers that were not
    already present in [e]. Used to invert [power] sketches. *)

(** {1 Evaluation and substitution} *)

val eval : (Sym.t -> float) -> t -> float
(** Numeric evaluation; [Less] yields 1.0/0.0, [Where] selects on
    nonzero. Used by property tests to validate normalization. *)

val subst : (Sym.t -> t option) -> t -> t
(** Capture-free substitution followed by re-normalization. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
