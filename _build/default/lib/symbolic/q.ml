type t = { num : int; den : int }

exception Overflow

(* Checked native-int arithmetic: coefficient blow-ups (e.g. inside
   polynomial long division with a hostile term order) must fail loudly
   rather than wrap around and corrupt the normal form. *)
let mul_ov a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / a <> b then raise Overflow else p

let add_ov a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let half = make 1 2
let num q = q.num
let den q = q.den
let add a b =
  make
    (add_ov (mul_ov a.num b.den) (mul_ov b.num a.den))
    (mul_ov a.den b.den)

let sub a b =
  make
    (add_ov (mul_ov a.num b.den) (- mul_ov b.num a.den))
    (mul_ov a.den b.den)

let mul a b = make (mul_ov a.num b.num) (mul_ov a.den b.den)
let div a b = make (mul_ov a.num b.den) (mul_ov a.den b.num)
let min_int_guard a = if a.num = min_int then raise Overflow else a

let neg a =
  let a = min_int_guard a in
  { a with num = -a.num }

let inv a = make a.den a.num
let abs a = { (min_int_guard a) with num = Stdlib.abs a.num }

let pow_int q n =
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n asr 1)
    else go acc (mul base base) (n asr 1)
  in
  if n >= 0 then go one q n else go one (inv q) (-n)

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let sign a = Stdlib.compare a.num 0
let is_zero a = a.num = 0
let is_one a = a.num = 1 && a.den = 1
let is_integer a = a.den = 1
let to_int a = if a.den = 1 then Some a.num else None
let to_float a = float_of_int a.num /. float_of_int a.den

let of_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Some (of_int (int_of_float f))
  else
    (* try small denominators; covers 0.5, 0.25, 1.5 etc. *)
    let rec try_den d =
      if d > 64 then None
      else
        let scaled = f *. float_of_int d in
        if Float.is_integer scaled && Float.abs scaled < 1e15 then
          Some (make (int_of_float scaled) d)
        else try_den (d * 2)
    in
    try_den 2

let pp ppf q =
  if q.den = 1 then Format.fprintf ppf "%d" q.num
  else Format.fprintf ppf "%d/%d" q.num q.den

let to_string q = Format.asprintf "%a" pp q
