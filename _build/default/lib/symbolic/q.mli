(** Arbitrary rationals over native [int] numerator/denominator.

    The symbolic engine only ever manipulates small coefficients and
    exponents (benchmark expressions have at most six operations and
    constants like 2, 3, 1/2), so 63-bit components are ample.  All
    values are kept normalized: positive denominator, gcd 1. *)

type t = private { num : int; den : int }

exception Overflow
(** Raised when an operation's exact result does not fit native ints
    (the symbolic engine treats it as "cannot normalize"). *)

val make : int -> int -> t
(** [make n d] is the normalized rational n/d. Raises [Division_by_zero]
    if [d = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t
val half : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val abs : t -> t

val pow_int : t -> int -> t
(** [pow_int q n] is [q] raised to the (possibly negative) integer [n]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool
val is_integer : t -> bool

val to_int : t -> int option
(** [to_int q] is [Some n] when [q] is the integer [n]. *)

val to_float : t -> float

val of_float : float -> t option
(** Exact conversion for floats that are small dyadic rationals or
    integers; [None] for anything that does not round-trip. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
