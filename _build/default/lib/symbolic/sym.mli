(** Scalar symbols: a tensor-input name plus the element's index vector.

    Symbolic execution populates each input tensor with one symbol per
    element, e.g. the (0,1) element of input [A] is the symbol [A_{0,1}].
    All symbols are assumed positive (mirroring the paper's use of SymPy
    with positive assumptions), which licenses the power/sqrt/log
    simplification rules in {!Expr}. *)

type t = { base : string; indices : int array }

val make : string -> int array -> t
val scalar : string -> t
(** A rank-0 input's single symbol. *)

val base : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
