lib/dsl/ast.ml: Array Float Format List Set Stdlib String
