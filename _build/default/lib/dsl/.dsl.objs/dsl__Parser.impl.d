lib/dsl/parser.ml: Array Ast Float Format List String Types
