lib/dsl/sexec.ml: Array Ast Expr Float List Q Sym Symbolic Tensor Types
