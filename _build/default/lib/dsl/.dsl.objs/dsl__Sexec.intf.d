lib/dsl/sexec.mli: Ast Symbolic Tensor Types
