lib/dsl/parser.mli: Ast Types
