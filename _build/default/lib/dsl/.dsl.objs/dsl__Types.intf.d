lib/dsl/types.mli: Ast Format Tensor
