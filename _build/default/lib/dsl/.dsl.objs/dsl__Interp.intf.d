lib/dsl/interp.mli: Ast Random Tensor Types
