lib/dsl/types.ml: Array Ast Format Fun List Tensor
