lib/dsl/interp.ml: Array Ast List Random Tensor Types
