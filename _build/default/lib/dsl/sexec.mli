(** Symbolic execution of DSL programs.

    Programs run on tensors of normalized {!Symbolic.Expr} values; an
    input named [A] of shape (2,3) is populated with the six positive
    symbols [A[i,j]].  The result — a symbolic tensor — is the program's
    specification [Φ]: it captures the computation's semantics
    independently of syntactic form, exactly as the paper obtains its
    target specification via SymPy (Section IV-A). *)

module Stensor : Tensor.Nd.S with type elt = Symbolic.Expr.t
(** Tensors of symbolic expressions. *)

exception Eval_error of string

val input_tensor : string -> Tensor.Shape.t -> Stensor.t
(** Fresh symbolic input: element [idx] is the symbol [name[idx]]. *)

val sym_env : Types.env -> (string * Stensor.t) list
(** Symbolic inputs for a whole typing environment. *)

val exec : (string -> Stensor.t) -> Ast.t -> Stensor.t

val apply_op : Ast.op -> Stensor.t list -> Stensor.t
(** Apply a single operation to symbolic arguments (used by the
    synthesizer to execute stubs and reconstruct sketch outputs). *)

val exec_env : Types.env -> Ast.t -> Stensor.t
(** [exec_env env t] symbolically executes [t] on {!sym_env}[ env]. *)

val equivalent : Types.env -> Ast.t -> Ast.t -> bool
(** Symbolic equivalence of two programs over the same inputs: equal
    shapes and structurally equal normalized elements. Sound (never
    claims equivalence wrongly on positive inputs); complete for the
    algebraic fragment handled by {!Symbolic.Expr}. *)

val complexity : Stensor.t -> float
(** The paper's specification-complexity metric, Section V-A:
    [|var(Φ)| * density(Φ)] where [|var|] is the mean per-element count
    of distinct symbols and density the fraction of nonzero elements. *)

val density : Stensor.t -> float

val eval_concrete :
  (Symbolic.Sym.t -> float) -> Stensor.t -> Tensor.Ftensor.t
(** Numeric evaluation of a symbolic tensor under a symbol assignment —
    the bridge used by property tests to validate symbolic execution
    against the concrete interpreter. *)
