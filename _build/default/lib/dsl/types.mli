(** Shape- and dtype-checking for DSL programs.

    Mirrors the typing discipline of the paper's grammar (Fig. 3): [F]
    float tensors, [B] boolean tensors, scalars as rank-0 tensors, and
    shape/axis attributes checked statically.  The checker both rejects
    ill-formed programs and computes every subterm's output shape, which
    the cost models and the synthesizer's stub enumeration rely on. *)

type dtype = Float | Bool

type vt = { dtype : dtype; shape : Tensor.Shape.t }
(** A value type: element dtype plus concrete shape. *)

exception Type_error of string

val scalar_f : vt
val float_t : Tensor.Shape.t -> vt
val bool_t : Tensor.Shape.t -> vt
val equal_vt : vt -> vt -> bool
val pp_vt : Format.formatter -> vt -> unit

type env = (string * vt) list
(** Input typing environment. *)

val infer_op : Ast.op -> vt list -> vt
(** Result type of one operation applied to argument types; raises
    {!Type_error} when inapplicable. *)

val infer : env -> Ast.t -> vt
(** Type of a whole program; raises {!Type_error} (also on unbound
    inputs). *)

val check : env -> Ast.t -> (vt, string) result
(** Non-raising wrapper around {!infer}. *)

val well_typed : env -> Ast.t -> bool
