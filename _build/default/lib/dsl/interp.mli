(** Concrete (eager) evaluation of DSL programs on float tensors.

    Booleans are represented as 0/1 tensors, the convention of the
    {!Tensor} substrate.  Evaluation mirrors NumPy eager semantics:
    one pass per operation, no rewriting. *)

exception Eval_error of string

val eval : (string -> Tensor.Ftensor.t) -> Ast.t -> Tensor.Ftensor.t
(** [eval env t] raises {!Eval_error} on unbound inputs and lets the
    tensor substrate raise [Invalid_argument] on shape errors (which
    type-checked programs never trigger). *)

val eval_alist : (string * Tensor.Ftensor.t) list -> Ast.t -> Tensor.Ftensor.t

val apply_op : Ast.op -> Tensor.Ftensor.t list -> Tensor.Ftensor.t
(** Apply a single operation to already-evaluated arguments (used by the
    measured cost model to profile operations in isolation). *)

val random_inputs :
  ?lo:float -> ?hi:float -> Random.State.t -> Types.env ->
  (string * Tensor.Ftensor.t) list
(** Fresh random concrete inputs matching a typing environment (booleans
    are sampled as 0/1). *)
