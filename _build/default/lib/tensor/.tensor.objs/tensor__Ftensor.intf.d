lib/tensor/ftensor.mli: Nd Random Shape
