lib/tensor/elt.ml: Float Format
