lib/tensor/nd.ml: Array Elt Format Fun List Printf Shape
