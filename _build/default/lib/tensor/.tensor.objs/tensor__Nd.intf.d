lib/tensor/nd.mli: Elt Format Shape
