lib/tensor/ftensor.ml: Array Elt Float Nd Random Shape
