type t = int array

let scalar = [||]
let rank = Array.length
let numel s = Array.fold_left ( * ) 1 s
let equal (a : t) (b : t) = a = b

let validate s =
  Array.iter
    (fun d ->
      if d < 0 then
        invalid_arg (Printf.sprintf "Shape.validate: negative dimension %d" d))
    s

let strides s =
  let n = rank s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

let broadcast a b =
  let ra = rank a and rb = rank b in
  let r = max ra rb in
  let out = Array.make r 0 in
  let ok = ref true in
  for i = 0 to r - 1 do
    let da = if i < r - ra then 1 else a.(i - (r - ra)) in
    let db = if i < r - rb then 1 else b.(i - (r - rb)) in
    if da = db || da = 1 || db = 1 then out.(i) <- max da db
    else ok := false
  done;
  if !ok then Some out else None

let broadcast_exn a b =
  match broadcast a b with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Shape.broadcast: incompatible shapes %s and %s"
           (String.concat "x" (Array.to_list (Array.map string_of_int a)))
           (String.concat "x" (Array.to_list (Array.map string_of_int b))))

let iter_indices s f =
  let n = rank s in
  if numel s = 0 then ()
  else if n = 0 then f [||]
  else
    let idx = Array.make n 0 in
    let rec next () =
      f idx;
      let rec carry i =
        if i < 0 then false
        else begin
          idx.(i) <- idx.(i) + 1;
          if idx.(i) < s.(i) then true
          else begin
            idx.(i) <- 0;
            carry (i - 1)
          end
        end
      in
      if carry (n - 1) then next ()
    in
    next ()

let offset s idx =
  if Array.length idx <> rank s then
    invalid_arg "Shape.offset: index rank mismatch";
  let st = strides s in
  let o = ref 0 in
  for i = 0 to rank s - 1 do
    if idx.(i) < 0 || idx.(i) >= s.(i) then
      invalid_arg "Shape.offset: index out of bounds";
    o := !o + (idx.(i) * st.(i))
  done;
  !o

let broadcast_offset s idx =
  let r = rank s and ri = Array.length idx in
  let st = strides s in
  let o = ref 0 in
  for i = 0 to r - 1 do
    let v = idx.(ri - r + i) in
    let v = if s.(i) = 1 then 0 else v in
    o := !o + (v * st.(i))
  done;
  !o

let remove_axis s axis =
  if axis < 0 || axis >= rank s then invalid_arg "Shape.remove_axis";
  Array.init (rank s - 1) (fun i -> if i < axis then s.(i) else s.(i + 1))

let insert_axis s axis n =
  if axis < 0 || axis > rank s then invalid_arg "Shape.insert_axis";
  Array.init (rank s + 1) (fun i ->
      if i < axis then s.(i) else if i = axis then n else s.(i - 1))

let transpose s perm =
  let n = rank s in
  if Array.length perm <> n then invalid_arg "Shape.transpose: rank mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then
        invalid_arg "Shape.transpose: not a permutation";
      seen.(p) <- true)
    perm;
  Array.map (fun p -> s.(p)) perm

let reverse_perm n = Array.init n (fun i -> n - 1 - i)

let invert_perm perm =
  let n = Array.length perm in
  let inv = Array.make n 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  inv

let normalize_axis s axis =
  let n = rank s in
  let a = if axis < 0 then axis + n else axis in
  if a < 0 || a >= n then
    invalid_arg (Printf.sprintf "axis %d out of range for rank %d" axis n);
  a

let pp ppf s =
  Format.fprintf ppf "(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int s)))

let to_string s = Format.asprintf "%a" pp s
