(** Tensor shapes and NumPy-style broadcasting.

    A shape is an array of nonnegative dimension sizes; the empty array
    is the shape of a rank-0 (scalar) tensor.  All layouts are row-major
    (C order). *)

type t = int array

val scalar : t
val rank : t -> int
val numel : t -> int
val equal : t -> t -> bool
val validate : t -> unit
(** Raises [Invalid_argument] on negative dimensions. *)

val strides : t -> int array
(** Row-major strides in elements. *)

val broadcast : t -> t -> t option
(** NumPy broadcasting of two shapes; [None] when incompatible. *)

val broadcast_exn : t -> t -> t

val iter_indices : t -> (int array -> unit) -> unit
(** Iterate all index vectors in row-major order.  The callback receives
    the same mutable buffer each time; copy it if you keep it. *)

val offset : t -> int array -> int
(** Row-major linear offset of an index vector; bounds-checked. *)

val broadcast_offset : t -> int array -> int
(** Offset of an output index vector into a tensor of this (possibly
    smaller or size-1-padded) shape, per broadcasting rules: missing
    leading axes are ignored and size-1 axes are pinned to 0. *)

val remove_axis : t -> int -> t
val insert_axis : t -> int -> int -> t
(** [insert_axis shape axis n] inserts a dimension of size [n]. *)

val transpose : t -> int array -> t
(** Permute dimensions; the permutation must be a bijection. *)

val reverse_perm : int -> int array
(** The dimension-reversing permutation of the given rank (NumPy's
    default transpose). *)

val invert_perm : int array -> int array
val normalize_axis : t -> int -> int
(** Resolve a possibly negative axis index; raises on out-of-range. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
