(** Element domains for the generic tensor.

    The same n-dimensional machinery executes both concretely (floats)
    and symbolically (normalized {!Symbolic.Expr} values); only the
    scalar operations differ.  Booleans are encoded as 0/1 elements, the
    NumPy convention for masks. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_float : float -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val pow : t -> t -> t
  val neg : t -> t
  val sqrt : t -> t
  val exp : t -> t
  val log : t -> t
  val max : t -> t -> t
  val less : t -> t -> t
  (** 1 when [a < b], else 0. *)

  val where : t -> t -> t -> t
  (** [where c a b] selects [a] where [c] is true (nonzero). *)

  val is_zero : t -> bool
  (** Structural zero test (used for density / triangular masking). *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Float : S with type t = float = struct
  type t = float

  let zero = 0.
  let one = 1.
  let of_float f = f
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let pow = Float.pow
  let neg = Float.neg
  let sqrt = Float.sqrt
  let exp = Float.exp
  let log = Float.log
  let max = Float.max
  let less a b = if a < b then 1. else 0.
  let where c a b = if c <> 0. then a else b
  let is_zero f = f = 0.
  let equal = Float.equal
  let pp ppf f = Format.fprintf ppf "%g" f
end
