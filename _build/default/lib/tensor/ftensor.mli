(** Concrete float tensors plus numeric-only conveniences. *)

include Nd.S with type elt = float

val randomize : ?lo:float -> ?hi:float -> Random.State.t -> Shape.t -> t
(** Uniform random tensor; defaults to the positive range [0.5, 1.5] so
    that [log]/[sqrt]/division benchmarks stay well-defined. *)

val allclose : ?rtol:float -> ?atol:float -> t -> t -> bool
(** NumPy-style approximate equality: |a-b| <= atol + rtol*|b|. *)

val of_float : float -> t
(** Rank-0 tensor. *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
