module Ast = Dsl.Ast
module Types = Dsl.Types
module Shape = Tensor.Shape

type t = { name : string; rules : Rewrite.rule list; compiled : bool }

let numpy = { name = "NumPy"; rules = []; compiled = false }
let jax = { name = "JAX"; rules = Rewrite.xla_rules; compiled = true }

let torch_inductor =
  { name = "PyTorch"; rules = Rewrite.inductor_rules; compiled = true }

let all = [ numpy; jax; torch_inductor ]
let optimize fw prog = Rewrite.rewrite_fixpoint fw.rules prog

let is_elementwise (op : Ast.op) =
  match op with
  | Add | Sub | Mul | Div | Pow_op | Maximum | Sqrt | Exp | Log | Where
  | Less ->
      true
  | Dot | Tensordot _ | Transpose _ | Sum _ | Max _ | Stack _ | Triu | Tril
  | Diag | Trace | Reshape _ | Full _ ->
      false

(* Per-element arithmetic weight: transcendental and power ops cost
   many FLOPs each, which is what distinguishes power(A,2) from A*A. *)
let elementwise_weight (op : Ast.op) =
  match op with
  | Pow_op -> 40.
  | Exp | Log -> 32.
  | Sqrt -> 8.
  | Add | Sub | Mul | Div | Maximum | Where | Less -> 1.
  | Dot | Tensordot _ | Transpose _ | Sum _ | Max _ | Stack _ | Triu | Tril
  | Diag | Trace | Reshape _ | Full _ ->
      1.

let numel (vt : Types.vt) = float_of_int (Shape.numel vt.shape)

(* (flops, bytes) of one operation, excluding fusion effects. *)
let op_profile (op : Ast.op) (args : Types.vt list) (out : Types.vt) =
  let in_bytes =
    8. *. List.fold_left (fun acc a -> acc +. numel a) 0. args
  in
  let out_bytes = 8. *. numel out in
  match op with
  | Add | Sub | Mul | Div | Pow_op | Maximum | Sqrt | Exp | Log | Where
  | Less ->
      (elementwise_weight op *. numel out, in_bytes +. out_bytes)
  | Dot | Tensordot _ ->
      (Cost.Model.flop_count op args, in_bytes +. out_bytes)
  | Sum _ | Max _ ->
      (List.fold_left (fun acc a -> acc +. numel a) 0. args,
       in_bytes +. out_bytes)
  | Transpose _ -> (0., in_bytes +. out_bytes)
  | Stack _ -> (0., in_bytes +. out_bytes)
  | Triu | Tril -> (numel out, in_bytes +. out_bytes)
  | Diag -> (0., 2. *. out_bytes)
  | Trace -> (
      match args with
      | [ a ] ->
          let n = float_of_int (min a.shape.(0) a.shape.(1)) in
          (n, 8. *. (n +. 1.))
      | _ -> (0., out_bytes))
  | Reshape _ -> (0., 0.) (* metadata-only view *)
  | Full _ -> (0., out_bytes)

let roofline (p : Platform.t) flops bytes =
  Float.max (flops /. p.flops_per_sec) (bytes /. p.mem_bw)

(* ------------------------------------------------------------------ *)
(* Eager (NumPy) execution model                                       *)
(* ------------------------------------------------------------------ *)

(* Eager values carry a "transposed view" flag: NumPy's transpose is a
   zero-copy view, but a BLAS contraction consuming a non-contiguous
   view first copies it to contiguous storage. *)
let rec eager_time (p : Platform.t) env (t : Ast.t) : Types.vt * bool * float
    =
  match t with
  | Input name -> (
      match List.assoc_opt name env with
      | Some vt -> (vt, false, 0.)
      | None -> raise (Types.Type_error ("unbound input " ^ name)))
  | Const _ -> (Types.scalar_f, false, 0.)
  | App (op, args) ->
      let results = List.map (eager_time p env) args in
      let arg_ts = List.map (fun (vt, _, _) -> vt) results in
      let arg_time = List.fold_left (fun acc (_, _, c) -> acc +. c) 0. results in
      let out = Types.infer_op op arg_ts in
      (* Memory traffic counts each distinct operand once: multiply(A, A)
         streams A a single time through cache. *)
      let dup_bytes =
        let seen = ref [] in
        List.fold_left2
          (fun acc arg vt ->
            if List.exists (Ast.equal arg) !seen then acc +. (8. *. numel vt)
            else begin
              seen := arg :: !seen;
              acc
            end)
          0. args arg_ts
      in
      (match op with
      | Transpose _ | Reshape _ ->
          (* views: dispatch only *)
          let viewed = match op with Transpose _ -> true | _ -> false in
          (out, viewed, arg_time +. p.dispatch_overhead)
      | Dot | Tensordot _ ->
          let flops, bytes = op_profile op arg_ts out in
          (* BLAS copies non-contiguous (transposed-view) operands to
             contiguous storage in a separate pass before contracting. *)
          let copy_time =
            List.fold_left
              (fun acc (vt, viewed, _) ->
                if viewed then acc +. (16. *. numel vt /. p.mem_bw) else acc)
              0. results
          in
          ( out,
            false,
            arg_time +. p.dispatch_overhead +. copy_time
            +. roofline p flops (bytes -. dup_bytes) )
      | Add | Sub | Mul | Div | Pow_op | Maximum | Sqrt | Exp | Log | Where
      | Less | Sum _ | Max _ | Stack _ | Triu | Tril | Diag | Trace | Full _
        ->
          let flops, bytes = op_profile op arg_ts out in
          ( out,
            false,
            arg_time +. p.dispatch_overhead
            +. roofline p flops (bytes -. dup_bytes) ))
  | For_stack { var; iter; body } -> (
      match List.assoc_opt iter env with
      | None -> raise (Types.Type_error ("unbound input " ^ iter))
      | Some it ->
          let n = it.shape.(0) in
          let slice : Types.vt =
            { it with shape = Shape.remove_axis it.shape 0 }
          in
          let body_t, _, body_time = eager_time p ((var, slice) :: env) body in
          let out : Types.vt =
            { body_t with shape = Shape.insert_axis body_t.shape 0 n }
          in
          (* Python loop: per-iteration interpreter overhead (indexing,
             loop bookkeeping) on top of the body, then one stack. *)
          let per_iter = body_time +. (2. *. p.dispatch_overhead) in
          let stack_bytes = 16. *. numel out in
          ( out,
            false,
            (float_of_int n *. per_iter)
            +. p.dispatch_overhead
            +. roofline p 0. stack_bytes ))

(* ------------------------------------------------------------------ *)
(* Compiled (JAX / Inductor) execution model                           *)
(* ------------------------------------------------------------------ *)

(* Fused-graph cost with CSE: each distinct subterm is computed once;
   maximal elementwise regions form single kernels whose memory traffic
   only crosses the region boundary. *)
let compiled_time (p : Platform.t) env0 (prog : Ast.t) : float =
  let counted : (Ast.t, Types.vt) Hashtbl.t = Hashtbl.create 64 in
  let infer env t = Types.infer env t in
  (* Collect the maximal elementwise region rooted at [t]: returns
     (total flops, boundary nodes). Region nodes are marked counted. *)
  let rec region env t (flops, boundary) =
    match t with
    | Ast.App (op, args) when is_elementwise op && not (Hashtbl.mem counted t)
      ->
        let vt = infer env t in
        Hashtbl.replace counted t vt;
        let flops = flops +. (elementwise_weight op *. numel vt) in
        List.fold_left (fun acc a -> region env a acc) (flops, boundary) args
    | _ ->
        ( flops,
          if List.exists (Ast.equal t) boundary then boundary
          else t :: boundary )
  in
  let rec node_cost env (t : Ast.t) : float =
    if Hashtbl.mem counted t then 0.
    else
      match t with
      | Input _ | Const _ ->
          Hashtbl.replace counted t (infer env t);
          0.
      | App (op, _args) when is_elementwise op ->
          let out = infer env t in
          let flops, boundary = region env t (0., []) in
          let boundary_cost =
            List.fold_left (fun acc b -> acc +. node_cost env b) 0. boundary
          in
          let boundary_bytes =
            8.
            *. List.fold_left
                 (fun acc b ->
                   match b with
                   | Ast.Const _ -> acc
                   | _ -> acc +. numel (infer env b))
                 0. boundary
          in
          boundary_cost +. p.kernel_overhead
          +. roofline p flops (boundary_bytes +. (8. *. numel out))
      | App (((Transpose _ | Reshape _) as op), [ x ]) ->
          (* fused into consumers / metadata-only *)
          let out = infer env t in
          Hashtbl.replace counted t out;
          ignore op;
          node_cost env x
      | App (op, args) ->
          let arg_cost = List.fold_left (fun acc a -> acc +. node_cost env a) 0. args in
          let arg_ts = List.map (infer env) args in
          let out = infer env t in
          Hashtbl.replace counted t out;
          let flops, bytes = op_profile op arg_ts out in
          arg_cost +. p.kernel_overhead +. roofline p flops bytes
      | For_stack { var; iter; body } -> (
          match List.assoc_opt iter env with
          | None -> raise (Types.Type_error ("unbound input " ^ iter))
          | Some it ->
              let n = it.shape.(0) in
              let slice : Types.vt =
                { it with shape = Shape.remove_axis it.shape 0 }
              in
              (* The trace unrolls the loop: n slice computations, each
                 its own kernels, then a stack. *)
              let env' = (var, slice) :: env in
              let body_cost =
                let saved = Hashtbl.copy counted in
                let c = node_cost env' body in
                Hashtbl.reset counted;
                Hashtbl.iter (Hashtbl.replace counted) saved;
                c
              in
              let out = infer env t in
              Hashtbl.replace counted t out;
              (float_of_int n *. (body_cost +. p.kernel_overhead))
              +. roofline p 0. (16. *. numel out))
  in
  node_cost env0 prog

let estimate_time fw platform env prog =
  let prog = optimize fw prog in
  (* Every invocation pays one call/launch overhead even when the body
     degenerates to an input reference (e.g. transpose(transpose(A))
     after rewriting): this is the Python-function-call floor a real
     measurement would see, and it keeps speedups finite. *)
  let floor_cost =
    if fw.compiled then platform.Platform.kernel_overhead
    else platform.Platform.dispatch_overhead
  in
  floor_cost
  +.
  if fw.compiled then compiled_time platform env prog
  else
    let _, _, time = eager_time platform env prog in
    time

let speedup fw platform env ~original ~optimized =
  estimate_time fw platform env original
  /. estimate_time fw platform env optimized
