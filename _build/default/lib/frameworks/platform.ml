type t = {
  name : string;
  flops_per_sec : float;
  mem_bw : float;
  kernel_overhead : float;
  dispatch_overhead : float;
}

let amd_7950x =
  {
    name = "AMD 7950X";
    flops_per_sec = 5.0e10;
    mem_bw = 7.0e10;
    kernel_overhead = 2.0e-7;
    dispatch_overhead = 8.0e-7;
  }

let intel_8700k =
  {
    name = "Intel i7-8700K";
    flops_per_sec = 2.2e10;
    mem_bw = 3.8e10;
    kernel_overhead = 2.5e-7;
    dispatch_overhead = 1.1e-6;
  }

let apple_m3_pro =
  {
    name = "Apple M3 Pro";
    flops_per_sec = 3.8e10;
    mem_bw = 1.5e11;
    kernel_overhead = 1.8e-7;
    dispatch_overhead = 7.0e-7;
  }

let all = [ amd_7950x; intel_8700k; apple_m3_pro ]
let find name = List.find (fun p -> p.name = name) all
