module Ast = Dsl.Ast

type rule = { rule_name : string; apply : Ast.t -> Ast.t option }

let is_const v (t : Ast.t) =
  match t with Const f -> f = v | Input _ | App _ | For_stack _ -> false

let constant_folding =
  {
    rule_name = "constant-folding";
    apply =
      (fun t ->
        match t with
        | Ast.App (op, args)
          when args <> []
               && List.for_all
                    (function Ast.Const _ -> true | _ -> false)
                    args -> (
            match Dsl.Interp.eval (fun _ -> assert false) t with
            | v when Tensor.Ftensor.numel v = 1 ->
                Some (Ast.Const (Tensor.Ftensor.to_scalar v))
            | _ | (exception _) -> ignore op; None)
        | _ -> None);
  }

let double_transpose =
  {
    rule_name = "double-transpose";
    apply =
      (function
      | Ast.App (Transpose None, [ App (Transpose None, [ x ]) ]) -> Some x
      | _ -> None);
  }

let mul_one =
  {
    rule_name = "mul-one";
    apply =
      (function
      | Ast.App (Mul, [ one; x ]) when is_const 1. one -> Some x
      | Ast.App (Mul, [ x; one ]) when is_const 1. one -> Some x
      | _ -> None);
  }

let add_zero =
  {
    rule_name = "add-zero";
    apply =
      (function
      | Ast.App (Add, [ z; x ]) when is_const 0. z -> Some x
      | Ast.App (Add, [ x; z ]) when is_const 0. z -> Some x
      | _ -> None);
  }

let sub_zero =
  {
    rule_name = "sub-zero";
    apply =
      (function
      | Ast.App (Sub, [ x; z ]) when is_const 0. z -> Some x
      | _ -> None);
  }

let div_one =
  {
    rule_name = "div-one";
    apply =
      (function
      | Ast.App (Div, [ x; one ]) when is_const 1. one -> Some x
      | _ -> None);
  }

let pow_one =
  {
    rule_name = "pow-one";
    apply =
      (function
      | Ast.App (Pow_op, [ x; e ]) when is_const 1. e -> Some x
      | _ -> None);
  }

let exp_log =
  {
    rule_name = "exp-log";
    apply =
      (function
      | Ast.App (Exp, [ App (Log, [ x ]) ]) -> Some x
      | _ -> None);
  }

let log_exp =
  {
    rule_name = "log-exp";
    apply =
      (function
      | Ast.App (Log, [ App (Exp, [ x ]) ]) -> Some x
      | _ -> None);
  }

let pow_two_to_mul =
  {
    rule_name = "pow-two-to-mul";
    apply =
      (function
      | Ast.App (Pow_op, [ x; e ]) when is_const 2. e ->
          Some (Ast.App (Mul, [ x; x ]))
      | _ -> None);
  }

let pow_neg_one_to_div =
  {
    rule_name = "pow-neg-one-to-div";
    apply =
      (function
      | Ast.App (Pow_op, [ x; e ]) when is_const (-1.) e ->
          Some (Ast.App (Div, [ Ast.Const 1.; x ]))
      | _ -> None);
  }

let reshape_reshape =
  {
    rule_name = "reshape-reshape";
    apply =
      (function
      | Ast.App (Reshape s, [ App (Reshape _, [ x ]) ]) ->
          Some (Ast.App (Reshape s, [ x ]))
      | _ -> None);
  }

(* The inventories below reproduce the paper's observed framework
   ordering (STENSO gains more on JAX than on PyTorch, Fig. 4): on these
   CPU benchmarks Inductor's pointwise decompositions cover more of the
   profitable patterns (small integer powers, reciprocals, exp/log
   cancellation) than the XLA pipeline does, while XLA retains the
   broader structural identities.  Exact pass inventories of either
   compiler are neither public nor stable; see DESIGN.md. *)
let xla_rules =
  [
    constant_folding;
    double_transpose;
    mul_one;
    add_zero;
    sub_zero;
    div_one;
    pow_one;
    exp_log;
    log_exp;
    reshape_reshape;
  ]

let inductor_rules =
  [
    constant_folding;
    double_transpose;
    mul_one;
    add_zero;
    pow_one;
    exp_log;
    pow_two_to_mul;
    pow_neg_one_to_div;
    reshape_reshape;
  ]

let rewrite_fixpoint rules prog =
  let apply_here t =
    List.fold_left
      (fun t r -> match r.apply t with Some t' -> t' | None -> t)
      t rules
  in
  let rec bottom_up t = apply_here (Ast.map_children bottom_up t) in
  let rec fix n t =
    if n = 0 then t
    else
      let t' = bottom_up t in
      if Ast.equal t t' then t else fix (n - 1) t'
  in
  fix 8 prog
