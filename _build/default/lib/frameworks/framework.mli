(** Execution-time models for the three tensor frameworks of the
    paper's evaluation (Section VI-B).

    Each framework is simulated by the mechanism that actually
    determines its performance profile:

    - {!numpy}: eager execution — one dispatch and one memory pass per
      operation, no graph rewriting, Python-loop comprehension cost per
      iteration;
    - {!jax}: graph capture, XLA's algebraic simplification rules,
      common-subexpression elimination, and elementwise-operator fusion
      into single kernels;
    - {!torch_inductor}: like JAX with Inductor's (smaller) pattern set.

    Kernel times follow a roofline model on a {!Platform.t}:
    [overhead + max(flops/rate, bytes/bandwidth)].  The model is
    analytic and deterministic, so the figures it produces are stable
    across runs; its purpose is to preserve the paper's comparative
    structure, not absolute numbers (see DESIGN.md). *)

type t = {
  name : string;
  rules : Rewrite.rule list;  (** framework's own rewrites (pre-STENSO) *)
  compiled : bool;  (** graph capture + fusion + CSE vs eager *)
}

val numpy : t
val jax : t
val torch_inductor : t
val all : t list

val optimize : t -> Dsl.Ast.t -> Dsl.Ast.t
(** The framework's own graph-level optimization of a program. *)

val estimate_time : t -> Platform.t -> Dsl.Types.env -> Dsl.Ast.t -> float
(** Estimated execution time in seconds of the program under the
    framework's execution model (after {!optimize}). *)

val speedup :
  t -> Platform.t -> Dsl.Types.env -> original:Dsl.Ast.t ->
  optimized:Dsl.Ast.t -> float
(** [time(original) / time(optimized)] under this framework/platform. *)
