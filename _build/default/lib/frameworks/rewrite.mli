(** Rule-based graph rewriting as performed by the compiled tensor
    frameworks (JAX/XLA and PyTorch-Inductor).

    These are the frameworks' {e own} fixed optimization rules — the
    ones the paper argues are incomplete.  Simulating them matters for
    the evaluation's shape: a rewrite STENSO discovers that the
    framework also knows (e.g. [exp(log x) = x] in XLA) yields no
    speedup on that framework, which is exactly why the paper's compiled
    baselines show smaller gains than eager NumPy. *)

type rule = { rule_name : string; apply : Dsl.Ast.t -> Dsl.Ast.t option }

val constant_folding : rule
val double_transpose : rule
val mul_one : rule
val add_zero : rule
val sub_zero : rule
val div_one : rule
val pow_one : rule
val exp_log : rule
val log_exp : rule
val pow_two_to_mul : rule
val pow_neg_one_to_div : rule
val reshape_reshape : rule

val xla_rules : rule list
(** The JAX/XLA algebraic-simplification set. *)

val inductor_rules : rule list
(** The PyTorch-Inductor pattern set (smaller than XLA's). *)

val rewrite_fixpoint : rule list -> Dsl.Ast.t -> Dsl.Ast.t
(** Apply rules bottom-up to a fixpoint (bounded), as a compiler pass
    pipeline would. *)
