lib/frameworks/rewrite.mli: Dsl
