lib/frameworks/platform.mli:
