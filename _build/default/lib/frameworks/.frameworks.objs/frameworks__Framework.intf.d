lib/frameworks/framework.mli: Dsl Platform Rewrite
