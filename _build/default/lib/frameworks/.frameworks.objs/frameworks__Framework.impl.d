lib/frameworks/framework.ml: Array Cost Dsl Float Hashtbl List Platform Rewrite Tensor
