lib/frameworks/platform.ml: List
