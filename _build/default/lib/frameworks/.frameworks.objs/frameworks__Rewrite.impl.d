lib/frameworks/rewrite.ml: Dsl List Tensor
