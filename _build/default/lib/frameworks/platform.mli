(** Analytic CPU platform profiles for the three machines of the
    paper's evaluation (Section VI-D).

    We cannot run on the authors' hardware, so each platform is modelled
    by a small set of roofline parameters: sustained elementwise
    throughput, memory bandwidth, per-kernel launch overhead, and the
    eager framework's per-operation dispatch overhead.  The absolute
    numbers are rough public figures; what the experiments depend on is
    their relative structure (e.g. Apple's high unified-memory bandwidth
    versus the Intel part's lower one). *)

type t = {
  name : string;
  flops_per_sec : float;  (** sustained elementwise FLOP rate *)
  mem_bw : float;  (** bytes per second *)
  kernel_overhead : float;  (** compiled-kernel launch cost, seconds *)
  dispatch_overhead : float;  (** eager per-op dispatch cost, seconds *)
}

val amd_7950x : t
val intel_8700k : t
val apple_m3_pro : t
val all : t list
val find : string -> t
