(* Quickstart: superoptimize one tensor program end to end.

     dune exec examples/quickstart.exe

   Parses a NumPy-style program, runs the STENSO synthesis search with
   the measured cost model, verifies the result, and cross-checks it
   numerically on random inputs. *)

let source =
  {|
  # trace of a matrix product (Table I, "trace_dot")
  input A : f32[3,4]
  input B : f32[3,4]
  return np.trace(A @ B.T)
|}

let () =
  let env, program = Dsl.Parser.program source in
  Format.printf "original : %a@." Dsl.Ast.pp program;

  (* The `Measured estimator profiles each operation once on random
     inputs of representative shapes (the paper's offline phase);
     with_jobs fans the synthesis search across CPU cores with results
     identical to a sequential run. *)
  let config =
    Stenso.Config.default
    |> Stenso.Config.with_estimator `Measured
    |> Stenso.Config.with_timeout 60.
    |> Stenso.Config.with_jobs (Stenso.Par.default_jobs ())
  in
  let outcome = Stenso.Superopt.optimize ~config ~env program in

  if outcome.improved then begin
    Format.printf "optimized: %a@." Dsl.Ast.pp outcome.optimized;
    Format.printf "estimated cost: %.3g -> %.3g (%.1fx)@."
      outcome.original_cost outcome.optimized_cost
      (outcome.original_cost /. outcome.optimized_cost)
  end
  else Format.printf "no cheaper equivalent found@.";

  (* Outputs are correct by construction (symbolic equivalence) — and we
     can still double-check concretely: *)
  Format.printf "symbolically verified: %b@." outcome.verified;
  Format.printf "agrees on random inputs: %b@."
    (Stenso.Superopt.validate_concrete ~env program outcome.optimized);

  (* Finally, generalize the discovery into a rewrite rule that a
     conventional compiler could adopt (Section VII-D of the paper). *)
  if outcome.improved then
    Format.printf "as a rule : %a@." Stenso.Rules.pp
      (Stenso.Rules.generalize program outcome.optimized)
