(* Rule mining: run the superoptimizer across a corpus of programs and
   distil the discoveries into reusable rewrite rules (Section VII-D),
   then demonstrate applying a mined rule to a previously unseen
   program — the paper's proposed feedback loop into rule-based
   compilers.

     dune exec examples/rule_mining.exe *)

let corpus =
  [
    ("gaussian variance", "input A : f32[3,4]\ninput B : f32[4,3]\n\
                           return np.diag(np.dot(A, B))");
    ("profit summation", "input A : f32[3,4]\ninput x : f32[4]\n\
                          return np.sum(A * x, axis=1)");
    ("smoothing blend", "input A : f32[3,3]\ninput B : f32[3,3]\n\
                         input C : f32[3,3]\nreturn A * B + C * B");
    ("normalized energy", "input A : f32[3,3]\ninput B : f32[3,3]\n\
                           return (A + B) / np.sqrt(A + B)");
  ]

let () =
  let config = Stenso.Config.default |> Stenso.Config.with_estimator `Measured in
  let mined =
    List.filter_map
      (fun (name, src) ->
        let env, program = Dsl.Parser.program src in
        let outcome = Stenso.Superopt.optimize ~config ~env program in
        if outcome.improved then begin
          let rule = Stenso.Rules.generalize program outcome.optimized in
          Format.printf "%-20s %a@." name Stenso.Rules.pp rule;
          Some rule
        end
        else begin
          Format.printf "%-20s (no rewrite found)@." name;
          None
        end)
      corpus
  in
  Format.printf "@.mined %d rules@.@." (List.length mined);

  (* Apply the factoring rule to a new program without re-running
     synthesis: the rule engine pattern-matches and rewrites. *)
  let unseen =
    Dsl.Parser.expression "np.sqrt(P * Q + R * Q)"
  in
  Format.printf "unseen program : %a@." Dsl.Ast.pp unseen;
  let rewritten =
    List.fold_left
      (fun prog rule ->
        match Stenso.Rules.apply_once rule prog with
        | Some p -> p
        | None -> prog)
      unseen mined
  in
  Format.printf "after mined rules: %a@." Dsl.Ast.pp rewritten;

  (* The rewrite preserves semantics on the new program too. *)
  let env =
    [ ("P", Dsl.Types.float_t [| 4; 4 |]); ("Q", Dsl.Types.float_t [| 4; 4 |]);
      ("R", Dsl.Types.float_t [| 4; 4 |]) ]
  in
  Format.printf "equivalent on new inputs: %b@."
    (Dsl.Sexec.equivalent env unseen rewritten)
