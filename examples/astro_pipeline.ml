(* Domain scenario: an astrophysics analysis pipeline (the motivating
   domain of Table I's diag_dot benchmark).

     dune exec examples/astro_pipeline.exe

   A Gaussian-process variance-reduction step computes diag(K @ W) plus
   an elementwise correction.  We superoptimize the whole kernel, then
   compare estimated execution under all three framework simulators and
   platforms, and validate the rewrite numerically at production shapes. *)

module Fw = Frameworks.Framework
module Pf = Frameworks.Platform

let source =
  {|
  # posterior variance reduction: diag(K @ W) - s * diag(K @ W)
  input K : f32[3,4]
  input W : f32[4,3]
  input s : f32[]
  return np.diag(np.dot(K, W)) - s * np.diag(np.dot(K, W))
|}

(* Production-sized inputs for the performance comparison. *)
let perf_env_src =
  "input K : f32[256,320]\ninput W : f32[320,256]\ninput s : f32[]\nreturn 0"

let () =
  let env, program = Dsl.Parser.program source in
  Format.printf "pipeline kernel : %a@.@." Dsl.Ast.pp program;

  let config = Stenso.Config.default |> Stenso.Config.with_estimator `Measured in
  let t0 = Unix.gettimeofday () in
  let outcome = Stenso.Superopt.optimize ~config ~env program in
  Format.printf "synthesis took %.1fs, explored %d nodes@."
    (Unix.gettimeofday () -. t0)
    outcome.search.stats.nodes;
  Format.printf "optimized kernel: %a@.@." Dsl.Ast.pp outcome.optimized;

  (* How much does the discovery help under each framework? *)
  let perf_env, _ = Dsl.Parser.program perf_env_src in
  Format.printf "%-10s" "";
  List.iter (fun (p : Pf.t) -> Format.printf "%16s" p.name) Pf.all;
  Format.printf "@.";
  List.iter
    (fun (fw : Fw.t) ->
      Format.printf "%-10s" fw.name;
      List.iter
        (fun pf ->
          let s =
            Fw.speedup fw pf perf_env ~original:program
              ~optimized:outcome.optimized
          in
          Format.printf "%15.2fx" s)
        Pf.all;
      Format.printf "@.")
    Fw.all;

  (* Numerical validation at production shapes. *)
  let st = Random.State.make [| 2026 |] in
  let inputs = Dsl.Interp.random_inputs st perf_env in
  let reference = Dsl.Interp.eval_alist inputs program in
  let fast = Dsl.Interp.eval_alist inputs outcome.optimized in
  Format.printf "@.matches the reference at 256x320: %b@."
    (Tensor.Ftensor.allclose ~rtol:1e-9 ~atol:1e-12 reference fast)
