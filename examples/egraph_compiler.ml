(* The paper's complementarity claim, end to end (Sections VII-D and
   VIII): run STENSO once over a training corpus, distil its discoveries
   into rewrite rules, and install them in an equality-saturation
   optimizer that then handles unseen programs without any further
   synthesis — the workflow for feeding a conventional compiler.

     dune exec examples/egraph_compiler.exe *)

open Stenso

let training =
  [
    "input A : f32[3,4]\ninput B : f32[4,3]\nreturn np.diag(np.dot(A, B))";
    "input A : f32[3,3]\nreturn np.power(A, 2)";
    "input A : f32[3,3]\ninput B : f32[3,3]\n\
     return np.exp(np.log(A) - np.log(B))";
    "input A : f32[3,4]\ninput x : f32[4]\nreturn np.sum(A * x, axis=1)";
  ]

let () =
  (* Phase 1: synthesis over the corpus (the expensive, one-time step). *)
  let config = Config.default |> Config.with_estimator `Measured in
  let rules =
    List.filter_map
      (fun src ->
        let env, prog = Dsl.Parser.program src in
        let o = Superopt.optimize ~config ~env prog in
        if o.improved then Some (Rules.generalize prog o.optimized) else None)
      training
  in
  Format.printf "mined %d rules:@." (List.length rules);
  List.iter (fun r -> Format.printf "  %a@." Rules.pp r) rules;

  (* Phase 2: a saturation-based optimizer using only those rules — no
     synthesis in the loop. *)
  let optimize env prog =
    let g = Egraph.create env in
    let cls = Egraph.add g prog in
    let stats = Egraph.saturate ~rules g in
    let best = Egraph.extract g ~model:Cost.Model.flops cls in
    (best, stats)
  in

  (* Unseen programs: the diag identity fires in a nested position, the
     power rule inside a sum, and composition of two mined rules. *)
  let unseen =
    [
      "input K : f32[4,5]\ninput W : f32[5,4]\ninput s : f32[]\n\
       return s * np.diag(np.dot(K, W))";
      "input X : f32[4,4]\nreturn np.sum(np.power(X, 2), axis=0)";
      "input P : f32[2,3]\ninput Q : f32[2,3]\n\
       return np.power(np.exp(np.log(P) - np.log(Q)), 2)";
    ]
  in
  List.iter
    (fun src ->
      let env, prog = Dsl.Parser.program src in
      let best, stats = optimize env prog in
      let cost p = Cost.Model.program_cost Cost.Model.flops env p in
      Format.printf "@.%a@.  -> %a@.  (%d rule applications, %.1fx fewer flops, equivalent: %b)@."
        Dsl.Ast.pp prog Dsl.Ast.pp best stats.applications
        (cost prog /. cost best)
        (Dsl.Sexec.equivalent env prog best))
    unseen
