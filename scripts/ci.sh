#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-check that
# the parallel engine is byte-identical to the sequential one on two
# benchmarks through the actual CLI.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

smoke() {
  dune exec --no-build bin/stenso_cli.exe -- suite \
    --benchmarks diag_dot,common_factor --cost-estimator flops \
    --jobs "$1" --quiet
}

seq_out=$(smoke 1)
par_out=$(smoke 4)
if [ "$seq_out" != "$par_out" ]; then
  echo "FAIL: parallel suite output differs from sequential" >&2
  printf 'jobs=1:\n%s\njobs=4:\n%s\n' "$seq_out" "$par_out" >&2
  exit 1
fi
echo "parallel-vs-sequential smoke check passed"
