#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-check that
# the parallel engine is byte-identical to the sequential one on two
# benchmarks through the actual CLI.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

smoke() {
  dune exec --no-build bin/stenso_cli.exe -- suite \
    --benchmarks diag_dot,common_factor --cost-estimator flops \
    --jobs "$1" --quiet
}

seq_out=$(smoke 1)
par_out=$(smoke 4)
if [ "$seq_out" != "$par_out" ]; then
  echo "FAIL: parallel suite output differs from sequential" >&2
  printf 'jobs=1:\n%s\njobs=4:\n%s\n' "$seq_out" "$par_out" >&2
  exit 1
fi
echo "parallel-vs-sequential smoke check passed"

# Telemetry smoke check: a traced suite run must produce a suite report
# that validates against the stenso.suite-report/1 schema (the format
# the BENCH_*.json performance trajectory is archived in), and a traced
# optimize must produce parseable NDJSON.
report=$(mktemp)
scratch=$(mktemp -d)
trap 'rm -f "$report"; rm -rf "$scratch"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
dune exec --no-build bin/stenso_cli.exe -- suite \
  --benchmarks diag_dot,common_factor,sum_stack --cost-estimator flops \
  --report "$report" --quiet > /dev/null
dune exec --no-build bin/stenso_cli.exe -- report "$report"
echo "suite-report smoke check passed"

# Serve smoke check: a daemon against a fresh store directory must
# answer the same request twice, the second time from the store
# (cache_hit:true), and shut down cleanly on SIGTERM.  The daemon runs
# from the built binary directly so the signal reaches it, not a dune
# wrapper.
stenso=_build/default/bin/stenso_cli.exe
socket="$scratch/stenso.sock"
printf 'input A : f32[2,2]\ninput B : f32[2,2]\nreturn np.exp(np.log(A + B))\n' \
  > "$scratch/prog.tdsl"
"$stenso" serve \
  --socket "$socket" --store-dir "$scratch/store" \
  --cost-estimator flops --timeout 60 --workers 2 > /dev/null &
serve_pid=$!
i=0
while [ ! -S "$socket" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: serve daemon never bound its socket" >&2
    exit 1
  fi
  sleep 0.1
done
first=$("$stenso" request \
  --socket "$socket" --program "$scratch/prog.tdsl" --id ci-1)
second=$("$stenso" request \
  --socket "$socket" --program "$scratch/prog.tdsl" --id ci-2)
case "$first" in
  *'"ok":true'*) ;;
  *) echo "FAIL: first serve request did not succeed: $first" >&2; exit 1 ;;
esac
case "$second" in
  *'"cache_hit":true'*) ;;
  *) echo "FAIL: second serve request was not a cache hit: $second" >&2
     exit 1 ;;
esac
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
if [ -S "$socket" ]; then
  echo "FAIL: serve daemon left its socket behind" >&2
  exit 1
fi
echo "serve smoke check passed"

# Execution-engine smoke check, two halves.  Under the deterministic
# flops estimator the engine only drives concrete validation, so
# vm-validated synthesis must reach byte-identical programs to
# interp-validated synthesis (f1 name, f2 status, f4 program; the cost
# column is timing-free here but excluded for symmetry).  Under the
# measured estimator the engines time different code, so per-op cost
# ratios — and with them the syntactic shape of cost-equivalent
# winners (e.g. commuted multiply operands) — legitimately differ;
# there we only require both engines to improve the same benchmarks.
engine_smoke() {
  dune exec --no-build bin/stenso_cli.exe -- suite \
    --benchmarks diag_dot,common_factor --cost-estimator "$2" \
    --engine "$1" --quiet | cut -f"$3"
}
vm_out=$(engine_smoke vm flops 1,2,4)
interp_out=$(engine_smoke interp flops 1,2,4)
if [ "$vm_out" != "$interp_out" ]; then
  echo "FAIL: vm-validated suite output differs from interp-validated" >&2
  printf 'engine=vm:\n%s\nengine=interp:\n%s\n' "$vm_out" "$interp_out" >&2
  exit 1
fi
vm_out=$(engine_smoke vm measured 1,2)
interp_out=$(engine_smoke interp measured 1,2)
if [ "$vm_out" != "$interp_out" ]; then
  echo "FAIL: vm-timed suite improvements differ from interp-timed" >&2
  printf 'engine=vm:\n%s\nengine=interp:\n%s\n' "$vm_out" "$interp_out" >&2
  exit 1
fi
echo "vm-vs-interp suite smoke check passed"

# Tiered-optimizer smoke check: mine the depth-2 rule database for one
# environment, then optimize the matching program twice through the
# tiered path.  The first request must be answered without entering the
# search (tier 2: mined rules + saturation + optima lookup), the repeat
# must hit a lower-or-equal tier (the outcome store, tier 1).
tstore="$scratch/tstore"
printf 'input A : f32[3,3]\ninput B : f32[3,3]\nreturn np.exp(np.log(A + B))\n' \
  > "$scratch/tiers_prog.tdsl"
"$stenso" mine --depth 2 --benchmarks log_exp_1 --cost-estimator flops \
  --store-dir "$tstore" --quiet
tiered() {
  "$stenso" optimize --program "$scratch/tiers_prog.tdsl" --rules-depth 2 \
    --cost-estimator flops --store-dir "$tstore" --trace "$1" > /dev/null
}
tiered "$scratch/trace1.ndjson"
tiered "$scratch/trace2.ndjson"
if ! grep -F '"tier.serve"' "$scratch/trace1.ndjson" | grep -qF '"tier":2'
then
  echo "FAIL: first tiered request was not served by tier 2" >&2
  grep -F '"tier.serve"' "$scratch/trace1.ndjson" >&2 || true
  exit 1
fi
if ! grep -F '"tier.serve"' "$scratch/trace2.ndjson" \
    | grep -qE '"tier":[12]'; then
  echo "FAIL: repeated tiered request fell back to the full search" >&2
  grep -F '"tier.serve"' "$scratch/trace2.ndjson" >&2 || true
  exit 1
fi
echo "tiered-optimizer smoke check passed"

# Exec-bench archive check: the interp-vs-VM microbenchmark report
# must regenerate as a well-formed stenso.exec-bench/1 document with a
# geomean (the committed trajectory point is BENCH_exec_vm.json), and
# the VM must never lose to the interpreter: `report --min-speedup 1.0`
# fails if any benchmark's speedup dips below 1.0x or any
# reduction-rooted benchmark stopped fusing ops (ops_fused = 0 with
# expects_fused_reduction), so a planner fusion regression cannot hide
# behind a still-passing geomean.
exec_report="$scratch/exec_vm.json"
dune exec --no-build bench/main.exe -- vm --report "$exec_report" \
  > /dev/null
for needle in '"schema":"stenso.exec-bench/1"' '"geomean_speedup"'; do
  if ! grep -qF "$needle" "$exec_report"; then
    echo "FAIL: exec-bench report is missing $needle" >&2
    exit 1
  fi
done
dune exec --no-build bin/stenso_cli.exe -- report "$exec_report" \
  --min-speedup 1.0
echo "exec-bench report smoke check passed"

# Serving-at-scale smoke check: a TCP daemon (ephemeral port) under a
# short closed-loop replay must produce a valid stenso.serve-load/1
# report with zero protocol errors and at least one coalesced request
# (identical in-flight requests deduplicating onto one synthesis), and
# drain cleanly on SIGTERM.
serve_log="$scratch/serve.log"
lg_report="$scratch/serve_load.json"
"$stenso" serve --tcp 127.0.0.1:0 --socket "" \
  --store-dir "$scratch/lstore" --cost-estimator flops --timeout 60 \
  --workers 2 > "$serve_log" &
serve_pid=$!
port=""
i=0
while [ -z "$port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: serve daemon never reported its TCP port" >&2
    cat "$serve_log" >&2
    exit 1
  fi
  sleep 0.1
  port=$(sed -n 's#.*listening on tcp://127\.0\.0\.1:\([0-9][0-9]*\).*#\1#p' \
    "$serve_log" | head -n 1)
done
"$stenso" loadgen --endpoints "tcp://127.0.0.1:$port" \
  --benchmarks log_exp_1,elem_square --concurrency 8 --duration 2 \
  --cost-estimator flops --report "$lg_report" --quiet
dune exec --no-build bin/stenso_cli.exe -- report "$lg_report"
if ! grep -qF '"n_protocol_errors":0' "$lg_report"; then
  echo "FAIL: serve-load replay saw protocol errors" >&2
  exit 1
fi
if grep -qF '"n_coalesced":0' "$lg_report"; then
  echo "FAIL: no request was coalesced during the replay" >&2
  exit 1
fi
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
echo "serve-load smoke check passed"

# ML-suite smoke check, three parts.  (1) The ML-kernel tier must run
# end-to-end through the suite and produce a valid suite report.
# (2) The mlsuite benchmark section must regenerate as a well-formed
# stenso.mlsuite/1 document (the committed trajectory point is
# BENCH_mlsuite.json) whose exec half keeps every kernel at or above
# 1.0x VM-vs-interp with its expected fusions intact.  (3) The
# truncated-enumeration regression tests must hold: a capped library is
# never cached and never mints optima (the full runtest above already
# ran them; re-run the two groups here so a future test-suite split
# cannot silently drop them).
ml_report="$scratch/ml_suite.json"
dune exec --no-build bin/stenso_cli.exe -- suite \
  --benchmarks ml --cost-estimator flops --timeout 30 --jobs 4 \
  --report "$ml_report" --quiet > /dev/null
dune exec --no-build bin/stenso_cli.exe -- report "$ml_report"
mlsuite_report="$scratch/mlsuite.json"
dune exec --no-build bench/main.exe -- mlsuite --jobs 4 \
  --report "$mlsuite_report" > /dev/null
dune exec --no-build bin/stenso_cli.exe -- report "$mlsuite_report" \
  --min-speedup 1.0
./_build/default/test/main.exe test stub > /dev/null
./_build/default/test/main.exe test tiers > /dev/null
echo "ml-suite smoke check passed"

# Lift smoke check: a bundled scalar kernel must lift through the CLI,
# the emitted DSL must re-parse and execute (`stenso run` on the
# synthesized program), and the regenerated stenso.lift/1 report must
# validate with a 100% success floor.  A loop-language parse error must
# exit 65 (EX_DATAERR) with a line/column diagnostic.
"$stenso" lift --bench lift_dot --no-store --cost-estimator flops \
  --synth-out "$scratch/dot.tdsl" --report "$scratch/lift.json" --quiet
"$stenso" run "$scratch/dot.tdsl" > /dev/null
"$stenso" report "$scratch/lift.json" --min-success 1.0
printf 'kernel broken(in float x[4], out float y) {\n  y = x[0]\n}\n' \
  > "$scratch/broken.loop"
lift_rc=0
lift_err=$("$stenso" lift "$scratch/broken.loop" --no-store 2>&1) \
  || lift_rc=$?
if [ "$lift_rc" -ne 65 ]; then
  echo "FAIL: lift of a malformed loop exited $lift_rc, want 65" >&2
  exit 1
fi
case "$lift_err" in
  *'line '*'column '*) ;;
  *) echo "FAIL: lift parse error lacks line/column: $lift_err" >&2
     exit 1 ;;
esac
echo "lift smoke check passed"
