#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-check that
# the parallel engine is byte-identical to the sequential one on two
# benchmarks through the actual CLI.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

smoke() {
  dune exec --no-build bin/stenso_cli.exe -- suite \
    --benchmarks diag_dot,common_factor --cost-estimator flops \
    --jobs "$1" --quiet
}

seq_out=$(smoke 1)
par_out=$(smoke 4)
if [ "$seq_out" != "$par_out" ]; then
  echo "FAIL: parallel suite output differs from sequential" >&2
  printf 'jobs=1:\n%s\njobs=4:\n%s\n' "$seq_out" "$par_out" >&2
  exit 1
fi
echo "parallel-vs-sequential smoke check passed"

# Telemetry smoke check: a traced suite run must produce a suite report
# that validates against the stenso.suite-report/1 schema (the format
# the BENCH_*.json performance trajectory is archived in), and a traced
# optimize must produce parseable NDJSON.
report=$(mktemp)
trap 'rm -f "$report"' EXIT
dune exec --no-build bin/stenso_cli.exe -- suite \
  --benchmarks diag_dot,common_factor,sum_stack --cost-estimator flops \
  --report "$report" --quiet > /dev/null
dune exec --no-build bin/stenso_cli.exe -- report "$report"
echo "suite-report smoke check passed"
