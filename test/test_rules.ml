(* Rule generalization and application (Section VII-D). *)
open Dsl
open Stenso

let ast = Alcotest.testable Ast.pp Ast.equal
let p = Parser.expression

let diag_rule =
  Rules.generalize
    (p "np.diag(np.dot(A, B))")
    (p "np.sum(np.multiply(A, B.T), axis=1)")

let test_generalize () =
  Alcotest.check ast "lhs abstracted"
    (p "np.diag(np.dot(X, Y))")
    diag_rule.lhs;
  Alcotest.check ast "rhs abstracted"
    (p "np.sum(np.multiply(X, Y.T), axis=1)")
    diag_rule.rhs;
  Alcotest.(check (list (pair string string)))
    "metavariable map"
    [ ("A", "X"); ("B", "Y") ]
    diag_rule.metavars

let test_match_and_apply () =
  (* matches with arbitrary subterms bound to the metavariables *)
  let target = p "np.diag(np.dot(P + Q, np.transpose(R)))" in
  (match Rules.matches diag_rule target with
  | Some bindings ->
      Alcotest.(check int) "two bindings" 2 (List.length bindings)
  | None -> Alcotest.fail "rule should match");
  (match Rules.apply_once diag_rule target with
  | Some rewritten ->
      Alcotest.check ast "instantiated rhs"
        (p "np.sum(np.multiply(P + Q, np.transpose(np.transpose(R))), axis=1)")
        rewritten
  | None -> Alcotest.fail "rule should rewrite");
  (* no match -> no rewrite *)
  Alcotest.(check bool) "no false positives" true
    (Rules.apply_once diag_rule (p "np.dot(A, B)") = None)

let test_apply_nested () =
  (* rewriting fires below the root too *)
  let target = p "np.sqrt(np.diag(np.dot(A, B)))" in
  match Rules.apply_once diag_rule target with
  | Some rewritten ->
      Alcotest.check ast "nested rewrite"
        (p "np.sqrt(np.sum(np.multiply(A, B.T), axis=1))")
        rewritten
  | None -> Alcotest.fail "nested position should rewrite"

let test_consistent_binding () =
  (* the same metavariable must bind identical subterms *)
  let rule = Rules.generalize (p "A * B + A * B") (p "2 * (A * B)") in
  Alcotest.(check bool) "consistent occurrence matches" true
    (Rules.matches rule (p "P * Q + P * Q") <> None);
  Alcotest.(check bool) "inconsistent occurrence rejected" true
    (Rules.matches rule (p "P * Q + P * R") = None)

let test_rule_preserves_semantics () =
  (* applying a mined rule to fresh programs preserves equivalence *)
  let env =
    [ ("P", Types.float_t [| 2; 3 |]); ("Q", Types.float_t [| 3; 2 |]) ]
  in
  let target = p "np.diag(np.dot(P, Q))" in
  match Rules.apply_once diag_rule target with
  | Some rewritten ->
      Alcotest.(check bool) "equivalent after rewrite" true
        (Sexec.equivalent env target rewritten)
  | None -> Alcotest.fail "should apply"

let test_apply_fixpoint () =
  let rules =
    [
      Rules.generalize (p "np.exp(np.log(A))") (p "A");
      Rules.generalize (p "A * B + A * B") (p "2 * (A * B)");
    ]
  in
  Alcotest.check ast "both rules fire to fixpoint"
    (p "np.multiply(2, np.multiply(P, Q))")
    (Rules.apply_fixpoint rules
       (p "np.exp(np.log(P * Q + P * Q))"));
  Alcotest.check ast "fixpoint of no match is identity" (p "P + Q")
    (Rules.apply_fixpoint rules (p "P + Q"))

let test_generalize_no_capture () =
  (* Distinct inputs must get distinct metavariables even when an input
     is literally named like a metavariable: the old sequential
     substitution turned add(W, X) into add(Y, Y) (abstracting W to X
     first, then X — now both occurrences — to Y). *)
  let rule = Rules.generalize (p "np.add(W, X)") (p "W") in
  List.iter
    (fun (inp, mv) ->
      if List.mem mv [ "W"; "X" ] then
        Alcotest.failf "metavar %s collides with input %s" mv inp)
    rule.metavars;
  (match Rules.matches rule (p "np.add(P, Q)") with
  | Some bindings ->
      Alcotest.(check int) "two distinct operands bound" 2
        (List.length bindings)
  | None -> Alcotest.fail "generalized rule must keep its operands distinct");
  (* and the abstraction still rewrites correctly *)
  match Rules.apply_once rule (p "np.add(P, Q)") with
  | Some r -> Alcotest.check ast "projects the first operand" (p "P") r
  | None -> Alcotest.fail "rule should apply"

let test_apply_no_capture () =
  (* Instantiating commutativity on add(Y, Q): the binding X ↦ Y must
     not be rewritten again by the binding for metavariable Y — the old
     sequential substitution produced add(Q, Q). *)
  let comm = Rules.generalize (p "np.add(A, B)") (p "np.add(B, A)") in
  match Rules.apply_once comm (p "np.add(Y, Q)") with
  | Some r ->
      Alcotest.check ast "operands swapped, not conflated"
        (p "np.add(Q, Y)") r
  | None -> Alcotest.fail "commutativity should apply"

let test_closed () =
  Alcotest.(check bool) "diag rule is closed" true (Rules.closed diag_rule);
  (* a dead lhs input lets the rhs mention an input the lhs never binds:
     such a rule must be flagged open (unsound to apply anywhere) *)
  let open_rule = Rules.generalize (p "np.multiply(B, 0)") (p "C") in
  Alcotest.(check bool) "rhs input not bound on the lhs" false
    (Rules.closed open_rule)

let test_fixpoint_pingpong () =
  (* An inverse pair (here: commutativity with itself) ping-pongs; the
     walk must stop on the first revisit and return the cheapest
     program seen, not loop until the step budget. *)
  let comm = Rules.generalize (p "A + B") (p "B + A") in
  Alcotest.check ast "commutativity terminates on revisit" (p "P + Q")
    (Rules.apply_fixpoint [ comm ] (p "P + Q"));
  (* a growing rule walks away from the input; cheapest-seen wins *)
  let grow = Rules.generalize (p "np.sqrt(A)") (p "np.sqrt(np.sqrt(A))") in
  Alcotest.check ast "cheapest seen returned" (p "np.sqrt(P)")
    (Rules.apply_fixpoint [ grow ] (p "np.sqrt(P)"));
  (* the applied counter reports rewrite steps *)
  let applied = ref 0 in
  ignore (Rules.apply_fixpoint ~applied [ comm ] (p "P + Q"));
  Alcotest.(check bool) "steps counted" true (!applied >= 1)

let test_classifier () =
  let check name orig opt expected =
    let k =
      Classify.classify ~original:(p orig) ~optimized:(p opt)
    in
    Alcotest.(check string) name expected (Classify.klass_name k)
  in
  check "loop removal is vectorization" "np.stack([r * 2 for r in A])"
    "np.multiply(2, A)" "Vectorization";
  check "double transpose is redundancy"
    "np.transpose(np.transpose(A))" "A" "Redundancy Elimination";
  check "pow to mul is strength reduction" "np.power(A, 2)"
    "np.multiply(A, A)" "Strength Reduction";
  check "diag dot is identity replacement" "np.diag(np.dot(A, B))"
    "np.sum(np.multiply(A, B.T), axis=1)" "Identity Replacement";
  check "term rewriting is algebraic" "A * B + C * B"
    "np.multiply(np.add(A, C), B)" "Algebraic Simplification"

let suite =
  [
    Alcotest.test_case "generalization" `Quick test_generalize;
    Alcotest.test_case "match and apply" `Quick test_match_and_apply;
    Alcotest.test_case "nested application" `Quick test_apply_nested;
    Alcotest.test_case "consistent bindings" `Quick test_consistent_binding;
    Alcotest.test_case "semantics preserved" `Quick
      test_rule_preserves_semantics;
    Alcotest.test_case "rule set to fixpoint" `Quick test_apply_fixpoint;
    Alcotest.test_case "generalize avoids capture" `Quick
      test_generalize_no_capture;
    Alcotest.test_case "apply avoids capture" `Quick test_apply_no_capture;
    Alcotest.test_case "closedness" `Quick test_closed;
    Alcotest.test_case "fixpoint ping-pong" `Quick test_fixpoint_pingpong;
    Alcotest.test_case "transformation classifier" `Quick test_classifier;
  ]
