(* The builder-style Stenso.Config surface: builders must round-trip to
   the legacy Search/Stub/Invert records they wrap. *)
open Stenso

let test_default_matches_legacy () =
  Alcotest.(check bool) "default wraps Search.default_config" true
    (Config.search_config Config.default = Search.default_config);
  Alcotest.(check string) "default estimator" "measured"
    (Config.estimator_name (Config.estimator Config.default))

let test_builder_round_trip () =
  let c =
    Config.default
    |> Config.with_timeout 60.
    |> Config.with_jobs 8
    |> Config.with_estimator `Flops
    |> Config.with_bnb false
    |> Config.with_simplification false
    |> Config.with_extended_ops true
    |> Config.with_max_depth 7
    |> Config.with_node_budget 1234
    |> Config.with_memoize false
    |> Config.with_stub_depth 1
    |> Config.with_max_stubs 99
  in
  let s = Config.search_config c in
  Alcotest.(check (float 0.)) "timeout" 60. s.Search.timeout;
  Alcotest.(check int) "search jobs" 8 s.Search.jobs;
  Alcotest.(check int) "stub jobs" 8 s.Search.stub_config.Stub.jobs;
  Alcotest.(check bool) "bnb" false s.Search.use_bnb;
  Alcotest.(check bool) "simplification" false s.Search.use_simplification;
  Alcotest.(check bool) "extended ops" true
    s.Search.stub_config.Stub.extended_ops;
  Alcotest.(check int) "max depth" 7 s.Search.max_depth;
  Alcotest.(check int) "node budget" 1234 s.Search.node_budget;
  Alcotest.(check bool) "memoize" false s.Search.memoize;
  Alcotest.(check int) "stub depth" 1 s.Search.stub_config.Stub.depth;
  Alcotest.(check int) "max stubs" 99 s.Search.stub_config.Stub.max_stubs;
  Alcotest.(check int) "jobs accessor" 8 (Config.jobs c);
  Alcotest.(check (float 0.)) "timeout accessor" 60. (Config.timeout c)

let test_of_search_round_trip () =
  (* Legacy records remain the implementation: adopting one and reading
     it back is the identity. *)
  let legacy =
    {
      Search.default_config with
      timeout = 5.;
      max_depth = 3;
      stub_config = { Search.default_config.stub_config with depth = 1 };
    }
  in
  Alcotest.(check bool) "identity" true
    (Config.search_config (Config.of_search legacy) = legacy)

let test_model_selection () =
  let name e =
    (Config.model (Config.default |> Config.with_estimator e)).Cost.Model.name
  in
  Alcotest.(check string) "flops" "flops" (name `Flops);
  Alcotest.(check string) "roofline" "roofline" (name `Roofline);
  Alcotest.(check string) "measured" "measured" (name `Measured)

let test_estimator_of_string () =
  List.iter
    (fun s ->
      match Config.estimator_of_string s with
      | Ok e -> Alcotest.(check string) s s (Config.estimator_name e)
      | Error msg -> Alcotest.fail msg)
    [ "flops"; "roofline"; "measured" ];
  match Config.estimator_of_string "nope" with
  | Ok _ -> Alcotest.fail "accepted bogus estimator"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "default wraps the legacy records" `Quick
      test_default_matches_legacy;
    Alcotest.test_case "builders round-trip to the records" `Quick
      test_builder_round_trip;
    Alcotest.test_case "of_search is the identity" `Quick
      test_of_search_round_trip;
    Alcotest.test_case "estimator selects the model" `Quick
      test_model_selection;
    Alcotest.test_case "estimator parsing" `Quick test_estimator_of_string;
  ]
