(* The Domain-based parallel engine: stub enumeration, the root-level
   search fan-out, and the suite driver must all return byte-identical
   results to their sequential counterparts (deterministic FLOPs
   estimator throughout). *)
open Dsl
open Stenso

let model = Cost.Model.flops
let jobs = 4

let test_par_map () =
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "ordered" (List.map succ xs)
    (Par.map ~jobs succ xs);
  Alcotest.(check (list int))
    "chunked" (List.map succ xs)
    (Par.map ~jobs ~chunk:7 succ xs);
  (* exceptions surface, smallest index first, after all domains join *)
  match
    Par.map ~jobs (fun i -> if i >= 50 then failwith (string_of_int i) else i) xs
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure i -> Alcotest.(check string) "first failure" "50" i

(* Nested parallelism: a [Par.map] inside a pool worker (and a compiled
   VM run, which uses the same pool for its strips) must fall back to
   inline execution instead of deadlocking on the shared worker set —
   and still produce the same values. *)
let test_par_nested () =
  let xs = List.init 20 (fun i -> i) in
  let inner i = List.init 10 (fun j -> (i * 10) + j) in
  let nested =
    Par.map ~jobs (fun i -> Par.map ~jobs succ (inner i)) xs
  in
  Alcotest.(check (list (list int)))
    "nested map matches sequential"
    (List.map (fun i -> List.map succ (inner i)) xs)
    nested;
  let env = [ ("A", Types.float_t [| 128; 128 |]) ] in
  let prog = Parser.expression "np.sum(A * A + A)" in
  let compiled = Exec.compile ~env prog in
  let st = Random.State.make [| 9 |] in
  let inputs = Interp.random_inputs st env in
  let direct = Exec.run compiled (fun n -> List.assoc n inputs) in
  let inside =
    Par.map ~jobs
      (fun _ -> Exec.run compiled (fun n -> List.assoc n inputs))
      xs
  in
  List.iter
    (fun r ->
      if not (Tensor.Ftensor.allclose ~rtol:0. ~atol:0. direct r) then
        Alcotest.fail "VM result changed when run inside a pool worker")
    inside

let stub_signature lib =
  List.map
    (fun (s : Stub.t) -> (Ast.to_string s.prog, s.cost, s.depth))
    (Stub.stubs lib)

let test_stub_enumeration_deterministic () =
  List.iter
    (fun name ->
      let b = Suite.Benchmarks.find name in
      let consts = Superopt.consts_of b.program in
      let enum jobs =
        Stub.enumerate
          ~config:{ Stub.default_config with jobs }
          ~model ~consts b.env
      in
      let seq = enum 1 and par = enum jobs in
      Alcotest.(check int) (name ^ " size") (Stub.size seq) (Stub.size par);
      Alcotest.(check int)
        (name ^ " attempts") (Stub.attempts seq) (Stub.attempts par);
      if stub_signature seq <> stub_signature par then
        Alcotest.failf "%s: stub libraries differ between jobs=1 and jobs=%d"
          name jobs)
    [ "diag_dot"; "common_factor"; "sum_stack" ]

let search_config jobs =
  {
    Search.default_config with
    jobs;
    stub_config = { Search.default_config.stub_config with jobs };
  }

let run_search config (b : Suite.Benchmarks.t) =
  let spec = Sexec.exec_env b.env b.program in
  let bound = Cost.Model.program_cost model b.env b.program in
  Search.run ~config ~model ~env:b.env ~spec ~initial_bound:bound
    ~consts:(Superopt.consts_of b.program) ()

let test_search_deterministic () =
  (* Parallel and sequential search must agree on the synthesized
     program (syntactically) and its cost across a sample of the
     suite. *)
  List.iter
    (fun name ->
      let b = Suite.Benchmarks.find name in
      let seq = run_search (search_config 1) b in
      let par = run_search (search_config jobs) b in
      let render (r : Search.result) =
        match r.program with
        | Some p -> Printf.sprintf "%s @ %.17g" (Ast.to_string p) r.cost
        | None -> "none"
      in
      Alcotest.(check string) name (render seq) (render par))
    [
      "diag_dot"; "log_exp_1"; "scalar_sum"; "common_factor"; "sum_sum";
      "sum_stack"; "sum_diag_dot"; "max_stack"; "trace_dot"; "synth_2";
      "synth_7"; "synth_9"; "synth_12";
    ]

let test_driver_deterministic () =
  let benches =
    List.map Suite.Benchmarks.find [ "diag_dot"; "common_factor"; "synth_2" ]
  in
  let config = Config.default |> Config.with_estimator `Flops in
  let render (d : Suite.Driver.t) =
    List.map
      (fun (r : Suite.Driver.bench_result) ->
        Printf.sprintf "%s %b %.17g %s" r.bench.name r.outcome.improved
          r.outcome.optimized_cost
          (Ast.to_string r.outcome.optimized))
      d.results
  in
  let seq = Suite.Driver.run ~config ~jobs:1 benches in
  let par = Suite.Driver.run ~config ~jobs benches in
  Alcotest.(check (list string)) "driver results" (render seq) (render par);
  (* results arrive in input order even though completion order is
     scheduler-dependent *)
  Alcotest.(check (list string))
    "input order"
    (List.map (fun (b : Suite.Benchmarks.t) -> b.name) benches)
    (List.map
       (fun (r : Suite.Driver.bench_result) -> r.bench.name)
       par.results)

let test_parallel_improves_suite_sample () =
  (* End to end through the builder surface with jobs > 1. *)
  let b = Suite.Benchmarks.find "diag_dot" in
  let config =
    Config.default |> Config.with_estimator `Flops |> Config.with_jobs jobs
  in
  let o = Superopt.optimize ~config ~env:b.env b.program in
  Alcotest.(check bool) "improved" true o.improved;
  Alcotest.(check bool) "verified" true o.verified;
  Alcotest.(check bool) "equivalent" true
    (Sexec.equivalent b.env b.program o.optimized)

let suite =
  [
    Alcotest.test_case "Par.map ordering and exceptions" `Quick test_par_map;
    Alcotest.test_case "nested parallelism falls back inline" `Quick
      test_par_nested;
    Alcotest.test_case "stub enumeration deterministic" `Quick
      test_stub_enumeration_deterministic;
    Alcotest.test_case "search deterministic vs sequential" `Slow
      test_search_deterministic;
    Alcotest.test_case "suite driver deterministic" `Slow
      test_driver_deterministic;
    Alcotest.test_case "parallel end-to-end via Config" `Quick
      test_parallel_improves_suite_sample;
  ]
