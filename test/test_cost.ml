(* Cost models. *)
open Dsl

let env =
  [ ("A", Types.float_t [| 3; 4 |]); ("B", Types.float_t [| 4; 5 |]);
    ("x", Types.float_t [| 4 |]); ("s", Types.scalar_f) ]

let flops src = Cost.Model.program_cost Cost.Model.flops env (Parser.expression src)

let test_flop_counts () =
  Alcotest.(check (float 0.)) "elementwise add" 12. (flops "A + A");
  Alcotest.(check (float 0.)) "matmul 2mnk" 120. (flops "np.dot(A, B)");
  Alcotest.(check (float 0.)) "matvec" 24. (flops "np.dot(A, x)");
  Alcotest.(check (float 0.)) "sum" 12. (flops "np.sum(A)");
  Alcotest.(check (float 0.)) "transpose free" 0. (flops "A.T");
  Alcotest.(check (float 0.)) "chain adds up" 255. (flops "np.dot(A, B) + np.dot(A, B)");
  Alcotest.(check (float 0.)) "scalar broadcast mul" 12. (flops "s * A")

let test_flops_cannot_distinguish () =
  (* The paper's motivation for the measured model (Section VI-C). *)
  Alcotest.(check (float 0.)) "power(A,2) = A*A under flops"
    (flops "np.power(A, 2)") (flops "A * A")

let test_comprehension_cost () =
  let env = [ ("A", Types.float_t [| 4; 3 |]) ] in
  let c =
    Cost.Model.program_cost Cost.Model.flops env
      (Parser.expression "np.stack([r * 2 for r in A])")
  in
  (* 4 iterations x 3 flops each *)
  Alcotest.(check (float 0.)) "loop body charged per iteration" 12. c

let test_type_errors_propagate () =
  match Cost.Model.program_cost Cost.Model.flops env (Parser.expression "A + B") with
  | exception Types.Type_error _ -> ()
  | _ -> Alcotest.fail "ill-typed program should not have a cost"

let test_bytes_moved () =
  let a = Types.float_t [| 10; 10 |] in
  Alcotest.(check (float 0.)) "add traffic" (8. *. 300.)
    (Cost.Model.bytes_moved Ast.Add [ a; a ])

let test_measured_model () =
  let model = Cost.Model.measured ~scale:8 ~min_time:5e-4 () in
  let m = Types.float_t [| 8; 8 |] in
  let t_mul = model.op_cost Ast.Mul [ m; m ] in
  let t_pow = model.op_cost Ast.Pow_op [ m; m ] in
  Alcotest.(check bool) "costs positive" true (t_mul > 0. && t_pow > 0.);
  (* pow is genuinely more expensive than mul per element — the paper's
     example of what the measured model captures *)
  Alcotest.(check bool) "pow > mul" true (t_pow > t_mul);
  (* memoized: second call returns the same number *)
  Alcotest.(check (float 0.)) "memoized" t_mul (model.op_cost Ast.Mul [ m; m ]);
  (* dot costs grow with the contracted size *)
  let a34 = Types.float_t [| 3; 4 |] and b45 = Types.float_t [| 4; 5 |] in
  let a38 = Types.float_t [| 3; 8 |] and b85 = Types.float_t [| 8; 5 |] in
  let small = model.op_cost Ast.Dot [ a34; b45 ] in
  let big = model.op_cost Ast.Dot [ a38; b85 ] in
  Alcotest.(check bool) "dot monotone in k" true (big > small);
  (* attribute scaling keeps reshape applicable *)
  let r = model.op_cost (Ast.Reshape [| 4; 3 |]) [ Types.float_t [| 3; 4 |] ] in
  Alcotest.(check bool) "reshape cost finite" true (r >= 0. && r < 1.)

let test_measured_fallback_scaled_proxy () =
  (* reshape [2,3] -> [6] is valid unscaled, but scaling turns the
     operands into [24,36] (864 elements) while the attribute becomes
     [72]: profiling cannot run, so the model falls back to its
     FLOPs+traffic proxy.  Regression: the proxy used to be computed at
     the unscaled synthesis shapes while the lookup key and every
     profiled entry describe scaled shapes, under-pricing fallback ops
     by the scale factor squared. *)
  let model = Cost.Model.measured ~scale:12 ~overhead:0. () in
  let c = model.op_cost (Ast.Reshape [| 6 |]) [ Types.float_t [| 2; 3 |] ] in
  (* reshape moves no FLOPs; traffic at scale: 8 * (24*36 + 72) * 1e-10 *)
  Alcotest.(check (float 1e-12)) "proxy priced at scaled shapes" 7.488e-7 c

let test_roofline_model () =
  let m = Cost.Model.roofline () in
  let a = Types.float_t [| 64; 64 |] in
  let t_mul = m.op_cost Ast.Mul [ a; a ] in
  let t_pow = m.op_cost Ast.Pow_op [ a; a ] in
  Alcotest.(check bool) "roofline: pow > mul" true (t_pow > t_mul);
  (* deterministic: same inputs, same cost *)
  Alcotest.(check (float 0.)) "roofline deterministic" t_mul
    (m.op_cost Ast.Mul [ a; a ]);
  (* transposes move memory, reshapes are views *)
  let t_tr = m.op_cost (Ast.Transpose None) [ a ] in
  let t_rs = m.op_cost (Ast.Reshape [| 4096 |]) [ a ] in
  Alcotest.(check bool) "transpose pays traffic, reshape is a view" true
    (t_tr > t_rs);
  (* it also drives the search to the paper's rewrites *)
  let env = [ ("A", Types.float_t [| 3; 3 |]) ] in
  let o =
    Stenso.Superopt.superoptimize ~model:m ~env
      (Parser.expression "np.power(A, 2)")
  in
  Alcotest.(check bool) "roofline finds pow->mul" true o.improved

let test_iter_scale () =
  Alcotest.(check int) "flops model has no loop scaling" 1
    Cost.Model.flops.iter_scale;
  let m = Cost.Model.measured ~scale:8 ~min_time:5e-4 () in
  Alcotest.(check int) "measured model scales trip counts" 8 m.iter_scale

let suite =
  [
    Alcotest.test_case "FLOP counts" `Quick test_flop_counts;
    Alcotest.test_case "flops blind to op kind" `Quick
      test_flops_cannot_distinguish;
    Alcotest.test_case "comprehension cost" `Quick test_comprehension_cost;
    Alcotest.test_case "type errors propagate" `Quick test_type_errors_propagate;
    Alcotest.test_case "memory traffic" `Quick test_bytes_moved;
    Alcotest.test_case "measured model" `Slow test_measured_model;
    Alcotest.test_case "measured fallback at scaled shapes" `Quick
      test_measured_fallback_scaled_proxy;
    Alcotest.test_case "roofline model" `Quick test_roofline_model;
    Alcotest.test_case "iteration scaling" `Slow test_iter_scale;
  ]
