(* The persistent synthesis store: the generic content-addressed layer
   (round-trip, LRU, corruption tolerance, concurrent writers), its
   integration into Superopt.optimize (cache-first serving with
   byte-identical programs), the serve protocol, and the satellites that
   ride on the same machinery (per-sink spec counters, config
   fingerprints, the measured model's atomic cost cache). *)
open Stenso

module Json = Telemetry.Json

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "stenso-test-store-%d-%d" (Unix.getpid ()) !n)
    in
    (* The store mkdir_p's its own layout. *)
    d

let schema = Store.schema

(* ------------------------------------------------------------------ *)
(* Generic layer                                                       *)
(* ------------------------------------------------------------------ *)

let test_round_trip () =
  let dir = fresh_dir () in
  let s = Store.open_store ~dir () in
  Alcotest.(check (option reject)) "miss before add" None
    (Store.find s ~schema "k1");
  Store.add s ~schema "k1" (Json.Str "payload one");
  (match Store.find s ~schema "k1" with
  | Some (Json.Str "payload one") -> ()
  | _ -> Alcotest.fail "mem round-trip failed");
  let c = Store.stats s in
  Alcotest.(check int) "one miss" 1 c.Store.misses;
  Alcotest.(check int) "one mem hit" 1 c.Store.mem_hits;
  Alcotest.(check int) "one write" 1 c.Store.writes;
  (* A fresh handle on the same directory must serve from disk. *)
  let s2 = Store.open_store ~dir () in
  (match Store.find s2 ~schema "k1" with
  | Some (Json.Str "payload one") -> ()
  | _ -> Alcotest.fail "disk round-trip failed");
  Alcotest.(check int) "disk hit counted" 1 (Store.stats s2).Store.disk_hits;
  (* No temp files left behind by the atomic writes. *)
  let rec scan acc p =
    if Sys.is_directory p then
      Array.fold_left (fun a f -> scan a (Filename.concat p f)) acc
        (Sys.readdir p)
    else p :: acc
  in
  List.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        Alcotest.failf "leftover temp file %s" f)
    (scan [] dir)

let test_lru_eviction () =
  let dir = fresh_dir () in
  let s = Store.open_store ~mem_capacity:2 ~dir () in
  Store.add s ~schema "a" (Json.Int 1);
  Store.add s ~schema "b" (Json.Int 2);
  (* Touch [a] so [b] is the LRU victim when [c] arrives. *)
  ignore (Store.find s ~schema "a");
  Store.add s ~schema "c" (Json.Int 3);
  Alcotest.(check (list string)) "MRU order after eviction" [ "c"; "a" ]
    (Store.lru_keys s);
  Alcotest.(check int) "one eviction" 1 (Store.stats s).Store.evictions;
  (* The evicted entry is still on disk and comes back as a disk hit. *)
  (match Store.find s ~schema "b" with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "evicted entry lost");
  Alcotest.(check int) "reload is a disk hit" 1
    (Store.stats s).Store.disk_hits

let write_raw path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let test_corrupt_truncated () =
  let dir = fresh_dir () in
  let s = Store.open_store ~dir () in
  Store.add s ~schema "k" (Json.Str "good");
  let path = Store.entry_path s "k" in
  (* Simulate a torn legacy write: cut the file mid-envelope. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  write_raw path (String.sub full 0 (String.length full / 2));
  let s2 = Store.open_store ~dir () in
  Alcotest.(check (option reject)) "truncated entry rejected" None
    (Store.find s2 ~schema "k");
  Alcotest.(check int) "corruption counted" 1 (Store.stats s2).Store.corrupt;
  Alcotest.(check bool) "corrupt file evicted" false (Sys.file_exists path)

let test_corrupt_wrong_schema () =
  let dir = fresh_dir () in
  let s = Store.open_store ~dir () in
  Store.add s ~schema "k" (Json.Str "good");
  let path = Store.entry_path s "k" in
  write_raw path
    (Json.to_string
       (Json.Obj
          [
            ("schema", Json.Str "stenso.store/0");
            ("key", Json.Str "k");
            ("payload", Json.Str "stale");
          ]));
  let s2 = Store.open_store ~dir () in
  Alcotest.(check (option reject)) "old schema rejected" None
    (Store.find s2 ~schema "k");
  Alcotest.(check bool) "stale file evicted" false (Sys.file_exists path)

let test_concurrent_writers () =
  let dir = fresh_dir () in
  (* Two handles on the same directory, as two processes would hold,
     racing writes to overlapping keys: every entry must decode (atomic
     rename admits no torn state), landing on one of the two payloads. *)
  let s1 = Store.open_store ~dir () in
  let s2 = Store.open_store ~dir () in
  let keys = List.init 32 (fun i -> Printf.sprintf "key-%d" i) in
  let writer s tag () =
    List.iter (fun k -> Store.add s ~schema k (Json.Str tag)) keys
  in
  let d1 = Domain.spawn (writer s1 "one") in
  let d2 = Domain.spawn (writer s2 "two") in
  Domain.join d1;
  Domain.join d2;
  let s3 = Store.open_store ~dir () in
  List.iter
    (fun k ->
      match Store.find s3 ~schema k with
      | Some (Json.Str ("one" | "two")) -> ()
      | Some _ -> Alcotest.failf "torn payload for %s" k
      | None -> Alcotest.failf "lost entry %s" k)
    keys;
  Alcotest.(check int) "no corruption under the race" 0
    (Store.stats s3).Store.corrupt

(* ------------------------------------------------------------------ *)
(* Cache-first optimize                                                *)
(* ------------------------------------------------------------------ *)

let parse src = Dsl.Parser.program src

let config =
  Config.default
  |> Config.with_estimator `Flops
  |> Config.with_timeout 20.

let test_optimize_served_from_store () =
  let dir = fresh_dir () in
  let env, prog = parse "input A : f32[2,2]\ninput B : f32[2,2]\nreturn np.exp(np.log(A + B))" in
  let store = Store.open_store ~dir () in
  let tel1 = Telemetry.create () in
  let o1 = Superopt.optimize ~tel:tel1 ~config ~store ~env prog in
  Alcotest.(check bool) "first run searches" false o1.from_cache;
  Alcotest.(check bool) "first run improves" true o1.improved;
  let tel2 = Telemetry.create () in
  let o2 = Superopt.optimize ~tel:tel2 ~config ~store ~env prog in
  Alcotest.(check bool) "second run served from cache" true o2.from_cache;
  Alcotest.(check string) "byte-identical program"
    (Dsl.Parser.unparse env o1.optimized)
    (Dsl.Parser.unparse env o2.optimized);
  Alcotest.(check (float 0.)) "same cost" o1.optimized_cost o2.optimized_cost;
  Alcotest.(check (option (pair string int))) "store.hits in telemetry"
    (Some ("store.hits", 1))
    (List.find_opt
       (fun (n, _) -> String.equal n "store.hits")
       (Telemetry.counters tel2));
  let names kind =
    List.filter_map
      (fun (e : Telemetry.event) ->
        if String.equal e.kind kind then Some e.name else None)
      (Telemetry.events tel2)
  in
  Alcotest.(check bool) "no search phase on a hit" false
    (List.mem "phase.search" (names "span"));
  Alcotest.(check bool) "store.serve event in the trace" true
    (List.mem "store.serve" (names "event"));
  (* A fresh handle (cold memory) must also serve it, from disk. *)
  let store2 = Store.open_store ~dir () in
  let o3 = Superopt.optimize ~config ~store:store2 ~env prog in
  Alcotest.(check bool) "served across handles" true o3.from_cache

let test_optimize_invalidates_corrupt_entry () =
  let dir = fresh_dir () in
  let env, prog = parse "input A : f32[2,2]\nreturn np.sqrt(A * A)" in
  let store = Store.open_store ~dir () in
  let o1 = Superopt.optimize ~config ~store ~env prog in
  Alcotest.(check bool) "fresh outcome" false o1.from_cache;
  (* Corrupt every object on disk; a cold handle must fall back to the
     search, never fail. *)
  let objects = Filename.concat dir "objects" in
  Array.iter
    (fun sub ->
      let subdir = Filename.concat objects sub in
      Array.iter
        (fun f -> write_raw (Filename.concat subdir f) "{torn")
        (Sys.readdir subdir))
    (Sys.readdir objects);
  let store2 = Store.open_store ~dir () in
  let o2 = Superopt.optimize ~config ~store:store2 ~env prog in
  Alcotest.(check bool) "fell back to the search" false o2.from_cache;
  Alcotest.(check string) "same result regardless"
    (Dsl.Parser.unparse env o1.optimized)
    (Dsl.Parser.unparse env o2.optimized)

(* ------------------------------------------------------------------ *)
(* Serve protocol                                                      *)
(* ------------------------------------------------------------------ *)

let response_field line name =
  match Json.of_string line with
  | Error msg -> Alcotest.failf "response is not JSON: %s" msg
  | Ok doc -> Json.member name doc

let bool_field line name =
  Option.bind (response_field line name) Json.to_bool_opt

let test_handle_line () =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir () in
  let h = Serve.handler ~store ~base:config () in
  let malformed = Serve.handle_line h "{not json at all" in
  Alcotest.(check (option bool)) "malformed line is ok:false" (Some false)
    (bool_field malformed "ok");
  let no_program = Serve.handle_line h {|{"id": 7}|} in
  Alcotest.(check (option bool)) "missing program is ok:false" (Some false)
    (bool_field no_program "ok");
  let bad_program =
    Serve.handle_line h {|{"id": 8, "program": "return np.dot(A)"}|}
  in
  Alcotest.(check (option bool)) "unparseable program is ok:false"
    (Some false)
    (bool_field bad_program "ok");
  let req =
    {|{"id": 1, "program": "input A : f32[2,2]\ninput B : f32[2,2]\nreturn np.exp(np.log(A + B))"}|}
  in
  let first = Serve.handle_line h req in
  Alcotest.(check (option bool)) "valid request is ok:true" (Some true)
    (bool_field first "ok");
  Alcotest.(check (option bool)) "first serve is a miss" (Some false)
    (bool_field first "cache_hit");
  let second = Serve.handle_line h req in
  Alcotest.(check (option bool)) "second serve is a hit" (Some true)
    (bool_field second "cache_hit");
  Alcotest.(check (option string)) "id echoed"
    (Some (Json.to_string (Json.Int 1)))
    (Option.map Json.to_string (response_field second "id"));
  Alcotest.(check string) "byte-identical optimized text"
    (Option.get
       (Option.bind (response_field first "optimized") Json.to_string_opt))
    (Option.get
       (Option.bind (response_field second "optimized") Json.to_string_opt));
  Alcotest.(check (option string)) "version stamped"
    (Some Version.current)
    (Option.bind (response_field second "version") Json.to_string_opt)

let test_busy_line () =
  Alcotest.(check (option bool)) "busy is ok:false" (Some false)
    (bool_field Serve.busy_line "ok")

(* ------------------------------------------------------------------ *)
(* Satellites                                                          *)
(* ------------------------------------------------------------------ *)

let test_spec_counters_per_sink () =
  let env, prog = parse "input A : f32[2,2]\nreturn A + A" in
  let spec () = Dsl.Sexec.exec_env env prog in
  let totals c =
    let builds, hits, _ = Spec.counters_stats c in
    builds + hits
  in
  let c1 = Spec.fresh_counters () in
  let c2 = Spec.fresh_counters () in
  Spec.with_counters c1 (fun () -> ignore (Spec.key (spec ())));
  Alcotest.(check int) "one keying attributed to c1" 1 (totals c1);
  Spec.with_counters c2 (fun () ->
      ignore (Spec.key (spec ()));
      ignore (Spec.key (spec ())));
  Alcotest.(check int) "c2 sees only its own work" 2 (totals c2);
  Alcotest.(check int) "c1 untouched by c2's scope" 1 (totals c1);
  (* Scopes restore on exit: keying outside attributes to neither. *)
  ignore (Spec.key (spec ()));
  Alcotest.(check int) "outside work not attributed" 1 (totals c1);
  (* Nested scopes restore the outer cell. *)
  Spec.with_counters c1 (fun () ->
      Spec.with_counters c2 (fun () -> ignore (Spec.key (spec ())));
      ignore (Spec.key (spec ())));
  Alcotest.(check int) "outer scope restored after nesting" 2 (totals c1);
  Alcotest.(check int) "inner scope credited" 3 (totals c2)

let test_config_fingerprint () =
  let fp = Config.fingerprint in
  let base = Config.default in
  Alcotest.(check string) "jobs excluded" (fp base)
    (fp (Config.with_jobs 8 base));
  Alcotest.(check bool) "extended_ops included" false
    (String.equal (fp base) (fp (Config.with_extended_ops true base)));
  Alcotest.(check bool) "timeout included" false
    (String.equal (fp base) (fp (Config.with_timeout 1.5 base)));
  Alcotest.(check bool) "estimator included" false
    (String.equal (fp base) (fp (Config.with_estimator `Flops base)))

let test_measured_cost_cache_round_trip () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let cache_file = Filename.concat dir "ops.cache" in
  let env, prog = parse "input A : f32[2,2]\nreturn A + A" in
  let m1 = Cost.Model.measured ~scale:2 ~min_time:1e-6 ~cache_file () in
  let c1 = Cost.Model.program_cost m1 env prog in
  Alcotest.(check bool) "cache file written" true (Sys.file_exists cache_file);
  (* Every line is a well-formed fingerprint<TAB>seconds<TAB>stddev
     record — the atomic whole-table rewrite never leaves partial
     lines. *)
  let ic = open_in cache_file in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char '\t' line with
       | [ _key; secs; sd ]
         when Option.is_some (float_of_string_opt secs)
              && Option.is_some (float_of_string_opt sd) ->
           ()
       | _ -> Alcotest.failf "malformed cache line %S" line
     done
   with End_of_file -> close_in ic);
  (* A second model warm-starts from the file: same cost, no re-profiling
     (every lookup is a cache hit). *)
  let tel = Telemetry.create () in
  let m2 = Cost.Model.measured ~tel ~scale:2 ~min_time:1e-6 ~cache_file () in
  let c2 = Cost.Model.program_cost m2 env prog in
  Alcotest.(check (float 0.)) "warm model agrees" c1 c2;
  let counter name =
    Option.value ~default:0 (List.assoc_opt name (Telemetry.counters tel))
  in
  Alcotest.(check bool) "warm lookups hit" true (counter "cost.cache_hits" > 0);
  Alcotest.(check int) "no warm misses" 0 (counter "cost.cache_misses")

let test_report_version () =
  let doc = Suite.Driver.report { Suite.Driver.results = []; elapsed = 0. } in
  Alcotest.(check (option string)) "suite report carries the version"
    (Some Version.current)
    (Option.bind (Json.member "version" doc) Json.to_string_opt);
  (match Suite.Driver.validate_report doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "report with version invalid: %s" e);
  (* Archived reports predate the field: still valid without it. *)
  (match doc with
  | Json.Obj fields -> (
      let without =
        Json.Obj (List.filter (fun (n, _) -> n <> "version") fields)
      in
      match Suite.Driver.validate_report without with
      | Ok () -> ()
      | Error e -> Alcotest.failf "report without version invalid: %s" e)
  | _ -> Alcotest.fail "report is not an object")

let suite =
  [
    Alcotest.test_case "round-trip through memory and disk" `Quick
      test_round_trip;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "truncated entry rejected and evicted" `Quick
      test_corrupt_truncated;
    Alcotest.test_case "wrong schema version rejected" `Quick
      test_corrupt_wrong_schema;
    Alcotest.test_case "concurrent writers never tear" `Quick
      test_concurrent_writers;
    Alcotest.test_case "optimize serves repeats from the store" `Quick
      test_optimize_served_from_store;
    Alcotest.test_case "corrupt store entries fall back to search" `Quick
      test_optimize_invalidates_corrupt_entry;
    Alcotest.test_case "serve protocol handles good and bad lines" `Quick
      test_handle_line;
    Alcotest.test_case "busy response is well-formed" `Quick test_busy_line;
    Alcotest.test_case "spec key counters attribute per sink" `Quick
      test_spec_counters_per_sink;
    Alcotest.test_case "config fingerprint covers what matters" `Quick
      test_config_fingerprint;
    Alcotest.test_case "measured cost cache round-trips atomically" `Quick
      test_measured_cost_cache_round_trip;
    Alcotest.test_case "suite report carries the version" `Quick
      test_report_version;
  ]
