(* Tiered serving end to end: offline mining into the store
   ([stenso.rules/1]), tier-2 certification (mined rules + e-graph
   saturation + optima lookup, fully re-verified), tier-1 repeats, and
   the tier-3 fallback with database feedback. *)
open Dsl
open Stenso

let p = Parser.expression
let model = Cost.Model.flops

let config =
  Config.default
  |> Config.with_estimator `Flops
  |> Config.with_rules_depth 2

let bench name =
  match Suite.Benchmarks.find_opt name with
  | Some b -> b
  | None -> Alcotest.failf "unknown benchmark %s" name

(* A fresh store directory per call; tests must not share state. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "stenso-tiers-%d-%d" (Unix.getpid ()) !n)
    in
    dir

let env2 =
  [ ("A", Types.float_t [| 3; 3 |]); ("B", Types.float_t [| 3; 3 |]) ]

let test_mine_env () =
  let db, stats = Mine.mine_env ~depth:2 ~model env2 in
  Alcotest.(check bool) "rules mined" true (stats.rules > 0);
  Alcotest.(check bool) "optima recorded" true (stats.optima > 0);
  (* every mined rule is closed and strictly gainful *)
  List.iter
    (fun (r : Rules_db.rule) ->
      if not (Rules.closed r.rule) then
        Alcotest.failf "open rule mined: %s" (Rules.to_string r.rule);
      if r.gain <= 0. then
        Alcotest.failf "gainless rule mined: %s" (Rules.to_string r.rule))
    db.rules;
  (* exp(log(X)) ⇒ X is minable at depth 2 and applies to fresh terms *)
  let target = p "np.exp(np.log(np.add(P, Q)))" in
  let eliminates (r : Rules_db.rule) =
    match Rules.apply_once r.rule target with
    | Some r -> Ast.equal r (p "np.add(P, Q)")
    | None -> false
  in
  Alcotest.(check bool) "exp∘log eliminated by some mined rule" true
    (List.exists eliminates db.rules);
  (* the optima table knows the cheapest implementation of this spec *)
  let concrete = p "np.exp(np.log(np.add(A, B)))" in
  let spec = Sexec.exec_env env2 concrete in
  match Rules_db.lookup_optimum db (Rules_db.spec_digest spec) with
  | Some (cost, prog) ->
      Alcotest.(check (float 1e-9)) "optimum cost" 9. cost;
      Alcotest.(check bool) "optimum is equivalent" true
        (Sexec.equivalent env2 concrete prog)
  | None -> Alcotest.fail "spec missing from the optima table"

let test_truncated_mine () =
  (* A capped enumeration must stamp the entry truncated and refuse to
     mint optima from the partial library — a "cheapest known program"
     claim over a space the miner never finished exploring would let
     tier 2 certify beatable answers. *)
  let db, stats = Mine.mine_env ~max_stubs:5 ~depth:2 ~model env2 in
  Alcotest.(check bool) "stats flag truncation" true stats.truncated;
  Alcotest.(check bool) "entry stamped truncated" true db.truncated;
  Alcotest.(check int) "no optima from a truncated library" 0
    (Hashtbl.length db.optima);
  (* the flag survives the store round-trip *)
  let dir = fresh_dir () in
  let key =
    Rules_db.key ~env:env2 ~model_id:model.Cost.Model.name ~depth:2
  in
  let store = Store.open_store ~dir () in
  Rules_db.record store ~key db;
  let store' = Store.open_store ~dir () in
  (match Rules_db.find store' ~key with
  | Some db' ->
      Alcotest.(check bool) "truncated flag round-trips" true db'.truncated
  | None -> Alcotest.fail "recorded entry not found");
  (* tier-3 feedback grows the entry without clearing the mark *)
  Rules_db.record_feedback store' ~key ~model_id:model.Cost.Model.name
    ~depth:2 ~spec_digest:"deadbeef" ~cost:1. ~prog:"A" ();
  (match Rules_db.find store' ~key with
  | Some db' ->
      Alcotest.(check bool) "feedback preserves truncation" true
        db'.truncated;
      Alcotest.(check int) "feedback optimum recorded" 1
        (Hashtbl.length db'.optima)
  | None -> Alcotest.fail "entry lost after feedback");
  (* an uncapped mine of the same environment is complete *)
  let db_full, stats_full = Mine.mine_env ~depth:2 ~model env2 in
  Alcotest.(check bool) "uncapped mine not truncated" false
    stats_full.truncated;
  Alcotest.(check bool) "uncapped mine publishes optima" true
    (Hashtbl.length db_full.optima > 0)

let test_db_roundtrip_and_corruption () =
  let dir = fresh_dir () in
  let db, _ = Mine.mine_env ~depth:2 ~model env2 in
  let key =
    Rules_db.key ~env:env2 ~model_id:model.Cost.Model.name ~depth:2
  in
  let store = Store.open_store ~dir () in
  Rules_db.record store ~key db;
  (* a fresh handle decodes the entry from disk *)
  let store' = Store.open_store ~dir () in
  (match Rules_db.find store' ~key with
  | Some db' ->
      Alcotest.(check int) "rules survive the round-trip"
        (List.length db.rules) (List.length db'.rules);
      Alcotest.(check int) "optima survive the round-trip"
        (Hashtbl.length db.optima)
        (Hashtbl.length db'.optima);
      Alcotest.(check int) "depth preserved" db.depth db'.depth
  | None -> Alcotest.fail "recorded entry not found");
  (* corrupt the on-disk payload: a fresh handle must treat it as a
     miss (and delete it), never raise *)
  let path = Store.entry_path store key in
  let oc = open_out path in
  output_string oc "{ definitely not a rules payload";
  close_out oc;
  let store'' = Store.open_store ~dir () in
  Alcotest.(check bool) "corrupt entry reads as a miss" true
    (Rules_db.find store'' ~key = None);
  Alcotest.(check bool) "corrupt entry deleted" false (Sys.file_exists path)

let test_tier2_then_tier1 () =
  let b = bench "log_exp_1" in
  let store = Store.open_store ~dir:(fresh_dir ()) () in
  ignore (Mine.mine ~depth:2 ~model ~store [ (b.name, b.env) ]);
  let tel = Telemetry.create () in
  let o1 = Superopt.optimize ~tel ~config ~store ~model ~env:b.env b.program in
  Alcotest.(check int) "first request answered by tier 2" 2 o1.tier;
  Alcotest.(check bool) "improved" true o1.improved;
  Alcotest.(check bool) "verified" true o1.verified;
  Alcotest.(check bool) "reaches the known optimum" true
    (Sexec.equivalent b.env o1.optimized b.expected_opt);
  (* the served answer stands up to the same scrutiny as a search
     result: symbolic robustness and VM differential validation *)
  Alcotest.(check bool) "robustly equivalent" true
    (Superopt.robust_equivalent ~env:b.env o1.original o1.optimized);
  Alcotest.(check bool) "validates concretely" true
    (Superopt.validate_concrete ~env:b.env o1.original o1.optimized);
  let counters = Telemetry.counters tel in
  Alcotest.(check (option int)) "tier2.hits counted" (Some 1)
    (List.assoc_opt "tier2.hits" counters);
  Alcotest.(check (option int)) "tier.hit counted" (Some 1)
    (List.assoc_opt "tier.hit" counters);
  (* the certified answer was recorded: the repeat is a tier-1 hit *)
  let o2 = Superopt.optimize ~config ~store ~model ~env:b.env b.program in
  Alcotest.(check int) "repeat answered by tier 1" 1 o2.tier;
  Alcotest.(check bool) "repeat from cache" true o2.from_cache;
  Alcotest.(check (float 1e-9)) "same cost" o1.optimized_cost
    o2.optimized_cost

let test_tier3_feedback () =
  (* diag_dot's true optimum is depth 3 — outside the depth-2 mined
     space — so the first request must fall through to the search (no
     degraded tier-2 certification), whose result then feeds the
     database: a second store sharing the rules entry can replay it. *)
  let b = bench "diag_dot" in
  let store = Store.open_store ~dir:(fresh_dir ()) () in
  ignore (Mine.mine ~depth:2 ~model ~store [ (b.name, b.env) ]);
  let o1 = Superopt.optimize ~config ~store ~model ~env:b.env b.program in
  Alcotest.(check int) "deep optimum forces tier 3" 3 o1.tier;
  Alcotest.(check bool) "search improved it" true o1.improved;
  Alcotest.(check bool) "matches the expected optimum" true
    (Sexec.equivalent b.env o1.optimized b.expected_opt);
  (* the fed-back optimum is now in the rules database *)
  let key =
    Rules_db.key ~env:b.env ~model_id:model.Cost.Model.name ~depth:2
  in
  let db =
    match Rules_db.find store ~key with
    | Some db -> db
    | None -> Alcotest.fail "rules entry vanished"
  in
  let spec = Sexec.exec_env b.env b.program in
  match Rules_db.lookup_optimum db (Rules_db.spec_digest spec) with
  | Some (cost, prog) ->
      Alcotest.(check (float 1e-9)) "fed-back optimum cost"
        o1.optimized_cost cost;
      Alcotest.(check bool) "fed-back program equivalent" true
        (Sexec.equivalent b.env prog b.program)
  | None -> Alcotest.fail "tier-3 result was not fed back"

(* Mined-rule saturation alone (no optima lookup, no search) strictly
   improves these suite benchmarks all the way to the known optimum. *)
let saturation_benches =
  [ "log_exp_1"; "synth_3"; "synth_5"; "synth_11"; "synth_12" ]

let test_saturation_reaches_optimum () =
  List.iter
    (fun name ->
      let b = bench name in
      let db, _ = Mine.mine_env ~depth:2 ~model b.env in
      let rules = List.map (fun r -> r.Rules_db.rule) db.rules in
      let g = Egraph.create b.env in
      let cls = Egraph.add g b.program in
      ignore (Egraph.saturate ~rules g);
      let best = Egraph.extract g ~model cls in
      let got = Cost.Model.program_cost model b.env best in
      let opt = Cost.Model.program_cost model b.env b.expected_opt in
      let orig = Cost.Model.program_cost model b.env b.program in
      if got >= orig then
        Alcotest.failf "%s: saturation did not improve (%.6g)" name got;
      if got > opt +. 1e-6 then
        Alcotest.failf "%s: saturation reached %.6g, optimum is %.6g (%s)"
          name got opt (Ast.to_string best);
      if not (Sexec.equivalent b.env b.program best) then
        Alcotest.failf "%s: extraction broke equivalence" name)
    saturation_benches

let test_tiers_report () =
  let benches = [ bench "log_exp_1"; bench "dot_trans_2" ] in
  let store = Store.open_store ~dir:(fresh_dir ()) () in
  ignore
    (Mine.mine ~depth:2 ~model ~store
       (List.map (fun (b : Suite.Benchmarks.t) -> (b.name, b.env)) benches));
  let baseline =
    Suite.Driver.run ~config:(Config.with_rules_depth 0 config) benches
  in
  let cold = Suite.Driver.run ~config ~store benches in
  let warm = Suite.Driver.run ~config ~store benches in
  let doc = Suite.Driver.tiers_report ~config ~baseline ~cold ~warm () in
  (match Suite.Driver.validate_tiers_report doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid tiers report: %s" e);
  let tiers (t : Suite.Driver.t) =
    List.map
      (fun (r : Suite.Driver.bench_result) -> r.outcome.Superopt.tier)
      t.results
  in
  Alcotest.(check (list int)) "cold pass never searches" [ 2; 2 ]
    (tiers cold);
  Alcotest.(check (list int)) "warm pass is all store hits" [ 1; 1 ]
    (tiers warm);
  (* tiered answers must agree with the baseline search *)
  List.iter2
    (fun (bl : Suite.Driver.bench_result) (cd : Suite.Driver.bench_result) ->
      Alcotest.(check (float 1e-9))
        (bl.bench.name ^ ": tiered cost equals baseline")
        bl.outcome.Superopt.optimized_cost cd.outcome.Superopt.optimized_cost)
    baseline.results cold.results

let test_config_fingerprint () =
  (* legacy outcome-store keys must stay byte-identical when tier 2 is
     off; enabling it must change the fingerprint *)
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let base = Config.fingerprint Config.default in
  Alcotest.(check bool) "no rules marker by default" false
    (contains ~sub:"rules=" base);
  let with_rules =
    Config.fingerprint (Config.with_rules_depth 2 Config.default)
  in
  Alcotest.(check bool) "depth fingerprinted" true
    (base <> with_rules);
  Alcotest.(check string) "depth 0 is off" base
    (Config.fingerprint (Config.with_rules_depth 0 Config.default))

let suite =
  [
    Alcotest.test_case "mine one environment" `Quick test_mine_env;
    Alcotest.test_case "truncated mine refuses optima" `Quick
      test_truncated_mine;
    Alcotest.test_case "rules db round-trip + corruption" `Quick
      test_db_roundtrip_and_corruption;
    Alcotest.test_case "tier 2 then tier 1" `Quick test_tier2_then_tier1;
    Alcotest.test_case "tier 3 fallback + feedback" `Quick
      test_tier3_feedback;
    Alcotest.test_case "saturation reaches optima" `Quick
      test_saturation_reaches_optimum;
    Alcotest.test_case "tiers report" `Quick test_tiers_report;
    Alcotest.test_case "config fingerprint" `Quick test_config_fingerprint;
  ]
