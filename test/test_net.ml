(* Stenso.Net building blocks and the serving semantics on top of them:
   endpoint addressing, line buffering, single-flight coalescing, the
   serve protocol's tier/coalesced/refined surface, background tier-3
   refinement end to end (closing the BENCH_tiers sum_diag_dot cost
   mismatch without any client action), and the serve-load report. *)
open Stenso
module Json = Telemetry.Json

let model = Cost.Model.flops

let config =
  Config.default
  |> Config.with_estimator `Flops
  |> Config.with_rules_depth 2

let bench name =
  match Suite.Benchmarks.find_opt name with
  | Some b -> b
  | None -> Alcotest.failf "unknown benchmark %s" name

(* A fresh store directory per call; tests must not share state. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stenso-net-%d-%d" (Unix.getpid ()) !n)

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> v
  | None -> Alcotest.failf "missing or mistyped field %S" name

let parse_response line =
  match Json.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e

(* {2 Endpoints} *)

let test_endpoint_parse () =
  let ok s =
    match Net.Endpoint.parse s with
    | Ok e -> e
    | Error m -> Alcotest.failf "parse %S: %s" s m
  in
  (match ok "127.0.0.1:7070" with
  | Net.Endpoint.Tcp (h, p) ->
      Alcotest.(check string) "host" "127.0.0.1" h;
      Alcotest.(check int) "port" 7070 p
  | e -> Alcotest.failf "expected tcp, got %s" (Net.Endpoint.to_string e));
  (match ok "tcp://localhost:0" with
  | Net.Endpoint.Tcp (h, p) ->
      Alcotest.(check string) "host" "localhost" h;
      Alcotest.(check int) "ephemeral port" 0 p
  | e -> Alcotest.failf "expected tcp, got %s" (Net.Endpoint.to_string e));
  (match ok "unix:///tmp/stenso.sock" with
  | Net.Endpoint.Unix_sock p ->
      Alcotest.(check string) "path" "/tmp/stenso.sock" p
  | e -> Alcotest.failf "expected unix, got %s" (Net.Endpoint.to_string e));
  (match ok "/tmp/bare-path.sock" with
  | Net.Endpoint.Unix_sock p ->
      Alcotest.(check string) "bare path" "/tmp/bare-path.sock" p
  | e -> Alcotest.failf "expected unix, got %s" (Net.Endpoint.to_string e));
  (* textual round-trip through [to_string] *)
  List.iter
    (fun s ->
      let e = ok s in
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %S" s)
        true
        (ok (Net.Endpoint.to_string e) = e))
    [ "127.0.0.1:7070"; "tcp://h:80"; "unix:///x/y.sock"; "/x/y.sock" ];
  (* rejects *)
  List.iter
    (fun s ->
      match Net.Endpoint.parse s with
      | Error _ -> ()
      | Ok e ->
          Alcotest.failf "parse %S unexpectedly ok: %s" s
            (Net.Endpoint.to_string e))
    [ ""; "unix://"; "host:notaport"; "host:99999999" ]

let test_endpoint_parse_list () =
  (match Net.Endpoint.parse_list "/a.sock,tcp://h:1,127.0.0.1:2" with
  | Ok
      [
        Net.Endpoint.Unix_sock "/a.sock";
        Net.Endpoint.Tcp ("h", 1);
        Net.Endpoint.Tcp ("127.0.0.1", 2);
      ] ->
      ()
  | Ok eps ->
      Alcotest.failf "wrong parse: %s"
        (String.concat "," (List.map Net.Endpoint.to_string eps))
  | Error e -> Alcotest.failf "parse_list: %s" e);
  (match Net.Endpoint.parse_list "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty list accepted");
  match Net.Endpoint.parse_list "/a.sock,host:bad" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad element accepted"

(* {2 Line buffering} *)

let test_take_line () =
  let buf = Buffer.create 32 in
  Buffer.add_string buf "one\r\ntwo\npartial";
  Alcotest.(check (option string)) "crlf line" (Some "one")
    (Net.Lineio.take_line buf);
  Alcotest.(check (option string)) "lf line" (Some "two")
    (Net.Lineio.take_line buf);
  Alcotest.(check (option string)) "no complete line" None
    (Net.Lineio.take_line buf);
  Alcotest.(check string) "partial preserved" "partial"
    (Buffer.contents buf);
  Buffer.add_string buf "-done\n";
  Alcotest.(check (option string)) "completed later" (Some "partial-done")
    (Net.Lineio.take_line buf)

(* {2 Single flight} *)

let test_single_flight () =
  let sf : int Net.Single_flight.t = Net.Single_flight.create () in
  (* Block the leader inside its computation until the waiter has had
     time to join the flight, then assert exactly one computation ran. *)
  let gate = Mutex.create () in
  let cond = Condition.create () in
  let entered = ref false in
  let release = ref false in
  let calls = Atomic.make 0 in
  let compute () =
    Atomic.incr calls;
    Mutex.protect gate (fun () ->
        entered := true;
        Condition.broadcast cond;
        while not !release do
          Condition.wait cond gate
        done);
    42
  in
  let r_leader = ref None and r_waiter = ref None in
  let leader =
    Thread.create (fun () -> r_leader := Some (Net.Single_flight.run sf "k" compute)) ()
  in
  Mutex.protect gate (fun () ->
      while not !entered do
        Condition.wait cond gate
      done);
  let waiter =
    Thread.create
      (fun () ->
        r_waiter :=
          Some
            (Net.Single_flight.run sf "k" (fun () ->
                 Alcotest.fail "waiter must not compute")))
      ()
  in
  Thread.delay 0.05;
  Mutex.protect gate (fun () ->
      release := true;
      Condition.broadcast cond);
  Thread.join leader;
  Thread.join waiter;
  Alcotest.(check (option (pair int bool)))
    "leader computes" (Some (42, false)) !r_leader;
  Alcotest.(check (option (pair int bool)))
    "waiter coalesces" (Some (42, true)) !r_waiter;
  Alcotest.(check int) "one computation" 1 (Atomic.get calls);
  Alcotest.(check int) "coalesced counted" 1 (Net.Single_flight.coalesced sf);
  (* the key is free again: a later run computes fresh *)
  Alcotest.(check (pair int bool))
    "key released" (7, false)
    (Net.Single_flight.run sf "k" (fun () -> 7));
  (* a leader exception propagates and releases the key *)
  (match Net.Single_flight.run sf "boom" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check (pair int bool))
    "key released after failure" (9, false)
    (Net.Single_flight.run sf "boom" (fun () -> 9))

(* {2 Serve responses} *)

let request_line ?(id = Json.Str "t") (b : Suite.Benchmarks.t) =
  Json.to_string
    (Json.Obj
       [ ("id", id); ("program", Json.Str (Dsl.Parser.unparse b.env b.program)) ])

(* Without a store every request runs the full search: tier 3, final. *)
let test_serve_response_fields () =
  let b = bench "elem_square" in
  let h = Serve.handler ~base:config () in
  let r = parse_response (Serve.handle_line h (request_line ~id:(Json.Int 7) b)) in
  Alcotest.(check bool) "ok" true (field "ok" Json.to_bool_opt r);
  Alcotest.(check int) "id echoed" 7 (field "id" Json.to_int_opt r);
  Alcotest.(check int) "tier" 3 (field "tier" Json.to_int_opt r);
  Alcotest.(check bool) "not coalesced" false
    (field "coalesced" Json.to_bool_opt r);
  Alcotest.(check bool) "tier-3 answers are final" true
    (field "refined" Json.to_bool_opt r);
  Alcotest.(check string) "schema" Serve.schema
    (field "schema" Json.to_string_opt r);
  Alcotest.(check int) "no coalescing recorded" 0 (Serve.coalesced_total h)

(* The ISSUE 8 satellite: BENCH_tiers reported [n_cost_mismatches: 1] —
   sum_diag_dot's tier-2 answer (cost 27) is beaten by the published
   optimum (cost 24, reachable only by the full search).  The mismatch
   arises through feedback: diag_dot (same environment) is answered by
   tier 3 first and feeds its optimum into the rule database, whose
   saturation then certifies sum_diag_dot at 27 — short of 24.  The
   serving answer: reply tier-2 immediately, enqueue a background
   tier-3 refinement, and serve the upgraded store entry — the
   published optimum, [refined:true] — on the next request, with no
   client action in between. *)
let test_background_refinement () =
  let b = bench "sum_diag_dot" in
  let store = Store.open_store ~dir:(fresh_dir ()) () in
  ignore (Mine.mine ~depth:2 ~model ~store [ (b.name, b.env) ]);
  let h = Serve.handler ~store ~base:config () in
  let jobs : (unit -> unit) Queue.t = Queue.create () in
  let background job =
    Queue.push job jobs;
    true
  in
  (* replay the suite order: diag_dot's tier-3 answer feeds the rules
     database first (it is final, so it enqueues no refinement) *)
  let rd =
    parse_response (Serve.handle_line ~background h (request_line (bench "diag_dot")))
  in
  Alcotest.(check int) "diag_dot by tier 3" 3 (field "tier" Json.to_int_opt rd);
  Alcotest.(check bool) "tier-3 answers need no refinement" true
    (Queue.is_empty jobs);
  let line = request_line b in
  let r1 = parse_response (Serve.handle_line ~background h line) in
  Alcotest.(check bool) "first ok" true (field "ok" Json.to_bool_opt r1);
  Alcotest.(check int) "served by tier 2" 2 (field "tier" Json.to_int_opt r1);
  Alcotest.(check bool) "not yet refined" false
    (field "refined" Json.to_bool_opt r1);
  Alcotest.(check int) "one refinement job enqueued" 1 (Queue.length jobs);
  let c1 = field "cost_after" Json.to_float_opt r1 in
  (* an identical request before refinement runs must not enqueue twice *)
  ignore (Serve.handle_line ~background h line);
  Alcotest.(check int) "refinement deduplicated" 1 (Queue.length jobs);
  (* run the refinement exactly as a spare daemon worker would *)
  (Queue.pop jobs) ();
  let r2 = parse_response (Serve.handle_line ~background h line) in
  Alcotest.(check bool) "second ok" true (field "ok" Json.to_bool_opt r2);
  Alcotest.(check int) "served from the store" 1 (field "tier" Json.to_int_opt r2);
  Alcotest.(check bool) "now refined" true (field "refined" Json.to_bool_opt r2);
  Alcotest.(check int) "refined entries are final" 0 (Queue.length jobs);
  let c2 = field "cost_after" Json.to_float_opt r2 in
  let published = Cost.Model.program_cost model b.env b.expected_opt in
  Alcotest.(check bool) "refinement closed the mismatch" true (c2 < c1);
  Alcotest.(check (float 1e-9)) "published optimum served" published c2

(* {2 Serve-load report} *)

let response ?(ok = true) ?(tier = 1) ?(coalesced = false) ?(refined = false)
    ?error () =
  Json.to_string
    (Json.Obj
       ([
          ("ok", Json.Bool ok);
          ("tier", Json.Int tier);
          ("coalesced", Json.Bool coalesced);
          ("refined", Json.Bool refined);
        ]
       @ match error with Some e -> [ ("error", Json.Str e) ] | None -> []))

let test_classify () =
  let cls = Suite.Driver.classify_serve_response in
  Alcotest.(check int) "tier 1" 1 (cls (response ()));
  Alcotest.(check int) "tier 2 coalesced" 12
    (cls (response ~tier:2 ~coalesced:true ()));
  Alcotest.(check int) "tier 3 refined" 23
    (cls (response ~tier:3 ~refined:true ()));
  Alcotest.(check int) "tier 1 coalesced refined" 31
    (cls (response ~coalesced:true ~refined:true ()));
  Alcotest.(check int) "busy" 100 (cls Serve.busy_line);
  Alcotest.(check int) "unparseable" 101 (cls "garbage");
  Alcotest.(check int) "other failure" 101
    (cls (response ~ok:false ~error:"no parse" ()));
  Alcotest.(check bool) "busy_line recognized" true
    (Serve.is_busy_line Serve.busy_line);
  Alcotest.(check bool) "ok line is not busy" false
    (Serve.is_busy_line (response ()))

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.)) "p50" 50. (Net.Loadgen.percentile xs 50.);
  Alcotest.(check (float 0.)) "p95" 95. (Net.Loadgen.percentile xs 95.);
  Alcotest.(check (float 0.)) "p99" 99. (Net.Loadgen.percentile xs 99.);
  Alcotest.(check (float 0.)) "p100" 100. (Net.Loadgen.percentile xs 100.);
  Alcotest.(check (float 0.)) "empty" 0. (Net.Loadgen.percentile [||] 50.)

let test_serve_load_report () =
  let samples =
    [|
      (0.001, 1);
      (0.002, 2);
      (0.003, 23);
      (0.004, 12);
      (0.005, 100);
      (0.006, 101);
    |]
  in
  let stats =
    { Net.Loadgen.samples; n_transport_errors = 1; elapsed = 2.0 }
  in
  let doc =
    Suite.Driver.serve_load_report ~config
      ~endpoints:[ "tcp://127.0.0.1:7070" ]
      ~concurrency:4 ~duration:2.0
      ~benchmarks:[ "sum_diag_dot" ]
      stats
  in
  (match Suite.Driver.validate_serve_load doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid report rejected: %s" e);
  Alcotest.(check string) "schema" Suite.Driver.serve_load_schema_version
    (field "schema" Json.to_string_opt doc);
  Alcotest.(check int) "n_requests" 6 (field "n_requests" Json.to_int_opt doc);
  Alcotest.(check int) "n_ok" 4 (field "n_ok" Json.to_int_opt doc);
  Alcotest.(check int) "n_busy" 1 (field "n_busy" Json.to_int_opt doc);
  Alcotest.(check int) "n_protocol_errors" 1
    (field "n_protocol_errors" Json.to_int_opt doc);
  Alcotest.(check int) "n_transport_errors" 1
    (field "n_transport_errors" Json.to_int_opt doc);
  Alcotest.(check int) "n_coalesced" 1 (field "n_coalesced" Json.to_int_opt doc);
  Alcotest.(check int) "n_refined" 1 (field "n_refined" Json.to_int_opt doc);
  Alcotest.(check (float 1e-9)) "ok throughput" 2.0
    (field "throughput_rps" Json.to_float_opt doc);
  (* non-monotone percentiles must fail validation *)
  let rec tamper = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "p99" then (k, Json.Float 0.) else (k, tamper v))
             fields)
    | Json.List xs -> Json.List (List.map tamper xs)
    | v -> v
  in
  match Suite.Driver.validate_serve_load (tamper doc) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered percentiles validated"

let suite =
  [
    Alcotest.test_case "endpoint parse" `Quick test_endpoint_parse;
    Alcotest.test_case "endpoint parse_list" `Quick test_endpoint_parse_list;
    Alcotest.test_case "take_line" `Quick test_take_line;
    Alcotest.test_case "single flight" `Quick test_single_flight;
    Alcotest.test_case "serve response fields" `Quick
      test_serve_response_fields;
    Alcotest.test_case "background refinement (sum_diag_dot)" `Slow
      test_background_refinement;
    Alcotest.test_case "classify serve response" `Quick test_classify;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "serve-load report" `Quick test_serve_load_report;
  ]
