(* Stub enumeration (Section IV-B). *)
open Dsl
open Stenso

let env2 = [ ("A", Types.float_t [| 2; 2 |]); ("B", Types.float_t [| 2; 2 |]) ]
let model = Cost.Model.flops
let lib ?config env = Stub.enumerate ?config ~model ~consts:[ 1. ] env

let find_spec lib env src =
  Stub.lookup_exact lib (Sexec.exec_env env (Parser.expression src))

let test_contents () =
  let l = lib env2 in
  (* atoms *)
  Alcotest.(check int) "two inputs + one const atom" 3
    (List.length (Stub.atoms l));
  (* depth-1 and depth-2 programs are present semantically *)
  List.iter
    (fun src ->
      match find_spec l env2 src with
      | Some _ -> ()
      | None -> Alcotest.failf "missing stub equivalent to %s" src)
    [
      "A"; "np.add(A, B)"; "np.dot(A, B)"; "np.transpose(A)";
      "np.sum(A, axis=0)"; "np.sum(np.multiply(A, B), axis=1)";
      "np.dot(np.transpose(A), B)"; "np.sqrt(A)"; "np.maximum(A, B)";
      "np.subtract(1, A)";
    ]

let test_semantic_dedup () =
  let l = lib env2 in
  (* transpose(transpose(A)) deduplicates onto the atom A *)
  match find_spec l env2 "np.transpose(np.transpose(A))" with
  | Some s ->
      Alcotest.(check string) "cheapest representative wins" "A"
        (Ast.to_string s.Stub.prog);
      Alcotest.(check (float 0.)) "zero cost" 0. s.cost
  | None -> Alcotest.fail "A must be in the library"

let test_depth_limit () =
  let config = { Stub.default_config with depth = 1 } in
  let l = lib ~config env2 in
  (match find_spec l env2 "np.add(A, B)" with
  | Some _ -> ()
  | None -> Alcotest.fail "depth-1 stub missing");
  (* a genuinely depth-2 semantics must be absent at depth 1 *)
  match find_spec l env2 "np.sqrt(np.dot(A, B))" with
  | Some _ -> Alcotest.fail "depth-2 stub present at depth 1"
  | None -> ()

let test_budget_cap () =
  let config = { Stub.default_config with max_stubs = 10 } in
  let l = lib ~config env2 in
  Alcotest.(check bool) "cap reported" true (Stub.truncated l);
  Alcotest.(check bool) "cap respected" true (Stub.size l <= 10)

let test_deadline () =
  let config =
    { Stub.default_config with deadline = Some (Unix.gettimeofday () -. 1.) }
  in
  let l = lib ~config env2 in
  Alcotest.(check bool) "expired deadline truncates" true (Stub.truncated l);
  (* The deadline is consulted on every attempt, not every 2^k-th: with
     an already-expired deadline the enumeration stops at the first
     post-atom candidate, so only the depth-0 atoms can register. *)
  Alcotest.(check bool)
    "expired deadline stops at the first attempt" true
    (Stub.size l <= List.length (Stub.atoms l) + 1)

let test_costs_monotone () =
  let l = lib env2 in
  List.iter
    (fun (s : Stub.t) ->
      if Stdlib.not (s.cost >= 0.) then
        Alcotest.failf "negative cost for %s" (Ast.to_string s.prog))
    (Stub.stubs l);
  (* every stub type-checks and its recorded semantics match a fresh
     symbolic execution *)
  List.iter
    (fun (s : Stub.t) ->
      match Types.check env2 s.prog with
      | Error m -> Alcotest.failf "ill-typed stub %s: %s" (Ast.to_string s.prog) m
      | Ok vt ->
          if Stdlib.not (Types.equal_vt vt s.vt) then
            Alcotest.failf "stub vt mismatch for %s" (Ast.to_string s.prog);
          let sem = Sexec.exec_env env2 s.prog in
          if Stdlib.not (Spec.equal sem s.sem) then
            Alcotest.failf "stub semantics drifted for %s"
              (Ast.to_string s.prog))
    (Stub.stubs l)

let test_full_binary_superset () =
  let small = { Stub.default_config with max_stubs = 1_000_000 } in
  let full = { small with full_binary = true } in
  let l1 = lib ~config:small env2 in
  let l2 = lib ~config:full env2 in
  Alcotest.(check bool) "full enumeration is larger" true
    (Stub.size l2 >= Stub.size l1 && Stub.attempts l2 > Stub.attempts l1)

let test_cache_rejects_truncated () =
  (* A deadline- or cap-truncated library is complete only for the run
     that built it; serving it from the cache would hand later requests
     a partial library as if it were the full bounded space. *)
  let cache = Stub.Cache.create () in
  let capped = { Stub.default_config with max_stubs = 5 } in
  let l1, shared1 =
    Stub.Cache.enumerate cache ~config:capped ~model ~consts:[ 1. ] env2
  in
  Alcotest.(check bool) "capped run truncates" true (Stub.truncated l1);
  Alcotest.(check bool) "first build not shared" false shared1;
  let _, shared2 =
    Stub.Cache.enumerate cache ~config:capped ~model ~consts:[ 1. ] env2
  in
  Alcotest.(check bool) "truncated library never served from cache" false
    shared2;
  (* an untruncated library for the same fingerprint shape is shared *)
  let _, s1 = Stub.Cache.enumerate cache ~model ~consts:[ 1. ] env2 in
  let _, s2 = Stub.Cache.enumerate cache ~model ~consts:[ 1. ] env2 in
  Alcotest.(check bool) "complete library built once" false s1;
  Alcotest.(check bool) "complete library cached" true s2

let test_const_stub () =
  let l = lib env2 in
  match Stub.const_stub l (Symbolic.Q.of_int 4) with
  | Some s ->
      Alcotest.(check string) "conjured constant" "4" (Ast.to_string s.prog)
  | None -> Alcotest.fail "const_stub must produce a constant"

let suite =
  [
    Alcotest.test_case "library contents" `Quick test_contents;
    Alcotest.test_case "semantic deduplication" `Quick test_semantic_dedup;
    Alcotest.test_case "depth limit" `Quick test_depth_limit;
    Alcotest.test_case "stub budget" `Quick test_budget_cap;
    Alcotest.test_case "deadline" `Quick test_deadline;
    Alcotest.test_case "stub invariants" `Quick test_costs_monotone;
    Alcotest.test_case "full binary enumeration" `Quick
      test_full_binary_superset;
    Alcotest.test_case "cache rejects truncated" `Quick
      test_cache_rejects_truncated;
    Alcotest.test_case "conjured constants" `Quick test_const_stub;
  ]
