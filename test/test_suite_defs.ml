(* Invariants of the benchmark-suite definition (Tables I and II). *)
module B = Suite.Benchmarks

let test_counts () =
  Alcotest.(check int) "21 GitHub benchmarks" 21 (List.length B.github);
  Alcotest.(check int) "12 synthetic benchmarks" 12 (List.length B.synthetic);
  Alcotest.(check int) "33 total" 33 (List.length B.all)

let test_unique_names () =
  let names = List.map (fun (b : B.t) -> b.name) B.all in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let count klass =
  List.length (List.filter (fun (b : B.t) -> b.klass = klass) B.all)

let test_class_distribution () =
  (* Fig. 6's two stated counts *)
  Alcotest.(check int) "Algebraic Simplification 9" 9
    (count B.Algebraic_simplification);
  Alcotest.(check int) "Strength Reduction 8" 8 (count B.Strength_reduction);
  (* every class is populated and everything is classified *)
  List.iter
    (fun k ->
      if count k = 0 then
        Alcotest.failf "empty transformation class %s" (B.klass_name k))
    B.all_klasses;
  Alcotest.(check int) "classes partition the suite" 33
    (List.fold_left (fun acc k -> acc + count k) 0 B.all_klasses)

let test_lookup () =
  Alcotest.(check string) "find" "diag_dot" (B.find "diag_dot").name;
  Alcotest.(check bool) "find_opt none" true (B.find_opt "nope" = None)

let test_programs_match_table () =
  (* spot-check the expressions against the paper's Tables I/II *)
  let expect name src =
    let b = B.find name in
    let expected = Dsl.Parser.expression src in
    if not (Dsl.Ast.equal b.program expected) then
      Alcotest.failf "%s: table expression drifted" name
  in
  expect "diag_dot" "np.diag(np.dot(A, B))";
  expect "power_neg" "np.power(A, -1)";
  expect "trace_dot" "np.trace(A @ B.T)";
  expect "synth_1" "(A * B) + 3 * (A * B)";
  expect "synth_11" "A * A * A * A * A";
  expect "vec_lerp" "np.stack([x*a + (1 - a)*y for a in A])"

let test_perf_shapes_larger () =
  List.iter
    (fun (b : B.t) ->
      List.iter2
        (fun (n1, (v1 : Dsl.Types.vt)) (n2, (v2 : Dsl.Types.vt)) ->
          if n1 <> n2 then Alcotest.failf "%s: env order differs" b.name;
          if Tensor.Shape.numel v2.shape < Tensor.Shape.numel v1.shape then
            Alcotest.failf "%s/%s: perf shape smaller than synthesis shape"
              b.name n1)
        b.env b.perf_env)
    B.all

let test_ml_unique_names () =
  (* extension tiers must not shadow the paper suite or each other *)
  let names =
    List.map (fun (b : B.t) -> b.name) (B.all @ B.masking @ B.ml)
  in
  Alcotest.(check int) "names unique across all tiers" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_ml_tier () =
  Alcotest.(check bool) "at least 8 ML benchmarks" true
    (List.length B.ml >= 8);
  (* roofline, not flops: it weighs transcendentals (pow/exp/sqrt), so
     it sees the strength reductions the plain FLOP count is blind to *)
  let model = Cost.Model.roofline () in
  List.iter
    (fun (b : B.t) ->
      (* the pair must be provably equivalent — at the synthesis shapes
         and (when shape-free) at perturbed ones *)
      if
        not
          (Stenso.Superopt.robust_equivalent ~env:b.env b.program
             b.expected_opt)
      then Alcotest.failf "%s: orig and opt are not robustly equivalent" b.name;
      (* and the optimization must actually pay at perf shapes *)
      let orig =
        Cost.Model.program_cost model b.perf_env b.perf_program
      and opt =
        Cost.Model.program_cost model b.perf_env b.perf_expected_opt
      in
      if not (opt < orig) then
        Alcotest.failf "%s: expected_opt not cheaper (%g >= %g)" b.name opt
          orig;
      (* reachable through the named-benchmark CLI path *)
      if B.find_opt b.name = None then
        Alcotest.failf "%s: not reachable via find_opt" b.name)
    B.ml

let suite =
  [
    Alcotest.test_case "suite sizes" `Quick test_counts;
    Alcotest.test_case "unique names" `Quick test_unique_names;
    Alcotest.test_case "class distribution (Fig. 6)" `Quick
      test_class_distribution;
    Alcotest.test_case "lookup" `Quick test_lookup;
    Alcotest.test_case "table expressions" `Quick test_programs_match_table;
    Alcotest.test_case "perf shapes dominate" `Quick test_perf_shapes_larger;
    Alcotest.test_case "ML tier names unique" `Quick test_ml_unique_names;
    Alcotest.test_case "ML tier equivalence and cost" `Quick test_ml_tier;
  ]
