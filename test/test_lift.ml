(* Lifting front-end: scalar loop nests -> certified DSL programs.

   The round-trip test is the tier's acceptance gate: every bundled
   kernel must lift, the lifted program must be robustly equivalent to
   the tier's declared DSL form, and the VM must agree with the scalar
   loop interpreter on fresh random inputs. *)

(* One stub cache across the tests: kernels sharing an input
   environment (dot/mse, normalize/softmax) enumerate once. *)
let stub_cache = Stenso.Stub.Cache.create ()

let finite t = Array.for_all Float.is_finite (Tensor.Ftensor.to_array t)

let test_roundtrips () =
  List.iter
    (fun (k : Suite.Lifted.t) ->
      let kernel = Stenso.Lift.Loop_parser.kernel k.source in
      match Stenso.Lift.lift ~stub_cache kernel with
      | Error e -> Alcotest.failf "%s: %s" k.name (Stenso.Lift.error_message e)
      | Ok l ->
          Alcotest.(check bool)
            (k.name ^ ": a candidate was certified")
            true
            (l.stats.certified >= 1);
          (* The lift reaches the tier's declared DSL form. *)
          let b = Suite.Benchmarks.find k.name in
          Alcotest.(check bool)
            (k.name ^ ": robustly equivalent to the oracle")
            true
            (Stenso.Superopt.robust_equivalent ~env:l.env l.prog b.program);
          (* VM differential against the loop interpreter (skipping
             draws whose reference output is non-finite, as the
             engine's validation does). *)
          let st = Random.State.make [| 0xbeef |] in
          let compiled = Stenso.Exec.compile ~env:l.env l.prog in
          for _ = 1 to 4 do
            let inputs = Dsl.Interp.random_inputs st l.env in
            let expected =
              Stenso.Lift.Loop_interp.run_tensors kernel inputs
            in
            if finite expected then begin
              let got =
                Stenso.Exec.run compiled (fun n -> List.assoc n inputs)
              in
              Alcotest.(check bool)
                (k.name ^ ": VM matches the loop interpreter")
                true
                (Tensor.Ftensor.shape got = Tensor.Ftensor.shape expected
                && Tensor.Ftensor.allclose ~rtol:1e-6 ~atol:1e-9 got expected)
            end
          done)
    Suite.Lifted.all

(* A loop-carried dependency is outside the DSL: the lift must fail
   cleanly with a [lift.failed] event, never certify a wrong program. *)
let test_negative () =
  let tel = Stenso.Telemetry.create () in
  let kernel = Stenso.Lift.Loop_parser.kernel Suite.Lifted.negative in
  match Stenso.Lift.lift ~tel ~stub_cache kernel with
  | Ok l ->
      Alcotest.failf "prefix_sum must not lift, got %s"
        (Dsl.Ast.to_string l.prog)
  | Error (Stenso.Lift.Unsupported msg) ->
      Alcotest.failf "expected sketch exhaustion, got semantic error: %s" msg
  | Error (Stenso.Lift.Not_lifted stats) ->
      Alcotest.(check bool) "sketches were proposed" true (stats.sketches > 0);
      Alcotest.(check bool)
        "lift.failed event recorded" true
        (List.exists
           (fun (e : Stenso.Telemetry.event) ->
             String.equal e.name "lift.failed")
           (Stenso.Telemetry.events tel))

(* Value pruning runs before any symbolic work: for a kernel with many
   same-shape library candidates, everything but the true program is
   rejected by the concrete signature, so certification (the expensive
   symbolic + differential step) sees exactly one candidate. *)
let test_value_pruning () =
  let k =
    match Suite.Lifted.find_opt "lift_normalize" with
    | Some k -> k
    | None -> Alcotest.fail "lift_normalize missing from the bundled tier"
  in
  let kernel = Stenso.Lift.Loop_parser.kernel k.source in
  let tel = Stenso.Telemetry.create () in
  match Stenso.Lift.lift ~tel ~stub_cache kernel with
  | Error e -> Alcotest.failf "lift_normalize: %s" (Stenso.Lift.error_message e)
  | Ok l ->
      Alcotest.(check bool)
        "mismatching candidates were value-pruned" true
        (l.stats.pruned_by_value > 0);
      Alcotest.(check int)
        "only the surviving candidate reached certification" 1
        l.stats.certified;
      Alcotest.(check int)
        "telemetry counter agrees" l.stats.pruned_by_value
        (List.assoc "lift.pruned_by_value" (Stenso.Telemetry.counters tel))

(* The value-table cache key must fingerprint the sampled inputs, so
   lifts against different input distributions never collide even when
   they share a stub library. *)
let test_values_fingerprint () =
  let env = [ ("x", Dsl.Types.float_t [| 4 |]) ] in
  let draws seed =
    let st = Random.State.make [| seed |] in
    List.init 2 (fun _ -> Dsl.Interp.random_inputs st env)
  in
  let a = draws 1 and b = draws 2 in
  let fp = Stenso.Stub.Values.fingerprint in
  Alcotest.(check string)
    "same draws, same key"
    (fp ~library_fp:"lib" a)
    (fp ~library_fp:"lib" (draws 1));
  Alcotest.(check bool)
    "different draws, different keys" false
    (String.equal (fp ~library_fp:"lib" a) (fp ~library_fp:"lib" b));
  Alcotest.(check bool)
    "library identity feeds the key" false
    (String.equal (fp ~library_fp:"lib" a) (fp ~library_fp:"other" a))

let suite =
  [
    Alcotest.test_case "bundled kernels round-trip" `Slow test_roundtrips;
    Alcotest.test_case "loop-carried dependency fails cleanly" `Quick
      test_negative;
    Alcotest.test_case "value pruning precedes certification" `Quick
      test_value_pruning;
    Alcotest.test_case "value tables keyed by sampled inputs" `Quick
      test_values_fingerprint;
  ]
