(* Protocol hardening against a live TCP server: oversized request
   lines, malformed NDJSON with keep-alive reuse, pipelining,
   half-closed sockets, slow-loris partial writes against the deadline
   reader, connection shedding at [max_conns], and graceful stop (every
   test's teardown stops a server with live state). *)
open Stenso
module Json = Telemetry.Json

let base = Config.default |> Config.with_estimator `Flops

(* A real server on an ephemeral TCP port, dispatcher in its own
   domain, torn down by [Server.stop] + join even when [f] fails. *)
let with_server ?(workers = 1) ?(queue_capacity = 8) ?(max_conns = 16)
    ?(max_line = 4096) ?(read_deadline = 30.) f =
  let h = Serve.handler ~base () in
  let config =
    {
      Net.Server.default_config with
      listeners = [ Net.Endpoint.Tcp ("127.0.0.1", 0) ];
      workers;
      queue_capacity;
      max_conns;
      max_line;
      read_deadline;
      tick = 0.05;
    }
  in
  let server =
    Net.Server.create ~config ~busy_line:Serve.busy_line
      ~too_long_line:Serve.too_long_line
      (fun (ctx : Net.Server.ctx) line ->
        Serve.handle_line ~background:ctx.background h line)
  in
  let runner = Domain.spawn (fun () -> Net.Server.run server) in
  let ep =
    match Net.Server.addresses server with
    | e :: _ -> e
    | [] -> Alcotest.fail "no bound address"
  in
  Fun.protect
    ~finally:(fun () ->
      Net.Server.stop server;
      Domain.join runner)
    (fun () -> f ep)

let connect ep =
  match Net.Endpoint.connect ep with
  | Ok fd -> fd
  | Error e -> Alcotest.failf "connect: %s" (Printexc.to_string e)

let send fd s =
  match Net.Lineio.write_all ~deadline:(Unix.gettimeofday () +. 5.) fd s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e

let read_line ?(timeout = 10.) ~buf fd =
  Net.Lineio.read_line ~deadline:(Unix.gettimeofday () +. timeout) ~buf fd

let expect_line ?timeout ~buf fd what =
  match read_line ?timeout ~buf fd with
  | Net.Lineio.Line l -> l
  | Eof -> Alcotest.failf "%s: connection closed" what
  | Timeout -> Alcotest.failf "%s: timed out" what
  | Too_long -> Alcotest.failf "%s: response too long" what
  | Io_error e -> Alcotest.failf "%s: %s" what e

let expect_eof ?timeout ~buf fd what =
  match read_line ?timeout ~buf fd with
  | Net.Lineio.Eof -> ()
  | Line l -> Alcotest.failf "%s: unexpected line %S" what l
  | Timeout -> Alcotest.failf "%s: still open (timeout)" what
  | Too_long -> Alcotest.failf "%s: response too long" what
  | Io_error _ -> ()
(* a RST on a closed connection is as good as a clean EOF here *)

let is_error_response line =
  match Json.of_string line with
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e
  | Ok j -> (
      match Json.member "ok" j with
      | Some (Json.Bool b) -> not b
      | _ -> Alcotest.failf "no ok field in %S" line)

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Malformed NDJSON is answered per-request ([ok:false]) and the
   connection stays usable: keep-alive across failures. *)
let test_malformed_keep_alive () =
  with_server @@ fun ep ->
  let fd = connect ep in
  let buf = Buffer.create 256 in
  Fun.protect ~finally:(fun () -> close fd) @@ fun () ->
  send fd "{not json\n";
  Alcotest.(check bool) "first error response" true
    (is_error_response (expect_line ~buf fd "malformed #1"));
  send fd "also not json\n";
  Alcotest.(check bool) "second error response" true
    (is_error_response (expect_line ~buf fd "malformed #2"));
  (* blank lines are ignored, not answered *)
  send fd "\n\n{}\n";
  Alcotest.(check bool) "empty object answered" true
    (is_error_response (expect_line ~buf fd "empty request"))

(* Several requests written in one segment get one response each, in
   order. *)
let test_pipelined () =
  with_server @@ fun ep ->
  let fd = connect ep in
  let buf = Buffer.create 256 in
  Fun.protect ~finally:(fun () -> close fd) @@ fun () ->
  send fd "{\"id\":1}\n{\"id\":2}\n{\"id\":3}\n";
  List.iter
    (fun i ->
      let l = expect_line ~buf fd (Printf.sprintf "pipelined #%d" i) in
      match Option.bind (Json.of_string l |> Result.to_option) (Json.member "id") with
      | Some (Json.Int j) -> Alcotest.(check int) "order preserved" i j
      | _ -> Alcotest.failf "response without id: %S" l)
    [ 1; 2; 3 ]

(* A complete line over the cap — even one arriving whole — draws the
   too-long response and a close; so does a partial line that outgrows
   the cap without ever completing. *)
let test_oversized_line () =
  with_server ~max_line:1024 @@ fun ep ->
  (let fd = connect ep in
   let buf = Buffer.create 256 in
   Fun.protect ~finally:(fun () -> close fd) @@ fun () ->
   send fd (String.make 2048 'a' ^ "\n");
   Alcotest.(check bool) "complete oversized line rejected" true
     (is_error_response (expect_line ~buf fd "oversized complete"));
   expect_eof ~buf fd "closed after oversized complete");
  let fd = connect ep in
  let buf = Buffer.create 256 in
  Fun.protect ~finally:(fun () -> close fd) @@ fun () ->
  send fd (String.make 8192 'b');
  (* no newline: the buffer itself outgrows the cap *)
  Alcotest.(check bool) "oversized partial rejected" true
    (is_error_response (expect_line ~buf fd "oversized partial"));
  expect_eof ~buf fd "closed after oversized partial"

(* A client that half-closes (FIN) after a complete request still gets
   its response: EOF with a buffered line serves the line first. *)
let test_half_closed () =
  with_server @@ fun ep ->
  let fd = connect ep in
  let buf = Buffer.create 256 in
  Fun.protect ~finally:(fun () -> close fd) @@ fun () ->
  send fd "{\"id\":\"half\"}\n";
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  Alcotest.(check bool) "response after FIN" true
    (is_error_response (expect_line ~buf fd "half-closed"));
  expect_eof ~buf fd "server closes after half-closed request"

(* A partial line sitting without progress past [read_deadline] gets
   the connection closed (the slow-loris guard), while a connection
   actively making byte-at-a-time progress survives it. *)
let test_slow_loris () =
  with_server ~read_deadline:0.3 @@ fun ep ->
  let fd = connect ep in
  let buf = Buffer.create 256 in
  Fun.protect ~finally:(fun () -> close fd) @@ fun () ->
  send fd "{\"partial";
  let t0 = Unix.gettimeofday () in
  expect_eof ~timeout:5. ~buf fd "slow-loris close";
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "closed promptly (%.2fs)" elapsed)
    true
    (elapsed < 3.)

let test_slow_but_progressing () =
  with_server ~read_deadline:0.5 @@ fun ep ->
  let fd = connect ep in
  let buf = Buffer.create 256 in
  Fun.protect ~finally:(fun () -> close fd) @@ fun () ->
  (* ~1.2s total, but never more than ~0.15s between bytes *)
  String.iter
    (fun c ->
      send fd (String.make 1 c);
      Thread.delay 0.15)
    "{\"id\":9}";
  send fd "\n";
  Alcotest.(check bool) "slow writer served" true
    (is_error_response (expect_line ~buf fd "slow writer"))

(* Connections beyond [max_conns] are shed with the busy line. *)
let test_conn_shedding () =
  with_server ~max_conns:1 @@ fun ep ->
  let fd1 = connect ep in
  let buf1 = Buffer.create 256 in
  Fun.protect ~finally:(fun () -> close fd1) @@ fun () ->
  (* make sure the first connection is accepted and serving *)
  send fd1 "{\"id\":\"hold\"}\n";
  ignore (expect_line ~buf:buf1 fd1 "first conn serves");
  let fd2 = connect ep in
  let buf2 = Buffer.create 256 in
  Fun.protect ~finally:(fun () -> close fd2) @@ fun () ->
  let l = expect_line ~buf:buf2 fd2 "shed response" in
  Alcotest.(check bool) "busy line" true (Serve.is_busy_line l);
  expect_eof ~buf:buf2 fd2 "shed connection closed";
  (* the held connection is still alive and serving *)
  send fd1 "{\"id\":\"still\"}\n";
  Alcotest.(check bool) "survivor still served" true
    (is_error_response (expect_line ~buf:buf1 fd1 "survivor"))

(* [stop] with idle live connections drains and returns; [run]'s domain
   joins and the listener is gone. *)
let test_graceful_stop () =
  let held = ref None in
  let ep_ref = ref None in
  (with_server @@ fun ep ->
   ep_ref := Some ep;
   let fd = connect ep in
   let buf = Buffer.create 256 in
   send fd "{\"id\":\"drain\"}\n";
   ignore (expect_line ~buf fd "pre-stop request");
   held := Some (fd, buf));
  (* with_server has stopped the server and joined its domain *)
  (match !held with
  | Some (fd, buf) ->
      expect_eof ~timeout:2. ~buf fd "connection closed by drain";
      close fd
  | None -> Alcotest.fail "no held connection");
  match !ep_ref with
  | Some ep -> (
      match Net.Endpoint.connect ep with
      | Ok fd ->
          close fd;
          Alcotest.fail "listener still accepting after stop"
      | Error _ -> ())
  | None -> Alcotest.fail "no endpoint"

let suite =
  [
    Alcotest.test_case "malformed NDJSON keeps alive" `Quick
      test_malformed_keep_alive;
    Alcotest.test_case "pipelined requests answered in order" `Quick
      test_pipelined;
    Alcotest.test_case "oversized lines rejected" `Quick test_oversized_line;
    Alcotest.test_case "half-closed socket still served" `Quick
      test_half_closed;
    Alcotest.test_case "slow-loris closed at deadline" `Quick test_slow_loris;
    Alcotest.test_case "slow but progressing survives" `Quick
      test_slow_but_progressing;
    Alcotest.test_case "connections shed at max_conns" `Quick
      test_conn_shedding;
    Alcotest.test_case "graceful stop drains" `Quick test_graceful_stop;
  ]
