(* Surface-syntax parser. *)
open Dsl

let ast = Alcotest.testable Ast.pp Ast.equal
let parse = Parser.expression

let test_operators () =
  Alcotest.check ast "precedence * over +"
    (Ast.App (Add, [ Input "A"; App (Mul, [ Input "B"; Input "C" ]) ]))
    (parse "A + B * C");
  Alcotest.check ast "left assoc sub"
    (Ast.App (Sub, [ App (Sub, [ Input "A"; Input "B" ]); Input "C" ]))
    (parse "A - B - C");
  Alcotest.check ast "matmul @"
    (Ast.App (Dot, [ Input "A"; Input "B" ]))
    (parse "A @ B");
  Alcotest.check ast "power right assoc"
    (Ast.App (Pow_op, [ Input "A"; App (Pow_op, [ Input "B"; Input "C" ]) ]))
    (parse "A ** B ** C");
  Alcotest.check ast "parens"
    (Ast.App (Mul, [ App (Add, [ Input "A"; Input "B" ]); Input "C" ]))
    (parse "(A + B) * C");
  Alcotest.check ast "unary minus folds literal" (Ast.Const (-2.)) (parse "-2");
  Alcotest.check ast "unary minus on input"
    (Ast.App (Mul, [ Const (-1.); Input "A" ]))
    (parse "-A");
  Alcotest.check ast "postfix transpose"
    (Ast.App (Transpose None, [ Input "A" ]))
    (parse "A.T");
  Alcotest.check ast "transpose binds before @"
    (Ast.App (Dot, [ App (Transpose None, [ Input "x" ]); Input "A" ]))
    (parse "x.T @ A")

let test_calls () =
  Alcotest.check ast "np.add"
    (Ast.App (Add, [ Input "A"; Input "B" ]))
    (parse "np.add(A, B)");
  Alcotest.check ast "sum with axis"
    (Ast.App (Ast.sum_op (Some 1), [ Input "A" ]))
    (parse "np.sum(A, axis=1)");
  Alcotest.check ast "sum with negative axis"
    (Ast.App (Ast.sum_op (Some (-1)), [ Input "A" ]))
    (parse "np.sum(A, axis=-1)");
  Alcotest.check ast "sum without axis"
    (Ast.App (Ast.sum_op None, [ Input "A" ]))
    (parse "np.sum(A)");
  Alcotest.check ast "max with positional axis"
    (Ast.App (Ast.max_op (Some 0), [ Input "A" ]))
    (parse "np.max(A, 0)");
  Alcotest.check ast "where"
    (Ast.App (Where, [ App (Less, [ Input "A"; Input "B" ]); Input "A";
                       Input "B" ]))
    (parse "np.where(np.less(A, B), A, B)");
  Alcotest.check ast "transpose with perm"
    (Ast.App (Transpose (Some [| 1; 0; 2 |]), [ Input "A" ]))
    (parse "np.transpose(A, (1, 0, 2))");
  Alcotest.check ast "tensordot"
    (Ast.App (Tensordot ([ 0 ], [ 0 ]), [ Input "x"; Input "y" ]))
    (parse "np.tensordot(x, y, ([0], [0]))");
  Alcotest.check ast "reshape"
    (Ast.App (Reshape [| 2; 6 |], [ Input "A" ]))
    (parse "np.reshape(A, (2, 6))");
  Alcotest.check ast "full"
    (Ast.App (Full [| 3; 3 |], [ Const 7. ]))
    (parse "np.full((3, 3), 7)");
  Alcotest.check ast "diag of dot"
    (Ast.App (Diag, [ App (Dot, [ Input "A"; Input "B" ]) ]))
    (parse "np.diag(np.dot(A, B))")

let test_stack_forms () =
  Alcotest.check ast "explicit stack"
    (Ast.App (Stack 0, [ Input "A"; Input "B" ]))
    (parse "np.stack([A, B])");
  Alcotest.check ast "stack with axis"
    (Ast.App (Stack 1, [ Input "A"; Input "B"; Input "C" ]))
    (parse "np.stack([A, B, C], axis=1)");
  Alcotest.check ast "comprehension"
    (Ast.For_stack
       { var = "v"; iter = "A"; body = App (Mul, [ Input "v"; Const 2. ]) })
    (parse "np.stack([v * 2 for v in A])")

let test_program_form () =
  let env, body =
    Parser.program
      "# a comment\ninput A : f32[3, 4]\ninput m : bool[3]\nreturn np.sum(A)"
  in
  Alcotest.(check int) "two inputs" 2 (List.length env);
  (match List.assoc_opt "A" env with
  | Some (vt : Types.vt) ->
      Alcotest.(check bool) "A is float" true (vt.dtype = Types.Float);
      Alcotest.(check bool) "A shape" true (vt.shape = [| 3; 4 |])
  | None -> Alcotest.fail "missing input A");
  (match List.assoc_opt "m" env with
  | Some (vt : Types.vt) ->
      Alcotest.(check bool) "m is bool" true (vt.dtype = Types.Bool)
  | None -> Alcotest.fail "missing input m");
  Alcotest.check ast "body" (Ast.App (Ast.sum_op None, [ Input "A" ])) body

let expect_error src =
  match Parser.expression src with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail ("expected parse error for " ^ src)

let test_errors () =
  expect_error "A +";
  expect_error "np.bogus(A)";
  expect_error "np.sum(A,,)";
  expect_error "(A";
  expect_error "A B";
  expect_error "np.stack([x for in A])";
  (match Parser.program "input A : f32[3]\ninput A : f32[3]\nreturn A" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "duplicate input should fail");
  (match Parser.program "input A : f32[3]" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "missing return should fail")

(* Round trip: pretty-print then re-parse yields an equal AST. *)
let test_roundtrip () =
  List.iter
    (fun (b : Suite.Benchmarks.t) ->
      let printed = Ast.to_string b.program in
      let reparsed = parse printed in
      if not (Ast.equal b.program reparsed) then
        Alcotest.failf "%s: reparse of %S differs" b.name printed)
    Suite.Benchmarks.all

let suite =
  [
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "numpy calls" `Quick test_calls;
    Alcotest.test_case "stack forms" `Quick test_stack_forms;
    Alcotest.test_case "program declarations" `Quick test_program_form;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "pp/parse round trip (all benchmarks)" `Quick
      test_roundtrip;
  ]
