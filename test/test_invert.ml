(* The symbolic-algebra solver: every decomposition it returns must be
   exact — recombining the parts reproduces the specification. *)
open Dsl
open Stenso
module St = Sexec.Stensor

let model = Cost.Model.flops

let setup env_src =
  let env, _ = Parser.program (env_src ^ "\nreturn 0") in
  let lib = Stub.enumerate ~model ~consts:[ 1.; 2. ] env in
  (env, lib)

let spec_of env src = Sexec.exec_env env (Parser.expression src)

(* Recombine a decomposition by symbolically executing the operation on
   conc semantics / hole specs. *)
let recombine (d : Invert.decomposition) =
  let args =
    List.map
      (function Invert.P_hole h -> h | Invert.P_conc s -> s.Stub.sem)
      d.parts
  in
  Sexec.apply_op d.op args

let check_all_exact name env lib src =
  let spec = spec_of env src in
  let ds = Invert.decompositions lib spec in
  if ds = [] then Alcotest.failf "%s: no decompositions at all" name;
  List.iter
    (fun d ->
      match recombine d with
      | r ->
          if not (St.equal r spec) then
            Alcotest.failf "%s: inexact decomposition %s" name
              (Format.asprintf "%a" Invert.pp d)
      | exception (Invalid_argument _ | Sexec.Eval_error _) ->
          Alcotest.failf "%s: decomposition does not recombine (%s)" name
            (Format.asprintf "%a" Invert.pp d))
    ds;
  ds

let has_shape (d : Invert.decomposition) op_name =
  Ast.op_name d.op = op_name

let test_elementwise_inversions () =
  let env, lib = setup "input A : f32[2,2]\ninput B : f32[2,2]" in
  let ds = check_all_exact "A+B" env lib "A + B" in
  Alcotest.(check bool) "add decomposition offered" true
    (List.exists (fun d -> has_shape d "add") ds);
  let ds = check_all_exact "A*B+B" env lib "A * B + B" in
  (* mul(??, B) must solve with hole = A + 1 via exact division *)
  Alcotest.(check bool) "exact division sketch" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         has_shape d "multiply"
         && List.exists
              (function
                | Invert.P_hole h ->
                    Spec.equal h (spec_of env "np.add(A, np.full((2,2), 1))")
                | Invert.P_conc _ -> false)
              d.parts)
       ds)

let test_poly_division_inversion () =
  (* (1 - s) * (K ∘ W) requires polynomial long division by the sum. *)
  let env, lib = setup "input K : f32[2,2]\ninput s : f32[]" in
  let ds =
    check_all_exact "poly" env lib "np.multiply(K, K) - s * np.multiply(K, K)"
  in
  Alcotest.(check bool) "divides out (1 - s)" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         has_shape d "multiply"
         && List.exists
              (function
                | Invert.P_conc c ->
                    Spec.equal c.Stub.sem (spec_of env "1 - s")
                | Invert.P_hole _ -> false)
              d.parts)
       ds)

let test_sum_split () =
  let env, lib = setup "input A : f32[2,3]\ninput B : f32[3,2]" in
  let ds = check_all_exact "diag dot" env lib "np.diag(np.dot(A, B))" in
  (* splitting the contraction terms into a fresh axis *)
  Alcotest.(check bool) "sum sketch with summable hole" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         match (d.op, Invert.hole_specs d) with
         | Ast.Sum { axis = Some _; _ }, [ h ] ->
             Tensor.Shape.rank (Spec.shape h) = 2
         | _ -> false)
       ds)

let test_dot_inversions () =
  let env, lib = setup "input A : f32[2,3]\ninput x : f32[3]" in
  let ds = check_all_exact "matvec" env lib "np.sum(A * x, axis=1)" in
  (* dot(??, x) must recover the matrix A as the hole *)
  Alcotest.(check bool) "linear extraction recovers A" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         has_shape d "dot"
         && List.exists
              (function
                | Invert.P_hole h -> Spec.equal h (spec_of env "A")
                | Invert.P_conc _ -> false)
              d.parts)
       ds)

let test_quadratic_assignment () =
  (* x^T A x is nonlinear in x; the term-assignment fallback must still
     produce an exact tensordot decomposition with hole A @ x. *)
  let env, lib = setup "input x : f32[3,1]\ninput A : f32[3,3]" in
  let ds = check_all_exact "quadratic" env lib "(x.T @ A) @ x" in
  Alcotest.(check bool) "tensordot fallback solves x^T A x" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         match d.op with
         | Ast.Tensordot _ ->
             List.exists
               (function
                 | Invert.P_hole h -> Spec.equal h (spec_of env "A @ x")
                 | Invert.P_conc _ -> false)
               d.parts
         | _ -> false)
       ds)

let test_two_hole_splits () =
  let env, lib = setup "input A : f32[2,2]\ninput B : f32[2,2]" in
  let ds = check_all_exact "mixed sum" env lib "A * A + B" in
  (* by-variable split must separate the A-terms from the B-terms *)
  Alcotest.(check bool) "add split by variable" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         has_shape d "add"
         && List.length (Invert.hole_specs d) = 2
         && List.exists (fun h -> Spec.equal h (spec_of env "A * A"))
              (Invert.hole_specs d))
       ds);
  (* sign split: positive and negated negative parts *)
  let ds = check_all_exact "signed" env lib "A * A - B" in
  Alcotest.(check bool) "sub split by sign" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         has_shape d "subtract"
         && List.exists (fun h -> Spec.equal h (spec_of env "B"))
              (Invert.hole_specs d))
       ds)

let test_transpose_sqrt_exp () =
  let env, lib = setup "input A : f32[2,3]" in
  let ds = check_all_exact "transposed" env lib "np.transpose(A) + 0" in
  Alcotest.(check bool) "transpose inversion" true
    (List.exists (fun d -> has_shape d "transpose") ds);
  let ds = check_all_exact "rooted" env lib "np.sqrt(A)" in
  Alcotest.(check bool) "sqrt inversion squares the spec" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         has_shape d "sqrt"
         && List.for_all (fun h -> Spec.equal h (spec_of env "A"))
              (Invert.hole_specs d))
       ds)

let test_power_inversions () =
  let env, lib = setup "input A : f32[2,2]" in
  (* power(??, 2) on spec A^2 -> hole A *)
  let ds = check_all_exact "square" env lib "A * A" in
  Alcotest.(check bool) "root inversion" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         has_shape d "power"
         && List.exists (fun h -> Spec.equal h (spec_of env "A"))
              (Invert.hole_specs d))
       ds);
  (* power(A, ??) on spec A^5 -> scalar hole 5 *)
  let ds = check_all_exact "fifth" env lib "A * A * A * A * A" in
  Alcotest.(check bool) "exponent extraction" true
    (List.exists
       (fun (d : Invert.decomposition) ->
         has_shape d "power"
         &&
         match Invert.hole_specs d with
         | [ h ] -> Spec.to_const h = Some (Symbolic.Q.of_int 5)
         | _ -> false)
       ds)

let test_maximum_strip () =
  let env, lib = setup "input A : f32[2,2]\ninput B : f32[2,2]" in
  let ds = check_all_exact "max" env lib "np.maximum(A, B) + 0" in
  Alcotest.(check bool) "maximum inversion strips one operand" true
    (List.exists (fun d -> has_shape d "maximum") ds)

(* Property: over random program specs, every decomposition the solver
   emits recombines exactly (the module's central contract). *)
let prop_decompositions_exact =
  QCheck2.Test.make ~name:"invert: all decompositions recombine" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let env, prog =
        Suite.Generator.generate
          { Suite.Generator.default with size = 4; seed }
      in
      let lib = Stub.enumerate ~model ~consts:[ 1. ] env in
      let spec = Sexec.exec_env env prog in
      List.for_all
        (fun (d : Invert.decomposition) ->
          match recombine d with
          | r -> St.equal r spec
          | exception _ -> false)
        (Invert.decompositions lib spec))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_decompositions_exact;
    Alcotest.test_case "elementwise inversions" `Quick
      test_elementwise_inversions;
    Alcotest.test_case "polynomial division" `Quick
      test_poly_division_inversion;
    Alcotest.test_case "sum term-splitting" `Quick test_sum_split;
    Alcotest.test_case "contraction linear solve" `Quick test_dot_inversions;
    Alcotest.test_case "quadratic-form assignment" `Quick
      test_quadratic_assignment;
    Alcotest.test_case "two-hole splits" `Quick test_two_hole_splits;
    Alcotest.test_case "structural inversions" `Quick test_transpose_sqrt_exp;
    Alcotest.test_case "power inversions" `Quick test_power_inversions;
    Alcotest.test_case "maximum stripping" `Quick test_maximum_strip;
  ]
