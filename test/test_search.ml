(* The branch-and-bound synthesis search (Algorithm 2), exercised with
   the deterministic FLOPs model for reproducibility. *)
open Dsl
open Stenso

let model = Cost.Model.flops

let run ?(config = Search.default_config) env_src prog_src =
  let env, _ = Parser.program (env_src ^ "\nreturn 0") in
  let prog = Parser.expression prog_src in
  let spec = Sexec.exec_env env prog in
  let bound = Cost.Model.program_cost model env prog in
  let result =
    Search.run ~config ~model ~env ~spec ~initial_bound:bound
      ~consts:(Superopt.consts_of prog) ()
  in
  (env, prog, result)

let check_finds name env_src prog_src expected_src =
  let env, _, result = run env_src prog_src in
  match result.program with
  | None -> Alcotest.failf "%s: nothing synthesized" name
  | Some found ->
      let expected = Parser.expression expected_src in
      if not (Sexec.equivalent env found expected) then
        Alcotest.failf "%s: found %s, not equivalent to %s" name
          (Ast.to_string found) expected_src

let test_poly_division_end_to_end () =
  (* (1-s) factors out of d - s*d even though d is a contraction: needs
     polynomial long division plus the continue-past-expensive-match
     policy (both regressions we fixed during development) *)
  let env, _, result =
    run "input K : f32[3,4]\ninput W : f32[4,3]\ninput s : f32[]"
      "np.diag(np.dot(K, W)) - s * np.diag(np.dot(K, W))"
  in
  match result.program with
  | None -> Alcotest.fail "nothing synthesized"
  | Some found ->
      (* must be equivalent and must not contain the cubic contraction *)
      let expected =
        Parser.expression
          "np.multiply(np.sum(np.multiply(K, np.transpose(W)), axis=1), 1 - s)"
      in
      Alcotest.(check bool) "equivalent" true
        (Sexec.equivalent env found expected);
      let rec has_dot (t : Ast.t) =
        match t with
        | App (Dot, _) -> true
        | Input _ | Const _ -> false
        | App (_, args) -> List.exists has_dot args
        | For_stack { body; _ } -> has_dot body
      in
      Alcotest.(check bool) "contraction eliminated" false (has_dot found)

let test_finds_known_rewrites () =
  check_finds "diag identity" "input A : f32[3,4]\ninput B : f32[4,3]"
    "np.diag(np.dot(A, B))" "np.sum(np.multiply(A, B.T), axis=1)";
  check_finds "common factor"
    "input A : f32[2,2]\ninput B : f32[2,2]\ninput C : f32[2,2]"
    "A * B + C * B" "np.multiply(np.add(A, C), B)";
  check_finds "log identity" "input A : f32[2,2]\ninput B : f32[2,2]"
    "np.exp(np.log(A) - np.log(B))" "np.divide(A, B)";
  check_finds "polynomial" "input A : f32[2,2]\ninput B : f32[2,2]"
    "A + B - A - A + B * B - B" "np.subtract(np.multiply(B, B), A)"

let test_search_result_is_equivalent () =
  (* whatever the search returns must match the spec symbolically *)
  List.iter
    (fun (b : Suite.Benchmarks.t) ->
      let spec = Sexec.exec_env b.env b.program in
      let bound = Cost.Model.program_cost model b.env b.program in
      let result =
        Search.run ~model ~env:b.env ~spec ~initial_bound:bound
          ~consts:(Superopt.consts_of b.program) ()
      in
      match result.program with
      | None -> ()
      | Some found ->
          if not (Sexec.equivalent b.env b.program found) then
            Alcotest.failf "%s: synthesized inequivalent program %s" b.name
              (Ast.to_string found))
    [ Suite.Benchmarks.find "diag_dot"; Suite.Benchmarks.find "sum_stack";
      Suite.Benchmarks.find "synth_2"; Suite.Benchmarks.find "vec_lerp" ]

let test_bnb_prunes () =
  (* branch and bound must not change the result, only the effort *)
  let with_bnb = Search.default_config in
  let without = { Search.default_config with use_bnb = false; timeout = 30. } in
  let env_src = "input A : f32[3,3]\ninput B : f32[3,3]" in
  let prog = "(A * B) + 3 * (A * B)" in
  let _, _, r1 = run ~config:with_bnb env_src prog in
  let _, _, r2 = run ~config:without env_src prog in
  (match (r1.program, r2.program) with
  | Some p1, Some p2 ->
      Alcotest.(check (float 1e-9)) "same optimum cost" r2.cost r1.cost;
      ignore (p1, p2)
  | _ -> Alcotest.fail "both configurations must synthesize");
  Alcotest.(check bool) "bnb prunes something" true (r1.stats.pruned_bnb > 0)

let test_simplification_prunes () =
  let env_src = "input A : f32[3,3]\ninput B : f32[3,3]" in
  let _, _, r = run env_src "A * B + B" in
  Alcotest.(check bool) "simplification objective fires" true
    (r.stats.pruned_simp > 0)

let test_node_budget () =
  let config = { Search.default_config with node_budget = 3 } in
  let _, _, r =
    run ~config "input A : f32[3,3]\ninput B : f32[3,3]"
      "np.sqrt(A) * B + np.sqrt(A) * A"
  in
  Alcotest.(check bool) "budget reported" true
    (r.stats.timed_out || r.stats.nodes <= 4)

let test_anytime_returns_best () =
  (* Regression: in the sequential engine an expired budget used to
     unwind through the root and discard the best program found so far
     (returning [None] with [timed_out]), while parallel workers kept
     theirs.  Both engines must now degrade to best-so-far. *)
  List.iter
    (fun jobs ->
      let config = { Search.default_config with node_budget = 1; jobs } in
      let _, _, r =
        run ~config "input A : f32[3,4]\ninput B : f32[4,3]"
          "np.diag(np.dot(A, B))"
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: budget expired" jobs)
        true r.stats.timed_out;
      match r.program with
      | None ->
          Alcotest.failf "jobs=%d: best-so-far discarded on budget expiry"
            jobs
      | Some _ -> ())
    [ 1; 2 ]

let test_shared_node_budget () =
  (* Regression: each parallel worker used to start its own node count
     at zero, so [--jobs N] multiplied the node budget by N.  The count
     is now one shared atomic total; each worker can overshoot by at
     most the one increment it was executing when the budget tripped. *)
  let budget = 20 in
  let env_src = "input A : f32[3,3]\ninput B : f32[3,3]" in
  let prog = "np.sqrt(A) * B + np.sqrt(A) * A" in
  List.iter
    (fun jobs ->
      let config =
        { Search.default_config with node_budget = budget; jobs }
      in
      let _, _, r = run ~config env_src prog in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: budget expired" jobs)
        true r.stats.timed_out;
      if r.stats.nodes > budget + jobs + 2 then
        Alcotest.failf "jobs=%d: %d nodes for a budget of %d" jobs
          r.stats.nodes budget)
    [ 1; 4 ]

let test_cost_never_above_bound () =
  (* Algorithm 1: returned cost is below the original's estimate. *)
  List.iter
    (fun (b : Suite.Benchmarks.t) ->
      let o = Superopt.superoptimize ~model ~env:b.env b.program in
      if o.improved then begin
        if not (o.optimized_cost < o.original_cost) then
          Alcotest.failf "%s: 'improved' but cost did not drop" b.name
      end
      else if not (Ast.equal o.optimized b.program) then
        Alcotest.failf "%s: unimproved outcome must return the original"
          b.name)
    Suite.Benchmarks.github

let suite =
  [
    Alcotest.test_case "finds the paper's rewrites" `Quick
      test_finds_known_rewrites;
    Alcotest.test_case "polynomial division end to end" `Quick
      test_poly_division_end_to_end;
    Alcotest.test_case "results are equivalent" `Quick
      test_search_result_is_equivalent;
    Alcotest.test_case "bnb preserves optimum" `Quick test_bnb_prunes;
    Alcotest.test_case "simplification objective" `Quick
      test_simplification_prunes;
    Alcotest.test_case "node budget" `Quick test_node_budget;
    Alcotest.test_case "anytime: budget expiry keeps best-so-far" `Quick
      test_anytime_returns_best;
    Alcotest.test_case "node budget shared across workers" `Quick
      test_shared_node_budget;
    Alcotest.test_case "Algorithm 1 contract (github suite)" `Slow
      test_cost_never_above_bound;
  ]
