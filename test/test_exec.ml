(* Concrete interpretation and symbolic execution, including the
   differential property that ties them together: evaluating the
   symbolic tensor under a concrete assignment must agree with direct
   interpretation.  This is the soundness argument for using symbolic
   equality as the synthesis specification. *)
open Dsl
module F = Tensor.Ftensor

let ft = Alcotest.testable F.pp (F.allclose ~rtol:1e-9 ~atol:1e-12)

let test_interp_basics () =
  let env = [ ("A", F.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |]) ] in
  let run src = Interp.eval_alist env (Parser.expression src) in
  Alcotest.check ft "A + A" (F.of_array [| 2; 2 |] [| 2.; 4.; 6.; 8. |])
    (run "A + A");
  Alcotest.check ft "dot" (F.of_array [| 2; 2 |] [| 7.; 10.; 15.; 22. |])
    (run "np.dot(A, A)");
  Alcotest.(check (float 1e-9)) "trace" 5. (F.to_scalar (run "np.trace(A)"));
  Alcotest.check ft "comprehension doubles rows"
    (F.of_array [| 2; 2 |] [| 2.; 4.; 6.; 8. |])
    (run "np.stack([r * 2 for r in A])");
  (match run "Z" with
  | exception Interp.Eval_error _ -> ()
  | _ -> Alcotest.fail "unbound input should raise")

let test_sexec_spec_shape () =
  let env = [ ("A", Types.float_t [| 2; 3 |]) ] in
  let spec = Sexec.exec_env env (Parser.expression "np.sum(A, axis=1)") in
  Alcotest.(check bool) "spec shape" true (Sexec.Stensor.shape spec = [| 2 |]);
  let e = Sexec.Stensor.get spec [| 0 |] in
  Alcotest.(check string) "spec element"
    "(A[0,0] + A[0,1] + A[0,2])"
    (Symbolic.Expr.to_string e)

let test_equivalences () =
  let check_equiv name env_src a b expected =
    let env, _ = Parser.program (env_src ^ "\nreturn 0") in
    let r = Sexec.equivalent env (Parser.expression a) (Parser.expression b) in
    Alcotest.(check bool) name expected r
  in
  check_equiv "dot associativity over scalar mul"
    "input a : f32[]\ninput A : f32[2,3]\ninput B : f32[3,2]"
    "np.dot(a * A, B)" "a * np.dot(A, B)" true;
  check_equiv "distributivity" "input A : f32[2,2]\ninput B : f32[2,2]"
    "np.multiply(np.add(A, B), A)" "A*A + B*A" true;
  check_equiv "dot is not commutative" "input A : f32[2,2]\ninput B : f32[2,2]"
    "np.dot(A, B)" "np.dot(B, A)" false;
  check_equiv "sub not commutative" "input A : f32[2,2]\ninput B : f32[2,2]"
    "A - B" "B - A" false;
  check_equiv "transpose of product"
    "input A : f32[2,3]\ninput B : f32[3,2]"
    "np.transpose(np.dot(A, B))" "np.dot(B.T, A.T)" true;
  check_equiv "shape mismatch is inequivalent" "input A : f32[2,3]"
    "A" "A.T" false

let test_density_complexity () =
  let env = [ ("A", Types.float_t [| 3; 3 |]) ] in
  let spec src = Sexec.exec_env env (Parser.expression src) in
  Alcotest.(check (float 1e-9)) "dense density" 1. (Sexec.density (spec "A"));
  let tri = spec "np.triu(A)" in
  Alcotest.(check (float 1e-9)) "triu density" (6. /. 9.) (Sexec.density tri);
  (* complexity = mean distinct vars per element * density *)
  Alcotest.(check (float 1e-9)) "complexity of A" 1.
    (Sexec.complexity (spec "A"));
  Alcotest.(check (float 1e-9)) "complexity of A*A (same var)" 1.
    (Sexec.complexity (spec "A * A"));
  Alcotest.(check bool) "dot raises complexity" true
    (Sexec.complexity (spec "np.dot(A, A)") > 2.)

(* Differential: random programs, symbolic execution evaluated
   concretely equals direct interpretation. *)
let arb_program =
  let open QCheck2.Gen in
  let leaf = oneofl [ "A"; "B"; "x"; "2"; "0.5" ] in
  let rec expr n =
    if n = 0 then leaf
    else
      let sub = expr (n - 1) in
      oneof
        [
          leaf;
          (* positivity-preserving grammar (see the symbolic engine's
             positive-symbol assumption) *)
          map2 (Printf.sprintf "(%s + %s)") sub sub;
          map2 (Printf.sprintf "(%s * %s)") sub sub;
          map2 (Printf.sprintf "(%s / %s)") sub sub;
          map2 (Printf.sprintf "np.sqrt(np.multiply(%s, %s))") sub sub;
          map (Printf.sprintf "np.sum(%s, axis=0)") sub;
          map (Printf.sprintf "np.exp(np.log(%s))") sub;
          map (Printf.sprintf "np.max(%s, axis=0)") sub;
          map (Printf.sprintf "%s.T") sub;
        ]
  in
  expr 3

let env_t =
  [ ("A", Types.float_t [| 2; 3 |]); ("B", Types.float_t [| 2; 3 |]);
    ("x", Types.float_t [| 3 |]) ]

let prop_sexec_agrees_with_interp =
  QCheck2.Test.make
    ~name:"sexec: symbolic execution agrees with interpretation" ~count:150
    QCheck2.Gen.(pair arb_program (int_range 0 10_000))
    (fun (src, seed) ->
      match Parser.expression src with
      | exception Parser.Parse_error _ -> true
      | prog -> (
          match Types.check env_t prog with
          | Error _ -> true
          | Ok _ ->
              let st = Random.State.make [| seed |] in
              let inputs = Interp.random_inputs st env_t in
              let direct = Interp.eval_alist inputs prog in
              let sym = Sexec.exec_env env_t prog in
              let assign (s : Symbolic.Sym.t) =
                F.get (List.assoc (Symbolic.Sym.base s) inputs) s.indices
              in
              let via_sym = Sexec.eval_concrete assign sym in
              F.allclose ~rtol:1e-6 ~atol:1e-9 direct via_sym))

(* Equivalence is sound: if two random programs are declared equivalent,
   they agree numerically. *)
let prop_equivalence_sound =
  QCheck2.Test.make ~name:"sexec: equivalent implies numerically equal"
    ~count:100
    QCheck2.Gen.(triple arb_program arb_program (int_range 0 10_000))
    (fun (s1, s2, seed) ->
      match (Parser.expression s1, Parser.expression s2) with
      | exception Parser.Parse_error _ -> true
      | p1, p2 -> (
          match (Types.check env_t p1, Types.check env_t p2) with
          | Ok _, Ok _ ->
              if Sexec.equivalent env_t p1 p2 then begin
                let st = Random.State.make [| seed |] in
                let inputs = Interp.random_inputs st env_t in
                F.allclose ~rtol:1e-6 ~atol:1e-9
                  (Interp.eval_alist inputs p1)
                  (Interp.eval_alist inputs p2)
              end
              else true
          | _ -> true))

let test_all_benchmark_equivalences () =
  List.iter
    (fun (b : Suite.Benchmarks.t) ->
      if not (Sexec.equivalent b.env b.program b.expected_opt) then
        Alcotest.failf "%s: original and reference optimized not equivalent"
          b.name;
      (* and concretely, at performance shapes *)
      let st = Random.State.make [| 0xfeed |] in
      let inputs = Interp.random_inputs st b.perf_env in
      let r1 = Interp.eval_alist inputs b.perf_program in
      let r2 = Interp.eval_alist inputs b.perf_expected_opt in
      if not (F.allclose ~rtol:1e-6 ~atol:1e-9 r1 r2) then
        Alcotest.failf "%s: concrete mismatch at perf shapes" b.name)
    Suite.Benchmarks.all

(* ------------------------------------------------------------------ *)
(* The compiled engine (Stenso.Exec): differential fuzz against the
   interpreter, fusion legality, arena reuse.                          *)

module Exec = Stenso.Exec

let vm_eval ?options env inputs prog =
  let compiled = Exec.compile ?options ~env prog in
  Exec.run compiled (fun n -> List.assoc n inputs)

let all_finite t = Array.for_all Float.is_finite (F.unsafe_data t)

(* Hand-written programs covering the constructs the random generator
   does not emit: comprehensions (For_stack), scalar/row broadcasting,
   boolean where/less, masking, max-reductions. *)
let targeted_programs =
  [
    ("for_stack", "np.stack([r * 2 + x for r in A])");
    ("for_stack nested expr", "np.stack([np.sqrt(r * r) + b for r in B])");
    ("scalar broadcast", "A * b + 0.5");
    ("row broadcast", "A + x");
    ("where/less bool", "np.where(np.less(A, B), A - B, B - A)");
    ("where scalar arms", "np.where(np.less(A, B), 1, 0)");
    ("max rows", "np.max(A + B, axis=1)");
    ("max all", "np.max(A * B)");
    ("maximum", "np.maximum(A, B)");
    ("triu", "np.triu(np.dot(A, A.T))");
    ("tril", "np.tril(np.dot(A, A.T))");
    ("diag", "np.diag(np.dot(A, A.T))");
    ("trace", "np.trace(np.dot(A, A.T))");
    ("transpose chain", "np.transpose(A * 2) + B.T");
    ("reduce of fused", "np.sum(np.sqrt(A * A + B * B), axis=0)");
    ("div chain", "(A + 1) / (B * B + 1)");
    ("fused scalar sum", "np.sum(A * B + A)");
    ("fused scalar max", "np.max(np.sqrt(A * A + 1))");
    ("fused row sums", "np.sum(A - B, axis=1)");
    ("fused max rows", "np.max(A - B, axis=1)");
    ("fused sum axis0", "np.sum(np.exp(A) * B, axis=0)");
    ("normalize", "A / np.sum(A)");
    ("sum then scale", "np.sum(A * A) * b");
    (* keepdims reductions broadcast back against their input *)
    ("keepdims col broadcast", "A / np.sum(A, axis=0, keepdims=True)");
    ("keepdims row broadcast", "A - np.max(A, axis=1, keepdims=True)");
    ("keepdims full reduce", "A - np.max(A, keepdims=True)");
    ( "row softmax",
      "np.exp(A - np.max(A, axis=1, keepdims=True)) / np.sum(np.exp(A - \
       np.max(A, axis=1, keepdims=True)), axis=1, keepdims=True)" );
    ( "keepdims mean center",
      "A - np.sum(A, axis=1, keepdims=True) / 3.0" );
  ]

let fuzz_env =
  [
    ("A", Types.float_t [| 2; 3 |]);
    ("B", Types.float_t [| 2; 3 |]);
    ("x", Types.float_t [| 3 |]);
    ("b", Types.float_t [||]);
  ]

let test_vm_targeted () =
  List.iter
    (fun (name, src) ->
      let prog = Parser.expression src in
      (match Types.check fuzz_env prog with
      | Error e -> Alcotest.failf "%s: ill-typed: %s" name e
      | Ok _ -> ());
      let st = Random.State.make [| 0xbeef |] in
      let inputs = Interp.random_inputs st fuzz_env in
      let direct = Interp.eval_alist inputs prog in
      let via_vm = vm_eval fuzz_env inputs prog in
      if not (F.allclose ~rtol:1e-9 ~atol:1e-9 direct via_vm) then
        Alcotest.failf "%s: vm disagrees with interpreter" name)
    targeted_programs

(* Differential fuzz: >= 200 random well-typed programs from the suite
   generator must evaluate identically (1e-9) on both engines.  Configs
   vary size, rank, contraction and transcendental availability so the
   sample exercises fused chains, gather-indexed broadcasts, reductions
   and matrix products.  Programs whose reference value is non-finite
   (random division) are skipped; the generator produces a surplus so
   the comparison count stays above the bar. *)
let test_vm_fuzz () =
  let configs =
    [
      { Suite.Generator.default with size = 4; seed = 11 };
      { Suite.Generator.default with size = 8; seed = 1200 };
      {
        Suite.Generator.default with
        size = 6;
        allow_contractions = false;
        dims = [ 1; 2; 4 ];
        seed = 2400;
      };
      {
        Suite.Generator.default with
        size = 10;
        allow_transcendentals = false;
        num_inputs = 4;
        seed = 3600;
      };
    ]
  in
  let cases =
    List.concat_map (fun cfg -> Suite.Generator.generate_many cfg 70) configs
  in
  let compared = ref 0 in
  List.iteri
    (fun i (env, prog) ->
      let st = Random.State.make [| 0x5eed; i |] in
      let inputs = Interp.random_inputs ~lo:0.25 ~hi:2.0 st env in
      let direct = Interp.eval_alist inputs prog in
      if all_finite direct then begin
        let via_vm = vm_eval env inputs prog in
        if not (F.allclose ~rtol:1e-9 ~atol:1e-9 direct via_vm) then
          Alcotest.failf "fuzz #%d: vm disagrees with interpreter on %s" i
            (Ast.to_string prog);
        incr compared
      end)
    cases;
  if !compared < 200 then
    Alcotest.failf "only %d/%d programs compared (need >= 200)" !compared
      (List.length cases)

(* Fusion legality: elementwise chains collapse to one step; a
   single-use elementwise producer of a [sum]/[max] additionally inlines
   into the reduction loop itself (one fused pass), but only under
   reduction fusion — contraction inputs, multi-use producers and
   reduction *outputs* always materialize. *)
let test_fusion_legality () =
  let env = [ ("A", Types.float_t [| 4; 4 |]); ("B", Types.float_t [| 4; 4 |]) ] in
  let stats ?options src =
    Exec.stats (Exec.compile ?options ~env (Parser.expression src))
  in
  let chain = stats "np.sqrt(A * A + B * B) / (A + B)" in
  Alcotest.(check int) "elementwise chain is one step" 1 chain.Exec.steps;
  Alcotest.(check bool) "chain absorbed ops" true (chain.Exec.ops_fused >= 3);
  let red = stats "np.sum(A * B + A, axis=0)" in
  Alcotest.(check int) "reduction-rooted program runs single-pass" 1
    red.Exec.steps;
  Alcotest.(check bool) "reduction absorbed its producer" true
    (red.Exec.ops_fused >= 2);
  let no_red =
    Exec.Options.(default |> with_reduction_fusion false)
  in
  let red_off = stats ~options:no_red "np.sum(A * B + A, axis=0)" in
  Alcotest.(check bool) "without reduction fusion the input materializes"
    true
    (red_off.Exec.steps >= 2);
  let dot = stats "np.dot(A + B, A - B)" in
  Alcotest.(check bool) "contraction inputs materialize" true
    (dot.Exec.steps >= 3);
  (* The sum itself must not be inlined into its consumer either. *)
  let post = stats "np.sum(A, axis=0) * np.sum(B, axis=0)" in
  Alcotest.(check bool) "reduction outputs materialize" true
    (post.Exec.steps >= 3);
  (* A producer with two consumers is shared, not re-evaluated. *)
  let shared = stats "np.sum(A * B) + np.max(A * B)" in
  Alcotest.(check bool) "multi-use producer materializes" true
    (shared.Exec.steps >= 3)

(* The ML-kernel workloads lean on reduction fusion: their elementwise
   producers (exp, subtract, square) must inline into the reduction
   loops rather than materialize as extra passes. *)
let test_ml_kernel_fusion () =
  let stats name =
    let b = Suite.Benchmarks.find name in
    Exec.stats
      (Exec.compile ~env:b.Suite.Benchmarks.perf_env
         b.Suite.Benchmarks.perf_program)
  in
  List.iter
    (fun name ->
      let s = stats name in
      if s.Exec.ops_fused <= 0 then
        Alcotest.failf "%s: plan fused no ops (steps=%d)" name s.Exec.steps)
    [ "softmax_vec"; "softmax_stable"; "logsumexp"; "layernorm"; "rmsnorm" ]

(* The Options record is the single configuration path: builder
   invariants, validation, and a telemetry-independent fingerprint. *)
let test_options_api () =
  let open Exec.Options in
  let o = default |> with_fusion false in
  Alcotest.(check bool) "fusion off implies reduction fusion off" false
    (reduction_fusion o);
  (match with_reduction_fusion true o with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reduction fusion without fusion should raise");
  (match with_tile 2 default with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tile < 4 should raise");
  (match with_domains 0 default with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains < 1 should raise");
  Alcotest.(check bool) "huge domain requests clamp instead of raising"
    true
    (domains (default |> with_domains 10_000) <= 10_000);
  let tel = Stenso.Telemetry.create () in
  Alcotest.(check string) "fingerprint excludes the telemetry sink"
    (fingerprint default)
    (fingerprint (default |> with_telemetry tel));
  Alcotest.(check bool) "fingerprint reflects planner knobs" true
    (fingerprint default <> fingerprint (default |> with_tile 8))

(* The compiled-program cache keys on the options fingerprint: the same
   program under different knobs is a different artifact. *)
let test_cache_keyed_by_options () =
  let env = [ ("A", Types.float_t [| 4; 4 |]) ] in
  let prog = Parser.expression "np.sum(A * A)" in
  let cache = Exec.Cache.create () in
  let fused = Exec.Cache.find_or_compile cache ~env prog in
  let unfused =
    Exec.Cache.find_or_compile cache
      ~options:Exec.Options.(default |> with_fusion false)
      ~env prog
  in
  Alcotest.(check int) "two options, two entries" 2 (Exec.Cache.size cache);
  Alcotest.(check bool) "plans actually differ" true
    ((Exec.stats fused).Exec.steps < (Exec.stats unfused).Exec.steps);
  ignore (Exec.Cache.find_or_compile cache ~env prog);
  Alcotest.(check int) "same options hit the existing entry" 2
    (Exec.Cache.size cache)

(* Every targeted program must agree with the interpreter under every
   knob setting, not just the default plan. *)
let test_vm_options_matrix () =
  let variants =
    Exec.Options.
      [
        ("no-fusion", default |> with_fusion false);
        ("no-reduction-fusion", default |> with_reduction_fusion false);
        ("tile-4", default |> with_tile 4);
        ("domains-1", default |> with_domains 1);
        ("domains-4", default |> with_domains 4);
      ]
  in
  List.iter
    (fun (vname, options) ->
      List.iter
        (fun (name, src) ->
          let prog = Parser.expression src in
          let st = Random.State.make [| 0xbeef |] in
          let inputs = Interp.random_inputs st fuzz_env in
          let direct = Interp.eval_alist inputs prog in
          let via_vm = vm_eval ~options fuzz_env inputs prog in
          if not (F.allclose ~rtol:1e-9 ~atol:1e-9 direct via_vm) then
            Alcotest.failf "%s under %s: vm disagrees with interpreter" name
              vname)
        targeted_programs)
    variants

(* Tiled matmul/transpose must be exact on shapes that do not divide
   the tile, including degenerate 1 x N and N x 1 operands. *)
let test_tiled_edge_shapes () =
  let cases =
    [
      ( [ ("A", Types.float_t [| 5; 7 |]); ("B", Types.float_t [| 7; 3 |]) ],
        "np.dot(A, B)", 4 );
      ( [ ("A", Types.float_t [| 1; 9 |]); ("B", Types.float_t [| 9; 1 |]) ],
        "np.dot(A, B)", 4 );
      ( [ ("A", Types.float_t [| 9 |]); ("B", Types.float_t [| 9; 5 |]) ],
        "np.dot(A, B)", 4 );
      ( [ ("A", Types.float_t [| 13; 13 |]); ("B", Types.float_t [| 13; 13 |]) ],
        "np.dot(A, B.T)", 8 );
      (* dims strictly smaller than the tile *)
      ( [ ("A", Types.float_t [| 4; 8 |]); ("B", Types.float_t [| 8; 4 |]) ],
        "np.dot(A, B)", 64 );
      ([ ("A", Types.float_t [| 1; 6 |]) ], "A.T", 4);
      ([ ("A", Types.float_t [| 9; 5 |]) ], "A.T", 4);
      ([ ("A", Types.float_t [| 7; 7 |]) ], "np.transpose(A) * 2", 4);
    ]
  in
  List.iter
    (fun (env, src, tile) ->
      let prog = Parser.expression src in
      let st = Random.State.make [| 0xabcd |] in
      let inputs = Interp.random_inputs st env in
      let direct = Interp.eval_alist inputs prog in
      let options = Exec.Options.with_tile tile Exec.Options.default in
      let via_vm = vm_eval ~options env inputs prog in
      if not (F.allclose ~rtol:1e-9 ~atol:1e-12 direct via_vm) then
        Alcotest.failf "%s (tile %d): vm disagrees with interpreter" src tile)
    cases

(* Parallel strips must be invisible in the bits: running the same
   compiled program with 1 and 4 domains must produce bitwise-identical
   results, on shapes big enough that lanes actually engage. *)
let bits t = Array.map Int64.bits_of_float (F.unsafe_data t)

let test_parallel_determinism () =
  let env =
    [ ("A", Types.float_t [| 256; 256 |]); ("B", Types.float_t [| 256; 256 |]) ]
  in
  let progs =
    [
      "np.sqrt(A * A + B * B) / (A + B + 1)";
      "np.sum(A * B + A)";
      "np.max(np.sqrt(A * A))";
      "np.sum(A - B, axis=1)";
      "np.max(A + B, axis=1)";
      "np.max(A, axis=0)";
      "np.dot(A, B)";
      "A.T";
      "A / np.sum(A)";
    ]
  in
  List.iter
    (fun src ->
      let prog = Parser.expression src in
      let st = Random.State.make [| 7 |] in
      let inputs = Interp.random_inputs st env in
      let seq =
        vm_eval ~options:Exec.Options.(default |> with_domains 1) env inputs
          prog
      in
      let par =
        vm_eval ~options:Exec.Options.(default |> with_domains 4) env inputs
          prog
      in
      if bits seq <> bits par then
        Alcotest.failf "%s: results differ across domain counts" src)
    progs

(* Regression for the one benchmark the VM used to lose (0.94x):
   normalize must not run slower than the interpreter. *)
let test_normalize_not_slower () =
  let env = [ ("A", Types.float_t [| 512; 512 |]) ] in
  let prog = Parser.expression "A / np.sum(A)" in
  let st = Random.State.make [| 3 |] in
  let inputs = Interp.random_inputs st env in
  let lookup n = List.assoc n inputs in
  let compiled = Exec.compile ~env prog in
  let time f =
    ignore (f ());
    (* warm *)
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let ti = time (fun () -> Interp.eval_alist inputs prog) in
  let tv = time (fun () -> Exec.run compiled lookup) in
  if tv > ti then
    Alcotest.failf "normalize regressed: vm %.3gms vs interp %.3gms"
      (tv *. 1e3) (ti *. 1e3)

(* Liveness-driven arena reuse: once an intermediate dies, its buffer
   serves a later same-size value instead of growing the arena. *)
let test_arena_reuse () =
  let env = [ ("A", Types.float_t [| 4; 4 |]) ] in
  let prog =
    Parser.expression "np.dot(np.dot(A, A) + A, np.dot(A, A) - A)"
  in
  let compiled = Exec.compile ~env prog in
  let s = Exec.stats compiled in
  Alcotest.(check bool) "some buffer is reused" true
    (s.Exec.buffers_reused >= 1);
  Alcotest.(check bool) "arena smaller than one-slot-per-value" true
    (s.Exec.arena_slots < s.Exec.steps + 1 + s.Exec.buffers_reused);
  (* and reuse does not corrupt results *)
  let st = Random.State.make [| 42 |] in
  let inputs = Interp.random_inputs st env in
  let direct = Interp.eval_alist inputs prog in
  let via_vm = Exec.run compiled (fun n -> List.assoc n inputs) in
  Alcotest.check ft "reuse-heavy program matches interp" direct via_vm

(* Constant folding: subtrees with no input dependence are evaluated at
   compile time and stored as arena constants. *)
let test_const_folding () =
  let env = [ ("A", Types.float_t [| 2; 2 |]) ] in
  let s =
    Exec.stats
      (Exec.compile ~env
         (Parser.expression "A + np.full((2,2), 3) * np.full((2,2), 0.5)"))
  in
  Alcotest.(check bool) "constant subtree folded" true
    (s.Exec.consts_folded >= 1)

(* The exec-bench archive validator doubles as CI's performance gate:
   structural schema check, per-benchmark speedup floor, and the
   expects_fused_reduction / ops_fused cross-check. *)
let test_validate_exec_bench () =
  let module J = Stenso.Telemetry.Json in
  let result ?(speedup = 2.0) ?(ops_fused = 1) ?(expects = false) name =
    J.Obj
      [
        ("name", J.Str name);
        ("interp_seconds", J.Float 2e-4);
        ("vm_seconds", J.Float 1e-4);
        ("speedup", J.Float speedup);
        ("steps", J.Int 1);
        ("ops_fused", J.Int ops_fused);
        ("parallel_strips", J.Int 0);
        ("buffers_reused", J.Int 0);
        ("arena_bytes", J.Int 8);
        ("expects_fused_reduction", J.Bool expects);
      ]
  in
  let doc results =
    J.Obj
      [
        ("schema", J.Str Suite.Driver.exec_bench_schema_version);
        ("version", J.Str "test");
        ("options", J.Str "fus=true;red=true;tile=64;dom=1");
        ("n_benchmarks", J.Int (List.length results));
        ("geomean_speedup", J.Float 2.0);
        ("results", J.List results);
      ]
  in
  let ok = doc [ result "a"; result ~expects:true "b" ] in
  (match Suite.Driver.validate_exec_bench ~min_speedup:1.0 ok with
  | Ok () -> ()
  | Error e -> Alcotest.failf "well-formed report rejected: %s" e);
  (match
     Suite.Driver.validate_exec_bench ~min_speedup:1.0
       (doc [ result ~speedup:0.9 "slow" ])
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "sub-floor speedup accepted");
  (* without the floor, a slow benchmark is structurally fine *)
  (match
     Suite.Driver.validate_exec_bench (doc [ result ~speedup:0.9 "slow" ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "structural check rejected slow bench: %s" e);
  (match
     Suite.Driver.validate_exec_bench
       (doc [ result ~expects:true ~ops_fused:0 "unfused" ])
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unfused reduction-rooted benchmark accepted");
  match
    Suite.Driver.validate_exec_bench (J.Obj [ ("schema", J.Str "bogus/9") ])
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown schema accepted"

let suite =
  [
    Alcotest.test_case "interpreter basics" `Quick test_interp_basics;
    Alcotest.test_case "symbolic spec construction" `Quick
      test_sexec_spec_shape;
    Alcotest.test_case "equivalence checking" `Quick test_equivalences;
    Alcotest.test_case "density and complexity" `Quick test_density_complexity;
    Alcotest.test_case "all benchmark reference equivalences" `Slow
      test_all_benchmark_equivalences;
    QCheck_alcotest.to_alcotest prop_sexec_agrees_with_interp;
    QCheck_alcotest.to_alcotest prop_equivalence_sound;
    Alcotest.test_case "vm: targeted constructs" `Quick test_vm_targeted;
    Alcotest.test_case "vm: differential fuzz (200+ programs)" `Slow
      test_vm_fuzz;
    Alcotest.test_case "vm: fusion legality" `Quick test_fusion_legality;
    Alcotest.test_case "vm: ML-kernel fusion" `Quick test_ml_kernel_fusion;
    Alcotest.test_case "vm: options api" `Quick test_options_api;
    Alcotest.test_case "vm: cache keyed by options" `Quick
      test_cache_keyed_by_options;
    Alcotest.test_case "vm: options matrix differential" `Quick
      test_vm_options_matrix;
    Alcotest.test_case "vm: tiled edge shapes" `Quick test_tiled_edge_shapes;
    Alcotest.test_case "vm: parallel determinism (bitwise)" `Quick
      test_parallel_determinism;
    Alcotest.test_case "vm: normalize not slower than interp" `Slow
      test_normalize_not_slower;
    Alcotest.test_case "vm: arena reuse" `Quick test_arena_reuse;
    Alcotest.test_case "exec-bench report validation" `Quick
      test_validate_exec_bench;
    Alcotest.test_case "vm: constant folding" `Quick test_const_folding;
  ]
